// Package repro's top-level benchmark harness: one testing.B benchmark
// per table and figure of the paper, plus ablation benchmarks for the
// design choices called out in DESIGN.md §5. Run with
//
//	go test -bench=. -benchmem .
//
// Fidelity note: each benchmark regenerates its artifact end to end, so
// b.N iterations measure the full experiment pipeline (generation,
// replay/simulation, rendering), not a single I/O operation.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/appmodel"
	"repro/internal/distbench"
	"repro/internal/fsim"
	"repro/internal/simdisk"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
	"repro/internal/vm"
	"repro/internal/vmcompare"
	"repro/internal/webserver"
	"repro/internal/workload"
)

// benchBase keeps the behavioral-model benchmarks quick per iteration
// while exercising the identical code path as the full-scale experiment.
const benchBase = 2 * time.Second

// benchTraceParams shrinks trace replay to benchmark scale.
func benchTraceParams() tracegen.Params {
	p := tracegen.DefaultParams()
	p.FileSize = 64 << 20
	p.Requests = 64
	return p
}

// --- Benchmark 1: the application behavioral model (Figures 2-5) ---

func BenchmarkFig2QCRDExecution(b *testing.B) {
	machine := appmodel.DefaultMachine()
	for i := 0; i < b.N; i++ {
		if _, _, err := appmodel.Figure2(machine, benchBase); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3QCRDPercentage(b *testing.B) {
	machine := appmodel.DefaultMachine()
	for i := 0; i < b.N; i++ {
		if _, _, err := appmodel.Figure3(machine, benchBase); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4DiskSpeedup(b *testing.B) {
	machine := appmodel.DefaultMachine()
	for i := 0; i < b.N; i++ {
		if _, _, err := appmodel.Figure4(machine, benchBase); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5CPUSpeedup(b *testing.B) {
	machine := appmodel.DefaultMachine()
	for i := 0; i < b.N; i++ {
		if _, _, err := appmodel.Figure5(machine, benchBase); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErrorCheckSimVsAnalytic(b *testing.B) {
	machine := appmodel.DefaultMachine()
	app := appmodel.QCRD()
	for i := 0; i < b.N; i++ {
		if _, err := appmodel.SimulatorError(app, machine, benchBase); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Benchmark 2: the trace-driven simulator (Tables 1-4) ---

func BenchmarkTable1Dmine(b *testing.B) {
	params := benchTraceParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := tracesim.Table1(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Titan(b *testing.B) {
	params := benchTraceParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := tracesim.Table2(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3LU(b *testing.B) {
	params := benchTraceParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := tracesim.Table3(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Cholesky(b *testing.B) {
	params := benchTraceParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := tracesim.Table4(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPgrepReplay(b *testing.B) {
	// Pgrep has no table of its own in the paper but is part of the §3.1
	// application set; benchmark its replay alongside the others.
	params := benchTraceParams()
	for i := 0; i < b.N; i++ {
		if _, err := tracesim.RunApp("Pgrep", params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Benchmark 3: the web server (Tables 5-6, Figure 6) ---

func BenchmarkTable5WebServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := webserver.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6RepeatedReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := webserver.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ReadWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := webserver.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationPrefetch measures Cholesky replay with read-ahead on
// vs off: without prefetch, the sequential supernode scans fault page by
// page and the Table 4 spike pattern collapses into uniform slowness.
func BenchmarkAblationPrefetch(b *testing.B) {
	run := func(b *testing.B, prefetchPages int) {
		params := benchTraceParams()
		for i := 0; i < b.N; i++ {
			tr, err := tracegen.Cholesky(params)
			if err != nil {
				b.Fatal(err)
			}
			cfg := fsim.DefaultConfig()
			cfg.Cache.PrefetchPages = prefetchPages
			store, err := fsim.NewFileStore(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rp := tracesim.NewReplayer(store)
			rp.SampleFileSize = params.FileSize
			rep, err := rp.Replay("Cholesky", tr)
			if err != nil {
				b.Fatal(err)
			}
			// The interesting output is the warm/cold contrast on the
			// sequential mid-size rows: with read-ahead, request 4
			// (133692 B, continuing the supernode scan) is served from
			// prefetched pages; without it, the same row faults cold.
			var warmRow, coldRow float64
			nread := 0
			for _, r := range rep.Requests {
				if r.Op != trace.OpRead {
					continue
				}
				if nread == 3 {
					warmRow = r.ReadMS * 1000
				}
				if nread == 2 {
					coldRow = r.ReadMS * 1000
				}
				nread++
			}
			b.ReportMetric(warmRow, "seq-row-us")
			b.ReportMetric(coldRow, "jump-row-us")
		}
	}
	b.Run("prefetch=on", func(b *testing.B) { run(b, 64) })
	b.Run("prefetch=off", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblationJIT measures the Table 6 pipeline with the JIT cost
// model on vs off, isolating how much of the first-trial spike is
// compilation rather than cold cache.
func BenchmarkAblationJIT(b *testing.B) {
	run := func(b *testing.B, jit bool) {
		for i := 0; i < b.N; i++ {
			store, err := fsim.NewFileStore(fsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := workload.Install(store, workload.WebCorpus()); err != nil {
				b.Fatal(err)
			}
			store.Cache().Invalidate()
			vmCfg := vm.DefaultConfig()
			vmCfg.JITEnabled = jit
			rt := vm.MustNew(vmCfg, nil)
			rt.RegisterBCL()
			name := workload.WebCorpus()[3].Name
			var firstTrial time.Duration
			for trial := 0; trial < 6; trial++ {
				fs, openDur, err := vm.OpenFileStream(rt, store, name)
				if err != nil {
					b.Fatal(err)
				}
				_, readDur, err := fs.ReadAll()
				if err != nil {
					b.Fatal(err)
				}
				closeDur, _ := fs.Close()
				if trial == 0 {
					firstTrial = openDur + readDur + closeDur
				}
			}
			b.ReportMetric(float64(firstTrial.Microseconds()), "first-trial-us")
		}
	}
	b.Run("jit=on", func(b *testing.B) { run(b, true) })
	b.Run("jit=off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationStripe sweeps the disk-array stripe unit for a large
// striped read, the knob behind Figure 4's sensitivity.
func BenchmarkAblationStripe(b *testing.B) {
	for _, unit := range []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		b.Run(byteLabel(unit), func(b *testing.B) {
			array := simdisk.MustNewArray(8, unit, simdisk.DefaultParams())
			now := time.Unix(0, 0)
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				_, d := array.Access(now, simdisk.Request{Offset: 0, Length: 16 << 20})
				elapsed = d
				array.Reset()
			}
			b.ReportMetric(float64(elapsed.Microseconds()), "simulated-us/16MB-read")
		})
	}
}

// BenchmarkAblationCacheSize sweeps the page-cache capacity for the
// Dmine replay: once the working set outgrows the cache, rescans stop
// hitting.
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, pages := range []int{256, 1024, 4096, 16384} {
		b.Run(byteLabel(int64(pages)*4096), func(b *testing.B) {
			params := benchTraceParams()
			for i := 0; i < b.N; i++ {
				tr, err := tracegen.Dmine(params)
				if err != nil {
					b.Fatal(err)
				}
				cfg := fsim.DefaultConfig()
				cfg.Cache.NumPages = pages
				store, err := fsim.NewFileStore(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rp := tracesim.NewReplayer(store)
				rp.SampleFileSize = params.FileSize
				rep, err := rp.Replay("Dmine", tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Read.Mean()*1000, "read-us-mean")
			}
		})
	}
}

// BenchmarkAblationServerModel compares thread-per-connection (the
// paper's design) with a fixed worker pool under a burst of sequential
// clients.
func BenchmarkAblationServerModel(b *testing.B) {
	run := func(b *testing.B, poolSize int) {
		store, err := fsim.NewFileStore(fsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := workload.Install(store, workload.WebCorpus()); err != nil {
			b.Fatal(err)
		}
		rt := vm.MustNew(vm.DefaultConfig(), nil)
		rt.RegisterBCL()
		srv, err := webserver.New(webserver.Config{Store: store, Runtime: rt, PoolSize: poolSize})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := srv.Start()
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		name := workload.WebCorpus()[0].Name
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl, err := webserver.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 4; j++ {
				if _, err := cl.Get(name); err != nil {
					b.Fatal(err)
				}
			}
			cl.Close()
		}
	}
	b.Run("thread-per-conn", func(b *testing.B) { run(b, 0) })
	b.Run("pool=4", func(b *testing.B) { run(b, 4) })
}

// byteLabel renders a byte count compactly for sub-benchmark names.
func byteLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return itoa(n>>20) + "MB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return itoa(n>>10) + "KB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Extension benchmarks (§5 future work) ---

// BenchmarkVMCompare regenerates the cross-runtime Table 6 comparison.
func BenchmarkVMCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := vmcompare.Compare(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Profile.Name == "SSCLI" {
				b.ReportMetric(r.WarmupFactor(), "sscli-warmup-x")
			}
		}
	}
}

// BenchmarkDistLoad runs the distributed scaling sweep.
func BenchmarkDistLoad(b *testing.B) {
	cfg := distbench.DefaultConfig()
	cfg.RequestsPerNode = 16
	for i := 0; i < b.N; i++ {
		results, err := distbench.Sweep(cfg, []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[len(results)-1].Throughput, "req-per-s-at-16-nodes")
	}
}

// BenchmarkAblationScheduler compares disk scheduling policies on a
// scattered 32-request batch.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, policy := range []simdisk.SchedPolicy{simdisk.FCFS, simdisk.SSTF, simdisk.SCAN} {
		b.Run(policy.String(), func(b *testing.B) {
			// A 1 GB region makes the hashed offsets wrap many times, so
			// the batch arrives genuinely scattered (near-ascending
			// offsets would make all policies equivalent).
			params := simdisk.DefaultParams()
			params.Capacity = 1 << 30
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				d := simdisk.MustNew(params)
				reqs := make([]simdisk.Request, 32)
				for j := range reqs {
					off := int64(j*2654435761) % params.Capacity
					if off < 0 {
						off += params.Capacity
					}
					reqs[j] = simdisk.Request{Offset: off, Length: 64 << 10}
				}
				_, end := d.ServeBatch(time.Unix(0, 0), reqs, policy)
				makespan = end.Sub(time.Unix(0, 0))
			}
			b.ReportMetric(float64(makespan.Microseconds()), "simulated-us/batch")
		})
	}
}

// BenchmarkConcurrentReplay compares sequential and goroutine-per-process
// replay of the four-worker Pgrep trace.
func BenchmarkConcurrentReplay(b *testing.B) {
	params := benchTraceParams()
	tr, err := tracegen.Pgrep(params)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store, err := fsim.NewFileStore(fsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			rp := tracesim.NewReplayer(store)
			rp.SampleFileSize = params.FileSize
			if _, err := rp.Replay("Pgrep", tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store, err := fsim.NewFileStore(fsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			rp := tracesim.NewReplayer(store)
			rp.SampleFileSize = params.FileSize
			if _, err := rp.ReplayConcurrent("Pgrep", tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The same goroutine-per-process replay with the page cache
	// lock-striped (fsim.ShardedConfig): the end-to-end trajectory of the
	// sharded-cache work, comparable against "concurrent" above.
	b.Run("concurrent-sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store, err := fsim.NewFileStore(fsim.ShardedConfig())
			if err != nil {
				b.Fatal(err)
			}
			rp := tracesim.NewReplayer(store)
			rp.SampleFileSize = params.FileSize
			if _, err := rp.ReplayConcurrent("Pgrep", tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatedParallel is the virtual-time scaling trajectory:
// the n-worker partitioned workload replayed concurrently on an
// 8-stripe write-back store, one virtual-clock lane per worker. The
// headline metric is simulated throughput (operations per simulated
// second): per-worker lanes overlap, so it scales with workers, where
// the old shared clock kept it flat. overlap-x is WorkerTime/Elapsed,
// the simulated-parallel speedup; both are deterministic run to run.
func BenchmarkSimulatedParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			params := tracegen.Params{
				SampleFile: "sample.dat", FileSize: 32 << 20,
				Requests: 256, Workers: workers,
			}
			tr, err := tracegen.Parallel(params)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cfg := fsim.DefaultConfig()
				cfg.Cache.Shards = 8
				cfg.Cache.WritebackThreshold = 8
				cfg.Cache.WritebackPolicy = simdisk.SSTF
				store, err := fsim.NewFileStore(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rp := tracesim.NewReplayer(store)
				rp.SampleFileSize = params.FileSize
				rep, err := rp.ReplayConcurrent("Parallel", tr)
				store.Close()
				if err != nil {
					b.Fatal(err)
				}
				ops := float64(rep.Read.N() + rep.Write.N() + rep.Seek.N())
				b.ReportMetric(ops/rep.Elapsed.Seconds(), "sim-ops/sec")
				b.ReportMetric(float64(rep.WorkerTime)/float64(rep.Elapsed), "overlap-x")
			}
		})
	}
}

// BenchmarkAblationRAID replays the write-heavy LU trace over RAID-0,
// RAID-1 and RAID-5 arrays, exposing the redundancy write penalties.
func BenchmarkAblationRAID(b *testing.B) {
	for _, level := range []simdisk.Level{simdisk.RAID0, simdisk.RAID1, simdisk.RAID5} {
		b.Run(level.String(), func(b *testing.B) {
			params := benchTraceParams()
			for i := 0; i < b.N; i++ {
				tr, err := tracegen.LU(params)
				if err != nil {
					b.Fatal(err)
				}
				cfg := fsim.DefaultConfig()
				cfg.Disks = 4
				cfg.RAIDLevel = level
				store, err := fsim.NewFileStore(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rp := tracesim.NewReplayer(store)
				rp.SampleFileSize = params.FileSize
				rep, err := rp.Replay("LU", tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Close.Mean()*1000, "close-flush-us")
				b.ReportMetric(float64(rep.Elapsed.Microseconds()), "simulated-us/replay")
			}
		})
	}
}

// BenchmarkMixedWorkloadReplay replays the five applications' traces
// interleaved through one cache — the consolidation/contention case.
func BenchmarkMixedWorkloadReplay(b *testing.B) {
	params := benchTraceParams()
	tr, err := tracegen.Mixed(params)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		store, err := fsim.NewFileStore(fsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rp := tracesim.NewReplayer(store)
		rp.SampleFileSize = params.FileSize
		rep, err := rp.ReplayConcurrent("Mixed", tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(store.Cache().Stats().HitRate()*100), "cache-hit-%")
		b.ReportMetric(float64(rep.Elapsed.Microseconds()), "simulated-us/replay")
	}
}
