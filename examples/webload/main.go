// Webload runs the paper's multithreaded web server micro benchmark
// under concurrent load: it starts the server on an ephemeral port,
// drives it with several persistent-connection clients mixing GETs and
// POSTs, and reports the server-side I/O latency distribution plus the
// first-touch (JIT + cold cache) effect of §4.2.
//
//	go run ./examples/webload
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/metrics"
	"repro/internal/webserver"
	"repro/internal/workload"
)

func main() {
	h, err := webserver.NewHarness()
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	// First-touch effect: the very first GET pays JIT compilation and
	// cold buffer-cache misses.
	name := workload.WebCorpus()[0].Name
	first, err := h.Client.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	second, err := h.Client.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first GET %s: %.3f ms   second: %.3f ms   (%.0fx warm-up)\n\n",
		name,
		float64(first.ServerIOTime.Microseconds())/1000,
		float64(second.ServerIOTime.Microseconds())/1000,
		float64(first.ServerIOTime)/float64(second.ServerIOTime))

	// Concurrent load: 8 clients × 40 requests, one GET corpus rotation
	// with a POST every fourth request.
	const clients, requests = 8, 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	var gets, posts metrics.Sample
	serverAddr := h.ServerAddr()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := webserver.Dial(serverAddr)
			if err != nil {
				log.Print(err)
				return
			}
			defer cl.Close()
			corpus := workload.WebCorpus()
			for i := 0; i < requests; i++ {
				spec := corpus[(id+i)%len(corpus)]
				if i%4 == 3 {
					resp, err := cl.Post(spec.Name, workload.Payload(uint64(i), spec.Size))
					if err != nil {
						log.Print(err)
						return
					}
					mu.Lock()
					posts.AddDuration(resp.ServerIOTime)
					mu.Unlock()
				} else {
					resp, err := cl.Get(spec.Name)
					if err != nil {
						log.Print(err)
						return
					}
					mu.Lock()
					gets.AddDuration(resp.ServerIOTime)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("load: %d clients × %d requests\n", clients, requests)
	fmt.Printf("GET  server I/O: mean %.4f ms  p50 %.4f  p99 %.4f  (n=%d)\n",
		gets.Mean(), gets.Quantile(0.5), gets.Quantile(0.99), gets.N())
	fmt.Printf("POST server I/O: mean %.4f ms  p50 %.4f  p99 %.4f  (n=%d)\n",
		posts.Mean(), posts.Quantile(0.5), posts.Quantile(0.99), posts.N())

	recs := h.Server.Records()
	fmt.Printf("server recorded %d requests; store now holds %d files\n",
		len(recs), len(h.Store.Names()))
}
