// Quickstart shows the three-line path to regenerating the paper's
// results: pick experiments from the core registry and run them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	fmt.Println("CLI I/O benchmark suite — quickstart")
	fmt.Println("Available experiments:")
	for _, e := range core.Experiments() {
		fmt.Printf("  %-12s %s\n", e.ID, e.Title)
	}
	fmt.Println()

	// Regenerate one artifact from each of the paper's three benchmarks:
	// the model-error check (benchmark 1), the Cholesky table (benchmark
	// 2), and the web server warm-up table (benchmark 3).
	if err := core.Run(os.Stdout, []string{"errorcheck", "table4", "table6"}, "text"); err != nil {
		log.Fatal(err)
	}
}
