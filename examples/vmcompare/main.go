// Vmcompare runs the paper's future-work comparison (§5): the Table 6
// repeated-read workload under four managed-runtime calibrations — the
// SSCLI the paper measured, a commercial CLR, a HotSpot-style JVM, and a
// native-AOT baseline — all on identical simulated storage, so the
// differences are purely the runtimes'.
//
//	go run ./examples/vmcompare
package main

import (
	"fmt"
	"log"

	"repro/internal/vm"
	"repro/internal/vmcompare"
)

func main() {
	for _, p := range vm.Profiles() {
		fmt.Printf("%-8s %s\n", p.Name, p.Description)
	}
	fmt.Println()

	results, err := vmcompare.Compare(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(vmcompare.Table(results).Render())
	fmt.Println(vmcompare.Figure(results).RenderLines(44, 10))

	// The paper's conclusion, quantified across runtimes: the CLI's
	// first-touch penalty is a JIT artifact, not an I/O limitation.
	var sscli, native vmcompare.ProfileResult
	for _, r := range results {
		switch r.Profile.Name {
		case "SSCLI":
			sscli = r
		case "Native":
			native = r
		}
	}
	jitShare := (sscli.FirstTrialMS() - native.FirstTrialMS()) / sscli.FirstTrialMS() * 100
	fmt.Printf("SSCLI first-read penalty attributable to the managed runtime: %.1f%%\n", jitShare)
	fmt.Printf("steady-state gap SSCLI vs native: %.2fx\n", sscli.SteadyMS()/native.SteadyMS())
}
