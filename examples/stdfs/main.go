// Stdfs drives unmodified standard-library code — fs.WalkDir,
// fs.ReadFile, archive/tar — against the simulated store through the
// io/fs facade. The point of the facade is exactly this: any program
// written against fs.FS becomes a workload generator for the paper's
// engine, and the simulated I/O cost of everything it did is read back
// out-of-band from the facade's ledger without touching the program.
//
// The example builds a small document tree, walks it with fs.WalkDir,
// streams every file into a tar archive with fs.ReadFile, re-reads one
// file through the handle's io.Seeker side, and then prints what the
// run cost in simulated time — broken down per phase by sampling the
// ledger between phases.
//
//	go run ./examples/stdfs
package main

import (
	"archive/tar"
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"log"
	"time"

	"repro/internal/fsim"
	"repro/internal/fsim/stdfs"
)

func main() {
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// A document tree with nested prefixes; the facade synthesizes the
	// directories from the store's flat namespace.
	tree := map[string]string{
		"README.md":            "# simulated corpus\n",
		"docs/paper/intro.txt": "A performance study of software managed I/O.\n",
		"docs/paper/eval.txt":  "Tables 1-6 reproduce the published results.\n",
		"docs/design.md":       "## design\nsessions, lanes, shards\n",
		"data/trace.bin":       "UMDT....",
	}
	for name, data := range tree {
		if _, err := store.Create(name, []byte(data)); err != nil {
			log.Fatal(err)
		}
	}

	// Every request billed through fsys lands on its own session lane;
	// releasing the session folds the lane into the store's timeline.
	sess := store.NewSession()
	defer sess.Release()
	fsys := stdfs.New(sess)

	// Phase 1: walk the synthesized directory tree.
	fmt.Println("fs.WalkDir over the facade:")
	err = fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			fmt.Printf("  dir  %s/\n", p)
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		fmt.Printf("  file %s (%d bytes)\n", p, info.Size())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	walkCost := fsys.Cost()

	// Phase 2: archive the whole tree with unmodified archive/tar.
	var archive bytes.Buffer
	tw := tar.NewWriter(&archive)
	err = fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return err
		}
		if err := tw.WriteHeader(&tar.Header{Name: p, Size: int64(len(data)), Mode: 0o644}); err != nil {
			return err
		}
		_, err = tw.Write(data)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	tarCost := fsys.Cost() - walkCost
	fmt.Printf("\narchive/tar over fs.ReadFile: %d bytes\n", archive.Len())

	// Phase 3: partial re-read through the handle's io.Seeker side, with
	// the per-handle ledger isolating this one file's cost.
	f, err := fsys.Open("docs/paper/intro.txt")
	if err != nil {
		log.Fatal(err)
	}
	if s, ok := f.(io.Seeker); ok {
		if _, err := s.Seek(2, io.SeekStart); err != nil {
			log.Fatal(err)
		}
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	handleCost, _ := stdfs.Cost(f)
	f.Close()
	fmt.Printf("seek+read tail: %q\n", tail)

	fmt.Println("\nsimulated I/O cost (facade ledger):")
	fmt.Printf("  walk      %v\n", walkCost)
	fmt.Printf("  tar       %v\n", tarCost)
	fmt.Printf("  seek+read %v (per-handle ledger)\n", handleCost)
	fmt.Printf("  total     %v\n", fsys.Cost())
	fmt.Printf("session lane elapsed: %v\n", sess.Elapsed().Round(time.Microsecond))
}
