// Custommodel shows how to author a new application with the §2
// behavioral model and evaluate it on different machines — the workflow
// the paper recommends: "application developers can leverage the model
// ... to evaluate the performance of I/O- and communication-intensive
// applications without spending a huge amount of time implementing the
// applications."
//
// The example models a satellite-imagery pipeline: an ingest phase
// (I/O-heavy), an iterative processing stage (CPU-heavy with
// communication), and a result-writing phase (I/O-heavy) — then sweeps
// disks and CPUs to decide which upgrade pays off.
//
//	go run ./examples/custommodel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/appmodel"
)

func main() {
	// Γ vectors: (I/O fraction φ, comm fraction γ, relative time ρ, phases τ).
	pipeline := appmodel.Application{
		Name: "imagery-pipeline",
		Programs: []appmodel.Program{
			{
				Name: "worker",
				Sets: []appmodel.WorkingSet{
					{IOFrac: 0.85, CommFrac: 0.05, RelTime: 0.20, Phases: 1},  // ingest raw tiles
					{IOFrac: 0.10, CommFrac: 0.30, RelTime: 0.05, Phases: 10}, // iterate: compute + halo exchange
					{IOFrac: 0.90, CommFrac: 0.00, RelTime: 0.30, Phases: 1},  // write products
				},
			},
			{
				Name: "indexer",
				Sets: []appmodel.WorkingSet{
					{IOFrac: 0.60, CommFrac: 0.10, RelTime: 0.40, Phases: 1}, // build spatial index
				},
			},
		},
	}
	if err := pipeline.Validate(); err != nil {
		log.Fatal(err)
	}

	// Closed-form requirements (Eq. 3-5).
	req := pipeline.Requirements()
	fmt.Printf("model requirements: R_CPU=%.3f R_Disk=%.3f R_COM=%.3f (relative units)\n\n",
		req.CPU, req.Disk, req.Comm)

	base := 60 * time.Second
	baseline := appmodel.DefaultMachine()
	sim := appmodel.MustNewSimulator(baseline, base)
	res, err := sim.Run(pipeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (1 CPU, 1 disk): wall %v, CPU %.1f%%, IO %.1f%%, Comm %.1f%%\n\n",
		res.Wall.Round(time.Millisecond),
		res.App.CPUPercent(), res.App.IOPercent(), res.App.CommPercent())

	// Which helps more, disks or CPUs? Sweep both.
	counts := []int{2, 4, 8, 16, 32}
	diskSpeedups, err := appmodel.Speedups(pipeline, baseline, base, counts,
		func(m appmodel.Machine, n int) appmodel.Machine { return m.WithDisks(n) })
	if err != nil {
		log.Fatal(err)
	}
	cpuSpeedups, err := appmodel.Speedups(pipeline, baseline, base, counts,
		func(m appmodel.Machine, n int) appmodel.Machine { return m.WithCPUs(n) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count   disk speedup   CPU speedup")
	for i, n := range counts {
		fmt.Printf("%5d   %12.2f   %11.2f\n", n, diskSpeedups[i], cpuSpeedups[i])
	}
	fmt.Println()
	if diskSpeedups[len(counts)-1] > cpuSpeedups[len(counts)-1] {
		fmt.Println("verdict: this pipeline is I/O-bound — buy disks, not CPUs.")
	} else {
		fmt.Println("verdict: this pipeline is CPU-bound — buy CPUs, not disks.")
	}

	// Validate the simulation against the analytic evaluation, as §2.3
	// does against a real implementation.
	errRate, err := appmodel.SimulatorError(pipeline, baseline, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator-vs-analytic error: %.2f%%\n", errRate*100)
}
