// Distributed runs the paper's §5 future-work benchmark: the web-server
// workload in a multi-node environment. It sweeps client counts over a
// LAN, shows the single-server saturation point, then demonstrates the
// two remedies — replicating the server and moving to a faster fabric —
// and finally the WAN case where the network dwarfs everything.
//
// It closes with the fault-tolerance story: a three-replica cluster
// loses one server mid-sweep, the clients detect it by RPC deadline and
// fail over along the consistent-hash ring, and the availability curve
// shows the throughput dip and the recovery.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/distbench"
	"repro/internal/fsim"
	"repro/internal/netsim"
)

func main() {
	cfg := distbench.DefaultConfig()
	cfg.RequestsPerNode = 32

	fmt.Println("LAN, one server:")
	results, err := distbench.Sweep(cfg, distbench.NodeSweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(distbench.Table(results).Render())
	fmt.Println(distbench.Figure(results).RenderLines(44, 8))

	saturated := results[len(results)-1]

	// Remedy 1: replicate the server.
	replicated := cfg
	replicated.Nodes = saturated.Nodes
	replicated.Servers = 2
	repRes, err := distbench.Run(replicated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %d clients: 1 server %.0f req/s -> 2 servers %.0f req/s (%.2fx)\n",
		saturated.Nodes, saturated.Throughput, repRes.Throughput,
		repRes.Throughput/saturated.Throughput)

	// Remedy 2: faster fabric (10x the LAN bandwidth).
	fast := cfg
	fast.Nodes = saturated.Nodes
	fast.Net.Bandwidth *= 10
	fastRes, err := distbench.Run(fast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %d clients: 10x fabric bandwidth -> %.0f req/s (%.2fx)\n",
		saturated.Nodes, fastRes.Throughput, fastRes.Throughput/saturated.Throughput)

	// The WAN case: latency dominates and the curve flattens immediately.
	wan := cfg
	wan.Net = netsim.WANParams()
	wanResults, err := distbench.Sweep(wan, []int{1, 4, 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWAN, one server:")
	fmt.Println(distbench.Table(wanResults).Render())

	// Node loss: three replicas, one killed 20 ms into the run. Clients
	// route by consistent hash, declare the dead server after a 5 ms
	// deadline, and retry the next replica with exponential backoff; the
	// suspicion is per-client, so each client pays one timeout and then
	// routes around the corpse.
	faulty := cfg
	faulty.Servers = 3
	faulty.Deadline = 5 * time.Millisecond
	faulty.Retry = fsim.RetryPolicy{Max: 3, Base: 200 * time.Microsecond}
	plan, err := netsim.ParseFaultPlan("kill:server0@20ms")
	if err != nil {
		log.Fatal(err)
	}
	faulty.NetFaults = plan
	fmt.Println("LAN, three servers, server0 killed at 20ms (RPC deadline 5ms):")
	killResults, err := distbench.Sweep(faulty, []int{2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(distbench.Table(killResults).Render())
	worst := killResults[len(killResults)-1]
	fmt.Printf("at %d clients:\n", worst.Nodes)
	fmt.Print(distbench.FormatCurve(worst))
}
