// Distributed runs the paper's §5 future-work benchmark: the web-server
// workload in a multi-node environment. It sweeps client counts over a
// LAN, shows the single-server saturation point, then demonstrates the
// two remedies — replicating the server and moving to a faster fabric —
// and finally the WAN case where the network dwarfs everything.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/distbench"
	"repro/internal/netsim"
)

func main() {
	cfg := distbench.DefaultConfig()
	cfg.RequestsPerNode = 32

	fmt.Println("LAN, one server:")
	results, err := distbench.Sweep(cfg, distbench.NodeSweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(distbench.Table(results).Render())
	fmt.Println(distbench.Figure(results).RenderLines(44, 8))

	saturated := results[len(results)-1]

	// Remedy 1: replicate the server.
	replicated := cfg
	replicated.Nodes = saturated.Nodes
	replicated.Servers = 2
	repRes, err := distbench.Run(replicated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %d clients: 1 server %.0f req/s -> 2 servers %.0f req/s (%.2fx)\n",
		saturated.Nodes, saturated.Throughput, repRes.Throughput,
		repRes.Throughput/saturated.Throughput)

	// Remedy 2: faster fabric (10x the LAN bandwidth).
	fast := cfg
	fast.Nodes = saturated.Nodes
	fast.Net.Bandwidth *= 10
	fastRes, err := distbench.Run(fast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %d clients: 10x fabric bandwidth -> %.0f req/s (%.2fx)\n",
		saturated.Nodes, fastRes.Throughput, fastRes.Throughput/saturated.Throughput)

	// The WAN case: latency dominates and the curve flattens immediately.
	wan := cfg
	wan.Net = netsim.WANParams()
	wanResults, err := distbench.Sweep(wan, []int{1, 4, 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWAN, one server:")
	fmt.Println(distbench.Table(wanResults).Render())
}
