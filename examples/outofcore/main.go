// Outofcore demonstrates the trace pipeline end to end on the paper's
// out-of-core LU decomposition workload: synthesize the trace, write it
// to disk in the UMDT format, read it back, replay it against the
// simulated file store, and inspect both the per-operation report and
// the cache/disk statistics underneath.
//
//	go run ./examples/outofcore
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
)

func main() {
	// 1. Synthesize the LU trace: six seeks to 60-66 MB panel offsets,
	// each followed by a panel write (Table 3's request set).
	params := tracegen.DefaultParams()
	tr, err := tracegen.LU(params)
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.ComputeStats(tr)
	fmt.Printf("LU trace: %d records (%d seeks, %d writes) against %s\n",
		len(tr.Records), stats.Ops[trace.OpSeek], stats.Ops[trace.OpWrite],
		tr.Header.SampleFile)

	// 2. Round-trip through the binary format, as a tool pipeline would.
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes, decoded %d records back\n\n", buf.Len(), len(loaded.Records))

	// 3. Replay on the simulated store (1 GB sparse sample file).
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rp := tracesim.NewReplayer(store)
	rp.SampleFileSize = params.FileSize
	rep, err := rp.Replay("LU", loaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Table().Render())

	// 4. Per-request rows — the shape of the paper's Table 3.
	fmt.Println("per-request detail:")
	for _, r := range rep.Requests {
		if r.Op != trace.OpSeek {
			continue
		}
		fmt.Printf("  seek to %-10d  %.6f ms\n", r.Size, r.SeekMS)
	}
	fmt.Println()

	// 5. The substrate's view: cache hits and disk traffic.
	cs := store.Cache().Stats()
	ds := store.Array().TotalStats()
	fmt.Printf("cache: %d hits, %d misses (%.1f%% hit rate), %d pages prefetched\n",
		cs.Hits, cs.Misses, cs.HitRate()*100, cs.PrefetchedIn)
	fmt.Printf("disk:  %d reads, %d writes, %d MB in, %d MB out\n",
		ds.Reads, ds.Writes, ds.BytesRead>>20, ds.BytesWritten>>20)
}
