// Outofcore demonstrates the out-of-core trace pipeline: a v2
// (columnar) trace streams generator → encoder → pipe → Scanner →
// ReplayStream without ever materializing the record set, so peak heap
// stays flat no matter how many records flow through. The trace is
// synthesized on the fly, but the pipe carries the exact bytes a
// tracegen-authored file would — swap the generator goroutine for
// os.Open and nothing downstream changes.
//
//	go run ./examples/outofcore                     # 1M records, ~seconds
//	go run ./examples/outofcore -records 100000000  # 100M records, same heap
//
// Run it at 1e6 and again at 1e8: records/sec and bytes/record hold,
// and peak HeapAlloc is independent of -records — the decode loop is
// 0 allocs/record and the replay retains only histograms plus a fixed
// reservoir of sample rows, not the per-request table.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
)

// countWriter counts the encoded bytes crossing the pipe, so the demo
// can report the on-the-wire bytes/record of the columnar format.
type countWriter struct {
	w io.Writer
	n atomic.Int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

func main() {
	records := flag.Int("records", 1_000_000, "approximate record count to stream")
	workers := flag.Int("workers", 8, "Parallel workload worker processes")
	flag.Parse()

	params := tracegen.Params{
		SampleFile: "sample-1gb.dat",
		FileSize:   1 << 30,
		Requests:   *records,
		Workers:    *workers,
	}

	// Producer side: the generator streams records straight into the v2
	// encoder, which frames them into columnar blocks on the pipe. No
	// []Record ever exists; a trace file on disk would plug in here.
	pr, pw := io.Pipe()
	cw := &countWriter{w: pw}
	go func() {
		bw := bufio.NewWriterSize(cw, 1<<20)
		_, err := tracegen.EncodeV2(bw, "Parallel", params)
		if err == nil {
			err = bw.Flush()
		}
		pw.CloseWithError(err)
	}()

	// Consumer side: the Scanner decodes blocks as they arrive and
	// ReplayStream fans records out to per-PID session lanes.
	// StreamAggregate keeps the report bounded too — per-op latency
	// histograms plus a fixed-size reservoir of sample rows instead of
	// one row per request.
	sc, err := trace.NewScanner(bufio.NewReaderSize(pr, 1<<20))
	if err != nil {
		log.Fatal(err)
	}
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	rp := tracesim.NewReplayer(store)
	rp.SampleFileSize = params.FileSize
	rp.StreamAggregate = true

	// Sample peak HeapAlloc while the pipeline runs: the number to watch
	// when comparing -records 1000000 against -records 100000000.
	stop := make(chan struct{})
	sampled := make(chan struct{})
	var peak uint64
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	rep, err := rp.ReplayStream("Parallel", sc)
	wall := time.Since(start)
	close(stop)
	<-sampled
	if err != nil {
		log.Fatal(err)
	}

	var finalMS runtime.MemStats
	runtime.ReadMemStats(&finalMS)
	if finalMS.HeapAlloc > peak {
		peak = finalMS.HeapAlloc
	}

	encoded := cw.n.Load()
	fmt.Printf("streamed   %d records (%d requests) through a %d-byte pipe\n",
		sc.Count(), rep.TotalRequests, encoded)
	fmt.Printf("format     v2 columnar, %.1f bytes/record (v1 fixed-width: 48.0)\n",
		float64(encoded)/float64(sc.Count()))
	fmt.Printf("wall       %v (%.0f records/sec)\n",
		wall.Round(time.Millisecond), float64(sc.Count())/wall.Seconds())
	fmt.Printf("peak heap  %.1f MB (independent of -records)\n\n", float64(peak)/(1<<20))

	fmt.Println(rep.Table().Render())
	fmt.Printf("reads %d (mean %.4f ms)  writes %d (mean %.4f ms)  sim elapsed %v\n",
		rep.Read.N(), rep.Read.Mean(), rep.Write.N(), rep.Write.Mean(), rep.Elapsed)
	fmt.Printf("retained rows: %d of %d requests (reservoir sample; histograms carry every observation)\n",
		len(rep.Requests), rep.TotalRequests)
	fmt.Printf("read latency p50/p99: %.4f/%.4f ms over %d observations\n",
		rep.ReadHist.Quantile(0.50), rep.ReadHist.Quantile(0.99), rep.ReadHist.Total())
}
