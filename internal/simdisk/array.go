package simdisk

import (
	"fmt"
	"time"
)

// Array stripes a logical address space across N identical disks (RAID-0
// style), the configuration swept by the paper's Figure 4 disk-scaling
// experiment. A logical request is split at stripe-unit boundaries, the
// pieces are issued to their disks concurrently, and the array completes
// when the slowest piece completes.
type Array struct {
	disks      []*Disk
	stripeUnit int64
	level      Level
}

// NewArray builds an array of n disks with parameters p and the given
// stripe unit in bytes.
func NewArray(n int, stripeUnit int64, p Params) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simdisk: array needs at least 1 disk, got %d", n)
	}
	if stripeUnit <= 0 {
		return nil, fmt.Errorf("simdisk: stripe unit %d must be positive", stripeUnit)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Array{stripeUnit: stripeUnit}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, MustNew(p))
	}
	return a, nil
}

// MustNewArray is NewArray that panics on error, for literal wiring.
func MustNewArray(n int, stripeUnit int64, p Params) *Array {
	a, err := NewArray(n, stripeUnit, p)
	if err != nil {
		panic(err)
	}
	return a
}

// NumDisks returns the number of member disks.
func (a *Array) NumDisks() int { return len(a.disks) }

// StripeUnit returns the stripe unit in bytes.
func (a *Array) StripeUnit() int64 { return a.stripeUnit }

// Disk returns member disk i (for stats inspection).
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Capacity returns the logical capacity after redundancy overhead: all
// members for RAID-0, one member for RAID-1, n-1 members for RAID-5.
func (a *Array) Capacity() int64 { return a.usableCapacity() }

// Map translates a logical byte offset to (disk index, physical offset).
// The mapping is the usual striping bijection: stripe s lives on disk
// s mod N at physical stripe s div N.
func (a *Array) Map(logical int64) (disk int, physical int64) {
	if logical < 0 {
		logical = 0
	}
	stripe := logical / a.stripeUnit
	within := logical % a.stripeUnit
	disk = int(stripe % int64(len(a.disks)))
	physical = (stripe/int64(len(a.disks)))*a.stripeUnit + within
	return disk, physical
}

// Unmap is the inverse of Map, reconstructing the logical offset from a
// (disk, physical) pair. Together with Map it witnesses that striping is a
// bijection — a property test pins this down.
func (a *Array) Unmap(disk int, physical int64) int64 {
	stripeOnDisk := physical / a.stripeUnit
	within := physical % a.stripeUnit
	stripe := stripeOnDisk*int64(len(a.disks)) + int64(disk)
	return stripe*a.stripeUnit + within
}

// Access services a logical request starting no earlier than now,
// routing it according to the array's level. It returns the completion
// time and the elapsed duration from now to that completion.
func (a *Array) Access(now time.Time, req Request) (done time.Time, elapsed time.Duration) {
	done = a.accessLeveled(now, req)
	return done, done.Sub(now)
}

// accessStriped is the RAID-0 path: the request is split at stripe
// boundaries and the pieces are issued to their member disks
// concurrently.
func (a *Array) accessStriped(now time.Time, req Request) (done time.Time, elapsed time.Duration) {
	if req.Length <= 0 {
		// Pure positioning: charge the owning disk only.
		disk, phys := a.Map(req.Offset)
		done, _ = a.disks[disk].Access(now, Request{Offset: phys, Length: 0, Write: req.Write})
		return done, done.Sub(now)
	}
	done = now
	off := req.Offset
	remaining := req.Length
	for remaining > 0 {
		disk, phys := a.Map(off)
		// Length of this piece: up to the next stripe boundary.
		pieceLen := a.stripeUnit - off%a.stripeUnit
		if pieceLen > remaining {
			pieceLen = remaining
		}
		// Coalesce consecutive stripes that land on the same disk when the
		// array has one member (the degenerate case), otherwise issue per
		// stripe piece.
		pieceDone, _ := a.disks[disk].Access(now, Request{Offset: phys, Length: pieceLen, Write: req.Write})
		if pieceDone.After(done) {
			done = pieceDone
		}
		off += pieceLen
		remaining -= pieceLen
	}
	return done, done.Sub(now)
}

// Reset resets every member disk.
func (a *Array) Reset() {
	for _, d := range a.disks {
		d.Reset()
	}
}

// TotalStats sums the member disks' statistics.
func (a *Array) TotalStats() Stats {
	var total Stats
	for _, d := range a.disks {
		s := d.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.BytesRead += s.BytesRead
		total.BytesWritten += s.BytesWritten
		total.SeekTime += s.SeekTime
		total.RotationTime += s.RotationTime
		total.TransferTime += s.TransferTime
		total.BusyTime += s.BusyTime
		total.QueueWaitedTime += s.QueueWaitedTime
	}
	return total
}
