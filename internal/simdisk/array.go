package simdisk

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Array stripes a logical address space across N identical disks (RAID-0
// style), the configuration swept by the paper's Figure 4 disk-scaling
// experiment. A logical request is split at stripe-unit boundaries, the
// pieces are issued to their disks concurrently, and the array completes
// when the slowest piece completes.
type Array struct {
	disks      []*Disk
	stripeUnit int64
	level      Level
	// head is the logical offset the last request ended at, the position
	// ServeBatch schedules its next batch from. Member disks keep their
	// own physical heads; this one orders logical queues.
	head atomic.Int64
}

// NewArray builds an array of n disks with parameters p and the given
// stripe unit in bytes.
func NewArray(n int, stripeUnit int64, p Params) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simdisk: array needs at least 1 disk, got %d", n)
	}
	if stripeUnit <= 0 {
		return nil, fmt.Errorf("simdisk: stripe unit %d must be positive", stripeUnit)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Array{stripeUnit: stripeUnit}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, MustNew(p))
	}
	return a, nil
}

// MustNewArray is NewArray that panics on error, for literal wiring.
func MustNewArray(n int, stripeUnit int64, p Params) *Array {
	a, err := NewArray(n, stripeUnit, p)
	if err != nil {
		panic(err)
	}
	return a
}

// NumDisks returns the number of member disks.
func (a *Array) NumDisks() int { return len(a.disks) }

// StripeUnit returns the stripe unit in bytes.
func (a *Array) StripeUnit() int64 { return a.stripeUnit }

// Disk returns member disk i (for stats inspection).
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Capacity returns the logical capacity after redundancy overhead: all
// members for RAID-0, one member for RAID-1, n-1 members for RAID-5.
func (a *Array) Capacity() int64 { return a.usableCapacity() }

// Map translates a logical byte offset to (disk index, physical offset).
// The mapping is the usual striping bijection: stripe s lives on disk
// s mod N at physical stripe s div N.
func (a *Array) Map(logical int64) (disk int, physical int64) {
	if logical < 0 {
		logical = 0
	}
	stripe := logical / a.stripeUnit
	within := logical % a.stripeUnit
	disk = int(stripe % int64(len(a.disks)))
	physical = (stripe/int64(len(a.disks)))*a.stripeUnit + within
	return disk, physical
}

// Unmap is the inverse of Map, reconstructing the logical offset from a
// (disk, physical) pair. Together with Map it witnesses that striping is a
// bijection — a property test pins this down.
func (a *Array) Unmap(disk int, physical int64) int64 {
	stripeOnDisk := physical / a.stripeUnit
	within := physical % a.stripeUnit
	stripe := stripeOnDisk*int64(len(a.disks)) + int64(disk)
	return stripe*a.stripeUnit + within
}

// Access services a logical request starting no earlier than now,
// routing it according to the array's level. It returns the completion
// time and the elapsed duration from now to that completion.
func (a *Array) Access(now time.Time, req Request) (done time.Time, elapsed time.Duration) {
	done = a.accessLeveled(now, req)
	a.head.Store(req.Offset + req.Length)
	return done, done.Sub(now)
}

// Head returns the logical offset batch scheduling starts from.
func (a *Array) Head() int64 { return a.head.Load() }

// AccessRun services r.Count contiguous equal-length logical requests,
// bit-identical to the equivalent sequence of Access calls (pinned by
// TestArrayAccessRunMatchesSequentialAccess). On a RAID-0 array whose
// requests each lie within one stripe unit, maximal same-disk contiguous
// groups are forwarded to the member disk's AccessRun — one member lock
// acquisition per group instead of one per page; other layouts and
// levels fall back to per-request routing. It returns the last
// completion time and the elapsed duration from now to it, matching
// Access's elapsed semantics.
func (a *Array) AccessRun(now time.Time, r Run) (done time.Time, elapsed time.Duration) {
	done = now
	if r.Count <= 0 {
		return done, 0
	}
	t := now
	if a.level == RAID0 && r.Length > 0 {
		var (
			groupDisk  int
			groupPhys  int64
			groupCount int64
			prevPhys   int64
		)
		flush := func() {
			if groupCount == 0 {
				return
			}
			done, _ = a.disks[groupDisk].AccessRun(t, Run{
				Offset: groupPhys, Length: r.Length, Count: groupCount,
				Write: r.Write, Chain: r.Chain,
			})
			if r.Chain {
				t = done
			}
			groupCount = 0
		}
		off := r.Offset
		for i := int64(0); i < r.Count; i++ {
			if off%a.stripeUnit+r.Length > a.stripeUnit {
				// Straddles a stripe boundary: flush the group and route
				// this request through the general splitter.
				flush()
				done = a.accessLeveled(t, Request{Offset: off, Length: r.Length, Write: r.Write})
				if r.Chain {
					t = done
				}
				off += r.Length
				continue
			}
			disk, phys := a.Map(off)
			if groupCount > 0 && (disk != groupDisk || phys != prevPhys+r.Length) {
				flush()
			}
			if groupCount == 0 {
				groupDisk, groupPhys = disk, phys
			}
			groupCount++
			prevPhys = phys
			off += r.Length
		}
		flush()
	} else {
		off := r.Offset
		for i := int64(0); i < r.Count; i++ {
			done = a.accessLeveled(t, Request{Offset: off, Length: r.Length, Write: r.Write})
			if r.Chain {
				t = done
			}
			off += r.Length
		}
	}
	a.head.Store(r.Offset + r.Count*r.Length)
	return done, done.Sub(now)
}

// ServeBatch services a queue of simultaneously pending logical
// requests in the order chosen by policy, starting no earlier than now.
// Requests are ordered by logical offset from the array's logical head
// (the elevator runs above the striping layer, as an OS request queue
// does), then issued through Access so each piece queues on its member
// disk's busy horizon — command queueing across the whole array. It
// returns per-request results in submission order plus the batch
// completion time.
func (a *Array) ServeBatch(now time.Time, reqs []Request, policy SchedPolicy) ([]BatchResult, time.Time) {
	if len(reqs) == 0 {
		return nil, now
	}
	order := ScheduleOrder(a.Head(), reqs, policy)
	results := make([]BatchResult, len(reqs))
	end := now
	for _, idx := range order {
		done, svc := a.Access(now, reqs[idx])
		results[idx] = BatchResult{Index: idx, Done: done, Service: svc}
		if done.After(end) {
			end = done
		}
	}
	return results, end
}

// accessStriped is the RAID-0 path: the request is split at stripe
// boundaries and the pieces are issued to their member disks
// concurrently.
func (a *Array) accessStriped(now time.Time, req Request) (done time.Time, elapsed time.Duration) {
	if req.Length <= 0 {
		// Pure positioning: charge the owning disk only.
		disk, phys := a.Map(req.Offset)
		done, _ = a.disks[disk].Access(now, Request{Offset: phys, Length: 0, Write: req.Write})
		return done, done.Sub(now)
	}
	done = now
	off := req.Offset
	remaining := req.Length
	for remaining > 0 {
		disk, phys := a.Map(off)
		// Length of this piece: up to the next stripe boundary.
		pieceLen := a.stripeUnit - off%a.stripeUnit
		if pieceLen > remaining {
			pieceLen = remaining
		}
		// Coalesce consecutive stripes that land on the same disk when the
		// array has one member (the degenerate case), otherwise issue per
		// stripe piece.
		pieceDone, _ := a.disks[disk].Access(now, Request{Offset: phys, Length: pieceLen, Write: req.Write})
		if pieceDone.After(done) {
			done = pieceDone
		}
		off += pieceLen
		remaining -= pieceLen
	}
	return done, done.Sub(now)
}

// Reset resets every member disk and the logical head.
func (a *Array) Reset() {
	for _, d := range a.disks {
		d.Reset()
	}
	a.head.Store(0)
}

// TotalStats sums the member disks' statistics.
func (a *Array) TotalStats() Stats {
	var total Stats
	for _, d := range a.disks {
		total.Add(d.Stats())
	}
	return total
}
