package simdisk

import (
	"reflect"
	"testing"
)

// FuzzFaultPlanParse pins the parse -> format -> re-parse equivalence of
// the fault-plan grammar: any string ParseFaultPlan accepts must render
// (String) back into a string that re-parses to a deeply-equal plan, and
// the rendering must be a fixed point. The seed corpus under
// testdata/fuzz/FuzzFaultPlanParse is replayed under the race detector
// in CI alongside FuzzTraceV2 (see the Makefile race target).
func FuzzFaultPlanParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"fail:1@0s",
		"slow:0@1ms+200us..5ms",
		"slow:3@0s+1us",
		"media:2@0s:4096+8192",
		"fail:1@0s,slow:0@1ms+200us..5ms,media:2@0s:4096+8192",
		"media:2@0s:4096+8192,media:2@1ms:0+4096",
		"media:2@0s:4096+8192,media:2@0s:0+8192", // overlapping: must stay rejected
		"fail:-1@0s",                             // negative disk: must stay rejected
		"slow:0@2h45m+1.5s..3h",
		"kill:server2@50ms", // netsim grammar: not a disk fault kind
		"fail:0@0s,",
		"media:0@0s:9223372036854775807+1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseFaultPlan(s)
		if err != nil {
			return
		}
		if plan == nil {
			return // blank input: nil plan, renders ""
		}
		out := plan.String()
		plan2, err := ParseFaultPlan(out)
		if err != nil {
			t.Fatalf("parsed %q but re-parse of rendering %q failed: %v", s, out, err)
		}
		if !reflect.DeepEqual(plan, plan2) {
			t.Fatalf("round trip changed the plan:\n in: %q -> %+v\nout: %q -> %+v", s, plan, out, plan2)
		}
		if out2 := plan2.String(); out2 != out {
			t.Fatalf("rendering is not a fixed point: %q -> %q", out, out2)
		}
	})
}
