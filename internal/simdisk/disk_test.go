package simdisk

import (
	"testing"
	"testing/quick"
	"time"
)

func testParams() Params {
	p := DefaultParams()
	p.Capacity = 1 << 30 // 1 GB keeps seek distances meaningful in tests
	return p
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero capacity", func(p *Params) { p.Capacity = 0 }},
		{"zero rpm", func(p *Params) { p.RPM = 0 }},
		{"zero rate", func(p *Params) { p.TransferRate = 0 }},
		{"zero track", func(p *Params) { p.TrackSize = 0 }},
		{"negative seek", func(p *Params) { p.AvgSeek = -1 }},
		{"avg below t2t", func(p *Params) { p.AvgSeek = p.TrackToTrackSeek - 1 }},
		{"full below avg", func(p *Params) { p.FullStrokeSeek = p.AvgSeek - 1 }},
	}
	for _, tc := range cases {
		p := testParams()
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	p := testParams()
	p.Capacity = -5
	if _, err := New(p); err == nil {
		t.Fatal("New accepted invalid params")
	}
}

func TestTransferTimeScalesWithLength(t *testing.T) {
	d := MustNew(testParams())
	now := time.Unix(0, 0)
	_, small := d.Access(now, Request{Offset: 0, Length: 4 << 10})
	d.Reset()
	_, large := d.Access(now, Request{Offset: 0, Length: 4 << 20})
	if large <= small {
		t.Fatalf("1000x larger transfer not slower: small=%v large=%v", small, large)
	}
}

func TestSeekDistanceIncreasesService(t *testing.T) {
	d := MustNew(testParams())
	near := d.ServiceTime(Request{Offset: 4096, Length: 0})
	far := d.ServiceTime(Request{Offset: d.Params().Capacity - 1, Length: 0})
	if far <= near {
		t.Fatalf("long seek not slower: near=%v far=%v", near, far)
	}
}

func TestZeroDistanceSeekIsFree(t *testing.T) {
	d := MustNew(testParams())
	now := time.Unix(0, 0)
	d.Access(now, Request{Offset: 1000, Length: 0})
	// Head is now at 1000; re-access same offset: no seek, no rotation.
	svc := d.ServiceTime(Request{Offset: 1000, Length: 0})
	if svc != d.Params().ControllerOverhead {
		t.Fatalf("same-position access = %v, want controller overhead %v",
			svc, d.Params().ControllerOverhead)
	}
}

func TestAccessQueuesBehindBusyDisk(t *testing.T) {
	d := MustNew(testParams())
	now := time.Unix(0, 0)
	done1, _ := d.Access(now, Request{Offset: 0, Length: 1 << 20})
	done2, _ := d.Access(now, Request{Offset: 1 << 20, Length: 1 << 20})
	if !done2.After(done1) {
		t.Fatalf("second request must finish after first: %v vs %v", done2, done1)
	}
	if d.Stats().QueueWaitedTime <= 0 {
		t.Fatal("second request should have queued")
	}
}

func TestAccessDeterministic(t *testing.T) {
	run := func() []time.Duration {
		d := MustNew(testParams())
		now := time.Unix(0, 0)
		var out []time.Duration
		offsets := []int64{0, 12345, 999999, 4096, 777777777 % d.Params().Capacity}
		for _, off := range offsets {
			_, svc := d.Access(now, Request{Offset: off, Length: 64 << 10})
			out = append(out, svc)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic service time at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := MustNew(testParams())
	now := time.Unix(0, 0)
	d.Access(now, Request{Offset: 0, Length: 100, Write: false})
	d.Access(now, Request{Offset: 500, Length: 200, Write: true})
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("ops = %d/%d, want 1/1", s.Reads, s.Writes)
	}
	if s.BytesRead != 100 || s.BytesWritten != 200 {
		t.Fatalf("bytes = %d/%d, want 100/200", s.BytesRead, s.BytesWritten)
	}
	if s.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", s.Ops())
	}
	if s.BusyTime <= 0 {
		t.Fatal("busy time not accumulated")
	}
}

func TestResetClearsState(t *testing.T) {
	d := MustNew(testParams())
	d.Access(time.Unix(0, 0), Request{Offset: 1 << 20, Length: 4096})
	d.Reset()
	if d.Stats().Ops() != 0 {
		t.Fatal("reset did not clear stats")
	}
	svc := d.ServiceTime(Request{Offset: 0, Length: 0})
	if svc != d.Params().ControllerOverhead {
		t.Fatalf("reset did not rewind head: %v", svc)
	}
}

func TestOffsetClamping(t *testing.T) {
	d := MustNew(testParams())
	now := time.Unix(0, 0)
	// Neither out-of-range offset may panic.
	d.Access(now, Request{Offset: -100, Length: 10})
	d.Access(now, Request{Offset: d.Params().Capacity + 500, Length: 10})
}

func TestServiceTimeNonNegativeProperty(t *testing.T) {
	d := MustNew(testParams())
	f := func(off int64, length uint32) bool {
		svc := d.ServiceTime(Request{Offset: off, Length: int64(length)})
		return svc >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeekCurveConcave(t *testing.T) {
	// The seek curve must grow sub-linearly: doubling the distance must
	// less than double the incremental seek cost.
	d := MustNew(testParams())
	cap := d.Params().Capacity
	quarter := d.seekTime(cap / 4)
	half := d.seekTime(cap / 2)
	threeQ := d.seekTime(3 * (cap / 4))
	if !(quarter < half && half < threeQ) {
		t.Fatalf("seek not increasing: %v %v %v", quarter, half, threeQ)
	}
	if threeQ-half >= half-quarter {
		t.Fatalf("seek curve not concave: deltas %v then %v", half-quarter, threeQ-half)
	}
}
