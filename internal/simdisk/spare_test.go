package simdisk

import (
	"strings"
	"testing"
	"time"
)

var spareEpoch = time.Unix(0, 0)

func TestSparePoolBounds(t *testing.T) {
	sp, err := NewSparePool(2, MemoryBackedParams())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 2 || sp.Available() != 2 {
		t.Fatalf("fresh pool size=%d avail=%d, want 2/2", sp.Size(), sp.Available())
	}
	a, err := sp.Take()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Take(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Take(); err == nil {
		t.Fatalf("third Take from a 2-spare pool should error")
	} else if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("exhaustion error %q should say so", err)
	}
	sp.Put(a)
	if sp.Available() != 1 {
		t.Fatalf("avail after Put = %d, want 1", sp.Available())
	}
	if _, err := NewSparePool(-1, MemoryBackedParams()); err == nil {
		t.Fatalf("negative pool size accepted")
	}
}

// TestConcurrentRebuildsFromPool pins the multi-rebuild story: a RAID1
// 3-mirror loses two members at t0, both rebuild onto pool spares
// starting at the same simulated instant (contending for the lone
// survivor's head), and after both Finish each member's stats carry
// exactly its rebuild's writes.
func TestConcurrentRebuildsFromPool(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	a, err := NewArrayLevel(3, su, RAID1, p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("fail:1@0s,fail:2@0s")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyFaultPlan(spareEpoch, plan); err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparePool(2, p)
	if err != nil {
		t.Fatal(err)
	}
	used := 4 * su
	var rbs []*Rebuild
	for _, member := range []int{1, 2} {
		spare, err := sp.Take()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := a.NewRebuildOnto(member, used, spare)
		if err != nil {
			t.Fatal(err)
		}
		rbs = append(rbs, rb)
	}
	// Interleave the two rebuild streams step by step: both issue from
	// the same simulated start, so their reconstruction reads contend on
	// member 0, the only survivor.
	times := []time.Time{spareEpoch, spareEpoch}
	for done := 0; done < 2; {
		done = 0
		for i, rb := range rbs {
			if next, ok := rb.Step(times[i], a); ok {
				times[i] = next
			} else {
				done++
			}
		}
	}
	for i, rb := range rbs {
		if got := rb.Spare().Stats().RebuildWrites; got != rb.Rows() {
			t.Fatalf("rebuild %d spare writes %d, want rows %d", i, got, rb.Rows())
		}
		if err := rb.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	for _, member := range []int{1, 2} {
		if a.Disk(member).Failed(times[0]) {
			t.Fatalf("member %d still failed after Finish", member)
		}
		if got := a.Disk(member).Stats().RebuildWrites; got != 4 {
			t.Fatalf("member %d RebuildWrites %d, want 4", member, got)
		}
	}
	if a.Disk(0).Stats().RebuildWrites != 0 {
		t.Fatalf("survivor should carry no rebuild writes")
	}
	if sp.Available() != 0 {
		t.Fatalf("pool should be drained, have %d", sp.Available())
	}
}

func TestNewRebuildOntoNeedsSpare(t *testing.T) {
	a, err := NewArrayLevel(2, 64<<10, RAID1, MemoryBackedParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewRebuildOnto(1, 0, nil); err == nil {
		t.Fatalf("nil spare accepted")
	}
}

func TestParseFaultPlanPositionedValidation(t *testing.T) {
	// Negative disk indices are out of range on every geometry: rejected
	// at parse time, naming the offending fault.
	_, err := ParseFaultPlan("fail:0@0s,fail:-2@1ms")
	if err == nil || !strings.Contains(err.Error(), `fault 1 "fail:-2@1ms"`) {
		t.Fatalf("negative disk error %v should position fault 1", err)
	}
	// Overlapping media ranges on the same disk: rejected at parse time,
	// naming both faults.
	_, err = ParseFaultPlan("media:2@0s:4096+8192,fail:0@0s,media:2@1ms:8192+4096")
	if err == nil {
		t.Fatalf("overlapping media ranges accepted")
	}
	for _, want := range []string{"fault 2", "fault 0", "overlaps", `"media:2@1ms:8192+4096"`, `"media:2@0s:4096+8192"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("overlap error %q missing %q", err, want)
		}
	}
	// Same ranges on different disks, or adjacent ranges on one disk, are
	// fine.
	for _, ok := range []string{
		"media:1@0s:4096+8192,media:2@0s:4096+8192",
		"media:1@0s:0+4096,media:1@0s:4096+4096",
	} {
		if _, err := ParseFaultPlan(ok); err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", ok, err)
		}
	}
	// The same structural checks guard programmatic plans via Validate.
	plan := &FaultPlan{Faults: []Fault{
		{Disk: 1, Kind: FaultMedia, Offset: 0, Length: 100},
		{Disk: 1, Kind: FaultMedia, At: time.Millisecond, Offset: 50, Length: 10},
	}}
	if err := plan.Validate(4, RAID5); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("Validate missed programmatic overlap (err=%v)", err)
	}
}
