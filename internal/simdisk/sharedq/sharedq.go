// Package sharedq is the shared disk-queue subsystem: a discrete-event
// merge where the disk requests of many virtual-time lanes meet in one
// simulated command queue instead of each lane owning a private
// disk-timing view.
//
// The private-view model (fsim's default) is optimistic under
// concurrency: eight workers never queue behind each other, seek
// interleaving between streams is invisible, and the FCFS/SSTF/SCAN
// ablation only separates on the background write-back drain. This
// package makes contention real while keeping the repository's
// determinism bar: the dispatch order is a pure function of the lanes'
// simulated timestamps, never of goroutine scheduling.
//
// # Model
//
// A Queue fronts one Device (a *simdisk.Disk or *simdisk.Array — the
// existing serviceLocked/AccessRun cost model is reused unchanged).
// Each concurrent actor holds a Lane and submits timestamped requests;
// the queue dispatches the pending entry chosen by the configured
// scheduling policy among those that have "arrived" by the decision
// time, services it on the device (whose busy horizon turns into
// queueing delay exactly as a real command queue would), and hands the
// completion time back to blocked submitters.
//
// # Conservative dispatch
//
// Dispatch is conservative in the parallel-discrete-event sense: an
// entry is served only when no lane can still submit a request that
// should have gone first. Each lane carries a free bound — the earliest
// simulated time at which it could still submit:
//
//   - a lane blocked in a synchronous submission cannot submit anything
//     else, so it never gates dispatch;
//   - a parked lane (see Lane.Park) has promised not to submit until
//     something external wakes it, so it does not gate dispatch either;
//   - any other lane bounds future arrivals by max(horizon, last
//     arrival), where the horizon advances via Lane.Advance — the hook
//     fsim calls at the start of every operation.
//
// The decision time for the next dispatch is S = max(device busy
// horizon, earliest pending arrival). Once every gating lane's free
// bound is strictly past S, the serving set {pending entries with
// arrival <= S} is complete, and the policy picks from it: FCFS by
// (arrival, lane, sequence), SSTF by seek distance from the current
// head, SCAN by the elevator sweep with a persistent direction. All tie
// breaks are total orders, so the chosen sequence is identical across
// runs regardless of wall-clock interleaving.
//
// # Asynchronous submissions
//
// Requests issued while the caller holds a cache shard lock (eviction
// write-backs, readahead) must not block: a lane waiting on a shard
// mutex held by another lane could otherwise never produce its
// earlier-timestamped request, deadlocking the merge on a causality
// inversion. Those go through AccessAsync/AccessRunAsync: enqueued
// fire-and-forget, with the submission time returned as the completion
// stand-in. When the queue has exactly one registered lane and nothing
// pending, every submission — sync or async — is served inline on the
// device, which makes the single-lane shared queue bit-identical to the
// private-view path.
package sharedq

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/simdisk"
)

// Device is the disk model behind the queue. Both *simdisk.Disk and
// *simdisk.Array satisfy it; the queue adds ordering and contention on
// top, never cost arithmetic of its own.
type Device interface {
	Access(now time.Time, req simdisk.Request) (done time.Time, service time.Duration)
	AccessRun(now time.Time, r simdisk.Run) (done time.Time, service time.Duration)
	ServeBatch(now time.Time, reqs []simdisk.Request, policy simdisk.SchedPolicy) ([]simdisk.BatchResult, time.Time)
	Head() int64
}

// Stats counts what moved through the queue. Snapshot via Queue.Stats.
type Stats struct {
	// Dispatches is every served entry, including single-lane inline
	// serves; Sync/Async split it by submission kind (batches count as
	// sync — the flush sweep blocks on them).
	Dispatches      int64
	SyncDispatches  int64
	AsyncDispatches int64
	// Batches is the subset of dispatches that were ServeBatch sweeps.
	Batches int64
	// QueueDelay accumulates, over every queued dispatch (sync and
	// async alike), the time an entry spent waiting behind other lanes'
	// work: completion minus arrival minus pure service. This is the
	// contention the private model could not see.
	QueueDelay time.Duration
	// MaxPending is the high-water mark of the pending set.
	MaxPending int
}

// Queue is the shared command queue. Construct with New; all methods
// are safe for concurrent use by the lanes' goroutines.
type Queue struct {
	dev    Device
	policy simdisk.SchedPolicy

	mu   sync.Mutex
	cond *sync.Cond
	// lanes is the registered, unreleased lane set — the gate domain.
	lanes map[*Lane]struct{}
	// pending holds submitted, not-yet-served entries across all lanes.
	pending []*entry
	// busy is the completion horizon of dispatched work: the simulated
	// instant the device frees up (max over completions for arrays).
	busy time.Time
	// edge is the latest arrival ever dispatched. Lanes joining
	// mid-flight start at or past it, so a newcomer cannot submit into
	// the already-served past.
	edge time.Time
	// scanUp is SCAN's persistent elevator direction.
	scanUp bool
	nextID int
	stats  Stats
}

// Lane is one actor's port into the queue. A Lane must be used by a
// single goroutine at a time (the same contract as fsim.Session); it
// satisfies buffercache's Backend, RunBackend, BatchBackend, and
// AsyncBackend capabilities, so a cache IO can sit directly on it.
type Lane struct {
	q  *Queue
	id int
	// horizon is the lane's promise: no future submission arrives
	// strictly before it (advanced by Advance at each operation start).
	horizon time.Time
	// lastArrival enforces per-lane arrival monotonicity; together with
	// horizon it forms the free bound the dispatch gate checks.
	lastArrival time.Time
	// seq numbers this lane's submissions for the FCFS tie break.
	seq uint64
	// syncPending counts blocking submissions in flight (0 or 1); such
	// a lane cannot submit more, so it never gates dispatch.
	syncPending int
	parked      bool
}

// opKind selects how an entry hits the device when dispatched.
type opKind uint8

const (
	opReq opKind = iota
	opRun
	opBatch
)

// entry is one submitted request (or request batch) waiting in the
// shared queue.
type entry struct {
	lane    *Lane
	seq     uint64
	kind    opKind
	arrival time.Time

	req    simdisk.Request
	run    simdisk.Run
	reqs   []simdisk.Request   // opBatch
	policy simdisk.SchedPolicy // opBatch: the submitter's sweep policy

	sync    bool
	served  bool
	done    time.Time
	service time.Duration
	results []simdisk.BatchResult // opBatch
}

// offset is the entry's leading device offset, the policy sort key.
func (e *entry) offset() int64 {
	switch e.kind {
	case opRun:
		return e.run.Offset
	case opBatch:
		return e.reqs[0].Offset
	default:
		return e.req.Offset
	}
}

// New builds a queue over dev ordered by policy.
func New(dev Device, policy simdisk.SchedPolicy) (*Queue, error) {
	if dev == nil {
		return nil, fmt.Errorf("sharedq: nil device")
	}
	if !policy.Valid() {
		return nil, fmt.Errorf("sharedq: invalid scheduling policy %d", int(policy))
	}
	q := &Queue{
		dev:    dev,
		policy: policy,
		lanes:  make(map[*Lane]struct{}),
		scanUp: true,
	}
	q.cond = sync.NewCond(&q.mu)
	return q, nil
}

// MustNew is New for validated configurations.
func MustNew(dev Device, policy simdisk.SchedPolicy) *Queue {
	q, err := New(dev, policy)
	if err != nil {
		panic(err)
	}
	return q
}

// Policy returns the queue's scheduling policy.
func (q *Queue) Policy() simdisk.SchedPolicy { return q.policy }

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Lanes returns the number of registered lanes.
func (q *Queue) Lanes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.lanes)
}

// NewLane registers a lane whose submissions begin no earlier than
// start. A lane joining an in-flight merge is floored at the queue's
// dispatch edge: it starts "now", not in the already-served past.
func (q *Queue) NewLane(start time.Time) *Lane {
	q.mu.Lock()
	defer q.mu.Unlock()
	l := &Lane{
		q:           q,
		id:          q.nextID,
		horizon:     clock.MaxTime(start, q.edge),
		lastArrival: clock.MaxTime(start, q.edge),
	}
	q.nextID++
	q.lanes[l] = struct{}{}
	return l
}

// Advance is the lane's lookahead promise: no future submission will
// arrive strictly before now. fsim calls it at the start of every
// operation; it also unparks the lane. Moving backwards is a no-op.
func (l *Lane) Advance(now time.Time) {
	q := l.q
	q.mu.Lock()
	l.parked = false
	if now.After(l.horizon) {
		l.horizon = now
	}
	q.dispatchLocked()
	q.mu.Unlock()
}

// Park declares the lane idle: it will not submit again until an
// external event (a new replay record, a request on the connection)
// wakes it through Advance or a submission. Parked lanes do not gate
// dispatch — this is what lets the merge finish when workers complete
// at different times.
func (l *Lane) Park() {
	q := l.q
	q.mu.Lock()
	l.parked = true
	q.dispatchLocked()
	q.mu.Unlock()
}

// Release unregisters the lane. Any of its still-pending asynchronous
// entries stay in the queue and are served normally; the lane must not
// submit after Release.
func (l *Lane) Release() {
	q := l.q
	q.mu.Lock()
	delete(q.lanes, l)
	l.parked = true
	q.dispatchLocked()
	q.mu.Unlock()
}

// Access submits a blocking request: the caller's simulated operation
// cannot proceed until the device has served it. The returned
// completion includes any time spent queued behind other lanes.
func (l *Lane) Access(now time.Time, req simdisk.Request) (time.Time, time.Duration) {
	q := l.q
	q.mu.Lock()
	now = l.clampLocked(now)
	if q.soleLocked(l) {
		done, svc := q.dev.Access(now, req)
		q.noteInlineLocked(l, now, done, true)
		q.mu.Unlock()
		return done, svc
	}
	e := q.enqueueLocked(l, now, true)
	e.kind = opReq
	e.req = req
	q.dispatchLocked()
	for !e.served {
		q.cond.Wait()
	}
	q.mu.Unlock()
	return e.done, e.service
}

// AccessRun submits a blocking contiguous run, the cold path's bulk
// shape. The run is one scheduling unit: the policy orders it against
// other entries by its leading offset, and the device bills it through
// AccessRun unchanged.
func (l *Lane) AccessRun(now time.Time, r simdisk.Run) (time.Time, time.Duration) {
	q := l.q
	q.mu.Lock()
	now = l.clampLocked(now)
	if q.soleLocked(l) {
		done, svc := q.dev.AccessRun(now, r)
		q.noteInlineLocked(l, now, done, true)
		q.mu.Unlock()
		return done, svc
	}
	e := q.enqueueLocked(l, now, true)
	e.kind = opRun
	e.run = r
	q.dispatchLocked()
	for !e.served {
		q.cond.Wait()
	}
	q.mu.Unlock()
	return e.done, e.service
}

// ServeBatch submits a blocking sweep (a flush of many dirty pages) as
// one scheduling unit, ordered internally by the submitter's policy
// when dispatched. Satisfies buffercache's BatchBackend.
func (l *Lane) ServeBatch(now time.Time, reqs []simdisk.Request, policy simdisk.SchedPolicy) ([]simdisk.BatchResult, time.Time) {
	if len(reqs) == 0 {
		return nil, now
	}
	q := l.q
	q.mu.Lock()
	now = l.clampLocked(now)
	if q.soleLocked(l) {
		res, end := q.dev.ServeBatch(now, reqs, policy)
		q.noteInlineLocked(l, now, end, true)
		q.stats.Batches++
		q.mu.Unlock()
		return res, end
	}
	e := q.enqueueLocked(l, now, true)
	e.kind = opBatch
	e.reqs = append([]simdisk.Request(nil), reqs...)
	e.policy = policy
	q.dispatchLocked()
	for !e.served {
		q.cond.Wait()
	}
	q.mu.Unlock()
	return e.results, e.done
}

// AccessAsync submits a fire-and-forget request — an eviction
// write-back or a readahead issued under a cache shard lock, where
// blocking would deadlock the merge. With one lane it is served inline
// and the true completion returns (preserving private-path equivalence);
// with contention it is enqueued and the submission time stands in.
func (l *Lane) AccessAsync(now time.Time, req simdisk.Request) time.Time {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	now = l.clampLocked(now)
	if q.soleLocked(l) {
		done, _ := q.dev.Access(now, req)
		q.noteInlineLocked(l, now, done, false)
		return done
	}
	e := q.enqueueLocked(l, now, false)
	e.kind = opReq
	e.req = req
	q.dispatchLocked()
	return now
}

// AccessRunAsync is AccessAsync for contiguous runs.
func (l *Lane) AccessRunAsync(now time.Time, r simdisk.Run) time.Time {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	now = l.clampLocked(now)
	if q.soleLocked(l) {
		done, _ := q.dev.AccessRun(now, r)
		q.noteInlineLocked(l, now, done, false)
		return done
	}
	e := q.enqueueLocked(l, now, false)
	e.kind = opRun
	e.run = r
	q.dispatchLocked()
	return now
}

// clampLocked enforces per-lane arrival monotonicity: a submission never
// lands before the lane's promise horizon or its previous arrival.
func (l *Lane) clampLocked(now time.Time) time.Time {
	now = clock.MaxTime(now, l.horizon)
	return clock.MaxTime(now, l.lastArrival)
}

// soleLocked reports whether l is the only registered lane and nothing
// is pending — the inline fast path that makes a single-lane shared
// queue bit-identical to a private device.
func (q *Queue) soleLocked(l *Lane) bool {
	if len(q.pending) != 0 || len(q.lanes) != 1 {
		return false
	}
	_, ok := q.lanes[l]
	return ok
}

// noteInlineLocked records an inline (sole-lane) serve in the lane and
// queue state, so a later second lane joins a consistent merge.
func (q *Queue) noteInlineLocked(l *Lane, arrival, done time.Time, syn bool) {
	l.parked = false
	l.lastArrival = arrival
	q.busy = clock.MaxTime(q.busy, done)
	q.edge = clock.MaxTime(q.edge, arrival)
	q.stats.Dispatches++
	if syn {
		q.stats.SyncDispatches++
	} else {
		q.stats.AsyncDispatches++
	}
}

// enqueueLocked appends a pending entry for l arriving at now (already
// clamped). The caller fills in the kind-specific payload.
func (q *Queue) enqueueLocked(l *Lane, now time.Time, syn bool) *entry {
	e := &entry{lane: l, seq: l.seq, arrival: now, sync: syn}
	l.seq++
	l.parked = false
	l.lastArrival = now
	if syn {
		l.syncPending++
	}
	q.pending = append(q.pending, e)
	if len(q.pending) > q.stats.MaxPending {
		q.stats.MaxPending = len(q.pending)
	}
	return e
}

// dispatchLocked serves every entry that is safe to serve, then wakes
// blocked submitters if anything completed. Called after every state
// change (submit, advance, park, release) — the gate only ever opens on
// one of those.
func (q *Queue) dispatchLocked() {
	served := false
	for {
		e := q.selectLocked()
		if e == nil {
			break
		}
		q.serveLocked(e)
		served = true
	}
	if served {
		q.cond.Broadcast()
	}
}

// selectLocked picks the next entry to serve, or nil when none is safe:
// the conservative gate plus the policy choice.
func (q *Queue) selectLocked() *entry {
	if len(q.pending) == 0 {
		return nil
	}
	earliest := q.pending[0].arrival
	for _, e := range q.pending[1:] {
		earliest = clock.MinTime(earliest, e.arrival)
	}
	s := clock.MaxTime(q.busy, earliest)
	// The gate: every lane that could still submit must be provably past
	// the decision time, else a not-yet-visible earlier request could
	// exist and the serving set is not complete.
	for l := range q.lanes {
		if l.parked || l.syncPending > 0 {
			continue
		}
		if !clock.MaxTime(l.horizon, l.lastArrival).After(s) {
			return nil
		}
	}
	return q.pickLocked(s)
}

// pickLocked chooses among entries arrived by s under the queue policy.
// Every comparison bottoms out in (arrival, lane id, sequence) — a
// total order — so the choice is deterministic whatever the wall-clock
// submission interleaving was.
func (q *Queue) pickLocked(s time.Time) *entry {
	var best *entry
	head := q.dev.Head()
	better := func(e, b *entry) bool {
		switch q.policy {
		case simdisk.SSTF:
			de, db := absDist(e.offset(), head), absDist(b.offset(), head)
			if de != db {
				return de < db
			}
		case simdisk.SCAN:
			eUp, bUp := e.offset() >= head, b.offset() >= head
			if q.scanUp {
				if eUp != bUp {
					return eUp // sweep up before turning around
				}
				if e.offset() != b.offset() {
					if eUp {
						return e.offset() < b.offset()
					}
					return e.offset() > b.offset()
				}
			} else {
				down := func(off int64) bool { return off <= head }
				if down(e.offset()) != down(b.offset()) {
					return down(e.offset())
				}
				if e.offset() != b.offset() {
					if down(e.offset()) {
						return e.offset() > b.offset()
					}
					return e.offset() < b.offset()
				}
			}
		}
		return arrivalLess(e, b)
	}
	for _, e := range q.pending {
		if e.arrival.After(s) {
			continue
		}
		if best == nil || better(e, best) {
			best = e
		}
	}
	if best != nil && q.policy == simdisk.SCAN {
		// Persist the elevator direction the chosen dispatch implies.
		if best.offset() > head {
			q.scanUp = true
		} else if best.offset() < head {
			q.scanUp = false
		}
	}
	return best
}

// arrivalLess is the FCFS total order: arrival, then lane id, then the
// lane-local submission sequence.
func arrivalLess(e, b *entry) bool {
	if !e.arrival.Equal(b.arrival) {
		return e.arrival.Before(b.arrival)
	}
	if e.lane.id != b.lane.id {
		return e.lane.id < b.lane.id
	}
	return e.seq < b.seq
}

func absDist(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// serveLocked removes e from the pending set and services it on the
// device at its arrival time; the device's busy horizon converts
// contention into queueing delay.
func (q *Queue) serveLocked(e *entry) {
	for i, p := range q.pending {
		if p == e {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			break
		}
	}
	switch e.kind {
	case opRun:
		e.done, e.service = q.dev.AccessRun(e.arrival, e.run)
	case opBatch:
		var svc time.Duration
		e.results, e.done = q.dev.ServeBatch(e.arrival, e.reqs, e.policy)
		for _, r := range e.results {
			svc += r.Service
		}
		e.service = svc
		q.stats.Batches++
	default:
		e.done, e.service = q.dev.Access(e.arrival, e.req)
	}
	e.served = true
	if e.sync {
		e.lane.syncPending--
	}
	q.busy = clock.MaxTime(q.busy, e.done)
	q.edge = clock.MaxTime(q.edge, e.arrival)
	q.stats.Dispatches++
	if e.sync {
		q.stats.SyncDispatches++
	} else {
		q.stats.AsyncDispatches++
	}
	// Async (write-back) submissions wait behind other lanes' work just
	// like sync ones do — the delay lands on the flusher instead of a
	// blocked reader, but it is contention all the same, so both kinds
	// accrue. Inline sole-lane serves never wait and add nothing.
	if w := e.done.Sub(e.arrival) - e.service; w > 0 {
		q.stats.QueueDelay += w
	}
}
