package sharedq

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simdisk"
)

var t0 = time.Unix(0, 0).UTC()

// recorder wraps a Device and records the leading offset of each call in
// dispatch order, so tests can assert the policy's choice sequence.
type recorder struct {
	dev     Device
	offsets []int64
}

func (r *recorder) Access(now time.Time, req simdisk.Request) (time.Time, time.Duration) {
	r.offsets = append(r.offsets, req.Offset)
	return r.dev.Access(now, req)
}

func (r *recorder) AccessRun(now time.Time, run simdisk.Run) (time.Time, time.Duration) {
	r.offsets = append(r.offsets, run.Offset)
	return r.dev.AccessRun(now, run)
}

func (r *recorder) ServeBatch(now time.Time, reqs []simdisk.Request, policy simdisk.SchedPolicy) ([]simdisk.BatchResult, time.Time) {
	r.offsets = append(r.offsets, reqs[0].Offset)
	return r.dev.ServeBatch(now, reqs, policy)
}

func (r *recorder) Head() int64 { return r.dev.Head() }

func newRecorded(t *testing.T, policy simdisk.SchedPolicy) (*Queue, *recorder) {
	t.Helper()
	rec := &recorder{dev: simdisk.MustNew(simdisk.MemoryBackedParams())}
	return MustNew(rec, policy), rec
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, simdisk.FCFS); err == nil {
		t.Fatal("New(nil device) succeeded")
	}
	if _, err := New(simdisk.MustNew(simdisk.MemoryBackedParams()), simdisk.SchedPolicy(99)); err == nil {
		t.Fatal("New(invalid policy) succeeded")
	}
}

// TestSoleLaneMatchesBareDevice pins the inline fast path: with one
// registered lane and nothing pending, every submission — blocking,
// async, or batch — returns exactly what the bare device would, which is
// what makes a single-lane shared queue equivalent to the private view.
func TestSoleLaneMatchesBareDevice(t *testing.T) {
	bare := simdisk.MustNew(simdisk.MemoryBackedParams())
	q := MustNew(simdisk.MustNew(simdisk.MemoryBackedParams()), simdisk.SSTF)
	lane := q.NewLane(t0)

	now := t0
	for i, req := range []simdisk.Request{
		{Offset: 4096, Length: 65536},
		{Offset: 1 << 24, Length: 4096, Write: true},
		{Offset: 0, Length: 8192},
	} {
		wd, ws := bare.Access(now, req)
		gd, gs := lane.Access(now, req)
		if !gd.Equal(wd) || gs != ws {
			t.Fatalf("Access %d: got (%v,%v) want (%v,%v)", i, gd, gs, wd, ws)
		}
		ad := lane.AccessAsync(gd, req)
		wad, _ := bare.Access(wd, req)
		if !ad.Equal(wad) {
			t.Fatalf("AccessAsync %d: got %v want %v (sole lane must serve inline)", i, ad, wad)
		}
		now = ad
	}

	run := simdisk.Run{Offset: 1 << 20, Length: 1 << 16, Count: 4, Write: true}
	wd, ws := bare.AccessRun(now, run)
	gd, gs := lane.AccessRun(now, run)
	if !gd.Equal(wd) || gs != ws {
		t.Fatalf("AccessRun: got (%v,%v) want (%v,%v)", gd, gs, wd, ws)
	}

	reqs := []simdisk.Request{
		{Offset: 3 << 20, Length: 4096, Write: true},
		{Offset: 1 << 20, Length: 4096, Write: true},
		{Offset: 2 << 20, Length: 4096, Write: true},
	}
	wres, wend := bare.ServeBatch(wd, reqs, simdisk.SCAN)
	gres, gend := lane.ServeBatch(gd, reqs, simdisk.SCAN)
	if !gend.Equal(wend) || len(gres) != len(wres) {
		t.Fatalf("ServeBatch: got end %v (%d results) want %v (%d)", gend, len(gres), wend, len(wres))
	}
	for i := range wres {
		if gres[i] != wres[i] {
			t.Fatalf("ServeBatch result %d: got %+v want %+v", i, gres[i], wres[i])
		}
	}

	st := q.Stats()
	if st.Dispatches == 0 || st.Dispatches != st.SyncDispatches+st.AsyncDispatches {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.QueueDelay != 0 {
		t.Fatalf("sole lane accumulated queue delay %v", st.QueueDelay)
	}
}

// TestGateHoldsUntilLanesPass pins the conservative gate: an async entry
// is not dispatched while any unparked, unblocked lane's free bound has
// not passed the decision time — and is dispatched as soon as the last
// straggler advances.
func TestGateHoldsUntilLanesPass(t *testing.T) {
	q, rec := newRecorded(t, simdisk.FCFS)
	a := q.NewLane(t0)
	b := q.NewLane(t0)

	a.AccessAsync(t0.Add(time.Millisecond), simdisk.Request{Offset: 4096, Length: 4096})
	if n := len(rec.offsets); n != 0 {
		t.Fatalf("dispatched %d entries with both lanes gating", n)
	}
	// b passes the decision time; a (the submitter itself) still gates.
	b.Advance(t0.Add(10 * time.Millisecond))
	if n := len(rec.offsets); n != 0 {
		t.Fatalf("dispatched %d entries with submitter still gating", n)
	}
	a.Advance(t0.Add(10 * time.Millisecond))
	if n := len(rec.offsets); n != 1 {
		t.Fatalf("dispatched %d entries after all lanes passed, want 1", n)
	}
}

// TestFCFSOrdersByArrival pins the FCFS total order across lanes:
// dispatch follows arrival timestamps, not submission (wall-clock) order.
func TestFCFSOrdersByArrival(t *testing.T) {
	q, rec := newRecorded(t, simdisk.FCFS)
	a := q.NewLane(t0)
	b := q.NewLane(t0)

	// a submits later simulated arrivals first, in wall-clock order.
	a.AccessAsync(t0.Add(3*time.Millisecond), simdisk.Request{Offset: 300, Length: 4096})
	b.AccessAsync(t0.Add(1*time.Millisecond), simdisk.Request{Offset: 100, Length: 4096})
	a.AccessAsync(t0.Add(5*time.Millisecond), simdisk.Request{Offset: 500, Length: 4096})
	b.AccessAsync(t0.Add(2*time.Millisecond), simdisk.Request{Offset: 200, Length: 4096})
	a.Park()
	b.Park()

	want := []int64{100, 200, 300, 500}
	if len(rec.offsets) != len(want) {
		t.Fatalf("dispatched %v, want %v", rec.offsets, want)
	}
	for i, off := range want {
		if rec.offsets[i] != off {
			t.Fatalf("dispatch order %v, want %v", rec.offsets, want)
		}
	}
}

// TestSSTFPicksNearestHead pins the SSTF choice: among entries arrived by
// the decision time, the one closest to the current head goes first.
func TestSSTFPicksNearestHead(t *testing.T) {
	q, rec := newRecorded(t, simdisk.SSTF)
	a := q.NewLane(t0)
	q.NewLane(t0).Park() // second lane forces enqueueing, parked so it never gates

	now := t0.Add(time.Millisecond)
	const mb = 1 << 20
	a.AccessAsync(now, simdisk.Request{Offset: 1000 * mb, Length: 4096})
	a.AccessAsync(now, simdisk.Request{Offset: 10 * mb, Length: 4096})
	a.AccessAsync(now, simdisk.Request{Offset: 500 * mb, Length: 4096})
	a.Park()

	// Head starts at 0: nearest is 10 MB, then 500 MB, then 1000 MB.
	want := []int64{10 * mb, 500 * mb, 1000 * mb}
	for i, off := range want {
		if i >= len(rec.offsets) || rec.offsets[i] != off {
			t.Fatalf("SSTF dispatch order %v, want %v", rec.offsets, want)
		}
	}
}

// TestSCANSweepsThenReverses pins the elevator: ascending entries are
// served in offset order while sweeping up; after turnaround the sweep
// serves descending offsets.
func TestSCANSweepsThenReverses(t *testing.T) {
	q, rec := newRecorded(t, simdisk.SCAN)
	a := q.NewLane(t0)
	q.NewLane(t0).Park()

	now := t0.Add(time.Millisecond)
	const mb = 1 << 20
	for _, off := range []int64{700, 100, 400} {
		a.AccessAsync(now, simdisk.Request{Offset: off * mb, Length: 4096})
	}
	a.Park()
	// Upward sweep from head 0: 100, 400, 700.
	want := []int64{100 * mb, 400 * mb, 700 * mb}
	for i, off := range want {
		if i >= len(rec.offsets) || rec.offsets[i] != off {
			t.Fatalf("SCAN up-sweep order %v, want %v", rec.offsets, want)
		}
	}

	// Head is now past 700 MB; lower offsets force a turnaround, and the
	// down sweep serves them descending.
	now = now.Add(100 * time.Millisecond)
	a.Advance(now)
	for _, off := range []int64{200, 600, 50} {
		a.AccessAsync(now, simdisk.Request{Offset: off * mb, Length: 4096})
	}
	a.Park()
	wantAll := append(want, 600*mb, 200*mb, 50*mb)
	if len(rec.offsets) != len(wantAll) {
		t.Fatalf("SCAN full order %v, want %v", rec.offsets, wantAll)
	}
	for i, off := range wantAll {
		if rec.offsets[i] != off {
			t.Fatalf("SCAN full order %v, want %v", rec.offsets, wantAll)
		}
	}
}

// TestBlockingContentionIsDeterministic runs two goroutine lanes whose
// blocking submissions contend; whatever the wall-clock interleaving,
// the dispatch order and completions are fixed by simulated timestamps,
// and the loser's completion includes queueing delay.
func TestBlockingContentionIsDeterministic(t *testing.T) {
	run := func() (time.Time, time.Time, Stats) {
		q := MustNew(simdisk.MustNew(simdisk.MemoryBackedParams()), simdisk.FCFS)
		a := q.NewLane(t0)
		b := q.NewLane(t0)
		var doneA, doneB time.Time
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			doneA, _ = a.Access(t0.Add(time.Millisecond), simdisk.Request{Offset: 0, Length: 1 << 20})
			a.Park() // done submitting: stop gating, as an idle session would
		}()
		go func() {
			defer wg.Done()
			doneB, _ = b.Access(t0.Add(time.Millisecond), simdisk.Request{Offset: 1 << 30, Length: 1 << 20})
			b.Park()
		}()
		wg.Wait()
		return doneA, doneB, q.Stats()
	}

	dA, dB, st := run()
	if !dB.After(dA) {
		t.Fatalf("FCFS tie broke against lane order: a done %v, b done %v", dA, dB)
	}
	if st.QueueDelay <= 0 {
		t.Fatalf("contending lanes accumulated no queue delay: %+v", st)
	}
	for i := 0; i < 20; i++ {
		a2, b2, st2 := run()
		if !a2.Equal(dA) || !b2.Equal(dB) || st2 != st {
			t.Fatalf("run %d diverged: (%v,%v,%+v) vs (%v,%v,%+v)", i, a2, b2, st2, dA, dB, st)
		}
	}
}

// TestAsyncDispatchAccruesQueueDelay pins the stat fix: an async
// (write-back style) submission that waits behind another lane's work
// contributes its wait to QueueDelay just like a blocked sync one —
// read-heavy contended runs used to report "queue delay 0s" because
// only sync dispatches accrued.
func TestAsyncDispatchAccruesQueueDelay(t *testing.T) {
	q := MustNew(simdisk.MustNew(simdisk.MemoryBackedParams()), simdisk.FCFS)
	a := q.NewLane(t0)
	b := q.NewLane(t0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// A long transfer that occupies the device first (FCFS ties break
		// by lane order).
		a.Access(t0.Add(time.Millisecond), simdisk.Request{Offset: 0, Length: 1 << 20})
		a.Park()
	}()
	go func() {
		defer wg.Done()
		b.AccessAsync(t0.Add(time.Millisecond), simdisk.Request{Offset: 1 << 30, Length: 1 << 20, Write: true})
		b.Park()
	}()
	wg.Wait()
	st := q.Stats()
	if st.AsyncDispatches == 0 {
		t.Fatalf("async submission never dispatched: %+v", st)
	}
	if st.QueueDelay <= 0 {
		t.Fatalf("async dispatch behind a busy device accrued no queue delay: %+v", st)
	}
}

// TestReleaseServesLeftovers pins Release semantics: a lane's pending
// async entries survive its release and are served once nothing gates.
func TestReleaseServesLeftovers(t *testing.T) {
	q, rec := newRecorded(t, simdisk.FCFS)
	a := q.NewLane(t0)
	b := q.NewLane(t0)

	a.AccessAsync(t0.Add(time.Millisecond), simdisk.Request{Offset: 4096, Length: 4096})
	a.AccessAsync(t0.Add(2*time.Millisecond), simdisk.Request{Offset: 8192, Length: 4096})
	a.Release()
	if n := len(rec.offsets); n != 0 {
		t.Fatalf("dispatched %d entries while b still gates", n)
	}
	b.Park()
	if n := len(rec.offsets); n != 2 {
		t.Fatalf("dispatched %d entries after release+park, want 2", n)
	}
	if q.Lanes() != 1 {
		t.Fatalf("Lanes() = %d after release, want 1", q.Lanes())
	}
}

// TestLateLaneFlooredAtEdge pins the mid-flight join rule: a lane created
// after dispatches have happened cannot submit into the served past.
func TestLateLaneFlooredAtEdge(t *testing.T) {
	q, rec := newRecorded(t, simdisk.FCFS)
	a := q.NewLane(t0)
	at := t0.Add(50 * time.Millisecond)
	a.Access(at, simdisk.Request{Offset: 0, Length: 4096}) // sole lane, inline

	late := q.NewLane(t0) // asks to start at t0, floored at the edge
	a.Park()
	d := late.AccessAsync(t0, simdisk.Request{Offset: 4096, Length: 4096})
	if d.Before(at) {
		t.Fatalf("late lane submitted at %v, before the dispatch edge %v", d, at)
	}
	late.Park()
	if n := len(rec.offsets); n != 2 {
		t.Fatalf("dispatched %d entries, want 2", n)
	}
}
