package simdisk

import (
	"fmt"
	"time"
)

// ApplyFaultPlan validates plan against the array's geometry and level,
// then schedules every fault on its member disk. Activation offsets are
// measured from epoch — the virtual time the caller's clocks started at
// — so the same plan on identical arrays replays bit-identically. A nil
// plan is a no-op. Media and device faults are rejected on RAID0, which
// has no redundancy to absorb them (FaultPlan.Validate).
func (a *Array) ApplyFaultPlan(epoch time.Time, plan *FaultPlan) error {
	if plan == nil {
		return nil
	}
	if err := plan.Validate(len(a.disks), a.level); err != nil {
		return err
	}
	for _, f := range plan.Faults {
		if err := a.disks[f.Disk].InjectFault(epoch, f); err != nil {
			return err
		}
	}
	return nil
}

// AccessPort is the single-request access surface a rebuild drives its
// reconstruction reads through: *Array satisfies it directly (private
// disk views), and so does *sharedq.Lane — so rebuild traffic flows
// through the shared contended queue when one is configured, contending
// with foreground requests under the same event-merged dispatch.
type AccessPort interface {
	Access(now time.Time, req Request) (time.Time, time.Duration)
}

var _ AccessPort = (*Array)(nil)

// Rebuild reconstructs one member's contents onto a fresh spare, block
// by block. Each Step issues one logical read covering the lost block
// through an AccessPort — on a degraded array the read itself performs
// the failover (RAID1) or parity reconstruction (RAID5), billing the
// survivor traffic — then writes the block onto the spare, chained
// after the read completes. When every block has been copied, Finish
// folds the spare into the dead member: its fault state clears, its
// head and busy horizon adopt the spare's, and the spare's statistics
// (including RebuildWrites) merge into the member's, so TotalStats
// loses nothing.
//
// Steps must not run concurrently with each other; they may run
// concurrently with foreground array traffic (that contention is the
// point). Finish is safe under concurrent traffic — it mutates the
// member under its own lock — but a mid-run promotion makes the
// heal time wall-clock-dependent, so deterministic harnesses call it
// only after foreground lanes quiesce.
type Rebuild struct {
	a      *Array
	failed int
	spare  *Disk
	rows   int64 // stripe-unit blocks to reconstruct
	next   int64
	done   bool
}

// NewRebuild prepares a rebuild of member failed covering the first
// usedLogical bytes of the logical address space (the extent high-water
// mark; everything past it was never written, so a fresh spare is
// already correct there). The array must be redundant — RAID0 has
// nothing to reconstruct from.
func (a *Array) NewRebuild(failed int, usedLogical int64) (*Rebuild, error) {
	return a.newRebuild(failed, usedLogical, nil)
}

// NewRebuildOnto is NewRebuild targeting a caller-provided spare disk —
// typically one claimed from a SparePool — instead of an ad-hoc fresh
// spare. The spare must be unused; its statistics and mechanical state
// fold into the rebuilt member at Finish exactly as NewRebuild's do.
func (a *Array) NewRebuildOnto(failed int, usedLogical int64, spare *Disk) (*Rebuild, error) {
	if spare == nil {
		return nil, fmt.Errorf("simdisk: rebuild needs a spare disk")
	}
	return a.newRebuild(failed, usedLogical, spare)
}

func (a *Array) newRebuild(failed int, usedLogical int64, spare *Disk) (*Rebuild, error) {
	if a.level == RAID0 {
		return nil, fmt.Errorf("simdisk: RAID0 has no redundancy to rebuild from")
	}
	if failed < 0 || failed >= len(a.disks) {
		return nil, fmt.Errorf("simdisk: rebuild member %d out of range [0,%d)", failed, len(a.disks))
	}
	if usedLogical < 0 {
		usedLogical = 0
	}
	if cap := a.usableCapacity(); usedLogical > cap {
		usedLogical = cap
	}
	usedStripes := (usedLogical + a.stripeUnit - 1) / a.stripeUnit
	rows := usedStripes // RAID1: one member row per logical stripe
	if a.level == RAID5 {
		dataDisks := int64(len(a.disks) - 1)
		rows = (usedStripes + dataDisks - 1) / dataDisks
	}
	if spare == nil {
		spare = MustNew(a.disks[failed].params)
	}
	return &Rebuild{a: a, failed: failed, spare: spare, rows: rows}, nil
}

// Rows returns the total number of stripe-unit blocks the rebuild
// covers.
func (r *Rebuild) Rows() int64 { return r.rows }

// Remaining returns how many blocks are still to be copied.
func (r *Rebuild) Remaining() int64 { return r.rows - r.next }

// Done reports whether every block has been copied.
func (r *Rebuild) Done() bool { return r.next >= r.rows }

// Spare exposes the spare disk (for stats inspection before Finish).
func (r *Rebuild) Spare() *Disk { return r.spare }

// Step reconstructs the next block: a logical read through port that
// covers the lost physical block (the degraded array reads survivors
// and bills them), then the block's write onto the spare, chained after
// the read. It returns the write's completion time and false once no
// blocks remain (then done == now).
func (r *Rebuild) Step(now time.Time, port AccessPort) (done time.Time, ok bool) {
	if r.next >= r.rows {
		return now, false
	}
	a := r.a
	row := r.next
	var logOff, logLen int64
	switch a.level {
	case RAID1:
		// Mirrors hold the logical space verbatim: member row == logical
		// stripe.
		logOff, logLen = row*a.stripeUnit, a.stripeUnit
	default: // RAID5
		n := int64(len(a.disks))
		dataDisks := n - 1
		parityDisk := int(row % n)
		if parityDisk == r.failed {
			// The lost block is this row's parity: recomputing it needs the
			// whole row, so read every data stripe of the row.
			logOff, logLen = row*dataDisks*a.stripeUnit, dataDisks*a.stripeUnit
		} else {
			// The lost block is a data stripe: its logical index skips the
			// parity member.
			dataIdx := int64(r.failed)
			if r.failed > parityDisk {
				dataIdx--
			}
			stripe := row*dataDisks + dataIdx
			logOff, logLen = stripe*a.stripeUnit, a.stripeUnit
		}
	}
	readDone, _ := port.Access(now, Request{Offset: logOff, Length: logLen})
	phys := row * a.stripeUnit
	done, _ = r.spare.Access(readDone, Request{Offset: phys, Length: a.stripeUnit, Write: true})
	r.spare.addRecovery(0, 0, 1, 0)
	r.next++
	return done, true
}

// Run drives every remaining Step back to back on the simulated clock:
// each block's spare write chains after its reconstruction read, and
// the next read issues at the previous write's completion — a
// sequential rebuild stream. It returns the final completion time.
func (r *Rebuild) Run(now time.Time, port AccessPort) time.Time {
	t := now
	for {
		done, ok := r.Step(t, port)
		if !ok {
			return t
		}
		t = done
	}
}

// Finish promotes the spare into the rebuilt member: the member's fault
// state clears, its mechanical state (head position, busy horizon)
// adopts the spare's, and the spare's statistics merge into the
// member's. The member disk object itself is reused — no pointer in the
// array changes — so Finish is safe under concurrent traffic, though
// deterministic runs promote only after foreground lanes quiesce.
func (r *Rebuild) Finish() error {
	if !r.Done() {
		return fmt.Errorf("simdisk: rebuild incomplete: %d of %d blocks remain", r.Remaining(), r.rows)
	}
	if r.done {
		return nil
	}
	r.done = true
	m := r.a.disks[r.failed]
	r.spare.mu.Lock()
	spareStats := r.spare.stats
	spareHead := r.spare.headPos
	spareBusy := r.spare.busyUntil
	r.spare.mu.Unlock()
	m.mu.Lock()
	m.flt = nil
	m.headPos = spareHead
	if spareBusy.After(m.busyUntil) {
		m.busyUntil = spareBusy
	}
	m.stats.Add(spareStats)
	m.mu.Unlock()
	return nil
}
