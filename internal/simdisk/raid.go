package simdisk

import (
	"fmt"
	"time"
)

// Level selects the array's redundancy scheme. The paper's Figure 4
// sweeps a striped (RAID-0) array; mirroring and rotating parity are the
// two classic alternatives a storage substrate must offer, and
// BenchmarkAblationRAID quantifies their write penalties on the paper's
// workloads.
type Level int

// Redundancy levels.
const (
	// RAID0 stripes with no redundancy (the default).
	RAID0 Level = iota
	// RAID1 mirrors every write to all members and serves reads from a
	// rotating member.
	RAID1
	// RAID5 stripes with one rotating parity block per stripe row; small
	// writes pay the classic read-modify-write penalty.
	RAID5
)

// String names the level.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// NewArrayLevel builds an array with the given redundancy level. RAID5
// requires at least three members; RAID1 at least two.
func NewArrayLevel(n int, stripeUnit int64, level Level, p Params) (*Array, error) {
	switch level {
	case RAID0:
	case RAID1:
		if n < 2 {
			return nil, fmt.Errorf("simdisk: RAID1 needs at least 2 disks, got %d", n)
		}
	case RAID5:
		if n < 3 {
			return nil, fmt.Errorf("simdisk: RAID5 needs at least 3 disks, got %d", n)
		}
	default:
		return nil, fmt.Errorf("simdisk: unknown RAID level %d", level)
	}
	a, err := NewArray(n, stripeUnit, p)
	if err != nil {
		return nil, err
	}
	a.level = level
	return a, nil
}

// Level returns the array's redundancy level.
func (a *Array) Level() Level { return a.level }

// usableCapacity returns the logical capacity under the level's
// redundancy overhead.
func (a *Array) usableCapacity() int64 {
	per := a.disks[0].params.Capacity
	switch a.level {
	case RAID1:
		return per
	case RAID5:
		return per * int64(len(a.disks)-1)
	default:
		return per * int64(len(a.disks))
	}
}

// accessLeveled routes one logical request according to the array level.
// now is the earliest start; it returns the completion time.
func (a *Array) accessLeveled(now time.Time, req Request) time.Time {
	switch a.level {
	case RAID1:
		return a.accessMirrored(now, req)
	case RAID5:
		return a.accessParity(now, req)
	default:
		done, _ := a.accessStriped(now, req)
		return done
	}
}

// accessMirrored serves RAID-1: reads go to one member chosen by stripe
// rotation (spreading load deterministically); writes go to every member
// and complete when the slowest mirror does.
func (a *Array) accessMirrored(now time.Time, req Request) time.Time {
	if !req.Write {
		member := int(req.Offset / a.stripeUnit % int64(len(a.disks)))
		done, _ := a.disks[member].Access(now, Request{Offset: req.Offset, Length: req.Length})
		return done
	}
	done := now
	for _, d := range a.disks {
		mirrorDone, _ := d.Access(now, Request{Offset: req.Offset, Length: req.Length, Write: true})
		if mirrorDone.After(done) {
			done = mirrorDone
		}
	}
	return done
}

// accessParity serves RAID-5 over n-1 data members plus rotating parity.
// Reads behave like RAID-0 over the data mapping. A write to a block
// performs the read-modify-write sequence: read old data, read old
// parity, write new data, write new parity (4 member I/Os per block).
func (a *Array) accessParity(now time.Time, req Request) time.Time {
	n := int64(len(a.disks))
	dataDisks := n - 1
	done := now
	off := req.Offset
	remaining := req.Length
	if remaining <= 0 {
		remaining = 1 // pure positioning still touches the owning member
	}
	for remaining > 0 {
		stripe := off / a.stripeUnit
		within := off % a.stripeUnit
		pieceLen := a.stripeUnit - within
		if pieceLen > remaining {
			pieceLen = remaining
		}
		row := stripe / dataDisks
		parityDisk := int(row % n)
		dataIdx := int(stripe % dataDisks)
		// Skip the parity member when laying out data in the row.
		disk := dataIdx
		if disk >= parityDisk {
			disk++
		}
		phys := row*a.stripeUnit + within
		if !req.Write {
			pieceDone, _ := a.disks[disk].Access(now, Request{Offset: phys, Length: pieceLen})
			if pieceDone.After(done) {
				done = pieceDone
			}
		} else {
			// Read-modify-write: old data + old parity, then new data +
			// new parity. The two member chains run concurrently.
			dOld, _ := a.disks[disk].Access(now, Request{Offset: phys, Length: pieceLen})
			dNew, _ := a.disks[disk].Access(dOld, Request{Offset: phys, Length: pieceLen, Write: true})
			pOld, _ := a.disks[parityDisk].Access(now, Request{Offset: phys, Length: pieceLen})
			pNew, _ := a.disks[parityDisk].Access(pOld, Request{Offset: phys, Length: pieceLen, Write: true})
			if dNew.After(done) {
				done = dNew
			}
			if pNew.After(done) {
				done = pNew
			}
		}
		off += pieceLen
		remaining -= pieceLen
	}
	return done
}
