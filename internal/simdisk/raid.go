package simdisk

import (
	"fmt"
	"strings"
	"time"
)

// Level selects the array's redundancy scheme. The paper's Figure 4
// sweeps a striped (RAID-0) array; mirroring and rotating parity are the
// two classic alternatives a storage substrate must offer, and
// BenchmarkAblationRAID quantifies their write penalties on the paper's
// workloads.
type Level int

// Redundancy levels.
const (
	// RAID0 stripes with no redundancy (the default).
	RAID0 Level = iota
	// RAID1 mirrors every write to all members and serves reads from a
	// rotating member.
	RAID1
	// RAID5 stripes with one rotating parity block per stripe row; small
	// writes pay the classic read-modify-write penalty.
	RAID5
)

// String names the level.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel parses a redundancy level name ("raid0", "raid1", "raid5",
// or the bare digit), for flags.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "raid0", "0", "":
		return RAID0, nil
	case "raid1", "1":
		return RAID1, nil
	case "raid5", "5":
		return RAID5, nil
	}
	return RAID0, fmt.Errorf("simdisk: unknown RAID level %q (want raid0 | raid1 | raid5)", s)
}

// NewArrayLevel builds an array with the given redundancy level. RAID5
// requires at least three members; RAID1 at least two.
func NewArrayLevel(n int, stripeUnit int64, level Level, p Params) (*Array, error) {
	switch level {
	case RAID0:
	case RAID1:
		if n < 2 {
			return nil, fmt.Errorf("simdisk: RAID1 needs at least 2 disks, got %d", n)
		}
	case RAID5:
		if n < 3 {
			return nil, fmt.Errorf("simdisk: RAID5 needs at least 3 disks, got %d", n)
		}
	default:
		return nil, fmt.Errorf("simdisk: unknown RAID level %d", level)
	}
	a, err := NewArray(n, stripeUnit, p)
	if err != nil {
		return nil, err
	}
	a.level = level
	return a, nil
}

// Level returns the array's redundancy level.
func (a *Array) Level() Level { return a.level }

// usableCapacity returns the logical capacity under the level's
// redundancy overhead.
func (a *Array) usableCapacity() int64 {
	per := a.disks[0].params.Capacity
	switch a.level {
	case RAID1:
		return per
	case RAID5:
		return per * int64(len(a.disks)-1)
	default:
		return per * int64(len(a.disks))
	}
}

// accessLeveled routes one logical request according to the array level.
// now is the earliest start; it returns the completion time.
func (a *Array) accessLeveled(now time.Time, req Request) time.Time {
	switch a.level {
	case RAID1:
		return a.accessMirrored(now, req)
	case RAID5:
		return a.accessParity(now, req)
	default:
		done, _ := a.accessStriped(now, req)
		return done
	}
}

// accessMirrored serves RAID-1: reads go to one member chosen by stripe
// rotation (spreading load deterministically); writes go to every member
// and complete when the slowest mirror does.
//
// Degraded mode: a read whose chosen member is faulted fails over to the
// next surviving mirror in rotation order. A media-error attempt is
// billed on the faulted member (the motion was spent) and the failover
// chains after it; a dead member bills nothing and the failover starts
// at the original time. Writes skip dead members — the surviving mirrors
// carry the data. With no faults injected every branch below reduces to
// the healthy path bit for bit.
func (a *Array) accessMirrored(now time.Time, req Request) time.Time {
	n := len(a.disks)
	if !req.Write {
		member := int(req.Offset / a.stripeUnit % int64(n))
		at := now
		var last time.Time
		for k := 0; k < n; k++ {
			m := (member + k) % n
			done, err := a.disks[m].accessChecked(at, Request{Offset: req.Offset, Length: req.Length})
			if err == nil {
				if k > 0 {
					a.disks[m].addRecovery(1, 0, 0, 0)
				}
				return done
			}
			if !done.IsZero() {
				// Media error: the failed attempt completed mechanically;
				// the next mirror is tried after it.
				at = done
				last = done
			}
		}
		// Every mirror refused: double fault, absorbed best-effort.
		a.disks[member].addRecovery(0, 0, 0, 1)
		if last.IsZero() {
			return now
		}
		return last
	}
	done := now
	wrote := false
	for _, d := range a.disks {
		mirrorDone, err := d.accessChecked(now, Request{Offset: req.Offset, Length: req.Length, Write: true})
		if err != nil {
			continue
		}
		wrote = true
		if mirrorDone.After(done) {
			done = mirrorDone
		}
	}
	if !wrote {
		a.disks[0].addRecovery(0, 0, 0, 1)
	}
	return done
}

// accessParity serves RAID-5 over n-1 data members plus rotating parity.
// Reads behave like RAID-0 over the data mapping. A write to a block
// performs the read-modify-write sequence: read old data, read old
// parity, write new data, write new parity (4 member I/Os per block).
func (a *Array) accessParity(now time.Time, req Request) time.Time {
	n := int64(len(a.disks))
	dataDisks := n - 1
	done := now
	off := req.Offset
	remaining := req.Length
	if remaining <= 0 {
		remaining = 1 // pure positioning still touches the owning member
	}
	for remaining > 0 {
		stripe := off / a.stripeUnit
		within := off % a.stripeUnit
		pieceLen := a.stripeUnit - within
		if pieceLen > remaining {
			pieceLen = remaining
		}
		row := stripe / dataDisks
		parityDisk := int(row % n)
		dataIdx := int(stripe % dataDisks)
		// Skip the parity member when laying out data in the row.
		disk := dataIdx
		if disk >= parityDisk {
			disk++
		}
		phys := row*a.stripeUnit + within
		var pieceDone time.Time
		if !req.Write {
			pieceDone = a.parityRead(now, disk, parityDisk, phys, pieceLen)
		} else {
			pieceDone = a.parityWrite(now, disk, parityDisk, phys, pieceLen)
		}
		if pieceDone.After(done) {
			done = pieceDone
		}
		off += pieceLen
		remaining -= pieceLen
	}
	return done
}

// parityRead serves one RAID-5 data-block read. If the target member
// refuses (media error or dead device), the block is reconstructed from
// parity plus the surviving members: the same physical range is read
// from every other member concurrently and the reconstruction completes
// with the slowest of them — the extra member reads are the degraded-read
// penalty, billed on the survivors as ReconstructReads. With no faults
// the single target read below is bit-identical to the healthy path.
func (a *Array) parityRead(now time.Time, disk, parityDisk int, phys, pieceLen int64) time.Time {
	done, err := a.disks[disk].accessChecked(now, Request{Offset: phys, Length: pieceLen})
	if err == nil {
		return done
	}
	at := now
	if !done.IsZero() {
		at = done // media attempt billed; reconstruction chains after it
	}
	rec := at
	complete := true
	for m := range a.disks {
		if m == disk {
			continue
		}
		end, rerr := a.disks[m].accessChecked(at, Request{Offset: phys, Length: pieceLen})
		if rerr != nil {
			complete = false
			if !end.IsZero() && end.After(rec) {
				rec = end
			}
			continue
		}
		a.disks[m].addRecovery(0, 1, 0, 0)
		if end.After(rec) {
			rec = end
		}
	}
	if !complete {
		// A survivor also refused: the block is gone (double fault).
		a.disks[disk].addRecovery(0, 0, 0, 1)
	}
	return rec
}

// parityWrite serves one RAID-5 data-block write: the read-modify-write
// sequence (read old data, read old parity, write new data, write new
// parity; the data and parity member chains run concurrently) when both
// members cooperate, degrading to reconstruct-writes otherwise:
//
//   - old data unreadable: the row's other data members are read
//     concurrently (ReconstructReads) and the new parity write chains
//     after the slowest — the write is folded into parity so the lost
//     member's data stays recoverable. The new data still lands when the
//     member is merely media-faulted (drives remap on write).
//   - old parity unreadable: the new data writes normally and the parity
//     is recomputed the same way from the row's other data members. A
//     dead parity member simply drops parity maintenance.
//
// With no faults injected the healthy branch is bit-identical to the
// original RMW arithmetic.
func (a *Array) parityWrite(now time.Time, disk, parityDisk int, phys, pieceLen int64) time.Time {
	dOld, derr := a.disks[disk].accessChecked(now, Request{Offset: phys, Length: pieceLen})
	pOld, perr := a.disks[parityDisk].accessChecked(now, Request{Offset: phys, Length: pieceLen})
	if derr == nil && perr == nil {
		dNew, dwErr := a.disks[disk].accessChecked(dOld, Request{Offset: phys, Length: pieceLen, Write: true})
		pNew, pwErr := a.disks[parityDisk].accessChecked(pOld, Request{Offset: phys, Length: pieceLen, Write: true})
		done := now
		if dwErr == nil && dNew.After(done) {
			done = dNew
		}
		if pwErr == nil && pNew.After(done) {
			done = pNew
		}
		if dwErr != nil && pwErr != nil {
			a.disks[disk].addRecovery(0, 0, 0, 1)
		}
		return done
	}

	dataDead := isDeviceFailed(derr)
	parityDead := isDeviceFailed(perr)
	done := now

	// rowRead reads the row's other data members concurrently starting
	// at `at` and returns the slowest completion — the survivor traffic a
	// reconstruct-write costs.
	rowRead := func(at time.Time) time.Time {
		end := at
		for m := range a.disks {
			if m == disk || m == parityDisk {
				continue
			}
			mEnd, rerr := a.disks[m].accessChecked(at, Request{Offset: phys, Length: pieceLen})
			if rerr != nil {
				a.disks[disk].addRecovery(0, 0, 0, 1)
				if !mEnd.IsZero() && mEnd.After(end) {
					end = mEnd
				}
				continue
			}
			a.disks[m].addRecovery(0, 1, 0, 0)
			if mEnd.After(end) {
				end = mEnd
			}
		}
		return end
	}

	if derr != nil {
		// Old data unreadable. Fold the write into parity via the row's
		// survivors, then land the new data if the member still accepts
		// writes.
		if !parityDead {
			at := pOld // the old-parity read already happened on that chain
			if !dOld.IsZero() && dOld.After(at) {
				at = dOld // media attempt on the data member billed first
			}
			recEnd := rowRead(at)
			pNew, pwErr := a.disks[parityDisk].accessChecked(recEnd, Request{Offset: phys, Length: pieceLen, Write: true})
			if pwErr == nil && pNew.After(done) {
				done = pNew
			}
		}
		if !dataDead {
			at := now
			if !dOld.IsZero() {
				at = dOld
			}
			dNew, dwErr := a.disks[disk].accessChecked(at, Request{Offset: phys, Length: pieceLen, Write: true})
			if dwErr == nil && dNew.After(done) {
				done = dNew
			}
		}
		if dataDead && parityDead {
			a.disks[disk].addRecovery(0, 0, 0, 1)
		}
		return done
	}

	// Old parity unreadable; the data member is healthy. The new data
	// writes normally and the parity is recomputed from the row when the
	// parity member still accepts writes.
	dNew, dwErr := a.disks[disk].accessChecked(dOld, Request{Offset: phys, Length: pieceLen, Write: true})
	if dwErr == nil && dNew.After(done) {
		done = dNew
	}
	if !parityDead {
		at := now
		if !pOld.IsZero() {
			at = pOld // media attempt on the parity member billed first
		}
		recEnd := rowRead(at)
		pNew, pwErr := a.disks[parityDisk].accessChecked(recEnd, Request{Offset: phys, Length: pieceLen, Write: true})
		if pwErr == nil && pNew.After(done) {
			done = pNew
		}
	}
	return done
}
