package simdisk

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseFaultPlan parses the compact fault-plan grammar the command-line
// flags and JSON config use. Faults are comma-separated; each is
//
//	fail:<disk>@<at>                      whole-device failure
//	slow:<disk>@<at>+<penalty>[..<until>] transient slowdown
//	media:<disk>@<at>:<offset>+<length>   latent sector range
//
// where <at>, <penalty>, <until> are Go durations on the virtual clock
// ("0s", "1ms", "2.5s") and <offset>/<length> are byte counts. An empty
// string parses to a nil plan (no faults).
//
// Structural problems are rejected here, at parse time, with positioned
// errors: negative disk indices (out of range on any geometry) and
// media-error ranges that overlap an earlier fault's range on the same
// disk. Geometry-dependent range checks (disk index vs member count,
// fault kind vs RAID level) happen in FaultPlan.Validate once the array
// shape is known.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var plan FaultPlan
	for i, part := range strings.Split(s, ",") {
		f, err := parseFault(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("fault %d %q: %w", i, part, err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if err := plan.checkMediaOverlaps(); err != nil {
		return nil, err
	}
	return &plan, nil
}

func parseFault(s string) (Fault, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Fault{}, fmt.Errorf("want kind:disk@..., got %q", s)
	}
	diskStr, spec, ok := strings.Cut(rest, "@")
	if !ok {
		return Fault{}, fmt.Errorf("missing @<at> in %q", s)
	}
	disk, err := strconv.Atoi(diskStr)
	if err != nil {
		return Fault{}, fmt.Errorf("disk index %q: %w", diskStr, err)
	}
	f := Fault{Disk: disk}
	switch kind {
	case "fail":
		f.Kind = FaultDevice
		if f.At, err = time.ParseDuration(spec); err != nil {
			return Fault{}, fmt.Errorf("activation %q: %w", spec, err)
		}
	case "slow":
		f.Kind = FaultSlowdown
		atStr, penStr, ok := strings.Cut(spec, "+")
		if !ok {
			return Fault{}, fmt.Errorf("slowdown needs @<at>+<penalty>, got %q", spec)
		}
		if f.At, err = time.ParseDuration(atStr); err != nil {
			return Fault{}, fmt.Errorf("activation %q: %w", atStr, err)
		}
		if untilIdx := strings.Index(penStr, ".."); untilIdx >= 0 {
			if f.Until, err = time.ParseDuration(penStr[untilIdx+2:]); err != nil {
				return Fault{}, fmt.Errorf("until %q: %w", penStr[untilIdx+2:], err)
			}
			penStr = penStr[:untilIdx]
		}
		if f.Penalty, err = time.ParseDuration(penStr); err != nil {
			return Fault{}, fmt.Errorf("penalty %q: %w", penStr, err)
		}
	case "media":
		f.Kind = FaultMedia
		atStr, rangeStr, ok := strings.Cut(spec, ":")
		if !ok {
			return Fault{}, fmt.Errorf("media needs @<at>:<offset>+<length>, got %q", spec)
		}
		if f.At, err = time.ParseDuration(atStr); err != nil {
			return Fault{}, fmt.Errorf("activation %q: %w", atStr, err)
		}
		offStr, lenStr, ok := strings.Cut(rangeStr, "+")
		if !ok {
			return Fault{}, fmt.Errorf("media range needs <offset>+<length>, got %q", rangeStr)
		}
		if f.Offset, err = strconv.ParseInt(offStr, 10, 64); err != nil {
			return Fault{}, fmt.Errorf("offset %q: %w", offStr, err)
		}
		if f.Length, err = strconv.ParseInt(lenStr, 10, 64); err != nil {
			return Fault{}, fmt.Errorf("length %q: %w", lenStr, err)
		}
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q (want fail, slow, or media)", kind)
	}
	return f, f.Validate()
}

// formatFault renders one fault in the ParseFaultPlan grammar.
func formatFault(f Fault) string {
	switch f.Kind {
	case FaultDevice:
		return fmt.Sprintf("fail:%d@%v", f.Disk, f.At)
	case FaultSlowdown:
		s := fmt.Sprintf("slow:%d@%v+%v", f.Disk, f.At, f.Penalty)
		if f.Until != 0 {
			s += ".." + f.Until.String()
		}
		return s
	case FaultMedia:
		return fmt.Sprintf("media:%d@%v:%d+%d", f.Disk, f.At, f.Offset, f.Length)
	default:
		return fmt.Sprintf("%v:%d@%v", f.Kind, f.Disk, f.At)
	}
}

// String renders the plan back into the ParseFaultPlan grammar.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	parts := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		parts = append(parts, formatFault(f))
	}
	return strings.Join(parts, ",")
}
