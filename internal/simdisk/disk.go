// Package simdisk models the mechanical disks behind the paper's
// experiments. The authors ran on a 2003-era Windows XP workstation whose
// IDE disk is not available to us, so we substitute a parametric
// seek + rotation + transfer service-time model (the classic first-order
// disk model) plus a striped multi-disk Array used by the Figure 4
// disk-scaling experiment.
//
// Everything in the package is deterministic: rotational position is
// derived from the target offset rather than sampled, so identical request
// streams produce identical timings run after run.
package simdisk

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Params describes one disk. The defaults (DefaultParams) approximate a
// 7200 rpm desktop drive of the paper's vintage: ~8.5 ms average seek,
// ~4.17 ms average rotational latency, ~40 MB/s media rate.
type Params struct {
	// Capacity is the addressable size in bytes.
	Capacity int64
	// TrackToTrackSeek is the minimum (adjacent-track) seek time.
	TrackToTrackSeek time.Duration
	// AvgSeek is the average seek time across a third of the stroke.
	AvgSeek time.Duration
	// FullStrokeSeek is the maximum (end-to-end) seek time.
	FullStrokeSeek time.Duration
	// RPM is the spindle speed in revolutions per minute.
	RPM int
	// TransferRate is the sustained media rate in bytes per second.
	TransferRate float64
	// ControllerOverhead is the fixed per-request command cost.
	ControllerOverhead time.Duration
	// TrackSize is the number of bytes per track, used to derive the
	// deterministic rotational position of an offset.
	TrackSize int64
}

// DefaultParams returns the circa-2003 desktop disk the reproduction uses
// unless an experiment overrides it.
func DefaultParams() Params {
	return Params{
		Capacity:           80 << 30, // 80 GB
		TrackToTrackSeek:   800 * time.Microsecond,
		AvgSeek:            8500 * time.Microsecond,
		FullStrokeSeek:     17 * time.Millisecond,
		RPM:                7200,
		TransferRate:       40 << 20, // 40 MB/s
		ControllerOverhead: 200 * time.Microsecond,
		TrackSize:          512 * 1024,
	}
}

// MemoryBackedParams returns parameters approximating storage that is
// effectively served from the operating system's file cache, which is the
// regime the paper's trace-replay latencies (microseconds, not
// milliseconds) reflect: the 1 GB sample file is mostly resident in XP's
// cache during replay. Misses in our page cache then cost tens of
// microseconds — the "page fault" spikes of Tables 3-4 — instead of
// mechanical-disk milliseconds.
func MemoryBackedParams() Params {
	return Params{
		Capacity:           8 << 30,
		TrackToTrackSeek:   time.Microsecond,
		AvgSeek:            3 * time.Microsecond,
		FullStrokeSeek:     6 * time.Microsecond,
		RPM:                6_000_000, // 10 µs "rotation": ordering cost only
		TransferRate:       500 << 20,
		ControllerOverhead: 5 * time.Microsecond,
		TrackSize:          1 << 20,
	}
}

// Validate reports the first problem with the parameter set, or nil.
func (p Params) Validate() error {
	switch {
	case p.Capacity <= 0:
		return fmt.Errorf("simdisk: capacity %d must be positive", p.Capacity)
	case p.RPM <= 0:
		return fmt.Errorf("simdisk: rpm %d must be positive", p.RPM)
	case p.TransferRate <= 0:
		return fmt.Errorf("simdisk: transfer rate %v must be positive", p.TransferRate)
	case p.TrackSize <= 0:
		return fmt.Errorf("simdisk: track size %d must be positive", p.TrackSize)
	case p.TrackToTrackSeek < 0 || p.AvgSeek < 0 || p.FullStrokeSeek < 0:
		return fmt.Errorf("simdisk: seek times must be non-negative")
	case p.AvgSeek < p.TrackToTrackSeek:
		return fmt.Errorf("simdisk: avg seek %v < track-to-track %v", p.AvgSeek, p.TrackToTrackSeek)
	case p.FullStrokeSeek < p.AvgSeek:
		return fmt.Errorf("simdisk: full stroke %v < avg seek %v", p.FullStrokeSeek, p.AvgSeek)
	}
	return nil
}

// rotation returns the time of one full revolution.
func (p Params) rotation() time.Duration {
	return time.Duration(float64(time.Minute) / float64(p.RPM))
}

// Stats counts a disk's activity. The recovery counters (everything from
// SlowdownTime down) stay zero on a healthy disk, so fault-free runs are
// unchanged by their presence.
type Stats struct {
	Reads, Writes   int64
	BytesRead       int64
	BytesWritten    int64
	SeekTime        time.Duration
	RotationTime    time.Duration
	TransferTime    time.Duration
	BusyTime        time.Duration
	QueueWaitedTime time.Duration
	// SlowdownTime is service-time inflation charged by active slowdown
	// faults (already included in BusyTime).
	SlowdownTime time.Duration
	// MediaErrors counts read attempts that landed on a poisoned range:
	// the mechanical motion was billed, then the typed error surfaced.
	MediaErrors int64
	// DegradedReads counts mirror-failover reads this disk served for a
	// faulted peer (RAID1 degraded mode).
	DegradedReads int64
	// ReconstructReads counts survivor reads this disk served to
	// reconstruct a lost block (RAID5 degraded mode and rebuilds).
	ReconstructReads int64
	// RebuildWrites counts blocks written onto this disk as a rebuild
	// spare.
	RebuildWrites int64
	// Unrecoverable counts requests redundancy could not absorb (double
	// faults); they are served best-effort and counted here.
	Unrecoverable int64
}

// Ops returns the total operation count.
func (s Stats) Ops() int64 { return s.Reads + s.Writes }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.SeekTime += other.SeekTime
	s.RotationTime += other.RotationTime
	s.TransferTime += other.TransferTime
	s.BusyTime += other.BusyTime
	s.QueueWaitedTime += other.QueueWaitedTime
	s.SlowdownTime += other.SlowdownTime
	s.MediaErrors += other.MediaErrors
	s.DegradedReads += other.DegradedReads
	s.ReconstructReads += other.ReconstructReads
	s.RebuildWrites += other.RebuildWrites
	s.Unrecoverable += other.Unrecoverable
}

// Disk is one simulated drive. Methods are safe for concurrent use; the
// disk serializes requests on its internal busy-until horizon, modelling a
// single head.
type Disk struct {
	params Params

	// Geometry constants hoisted out of the per-access cost math at New:
	// the rotation period (one division off every rotational-delay
	// computation) and the float conversions of the seek curve. The
	// per-access arithmetic keeps the exact operation order of the
	// original formulas, so hoisting changes nothing bit for bit.
	rotDur   time.Duration // one full revolution
	rotF     float64       // float64(rotDur)
	seekSpan float64       // float64(FullStrokeSeek - TrackToTrackSeek)
	capF     float64       // float64(Capacity)
	trackF   float64       // float64(TrackSize)

	mu        sync.Mutex
	headPos   int64     // current head byte offset
	busyUntil time.Time // completion time of the last accepted request
	stats     Stats
	// flt holds scheduled faults; nil on a healthy disk, so the fault
	// machinery costs the access paths exactly one nil check.
	flt *diskFaults
}

// New returns a disk with the given parameters. It returns an error if the
// parameters are invalid.
func New(p Params) (*Disk, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Disk{params: p}
	d.rotDur = p.rotation()
	d.rotF = float64(d.rotDur)
	d.seekSpan = float64(p.FullStrokeSeek - p.TrackToTrackSeek)
	d.capF = float64(p.Capacity)
	d.trackF = float64(p.TrackSize)
	return d, nil
}

// MustNew is New for tests and tool wiring where parameters are literals.
func MustNew(p Params) *Disk {
	d, err := New(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the disk's parameters.
func (d *Disk) Params() Params { return d.params }

// Stats returns a snapshot of the disk's counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// seekTime maps a head travel distance (bytes) to a seek duration by
// linear interpolation between track-to-track and full-stroke over the
// square root of the normalized distance — the standard concave seek
// curve.
func (d *Disk) seekTime(distance int64) time.Duration {
	if distance == 0 {
		return 0
	}
	if distance < 0 {
		distance = -distance
	}
	frac := float64(distance) / d.capF
	if frac > 1 {
		frac = 1
	}
	// sqrt gives the concave shape; calibrated so frac=1/3 ≈ avg seek.
	return d.params.TrackToTrackSeek + time.Duration(d.seekSpan*math.Sqrt(frac))
}

// rotationalDelay returns the deterministic rotational latency for a
// target offset: the angular distance from the head's current rotational
// position to the target sector, derived from byte positions within a
// track.
func (d *Disk) rotationalDelay(from, to int64) time.Duration {
	track := d.params.TrackSize
	fromPos := from % track
	toPos := to % track
	delta := toPos - fromPos
	if delta < 0 {
		delta += track
	}
	return time.Duration(d.rotF * float64(delta) / d.trackF)
}

// transferTime returns the media transfer time for length bytes.
func (d *Disk) transferTime(length int64) time.Duration {
	if length <= 0 {
		return 0
	}
	return time.Duration(float64(length) / d.params.TransferRate * float64(time.Second))
}

// Request identifies one disk access.
type Request struct {
	Offset int64
	Length int64
	Write  bool
}

// clampOffset confines a target offset to the addressable space. It is
// the single clamping rule every cost and head computation goes through.
func (d *Disk) clampOffset(off int64) int64 {
	if off < 0 {
		return 0
	}
	if off >= d.params.Capacity {
		return d.params.Capacity - 1
	}
	return off
}

// headAfter returns the head position after transferring length bytes at
// the (already clamped) offset: the transfer end, clamped so a
// run-off-the-end request parks the head on the last byte. Shared by
// Access, AccessRun, and the cost prediction so the two can never
// disagree about where a boundary request leaves the head.
func (d *Disk) headAfter(off, length int64) int64 {
	head := off + length
	if head >= d.params.Capacity {
		head = d.params.Capacity - 1
	}
	return head
}

// serviceLocked computes the clamped target offset and the service-time
// components a request costs with the head at its current position. It is
// the one copy of the cost arithmetic — Access, AccessRun, ServeBatch,
// and ServiceTime all route through it, so the serving and predicting
// sides can never drift. The caller holds d.mu.
func (d *Disk) serviceLocked(req Request) (off int64, seek, rot, xfer, service time.Duration) {
	off = d.clampOffset(req.Offset)
	seek = d.seekTime(off - d.headPos)
	rot = d.rotationalDelay(d.headPos, off)
	xfer = d.transferTime(req.Length)
	service = d.params.ControllerOverhead + seek + rot + xfer
	return off, seek, rot, xfer, service
}

// accessLocked services one request starting no earlier than now: cost,
// queue wait on the busy horizon, head advance, statistics. The caller
// holds d.mu.
func (d *Disk) accessLocked(now time.Time, req Request) (done time.Time, service time.Duration) {
	off, seek, rot, xfer, service := d.serviceLocked(req)

	start := now
	if d.busyUntil.After(start) {
		d.stats.QueueWaitedTime += d.busyUntil.Sub(start)
		start = d.busyUntil
	}
	if d.flt != nil {
		if pen := d.flt.penaltyAt(start); pen > 0 {
			service += pen
			d.stats.SlowdownTime += pen
		}
	}
	done = start.Add(service)
	d.busyUntil = done
	d.headPos = d.headAfter(off, req.Length)

	if req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += req.Length
	} else {
		d.stats.Reads++
		d.stats.BytesRead += req.Length
	}
	d.stats.SeekTime += seek
	d.stats.RotationTime += rot
	d.stats.TransferTime += xfer
	d.stats.BusyTime += service
	return done, service
}

// Access services req starting no earlier than now and returns the
// completion time and the request's service duration (excluding queue
// wait). Offsets are clamped into the disk; zero-length requests cost only
// controller overhead. Access advances the head.
func (d *Disk) Access(now time.Time, req Request) (done time.Time, service time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.accessLocked(now, req)
}

// ServiceTime returns the service time Access would charge for req with
// the head at its current position, without performing the access. Useful
// for analytic model calibration. It shares serviceLocked with Access, so
// the prediction is exact — including at the capacity boundary, where
// both sides clamp the target offset and the post-transfer head the same
// way.
func (d *Disk) ServiceTime(req Request) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, _, _, _, service := d.serviceLocked(req)
	return service
}

// Run describes a contiguous run of equal-length requests: Count
// requests of Length bytes each, the i'th at Offset + i*Length. The
// buffer cache submits miss fills, eviction write-backs, and write-back
// drains this way — one AccessRun call instead of Count Access calls.
type Run struct {
	// Offset is the first request's byte offset.
	Offset int64
	// Length is the per-request length in bytes.
	Length int64
	// Count is the number of requests.
	Count int64
	// Write marks every request in the run as a write.
	Write bool
	// Chain issues request i+1 at the completion time of request i
	// (a caller advancing its clock between submissions). When false
	// every request is issued at now and queues on the busy horizon;
	// completion and service times are identical either way, only the
	// queue-wait accounting differs.
	Chain bool
}

// AccessRun services r.Count contiguous requests under one lock
// acquisition and returns the last completion time and the summed
// service duration. It performs the same per-request arithmetic in the
// same order as the equivalent sequence of Access calls, so completion
// times, service times, and statistics are bit-identical — pinned by
// TestAccessRunMatchesSequentialAccess. The fast path: once the head is
// at the next request's offset (always, after the first request of a
// contiguous run), seek and rotation are exactly zero and the transfer
// time — a pure function of the constant length — is computed once, so
// steady-state pages cost integer arithmetic only.
func (d *Disk) AccessRun(now time.Time, r Run) (done time.Time, service time.Duration) {
	done = now
	if r.Count <= 0 {
		return done, 0
	}
	d.mu.Lock()
	var (
		t          = now
		off        = r.Offset
		xferCached time.Duration
		haveXfer   bool
		// Locally accumulated statistics, added in one batch at the end.
		// Integer sums are associative, so the batched totals equal the
		// per-request additions of sequential Access calls.
		seekSum, rotSum, xferSum, busySum, waitSum time.Duration
	)
	for i := int64(0); i < r.Count; i++ {
		o := d.clampOffset(off)
		var seek, rot, xfer, svc time.Duration
		if o == d.headPos {
			// Zero head travel: seekTime(0) and a zero rotational delta
			// are exactly 0, and the transfer time depends only on the
			// run's constant length, so the first computation serves the
			// whole run.
			if !haveXfer {
				xferCached = d.transferTime(r.Length)
				haveXfer = true
			}
			xfer = xferCached
			svc = d.params.ControllerOverhead + xfer
		} else {
			_, seek, rot, xfer, svc = d.serviceLocked(Request{Offset: o, Length: r.Length, Write: r.Write})
		}
		start := t
		if d.busyUntil.After(start) {
			waitSum += d.busyUntil.Sub(start)
			start = d.busyUntil
		}
		if d.flt != nil {
			if pen := d.flt.penaltyAt(start); pen > 0 {
				svc += pen
				d.stats.SlowdownTime += pen
			}
		}
		done = start.Add(svc)
		d.busyUntil = done
		d.headPos = d.headAfter(o, r.Length)
		seekSum += seek
		rotSum += rot
		xferSum += xfer
		busySum += svc
		service += svc
		if r.Chain {
			t = done
		}
		off += r.Length
	}
	if r.Write {
		d.stats.Writes += r.Count
		d.stats.BytesWritten += r.Count * r.Length
	} else {
		d.stats.Reads += r.Count
		d.stats.BytesRead += r.Count * r.Length
	}
	d.stats.SeekTime += seekSum
	d.stats.RotationTime += rotSum
	d.stats.TransferTime += xferSum
	d.stats.BusyTime += busySum
	d.stats.QueueWaitedTime += waitSum
	d.mu.Unlock()
	return done, service
}

// Head returns the current head byte offset, the position batch
// scheduling starts from.
func (d *Disk) Head() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.headPos
}

// Reset returns the head to offset 0 and clears the busy horizon and
// statistics.
func (d *Disk) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.headPos = 0
	d.busyUntil = time.Time{}
	d.stats = Stats{}
}
