package simdisk

import (
	"testing"
	"time"
)

var faultEpoch = time.Unix(0, 0)

// TestFaultPlanValidate pins the plan-level gating: RAID0 accepts only
// slowdowns (no redundancy to absorb lost data), member indexes must be
// in range, and each kind's parameters are checked.
func TestFaultPlanValidate(t *testing.T) {
	slow := Fault{Disk: 0, Kind: FaultSlowdown, Penalty: time.Millisecond}
	media := Fault{Disk: 0, Kind: FaultMedia, Offset: 0, Length: 4096}
	dead := Fault{Disk: 0, Kind: FaultDevice}
	cases := []struct {
		name  string
		plan  FaultPlan
		n     int
		level Level
		ok    bool
	}{
		{"slow on RAID0", FaultPlan{Faults: []Fault{slow}}, 2, RAID0, true},
		{"media on RAID0", FaultPlan{Faults: []Fault{media}}, 2, RAID0, false},
		{"device on RAID0", FaultPlan{Faults: []Fault{dead}}, 2, RAID0, false},
		{"device on RAID1", FaultPlan{Faults: []Fault{dead}}, 2, RAID1, true},
		{"media on RAID5", FaultPlan{Faults: []Fault{media}}, 3, RAID5, true},
		{"disk out of range", FaultPlan{Faults: []Fault{{Disk: 3, Kind: FaultDevice}}}, 3, RAID5, false},
		{"negative activation", FaultPlan{Faults: []Fault{{Disk: 0, Kind: FaultDevice, At: -time.Second}}}, 2, RAID1, false},
		{"slowdown without penalty", FaultPlan{Faults: []Fault{{Disk: 0, Kind: FaultSlowdown}}}, 2, RAID1, false},
		{"media without length", FaultPlan{Faults: []Fault{{Disk: 0, Kind: FaultMedia}}}, 3, RAID5, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(tc.n, tc.level)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// TestSlowdownInflatesService pins the slowdown billing: while active,
// each request's service time grows by exactly the penalty (charged as
// SlowdownTime); before activation and after Until it does not.
func TestSlowdownInflatesService(t *testing.T) {
	p := MemoryBackedParams()
	req := Request{Offset: 0, Length: 4096}

	healthy := MustNew(p)
	_, base := healthy.Access(faultEpoch, req)

	const pen = 250 * time.Microsecond
	d := MustNew(p)
	if err := d.InjectFault(faultEpoch, Fault{Disk: 0, Kind: FaultSlowdown, At: 0, Until: time.Second, Penalty: pen}); err != nil {
		t.Fatal(err)
	}
	if _, svc := d.Access(faultEpoch, req); svc != base+pen {
		t.Fatalf("active slowdown: service %v, want %v + %v", svc, base, pen)
	}
	if got := d.Stats().SlowdownTime; got != pen {
		t.Fatalf("SlowdownTime %v, want %v", got, pen)
	}

	// After Until the penalty lifts; the head is back at the same offset
	// so the motion cost matches the healthy second access.
	healthy.Access(faultEpoch.Add(2*time.Second), req)
	_, svc := d.Access(faultEpoch.Add(2*time.Second), req)
	healthy2 := MustNew(p)
	healthy2.Access(faultEpoch, req)
	_, want := healthy2.Access(faultEpoch.Add(2*time.Second), req)
	if svc != want {
		t.Fatalf("expired slowdown: service %v, want %v", svc, want)
	}

	// A fault scheduled in the future leaves earlier accesses untouched.
	future := MustNew(p)
	if err := future.InjectFault(faultEpoch, Fault{Disk: 0, Kind: FaultSlowdown, At: time.Hour, Penalty: pen}); err != nil {
		t.Fatal(err)
	}
	if _, svc := future.Access(faultEpoch, req); svc != base {
		t.Fatalf("future slowdown: service %v, want healthy %v", svc, base)
	}
}

// TestRAID1DegradedRead pins mirror failover: with the rotation-chosen
// member dead, the read fails over to the surviving mirror at the same
// start time and completes exactly when the healthy array's read (which
// lands on an identical fresh disk) would — the dead device bills
// nothing. The survivor's DegradedReads counts the failover.
func TestRAID1DegradedRead(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	req := Request{Offset: 0, Length: 4096} // rotation picks member 0

	healthy, err := NewArrayLevel(2, su, RAID1, p)
	if err != nil {
		t.Fatal(err)
	}
	wantDone, _ := healthy.Access(faultEpoch, req)

	degraded, err := NewArrayLevel(2, su, RAID1, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := degraded.ApplyFaultPlan(faultEpoch, &FaultPlan{Faults: []Fault{{Disk: 0, Kind: FaultDevice, At: 0}}}); err != nil {
		t.Fatal(err)
	}
	done, _ := degraded.Access(faultEpoch, req)
	if !done.Equal(wantDone) {
		t.Fatalf("degraded read done %v, want healthy %v", done, wantDone)
	}
	st := degraded.TotalStats()
	if st.DegradedReads != 1 {
		t.Fatalf("DegradedReads %d, want 1", st.DegradedReads)
	}
	if st.Unrecoverable != 0 {
		t.Fatalf("Unrecoverable %d, want 0", st.Unrecoverable)
	}
	if got := degraded.Disk(0).Stats().Reads; got != 0 {
		t.Fatalf("dead member served %d reads, want 0", got)
	}
}

// TestRAID1MediaErrorBillsFailedAttempt pins the media-error model: the
// poisoned member spends the full mechanical motion before the error
// surfaces, and the failover read chains after that attempt — strictly
// slower than the healthy read.
func TestRAID1MediaErrorBillsFailedAttempt(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	req := Request{Offset: 0, Length: 4096}

	healthy, _ := NewArrayLevel(2, su, RAID1, p)
	wantDone, _ := healthy.Access(faultEpoch, req)

	degraded, _ := NewArrayLevel(2, su, RAID1, p)
	if err := degraded.ApplyFaultPlan(faultEpoch, &FaultPlan{Faults: []Fault{
		{Disk: 0, Kind: FaultMedia, At: 0, Offset: 0, Length: 1 << 20},
	}}); err != nil {
		t.Fatal(err)
	}
	done, _ := degraded.Access(faultEpoch, req)
	if !done.After(wantDone) {
		t.Fatalf("media failover done %v, want after healthy %v", done, wantDone)
	}
	st := degraded.TotalStats()
	if st.MediaErrors != 1 {
		t.Fatalf("MediaErrors %d, want 1", st.MediaErrors)
	}
	if st.DegradedReads != 1 {
		t.Fatalf("DegradedReads %d, want 1", st.DegradedReads)
	}
	// Writes are unaffected: drives remap on write.
	if _, elapsed := degraded.Access(done, Request{Offset: 0, Length: 4096, Write: true}); elapsed <= 0 {
		t.Fatalf("write through media fault should succeed")
	}
	if got := degraded.TotalStats().Unrecoverable; got != 0 {
		t.Fatalf("Unrecoverable %d, want 0", got)
	}
}

// TestRAID5DegradedReadReconstructs pins parity reconstruction: with the
// block's data member dead, the read issues the same physical range to
// both survivors concurrently and completes with the slower of them —
// on fresh identical disks, exactly the healthy single-member read time.
func TestRAID5DegradedReadReconstructs(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	// Offset 0: stripe 0, row 0, parity on disk 0, data on disk 1.
	req := Request{Offset: 0, Length: 4096}

	healthy, _ := NewArrayLevel(3, su, RAID5, p)
	wantDone, _ := healthy.Access(faultEpoch, req)

	degraded, _ := NewArrayLevel(3, su, RAID5, p)
	if err := degraded.ApplyFaultPlan(faultEpoch, &FaultPlan{Faults: []Fault{{Disk: 1, Kind: FaultDevice, At: 0}}}); err != nil {
		t.Fatal(err)
	}
	done, _ := degraded.Access(faultEpoch, req)
	if !done.Equal(wantDone) {
		t.Fatalf("reconstructed read done %v, want %v", done, wantDone)
	}
	st := degraded.TotalStats()
	if st.ReconstructReads != 2 {
		t.Fatalf("ReconstructReads %d, want 2 (both survivors)", st.ReconstructReads)
	}
	if st.Unrecoverable != 0 {
		t.Fatalf("Unrecoverable %d, want 0", st.Unrecoverable)
	}

	// Degraded write to the dead member's block: survivors absorb it via
	// parity; nothing is unrecoverable.
	degraded.Access(done, Request{Offset: 0, Length: 4096, Write: true})
	if got := degraded.TotalStats().Unrecoverable; got != 0 {
		t.Fatalf("degraded write Unrecoverable %d, want 0", got)
	}
}

// TestRAID5DoubleFaultUnrecoverable pins the double-failure accounting:
// with two dead members, a read of a lost block cannot reconstruct and
// counts Unrecoverable.
func TestRAID5DoubleFaultUnrecoverable(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	degraded, _ := NewArrayLevel(3, su, RAID5, p)
	if err := degraded.ApplyFaultPlan(faultEpoch, &FaultPlan{Faults: []Fault{
		{Disk: 1, Kind: FaultDevice, At: 0},
		{Disk: 2, Kind: FaultDevice, At: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	degraded.Access(faultEpoch, Request{Offset: 0, Length: 4096})
	if got := degraded.TotalStats().Unrecoverable; got == 0 {
		t.Fatalf("double fault should count Unrecoverable")
	}
}

// TestHealthyPathUnchangedByPlan pins the byte-identity guarantee the
// whole fault layer rests on: an array whose plan never activates (all
// faults in the far future) times a request stream identically to an
// array with no plan at all, at every level.
func TestHealthyPathUnchangedByPlan(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	plan := &FaultPlan{Faults: []Fault{
		{Disk: 0, Kind: FaultSlowdown, At: time.Hour, Penalty: time.Millisecond},
		{Disk: 1, Kind: FaultMedia, At: time.Hour, Offset: 0, Length: 1 << 20},
		{Disk: 1, Kind: FaultDevice, At: time.Hour},
	}}
	for _, level := range []Level{RAID1, RAID5} {
		n := 2
		if level == RAID5 {
			n = 3
		}
		bare, _ := NewArrayLevel(n, su, level, p)
		planned, _ := NewArrayLevel(n, su, level, p)
		if err := planned.ApplyFaultPlan(faultEpoch, plan); err != nil {
			t.Fatal(err)
		}
		now := faultEpoch
		for i := int64(0); i < 32; i++ {
			req := Request{Offset: i * 4096, Length: 4096, Write: i%3 == 0}
			d1, e1 := bare.Access(now, req)
			d2, e2 := planned.Access(now, req)
			if !d1.Equal(d2) || e1 != e2 {
				t.Fatalf("%v req %d: planned array diverged: (%v,%v) vs (%v,%v)", level, i, d2, e2, d1, e1)
			}
			now = now.Add(100 * time.Microsecond)
		}
		if bs, ps := bare.TotalStats(), planned.TotalStats(); bs != ps {
			t.Fatalf("%v: stats diverged: %+v vs %+v", level, ps, bs)
		}
	}
}

// TestRebuildRowsAndFinish pins the rebuild geometry and promotion: the
// row count covers the used extent at each level, every row lands one
// spare write, and after Finish the member serves reads again with no
// reconstruction traffic.
func TestRebuildRowsAndFinish(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)

	cases := []struct {
		level Level
		n     int
		used  int64
		rows  int64
	}{
		{RAID1, 2, 4 * su, 4},
		{RAID1, 2, 4*su + 1, 5},
		{RAID5, 3, 4 * su, 2}, // 4 stripes over 2 data disks
		{RAID5, 4, 7 * su, 3}, // ceil(7/3)
		{RAID5, 3, 5 * su, 3}, // ceil(5/2)
	}
	for _, tc := range cases {
		a, err := NewArrayLevel(tc.n, su, tc.level, p)
		if err != nil {
			t.Fatal(err)
		}
		const failed = 1
		if err := a.ApplyFaultPlan(faultEpoch, &FaultPlan{Faults: []Fault{{Disk: failed, Kind: FaultDevice, At: 0}}}); err != nil {
			t.Fatal(err)
		}
		rb, err := a.NewRebuild(failed, tc.used)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Rows() != tc.rows {
			t.Fatalf("%v n=%d used=%d: rows %d, want %d", tc.level, tc.n, tc.used, rb.Rows(), tc.rows)
		}
		if err := rb.Finish(); err == nil {
			t.Fatalf("Finish before completion should error")
		}
		end := rb.Run(faultEpoch, a)
		if !rb.Done() {
			t.Fatalf("rebuild not done after Run")
		}
		if !end.After(faultEpoch) {
			t.Fatalf("rebuild consumed no simulated time")
		}
		if got := rb.Spare().Stats().RebuildWrites; got != tc.rows {
			t.Fatalf("spare RebuildWrites %d, want %d", got, tc.rows)
		}
		if err := rb.Finish(); err != nil {
			t.Fatal(err)
		}
		if a.Disk(failed).Failed(end) {
			t.Fatalf("member still failed after Finish")
		}
		// A read of the rebuilt member's block is served healthy: no new
		// reconstruction or failover traffic.
		before := a.TotalStats()
		var req Request
		if tc.level == RAID1 {
			req = Request{Offset: su, Length: 4096} // stripe 1: rotation picks member 1
		} else {
			req = Request{Offset: 0, Length: 4096} // row 0: parity disk 0, data disk 1
		}
		a.Access(end, req)
		after := a.TotalStats()
		if after.DegradedReads != before.DegradedReads || after.ReconstructReads != before.ReconstructReads {
			t.Fatalf("%v: read after Finish still degraded: %+v -> %+v", tc.level, before, after)
		}
		// The spare's stats were folded into the member: total rebuild
		// writes are preserved array-wide.
		if after.RebuildWrites != tc.rows {
			t.Fatalf("RebuildWrites %d after Finish, want %d", after.RebuildWrites, tc.rows)
		}
	}
}

// TestRebuildRejectsRAID0 pins that a stripe-only array cannot rebuild.
func TestRebuildRejectsRAID0(t *testing.T) {
	a := MustNewArray(2, 64<<10, MemoryBackedParams())
	if _, err := a.NewRebuild(0, 1<<20); err == nil {
		t.Fatalf("RAID0 rebuild should be rejected")
	}
}

// TestFaultedAccessDeterministic replays the same request stream against
// two identically-faulted arrays and requires bit-identical completion
// times and statistics — the device-level half of the replay-determinism
// guarantee.
func TestFaultedAccessDeterministic(t *testing.T) {
	p := MemoryBackedParams()
	su := int64(64 << 10)
	plan := &FaultPlan{Faults: []Fault{
		{Disk: 0, Kind: FaultSlowdown, At: 0, Until: 10 * time.Millisecond, Penalty: 100 * time.Microsecond},
		{Disk: 1, Kind: FaultDevice, At: 2 * time.Millisecond},
		{Disk: 2, Kind: FaultMedia, At: 0, Offset: 0, Length: 256 << 10},
	}}
	run := func() ([]time.Time, Stats) {
		a, _ := NewArrayLevel(3, su, RAID5, p)
		if err := a.ApplyFaultPlan(faultEpoch, plan); err != nil {
			t.Fatal(err)
		}
		var dones []time.Time
		now := faultEpoch
		for i := int64(0); i < 64; i++ {
			req := Request{Offset: (i * 7 % 32) * 4096, Length: 4096, Write: i%5 == 0}
			done, _ := a.Access(now, req)
			dones = append(dones, done)
			now = now.Add(50 * time.Microsecond)
		}
		return dones, a.TotalStats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range d1 {
		if !d1[i].Equal(d2[i]) {
			t.Fatalf("request %d done diverged: %v vs %v", i, d1[i], d2[i])
		}
	}
}

// TestParseFaultPlan pins the flag grammar and its round trip.
func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("fail:1@0s,slow:0@1ms+200µs..5ms,media:2@0s:4096+8192")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Disk: 1, Kind: FaultDevice},
		{Disk: 0, Kind: FaultSlowdown, At: time.Millisecond, Penalty: 200 * time.Microsecond, Until: 5 * time.Millisecond},
		{Disk: 2, Kind: FaultMedia, Offset: 4096, Length: 8192},
	}
	if len(plan.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(plan.Faults), len(want))
	}
	for i := range want {
		if plan.Faults[i] != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, plan.Faults[i], want[i])
		}
	}
	round, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for i := range want {
		if round.Faults[i] != want[i] {
			t.Fatalf("round-trip fault %d = %+v, want %+v", i, round.Faults[i], want[i])
		}
	}
	if p, err := ParseFaultPlan(""); err != nil || p != nil {
		t.Fatalf("empty plan = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []string{"boom:0@0s", "slow:0@0s", "media:1@0s:10", "fail:x@0s", "fail:0"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) should error", bad)
		}
	}
}
