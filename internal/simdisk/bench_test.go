package simdisk

import (
	"testing"
	"time"
)

func BenchmarkDiskAccessSequential(b *testing.B) {
	d := MustNew(DefaultParams())
	now := time.Unix(0, 0)
	var off int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(now, Request{Offset: off, Length: 64 << 10})
		off += 64 << 10
		if off >= d.Params().Capacity-(64<<10) {
			off = 0
		}
	}
}

func BenchmarkDiskAccessRandom(b *testing.B) {
	d := MustNew(DefaultParams())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*2654435761) % d.Params().Capacity
		if off < 0 {
			off += d.Params().Capacity
		}
		d.Access(now, Request{Offset: off, Length: 4 << 10})
	}
}

func BenchmarkArrayAccessStriped(b *testing.B) {
	a := MustNewArray(8, 64<<10, DefaultParams())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Access(now, Request{Offset: int64(i) * (1 << 20) % (a.Capacity() - (1 << 20)), Length: 1 << 20})
	}
}

func BenchmarkServeBatchSSTF(b *testing.B) {
	d := MustNew(DefaultParams())
	reqs := scatteredBatch(d, 32)
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ServeBatch(now, reqs, SSTF)
	}
}
