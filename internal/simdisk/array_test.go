package simdisk

import (
	"testing"
	"testing/quick"
	"time"
)

func testArray(n int) *Array {
	return MustNewArray(n, 64<<10, testParams())
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0, 64<<10, testParams()); err == nil {
		t.Error("accepted zero disks")
	}
	if _, err := NewArray(4, 0, testParams()); err == nil {
		t.Error("accepted zero stripe unit")
	}
	bad := testParams()
	bad.RPM = 0
	if _, err := NewArray(4, 64<<10, bad); err == nil {
		t.Error("accepted invalid disk params")
	}
}

func TestMapUnmapBijectionProperty(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32} {
		a := testArray(n)
		f := func(raw int64) bool {
			logical := raw % a.Capacity()
			if logical < 0 {
				logical = -logical
			}
			disk, phys := a.Map(logical)
			if disk < 0 || disk >= a.NumDisks() {
				return false
			}
			return a.Unmap(disk, phys) == logical
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestMapSpreadsConsecutiveStripes(t *testing.T) {
	a := testArray(4)
	unit := a.StripeUnit()
	seen := map[int]bool{}
	for s := int64(0); s < 4; s++ {
		disk, _ := a.Map(s * unit)
		seen[disk] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 consecutive stripes hit %d disks, want 4", len(seen))
	}
}

func TestLargeRequestsParallelizeAcrossDisks(t *testing.T) {
	now := time.Unix(0, 0)
	req := Request{Offset: 0, Length: 8 << 20} // 8 MB spans many stripes
	a1 := testArray(1)
	_, t1 := a1.Access(now, req)
	a8 := testArray(8)
	_, t8 := a8.Access(now, req)
	if t8 >= t1 {
		t.Fatalf("8-disk array not faster for large striped read: 1 disk %v, 8 disks %v", t1, t8)
	}
}

func TestSmallRequestsDoNotParallelize(t *testing.T) {
	now := time.Unix(0, 0)
	req := Request{Offset: 0, Length: 4 << 10} // within one stripe unit
	a1 := testArray(1)
	_, t1 := a1.Access(now, req)
	a8 := testArray(8)
	_, t8 := a8.Access(now, req)
	// A request inside one stripe touches a single disk; no speedup.
	diff := t8 - t1
	if diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("small request times diverge: 1 disk %v, 8 disks %v", t1, t8)
	}
}

func TestZeroLengthAccessPositionsOneDisk(t *testing.T) {
	a := testArray(4)
	now := time.Unix(0, 0)
	done, elapsed := a.Access(now, Request{Offset: 128 << 10, Length: 0})
	if elapsed <= 0 || !done.After(now) {
		t.Fatalf("zero-length access must still cost positioning: %v", elapsed)
	}
	if total := a.TotalStats().Ops(); total != 1 {
		t.Fatalf("zero-length access touched %d disks, want 1", total)
	}
}

func TestTotalStatsSumsBytes(t *testing.T) {
	a := testArray(4)
	now := time.Unix(0, 0)
	a.Access(now, Request{Offset: 0, Length: 1 << 20, Write: false})
	a.Access(now, Request{Offset: 1 << 20, Length: 512 << 10, Write: true})
	s := a.TotalStats()
	if s.BytesRead != 1<<20 {
		t.Fatalf("BytesRead = %d, want %d", s.BytesRead, 1<<20)
	}
	if s.BytesWritten != 512<<10 {
		t.Fatalf("BytesWritten = %d, want %d", s.BytesWritten, 512<<10)
	}
}

func TestArrayResetClearsMembers(t *testing.T) {
	a := testArray(2)
	a.Access(time.Unix(0, 0), Request{Offset: 0, Length: 1 << 20})
	a.Reset()
	if a.TotalStats().Ops() != 0 {
		t.Fatal("reset did not clear member stats")
	}
}

func TestArrayCapacity(t *testing.T) {
	a := testArray(4)
	want := 4 * testParams().Capacity
	if a.Capacity() != want {
		t.Fatalf("Capacity = %d, want %d", a.Capacity(), want)
	}
}
