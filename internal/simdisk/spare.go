package simdisk

import (
	"fmt"
	"sync"
)

// SparePool holds pre-provisioned hot-spare disks rebuilds draw from —
// the pool a production array keeps spun up so a second failure does not
// wait on procurement. Taking a spare is explicit and bounded: when the
// pool is exhausted, NewRebuildOnto callers get an error instead of an
// invisible extra disk, so a plan that kills more members than it
// provisioned spares for fails loudly.
type SparePool struct {
	mu   sync.Mutex
	free []*Disk
	size int
}

// NewSparePool provisions n fresh spares with the given disk geometry.
func NewSparePool(n int, p Params) (*SparePool, error) {
	if n < 0 {
		return nil, fmt.Errorf("simdisk: negative spare count %d", n)
	}
	sp := &SparePool{size: n}
	for i := 0; i < n; i++ {
		d, err := New(p)
		if err != nil {
			return nil, err
		}
		sp.free = append(sp.free, d)
	}
	return sp, nil
}

// Size returns the provisioned spare count.
func (sp *SparePool) Size() int { return sp.size }

// Available returns how many spares remain unclaimed.
func (sp *SparePool) Available() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.free)
}

// Take claims a spare, or errors when the pool is exhausted.
func (sp *SparePool) Take() (*Disk, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.free) == 0 {
		return nil, fmt.Errorf("simdisk: spare pool exhausted (%d provisioned)", sp.size)
	}
	d := sp.free[len(sp.free)-1]
	sp.free = sp.free[:len(sp.free)-1]
	return d, nil
}

// Put returns an unused spare to the pool (e.g. a rebuild that never
// started).
func (sp *SparePool) Put(d *Disk) {
	if d == nil {
		return
	}
	sp.mu.Lock()
	sp.free = append(sp.free, d)
	sp.mu.Unlock()
}
