package simdisk

import (
	"fmt"
	"time"
)

// FaultKind selects what a scheduled Fault does to its member disk.
type FaultKind int

// Fault kinds.
const (
	// FaultSlowdown inflates the service time of every request the disk
	// serves while the fault is active — a transient firmware stall or a
	// drive entering thermal throttling.
	FaultSlowdown FaultKind = iota
	// FaultMedia poisons a physical byte range: reads overlapping it
	// return a *MediaError (after spending the full mechanical motion —
	// the head moved and the sector was read before the ECC rejected it);
	// writes succeed, as drives remap on write.
	FaultMedia
	// FaultDevice kills the whole device at a virtual timestamp: every
	// request whose service would start at or after At is refused with a
	// *DeviceFailedError and bills nothing.
	FaultDevice
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultSlowdown:
		return "slow"
	case FaultMedia:
		return "media"
	case FaultDevice:
		return "fail"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault on one member disk. All times are virtual
// (offsets from the simulation start), so a plan replays bit-identically
// run after run regardless of goroutine scheduling.
type Fault struct {
	// Disk is the member index the fault applies to.
	Disk int
	// Kind selects the behaviour.
	Kind FaultKind
	// At activates the fault: requests whose service starts earlier are
	// unaffected.
	At time.Duration
	// Until deactivates a slowdown; zero means it never lifts. Media and
	// device faults ignore it (sectors stay bad, dead drives stay dead —
	// until a rebuild replaces the platter).
	Until time.Duration
	// Penalty is the per-request service-time inflation of a slowdown.
	Penalty time.Duration
	// Offset and Length bound the poisoned physical range of a media
	// fault.
	Offset, Length int64
}

// Validate reports the first problem with the fault, or nil.
func (f Fault) Validate() error {
	switch f.Kind {
	case FaultSlowdown:
		if f.Penalty <= 0 {
			return fmt.Errorf("simdisk: slowdown fault needs a positive penalty, got %v", f.Penalty)
		}
		if f.Until != 0 && f.Until < f.At {
			return fmt.Errorf("simdisk: slowdown fault lifts at %v before it starts at %v", f.Until, f.At)
		}
	case FaultMedia:
		if f.Length <= 0 {
			return fmt.Errorf("simdisk: media fault needs a positive length, got %d", f.Length)
		}
		if f.Offset < 0 {
			return fmt.Errorf("simdisk: media fault offset %d must be non-negative", f.Offset)
		}
	case FaultDevice:
	default:
		return fmt.Errorf("simdisk: unknown fault kind %d", int(f.Kind))
	}
	if f.Disk < 0 {
		return fmt.Errorf("simdisk: disk index %d must be non-negative", f.Disk)
	}
	if f.At < 0 {
		return fmt.Errorf("simdisk: fault activation %v must be non-negative", f.At)
	}
	return nil
}

// checkMediaOverlaps rejects plans whose media-error ranges on the same
// disk overlap: two poisoned ranges covering one sector would make the
// billed failure order depend on which fault the access check saw
// first. Errors are positioned — they name both fault indices and
// render both faults in the plan grammar.
func (p *FaultPlan) checkMediaOverlaps() error {
	for i, f := range p.Faults {
		if f.Kind != FaultMedia {
			continue
		}
		for j := 0; j < i; j++ {
			g := p.Faults[j]
			if g.Kind != FaultMedia || g.Disk != f.Disk {
				continue
			}
			if f.Offset < g.Offset+g.Length && g.Offset < f.Offset+f.Length {
				return fmt.Errorf("fault %d %q: media range [%d,%d) on disk %d overlaps fault %d %q",
					i, formatFault(f), f.Offset, f.Offset+f.Length, f.Disk, j, formatFault(g))
			}
		}
	}
	return nil
}

// FaultPlan schedules per-member faults on simulated time. Applying the
// same plan to identical arrays yields identical timings: activation is
// decided by each request's virtual service-start time, never by the
// wall clock.
type FaultPlan struct {
	Faults []Fault
}

// Validate checks every fault against an array of n members at the given
// level. RAID0 has no redundancy, so media and device faults — which the
// array could only surface as data loss — are rejected there; slowdowns
// are timing-only and allowed at any level.
func (p *FaultPlan) Validate(n int, level Level) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
		if f.Disk < 0 || f.Disk >= n {
			return fmt.Errorf("fault %d: disk %d out of range [0,%d)", i, f.Disk, n)
		}
		if level == RAID0 && f.Kind != FaultSlowdown {
			return fmt.Errorf("fault %d: %s fault needs redundancy; %s has none (only slowdowns)", i, f.Kind, level)
		}
	}
	return p.checkMediaOverlaps()
}

// MediaError reports a read that landed on a poisoned sector range. The
// mechanical motion was spent before the error surfaced, so the failed
// attempt is billed on the member.
type MediaError struct {
	Disk           int
	Offset, Length int64
}

// Error implements error.
func (e *MediaError) Error() string {
	return fmt.Sprintf("simdisk: media error on disk %d range [%d,%d)", e.Disk, e.Offset, e.Offset+e.Length)
}

// DeviceFailedError reports a request issued to a member that has failed
// outright. The dead device serves nothing and bills nothing.
type DeviceFailedError struct {
	Disk int
	At   time.Duration
}

// Error implements error.
func (e *DeviceFailedError) Error() string {
	return fmt.Sprintf("simdisk: disk %d failed at +%v", e.Disk, e.At)
}

// diskFaults is the per-disk fault state. A healthy disk keeps a nil
// pointer, so the fault-free hot path pays exactly one nil check.
type diskFaults struct {
	member int // index carried into typed errors
	epoch  time.Time
	slow   []Fault
	media  []Fault
	failAt time.Duration
	failed bool
}

// penaltyAt sums the slowdown penalties active at the service start.
func (df *diskFaults) penaltyAt(start time.Time) time.Duration {
	var pen time.Duration
	at := start.Sub(df.epoch)
	for _, f := range df.slow {
		if at >= f.At && (f.Until == 0 || at < f.Until) {
			pen += f.Penalty
		}
	}
	return pen
}

// check returns the typed error a request starting at start would hit:
// device failure first (the drive is gone), then media errors for reads
// overlapping a poisoned range. Writes never hit media errors.
func (df *diskFaults) check(start time.Time, req Request) error {
	at := start.Sub(df.epoch)
	if df.failed && at >= df.failAt {
		return &DeviceFailedError{Disk: df.member, At: df.failAt}
	}
	if !req.Write {
		for _, f := range df.media {
			if at >= f.At && req.Offset < f.Offset+f.Length && f.Offset < req.Offset+req.Length {
				return &MediaError{Disk: df.member, Offset: f.Offset, Length: f.Length}
			}
		}
	}
	return nil
}

// InjectFault schedules f on the disk. Virtual activation offsets are
// measured from epoch (the simulation start the caller's clocks use).
func (d *Disk) InjectFault(epoch time.Time, f Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.flt == nil {
		d.flt = &diskFaults{member: f.Disk, epoch: epoch}
	}
	switch f.Kind {
	case FaultSlowdown:
		d.flt.slow = append(d.flt.slow, f)
	case FaultMedia:
		d.flt.media = append(d.flt.media, f)
	case FaultDevice:
		if !d.flt.failed || f.At < d.flt.failAt {
			d.flt.failAt = f.At
		}
		d.flt.failed = true
	}
	return nil
}

// ClearFaults drops every scheduled fault — the rebuild path calls this
// when a fresh platter replaces the member.
func (d *Disk) ClearFaults() {
	d.mu.Lock()
	d.flt = nil
	d.mu.Unlock()
}

// Failed reports whether the device is dead at the given virtual time.
func (d *Disk) Failed(now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flt != nil && d.flt.failed && now.Sub(d.flt.epoch) >= d.flt.failAt
}

// accessChecked is accessLocked plus the fault gate, the entry point the
// leveled (RAID1/RAID5) array paths use. A dead device refuses the
// request and bills nothing; a media error spends the full mechanical
// motion (the head moved, the platter spun, the ECC then rejected the
// sector) and returns the completion time of the failed attempt with the
// typed error, so recovery can chain after it. With no faults injected
// it is bit-identical to Access.
func (d *Disk) accessChecked(now time.Time, req Request) (done time.Time, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.flt != nil {
		start := now
		if d.busyUntil.After(start) {
			start = d.busyUntil
		}
		if ferr := d.flt.check(start, req); ferr != nil {
			if _, dead := ferr.(*DeviceFailedError); dead {
				return time.Time{}, ferr
			}
			done, _ = d.accessLocked(now, req)
			d.stats.MediaErrors++
			return done, ferr
		}
	}
	done, _ = d.accessLocked(now, req)
	return done, nil
}

// addRecovery accumulates recovery counters on the member under its
// lock; the degraded array paths bill them on the disk that did (or
// failed to do) the work so TotalStats aggregates them for free.
func (d *Disk) addRecovery(degraded, reconstruct, rebuild, unrecoverable int64) {
	d.mu.Lock()
	d.stats.DegradedReads += degraded
	d.stats.ReconstructReads += reconstruct
	d.stats.RebuildWrites += rebuild
	d.stats.Unrecoverable += unrecoverable
	d.mu.Unlock()
}

// isDeviceFailed reports whether err is a *DeviceFailedError.
func isDeviceFailed(err error) bool {
	_, ok := err.(*DeviceFailedError)
	return ok
}
