package simdisk

import (
	"testing"
	"time"
)

// runParams is a small disk so capacity-boundary cases are cheap to hit.
func runParams() Params {
	p := DefaultParams()
	p.Capacity = 1 << 20
	return p
}

// seqAccessRun replays r as the sequence of Access calls AccessRun must
// be bit-identical to.
func seqAccessRun(d *Disk, now time.Time, r Run) (done time.Time, service time.Duration) {
	done = now
	t := now
	off := r.Offset
	for i := int64(0); i < r.Count; i++ {
		var svc time.Duration
		done, svc = d.Access(t, Request{Offset: off, Length: r.Length, Write: r.Write})
		service += svc
		if r.Chain {
			t = done
		}
		off += r.Length
	}
	return done, service
}

// TestAccessRunMatchesSequentialAccess pins the AccessRun contract: for
// contiguous runs — including ones starting away from the head (a seek),
// crossing the capacity boundary, negative offsets, and both chaining
// modes — the completion time, total service, statistics, and final head
// position are bit-identical to the equivalent Access sequence.
func TestAccessRunMatchesSequentialAccess(t *testing.T) {
	now := time.Unix(10, 0)
	runs := []Run{
		{Offset: 0, Length: 4096, Count: 16},
		{Offset: 12288, Length: 4096, Count: 5, Write: true},
		{Offset: 12288, Length: 4096, Count: 5, Write: true, Chain: true},
		{Offset: 1<<20 - 3*4096, Length: 4096, Count: 8},              // runs off the end
		{Offset: 1<<20 - 3*4096, Length: 4096, Count: 8, Chain: true}, // ditto, chained
		{Offset: -8192, Length: 4096, Count: 4},                       // negative clamp
		{Offset: 777, Length: 1000, Count: 3, Write: true},            // unaligned
		{Offset: 4096, Length: 0, Count: 3},                           // zero-length positioning
		{Offset: 4096, Length: 4096, Count: 0},                        // empty run
	}
	a := MustNew(runParams())
	b := MustNew(runParams())
	// Arbitrary warm-up so the head and busy horizon are non-trivial.
	a.Access(now, Request{Offset: 64 << 10, Length: 8192})
	b.Access(now, Request{Offset: 64 << 10, Length: 8192})
	at := now
	for i, r := range runs {
		doneA, svcA := a.AccessRun(at, r)
		doneB, svcB := seqAccessRun(b, at, r)
		if !doneA.Equal(doneB) || svcA != svcB {
			t.Fatalf("run %d: AccessRun (done %v, svc %v) != sequential (done %v, svc %v)",
				i, doneA, svcA, doneB, svcB)
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("run %d: stats diverge:\nrun: %+v\nseq: %+v", i, a.Stats(), b.Stats())
		}
		if a.Head() != b.Head() {
			t.Fatalf("run %d: head %d != %d", i, a.Head(), b.Head())
		}
		at = doneA // keep advancing so busy horizons stay interesting
	}
}

// seqArrayRun is the Array equivalent of seqAccessRun.
func seqArrayRun(a *Array, now time.Time, r Run) time.Time {
	done := now
	t := now
	off := r.Offset
	for i := int64(0); i < r.Count; i++ {
		done, _ = a.Access(t, Request{Offset: off, Length: r.Length, Write: r.Write})
		if r.Chain {
			t = done
		}
		off += r.Length
	}
	return done
}

// TestArrayAccessRunMatchesSequentialAccess pins Array.AccessRun for
// RAID-0 runs that stay within stripe units (the forwarded fast path),
// runs that straddle stripe boundaries (the splitter fallback), and the
// RAID-1/RAID-5 per-request fallbacks.
func TestArrayAccessRunMatchesSequentialAccess(t *testing.T) {
	now := time.Unix(10, 0)
	cases := []struct {
		name  string
		disks int
		level Level
		run   Run
	}{
		{"raid0-pages", 4, RAID0, Run{Offset: 0, Length: 4096, Count: 64}},
		{"raid0-pages-chain", 4, RAID0, Run{Offset: 128 << 10, Length: 4096, Count: 40, Write: true, Chain: true}},
		{"raid0-straddle", 3, RAID0, Run{Offset: 48 << 10, Length: 48 << 10, Count: 6}},
		{"raid0-single-disk", 1, RAID0, Run{Offset: 8192, Length: 4096, Count: 32, Write: true}},
		{"raid1", 2, RAID1, Run{Offset: 0, Length: 4096, Count: 16, Write: true}},
		{"raid5", 4, RAID5, Run{Offset: 0, Length: 4096, Count: 16, Write: true, Chain: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			mk := func() *Array {
				a, err := NewArrayLevel(tc.disks, 64<<10, tc.level, p)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			a, b := mk(), mk()
			doneA, _ := a.AccessRun(now, tc.run)
			doneB := seqArrayRun(b, now, tc.run)
			if !doneA.Equal(doneB) {
				t.Fatalf("AccessRun done %v != sequential %v", doneA, doneB)
			}
			if a.Head() != b.Head() {
				t.Fatalf("logical head %d != %d", a.Head(), b.Head())
			}
			for i := 0; i < tc.disks; i++ {
				if a.Disk(i).Stats() != b.Disk(i).Stats() {
					t.Fatalf("disk %d stats diverge:\nrun: %+v\nseq: %+v",
						i, a.Disk(i).Stats(), b.Disk(i).Stats())
				}
				if a.Disk(i).Head() != b.Disk(i).Head() {
					t.Fatalf("disk %d head %d != %d", i, a.Disk(i).Head(), b.Disk(i).Head())
				}
			}
		})
	}
}

// TestServiceTimePredictsAccessAtCapacityBoundary is the regression test
// for the clamp alignment: after a transfer runs off the end of the disk
// (parking the head on the last byte), ServiceTime's prediction for any
// follow-up request — including another boundary request — must equal
// the service Access then charges, because both sides share one cost
// helper and one clamping rule.
func TestServiceTimePredictsAccessAtCapacityBoundary(t *testing.T) {
	p := runParams()
	d := MustNew(p)
	now := time.Unix(0, 0)

	// Run off the end: offset inside, offset+length past capacity.
	d.Access(now, Request{Offset: p.Capacity - 4096, Length: 64 << 10})
	if got := d.Head(); got != p.Capacity-1 {
		t.Fatalf("head after run-off-the-end transfer = %d, want %d", got, p.Capacity-1)
	}

	followUps := []Request{
		{Offset: p.Capacity - 1, Length: 4096},       // at the parked head
		{Offset: p.Capacity + 5000, Length: 4096},    // clamped target
		{Offset: 0, Length: 4096, Write: true},       // full-stroke seek back
		{Offset: p.Capacity - 4096, Length: 1 << 20}, // boundary again
		{Offset: -1, Length: 4096},                   // negative clamp
	}
	for i, req := range followUps {
		predicted := d.ServiceTime(req)
		_, got := d.Access(now, req)
		if predicted != got {
			t.Fatalf("follow-up %d: ServiceTime predicted %v, Access charged %v", i, predicted, got)
		}
	}
}

// TestAccessRunZeroAllocs pins the steady-state run path (head already
// at the run's offset) at zero allocations.
func TestAccessRunZeroAllocs(t *testing.T) {
	d := MustNew(runParams())
	now := time.Unix(0, 0)
	off := int64(0)
	allocs := testing.AllocsPerRun(100, func() {
		d.AccessRun(now, Run{Offset: off, Length: 4096, Count: 16, Write: true, Chain: true})
		off = (off + 16*4096) % (1 << 19)
	})
	if allocs != 0 {
		t.Fatalf("AccessRun allocates %.1f objects/op, want 0", allocs)
	}
}
