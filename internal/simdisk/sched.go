package simdisk

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SchedPolicy selects the order a queued batch of requests is serviced
// in. The paper's replays are synchronous (one request at a time), but
// the buffer cache's background write-back, the disk-scaling experiments
// and the distributed benchmark generate queues, where the classic
// schedulers differ; BenchmarkAblationScheduler quantifies it.
type SchedPolicy int

// Scheduling policies.
const (
	// FCFS services requests in arrival order.
	FCFS SchedPolicy = iota
	// SSTF services the request with the shortest seek from the current
	// head position first (greedy).
	SSTF
	// SCAN sweeps the head from its current position toward higher
	// offsets, then back — the elevator algorithm.
	SCAN
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case SSTF:
		return "SSTF"
	case SCAN:
		return "SCAN"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a case-insensitive policy name ("fcfs", "sstf",
// "scan") to its SchedPolicy, for flags and config files.
func ParsePolicy(s string) (SchedPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fcfs":
		return FCFS, nil
	case "sstf":
		return SSTF, nil
	case "scan":
		return SCAN, nil
	default:
		return FCFS, fmt.Errorf("simdisk: unknown scheduling policy %q (want fcfs, sstf, or scan)", s)
	}
}

// Valid reports whether p is a known policy.
func (p SchedPolicy) Valid() bool { return p == FCFS || p == SSTF || p == SCAN }

// BatchResult reports one request's outcome within a scheduled batch.
type BatchResult struct {
	// Index is the request's position in the submitted batch.
	Index int
	// Done is the completion time.
	Done time.Time
	// Service is the request's service duration.
	Service time.Duration
}

// ScheduleOrder computes the service order for a batch of pending
// requests under policy, given the head position the service run starts
// from. It is shared by Disk.ServeBatch, Array.ServeBatch, and any
// caller building its own elevator queue.
func ScheduleOrder(head int64, reqs []Request, policy SchedPolicy) []int {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	switch policy {
	case FCFS:
		// Arrival order as given.
	case SSTF:
		// Greedy nearest-first simulation of head movement.
		remaining := append([]int(nil), order...)
		order = order[:0]
		for len(remaining) > 0 {
			best := 0
			bestDist := absInt64(reqs[remaining[0]].Offset - head)
			for i := 1; i < len(remaining); i++ {
				if dist := absInt64(reqs[remaining[i]].Offset - head); dist < bestDist {
					best, bestDist = i, dist
				}
			}
			idx := remaining[best]
			order = append(order, idx)
			head = reqs[idx].Offset + reqs[idx].Length
			remaining = append(remaining[:best], remaining[best+1:]...)
		}
	case SCAN:
		var up, down []int
		for _, idx := range order {
			if reqs[idx].Offset >= head {
				up = append(up, idx)
			} else {
				down = append(down, idx)
			}
		}
		sort.Slice(up, func(i, j int) bool { return reqs[up[i]].Offset < reqs[up[j]].Offset })
		sort.Slice(down, func(i, j int) bool { return reqs[down[i]].Offset > reqs[down[j]].Offset })
		order = append(up, down...)
	}
	return order
}

// ServeBatch services a queue of simultaneously pending requests in the
// order chosen by policy, starting no earlier than now. The whole batch
// runs under one lock acquisition — each request still pays the same
// cost arithmetic and queues on the busy horizon exactly as a sequential
// Access call would, so the results are bit-identical. It returns
// per-request results in submission order plus the batch completion time.
func (d *Disk) ServeBatch(now time.Time, reqs []Request, policy SchedPolicy) ([]BatchResult, time.Time) {
	if len(reqs) == 0 {
		return nil, now
	}
	order := ScheduleOrder(d.Head(), reqs, policy)
	results := make([]BatchResult, len(reqs))
	end := now
	d.mu.Lock()
	for _, idx := range order {
		done, svc := d.accessLocked(now, reqs[idx])
		results[idx] = BatchResult{Index: idx, Done: done, Service: svc}
		if done.After(end) {
			end = done
		}
	}
	d.mu.Unlock()
	return results, end
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
