package simdisk

import (
	"testing"
	"time"
)

var raidNow = time.Unix(0, 0)

func TestNewArrayLevelValidation(t *testing.T) {
	if _, err := NewArrayLevel(1, 64<<10, RAID1, testParams()); err == nil {
		t.Error("RAID1 with 1 disk accepted")
	}
	if _, err := NewArrayLevel(2, 64<<10, RAID5, testParams()); err == nil {
		t.Error("RAID5 with 2 disks accepted")
	}
	if _, err := NewArrayLevel(4, 64<<10, Level(9), testParams()); err == nil {
		t.Error("unknown level accepted")
	}
	a, err := NewArrayLevel(4, 64<<10, RAID5, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Level() != RAID5 {
		t.Fatalf("Level = %v", a.Level())
	}
}

func TestLevelString(t *testing.T) {
	if RAID0.String() != "RAID0" || RAID1.String() != "RAID1" || RAID5.String() != "RAID5" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() != "level(9)" {
		t.Fatal("unknown level name wrong")
	}
}

func TestCapacityByLevel(t *testing.T) {
	per := testParams().Capacity
	r0, _ := NewArrayLevel(4, 64<<10, RAID0, testParams())
	r1, _ := NewArrayLevel(4, 64<<10, RAID1, testParams())
	r5, _ := NewArrayLevel(4, 64<<10, RAID5, testParams())
	if r0.Capacity() != 4*per {
		t.Errorf("RAID0 capacity %d, want %d", r0.Capacity(), 4*per)
	}
	if r1.Capacity() != per {
		t.Errorf("RAID1 capacity %d, want %d", r1.Capacity(), per)
	}
	if r5.Capacity() != 3*per {
		t.Errorf("RAID5 capacity %d, want %d", r5.Capacity(), 3*per)
	}
}

func TestRAID1WritesAllMirrors(t *testing.T) {
	a, _ := NewArrayLevel(3, 64<<10, RAID1, testParams())
	a.Access(raidNow, Request{Offset: 0, Length: 4096, Write: true})
	s := a.TotalStats()
	if s.Writes != 3 {
		t.Fatalf("mirrored write touched %d members, want 3", s.Writes)
	}
	if s.BytesWritten != 3*4096 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten)
	}
}

func TestRAID1ReadsSingleMember(t *testing.T) {
	a, _ := NewArrayLevel(3, 64<<10, RAID1, testParams())
	a.Access(raidNow, Request{Offset: 0, Length: 4096})
	if got := a.TotalStats().Reads; got != 1 {
		t.Fatalf("mirrored read touched %d members, want 1", got)
	}
	// Reads at different stripes rotate across members.
	a2, _ := NewArrayLevel(3, 64<<10, RAID1, testParams())
	seen := map[int]bool{}
	for s := int64(0); s < 3; s++ {
		a2.Access(raidNow, Request{Offset: s * (64 << 10), Length: 4096})
	}
	for i := 0; i < a2.NumDisks(); i++ {
		if a2.Disk(i).Stats().Reads > 0 {
			seen[i] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("reads rotated over %d members, want 3", len(seen))
	}
}

func TestRAID5SmallWritePenalty(t *testing.T) {
	// The read-modify-write sequence makes a small RAID-5 write slower
	// than the same write on RAID-0, and issues 4 member I/Os.
	r0, _ := NewArrayLevel(4, 64<<10, RAID0, testParams())
	r5, _ := NewArrayLevel(4, 64<<10, RAID5, testParams())
	_, t0 := r0.Access(raidNow, Request{Offset: 0, Length: 4096, Write: true})
	_, t5 := r5.Access(raidNow, Request{Offset: 0, Length: 4096, Write: true})
	if t5 <= t0 {
		t.Fatalf("RAID5 small write %v not slower than RAID0 %v", t5, t0)
	}
	if ops := r5.TotalStats().Ops(); ops != 4 {
		t.Fatalf("RAID5 small write issued %d member I/Os, want 4", ops)
	}
}

func TestRAID5ReadsAvoidParityPenalty(t *testing.T) {
	r5, _ := NewArrayLevel(4, 64<<10, RAID5, testParams())
	_, dur := r5.Access(raidNow, Request{Offset: 0, Length: 4096})
	if ops := r5.TotalStats().Ops(); ops != 1 {
		t.Fatalf("RAID5 read issued %d member I/Os, want 1", ops)
	}
	if dur <= 0 {
		t.Fatal("read cost nothing")
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	// Writes across consecutive stripe rows must not pin parity to one
	// member: every member should receive some parity traffic.
	a, _ := NewArrayLevel(3, 64<<10, RAID5, testParams())
	dataDisks := int64(2)
	for row := int64(0); row < 3; row++ {
		off := row * dataDisks * (64 << 10) // first block of each row
		a.Access(raidNow, Request{Offset: off, Length: 4096, Write: true})
	}
	busy := 0
	for i := 0; i < a.NumDisks(); i++ {
		if a.Disk(i).Stats().Ops() > 0 {
			busy++
		}
	}
	if busy != 3 {
		t.Fatalf("parity rotation touched %d members, want 3", busy)
	}
}

func TestRAID0DefaultUnchanged(t *testing.T) {
	// Arrays built with NewArray keep the original striping behaviour.
	a := MustNewArray(4, 64<<10, testParams())
	if a.Level() != RAID0 {
		t.Fatalf("default level = %v", a.Level())
	}
	done, elapsed := a.Access(raidNow, Request{Offset: 0, Length: 8 << 20})
	if elapsed <= 0 || !done.After(raidNow) {
		t.Fatal("striped access broken")
	}
}
