package simdisk

import (
	"testing"
	"testing/quick"
	"time"
)

// scatteredBatch builds a random-order batch across the disk.
func scatteredBatch(d *Disk, n int) []Request {
	reqs := make([]Request, n)
	cap := d.Params().Capacity
	for i := range reqs {
		// Deterministic scatter: jump around the disk in a fixed pattern.
		off := (int64(i*2654435761) % cap)
		if off < 0 {
			off += cap
		}
		reqs[i] = Request{Offset: off, Length: 64 << 10}
	}
	return reqs
}

func TestServeBatchEmptyAndSingle(t *testing.T) {
	d := MustNew(testParams())
	now := time.Unix(0, 0)
	res, end := d.ServeBatch(now, nil, FCFS)
	if res != nil || !end.Equal(now) {
		t.Fatal("empty batch should be a no-op")
	}
	res, end = d.ServeBatch(now, []Request{{Offset: 0, Length: 4096}}, SCAN)
	if len(res) != 1 || !end.Equal(res[0].Done) {
		t.Fatalf("single-request batch wrong: %+v", res)
	}
}

func TestServeBatchServesAllExactlyOnce(t *testing.T) {
	for _, policy := range []SchedPolicy{FCFS, SSTF, SCAN} {
		d := MustNew(testParams())
		reqs := scatteredBatch(d, 16)
		res, _ := d.ServeBatch(time.Unix(0, 0), reqs, policy)
		if len(res) != len(reqs) {
			t.Fatalf("%v: %d results for %d requests", policy, len(res), len(reqs))
		}
		for i, r := range res {
			if r.Index != i {
				t.Fatalf("%v: result %d has index %d", policy, i, r.Index)
			}
			if r.Service <= 0 {
				t.Fatalf("%v: request %d has no service time", policy, i)
			}
		}
		if got := d.Stats().Ops(); got != int64(len(reqs)) {
			t.Fatalf("%v: disk served %d ops, want %d", policy, got, len(reqs))
		}
	}
}

func TestSeekOptimizingPoliciesBeatFCFS(t *testing.T) {
	makespan := func(policy SchedPolicy) time.Duration {
		d := MustNew(testParams())
		reqs := scatteredBatch(d, 32)
		_, end := d.ServeBatch(time.Unix(0, 0), reqs, policy)
		return end.Sub(time.Unix(0, 0))
	}
	fcfs := makespan(FCFS)
	sstf := makespan(SSTF)
	scan := makespan(SCAN)
	if sstf >= fcfs {
		t.Fatalf("SSTF %v not faster than FCFS %v on scattered batch", sstf, fcfs)
	}
	if scan >= fcfs {
		t.Fatalf("SCAN %v not faster than FCFS %v on scattered batch", scan, fcfs)
	}
}

func TestSCANSweepsMonotonically(t *testing.T) {
	d := MustNew(testParams())
	reqs := scatteredBatch(d, 12)
	order := ScheduleOrder(d.Head(), reqs, SCAN)
	// Offsets must rise (up sweep) then fall (down sweep): exactly one
	// direction change.
	changes := 0
	for i := 2; i < len(order); i++ {
		prevDelta := reqs[order[i-1]].Offset - reqs[order[i-2]].Offset
		delta := reqs[order[i]].Offset - reqs[order[i-1]].Offset
		if (prevDelta > 0) != (delta > 0) {
			changes++
		}
	}
	if changes > 1 {
		t.Fatalf("SCAN changed direction %d times: not an elevator", changes)
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	d := MustNew(testParams())
	reqs := scatteredBatch(d, 8)
	res, _ := d.ServeBatch(time.Unix(0, 0), reqs, FCFS)
	for i := 1; i < len(res); i++ {
		if res[i].Done.Before(res[i-1].Done) {
			t.Fatalf("FCFS completion order violated at %d", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "FCFS" || SSTF.String() != "SSTF" || SCAN.String() != "SCAN" {
		t.Fatal("policy names wrong")
	}
	if SchedPolicy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

// Property: regardless of policy, a batch serves every request exactly
// once with identical total bytes.
func TestSchedulerConservationProperty(t *testing.T) {
	for _, policy := range []SchedPolicy{FCFS, SSTF, SCAN} {
		f := func(offsets []int64) bool {
			if len(offsets) == 0 || len(offsets) > 64 {
				return true
			}
			d := MustNew(testParams())
			reqs := make([]Request, len(offsets))
			var wantBytes int64
			for i, raw := range offsets {
				off := raw % d.Params().Capacity
				if off < 0 {
					off += d.Params().Capacity
				}
				reqs[i] = Request{Offset: off, Length: 4096}
				wantBytes += 4096
			}
			res, _ := d.ServeBatch(time.Unix(0, 0), reqs, policy)
			if len(res) != len(reqs) {
				return false
			}
			s := d.Stats()
			return s.Ops() == int64(len(reqs)) && s.BytesRead == wantBytes
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}
