package vm

import (
	"io"
	"net"
	"time"

	"repro/internal/fsim"
)

// FileStream is the managed file handle the paper's benchmarks use: a
// fsim.File wrapped with runtime dispatch and JIT costs on every call.
// Like the File it wraps, a FileStream must not be shared across
// goroutines.
type FileStream struct {
	rt *Runtime
	f  fsim.File
}

// OpenFileStream opens name from store through the managed runtime. The
// returned duration covers the constructor's managed cost (including its
// first-call JIT) plus the store's open cost — exactly what the paper's
// "time taken for performing the read operation includes: (1) creating an
// instance of filestream class ..." measures.
func OpenFileStream(rt *Runtime, store fsim.Store, name string) (*FileStream, time.Duration, error) {
	managed := rt.Invoke(MethodFileStreamCtor)
	f, openDur, err := store.Open(name)
	if err != nil {
		return nil, managed + openDur, err
	}
	return &FileStream{rt: rt, f: f}, managed + openDur, nil
}

// CreateFileStream creates (or truncates) name with contents and opens it.
func CreateFileStream(rt *Runtime, store fsim.Store, name string, contents []byte) (*FileStream, time.Duration, error) {
	managed := rt.Invoke(MethodFileStreamCtor)
	createDur, err := store.Create(name, contents)
	if err != nil {
		return nil, managed + createDur, err
	}
	f, openDur, err := store.Open(name)
	if err != nil {
		return nil, managed + createDur + openDur, err
	}
	return &FileStream{rt: rt, f: f}, managed + createDur + openDur, nil
}

// Read fills p, charging managed dispatch plus the underlying I/O and a
// managed allocation for the buffer copy.
func (s *FileStream) Read(p []byte) (int, time.Duration, error) {
	managed := s.rt.Invoke(MethodFileStreamRead)
	n, dur, err := s.f.Read(p)
	managed += s.rt.Allocate(int64(n))
	return n, managed + dur, err
}

// Write stores p, charging managed dispatch plus the underlying I/O.
func (s *FileStream) Write(p []byte) (int, time.Duration, error) {
	managed := s.rt.Invoke(MethodFileStreamWrite)
	n, dur, err := s.f.Write(p)
	managed += s.rt.Allocate(int64(n))
	return n, managed + dur, err
}

// SeekTo repositions the stream.
func (s *FileStream) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	managed := s.rt.Invoke(MethodFileStreamSeek)
	pos, dur, err := s.f.SeekTo(offset, whence)
	return pos, managed + dur, err
}

// Close releases the stream.
func (s *FileStream) Close() (time.Duration, error) {
	managed := s.rt.Invoke(MethodFileStreamClose)
	dur, err := s.f.Close()
	return managed + dur, err
}

// Size returns the underlying file's size.
func (s *FileStream) Size() int64 { return s.f.Size() }

// Name returns the underlying file's name.
func (s *FileStream) Name() string { return s.f.Name() }

// ReadAll reads the whole remaining stream into memory, returning the
// data and the total charged duration — the doGet path of the paper's web
// server (read the requested file, send it back).
func (s *FileStream) ReadAll() ([]byte, time.Duration, error) {
	var total time.Duration
	var out []byte
	buf := make([]byte, 64<<10)
	for {
		n, dur, err := s.Read(buf)
		total += dur
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, total, nil
		}
		if err != nil {
			return out, total, err
		}
	}
}

// StreamWriter mirrors System.IO.StreamWriter: buffered text writes over a
// FileStream, used by the paper's doPost path ("the data is stored to the
// new file using streamwriter class").
type StreamWriter struct {
	rt     *Runtime
	stream *FileStream
}

// NewStreamWriter wraps stream, charging the constructor's managed cost.
func NewStreamWriter(rt *Runtime, stream *FileStream) (*StreamWriter, time.Duration) {
	managed := rt.Invoke(MethodStreamWriterCtor)
	return &StreamWriter{rt: rt, stream: stream}, managed
}

// WriteString writes s through the managed writer.
func (w *StreamWriter) WriteString(s string) (int, time.Duration, error) {
	managed := w.rt.Invoke(MethodStreamWriterWrite)
	n, dur, err := w.stream.Write([]byte(s))
	return n, managed + dur, err
}

// Close closes the underlying stream.
func (w *StreamWriter) Close() (time.Duration, error) {
	return w.stream.Close()
}

// NetworkStream wraps a net.Conn with managed dispatch costs — the
// paper's server creates one per accepted socket. Unlike FileStream, the
// I/O underneath is real network I/O on the host.
type NetworkStream struct {
	rt   *Runtime
	conn net.Conn
}

// NewNetworkStream wraps conn.
func NewNetworkStream(rt *Runtime, conn net.Conn) *NetworkStream {
	return &NetworkStream{rt: rt, conn: conn}
}

// Read fills p from the connection.
func (ns *NetworkStream) Read(p []byte) (int, error) {
	ns.rt.Invoke(MethodNetworkStreamRead)
	return ns.conn.Read(p)
}

// Write sends p on the connection.
func (ns *NetworkStream) Write(p []byte) (int, error) {
	ns.rt.Invoke(MethodNetworkStreamWrite)
	return ns.conn.Write(p)
}

// Close closes the connection.
func (ns *NetworkStream) Close() error { return ns.conn.Close() }
