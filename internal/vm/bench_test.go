package vm

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func BenchmarkInvokeWarm(b *testing.B) {
	rt := MustNew(DefaultConfig(), clock.NewVirtualClock(time.Unix(0, 0)))
	rt.Register("M", 100)
	rt.Invoke("M") // jit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Invoke("M")
	}
}

func BenchmarkInvokeColdJIT(b *testing.B) {
	rt := MustNew(DefaultConfig(), clock.NewVirtualClock(time.Unix(0, 0)))
	rt.Register("M", 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.ResetJIT()
		rt.Invoke("M")
	}
}

func BenchmarkAllocate(b *testing.B) {
	rt := MustNew(DefaultConfig(), clock.NewVirtualClock(time.Unix(0, 0)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Allocate(1024)
	}
}
