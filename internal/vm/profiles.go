package vm

import (
	"fmt"
	"time"
)

// Profile is a named managed-runtime cost calibration. The paper's future
// work proposes evaluating the benchmarks "on other virtual machines like
// java virtual machine" and comparing "different CLI-based virtual
// machines"; profiles make those comparisons a one-liner: run the same
// benchmark against each profile's Runtime.
//
// The calibrations encode the runtimes' qualitative differences of the
// paper's era, as relative weights rather than claims about absolute
// hardware numbers:
//
//   - SSCLI (Rotor): a non-optimizing reference JIT — heavy per-method
//     compile cost, slow managed dispatch, simple GC.
//   - Commercial CLR: an optimizing JIT — noticeably cheaper compiles and
//     dispatch than Rotor.
//   - JVM (HotSpot-style): starts methods in an interpreter, so the
//     first-call penalty is small, but early calls run slower until the
//     hot path compiles; modelled as a low base compile cost with a
//     higher dispatch overhead.
//   - Native AOT: everything precompiled; no first-call effect at all —
//     the baseline that isolates the managed-runtime contribution.
type Profile struct {
	Name        string
	Description string
	Config      Config
}

// ProfileSSCLI returns the Shared Source CLI (Rotor) calibration — the
// runtime the paper measured.
func ProfileSSCLI() Profile {
	return Profile{
		Name:        "SSCLI",
		Description: "Shared Source CLI (Rotor): non-optimizing JIT, slow dispatch",
		Config: Config{
			JITEnabled:       true,
			JITBaseCost:      time.Millisecond,
			JITCostPerILByte: 2 * time.Microsecond,
			CallOverhead:     200 * time.Nanosecond,
			GCEnabled:        true,
			GCTriggerBytes:   4 << 20,
			GCPause:          500 * time.Microsecond,
		},
	}
}

// ProfileCLR returns a commercial-CLR-grade calibration.
func ProfileCLR() Profile {
	return Profile{
		Name:        "CLR",
		Description: "commercial CLR: optimizing JIT, fast dispatch",
		Config: Config{
			JITEnabled:       true,
			JITBaseCost:      300 * time.Microsecond,
			JITCostPerILByte: 600 * time.Nanosecond,
			CallOverhead:     60 * time.Nanosecond,
			GCEnabled:        true,
			GCTriggerBytes:   16 << 20,
			GCPause:          300 * time.Microsecond,
		},
	}
}

// ProfileJVM returns a HotSpot-style calibration: interpret first (cheap
// first call), pay per-call overhead until compilation would kick in.
func ProfileJVM() Profile {
	return Profile{
		Name:        "JVM",
		Description: "HotSpot-style JVM: interpreted first call, tiered compilation",
		Config: Config{
			JITEnabled:       true,
			JITBaseCost:      80 * time.Microsecond,
			JITCostPerILByte: 150 * time.Nanosecond,
			CallOverhead:     120 * time.Nanosecond,
			GCEnabled:        true,
			GCTriggerBytes:   8 << 20,
			GCPause:          400 * time.Microsecond,
		},
	}
}

// ProfileNative returns the ahead-of-time baseline: no JIT, no GC pauses,
// negligible dispatch.
func ProfileNative() Profile {
	return Profile{
		Name:        "Native",
		Description: "AOT-compiled baseline: no JIT, no GC pauses",
		Config: Config{
			JITEnabled:   false,
			CallOverhead: 20 * time.Nanosecond,
			GCEnabled:    false,
		},
	}
}

// Profiles returns the built-in profiles in comparison order.
func Profiles() []Profile {
	return []Profile{ProfileSSCLI(), ProfileCLR(), ProfileJVM(), ProfileNative()}
}

// ProfileByName finds a built-in profile (case-sensitive).
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("vm: unknown profile %q", name)
}

// NewRuntime builds a Runtime for the profile with the BCL registered,
// ready for benchmarking.
func (p Profile) NewRuntime() (*Runtime, error) {
	rt, err := New(p.Config, nil)
	if err != nil {
		return nil, err
	}
	rt.RegisterBCL()
	return rt, nil
}
