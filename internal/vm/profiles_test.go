package vm

import (
	"testing"
)

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("got %d profiles, want 4", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Config.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", p.Name, err)
		}
		if p.Name == "" || p.Description == "" {
			t.Errorf("profile missing name/description: %+v", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("JVM")
	if err != nil || p.Name != "JVM" {
		t.Fatalf("ProfileByName(JVM) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("BEAM"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileNewRuntimeRegistersBCL(t *testing.T) {
	rt, err := ProfileSSCLI().NewRuntime()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Method(MethodFileStreamCtor) == nil {
		t.Fatal("BCL not registered")
	}
}

func TestProfileFirstCallOrdering(t *testing.T) {
	// First-call penalty ordering encodes the runtimes' character:
	// SSCLI ≫ CLR > JVM > Native.
	costs := map[string]int64{}
	for _, p := range Profiles() {
		rt, err := p.NewRuntime()
		if err != nil {
			t.Fatal(err)
		}
		costs[p.Name] = int64(rt.Invoke(MethodFileStreamCtor))
	}
	if !(costs["SSCLI"] > costs["CLR"] && costs["CLR"] > costs["JVM"] && costs["JVM"] > costs["Native"]) {
		t.Fatalf("first-call ordering wrong: %v", costs)
	}
	// The SSCLI-to-native gap must be large: the paper's whole Table 6
	// effect rides on it.
	if costs["SSCLI"] < 20*costs["Native"] {
		t.Fatalf("SSCLI first call %d not ≫ native %d", costs["SSCLI"], costs["Native"])
	}
}

func TestNativeProfileNoWarmup(t *testing.T) {
	rt, err := ProfileNative().NewRuntime()
	if err != nil {
		t.Fatal(err)
	}
	first := rt.Invoke("M")
	second := rt.Invoke("M")
	if first != second {
		t.Fatalf("native profile has a first-call effect: %v vs %v", first, second)
	}
	if rt.Allocate(1<<30) != 0 {
		t.Fatal("native profile charged a GC pause")
	}
}
