// Package vm emulates the aspects of the Common Language Infrastructure's
// virtual execution system that shape the paper's measurements. The
// authors ran on the Shared Source CLI (SSCLI/Rotor), whose two
// first-order performance effects on I/O code are:
//
//  1. Just-in-time compilation: a method's first invocation pays a compile
//     cost proportional to its IL size ("functions are compiled only when
//     they are required", §4.2) — the reason the web server's first request
//     is several times slower than later ones.
//  2. Managed wrappers: every call through FileStream/StreamWriter/
//     TcpListener-style classes pays a small dispatch overhead.
//
// Runtime models both with explicit cost parameters charged against a
// clock.Clock: a VirtualClock for deterministic simulation, or RealClock
// to inject genuine delays into live runs. An optional allocation-driven
// garbage-collection pause model rounds out the managed-runtime picture.
package vm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Config parameterizes the runtime cost model.
type Config struct {
	// JITEnabled charges first-invocation compile costs when true.
	JITEnabled bool
	// JITBaseCost is the fixed cost of compiling any method.
	JITBaseCost time.Duration
	// JITCostPerILByte scales compile cost with method size.
	JITCostPerILByte time.Duration
	// CallOverhead is the managed-dispatch cost charged on every Invoke.
	CallOverhead time.Duration
	// GCEnabled turns on the allocation-driven collection model.
	GCEnabled bool
	// GCTriggerBytes is how many allocated bytes trigger one collection.
	GCTriggerBytes int64
	// GCPause is the stop-the-world pause charged per collection.
	GCPause time.Duration
}

// DefaultConfig returns costs calibrated to SSCLI's interpreter-grade JIT:
// ~1 ms base compile plus 2 µs per IL byte, 200 ns managed dispatch, and a
// 0.5 ms collection every 4 MB of allocation.
func DefaultConfig() Config {
	return Config{
		JITEnabled:       true,
		JITBaseCost:      time.Millisecond,
		JITCostPerILByte: 2 * time.Microsecond,
		CallOverhead:     200 * time.Nanosecond,
		GCEnabled:        true,
		GCTriggerBytes:   4 << 20,
		GCPause:          500 * time.Microsecond,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.JITBaseCost < 0 || c.JITCostPerILByte < 0 || c.CallOverhead < 0 || c.GCPause < 0:
		return fmt.Errorf("vm: cost parameters must be non-negative")
	case c.GCEnabled && c.GCTriggerBytes <= 0:
		return fmt.Errorf("vm: GC trigger %d must be positive when GC is enabled", c.GCTriggerBytes)
	}
	return nil
}

// Method is one managed method known to the runtime.
type Method struct {
	Name    string
	ILSize  int // intermediate-language body size in bytes
	jitted  bool
	invokes int64
}

// Invokes returns how many times the method has been called.
func (m *Method) Invokes() int64 { return m.invokes }

// Jitted reports whether the method has been compiled.
func (m *Method) Jitted() bool { return m.jitted }

// Stats aggregates runtime activity.
type Stats struct {
	MethodsJitted int64
	JITTime       time.Duration
	Invokes       int64
	DispatchTime  time.Duration
	BytesAlloc    int64
	Collections   int64
	GCPauseTime   time.Duration
}

// Runtime is the emulated virtual execution system. It is safe for
// concurrent use; the paper's web server invokes it from many threads.
type Runtime struct {
	cfg Config
	clk clock.Clock

	mu        sync.Mutex
	methods   map[string]*Method
	sinceGC   int64
	stats     Stats
	defaultIL int
}

// New builds a runtime charging costs against clk. A nil clk gets a
// dedicated VirtualClock.
func New(cfg Config, clk clock.Clock) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.NewVirtualClock(time.Unix(0, 0))
	}
	return &Runtime{
		cfg:       cfg,
		clk:       clk,
		methods:   make(map[string]*Method),
		defaultIL: 256,
	}, nil
}

// MustNew panics on configuration error; for literal wiring.
func MustNew(cfg Config, clk clock.Clock) *Runtime {
	r, err := New(cfg, clk)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the runtime configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Clock returns the clock costs are charged against.
func (r *Runtime) Clock() clock.Clock { return r.clk }

// Register declares a method with a known IL size. Registering an already
// known method updates its size but keeps its JIT state.
func (r *Runtime) Register(name string, ilSize int) {
	if ilSize < 0 {
		ilSize = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.methods[name]; ok {
		m.ILSize = ilSize
		return
	}
	r.methods[name] = &Method{Name: name, ILSize: ilSize}
}

// Invoke calls the named method, charging JIT compilation on first call
// plus managed dispatch, and returns the total charged duration. Unknown
// methods are auto-registered with a default IL size — mirroring how the
// CLI lazily loads and compiles whatever the program touches.
func (r *Runtime) Invoke(name string) time.Duration {
	r.mu.Lock()
	m, ok := r.methods[name]
	if !ok {
		m = &Method{Name: name, ILSize: r.defaultIL}
		r.methods[name] = m
	}
	var cost time.Duration
	if r.cfg.JITEnabled && !m.jitted {
		jit := r.cfg.JITBaseCost + time.Duration(m.ILSize)*r.cfg.JITCostPerILByte
		m.jitted = true
		r.stats.MethodsJitted++
		r.stats.JITTime += jit
		cost += jit
	}
	m.invokes++
	r.stats.Invokes++
	r.stats.DispatchTime += r.cfg.CallOverhead
	cost += r.cfg.CallOverhead
	r.mu.Unlock()

	r.clk.Sleep(cost)
	return cost
}

// Allocate charges n bytes of managed allocation, possibly incurring a
// collection pause. It returns the charged duration (zero unless a
// collection ran).
func (r *Runtime) Allocate(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	r.mu.Lock()
	r.stats.BytesAlloc += n
	var cost time.Duration
	if r.cfg.GCEnabled {
		r.sinceGC += n
		for r.sinceGC >= r.cfg.GCTriggerBytes {
			r.sinceGC -= r.cfg.GCTriggerBytes
			r.stats.Collections++
			r.stats.GCPauseTime += r.cfg.GCPause
			cost += r.cfg.GCPause
		}
	}
	r.mu.Unlock()
	if cost > 0 {
		r.clk.Sleep(cost)
	}
	return cost
}

// Method returns the named method, or nil if never registered or invoked.
func (r *Runtime) Method(name string) *Method {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.methods[name]
}

// MethodNames returns the sorted names of all known methods.
func (r *Runtime) MethodNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.methods))
	for name := range r.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the runtime counters.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// ResetJIT discards all compiled code, returning the runtime to a cold
// state — the equivalent of restarting the process before a measurement.
func (r *Runtime) ResetJIT() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.methods {
		m.jitted = false
	}
}

// Well-known managed method names with IL sizes approximating the SSCLI
// base class library paths the paper's benchmarks exercise. The sizes are
// only relative weights: constructors and parsers are heavier than
// accessors.
const (
	MethodFileStreamCtor     = "System.IO.FileStream..ctor"
	MethodFileStreamRead     = "System.IO.FileStream.Read"
	MethodFileStreamWrite    = "System.IO.FileStream.Write"
	MethodFileStreamSeek     = "System.IO.FileStream.Seek"
	MethodFileStreamClose    = "System.IO.FileStream.Close"
	MethodStreamWriterCtor   = "System.IO.StreamWriter..ctor"
	MethodStreamWriterWrite  = "System.IO.StreamWriter.Write"
	MethodTcpListenerStart   = "System.Net.Sockets.TcpListener.Start"
	MethodAcceptSocket       = "System.Net.Sockets.TcpListener.AcceptSocket"
	MethodNetworkStreamRead  = "System.Net.Sockets.NetworkStream.Read"
	MethodNetworkStreamWrite = "System.Net.Sockets.NetworkStream.Write"
	MethodThreadStart        = "System.Threading.Thread.Start"
	MethodStringParse        = "System.String.Split"
)

// RegisterBCL registers the base-class-library methods above with their
// approximate IL weights. Call it once on a fresh runtime to make cold
// JIT costs realistic.
func (r *Runtime) RegisterBCL() {
	sizes := map[string]int{
		MethodFileStreamCtor:     1200,
		MethodFileStreamRead:     480,
		MethodFileStreamWrite:    520,
		MethodFileStreamSeek:     180,
		MethodFileStreamClose:    350,
		MethodStreamWriterCtor:   700,
		MethodStreamWriterWrite:  420,
		MethodTcpListenerStart:   650,
		MethodAcceptSocket:       540,
		MethodNetworkStreamRead:  460,
		MethodNetworkStreamWrite: 460,
		MethodThreadStart:        380,
		MethodStringParse:        300,
	}
	for name, il := range sizes {
		r.Register(name, il)
	}
}
