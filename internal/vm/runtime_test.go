package vm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	r, err := New(DefaultConfig(), clock.NewVirtualClock(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.JITBaseCost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative JIT base accepted")
	}
	bad = DefaultConfig()
	bad.GCEnabled = true
	bad.GCTriggerBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero GC trigger accepted with GC enabled")
	}
}

func TestFirstInvokePaysJIT(t *testing.T) {
	r := newRuntime(t)
	r.Register("M", 1000)
	first := r.Invoke("M")
	second := r.Invoke("M")
	if first <= second {
		t.Fatalf("first invoke %v not slower than second %v", first, second)
	}
	wantJIT := DefaultConfig().JITBaseCost + 1000*DefaultConfig().JITCostPerILByte
	if got := first - second; got != wantJIT {
		t.Fatalf("JIT cost = %v, want %v", got, wantJIT)
	}
}

func TestJITOnlyOnce(t *testing.T) {
	r := newRuntime(t)
	r.Register("M", 100)
	for i := 0; i < 10; i++ {
		r.Invoke("M")
	}
	s := r.Stats()
	if s.MethodsJitted != 1 {
		t.Fatalf("MethodsJitted = %d, want 1", s.MethodsJitted)
	}
	if s.Invokes != 10 {
		t.Fatalf("Invokes = %d, want 10", s.Invokes)
	}
	if got := r.Method("M").Invokes(); got != 10 {
		t.Fatalf("method invokes = %d, want 10", got)
	}
}

func TestJITDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JITEnabled = false
	r := MustNew(cfg, clock.NewVirtualClock(time.Unix(0, 0)))
	r.Register("M", 10000)
	first := r.Invoke("M")
	if first != cfg.CallOverhead {
		t.Fatalf("invoke with JIT off = %v, want bare dispatch %v", first, cfg.CallOverhead)
	}
}

func TestUnknownMethodAutoRegistered(t *testing.T) {
	r := newRuntime(t)
	dur := r.Invoke("Surprise.Method")
	if dur <= DefaultConfig().CallOverhead {
		t.Fatalf("auto-registered method paid no JIT: %v", dur)
	}
	if r.Method("Surprise.Method") == nil {
		t.Fatal("method not registered after invoke")
	}
}

func TestJITCostScalesWithILSize(t *testing.T) {
	r := newRuntime(t)
	r.Register("small", 10)
	r.Register("big", 10000)
	smallJIT := r.Invoke("small")
	bigJIT := r.Invoke("big")
	if bigJIT <= smallJIT {
		t.Fatalf("big method JIT %v not slower than small %v", bigJIT, smallJIT)
	}
}

func TestResetJITRestoresColdState(t *testing.T) {
	r := newRuntime(t)
	r.Register("M", 500)
	cold1 := r.Invoke("M")
	r.Invoke("M")
	r.ResetJIT()
	cold2 := r.Invoke("M")
	if cold1 != cold2 {
		t.Fatalf("post-reset invoke %v != original cold invoke %v", cold2, cold1)
	}
}

func TestInvokeAdvancesClock(t *testing.T) {
	clk := clock.NewVirtualClock(time.Unix(0, 0))
	r := MustNew(DefaultConfig(), clk)
	before := clk.Now()
	dur := r.Invoke("M")
	if got := clk.Now().Sub(before); got != dur {
		t.Fatalf("clock advanced %v, invoke charged %v", got, dur)
	}
}

func TestAllocateTriggersGC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCTriggerBytes = 1024
	cfg.GCPause = time.Millisecond
	r := MustNew(cfg, clock.NewVirtualClock(time.Unix(0, 0)))
	if pause := r.Allocate(512); pause != 0 {
		t.Fatalf("sub-threshold alloc paused %v", pause)
	}
	if pause := r.Allocate(512); pause != time.Millisecond {
		t.Fatalf("threshold alloc pause = %v, want 1ms", pause)
	}
	if got := r.Stats().Collections; got != 1 {
		t.Fatalf("Collections = %d, want 1", got)
	}
	// A huge allocation triggers multiple collections.
	if pause := r.Allocate(4096); pause != 4*time.Millisecond {
		t.Fatalf("4-trigger alloc pause = %v, want 4ms", pause)
	}
}

func TestAllocateGCDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCEnabled = false
	r := MustNew(cfg, clock.NewVirtualClock(time.Unix(0, 0)))
	if pause := r.Allocate(1 << 30); pause != 0 {
		t.Fatalf("GC-off alloc paused %v", pause)
	}
	if r.Stats().BytesAlloc != 1<<30 {
		t.Fatal("allocation not counted with GC off")
	}
}

func TestAllocateNonPositive(t *testing.T) {
	r := newRuntime(t)
	if r.Allocate(0) != 0 || r.Allocate(-5) != 0 {
		t.Fatal("non-positive allocations must be free")
	}
	if r.Stats().BytesAlloc != 0 {
		t.Fatal("non-positive allocations counted")
	}
}

func TestRegisterBCL(t *testing.T) {
	r := newRuntime(t)
	r.RegisterBCL()
	names := r.MethodNames()
	if len(names) < 10 {
		t.Fatalf("RegisterBCL registered %d methods", len(names))
	}
	m := r.Method(MethodFileStreamCtor)
	if m == nil || m.ILSize == 0 {
		t.Fatal("FileStream ctor not registered with a size")
	}
}

func TestRegisterKeepsJITStateOnResize(t *testing.T) {
	r := newRuntime(t)
	r.Register("M", 100)
	r.Invoke("M") // jit it
	r.Register("M", 200)
	if !r.Method("M").Jitted() {
		t.Fatal("re-register cleared JIT state")
	}
	if r.Method("M").ILSize != 200 {
		t.Fatal("re-register did not update size")
	}
}

func TestConcurrentInvokeSafe(t *testing.T) {
	r := newRuntime(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Invoke("Shared.Method")
				r.Allocate(100)
			}
		}()
	}
	wg.Wait()
	s := r.Stats()
	if s.Invokes != 800 {
		t.Fatalf("Invokes = %d, want 800", s.Invokes)
	}
	if s.MethodsJitted != 1 {
		t.Fatalf("MethodsJitted = %d, want 1 despite concurrency", s.MethodsJitted)
	}
}

func TestNilClockGetsVirtual(t *testing.T) {
	r, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clock() == nil {
		t.Fatal("nil clock not defaulted")
	}
	r.Invoke("M") // must not panic
}
