package vm

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fsim"
)

func streamFixture(t *testing.T) (*Runtime, *fsim.FileStore) {
	t.Helper()
	rt := MustNew(DefaultConfig(), clock.NewVirtualClock(time.Unix(0, 0)))
	rt.RegisterBCL()
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	return rt, store
}

func TestFileStreamReadRoundTrip(t *testing.T) {
	rt, store := streamFixture(t)
	want := []byte("managed bytes")
	if _, err := store.Create("f", want); err != nil {
		t.Fatal(err)
	}
	fs, openDur, err := OpenFileStream(rt, store, "f")
	if err != nil {
		t.Fatal(err)
	}
	if openDur <= 0 {
		t.Fatal("open must cost time")
	}
	got := make([]byte, len(want))
	n, _, err := fs.Read(got)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got[:n], want)
	}
	if _, err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenFileStreamMissing(t *testing.T) {
	rt, store := streamFixture(t)
	if _, _, err := OpenFileStream(rt, store, "nope"); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestFirstOpenPaysJITLaterOpensDoNot(t *testing.T) {
	rt, store := streamFixture(t)
	store.Create("a", []byte("x"))
	store.Create("b", []byte("y"))
	_, first, _ := OpenFileStream(rt, store, "a")
	_, second, _ := OpenFileStream(rt, store, "b")
	if first <= second {
		t.Fatalf("first managed open %v not slower than second %v", first, second)
	}
	if first-second < DefaultConfig().JITBaseCost {
		t.Fatalf("JIT gap %v below base compile cost", first-second)
	}
}

func TestCreateFileStream(t *testing.T) {
	rt, store := streamFixture(t)
	fs, _, err := CreateFileStream(rt, store, "new", []byte("contents"))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 8 || fs.Name() != "new" {
		t.Fatalf("Size=%d Name=%q", fs.Size(), fs.Name())
	}
	fs.Close()
	if !store.Exists("new") {
		t.Fatal("created file missing from store")
	}
}

func TestReadAll(t *testing.T) {
	rt, store := streamFixture(t)
	want := bytes.Repeat([]byte("abcdefgh"), 20000) // ~160 KB, multiple read buffers
	store.Create("big", want)
	fs, _, _ := OpenFileStream(rt, store, "big")
	defer fs.Close()
	got, dur, err := fs.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAll returned %d bytes, want %d", len(got), len(want))
	}
	if dur <= 0 {
		t.Fatal("ReadAll must cost time")
	}
}

func TestFileStreamWriteAndSeek(t *testing.T) {
	rt, store := streamFixture(t)
	store.Create("w", make([]byte, 16))
	fs, _, _ := OpenFileStream(rt, store, "w")
	defer fs.Close()
	if _, _, err := fs.SeekTo(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fs.SeekTo(4, io.SeekStart)
	got := make([]byte, 3)
	fs.Read(got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("read back %v", got)
	}
}

func TestStreamWriter(t *testing.T) {
	rt, store := streamFixture(t)
	fs, _, err := CreateFileStream(rt, store, "post-1234", nil)
	if err != nil {
		t.Fatal(err)
	}
	w, ctorDur := NewStreamWriter(rt, fs)
	if ctorDur <= 0 {
		t.Fatal("StreamWriter ctor must cost time")
	}
	n, dur, err := w.WriteString("posted data")
	if err != nil || n != 11 {
		t.Fatalf("WriteString n=%d err=%v", n, err)
	}
	if dur <= 0 {
		t.Fatal("WriteString must cost time")
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Verify contents via a fresh stream.
	fs2, _, _ := OpenFileStream(rt, store, "post-1234")
	got, _, _ := fs2.ReadAll()
	fs2.Close()
	if string(got) != "posted data" {
		t.Fatalf("contents = %q", got)
	}
}

func TestNetworkStream(t *testing.T) {
	rt, _ := streamFixture(t)
	client, server := net.Pipe()
	ns := NewNetworkStream(rt, server)
	go func() {
		client.Write([]byte("ping"))
		client.Close()
	}()
	buf := make([]byte, 4)
	n, err := ns.Read(buf)
	if err != nil || n != 4 || string(buf) != "ping" {
		t.Fatalf("Read n=%d err=%v buf=%q", n, err, buf)
	}
	ns.Close()
	// The managed read path must have gone through the runtime.
	if rt.Method(MethodNetworkStreamRead) == nil {
		t.Fatal("network read did not dispatch through runtime")
	}
}

func TestNetworkStreamWrite(t *testing.T) {
	rt, _ := streamFixture(t)
	client, server := net.Pipe()
	ns := NewNetworkStream(rt, server)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(client, buf)
		done <- buf
	}()
	if _, err := ns.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got := <-done; string(got) != "pong" {
		t.Fatalf("peer got %q", got)
	}
	ns.Close()
	client.Close()
}
