package tracegen

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{SampleFile: "", FileSize: 100},
		{SampleFile: "f", FileSize: 0},
		{SampleFile: "f", FileSize: 100, Requests: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestAllGeneratorsValidate(t *testing.T) {
	traces, err := All(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 5 {
		t.Fatalf("got %d traces, want 5", len(traces))
	}
	for name, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tr.Header.SampleFile != DefaultParams().SampleFile {
			t.Errorf("%s: sample file %q", name, tr.Header.SampleFile)
		}
		// Every trace opens before any read/write/seek, and closes last.
		if tr.Records[0].Op != trace.OpOpen {
			t.Errorf("%s: first op is %v, want open", name, tr.Records[0].Op)
		}
		if tr.Records[len(tr.Records)-1].Op != trace.OpClose {
			t.Errorf("%s: last op is %v, want close", name, tr.Records[len(tr.Records)-1].Op)
		}
	}
}

func TestOffsetsInBounds(t *testing.T) {
	p := DefaultParams()
	traces, err := All(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range traces {
		for i, r := range tr.Records {
			if r.Offset < 0 || r.Offset+r.Length > p.FileSize {
				t.Errorf("%s record %d: [%d, %d) outside file of %d bytes",
					name, i, r.Offset, r.Offset+r.Length, p.FileSize)
			}
		}
	}
}

func TestDmineReadSize(t *testing.T) {
	tr, err := Dmine(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, r := range tr.Records {
		if r.Op == trace.OpRead {
			reads++
			if r.Length != 131072 {
				t.Fatalf("Dmine read length %d, want 131072 (Table 1)", r.Length)
			}
		}
	}
	if reads == 0 {
		t.Fatal("no reads generated")
	}
}

func TestTitanAverageSize(t *testing.T) {
	tr, err := Titan(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var total, n int64
	for _, r := range tr.Records {
		if r.Op == trace.OpRead {
			total += r.Length
			n++
		}
	}
	avg := total / n
	if avg < 180000 || avg > 195000 {
		t.Fatalf("Titan average read size %d, want ≈187681 (Table 2)", avg)
	}
}

func TestLUSeekTargets(t *testing.T) {
	tr, err := LU(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var seeks []int64
	writes := 0
	for _, r := range tr.Records {
		switch r.Op {
		case trace.OpSeek:
			seeks = append(seeks, r.Offset)
		case trace.OpWrite:
			writes++
		}
	}
	if len(seeks) != len(LURequestSizes) {
		t.Fatalf("LU has %d seeks, want %d", len(seeks), len(LURequestSizes))
	}
	for i, want := range LURequestSizes {
		if seeks[i] != want {
			t.Fatalf("LU seek %d targets %d, want %d (Table 3)", i, seeks[i], want)
		}
	}
	if writes != len(LURequestSizes) {
		t.Fatalf("LU has %d writes, want %d", writes, len(LURequestSizes))
	}
}

func TestCholeskyReadSizes(t *testing.T) {
	tr, err := Cholesky(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for _, r := range tr.Records {
		if r.Op == trace.OpRead {
			sizes = append(sizes, r.Length)
		}
	}
	if len(sizes) != len(CholeskyRequestSizes) {
		t.Fatalf("Cholesky has %d reads, want %d", len(sizes), len(CholeskyRequestSizes))
	}
	for i, want := range CholeskyRequestSizes {
		if sizes[i] != want {
			t.Fatalf("Cholesky read %d size %d, want %d (Table 4)", i, sizes[i], want)
		}
	}
}

func TestPgrepMultiProcess(t *testing.T) {
	tr, err := Pgrep(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.NumProcesses != 4 {
		t.Fatalf("Pgrep processes = %d, want 4", tr.Header.NumProcesses)
	}
	pids := map[uint32]bool{}
	for _, r := range tr.Records {
		if r.Op == trace.OpRead {
			pids[r.PID] = true
		}
	}
	if len(pids) != 4 {
		t.Fatalf("Pgrep reads from %d pids, want 4", len(pids))
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, name := range AppNames {
		if _, err := Generate(name, DefaultParams()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Generate("NotAnApp", DefaultParams()); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range AppNames {
		a, _ := Generate(name, DefaultParams())
		b, _ := Generate(name, DefaultParams())
		var bufA, bufB bytes.Buffer
		if err := trace.Write(&bufA, a); err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(&bufB, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Errorf("%s: generator not deterministic", name)
		}
	}
}

func TestRequestsScaling(t *testing.T) {
	p := DefaultParams()
	p.Requests = 40
	tr, err := Dmine(p)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.Ops[trace.OpRead] > 50 {
		t.Fatalf("Requests=40 produced %d reads", s.Ops[trace.OpRead])
	}
}

func TestMixedWorkload(t *testing.T) {
	p := DefaultParams()
	tr, err := Mixed(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.NumProcesses != 5 {
		t.Fatalf("Mixed processes = %d, want 5", tr.Header.NumProcesses)
	}
	// One shared open/close pair.
	s := trace.ComputeStats(tr)
	if s.Ops[trace.OpOpen] != 1 || s.Ops[trace.OpClose] != 1 {
		t.Fatalf("open/close = %d/%d", s.Ops[trace.OpOpen], s.Ops[trace.OpClose])
	}
	// All five applications' data ops are present, tagged by PID.
	pids := map[uint32]int{}
	for _, r := range tr.Records {
		if r.Op == trace.OpRead || r.Op == trace.OpWrite || r.Op == trace.OpSeek {
			pids[r.PID]++
		}
	}
	if len(pids) != 5 {
		t.Fatalf("mixed trace has %d pids, want 5", len(pids))
	}
	// Record count conservation: merged data ops = sum of per-app data ops.
	total := 0
	for _, name := range AppNames {
		app, err := Generate(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range app.Records {
			if r.Op != trace.OpOpen && r.Op != trace.OpClose {
				total++
			}
		}
	}
	if got := len(tr.Records) - 2; got != total {
		t.Fatalf("mixed has %d data records, want %d", got, total)
	}
}

func TestMixedReplayable(t *testing.T) {
	p := DefaultParams()
	p.FileSize = 64 << 20
	p.Requests = 40
	tr, err := Mixed(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelPartitionedWorkers(t *testing.T) {
	p := DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 256
	p.Workers = 8
	tr, err := Parallel(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.NumProcesses != 8 {
		t.Fatalf("Parallel processes = %d, want 8", tr.Header.NumProcesses)
	}
	region := p.FileSize / 8
	opens := map[uint32]int{}
	writes := 0
	for _, r := range tr.Records {
		switch r.Op {
		case trace.OpOpen:
			opens[r.PID]++
		case trace.OpRead, trace.OpWrite:
			base := int64(r.PID) * region
			if r.Offset < base || r.Offset+r.Length > base+region {
				t.Fatalf("pid %d touches [%d,%d) outside its region [%d,%d)",
					r.PID, r.Offset, r.Offset+r.Length, base, base+region)
			}
			// The trailing quarter of each region stays untouched so one
			// worker's read-ahead cannot warm a neighbour's pages.
			if r.Offset+r.Length > base+region*3/4+(64<<10) {
				t.Fatalf("pid %d read at %d intrudes into the prefetch gap", r.PID, r.Offset)
			}
			if r.Op == trace.OpWrite {
				writes++
			}
		}
	}
	for pid := uint32(0); pid < 8; pid++ {
		if opens[pid] != 1 {
			t.Fatalf("pid %d has %d opens, want exactly 1 (no implicit opens)", pid, opens[pid])
		}
	}
	if writes == 0 {
		t.Fatal("Parallel generated no writes; write-back has nothing to do")
	}
	// Dispatchable and deterministic like the paper apps.
	a, err := Generate("Parallel", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("Parallel", p)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := trace.Write(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("Parallel generator not deterministic")
	}
}
