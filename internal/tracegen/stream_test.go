package tracegen

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestStreamMatchesGenerate is the streaming-emitter contract: Stream
// yields exactly the record sequence Generate materializes, for every
// application and the mix.
func TestStreamMatchesGenerate(t *testing.T) {
	apps := append(append([]string{}, AppNames...), "Parallel", "Mixed")
	p := DefaultParams()
	p.FileSize = 64 << 20
	p.Requests = 96
	for _, app := range apps {
		t.Run(app, func(t *testing.T) {
			want, err := Generate(app, p)
			if err != nil {
				t.Fatal(err)
			}
			var got []trace.Record
			h, err := Stream(app, p, func(r *trace.Record) error {
				got = append(got, *r)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want.Records) {
				t.Fatalf("streamed records diverge from Generate (%d vs %d records)", len(got), len(want.Records))
			}
			if h != want.Header {
				t.Fatalf("streamed header %+v, Generate header %+v", h, want.Header)
			}
		})
	}
}

// TestStreamToEncoder pins the out-of-core authoring path: Stream
// feeding trace.Encoder produces v2 bytes that decode back to the
// materialized trace.
func TestStreamToEncoder(t *testing.T) {
	p := DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 64
	p.Workers = 8
	want, err := Parallel(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc, err := trace.NewEncoder(&buf, trace.Header{
		NumProcesses: uint32(p.Workers), NumFiles: 1, SampleFile: p.SampleFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stream("Parallel", p, enc.Append); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Fatal("encoded stream decodes to different records")
	}
}

// TestStreamEmitError checks that an emit failure aborts generation and
// surfaces verbatim.
func TestStreamEmitError(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	_, err := Stream("Dmine", DefaultParams(), func(*trace.Record) error {
		n++
		if n == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n != 5 {
		t.Fatalf("generation continued after emit error (%d emits)", n)
	}
}
