// Package tracegen synthesizes I/O traces for the five applications of
// the paper's trace-driven benchmark (§3.1):
//
//	Dmine    — association rule mining over retail data [Mueller 95]
//	Pgrep    — parallel approximate text search (agrep derivative)
//	LU       — out-of-core dense LU decomposition
//	Titan    — parallel remote-sensing database
//	Cholesky — sparse Cholesky factorization
//
// The original University of Maryland trace files (CS-TR-3802) are not
// publicly archived. These generators reproduce each application's access
// pattern at the level the paper reports it: request sizes match the
// figures printed in Tables 1-4 exactly (e.g. LU's six 60-66 MB requests,
// Cholesky's sixteen 4 B-2.4 MB requests, Dmine's 131072-byte reads,
// Titan's 187681-byte average reads), and the op mix (synchronous reads,
// seek-then-write, open/close pairs) follows §3.4's description. All
// generators are deterministic.
//
// Every generator is written against a record sink, so traces stream:
// Stream emits records one at a time to a callback (the out-of-core
// authoring path — a billion-record trace never exists as a slice), and
// the named constructors (Dmine, Parallel, ...) collect the same record
// sequence into a *trace.Trace.
package tracegen

import (
	"errors"
	"fmt"
	"io"
	"iter"

	"repro/internal/trace"
)

// Params configures a generator.
type Params struct {
	// SampleFile is the file the trace's operations target (the paper
	// uses a single 1 GB data file).
	SampleFile string
	// FileSize bounds the offsets generated.
	FileSize int64
	// Requests scales the per-application request counts; zero means each
	// generator's default.
	Requests int
	// Workers is the process count for the Parallel generator; zero means
	// its default (4). The five paper applications ignore it — their
	// process structure is the traced one.
	Workers int
}

// DefaultParams returns the paper's setup: a 1 GB sample file.
func DefaultParams() Params {
	return Params{SampleFile: "sample-1gb.dat", FileSize: 1 << 30}
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	switch {
	case p.SampleFile == "":
		return fmt.Errorf("tracegen: empty sample file name")
	case p.FileSize <= 0:
		return fmt.Errorf("tracegen: file size %d must be positive", p.FileSize)
	case p.Requests < 0:
		return fmt.Errorf("tracegen: negative request count %d", p.Requests)
	case p.Workers < 0:
		return fmt.Errorf("tracegen: negative worker count %d", p.Workers)
	}
	return nil
}

// header builds a trace header for nproc processes and n records.
func header(p Params, nproc uint32, nrec int) trace.Header {
	return trace.Header{
		NumProcesses: nproc,
		NumFiles:     1,
		NumRecords:   uint32(nrec),
		SampleFile:   p.SampleFile,
	}
}

// clampOffset keeps offset+length inside the sample file.
func clampOffset(off, length, fileSize int64) int64 {
	if off+length > fileSize {
		off = fileSize - length
	}
	if off < 0 {
		off = 0
	}
	return off
}

// sink receives generated records one at a time. The emit error is
// sticky: after a failure the generator's remaining add calls are
// no-ops, so generators need no per-record error plumbing.
type sink struct {
	emit func(*trace.Record) error
	n    int64
	err  error
}

func (s *sink) add(r trace.Record) {
	if s.err != nil {
		return
	}
	if err := s.emit(&r); err != nil {
		s.err = err
		return
	}
	s.n++
}

// generator is one application's record producer: it pushes the full
// record sequence into s and returns the trace's process count.
type generator func(p Params, s *sink) (nproc uint32)

// generators dispatches by application name; Mixed is handled
// separately (it composes the other generators).
var generators = map[string]generator{
	"Dmine":    streamDmine,
	"Pgrep":    streamPgrep,
	"LU":       streamLU,
	"Titan":    streamTitan,
	"Cholesky": streamCholesky,
	"Parallel": streamParallel,
}

// collect materializes a generator's stream as a *trace.Trace.
func collect(p Params, gen generator) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var recs []trace.Record
	s := &sink{emit: func(r *trace.Record) error {
		recs = append(recs, *r)
		return nil
	}}
	nproc := gen(p, s)
	if s.err != nil {
		return nil, s.err
	}
	t := &trace.Trace{Header: header(p, nproc, len(recs)), Records: recs}
	return t, t.Validate()
}

// Stream generates app's trace record by record, calling emit for each
// record in trace order — nothing is materialized, so a multi-GB trace
// can be authored in constant memory (pair it with trace.Encoder to
// write v2 straight to disk). The returned header carries the emitted
// record count. A non-nil error from emit aborts generation and is
// returned verbatim.
func Stream(app string, p Params, emit func(*trace.Record) error) (trace.Header, error) {
	if err := p.Validate(); err != nil {
		return trace.Header{}, err
	}
	s := &sink{emit: emit}
	var nproc uint32
	if app == "Mixed" {
		nproc = streamMixed(p, s)
	} else {
		gen, ok := generators[app]
		if !ok {
			return trace.Header{}, fmt.Errorf("tracegen: unknown application %q (want one of %v)", app, AppNames)
		}
		nproc = gen(p, s)
	}
	if s.err != nil {
		return trace.Header{}, s.err
	}
	return header(p, nproc, int(s.n)), nil
}

// Dmine generates the data-mining trace: synchronous sequential reads of
// 131072 bytes (Table 1's data size) over the retail data, with a seek
// between association-rule passes. Default 400 reads in 4 passes.
func Dmine(p Params) (*trace.Trace, error) { return collect(p, streamDmine) }

func streamDmine(p Params, s *sink) uint32 {
	reads := p.Requests
	if reads == 0 {
		reads = 400
	}
	const readSize = 131072
	passes := 4
	perPass := (reads + passes - 1) / passes
	s.add(trace.Record{Op: trace.OpOpen, Count: 1})
	wall := int64(0)
	for pass := 0; pass < passes; pass++ {
		// Each mining pass rescans the data from the start.
		s.add(trace.Record{Op: trace.OpSeek, Count: 1, WallClock: wall})
		off := int64(0)
		for i := 0; i < perPass && s.n < int64(reads+passes+2); i++ {
			off = clampOffset(off, readSize, p.FileSize)
			s.add(trace.Record{
				Op: trace.OpRead, Count: 1, Field: uint32(pass),
				WallClock: wall, Offset: off, Length: readSize,
			})
			off += readSize
			wall += 1000
		}
	}
	s.add(trace.Record{Op: trace.OpClose, Count: 1, WallClock: wall})
	return 1
}

// Titan generates the remote-sensing database trace: synchronous reads
// whose sizes average Table 2's 187681 bytes, following the spatial-query
// pattern of scanning consecutive tiles with occasional jumps between
// spatial regions. Default 300 reads.
func Titan(p Params) (*trace.Trace, error) { return collect(p, streamTitan) }

func streamTitan(p Params, s *sink) uint32 {
	reads := p.Requests
	if reads == 0 {
		reads = 300
	}
	// Tile sizes cycle around the mean 187681 so the average matches.
	sizes := []int64{187681 - 20000, 187681, 187681 + 20000}
	s.add(trace.Record{Op: trace.OpOpen, Count: 1})
	off := int64(0)
	wall := int64(0)
	for i := 0; i < reads; i++ {
		if i%25 == 24 {
			// Jump to the next spatial region.
			off = (off + p.FileSize/7) % p.FileSize
		}
		size := sizes[i%len(sizes)]
		off = clampOffset(off, size, p.FileSize)
		s.add(trace.Record{
			Op: trace.OpRead, Count: 1,
			WallClock: wall, Offset: off, Length: size,
		})
		off += size
		wall += 1500
	}
	s.add(trace.Record{Op: trace.OpClose, Count: 1, WallClock: wall})
	return 1
}

// LURequestSizes are Table 3's six out-of-core panel sizes; the paper
// reports the seek time to each (the "data size" column is the seek
// target offset).
var LURequestSizes = []int64{66617088, 66092544, 64518912, 63994368, 62945280, 60322560}

// LU generates the out-of-core LU decomposition trace: for each panel,
// a seek from the beginning of the file to the panel offset followed by a
// synchronous write of the factored panel (§3.4 records LU's seek and
// write times). Requests is ignored: the panel set is Table 3's.
func LU(p Params) (*trace.Trace, error) { return collect(p, streamLU) }

func streamLU(p Params, s *sink) uint32 {
	s.add(trace.Record{Op: trace.OpOpen, Count: 1})
	wall := int64(0)
	for i, target := range LURequestSizes {
		off := clampOffset(target, 0, p.FileSize)
		s.add(trace.Record{
			Op: trace.OpSeek, Count: 1, Field: uint32(i),
			WallClock: wall, Offset: off,
		})
		// The panel write lands at the seek target; panel width shrinks
		// as elimination proceeds.
		writeSize := int64(1 << 20)
		writeOff := clampOffset(off, writeSize, p.FileSize)
		s.add(trace.Record{
			Op: trace.OpWrite, Count: 1, Field: uint32(i),
			WallClock: wall + 10, Offset: writeOff, Length: writeSize,
		})
		wall += 5000
	}
	s.add(trace.Record{Op: trace.OpClose, Count: 1, WallClock: wall})
	return 1
}

// CholeskyRequestSizes are Table 4's sixteen read sizes.
var CholeskyRequestSizes = []int64{
	4, 28044, 28048, 133692, 136108, 143452, 132128, 149052,
	144642, 84140, 217832, 624548, 916884, 1592356, 2018308, 2446612,
}

// Cholesky generates the sparse Cholesky factorization trace: sixteen
// seek+read pairs with Table 4's exact sizes. Supernode reads mostly walk
// forward through the factor file (prefetch-friendly), but a few reads
// jump back to earlier columns — the requests whose latencies spike in
// Table 4. Requests is ignored: the request set is Table 4's.
func Cholesky(p Params) (*trace.Trace, error) { return collect(p, streamCholesky) }

func streamCholesky(p Params, s *sink) uint32 {
	s.add(trace.Record{Op: trace.OpOpen, Count: 1})
	wall := int64(0)
	frontier := int64(0)
	// Requests that visit a distant, never-touched column block: cold
	// pages, the latency spikes of Table 4. Each jump gets its own far
	// region so no jump warms another.
	coldJump := map[int]bool{2: true, 4: true, 5: true, 6: true, 7: true}
	// Request 9 re-reads the start of the factor file, which requests
	// 0/1/3 have already pulled through the cache: a larger-but-warm read
	// that completes faster than the smaller cold request 2 — the paper's
	// "reading 28048 bytes takes more time than reading 133692 bytes"
	// inversion.
	const warmReread = 9
	for i, size := range CholeskyRequestSizes {
		var readOff int64
		switch {
		case coldJump[i]:
			readOff = p.FileSize/2 + int64(i)*(8<<20)
		case i == warmReread:
			readOff = 0
		default:
			readOff = frontier
		}
		readOff = clampOffset(readOff, size, p.FileSize)
		s.add(trace.Record{
			Op: trace.OpSeek, Count: 1, Field: uint32(i),
			WallClock: wall, Offset: readOff,
		})
		s.add(trace.Record{
			Op: trace.OpRead, Count: 1, Field: uint32(i),
			WallClock: wall + 10, Offset: readOff, Length: size,
		})
		if !coldJump[i] && i != warmReread {
			frontier = readOff + size
		}
		wall += 3000
	}
	s.add(trace.Record{Op: trace.OpClose, Count: 1, WallClock: wall})
	return 1
}

// Pgrep generates the parallel text search trace: NumProcesses=4 workers
// each scanning its own quarter of the file with sequential 64 KB reads —
// the partitioned-scan pattern of the parallel agrep port. Default 512
// reads total.
func Pgrep(p Params) (*trace.Trace, error) { return collect(p, streamPgrep) }

func streamPgrep(p Params, s *sink) uint32 {
	reads := p.Requests
	if reads == 0 {
		reads = 512
	}
	const nproc = 4
	const readSize = 64 << 10
	perProc := reads / nproc
	s.add(trace.Record{Op: trace.OpOpen, Count: 1})
	wall := int64(0)
	// Interleave the four workers' scans, as a shared-trace capture would.
	for i := 0; i < perProc; i++ {
		for pid := 0; pid < nproc; pid++ {
			base := int64(pid) * (p.FileSize / nproc)
			off := clampOffset(base+int64(i)*readSize, readSize, p.FileSize)
			s.add(trace.Record{
				Op: trace.OpRead, Count: 1, PID: uint32(pid),
				WallClock: wall, Offset: off, Length: readSize,
			})
			wall += 400
		}
	}
	s.add(trace.Record{Op: trace.OpClose, Count: 1, WallClock: wall})
	return nproc
}

// Parallel generates an n-worker partitioned workload (n = Params.
// Workers, default 4): each process opens the sample file, scans its own
// disjoint region with sequential 64 KB reads, rewrites every eighth
// block page-aligned in place, and closes. It is the shard/worker
// scaling subject: per-worker work is identical and regions never
// overlap, so a simulated-parallel replay is deterministic — each
// worker's timing is a pure function of its own record sequence. Only
// the leading three quarters of each region are touched; the trailing
// gap keeps one worker's read-ahead from warming its neighbour's pages.
// Requests is the total read count across workers (default 256).
func Parallel(p Params) (*trace.Trace, error) { return collect(p, streamParallel) }

func streamParallel(p Params, s *sink) uint32 {
	nproc := p.Workers
	if nproc == 0 {
		nproc = 4
	}
	reads := p.Requests
	if reads == 0 {
		reads = 256
	}
	perProc := reads / nproc
	if perProc < 1 {
		perProc = 1
	}
	const readSize = 64 << 10
	region := p.FileSize / int64(nproc)
	scan := region * 3 / 4
	scan -= scan % readSize
	if scan < readSize {
		scan = readSize
	}
	wall := int64(0)
	for pid := 0; pid < nproc; pid++ {
		base := int64(pid) * region
		s.add(trace.Record{Op: trace.OpOpen, Count: 1, PID: uint32(pid), WallClock: wall})
		for i := 0; i < perProc; i++ {
			off := clampOffset(base+(int64(i)*readSize)%scan, readSize, p.FileSize)
			s.add(trace.Record{
				Op: trace.OpRead, Count: 1, PID: uint32(pid),
				WallClock: wall, Offset: off, Length: readSize,
			})
			wall += 500
			if i%8 == 7 {
				woff := clampOffset(base+(int64(i-7)*readSize)%scan, readSize, p.FileSize)
				s.add(trace.Record{
					Op: trace.OpWrite, Count: 1, PID: uint32(pid),
					WallClock: wall, Offset: woff, Length: readSize,
				})
				wall += 500
			}
		}
		s.add(trace.Record{Op: trace.OpClose, Count: 1, PID: uint32(pid), WallClock: wall})
	}
	return uint32(nproc)
}

// errStopSeq aborts a generator whose pull-side consumer stopped early.
var errStopSeq = errors.New("tracegen: sequence stopped")

// Mixed interleaves all five applications' traces into one multi-process
// trace (one PID per application) — the consolidated-server workload used
// for cache-contention studies. Records are merged round-robin by
// application, preserving each application's internal order; the single
// shared open/close bracket the whole mix.
func Mixed(p Params) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var recs []trace.Record
	s := &sink{emit: func(r *trace.Record) error {
		recs = append(recs, *r)
		return nil
	}}
	nproc := streamMixed(p, s)
	if s.err != nil {
		return nil, s.err
	}
	t := &trace.Trace{Header: header(p, nproc, len(recs)), Records: recs}
	return t, t.Validate()
}

// streamMixed merges the five applications by pulling one data record
// per application per round (iter.Pull over each generator's stream), so
// the merge holds one in-flight record per application instead of five
// materialized traces. Per-app open/close records are dropped; the mix
// is bracketed by a single shared open/close pair.
func streamMixed(p Params, s *sink) uint32 {
	pulls := make([]func() (trace.Record, bool), len(AppNames))
	stops := make([]func(), len(AppNames))
	genErrs := make([]error, len(AppNames))
	for i, name := range AppNames {
		gen := generators[name]
		idx := i
		seq := func(yield func(trace.Record) bool) {
			inner := &sink{emit: func(r *trace.Record) error {
				if r.Op == trace.OpOpen || r.Op == trace.OpClose {
					return nil // per-app brackets are dropped from the mix
				}
				if !yield(*r) {
					return errStopSeq
				}
				return nil
			}}
			gen(p, inner)
			if inner.err != nil && inner.err != errStopSeq {
				genErrs[idx] = inner.err
			}
		}
		pulls[i], stops[i] = iter.Pull(seq)
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	s.add(trace.Record{Op: trace.OpOpen, Count: 1})
	live := make([]bool, len(pulls))
	for i := range live {
		live[i] = true
	}
	for {
		advanced := false
		for app := range pulls {
			if !live[app] {
				continue
			}
			rec, ok := pulls[app]()
			if !ok {
				live[app] = false
				continue
			}
			rec.PID = uint32(app)
			s.add(rec)
			advanced = true
		}
		if !advanced {
			break
		}
	}
	for _, err := range genErrs {
		if err != nil && s.err == nil {
			s.err = err
		}
	}
	s.add(trace.Record{Op: trace.OpClose, Count: 1})
	return uint32(len(AppNames))
}

// AppNames lists the five applications in the paper's order.
var AppNames = []string{"Dmine", "Pgrep", "LU", "Titan", "Cholesky"}

// Processes returns the process count app's trace will declare, without
// generating it — the v2 streaming header is written before any record
// exists.
func Processes(app string, p Params) (uint32, error) {
	switch app {
	case "Pgrep":
		return 4, nil
	case "Parallel":
		if p.Workers == 0 {
			return 4, nil
		}
		return uint32(p.Workers), nil
	case "Mixed":
		return uint32(len(AppNames)), nil
	}
	if _, ok := generators[app]; !ok {
		return 0, fmt.Errorf("tracegen: unknown application %q (want one of %v)", app, AppNames)
	}
	return 1, nil
}

// EncodeV2 streams app's trace to w in the v2 columnar format — the
// record sequence flows generator → encoder → w without ever existing
// as a slice, so multi-GB fixtures author in constant memory. It
// returns the trace's final header and the encoded record count.
func EncodeV2(w io.Writer, app string, p Params) (trace.Header, error) {
	if err := p.Validate(); err != nil {
		return trace.Header{}, err
	}
	nproc, err := Processes(app, p)
	if err != nil {
		return trace.Header{}, err
	}
	enc, err := trace.NewEncoder(w, trace.Header{
		NumProcesses: nproc,
		NumFiles:     1,
		SampleFile:   p.SampleFile,
	})
	if err != nil {
		return trace.Header{}, err
	}
	h, err := Stream(app, p, enc.Append)
	if err != nil {
		return trace.Header{}, err
	}
	if err := enc.Close(); err != nil {
		return trace.Header{}, err
	}
	if h.NumProcesses != nproc {
		return trace.Header{}, fmt.Errorf("tracegen: %s declared %d processes, generated %d", app, nproc, h.NumProcesses)
	}
	return h, nil
}

// Generate dispatches by application name (case-sensitive, as in
// AppNames).
func Generate(app string, p Params) (*trace.Trace, error) {
	if app == "Mixed" {
		return Mixed(p)
	}
	gen, ok := generators[app]
	if !ok {
		return nil, fmt.Errorf("tracegen: unknown application %q (want one of %v)", app, AppNames)
	}
	return collect(p, gen)
}

// All generates every application's trace with the same parameters.
func All(p Params) (map[string]*trace.Trace, error) {
	out := make(map[string]*trace.Trace, len(AppNames))
	for _, name := range AppNames {
		t, err := Generate(name, p)
		if err != nil {
			return nil, fmt.Errorf("tracegen: generating %s: %w", name, err)
		}
		out[name] = t
	}
	return out, nil
}
