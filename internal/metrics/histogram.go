package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-scale latency histogram. Buckets are powers of the
// growth factor starting at min; observations below min land in bucket 0
// and observations at or above the last boundary land in the overflow
// bucket. It is tuned for the microsecond-to-second latency spans the
// trace replays produce.
type Histogram struct {
	min    float64 // lower bound of bucket 1, in ms
	growth float64 // bucket boundary ratio, > 1
	counts []int64
	total  int64
}

// NewHistogram returns a histogram with nbuckets buckets, the first
// boundary at min milliseconds, and geometric bucket growth. NewHistogram
// panics if the parameters cannot form a valid histogram; construction
// parameters are programmer input, not data.
func NewHistogram(min, growth float64, nbuckets int) *Histogram {
	if min <= 0 || growth <= 1 || nbuckets < 2 {
		panic(fmt.Sprintf("metrics: invalid histogram (min=%v growth=%v nbuckets=%d)", min, growth, nbuckets))
	}
	return &Histogram{min: min, growth: growth, counts: make([]int64, nbuckets)}
}

// NewLatencyHistogram returns the default histogram used across the suite:
// 48 buckets from 100 ns (1e-4 ms) growing by ×2, spanning up to hours.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1e-4, 2, 48)
}

// bucketFor maps a millisecond value to a bucket index.
func (h *Histogram) bucketFor(ms float64) int {
	if ms < h.min {
		return 0
	}
	idx := 1 + int(math.Floor(math.Log(ms/h.min)/math.Log(h.growth)))
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// Boundary returns the lower boundary (in ms) of bucket i; bucket 0 has
// boundary 0.
func (h *Histogram) Boundary(i int) float64 {
	if i <= 0 {
		return 0
	}
	return h.min * math.Pow(h.growth, float64(i-1))
}

// Add records a latency in milliseconds.
func (h *Histogram) Add(ms float64) {
	h.counts[h.bucketFor(ms)]++
	h.total++
}

// AddDuration records a duration.
func (h *Histogram) AddDuration(d time.Duration) {
	h.Add(float64(d) / float64(time.Millisecond))
}

// Merge folds other's observations into h. The histograms must share a
// shape (min, growth, bucket count); shapes are programmer input, so a
// mismatch panics like an invalid construction would.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.min != other.min || h.growth != other.growth || len(h.counts) != len(other.counts) {
		panic(fmt.Sprintf("metrics: merging histograms of different shapes (min %v/%v growth %v/%v buckets %d/%d)",
			h.min, other.min, h.growth, other.growth, len(h.counts), len(other.counts)))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the population of bucket i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile estimates the q-quantile by assuming observations are uniform
// within a bucket. Exactness is not needed here — reports that print exact
// per-request numbers use Sample instead.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := h.Boundary(i)
			hi := h.Boundary(i + 1)
			if i == len(h.counts)-1 || hi == 0 {
				return lo
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.Boundary(len(h.counts))
}

// Render draws the histogram as ASCII art, one row per non-empty bucket.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bar := int(float64(c) / float64(max) * float64(width))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%12s ms |%-*s| %d\n",
			trimFloat(h.Boundary(i)), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}
