package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatalf("empty summary must be all zeros: %s", s.String())
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(2500 * time.Microsecond)
	if !almostEqual(s.Mean(), 2.5, 1e-12) {
		t.Fatalf("AddDuration mean = %v ms, want 2.5", s.Mean())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var sa, sb, all Summary
		for _, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // avoid catastrophic cancellation; not what Merge is for
			}
			sa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
			sb.Add(x)
			all.Add(x)
		}
		sa.Merge(&sb)
		if sa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almostEqual(sa.Mean(), all.Mean(), 1e-6*scale) &&
			sa.Min() == all.Min() && sa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge with empty changed summary: %s", a.String())
	}
	var c Summary
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatalf("merge into empty failed: %s", c.String())
	}
}

func TestSampleQuantiles(t *testing.T) {
	var p Sample
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	if got := p.Median(); !almostEqual(got, 50.5, 1e-9) {
		t.Fatalf("Median = %v, want 50.5", got)
	}
	if got := p.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v, want 1", got)
	}
	if got := p.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v, want 100", got)
	}
	if got := p.Quantile(0.99); got < 99 || got > 100 {
		t.Fatalf("Q99 = %v, want in [99,100]", got)
	}
}

func TestSampleEmptyQuantile(t *testing.T) {
	var p Sample
	if p.Quantile(0.5) != 0 || p.Mean() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSampleQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var p Sample
	for i := 0; i < 500; i++ {
		p.Add(rng.ExpFloat64())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := p.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Add(1.0) // all in the same bucket
	}
	if h.Total() != 1000 {
		t.Fatalf("Total = %d, want 1000", h.Total())
	}
	q := h.Quantile(0.5)
	// 1.0 ms should be bracketed by its bucket boundaries.
	if q <= 0 || q > 2.0 {
		t.Fatalf("Quantile(0.5) = %v, want within (0, 2]", q)
	}
}

func TestHistogramBoundaryMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	prev := -1.0
	for i := 0; i < h.Buckets(); i++ {
		b := h.Boundary(i)
		if b < prev {
			t.Fatalf("boundary %d = %v < previous %v", i, b, prev)
		}
		prev = b
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Add(0.0001) // underflow -> bucket 0
	h.Add(1e9)    // overflow -> last bucket
	if h.Count(0) != 1 {
		t.Fatalf("underflow bucket = %d, want 1", h.Count(0))
	}
	if h.Count(h.Buckets()-1) != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h.Count(h.Buckets()-1))
	}
}

func TestHistogramInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with growth<=1 must panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestHistogramRenderNonEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(0.5)
	h.Add(0.5)
	h.Add(4)
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("render missing bars:\n%s", out)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := NewTable("Table 1. Results", "Appl. name", "Data size (Bytes)", "Read time (ms)")
	tb.AddRow("Data Mining", 131072, 0.0025)
	tb.AddRow("Tiny", 4, 7.88e-5)
	out := tb.Render()
	for _, want := range []string{"Table 1. Results", "Data Mining", "131072", "0.0025", "7.88E-05"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "Data Mining,131072,0.0025") {
		t.Errorf("csv missing row: %s", csv)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
	if tb.Cell(1, 2) != "7.88E-05" {
		t.Errorf("Cell(1,2) = %q", tb.Cell(1, 2))
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("only")
	if tb.Cell(0, 1) != "" || tb.Cell(0, 2) != "" {
		t.Fatal("short row must be padded with empty cells")
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow(`comma, and "quote"`, 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"comma, and ""quote"""`) {
		t.Fatalf("csv quoting wrong: %s", csv)
	}
}

func TestFigureBars(t *testing.T) {
	fig := NewFigure("Figure 2", "component", "Execution Time (Sec.)")
	fig.Add(NewSeries("CPU", []string{"Application", "Program1", "Program2"}, []float64{100, 80, 20}))
	fig.Add(NewSeries("IO", []string{"Application", "Program1", "Program2"}, []float64{70, 20, 50}))
	out := fig.RenderBars(30)
	for _, want := range []string{"Figure 2", "Application", "CPU", "IO", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("bars missing %q:\n%s", want, out)
		}
	}
}

func TestFigureLines(t *testing.T) {
	fig := NewFigure("Figure 4", "Number of Disks", "Speedup")
	fig.Add(NewSeries("speedup", []string{"2", "4", "8", "16", "32"}, []float64{1.0, 1.05, 1.1, 1.15, 1.2}))
	out := fig.RenderLines(40, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "Figure 4") {
		t.Fatalf("lines render wrong:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := NewFigure("f", "x", "y")
	fig.Add(NewSeries("s1", []string{"2", "4"}, []float64{1, 2}))
	fig.Add(NewSeries("s2", []string{"2", "4"}, []float64{3, 4}))
	csv := fig.CSV()
	if !strings.Contains(csv, "x,s1,s2") || !strings.Contains(csv, "2,1,3") {
		t.Fatalf("figure csv wrong: %s", csv)
	}
}

func TestSeriesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeries length mismatch must panic")
		}
	}()
	NewSeries("bad", []string{"a"}, []float64{1, 2})
}

func TestFigureEmpty(t *testing.T) {
	fig := NewFigure("empty", "x", "y")
	if out := fig.RenderBars(20); !strings.Contains(out, "no data") {
		t.Fatalf("empty bars: %s", out)
	}
	if out := fig.RenderLines(20, 6); !strings.Contains(out, "no data") {
		t.Fatalf("empty lines: %s", out)
	}
}

func TestSampleCDF(t *testing.T) {
	var p Sample
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	cdf := p.CDF(5)
	if len(cdf.Values) != 5 {
		t.Fatalf("CDF has %d points", len(cdf.Values))
	}
	if cdf.Labels[0] != "p0" || cdf.Labels[4] != "p100" {
		t.Fatalf("labels = %v", cdf.Labels)
	}
	if cdf.Values[0] != 1 || cdf.Values[4] != 100 {
		t.Fatalf("endpoints = %v, %v", cdf.Values[0], cdf.Values[4])
	}
	for i := 1; i < len(cdf.Values); i++ {
		if cdf.Values[i] < cdf.Values[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	// Degenerate point counts are clamped.
	if got := p.CDF(1); len(got.Values) != 2 {
		t.Fatalf("CDF(1) has %d points, want clamped 2", len(got.Values))
	}
}
