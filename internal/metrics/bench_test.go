package metrics

import "testing"

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkSampleQuantile(b *testing.B) {
	var p Sample
	for i := 0; i < 10000; i++ {
		p.Add(float64(i * 2654435761 % 100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Quantile(0.99)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewLatencyHistogram()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%1000) / 100)
	}
}

func BenchmarkTableRender(b *testing.B) {
	tb := NewTable("bench", "a", "b", "c")
	for i := 0; i < 100; i++ {
		tb.AddRow(i, float64(i)*1.5, "cell")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Render()
	}
}
