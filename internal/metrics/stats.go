// Package metrics provides the measurement and reporting substrate for the
// benchmark suite: online summary statistics, latency histograms, and the
// table/figure renderers that regenerate the paper's Tables 1-6 and
// Figures 2-6 as text.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates online count/mean/variance/min/max for a stream of
// float64 observations using Welford's algorithm. The zero value is ready
// to use. Summary is not safe for concurrent use; wrap it or shard it.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddDuration folds a duration, recorded in milliseconds, into the summary.
// Milliseconds are the paper's reporting unit throughout.
func (s *Summary) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Var returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Sum returns mean*n, the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Merge folds other into s so that s summarizes both streams. Merging uses
// the parallel-variance formula and is exact up to floating-point error.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	min, max := s.min, s.max
	if other.min < min {
		min = other.min
	}
	if other.max > max {
		max = other.max
	}
	*s = Summary{n: n, mean: mean, m2: m2, min: min, max: max}
}

// String renders the summary compactly for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.Stddev(), s.Min(), s.Max())
}

// Sample retains every observation so that exact quantiles can be computed.
// Use Summary when only moments are needed; Sample when the report prints
// percentiles or per-request rows (the paper's Tables 3, 4, 6 list every
// request individually).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (p *Sample) Add(x float64) {
	p.xs = append(p.xs, x)
	p.sorted = false
}

// AddDuration appends a duration in milliseconds.
func (p *Sample) AddDuration(d time.Duration) {
	p.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (p *Sample) N() int { return len(p.xs) }

// Values returns the observations in insertion order. The returned slice
// aliases internal storage; callers must not mutate it.
func (p *Sample) Values() []float64 {
	if p.sorted {
		// Sorting reordered the backing array; insertion order is gone,
		// but callers that interleave Quantile and Values accept sorted
		// order. Document rather than copy: hot path.
		return p.xs
	}
	return p.xs
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 for an empty sample.
func (p *Sample) Quantile(q float64) float64 {
	if len(p.xs) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 1 {
		return p.xs[len(p.xs)-1]
	}
	pos := q * float64(len(p.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return p.xs[lo]
	}
	frac := pos - float64(lo)
	return p.xs[lo]*(1-frac) + p.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (p *Sample) Median() float64 { return p.Quantile(0.5) }

// Mean returns the arithmetic mean of the sample.
func (p *Sample) Mean() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range p.xs {
		sum += x
	}
	return sum / float64(len(p.xs))
}

// CDF returns the sample's empirical distribution as a Series of nPoints
// evenly spaced quantiles (labelled p0, p5, ... for nPoints=21), ready
// for Figure rendering — the latency-distribution view load tests print.
func (p *Sample) CDF(nPoints int) Series {
	if nPoints < 2 {
		nPoints = 2
	}
	labels := make([]string, nPoints)
	values := make([]float64, nPoints)
	for i := 0; i < nPoints; i++ {
		q := float64(i) / float64(nPoints-1)
		labels[i] = fmt.Sprintf("p%d", int(q*100))
		values[i] = p.Quantile(q)
	}
	return NewSeries("cdf", labels, values)
}
