package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables in the style of the paper's Tables 1-6
// and exports the same rows as CSV. Columns are fixed at construction;
// rows are formatted values.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// AddRow appends a row. Each cell is rendered with %v; float64 cells use
// the paper's compact scientific style via FormatCell. Rows shorter than
// the header are padded with empty cells; longer rows are an error in the
// caller and are truncated.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = FormatCell(cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col); empty string out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.headers) {
		return ""
	}
	return t.rows[row][col]
}

// FormatCell renders one cell. Floats smaller than 1e-3 (but nonzero) are
// printed in scientific notation, matching how the paper prints
// sub-microsecond latencies (e.g. 7.88E-05).
func FormatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(f float64) string {
	if f != 0 && f < 1e-3 && f > -1e-3 {
		return fmt.Sprintf("%.2E", f)
	}
	return fmt.Sprintf("%.4g", f)
}

// Render returns the table as aligned text with a rule under the header.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
