package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series of (label, value) points, the unit the
// figure renderers consume. Figures 2-6 of the paper are bar or line
// charts; we regenerate them as ASCII charts plus the raw series values so
// EXPERIMENTS.md can record paper-vs-measured numbers.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// NewSeries builds a series from parallel label/value slices. It panics on
// length mismatch — series construction is programmer input.
func NewSeries(name string, labels []string, values []float64) Series {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("metrics: series %q has %d labels but %d values", name, len(labels), len(values)))
	}
	return Series{Name: name, Labels: labels, Values: values}
}

// Figure is a named collection of series plus axis titles.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series to the figure.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// maxValue returns the largest value across all series (0 if none).
func (f *Figure) maxValue() float64 {
	max := 0.0
	for _, s := range f.Series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// RenderBars draws the figure as grouped horizontal bars, one group per
// label, one bar per series — the shape of the paper's Figures 2 and 3.
func (f *Figure) RenderBars(width int) string {
	if width < 10 {
		width = 10
	}
	max := f.maxValue()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if max == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	labelW := 0
	for _, s := range f.Series {
		for _, l := range s.Labels {
			if len(l) > labelW {
				labelW = len(l)
			}
		}
		if len(s.Name) > labelW {
			labelW = len(s.Name)
		}
	}
	nLabels := 0
	if len(f.Series) > 0 {
		nLabels = len(f.Series[0].Labels)
	}
	for li := 0; li < nLabels; li++ {
		fmt.Fprintf(&b, "%s:\n", f.Series[0].Labels[li])
		for _, s := range f.Series {
			if li >= len(s.Values) {
				continue
			}
			v := s.Values[li]
			bar := int(v / max * float64(width))
			if bar == 0 && v > 0 {
				bar = 1
			}
			fmt.Fprintf(&b, "  %-*s |%-*s| %.4g\n", labelW, s.Name, width, strings.Repeat("#", bar), v)
		}
	}
	fmt.Fprintf(&b, "(x: %s, y: %s)\n", f.XLabel, f.YLabel)
	return b.String()
}

// RenderLines draws the figure as an ASCII scatter/line chart — the shape
// of the paper's Figures 4-6. Each series gets a distinct marker.
func (f *Figure) RenderLines(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	max := f.maxValue()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if max == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	markers := []byte{'*', 'o', '+', 'x', '@'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	nPoints := 0
	for _, s := range f.Series {
		if len(s.Values) > nPoints {
			nPoints = len(s.Values)
		}
	}
	if nPoints == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			x := 0
			if nPoints > 1 {
				x = i * (width - 1) / (nPoints - 1)
			}
			y := height - 1 - int(math.Round(v/max*float64(height-1)))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = m
		}
	}
	for i, row := range grid {
		yval := max * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%8.3g |%s\n", yval, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	// X-axis tick labels from the first series.
	if len(f.Series) > 0 && len(f.Series[0].Labels) > 0 {
		fmt.Fprintf(&b, "%8s  %s\n", "", strings.Join(f.Series[0].Labels, "  "))
	}
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintf(&b, "(x: %s, y: %s)\n", f.XLabel, f.YLabel)
	return b.String()
}

// CSV exports the figure's series as label,series1,series2,... rows.
func (f *Figure) CSV() string {
	var b strings.Builder
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	writeCSVRow(&b, header)
	nPoints := 0
	for _, s := range f.Series {
		if len(s.Labels) > nPoints {
			nPoints = len(s.Labels)
		}
	}
	for i := 0; i < nPoints; i++ {
		row := make([]string, 0, len(f.Series)+1)
		label := ""
		if len(f.Series) > 0 && i < len(f.Series[0].Labels) {
			label = f.Series[0].Labels[i]
		}
		row = append(row, label)
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, formatFloat(s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		writeCSVRow(&b, row)
	}
	return b.String()
}
