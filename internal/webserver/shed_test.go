package webserver

import (
	"testing"
	"time"

	"repro/internal/fsim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// shedFixture starts a server with the standard corpus under the given
// shed policy and connects a client.
func shedFixture(t *testing.T, shed ShedPolicy) (*Server, *Client) {
	t.Helper()
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		t.Fatal(err)
	}
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	srv, err := New(Config{Store: store, Runtime: rt, Shed: shed})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestAdmissionGate unit-tests the in-flight accounting: the cap is
// strict, and a finished request returns its slot.
func TestAdmissionGate(t *testing.T) {
	srv := &Server{cfg: Config{Shed: ShedPolicy{MaxInFlight: 2}}}
	if !srv.admit() || !srv.admit() {
		t.Fatal("first two requests refused under cap 2")
	}
	if srv.admit() {
		t.Fatal("third concurrent request admitted under cap 2")
	}
	srv.done()
	if !srv.admit() {
		t.Fatal("freed slot not reusable")
	}
	// No cap: admit never refuses and done never underflows.
	open := &Server{}
	for i := 0; i < 4; i++ {
		if !open.admit() {
			t.Fatal("uncapped server refused")
		}
		open.done()
	}
	if n := open.inFlight.Load(); n != 0 {
		t.Fatalf("uncapped in-flight counter moved: %d", n)
	}
}

// TestShedOverloadAnswers503 drives the admission path end to end: with
// a saturated server (the one slot is held), a real request is shed with
// a 503 before any file I/O, and the refusal lands in the records.
func TestShedOverloadAnswers503(t *testing.T) {
	srv, c := shedFixture(t, ShedPolicy{MaxInFlight: 1})
	srv.inFlight.Add(1) // saturate: a request holds the only slot
	resp, err := c.Get(workload.WebCorpus()[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 {
		t.Fatalf("status = %d, want 503 under saturation", resp.Status)
	}
	recs := srv.Records()
	if len(recs) != 1 || !recs[0].Shed || recs[0].Status != 503 || recs[0].IOTime != 0 {
		t.Fatalf("shed record = %+v, want Shed/503 with zero IOTime", recs)
	}
	srv.inFlight.Add(-1) // slot freed: service resumes
	resp, err = c.Get(workload.WebCorpus()[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status after load drained = %d, want 200", resp.Status)
	}
}

// TestShedDeadline pins the deadline leg: a 1ns deadline abandons every
// request after its I/O, answering 503 while still billing the work.
func TestShedDeadline(t *testing.T) {
	srv, c := shedFixture(t, ShedPolicy{Deadline: time.Nanosecond})
	resp, err := c.Get(workload.WebCorpus()[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 {
		t.Fatalf("status = %d, want 503 past deadline", resp.Status)
	}
	if resp.ServerIOTime <= 0 {
		t.Fatal("deadlined response carries no billed I/O time")
	}
	recs := srv.Records()
	if len(recs) != 1 || !recs[0].Deadlined || recs[0].Status != 503 || recs[0].IOTime <= 0 {
		t.Fatalf("deadlined record = %+v, want Deadlined/503 with billed IOTime", recs)
	}
	// POSTs deadline too.
	if resp, err = c.Post("x", []byte("body")); err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 {
		t.Fatalf("POST status = %d, want 503 past deadline", resp.Status)
	}
}

// TestSuccessRecordsStatus pins that healthy requests carry their 200
// in the record, so downstream consumers can split served from shed.
func TestSuccessRecordsStatus(t *testing.T) {
	srv, c := shedFixture(t, ShedPolicy{})
	if _, err := c.Get(workload.WebCorpus()[0].Name); err != nil {
		t.Fatal(err)
	}
	recs := srv.Records()
	if len(recs) != 1 || recs[0].Status != 200 || recs[0].Shed || recs[0].Deadlined {
		t.Fatalf("healthy record = %+v, want plain 200", recs)
	}
}

// TestDefaultShedApplies pins the process-default hook New folds into a
// zero-Shed Config.
func TestDefaultShedApplies(t *testing.T) {
	SetDefaultShed(ShedPolicy{Deadline: time.Nanosecond})
	defer SetDefaultShed(ShedPolicy{})
	srv, c := shedFixture(t, ShedPolicy{})
	resp, err := c.Get(workload.WebCorpus()[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 {
		t.Fatalf("status = %d, want 503 from the default policy", resp.Status)
	}
	if recs := srv.Records(); len(recs) != 1 || !recs[0].Deadlined {
		t.Fatalf("records = %+v", recs)
	}
}

// TestParseShedPolicy pins the flag grammar.
func TestParseShedPolicy(t *testing.T) {
	p, err := ParseShedPolicy("max=8,deadline=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p != (ShedPolicy{MaxInFlight: 8, Deadline: 2 * time.Millisecond}) {
		t.Fatalf("ParseShedPolicy = %+v", p)
	}
	if got := p.String(); got != "max=8,deadline=2ms" {
		t.Fatalf("String() = %q", got)
	}
	if zero, err := ParseShedPolicy(""); err != nil || zero.Enabled() {
		t.Fatalf("empty spec = %+v, %v", zero, err)
	}
	for _, bad := range []string{"max=x", "deadline=fast", "nope=1", "max"} {
		if _, err := ParseShedPolicy(bad); err == nil {
			t.Fatalf("spec %q should error", bad)
		}
	}
	if err := (ShedPolicy{MaxInFlight: -1}).Validate(); err == nil {
		t.Fatal("negative MaxInFlight accepted")
	}
}
