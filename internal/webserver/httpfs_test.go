package webserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/fsim"
	"repro/internal/workload"
)

func newHTTPFSServer(t *testing.T) (*fsim.FileStore, *HTTPFS, *httptest.Server) {
	t.Helper()
	store, err := fsim.NewFileStore(fsim.ShardedConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Create("assets/style/site.css", []byte("body{}\n")); err != nil {
		t.Fatal(err)
	}
	h := NewHTTPFS(store)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return store, h, ts
}

func TestHTTPFSServesCatalog(t *testing.T) {
	store, h, ts := newHTTPFSServer(t)
	spec := workload.WebCorpus()[0]

	resp, err := http.Get(ts.URL + "/" + spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /%s = %d", spec.Name, resp.StatusCode)
	}
	if int64(len(body)) != spec.Size {
		t.Fatalf("body %d bytes, want %d", len(body), spec.Size)
	}
	if want := workload.Payload(1, spec.Size); string(body) != string(want) {
		t.Fatal("served bytes differ from the installed corpus payload")
	}

	// Nested path through the synthesized directory tree.
	resp, err = http.Get(ts.URL + "/assets/style/site.css")
	if err != nil {
		t.Fatal(err)
	}
	css, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(css) != "body{}\n" {
		t.Fatalf("nested GET = %d body %q", resp.StatusCode, css)
	}

	// Missing files 404 via the facade's fs.ErrNotExist.
	resp, err = http.Get(ts.URL + "/no-such-file")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing = %d, want 404", resp.StatusCode)
	}

	// Directory index is synthesized from the prefix listing.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(index), spec.Name) {
		t.Fatalf("index = %d, listing contains %q = %v", resp.StatusCode, spec.Name, strings.Contains(string(index), spec.Name))
	}

	recs := h.Records()
	if len(recs) != 4 {
		t.Fatalf("%d records, want 4", len(recs))
	}
	var hitCost int64
	for _, r := range recs {
		if r.File == spec.Name {
			hitCost = int64(r.IOTime)
			if r.Size != spec.Size {
				t.Errorf("record size %d, want %d", r.Size, spec.Size)
			}
		}
	}
	if hitCost <= 0 {
		t.Fatalf("catalog hit recorded IOTime %d, want > 0 (simulated costs must survive the facade)", hitCost)
	}
	// Per-request lanes fold back into the timeline on release.
	if lanes := store.Timeline().Lanes(); lanes != 1 {
		t.Fatalf("%d lanes alive after serving, want 1 (sessions must be released)", lanes)
	}
	if store.Timeline().Elapsed() <= 0 {
		t.Fatal("timeline did not advance: request lanes were not billed")
	}
}

func TestHTTPFSRangeRequest(t *testing.T) {
	_, _, ts := newHTTPFSServer(t)
	spec := workload.WebCorpus()[0]
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/"+spec.Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", "bytes=100-199")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range GET = %d, want 206", resp.StatusCode)
	}
	want := workload.Payload(1, spec.Size)[100:200]
	if string(body) != string(want) {
		t.Fatal("range body differs from corpus slice — facade Seek/Read path broken")
	}
}

func TestHTTPFSConcurrentClients(t *testing.T) {
	store, h, ts := newHTTPFSServer(t)
	corpus := workload.WebCorpus()
	const clients, perClient = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				spec := corpus[(c+i)%len(corpus)]
				resp, err := http.Get(ts.URL + "/" + spec.Name)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(h.Records()); got != clients*perClient {
		t.Fatalf("%d records, want %d", got, clients*perClient)
	}
	if lanes := store.Timeline().Lanes(); lanes != 1 {
		t.Fatalf("%d lanes alive after concurrent serving, want 1", lanes)
	}
}
