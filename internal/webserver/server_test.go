package webserver

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/fsim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// fixture starts a server with the standard corpus and returns it with a
// connected client.
func fixture(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func TestNewValidation(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	if _, err := New(Config{Store: nil, Runtime: rt}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(Config{Store: store, Runtime: nil}); err == nil {
		t.Error("nil runtime accepted")
	}
}

func TestGetReturnsFileContents(t *testing.T) {
	h := fixture(t)
	spec := workload.WebCorpus()[0]
	resp, err := h.Client.Get(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	want := workload.Payload(1, spec.Size)
	if !bytes.Equal(resp.Body, want) {
		t.Fatalf("GET body mismatch: got %d bytes", len(resp.Body))
	}
	if resp.ServerIOTime <= 0 {
		t.Fatal("server reported no I/O time")
	}
}

func TestGetMissingFile(t *testing.T) {
	h := fixture(t)
	resp, err := h.Client.Get("does-not-exist.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestPostStoresNewFile(t *testing.T) {
	h := fixture(t)
	body := []byte("uploaded payload bytes")
	resp, err := h.Client.Post("whatever.jpg", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	// The server names the file; find it in the store and verify.
	recs := h.Server.Records()
	if len(recs) != 1 || recs[0].Kind != KindPost {
		t.Fatalf("records = %+v", recs)
	}
	name := recs[0].File
	if !h.Store.Exists(name) {
		t.Fatalf("posted file %q missing from store", name)
	}
	f, _, err := h.Store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, len(body))
	f.Read(got)
	if !bytes.Equal(got, body) {
		t.Fatalf("stored %q, want %q", got, body)
	}
}

func TestPostFilesGetDistinctNames(t *testing.T) {
	// "no synchronization is required for write operations" because every
	// POST writes a fresh file.
	h := fixture(t)
	for i := 0; i < 3; i++ {
		if _, err := h.Client.Post("x", []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	names := map[string]bool{}
	for _, r := range h.Server.Records() {
		names[r.File] = true
	}
	if len(names) != 3 {
		t.Fatalf("3 POSTs produced %d distinct files", len(names))
	}
}

func TestPersistentConnectionServesMultipleRequests(t *testing.T) {
	h := fixture(t)
	for i := 0; i < 4; i++ {
		resp, err := h.Client.Get(workload.WebCorpus()[0].Name)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 200 {
			t.Fatalf("request %d status %d", i, resp.Status)
		}
	}
	if got := len(h.Server.Records()); got != 4 {
		t.Fatalf("server recorded %d requests, want 4", got)
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	h := fixture(t)
	resp, err := h.Client.Get("") // "GET / HTTP/1.0" -> empty name -> 404
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404 for empty name", resp.Status)
	}
}

func TestUnsupportedMethod(t *testing.T) {
	h := fixture(t)
	if _, err := fmt.Fprintf(h.Client.conn, "PUT /x HTTP/1.0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := h.Client.readResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 {
		t.Fatalf("status = %d, want 400", resp.Status)
	}
}

func TestConcurrentClients(t *testing.T) {
	h := fixture(t)
	addr := h.Server.listener.Addr().String()
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				resp, err := c.Get(workload.WebCorpus()[1].Name)
				if err != nil {
					errs <- err
					return
				}
				if resp.Status != 200 {
					errs <- fmt.Errorf("status %d", resp.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(h.Server.Records()); got != clients*5 {
		t.Fatalf("recorded %d requests, want %d", got, clients*5)
	}
}

func TestFirstRequestPaysJIT(t *testing.T) {
	h := fixture(t)
	name := workload.WebCorpus()[0].Name
	first, err := h.Client.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.Client.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if first.ServerIOTime <= 2*second.ServerIOTime {
		t.Fatalf("first read %v not ≫ second %v (JIT + cold cache missing)",
			first.ServerIOTime, second.ServerIOTime)
	}
}

func TestWorkerPoolMode(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		t.Fatal(err)
	}
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	srv, err := New(Config{Store: store, Runtime: rt, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			resp, err := c.Get(workload.WebCorpus()[0].Name)
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != 200 {
				errs <- fmt.Errorf("status %d", resp.Status)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(srv.Records()); got != 4 {
		t.Fatalf("pool served %d requests, want 4", got)
	}
}

func TestServerSurvivesStorageFaults(t *testing.T) {
	// A server over failing storage must keep answering (with errors),
	// not crash or hang.
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	if err := workload.Install(inner, workload.WebCorpus()); err != nil {
		t.Fatal(err)
	}
	faulty := fsim.NewFaultStore(inner, 3)
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	srv, err := New(Config{Store: faulty, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var okCount, errCount int
	for i := 0; i < 12; i++ {
		resp, err := c.Get(workload.WebCorpus()[0].Name)
		if err != nil {
			t.Fatalf("request %d: transport error %v", i, err)
		}
		if resp.Status == 200 {
			okCount++
		} else {
			errCount++
		}
	}
	if errCount == 0 {
		t.Fatal("no injected failures surfaced as error responses")
	}
	if okCount == 0 {
		t.Fatal("every request failed; injector misconfigured")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	h := fixture(t)
	if err := h.Server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Server.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTable5Shape(t *testing.T) {
	tb, recs, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("Table 5 has %d rows, want 3", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"7501", "50607", "14603"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing size %s:\n%s", want, out)
		}
	}
	// Six records: 3 GETs + 3 POSTs.
	if len(recs) != 6 {
		t.Fatalf("recorded %d requests, want 6", len(recs))
	}
}

func TestTable5WriteSlowerThanRead(t *testing.T) {
	// Table 5: every row's write time exceeds its read time (writes pay
	// file creation plus the StreamWriter path).
	_, recs, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[RequestKind][]RequestRecord{}
	for _, r := range recs {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	for i := range byKind[KindGet] {
		get, post := byKind[KindGet][i], byKind[KindPost][i]
		if i == 0 {
			// Row 1's GET carries the one-time JIT of the whole read
			// path; the paper's row-1 write is still slower, but the gap
			// is the POST-path JIT. Compare without strictness only here.
			continue
		}
		if post.IOTime <= get.IOTime {
			t.Errorf("row %d: write %v not slower than read %v", i+1, post.IOTime, get.IOTime)
		}
	}
}

func TestTable6WarmupDecline(t *testing.T) {
	tb, times, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != Table6Trials || len(times) != Table6Trials {
		t.Fatalf("trials = %d/%d", tb.NumRows(), len(times))
	}
	// §4.2: the first read is the slowest by a wide margin.
	first, last := times[0], times[len(times)-1]
	if first <= 2*last {
		t.Fatalf("first trial %.3f ms not ≫ last %.3f ms", first, last)
	}
	for i := 1; i < len(times); i++ {
		if times[i] > times[0] {
			t.Fatalf("trial %d (%.3f ms) slower than trial 1 (%.3f ms)", i+1, times[i], times[0])
		}
	}
}

func TestFigure6Renders(t *testing.T) {
	fig, times, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != Table6Trials {
		t.Fatalf("got %d points", len(times))
	}
	out := fig.RenderLines(40, 8)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "*") {
		t.Fatalf("figure render:\n%s", out)
	}
}
