package webserver

import (
	"net/http"
	"strings"
	"sync"

	"repro/internal/fsim"
	"repro/internal/fsim/stdfs"
)

// HTTPFS is the standard-library serving mode: the store's catalog
// exposed through http.FileServer(http.FS(...)) over the stdfs facade,
// so a stock net/http stack — directory indexes, Range requests,
// HEAD, conditional gets — drives the simulator unmodified. It is the
// counterpart to the paper-shaped Server: same store, same
// RequestRecord stream, but the client side is any HTTP client in
// existence rather than the bespoke §4.1 protocol.
//
// Every request runs on its own session lane (fsim.NewSession), so
// concurrent requests advance simulated time in parallel and their I/O
// is timed against private disk views; the lane folds into the store's
// timeline floor on release. The facade's cost ledger for the request
// becomes the record's IOTime — the same quantity the native server
// measures around its stream calls.
type HTTPFS struct {
	store *fsim.FileStore

	mu      sync.Mutex
	records []RequestRecord
}

var _ http.Handler = (*HTTPFS)(nil)

// NewHTTPFS wraps store for standard HTTP serving.
func NewHTTPFS(store *fsim.FileStore) *HTTPFS {
	return &HTTPFS{store: store}
}

// ServeHTTP serves one request from a fresh session lane and records
// its simulated I/O cost.
func (h *HTTPFS) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sess := h.store.NewSession()
	defer sess.Release()
	fsys := stdfs.New(sess)
	cw := &countingResponseWriter{ResponseWriter: w}
	http.FileServer(http.FS(fsys)).ServeHTTP(cw, r)
	name := strings.Trim(r.URL.Path, "/")
	if name == "" {
		name = "."
	}
	h.mu.Lock()
	h.records = append(h.records, RequestRecord{
		Kind:   KindGet,
		File:   name,
		Size:   cw.n,
		IOTime: fsys.Cost(),
	})
	h.mu.Unlock()
}

// Records returns a copy of the per-request measurements in completion
// order.
func (h *HTTPFS) Records() []RequestRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]RequestRecord, len(h.records))
	copy(out, h.records)
	return out
}

// countingResponseWriter counts body bytes for the request record.
type countingResponseWriter struct {
	http.ResponseWriter
	n int64
}

func (w *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}
