package webserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Response is what the client got back from the server.
type Response struct {
	Status int
	Body   []byte
	// ServerIOTime is the server-reported file I/O time for the request
	// (the X-IO-Time-Ns header) — the quantity Tables 5-6 report.
	ServerIOTime time.Duration
}

// Client issues GET and POST requests over one persistent connection.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webserver: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Get fetches a file.
func (c *Client) Get(name string) (*Response, error) {
	if _, err := fmt.Fprintf(c.conn, "GET /%s HTTP/1.0\r\n\r\n", name); err != nil {
		return nil, err
	}
	return c.readResponse()
}

// Post stores data in a fresh server-named file.
func (c *Client) Post(name string, body []byte) (*Response, error) {
	if _, err := fmt.Fprintf(c.conn, "POST /%s HTTP/1.0\r\nContent-Length: %d\r\n\r\n", name, len(body)); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(body); err != nil {
		return nil, err
	}
	return c.readResponse()
}

// readResponse parses one response.
func (c *Client) readResponse() (*Response, error) {
	statusLine, err := c.br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(statusLine)
	if len(fields) < 2 {
		return nil, fmt.Errorf("webserver: malformed status line %q", statusLine)
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("webserver: bad status %q", fields[1])
	}
	resp := &Response{Status: status}
	contentLength := 0
	for {
		h, err := c.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		lower := strings.ToLower(h)
		if v, ok := strings.CutPrefix(lower, "content-length:"); ok {
			if contentLength, err = strconv.Atoi(strings.TrimSpace(v)); err != nil {
				return nil, fmt.Errorf("webserver: bad content length %q", v)
			}
		}
		if v, ok := strings.CutPrefix(lower, "x-io-time-ns:"); ok {
			ns, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("webserver: bad io time %q", v)
			}
			resp.ServerIOTime = time.Duration(ns)
		}
	}
	resp.Body = make([]byte, contentLength)
	if _, err := io.ReadFull(c.br, resp.Body); err != nil {
		return nil, err
	}
	return resp, nil
}
