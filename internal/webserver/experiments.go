package webserver

import (
	"fmt"
	"time"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/simdisk"
	"repro/internal/vm"
	"repro/internal/workload"
)

// vmCalibration returns the managed-runtime cost model for the web
// benchmarks: a lighter JIT than vm.DefaultConfig so that first-request
// latencies land near the paper's 2-9 ms scale.
func vmCalibration() vm.Config {
	cfg := vm.DefaultConfig()
	cfg.JITBaseCost = 200 * time.Microsecond
	cfg.JITCostPerILByte = 500 * time.Nanosecond
	return cfg
}

// storeCalibration returns the file-store configuration for the web
// benchmarks. Unlike the trace replays (whose 1 GB file is mostly hot in
// the OS cache), the web corpus is cold on first touch, so the backing
// store is given millisecond-scale access costs approximating a desktop
// disk path with partial caching — first reads of the ~7-50 KB images
// then land near the paper's 1.7-2.2 ms.
func storeCalibration() fsim.Config {
	cfg := fsim.DefaultConfig()
	cfg.Disk = simdisk.Params{
		Capacity:           8 << 30,
		TrackToTrackSeek:   200 * time.Microsecond,
		AvgSeek:            800 * time.Microsecond,
		FullStrokeSeek:     1500 * time.Microsecond,
		RPM:                60000, // 1 ms rotation
		TransferRate:       100 << 20,
		ControllerOverhead: 100 * time.Microsecond,
		TrackSize:          512 << 10,
	}
	cfg.WarmPagesOnOpen = 0 // first touch is genuinely cold
	// Creating a POST's fresh file pays a directory update on this disk
	// path — the reason every Table 5 row's write exceeds its read.
	cfg.CreateCost = 500 * time.Microsecond
	return cfg
}

// Harness bundles a running server, its store and runtime, and a
// connected client — the full benchmark fixture.
type Harness struct {
	Server  *Server
	Client  *Client
	Store   *fsim.FileStore
	Runtime *vm.Runtime
	addr    string
}

// ServerAddr returns the running server's bound address, for additional
// clients.
func (h *Harness) ServerAddr() string { return h.addr }

// NewHarness starts a cold server (fresh runtime, fresh store, corpus
// installed) and connects a client.
func NewHarness() (*Harness, error) {
	store, err := fsim.NewFileStore(storeCalibration())
	if err != nil {
		return nil, err
	}
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		return nil, err
	}
	// Installing the corpus dirtied the page cache; drop it so every
	// file's first GET is a genuinely cold read, as in the paper.
	store.Cache().Invalidate()
	rt, err := vm.New(vmCalibration(), nil)
	if err != nil {
		return nil, err
	}
	rt.RegisterBCL()
	srv, err := New(Config{Store: store, Runtime: rt})
	if err != nil {
		return nil, err
	}
	addr, err := srv.Start()
	if err != nil {
		return nil, err
	}
	client, err := Dial(addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &Harness{Server: srv, Client: client, Store: store, Runtime: rt, addr: addr}, nil
}

// Close tears the harness down.
func (h *Harness) Close() {
	if h.Client != nil {
		h.Client.Close()
	}
	if h.Server != nil {
		h.Server.Close()
	}
}

// Table5 regenerates the paper's Table 5: for each image file, the
// server-side response time of its first read (GET) and first write
// (POST of the same payload), on a cold VM.
func Table5() (*metrics.Table, []RequestRecord, error) {
	h, err := NewHarness()
	if err != nil {
		return nil, nil, err
	}
	defer h.Close()
	// The paper's request order is file sizes 7501, 50607, 14603.
	specs := workload.WebCorpus()[:3]
	tb := metrics.NewTable("Table 5. Response time of read and write operations",
		"Request number", "Data size (Bytes)", "Read Time (ms)", "Write Time (ms)")
	for i, spec := range specs {
		get, err := h.Client.Get(spec.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("webserver: GET %s: %w", spec.Name, err)
		}
		if get.Status != 200 {
			return nil, nil, fmt.Errorf("webserver: GET %s -> %d", spec.Name, get.Status)
		}
		post, err := h.Client.Post(spec.Name, get.Body)
		if err != nil {
			return nil, nil, fmt.Errorf("webserver: POST %s: %w", spec.Name, err)
		}
		tb.AddRow(i+1, spec.Size,
			float64(get.ServerIOTime.Nanoseconds())/1e6,
			float64(post.ServerIOTime.Nanoseconds())/1e6)
	}
	return tb, h.Server.Records(), nil
}

// Table6Trials is the number of repeated reads in Table 6 / Figure 6.
const Table6Trials = 6

// Table6 regenerates the paper's Table 6: the response time of reading
// the same ~14 KB file six times on a cold VM — the JIT-plus-buffer-cache
// warm-up curve.
func Table6() (*metrics.Table, []float64, error) {
	h, err := NewHarness()
	if err != nil {
		return nil, nil, err
	}
	defer h.Close()
	name := workload.WebCorpus()[3].Name
	tb := metrics.NewTable("Table 6. Response time of repeated read operations",
		"Trail number", "Data size (Bytes)", "Read Time (ms)")
	var times []float64
	for i := 0; i < Table6Trials; i++ {
		resp, err := h.Client.Get(name)
		if err != nil {
			return nil, nil, fmt.Errorf("webserver: trial %d: %w", i+1, err)
		}
		if resp.Status != 200 {
			return nil, nil, fmt.Errorf("webserver: trial %d -> %d", i+1, resp.Status)
		}
		ms := float64(resp.ServerIOTime.Nanoseconds()) / 1e6
		times = append(times, ms)
		tb.AddRow(i+1, workload.Table6FileSize, ms)
	}
	return tb, times, nil
}

// Figure6 renders Table 6's series as the paper's Figure 6 line chart:
// response time of read operations vs trial number.
func Figure6() (*metrics.Figure, []float64, error) {
	_, times, err := Table6()
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, len(times))
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i+1)
	}
	fig := metrics.NewFigure(
		"Figure 6. Data size (Bytes) vs. response time of read operations",
		"trial number (bytes read 14063)", "time taken in milliseconds")
	fig.Add(metrics.NewSeries("Series1", labels, times))
	return fig, times, nil
}
