package webserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fsim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestConcurrentClientsShardedCache serves the web corpus to many
// concurrent connections from a store whose page cache is lock-striped —
// the §4.1 thread-per-connection server on top of the sharded cache. Run
// under -race this is the end-to-end wiring test on the serving side:
// every response must still carry the exact file bytes, and the cache's
// global accounting must hold afterwards.
func TestConcurrentClientsShardedCache(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.ShardedConfig())
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		t.Fatal(err)
	}
	store.Cache().Invalidate()
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	rt.RegisterBCL()
	srv, err := New(Config{Store: store, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	corpus := workload.WebCorpus()
	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			for r := 0; r < rounds; r++ {
				idx := (i + r) % len(corpus)
				spec := corpus[idx]
				resp, err := cl.Get(spec.Name)
				if err != nil {
					errs[i] = err
					return
				}
				if resp.Status != 200 {
					errs[i] = fmt.Errorf("GET %s -> status %d", spec.Name, resp.Status)
					return
				}
				// Install seeds payloads by 1-based corpus position.
				want := workload.Payload(uint64(idx+1), spec.Size)
				if !bytes.Equal(resp.Body, want) {
					errs[i] = fmt.Errorf("GET %s: body %d bytes, want %d", spec.Name, len(resp.Body), len(want))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	cache := store.Cache()
	s := cache.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("expected cold misses then warm hits, got %+v", s)
	}
	if got, budget := cache.ResidentPages(), cache.Config().NumPages; got > budget {
		t.Fatalf("resident pages %d exceed budget %d", got, budget)
	}
	if cache.NumShards() < 4 {
		t.Fatalf("server ran on %d stripes, want >= 4", cache.NumShards())
	}
}

// TestConcurrentClientsLaneSessions serves the corpus with per-connection
// virtual-time lanes over a write-back store: every connection's file I/O
// advances its own session clock, so simulated serving time overlaps
// across connections instead of serializing on the store clock. Run
// under -race this covers the session path end to end on the serving
// side: exact bytes back, a lane per connection, and a clean settle.
func TestConcurrentClientsLaneSessions(t *testing.T) {
	cfg := fsim.ShardedConfig()
	cfg.Cache.WritebackThreshold = 8
	store := fsim.MustNewFileStore(cfg)
	defer store.Close()
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		t.Fatal(err)
	}
	store.Cache().Invalidate()
	baseLanes := store.Timeline().Lanes()
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	rt.RegisterBCL()
	srv, err := New(Config{Store: store, Runtime: rt, Lanes: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	corpus := workload.WebCorpus()
	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			idx := i % len(corpus)
			spec := corpus[idx]
			resp, err := cl.Get(spec.Name)
			if err != nil {
				errs[i] = err
				return
			}
			// Install seeds payloads by 1-based corpus position.
			if !bytes.Equal(resp.Body, workload.Payload(uint64(idx+1), spec.Size)) {
				errs[i] = fmt.Errorf("client %d: wrong bytes for %s", i, spec.Name)
				return
			}
			if _, err := cl.Post(fmt.Sprintf("upload-%d", i), resp.Body); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := len(srv.Records()); n != 2*clients {
		t.Fatalf("recorded %d requests, want %d", n, 2*clients)
	}
	srv.Close()
	// Every connection's lane was released on close, and its time folded
	// into the timeline floor rather than lost.
	if got := store.Timeline().Lanes(); got != baseLanes {
		t.Fatalf("timeline holds %d lanes after close, want %d (sessions released)", got, baseLanes)
	}
	if !store.Timeline().MaxNow().After(store.Timeline().Start()) {
		t.Fatal("released lanes left no simulated time behind")
	}
	if store.TotalDiskStats().Ops() == 0 {
		t.Fatal("released sessions' disk traffic vanished from the totals")
	}
	store.Settle()
	if got := store.Cache().DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived the settle", got)
	}
}
