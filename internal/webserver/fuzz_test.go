package webserver

import (
	"bufio"
	"strings"
	"testing"

	"repro/internal/vm"
)

// FuzzParseRequest hardens the wire parser: arbitrary bytes must parse or
// fail cleanly, and parsed requests must be internally consistent.
func FuzzParseRequest(f *testing.F) {
	f.Add("GET /file.jpg HTTP/1.0\r\n\r\n")
	f.Add("POST /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello")
	f.Add("PUT /y HTTP/1.0\r\n\r\n")
	f.Add("\r\n")
	f.Add("GET")
	f.Fuzz(func(t *testing.T, raw string) {
		rt := vm.MustNew(vm.DefaultConfig(), nil)
		req, err := parseRequest(bufio.NewReader(strings.NewReader(raw)), rt)
		if err != nil {
			return
		}
		if req.kind == "" {
			t.Fatal("parsed request has empty method")
		}
		if req.kind != KindPost && len(req.body) != 0 {
			t.Fatalf("non-POST carries a %d-byte body", len(req.body))
		}
	})
}
