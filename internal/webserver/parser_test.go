package webserver

import (
	"bufio"
	"strings"
	"testing"

	"repro/internal/vm"
)

func parseString(t *testing.T, raw string) (request, error) {
	t.Helper()
	rt := vm.MustNew(vm.DefaultConfig(), nil)
	return parseRequest(bufio.NewReader(strings.NewReader(raw)), rt)
}

func TestParseGet(t *testing.T) {
	req, err := parseString(t, "GET /image-1.jpg HTTP/1.0\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.kind != KindGet || req.file != "image-1.jpg" || len(req.body) != 0 {
		t.Fatalf("req = %+v", req)
	}
}

func TestParsePostWithBody(t *testing.T) {
	req, err := parseString(t, "POST /up HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello")
	if err != nil {
		t.Fatal(err)
	}
	if req.kind != KindPost || string(req.body) != "hello" {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseHeaderCaseInsensitive(t *testing.T) {
	req, err := parseString(t, "POST /x HTTP/1.0\r\ncontent-length: 3\r\n\r\nabc")
	if err != nil {
		t.Fatal(err)
	}
	if string(req.body) != "abc" {
		t.Fatalf("body = %q", req.body)
	}
}

func TestParseExtraHeadersIgnored(t *testing.T) {
	req, err := parseString(t,
		"GET /f HTTP/1.0\r\nHost: example.test\r\nUser-Agent: bench\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.file != "f" {
		t.Fatalf("file = %q", req.file)
	}
}

func TestParseMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"empty line", "\r\n\r\n"},
		{"one field", "GET\r\n\r\n"},
		{"bad content length", "POST /x HTTP/1.0\r\nContent-Length: banana\r\n\r\n"},
		{"negative content length", "POST /x HTTP/1.0\r\nContent-Length: -5\r\n\r\n"},
		{"truncated body", "POST /x HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc"},
		{"truncated headers", "GET /x HTTP/1.0\r\nHost: h"},
		{"empty input", ""},
	}
	for _, tc := range cases {
		if _, err := parseString(t, tc.raw); err == nil {
			t.Errorf("%s: parsed successfully", tc.name)
		}
	}
}

func TestParseWithoutCRTolerated(t *testing.T) {
	// Bare-LF requests are accepted — TrimSpace handles both line
	// endings, as lenient servers do.
	req, err := parseString(t, "GET /f HTTP/1.0\n\n")
	if err != nil {
		t.Fatalf("bare-LF request rejected: %v", err)
	}
	if req.file != "f" {
		t.Fatalf("file = %q", req.file)
	}
}

func TestParsePostZeroLength(t *testing.T) {
	req, err := parseString(t, "POST /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(req.body) != 0 {
		t.Fatalf("body = %q", req.body)
	}
}

func TestParseStripsLeadingSlashOnly(t *testing.T) {
	req, err := parseString(t, "GET /dir/file.jpg HTTP/1.0\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.file != "dir/file.jpg" {
		t.Fatalf("file = %q", req.file)
	}
}
