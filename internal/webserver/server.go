// Package webserver is the paper's third benchmark: a micro benchmark
// that emulates a multithreaded web server issuing intensive read and
// write operations to a local disk (§4).
//
// The structure follows §4.1 exactly: a main goroutine accepts
// connections (the TcpListener/AcceptSocket path) and hands each socket
// to a per-connection worker (the "work" class with StartListen), which
// reads the request into a buffer, parses it for the request type and
// file name, and dispatches to doGet (read the file, send it back) or
// doPost (write the body to a new file named by a random-number
// generator, so writes need no synchronization). File I/O goes through
// the managed vm.FileStream/StreamWriter wrappers over a fsim store, and
// the time charged to each read/write — creating the stream, moving the
// data, closing the stream — is recorded per request, as the paper does
// with QueryPerformanceCounter.
package webserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsim"
	"repro/internal/vm"
)

// DefaultPort is the port the paper's server listens on.
const DefaultPort = 5050

// RequestKind distinguishes GET and POST records.
type RequestKind string

// Request kinds.
const (
	KindGet  RequestKind = "GET"
	KindPost RequestKind = "POST"
)

// RequestRecord is the server's measurement of one request's file I/O.
type RequestRecord struct {
	Kind RequestKind
	File string
	// Size is the number of bytes read or written.
	Size int64
	// IOTime is the file I/O portion of handling the request: stream
	// construction + data movement + close, the quantity of Tables 5-6.
	IOTime time.Duration
	// Status is the HTTP status the request answered with: 200 on
	// success, 503 when the shed policy refused or abandoned it.
	Status int
	// Shed marks a request refused by admission control (no file I/O was
	// performed; IOTime is zero).
	Shed bool
	// Deadlined marks a request whose file I/O exceeded the shed
	// policy's deadline: the I/O is billed (IOTime carries it) but the
	// client got a 503 instead of the payload.
	Deadlined bool
}

// IOTimeMS returns the I/O time in milliseconds.
func (r RequestRecord) IOTimeMS() float64 { return float64(r.IOTime) / float64(time.Millisecond) }

// Config wires a server.
type Config struct {
	// Addr is the listen address; empty means 127.0.0.1 on an ephemeral
	// port (tests) — production runs use fmt.Sprintf(":%d", DefaultPort).
	Addr string
	// Store is the file store served.
	Store fsim.Store
	// Runtime is the managed runtime all I/O goes through.
	Runtime *vm.Runtime
	// PoolSize switches the concurrency model: zero spawns one worker per
	// connection (the paper's design, "the number of threads increases
	// with the increasing number of clients"); a positive value serves
	// all connections from a fixed pool instead — the ablation
	// BenchmarkAblationServerModel compares the two.
	PoolSize int
	// Lanes gives every connection its own virtual-time session when the
	// store supports it (fsim.FileStore): concurrent requests then
	// advance simulated time in parallel — max-over-connections — the
	// way they overlap on real hardware, instead of serializing on the
	// store's one clock. Off by default: the paper's tables are produced
	// on the shared clock.
	Lanes bool
	// Shed is the graceful-degradation policy (admission control +
	// per-request I/O deadline). The zero policy never sheds; New folds
	// in the process default (SetDefaultShed) when left zero.
	Shed ShedPolicy
}

// laneStore is the store capability Lanes uses; *fsim.FileStore
// implements it.
type laneStore interface {
	NewSession() *fsim.Session
}

// Server is the multithreaded web server.
type Server struct {
	cfg      Config
	listener net.Listener
	wg       sync.WaitGroup
	inFlight atomic.Int64

	mu      sync.Mutex
	records []RequestRecord
	nextID  uint64 // deterministic stand-in for the paper's RNG file names
	closed  bool
	conns   map[net.Conn]struct{}
}

// New validates the configuration and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("webserver: nil store")
	}
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("webserver: nil runtime")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Shed == (ShedPolicy{}) {
		cfg.Shed = DefaultShed()
	}
	if err := cfg.Shed.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}, nil
}

// admit applies admission control: it claims an in-flight slot, or
// reports that the request must be shed. done returns the slot.
func (s *Server) admit() bool {
	max := int64(s.cfg.Shed.MaxInFlight)
	if max <= 0 {
		return true
	}
	if s.inFlight.Add(1) > max {
		s.inFlight.Add(-1)
		return false
	}
	return true
}

func (s *Server) done() {
	if s.cfg.Shed.MaxInFlight > 0 {
		s.inFlight.Add(-1)
	}
}

// track registers a live connection; it reports false when the server is
// already closed (the connection is then rejected).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

// untrack removes a finished connection.
func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Start begins listening and accepting. It returns the bound address.
func (s *Server) Start() (string, error) {
	s.cfg.Runtime.Invoke(vm.MethodTcpListenerStart)
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("webserver: listen: %w", err)
	}
	s.listener = ln
	var pool chan net.Conn
	if s.cfg.PoolSize > 0 {
		pool = make(chan net.Conn)
		for i := 0; i < s.cfg.PoolSize; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for conn := range pool {
					s.startListen(conn)
					s.untrack(conn)
				}
			}()
		}
	}
	s.wg.Add(1)
	go s.acceptLoop(pool)
	return ln.Addr().String(), nil
}

// acceptLoop is the main thread: accept a socket and hand it to a worker
// — a fresh goroutine per connection (the paper's model) or the fixed
// pool when configured.
func (s *Server) acceptLoop(pool chan net.Conn) {
	if pool != nil {
		defer close(pool)
	}
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.cfg.Runtime.Invoke(vm.MethodAcceptSocket)
		if !s.track(conn) {
			conn.Close()
			return
		}
		if pool != nil {
			pool <- conn
			continue
		}
		s.cfg.Runtime.Invoke(vm.MethodThreadStart)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.startListen(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for in-flight
// workers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Records returns a copy of the per-request measurements in arrival
// order.
func (s *Server) Records() []RequestRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RequestRecord, len(s.records))
	copy(out, s.records)
	return out
}

// record appends a measurement.
func (s *Server) record(r RequestRecord) {
	s.mu.Lock()
	s.records = append(s.records, r)
	s.mu.Unlock()
}

// startListen is the per-connection worker (§4.1's StartListen): create a
// network stream, read the incoming data into a byte array, parse it, and
// dispatch. Connections are persistent: the worker serves requests until
// the peer closes. With Lanes on, the worker's file I/O runs on its own
// virtual-time session.
func (s *Server) startListen(conn net.Conn) {
	st := s.cfg.Store
	var sess *fsim.Session
	if s.cfg.Lanes {
		if ls, ok := st.(laneStore); ok {
			sess = ls.NewSession()
			// Retire the lane when the connection ends: its time folds
			// into the store's timeline, so long-running servers do not
			// accumulate dead lanes.
			defer sess.Release()
			st = sess
		}
	}
	ns := vm.NewNetworkStream(s.cfg.Runtime, conn)
	defer ns.Close()
	br := bufio.NewReader(readerFunc(ns.Read))
	for {
		if sess != nil {
			// Waiting on the network is outside simulated time: park the
			// lane so a shared disk queue does not conservatively hold
			// other connections' requests for this one. The next file
			// operation unparks it.
			sess.Idle()
		}
		req, err := parseRequest(br, s.cfg.Runtime)
		if err != nil {
			if err != io.EOF {
				writeResponse(ns, 400, fmt.Sprintf("bad request: %v", err), 0)
			}
			return
		}
		switch req.kind {
		case KindGet, KindPost:
			if !s.admit() {
				// Overload: shed before any file I/O so the disk path's
				// backlog stops growing; the refusal is recorded — the
				// degradation is part of the measurement.
				s.record(RequestRecord{Kind: req.kind, File: req.file, Status: 503, Shed: true})
				writeResponse(ns, 503, "server busy", 0)
				continue
			}
			if req.kind == KindGet {
				s.doGet(ns, st, req)
			} else {
				s.doPost(ns, st, req)
			}
			s.done()
		default:
			writeResponse(ns, 400, "unsupported method", 0)
		}
	}
}

// request is a parsed incoming request.
type request struct {
	kind RequestKind
	file string
	body []byte
}

// parseRequest reads one request. The wire format is minimal HTTP/1.0:
// "GET /name HTTP/1.0\r\n\r\n" or "POST /name HTTP/1.0\r\n
// Content-Length: N\r\n\r\n<N bytes>".
func parseRequest(br *bufio.Reader, rt *vm.Runtime) (request, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return request{}, err
	}
	rt.Invoke(vm.MethodStringParse)
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		return request{}, fmt.Errorf("malformed request line %q", line)
	}
	req := request{kind: RequestKind(fields[0]), file: strings.TrimPrefix(fields[1], "/")}
	contentLength := 0
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return request{}, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(h), "content-length:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 0 {
				return request{}, fmt.Errorf("bad content length %q", v)
			}
			contentLength = n
		}
	}
	if req.kind == KindPost && contentLength > 0 {
		req.body = make([]byte, contentLength)
		if _, err := io.ReadFull(br, req.body); err != nil {
			return request{}, err
		}
	}
	return req, nil
}

// doGet reads the requested file and sends it back. The recorded read
// time covers creating the FileStream, reading the data, and closing the
// stream (§4.1).
func (s *Server) doGet(ns *vm.NetworkStream, st fsim.Store, req request) {
	stream, openDur, err := vm.OpenFileStream(s.cfg.Runtime, st, req.file)
	if err != nil {
		writeResponse(ns, 404, fmt.Sprintf("not found: %s", req.file), 0)
		return
	}
	data, readDur, err := stream.ReadAll()
	closeDur, _ := stream.Close()
	if err != nil {
		writeResponse(ns, 500, fmt.Sprintf("read failed: %v", err), 0)
		return
	}
	total := openDur + readDur + closeDur
	if d := s.cfg.Shed.Deadline; d > 0 && total > d {
		s.record(RequestRecord{Kind: KindGet, File: req.file, Size: int64(len(data)), IOTime: total, Status: 503, Deadlined: true})
		writeResponse(ns, 503, "deadline exceeded", total)
		return
	}
	s.record(RequestRecord{Kind: KindGet, File: req.file, Size: int64(len(data)), IOTime: total, Status: 200})
	writeDataResponse(ns, data, total)
}

// doPost writes the request body to a new file named by the server's
// deterministic id generator (the paper uses a random number generator —
// fresh names mean no write synchronization is needed).
func (s *Server) doPost(ns *vm.NetworkStream, st fsim.Store, req request) {
	s.mu.Lock()
	s.nextID++
	name := fmt.Sprintf("post-%d", s.nextID)
	s.mu.Unlock()
	stream, createDur, err := vm.CreateFileStream(s.cfg.Runtime, st, name, nil)
	if err != nil {
		writeResponse(ns, 500, fmt.Sprintf("create failed: %v", err), 0)
		return
	}
	writer, ctorDur := vm.NewStreamWriter(s.cfg.Runtime, stream)
	_, writeDur, err := writer.WriteString(string(req.body))
	closeDur, _ := writer.Close()
	if err != nil {
		writeResponse(ns, 500, fmt.Sprintf("write failed: %v", err), 0)
		return
	}
	total := createDur + ctorDur + writeDur + closeDur
	if d := s.cfg.Shed.Deadline; d > 0 && total > d {
		s.record(RequestRecord{Kind: KindPost, File: name, Size: int64(len(req.body)), IOTime: total, Status: 503, Deadlined: true})
		writeResponse(ns, 503, "deadline exceeded", total)
		return
	}
	s.record(RequestRecord{Kind: KindPost, File: name, Size: int64(len(req.body)), IOTime: total, Status: 200})
	writeResponse(ns, 200, "stored "+name, total)
}

// writeDataResponse sends a 200 with a binary body and the measured I/O
// time in a header, so clients can collect server-side timings.
func writeDataResponse(w io.Writer, data []byte, ioTime time.Duration) {
	fmt.Fprintf(w, "HTTP/1.0 200 OK\r\nContent-Length: %d\r\nX-IO-Time-Ns: %d\r\n\r\n", len(data), ioTime.Nanoseconds())
	w.Write(data)
}

// writeResponse sends a status with a text body.
func writeResponse(w io.Writer, status int, msg string, ioTime time.Duration) {
	text := "OK"
	if status != 200 {
		text = "Error"
	}
	fmt.Fprintf(w, "HTTP/1.0 %d %s\r\nContent-Length: %d\r\nX-IO-Time-Ns: %d\r\n\r\n%s",
		status, text, len(msg), ioTime.Nanoseconds(), msg)
}

// readerFunc adapts a read function to io.Reader.
type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }
