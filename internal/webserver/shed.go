package webserver

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ShedPolicy is the web tier's graceful-degradation policy (§4's server
// under overload): admission control caps how many requests may be in
// the file-I/O path at once, and a per-request deadline bounds how much
// simulated I/O time a request may consume before the server gives up
// on it. Both default to off — the zero policy is the paper's
// unconditionally admitting server.
type ShedPolicy struct {
	// MaxInFlight caps concurrently admitted requests across all
	// connections; a request arriving beyond the cap is shed immediately
	// with a 503 and no file I/O. 0 means unlimited.
	MaxInFlight int
	// Deadline bounds one request's simulated file-I/O time. A request
	// whose I/O exceeds it still bills the work on the store's clock (the
	// deadline models the client's patience, not a cancellation of the
	// device) but answers 503 instead of carrying the payload. 0 means
	// none.
	Deadline time.Duration
}

// Enabled reports whether any shedding is configured.
func (p ShedPolicy) Enabled() bool { return p.MaxInFlight > 0 || p.Deadline > 0 }

// Validate rejects negative limits.
func (p ShedPolicy) Validate() error {
	if p.MaxInFlight < 0 {
		return fmt.Errorf("webserver: negative MaxInFlight %d", p.MaxInFlight)
	}
	if p.Deadline < 0 {
		return fmt.Errorf("webserver: negative Deadline %v", p.Deadline)
	}
	return nil
}

// ParseShedPolicy parses the -shed flag grammar: comma-separated
// key=value pairs "max=8,deadline=2ms". Empty input is the zero policy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	var p ShedPolicy
	if s = strings.TrimSpace(s); s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("webserver: shed spec %q: want key=value", kv)
		}
		switch key {
		case "max":
			n, err := strconv.Atoi(val)
			if err != nil {
				return p, fmt.Errorf("webserver: shed max %q: %v", val, err)
			}
			p.MaxInFlight = n
		case "deadline":
			d, err := time.ParseDuration(val)
			if err != nil {
				return p, fmt.Errorf("webserver: shed deadline %q: %v", val, err)
			}
			p.Deadline = d
		default:
			return p, fmt.Errorf("webserver: unknown shed key %q", key)
		}
	}
	return p, p.Validate()
}

// String renders the policy in the flag grammar.
func (p ShedPolicy) String() string {
	parts := make([]string, 0, 2)
	if p.MaxInFlight > 0 {
		parts = append(parts, fmt.Sprintf("max=%d", p.MaxInFlight))
	}
	if p.Deadline > 0 {
		parts = append(parts, fmt.Sprintf("deadline=%s", p.Deadline))
	}
	return strings.Join(parts, ",")
}

// Process-wide default, the hook core options push through (mirroring
// fsim's SetDefault* family): New folds it into a Config whose Shed is
// the zero policy.
var (
	shedMu  sync.Mutex
	defShed ShedPolicy
)

// SetDefaultShed installs the process-default shed policy.
func SetDefaultShed(p ShedPolicy) {
	shedMu.Lock()
	defer shedMu.Unlock()
	defShed = p
}

// DefaultShed returns the process-default shed policy.
func DefaultShed() ShedPolicy {
	shedMu.Lock()
	defer shedMu.Unlock()
	return defShed
}
