package netsim

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultKind selects what a scheduled network Fault does.
type FaultKind int

// Network fault kinds.
const (
	// FaultKill removes a node at a virtual timestamp: the node stops
	// sending (its NIC transmits nothing) and every message that would be
	// delivered to it at or after the kill is lost. Kills are permanent —
	// a dead node never answers again.
	FaultKill FaultKind = iota
	// FaultDrop takes a node's link down for a window: messages whose
	// transmission starts (outgoing) or completes (incoming) inside the
	// window are lost, while the node itself stays alive.
	FaultDrop
)

// String names the kind in the plan grammar.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultDrop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled node or link fault. Targets are symbolic
// ("server2", "link0", "client1", or a bare node index) so a plan can be
// written before the node layout is known; Resolve binds them to node
// indices. All times are virtual offsets from the simulation epoch, so a
// plan replays bit-identically regardless of goroutine scheduling.
type Fault struct {
	// Target is the symbolic target the plan was written with.
	Target string
	// Node is the resolved node index; -1 until Resolve binds it.
	Node int
	// Kind selects the behaviour.
	Kind FaultKind
	// At activates the fault.
	At time.Duration
	// For is the drop window's length. Kills ignore it (dead stays dead).
	For time.Duration
}

// Validate reports the first problem with the fault, or nil.
func (f Fault) Validate() error {
	if f.Target == "" {
		return fmt.Errorf("netsim: fault has no target")
	}
	if f.At < 0 {
		return fmt.Errorf("netsim: fault activation %v must be non-negative", f.At)
	}
	if f.Kind == FaultDrop && f.For <= 0 {
		return fmt.Errorf("netsim: drop fault needs a positive window, got %v", f.For)
	}
	if f.Kind != FaultKill && f.Kind != FaultDrop {
		return fmt.Errorf("netsim: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// FaultPlan schedules node kills and link outages on simulated time. The
// grammar mirrors simdisk's device fault plans:
//
//	kill:<target>@<at>          node death (permanent)
//	drop:<target>@<at>+<for>    link outage window
//
// where <target> is "server<i>", "client<i>", "link<i>", "node<i>", or a
// bare node index, and <at>/<for> are Go durations on the virtual clock.
type FaultPlan struct {
	Faults []Fault
}

// ParseFaultPlan parses the comma-separated fault grammar. An empty
// string parses to a nil plan (no faults). Targets stay symbolic; call
// Resolve before applying the plan to a Network.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var plan FaultPlan
	for i, part := range strings.Split(s, ",") {
		f, err := parseFault(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("netsim: fault %d %q: %w", i, part, err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	return &plan, nil
}

func parseFault(s string) (Fault, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Fault{}, fmt.Errorf("want kind:target@..., got %q", s)
	}
	target, spec, ok := strings.Cut(rest, "@")
	if !ok {
		return Fault{}, fmt.Errorf("missing @<at> in %q", s)
	}
	if target == "" {
		return Fault{}, fmt.Errorf("empty target in %q", s)
	}
	f := Fault{Target: target, Node: -1}
	var err error
	switch kind {
	case "kill":
		f.Kind = FaultKill
		if f.At, err = time.ParseDuration(spec); err != nil {
			return Fault{}, fmt.Errorf("activation %q: %w", spec, err)
		}
	case "drop":
		f.Kind = FaultDrop
		atStr, forStr, ok := strings.Cut(spec, "+")
		if !ok {
			return Fault{}, fmt.Errorf("drop needs @<at>+<for>, got %q", spec)
		}
		if f.At, err = time.ParseDuration(atStr); err != nil {
			return Fault{}, fmt.Errorf("activation %q: %w", atStr, err)
		}
		if f.For, err = time.ParseDuration(forStr); err != nil {
			return Fault{}, fmt.Errorf("window %q: %w", forStr, err)
		}
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q (want kill or drop)", kind)
	}
	return f, f.Validate()
}

// String renders the plan back into the ParseFaultPlan grammar.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	parts := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		switch f.Kind {
		case FaultKill:
			parts = append(parts, fmt.Sprintf("kill:%s@%v", f.Target, f.At))
		case FaultDrop:
			parts = append(parts, fmt.Sprintf("drop:%s@%v+%v", f.Target, f.At, f.For))
		}
	}
	return strings.Join(parts, ",")
}

// Resolve binds every symbolic target to a node index via the caller's
// layout function (e.g. distbench maps "server2" to node Nodes+2). Bare
// integer targets resolve to themselves without consulting the layout.
// Resolve is idempotent and returns the first unresolvable target.
func (p *FaultPlan) Resolve(layout func(target string) (int, error)) error {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if n, err := strconv.Atoi(f.Target); err == nil {
			f.Node = n
			continue
		}
		if layout == nil {
			return fmt.Errorf("netsim: fault %d: symbolic target %q with no layout", i, f.Target)
		}
		n, err := layout(f.Target)
		if err != nil {
			return fmt.Errorf("netsim: fault %d target %q: %w", i, f.Target, err)
		}
		f.Node = n
	}
	return nil
}

// Validate checks every fault is well formed and resolved within an
// n-node network.
func (p *FaultPlan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("netsim: fault %d: %w", i, err)
		}
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("netsim: fault %d target %q resolves to node %d outside 0..%d", i, f.Target, f.Node, n-1)
		}
	}
	return nil
}

// nodeFaults is the per-node fault state; healthy networks keep a nil
// slice so the fault-free path pays one nil check.
type nodeFaults struct {
	killed bool
	killAt time.Duration
	drops  []Fault
}

// ApplyFaultPlan validates the (resolved) plan against the network and
// schedules its faults. Activation offsets are measured from epoch. A
// nil plan is a no-op and keeps Send bit-identical to the fault-free
// path.
func (n *Network) ApplyFaultPlan(epoch time.Time, plan *FaultPlan) error {
	if plan == nil {
		return nil
	}
	if err := plan.Validate(len(n.nicBusy)); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch = epoch
	if n.flt == nil {
		n.flt = make([]*nodeFaults, len(n.nicBusy))
	}
	for _, f := range plan.Faults {
		nf := n.flt[f.Node]
		if nf == nil {
			nf = &nodeFaults{}
			n.flt[f.Node] = nf
		}
		switch f.Kind {
		case FaultKill:
			if !nf.killed || f.At < nf.killAt {
				nf.killAt = f.At
			}
			nf.killed = true
		case FaultDrop:
			nf.drops = append(nf.drops, f)
		}
	}
	return nil
}

// nodeDeadLocked reports whether node is killed at virtual time at.
func (n *Network) nodeDeadLocked(at time.Time, node int) bool {
	if n.flt == nil || n.flt[node] == nil {
		return false
	}
	nf := n.flt[node]
	return nf.killed && at.Sub(n.epoch) >= nf.killAt
}

// linkDownLocked reports whether node's link is inside a drop window.
func (n *Network) linkDownLocked(at time.Time, node int) bool {
	if n.flt == nil || n.flt[node] == nil {
		return false
	}
	off := at.Sub(n.epoch)
	for _, f := range n.flt[node].drops {
		if off >= f.At && off < f.At+f.For {
			return true
		}
	}
	return false
}

// NodeDead reports whether node is killed at virtual time at.
func (n *Network) NodeDead(at time.Time, node int) bool {
	if node < 0 || node >= len(n.nicBusy) {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodeDeadLocked(at, node)
}

// SendLossy is Send under the fault plan: it transmits size bytes from
// src to dst starting no earlier than now and reports whether the
// message was lost. A dead sender transmits nothing (no billing); a live
// sender is billed whether or not the message arrives — the sender
// cannot know the far end is gone, which is exactly why callers pair
// SendLossy with an RPC deadline. The message is lost when the sender's
// link is down at transmission start, the receiver's link is down at
// delivery, or the receiver is dead at delivery. With no fault plan
// applied it is bit-identical to Send.
func (n *Network) SendLossy(now time.Time, src, dst int, size int64) (done time.Time, lost bool, err error) {
	if src < 0 || src >= len(n.nicBusy) || dst < 0 || dst >= len(n.nicBusy) {
		return now, false, fmt.Errorf("netsim: send %d->%d outside 0..%d", src, dst, len(n.nicBusy)-1)
	}
	if size < 0 {
		return now, false, fmt.Errorf("netsim: negative message size %d", size)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	start := now
	if n.nicBusy[src].After(start) {
		start = n.nicBusy[src]
	}
	if n.nodeDeadLocked(start, src) {
		n.stats.Dropped++
		return time.Time{}, true, nil
	}
	if src == dst {
		done = start.Add(n.params.PerMessageCPU)
	} else {
		done = start.Add(n.params.MessageCost(size))
	}
	n.nicBusy[src] = done
	n.stats.Messages++
	n.stats.Bytes += size
	n.stats.BusyTime += done.Sub(start)
	if src != dst &&
		(n.linkDownLocked(start, src) || n.linkDownLocked(done, dst) || n.nodeDeadLocked(done, dst)) {
		n.stats.Dropped++
		return done, true, nil
	}
	return done, false, nil
}
