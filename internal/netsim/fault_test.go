package netsim

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseFaultPlanRoundTrip(t *testing.T) {
	in := "kill:server2@50ms,drop:link0@10ms+5ms,kill:3@1s"
	plan, err := ParseFaultPlan(in)
	if err != nil {
		t.Fatalf("ParseFaultPlan: %v", err)
	}
	if got := len(plan.Faults); got != 3 {
		t.Fatalf("parsed %d faults, want 3", got)
	}
	want := []Fault{
		{Target: "server2", Node: -1, Kind: FaultKill, At: 50 * time.Millisecond},
		{Target: "link0", Node: -1, Kind: FaultDrop, At: 10 * time.Millisecond, For: 5 * time.Millisecond},
		{Target: "3", Node: -1, Kind: FaultKill, At: time.Second},
	}
	if !reflect.DeepEqual(plan.Faults, want) {
		t.Fatalf("parsed %+v, want %+v", plan.Faults, want)
	}
	out := plan.String()
	plan2, err := ParseFaultPlan(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if !reflect.DeepEqual(plan, plan2) {
		t.Fatalf("round trip changed the plan: %+v vs %+v", plan, plan2)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, bad := range []string{
		"boom:0@0s",     // unknown kind
		"kill:0",        // missing @at
		"drop:0@1ms",    // drop without window
		"kill:0@-1ms",   // negative activation
		"drop:0@0s+0s",  // empty window
		"kill:@0s",      // empty target
		"kill",          // no separator
		"drop:0@1ms+xx", // unparseable window
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
	if plan, err := ParseFaultPlan("  "); err != nil || plan != nil {
		t.Fatalf("blank plan = (%v, %v), want (nil, nil)", plan, err)
	}
}

func TestResolveBindsSymbolicTargets(t *testing.T) {
	plan, err := ParseFaultPlan("kill:server1@50ms,drop:client0@0s+1ms,kill:2@0s")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	layout := func(target string) (int, error) {
		switch target {
		case "server1":
			return 5, nil
		case "client0":
			return 0, nil
		}
		return 0, errFmt(target)
	}
	if err := plan.Resolve(layout); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	for i, want := range []int{5, 0, 2} {
		if got := plan.Faults[i].Node; got != want {
			t.Errorf("fault %d resolved to node %d, want %d", i, got, want)
		}
	}
	// Validate catches out-of-range resolutions.
	if err := plan.Validate(3); err == nil {
		t.Fatalf("Validate(3) accepted node 5")
	}
	if err := plan.Validate(6); err != nil {
		t.Fatalf("Validate(6): %v", err)
	}
}

func errFmt(target string) error { return &unknownTarget{target} }

type unknownTarget struct{ t string }

func (e *unknownTarget) Error() string { return "unknown target " + e.t }

// TestSendLossyFaultFreeMatchesSend pins the invariant the distbench
// fault-aware path relies on: with no plan applied, SendLossy is
// bit-identical to Send.
func TestSendLossyFaultFreeMatchesSend(t *testing.T) {
	a := MustNew(4, LANParams())
	b := MustNew(4, LANParams())
	t0 := time.Unix(0, 0)
	sends := []struct {
		src, dst int
		size     int64
	}{{0, 1, 4096}, {1, 2, 0}, {2, 2, 128}, {0, 3, 1 << 20}, {0, 1, 64}}
	now := t0
	for _, s := range sends {
		d1, err1 := a.Send(now, s.src, s.dst, s.size)
		d2, lost, err2 := b.SendLossy(now, s.src, s.dst, s.size)
		if err1 != nil || err2 != nil || lost {
			t.Fatalf("send %+v: (%v, %v, lost=%v)", s, err1, err2, lost)
		}
		if !d1.Equal(d2) {
			t.Fatalf("send %+v: Send %v vs SendLossy %v", s, d1, d2)
		}
		now = d1
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestKillDropsDeliveriesAfterDeath(t *testing.T) {
	n := MustNew(3, LANParams())
	t0 := time.Unix(0, 0)
	plan, err := ParseFaultPlan("kill:1@1ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := plan.Resolve(nil); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if err := n.ApplyFaultPlan(t0, plan); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// Delivery before the kill arrives.
	if _, lost, err := n.SendLossy(t0, 0, 1, 64); err != nil || lost {
		t.Fatalf("pre-kill send lost=%v err=%v", lost, err)
	}
	if !n.NodeDead(t0.Add(time.Millisecond), 1) {
		t.Fatalf("node 1 should be dead at +1ms")
	}
	// A message delivered after the kill is lost, but the sender's NIC is
	// still billed (the sender cannot know).
	before := n.Stats()
	done2, lost2, err := n.SendLossy(t0.Add(2*time.Millisecond), 0, 1, 64)
	if err != nil || !lost2 {
		t.Fatalf("post-kill send lost=%v err=%v", lost2, err)
	}
	if done2.IsZero() {
		t.Fatalf("lost delivery from a live sender should still report its NIC completion")
	}
	after := n.Stats()
	if after.Messages != before.Messages+1 || after.Dropped != before.Dropped+1 {
		t.Fatalf("stats %+v -> %+v, want one more message and one more drop", before, after)
	}
	// The dead node transmits nothing: no billing, message lost.
	before = after
	_, lost3, err := n.SendLossy(done2, 1, 0, 64)
	if err != nil || !lost3 {
		t.Fatalf("dead sender lost=%v err=%v", lost3, err)
	}
	after = n.Stats()
	if after.Messages != before.Messages || after.BusyTime != before.BusyTime {
		t.Fatalf("dead sender was billed: %+v -> %+v", before, after)
	}
	if after.Dropped != before.Dropped+1 {
		t.Fatalf("dead sender's message not counted dropped")
	}
}

func TestDropWindowLosesOnlyInsideWindow(t *testing.T) {
	n := MustNew(2, Params{Latency: time.Millisecond, Bandwidth: 1 << 30, PerMessageCPU: 0})
	t0 := time.Unix(0, 0)
	plan, err := ParseFaultPlan("drop:1@10ms+5ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := plan.Resolve(nil); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if err := n.ApplyFaultPlan(t0, plan); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// Delivered at +1ms: before the window.
	if _, lost, _ := n.SendLossy(t0, 0, 1, 0); lost {
		t.Fatalf("pre-window delivery lost")
	}
	// Delivered at +12ms: inside the window on the receiver's link.
	if _, lost, _ := n.SendLossy(t0.Add(11*time.Millisecond), 0, 1, 0); !lost {
		t.Fatalf("in-window delivery survived")
	}
	// Transmission starting at +12ms from the dropped node: outgoing lost.
	if _, lost, _ := n.SendLossy(t0.Add(12*time.Millisecond), 1, 0, 0); !lost {
		t.Fatalf("in-window outgoing survived")
	}
	// After the window lifts, both directions work again.
	if _, lost, _ := n.SendLossy(t0.Add(20*time.Millisecond), 0, 1, 0); lost {
		t.Fatalf("post-window delivery lost")
	}
	if _, lost, _ := n.SendLossy(t0.Add(20*time.Millisecond), 1, 0, 0); lost {
		t.Fatalf("post-window outgoing lost")
	}
}

func TestApplyFaultPlanRejectsUnresolved(t *testing.T) {
	n := MustNew(2, LANParams())
	plan, err := ParseFaultPlan("kill:server0@0s")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	err = n.ApplyFaultPlan(time.Unix(0, 0), plan)
	if err == nil || !strings.Contains(err.Error(), "server0") {
		t.Fatalf("unresolved plan accepted (err=%v)", err)
	}
}
