package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Unix(0, 0)

func TestParamsValidate(t *testing.T) {
	if err := LANParams().Validate(); err != nil {
		t.Fatalf("LAN params invalid: %v", err)
	}
	if err := WANParams().Validate(); err != nil {
		t.Fatalf("WAN params invalid: %v", err)
	}
	bad := []Params{
		{Latency: -1, Bandwidth: 1},
		{Latency: 0, Bandwidth: 0},
		{Latency: 0, Bandwidth: 1, PerMessageCPU: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, LANParams()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(4, Params{Bandwidth: -1}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMessageCostComponents(t *testing.T) {
	p := LANParams()
	zero := p.MessageCost(0)
	big := p.MessageCost(100 << 20) // 1 second of transfer at 100 MB/s
	if zero != p.PerMessageCPU+p.Latency {
		t.Fatalf("zero-byte cost = %v", zero)
	}
	if big-zero < 900*time.Millisecond {
		t.Fatalf("transfer term missing: %v", big)
	}
}

func TestSendDelivery(t *testing.T) {
	nw := MustNew(4, LANParams())
	done, err := nw.Send(t0, 0, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := LANParams().MessageCost(1 << 20)
	if got := done.Sub(t0); got != want {
		t.Fatalf("delivery %v, want %v", got, want)
	}
}

func TestSendSelfIsCheap(t *testing.T) {
	nw := MustNew(2, LANParams())
	done, err := nw.Send(t0, 1, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := done.Sub(t0); got != LANParams().PerMessageCPU {
		t.Fatalf("self-send cost %v, want software overhead only", got)
	}
}

func TestSendBoundsChecked(t *testing.T) {
	nw := MustNew(2, LANParams())
	if _, err := nw.Send(t0, -1, 0, 1); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := nw.Send(t0, 0, 5, 1); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if _, err := nw.Send(t0, 0, 1, -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestNICSerializesSends(t *testing.T) {
	nw := MustNew(3, LANParams())
	d1, _ := nw.Send(t0, 0, 1, 1<<20)
	d2, _ := nw.Send(t0, 0, 2, 1<<20) // same source: must queue
	if !d2.After(d1) {
		t.Fatalf("second send from same NIC not serialized: %v vs %v", d2, d1)
	}
	// Different sources do not queue on each other.
	nw2 := MustNew(3, LANParams())
	e1, _ := nw2.Send(t0, 0, 2, 1<<20)
	e2, _ := nw2.Send(t0, 1, 2, 1<<20)
	if !e1.Equal(e2) {
		t.Fatalf("independent NICs interfered: %v vs %v", e1, e2)
	}
}

func TestBarrierScalesLogarithmically(t *testing.T) {
	cost := func(nodes int) time.Duration {
		nw := MustNew(nodes, LANParams())
		return nw.Barrier(t0).Sub(t0)
	}
	c2, c16, c17, c32 := cost(2), cost(16), cost(17), cost(32)
	if c2 >= c16 {
		t.Fatalf("barrier cost not growing: %v vs %v", c2, c16)
	}
	// 16 -> 17 nodes crosses a log2 boundary; 17 and 32 share ⌈log₂⌉ = 5.
	if c17 != c32 {
		t.Fatalf("17 and 32 nodes should share rounds: %v vs %v", c17, c32)
	}
	if c16 >= c17 {
		t.Fatalf("log boundary missing: %v vs %v", c16, c17)
	}
	// Single node: free.
	if cost(1) != 0 {
		t.Fatalf("1-node barrier cost %v, want 0", cost(1))
	}
}

func TestBarrierWaitsForBusyNICs(t *testing.T) {
	nw := MustNew(4, LANParams())
	sendDone, _ := nw.Send(t0, 2, 3, 10<<20) // keep NIC 2 busy
	barrierDone := nw.Barrier(t0)
	if !barrierDone.After(sendDone) {
		t.Fatalf("barrier %v did not wait for busy NIC until %v", barrierDone, sendDone)
	}
}

func TestBroadcast(t *testing.T) {
	nw := MustNew(8, LANParams())
	done, err := nw.Broadcast(t0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * LANParams().MessageCost(1<<20) // log2(8) rounds
	if got := done.Sub(t0); got != want {
		t.Fatalf("broadcast = %v, want %v", got, want)
	}
	if _, err := nw.Broadcast(t0, 99, 1); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestAllReduceCost(t *testing.T) {
	nw := MustNew(4, LANParams())
	done := nw.AllReduce(t0, 4096)
	want := 2 * LANParams().MessageCost(4096)
	if got := done.Sub(t0); got != want {
		t.Fatalf("allreduce = %v, want %v", got, want)
	}
}

func TestExchange(t *testing.T) {
	nw := MustNew(9, LANParams())
	done := nw.Exchange(t0, 64<<10, 4) // 2D halo: 4 neighbours
	want := 4 * LANParams().MessageCost(64<<10)
	if got := done.Sub(t0); got != want {
		t.Fatalf("exchange = %v, want %v", got, want)
	}
	if nw.Exchange(done, 64<<10, 0) != done {
		t.Fatal("zero-neighbour exchange should be free")
	}
}

func TestStatsAccumulate(t *testing.T) {
	nw := MustNew(4, LANParams())
	nw.Send(t0, 0, 1, 1000)
	nw.Barrier(t0)
	s := nw.Stats()
	if s.Messages == 0 || s.Bytes != 1000 || s.Collective != 1 {
		t.Fatalf("stats = %+v", s)
	}
	nw.Reset()
	if s := nw.Stats(); s.Messages != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestWANSlowerThanLAN(t *testing.T) {
	lan := MustNew(2, LANParams())
	wan := MustNew(2, WANParams())
	dl, _ := lan.Send(t0, 0, 1, 1<<20)
	dw, _ := wan.Send(t0, 0, 1, 1<<20)
	if !dw.After(dl) {
		t.Fatalf("WAN %v not slower than LAN %v", dw, dl)
	}
}

func TestSendDeliveryMonotoneProperty(t *testing.T) {
	nw := MustNew(4, LANParams())
	now := t0
	f := func(src, dst uint8, size uint16) bool {
		done, err := nw.Send(now, int(src)%4, int(dst)%4, int64(size))
		if err != nil {
			return false
		}
		return !done.Before(now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 32: 5}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}
