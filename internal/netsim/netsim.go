// Package netsim models the interconnect the distributed benchmark runs
// over. The paper extends Rosti et al.'s model to cover "communication
// requirements imposed by parallel applications" (§2.1) — appmodel's
// communication bursts use the same alpha-beta cost this package is built
// on — and names "benchmarks for I/O-intensive computing in a widely
// distributed environment" as future work (§5), which distbench builds on
// this package.
//
// The model is the standard alpha-beta (latency-bandwidth) point-to-point
// cost with per-NIC serialization, plus the usual logarithmic collective
// algorithms built on it. Everything is deterministic virtual time.
package netsim

import (
	"fmt"
	"math/bits"
	"sync"
	"time"
)

// Params describes one homogeneous network.
type Params struct {
	// Latency is the per-message wire latency (alpha).
	Latency time.Duration
	// Bandwidth is the per-link bandwidth in bytes/second (1/beta).
	Bandwidth float64
	// PerMessageCPU is the sender/receiver software overhead per message.
	PerMessageCPU time.Duration
}

// LANParams returns a 2003-era gigabit LAN: 100 µs latency, 100 MB/s.
func LANParams() Params {
	return Params{Latency: 100 * time.Microsecond, Bandwidth: 100 << 20, PerMessageCPU: 10 * time.Microsecond}
}

// WANParams returns a wide-area link: 40 ms RTT/2, 1 MB/s.
func WANParams() Params {
	return Params{Latency: 20 * time.Millisecond, Bandwidth: 1 << 20, PerMessageCPU: 20 * time.Microsecond}
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	switch {
	case p.Latency < 0:
		return fmt.Errorf("netsim: negative latency %v", p.Latency)
	case p.Bandwidth <= 0:
		return fmt.Errorf("netsim: bandwidth %v must be positive", p.Bandwidth)
	case p.PerMessageCPU < 0:
		return fmt.Errorf("netsim: negative per-message cost %v", p.PerMessageCPU)
	}
	return nil
}

// transferTime returns the bandwidth term for n bytes.
func (p Params) transferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.Bandwidth * float64(time.Second))
}

// MessageCost returns the uncontended cost of one n-byte message:
// software overhead + latency + transfer.
func (p Params) MessageCost(n int64) time.Duration {
	return p.PerMessageCPU + p.Latency + p.transferTime(n)
}

// Stats counts network activity.
type Stats struct {
	Messages   int64
	Bytes      int64
	BusyTime   time.Duration
	Collective int64
	// Dropped counts messages lost to node kills or link-drop windows
	// (SendLossy under a FaultPlan).
	Dropped int64
}

// Network is a set of nodes joined by a homogeneous fabric. Each node's
// NIC serializes its sends; receives are not modelled separately (the
// alpha term covers the far end). Safe for concurrent use.
type Network struct {
	params  Params
	mu      sync.Mutex
	nicBusy []time.Time
	stats   Stats
	// epoch anchors the fault plan's virtual offsets; flt is per-node
	// fault state, nil while no plan is applied so the fault-free paths
	// pay one nil check.
	epoch time.Time
	flt   []*nodeFaults
}

// New builds a network of n nodes.
func New(n int, p Params) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 node, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Network{params: p, nicBusy: make([]time.Time, n)}, nil
}

// MustNew panics on error; for literal wiring.
func MustNew(n int, p Params) *Network {
	nw, err := New(n, p)
	if err != nil {
		panic(err)
	}
	return nw
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.nicBusy) }

// Params returns the fabric parameters.
func (n *Network) Params() Params { return n.params }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Send transmits size bytes from node src to node dst, starting no
// earlier than now, and returns the delivery time. Sends from a busy NIC
// queue behind it. Sending to self costs only the software overhead.
func (n *Network) Send(now time.Time, src, dst int, size int64) (time.Time, error) {
	if src < 0 || src >= len(n.nicBusy) || dst < 0 || dst >= len(n.nicBusy) {
		return now, fmt.Errorf("netsim: send %d->%d outside 0..%d", src, dst, len(n.nicBusy)-1)
	}
	if size < 0 {
		return now, fmt.Errorf("netsim: negative message size %d", size)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	start := now
	if n.nicBusy[src].After(start) {
		start = n.nicBusy[src]
	}
	var done time.Time
	if src == dst {
		done = start.Add(n.params.PerMessageCPU)
	} else {
		done = start.Add(n.params.MessageCost(size))
	}
	n.nicBusy[src] = done
	n.stats.Messages++
	n.stats.Bytes += size
	n.stats.BusyTime += done.Sub(start)
	return done, nil
}

// log2ceil returns ⌈log₂ p⌉ (0 for p ≤ 1).
func log2ceil(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// Barrier synchronizes all nodes starting at now using a dissemination
// barrier: ⌈log₂ P⌉ rounds of zero-payload messages. It returns the time
// every node has left the barrier.
func (n *Network) Barrier(now time.Time) time.Time {
	n.mu.Lock()
	rounds := log2ceil(len(n.nicBusy))
	cost := time.Duration(rounds) * n.params.MessageCost(0)
	// A barrier cannot complete before every NIC has drained.
	start := now
	for _, busy := range n.nicBusy {
		if busy.After(start) {
			start = busy
		}
	}
	done := start.Add(cost)
	for i := range n.nicBusy {
		n.nicBusy[i] = done
	}
	n.stats.Collective++
	n.stats.Messages += int64(rounds * len(n.nicBusy))
	n.mu.Unlock()
	return done
}

// Broadcast sends size bytes from root to every other node via a binomial
// tree: ⌈log₂ P⌉ rounds, each a full message cost. It returns the time
// the last node holds the data.
func (n *Network) Broadcast(now time.Time, root int, size int64) (time.Time, error) {
	if root < 0 || root >= len(n.nicBusy) {
		return now, fmt.Errorf("netsim: broadcast root %d outside 0..%d", root, len(n.nicBusy)-1)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rounds := log2ceil(len(n.nicBusy))
	start := now
	if n.nicBusy[root].After(start) {
		start = n.nicBusy[root]
	}
	done := start.Add(time.Duration(rounds) * n.params.MessageCost(size))
	for i := range n.nicBusy {
		n.nicBusy[i] = done
	}
	n.stats.Collective++
	n.stats.Messages += int64(rounds)
	n.stats.Bytes += size * int64(rounds)
	return done, nil
}

// AllReduce combines size bytes across all nodes (recursive doubling:
// ⌈log₂ P⌉ rounds of size-byte exchanges) and returns completion time.
func (n *Network) AllReduce(now time.Time, size int64) time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	rounds := log2ceil(len(n.nicBusy))
	start := now
	for _, busy := range n.nicBusy {
		if busy.After(start) {
			start = busy
		}
	}
	done := start.Add(time.Duration(rounds) * n.params.MessageCost(size))
	for i := range n.nicBusy {
		n.nicBusy[i] = done
	}
	n.stats.Collective++
	n.stats.Messages += int64(rounds * len(n.nicBusy))
	n.stats.Bytes += size * int64(rounds*len(n.nicBusy))
	return done
}

// Exchange models a nearest-neighbour halo exchange: every node sends
// size bytes to each of `neighbours` peers concurrently (NICs serialize
// each node's own sends). It returns the completion time.
func (n *Network) Exchange(now time.Time, size int64, neighbours int) time.Time {
	if neighbours < 0 {
		neighbours = 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	start := now
	for _, busy := range n.nicBusy {
		if busy.After(start) {
			start = busy
		}
	}
	done := start.Add(time.Duration(neighbours) * n.params.MessageCost(size))
	for i := range n.nicBusy {
		n.nicBusy[i] = done
	}
	n.stats.Collective++
	n.stats.Messages += int64(neighbours * len(n.nicBusy))
	n.stats.Bytes += size * int64(neighbours*len(n.nicBusy))
	return done
}

// Reset clears busy horizons, statistics, and any applied fault plan.
func (n *Network) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := range n.nicBusy {
		n.nicBusy[i] = time.Time{}
	}
	n.stats = Stats{}
	n.epoch = time.Time{}
	n.flt = nil
}
