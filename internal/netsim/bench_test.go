package netsim

import (
	"testing"
	"time"
)

func BenchmarkSend(b *testing.B) {
	nw := MustNew(16, LANParams())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(now, i%16, (i+1)%16, 64<<10)
	}
}

func BenchmarkBarrier(b *testing.B) {
	nw := MustNew(32, LANParams())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = nw.Barrier(now)
	}
}

func BenchmarkAllReduce(b *testing.B) {
	nw := MustNew(32, LANParams())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = nw.AllReduce(now, 4096)
	}
}
