package workload

import (
	"bytes"
	"testing"

	"repro/internal/fsim"
)

func TestWebCorpusSpecs(t *testing.T) {
	specs := WebCorpus()
	if len(specs) != 4 {
		t.Fatalf("corpus has %d files, want 4", len(specs))
	}
	wantSizes := []int64{7501, 50607, 14603, 14063}
	for i, spec := range specs {
		if spec.Size != wantSizes[i] {
			t.Errorf("file %d size %d, want %d", i, spec.Size, wantSizes[i])
		}
		if spec.Name == "" {
			t.Errorf("file %d has empty name", i)
		}
	}
}

func TestPayloadDeterministic(t *testing.T) {
	a := Payload(7, 1000)
	b := Payload(7, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	c := Payload(8, 1000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds gave identical payloads")
	}
	if len(Payload(1, 0)) != 0 {
		t.Fatal("zero-size payload not empty")
	}
}

func TestPayloadNotDegenerate(t *testing.T) {
	p := Payload(3, 4096)
	counts := map[byte]int{}
	for _, b := range p {
		counts[b]++
	}
	if len(counts) < 100 {
		t.Fatalf("payload uses only %d distinct byte values", len(counts))
	}
}

func TestInstall(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	if err := Install(store, WebCorpus()); err != nil {
		t.Fatal(err)
	}
	for _, spec := range WebCorpus() {
		if !store.Exists(spec.Name) {
			t.Errorf("%s not installed", spec.Name)
		}
		f, _, err := store.Open(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != spec.Size {
			t.Errorf("%s size %d, want %d", spec.Name, f.Size(), spec.Size)
		}
		f.Close()
	}
}

func TestInstallRejectsNegativeSize(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	if err := Install(store, []FileSpec{{Name: "bad", Size: -1}}); err == nil {
		t.Fatal("negative size accepted")
	}
}
