// Package workload generates the deterministic file corpora and request
// mixes the benchmarks and examples run against.
package workload

import (
	"fmt"

	"repro/internal/fsim"
)

// Table5FileSizes are the paper's image-file sizes in request order
// (§4.2, Table 5).
var Table5FileSizes = []int64{7501, 50607, 14603}

// Table6FileSize is the file re-read six times in Table 6 / Figure 6.
const Table6FileSize = 14063

// FileSpec names a corpus file and its size.
type FileSpec struct {
	Name string
	Size int64
}

// WebCorpus returns the web-server benchmark corpus: the three Table 5
// image files plus the Table 6 file.
func WebCorpus() []FileSpec {
	specs := make([]FileSpec, 0, len(Table5FileSizes)+1)
	for i, size := range Table5FileSizes {
		specs = append(specs, FileSpec{Name: fmt.Sprintf("image-%d.jpg", i+1), Size: size})
	}
	specs = append(specs, FileSpec{Name: "repeat.jpg", Size: Table6FileSize})
	return specs
}

// Payload returns size deterministic pseudo-random bytes derived from
// seed — stable across runs, cheap to verify (no RNG state to thread).
func Payload(seed uint64, size int64) []byte {
	out := make([]byte, size)
	x := seed*2654435761 + 1
	for i := range out {
		// xorshift64* step per byte keeps this allocation-dominated.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// Install creates every spec'd file in the store with deterministic
// contents.
func Install(store fsim.Store, specs []FileSpec) error {
	for i, spec := range specs {
		if spec.Size < 0 {
			return fmt.Errorf("workload: file %q has negative size %d", spec.Name, spec.Size)
		}
		if _, err := store.Create(spec.Name, Payload(uint64(i+1), spec.Size)); err != nil {
			return fmt.Errorf("workload: creating %q: %w", spec.Name, err)
		}
	}
	return nil
}
