package clock

import (
	"sync"
	"time"
)

// Timeline is a set of virtual-clock lanes that together model a
// parallel machine's simulated time. Each concurrent actor — a replay
// worker, a server connection, a background flusher — advances its own
// lane independently; the timeline merges them with max-over-lanes, the
// overlap rule: work on different lanes happens at the same simulated
// time, so the aggregate elapsed time of a parallel run is the longest
// lane, not the sum of all lanes.
//
// This is the layer that turns the repository's wall-parallel replays
// into simulated-parallel ones. Before it, every goroutine charged its
// latency to one shared VirtualClock, so simulated time serialized even
// when execution did not.
type Timeline struct {
	start time.Time

	mu    sync.Mutex
	lanes []*VirtualClock
	// floor retains the final time of released lanes, so the merge never
	// forgets work done by workers that have since gone away.
	floor time.Time
}

// NewTimeline returns a timeline whose lanes start at start.
func NewTimeline(start time.Time) *Timeline {
	return &Timeline{start: start}
}

// Start returns the timeline's origin.
func (t *Timeline) Start() time.Time { return t.start }

// NewLane adds a lane starting at the timeline's current MaxNow — a
// worker joining an in-flight simulation begins "now", not at the
// origin. On a fresh timeline that is the start time.
func (t *Timeline) NewLane() *VirtualClock {
	t.mu.Lock()
	defer t.mu.Unlock()
	lane := NewVirtualClock(t.maxNowLocked())
	t.lanes = append(t.lanes, lane)
	return lane
}

// Lanes returns the number of lanes.
func (t *Timeline) Lanes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lanes)
}

// Lane returns lane i in creation order.
func (t *Timeline) Lane(i int) *VirtualClock {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lanes[i]
}

// maxNowLocked computes the merge under t.mu.
func (t *Timeline) maxNowLocked() time.Time {
	now := t.start
	if t.floor.After(now) {
		now = t.floor
	}
	for _, lane := range t.lanes {
		if n := lane.Now(); n.After(now) {
			now = n
		}
	}
	return now
}

// ReleaseLane retires a lane whose worker is done: its final time folds
// into the merge floor (MaxNow never decreases) and the lane itself is
// dropped, so long-lived timelines — a server giving every connection a
// lane — do not accumulate dead clocks. Releasing a lane the timeline
// does not hold is a no-op.
func (t *Timeline) ReleaseLane(lane *VirtualClock) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, l := range t.lanes {
		if l == lane {
			if n := lane.Now(); n.After(t.floor) {
				t.floor = n
			}
			t.lanes = append(t.lanes[:i], t.lanes[i+1:]...)
			return
		}
	}
}

// MaxNow merges the lanes: the simulated time of the machine as a whole
// is the furthest any lane has advanced (overlapped work counts once).
func (t *Timeline) MaxNow() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxNowLocked()
}

// Elapsed is the aggregate simulated elapsed time: MaxNow minus start.
func (t *Timeline) Elapsed() time.Duration {
	return t.MaxNow().Sub(t.start)
}

// Align is a barrier merge: every lane jumps forward to the current
// MaxNow (no lane moves backwards), and that instant is returned.
// Callers use it at synchronization points — the end of a parallel
// phase — before charging sequential work.
func (t *Timeline) Align() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.maxNowLocked()
	for _, lane := range t.lanes {
		lane.Set(now)
	}
	return now
}

// MaxTime returns the later of a and b — the two-clock merge rule,
// exported for callers combining horizons outside a Timeline.
func MaxTime(a, b time.Time) time.Time {
	if b.After(a) {
		return b
	}
	return a
}

// MinTime returns the earlier of a and b — the dual of MaxTime, used by
// event merges (the shared disk queue) that pop the earliest pending
// timestamp across lanes.
func MinTime(a, b time.Time) time.Time {
	if b.Before(a) {
		return b
	}
	return a
}
