package clock

import (
	"sync"
	"testing"
	"time"
)

func TestTimelineMergeIsMaxOverLanes(t *testing.T) {
	start := time.Unix(0, 0)
	tl := NewTimeline(start)
	a := tl.NewLane()
	b := tl.NewLane()
	c := tl.NewLane()

	a.Advance(3 * time.Second)
	b.Advance(7 * time.Second)
	c.Advance(1 * time.Second)

	if got, want := tl.Elapsed(), 7*time.Second; got != want {
		t.Fatalf("Elapsed = %v, want %v (max over lanes, not sum)", got, want)
	}
	if got := tl.MaxNow(); !got.Equal(start.Add(7 * time.Second)) {
		t.Fatalf("MaxNow = %v", got)
	}
}

func TestTimelineNewLaneJoinsAtMaxNow(t *testing.T) {
	start := time.Unix(0, 0)
	tl := NewTimeline(start)
	a := tl.NewLane()
	a.Advance(5 * time.Second)

	late := tl.NewLane()
	if got := late.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("late lane starts at %v, want the timeline's MaxNow", got)
	}
	// A late joiner advancing does not double-count the first 5 s.
	late.Advance(2 * time.Second)
	if got, want := tl.Elapsed(), 7*time.Second; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestTimelineAlignBarrier(t *testing.T) {
	tl := NewTimeline(time.Unix(0, 0))
	a := tl.NewLane()
	b := tl.NewLane()
	a.Advance(4 * time.Second)

	at := tl.Align()
	if !b.Now().Equal(at) || !a.Now().Equal(at) {
		t.Fatalf("after Align lanes read %v / %v, want both %v", a.Now(), b.Now(), at)
	}
	if tl.Lanes() != 2 {
		t.Fatalf("Lanes = %d", tl.Lanes())
	}
}

// TestTimelineConcurrent advances lanes from many goroutines under the
// race detector: each lane is owned by one goroutine, merges race with
// advances, and the final merge is exact.
func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline(time.Unix(0, 0))
	const lanes = 8
	clocks := make([]*VirtualClock, lanes)
	for i := range clocks {
		clocks[i] = tl.NewLane()
	}
	var wg sync.WaitGroup
	for i, c := range clocks {
		wg.Add(1)
		go func(i int, c *VirtualClock) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Duration(i+1) * time.Millisecond)
				_ = tl.MaxNow() // merge racing with advances
			}
		}(i, c)
	}
	wg.Wait()
	if got, want := tl.Elapsed(), 800*time.Millisecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestMaxTime(t *testing.T) {
	a := time.Unix(1, 0)
	b := time.Unix(2, 0)
	if got := MaxTime(a, b); !got.Equal(b) {
		t.Fatalf("MaxTime = %v", got)
	}
	if got := MaxTime(b, a); !got.Equal(b) {
		t.Fatalf("MaxTime = %v", got)
	}
}
