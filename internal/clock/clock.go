// Package clock provides the time substrate shared by every simulator in
// this repository.
//
// The paper measures latencies with the Win32 QueryPerformanceCounter; on
// the reproduction side we need two clock flavours behind one interface:
//
//   - RealClock: a thin wrapper over the Go monotonic clock, used when a
//     benchmark issues real OS I/O.
//   - VirtualClock: a deterministic simulated clock advanced explicitly by
//     the discrete-event engines (disk model, cache, VM). Every simulated
//     experiment in the repo is reproducible bit-for-bit because all timing
//     flows through a VirtualClock.
//
// The PerfCounter type mirrors the QueryPerformanceCounter usage in the
// paper's web-server benchmark: a high-resolution stamp pair converted to
// milliseconds.
package clock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock. For virtual clocks the
	// wall-clock date is meaningless; only differences matter.
	Now() time.Time
	// Sleep advances this clock (virtual) or blocks (real) for d.
	Sleep(d time.Duration)
}

// Advancer is implemented by clocks whose time is driven by the caller
// rather than by the OS. Discrete-event engines advance simulated time
// through this interface.
type Advancer interface {
	// Advance moves the clock forward by d and returns the new now.
	Advance(d time.Duration) time.Time
}

// RealClock reads the OS monotonic clock.
type RealClock struct{}

// Now returns time.Now.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep blocks for d using time.Sleep.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a deterministic, explicitly advanced clock. The zero
// value is ready to use and starts at the zero time.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current simulated time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances simulated time by d. Negative durations are ignored.
func (c *VirtualClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves simulated time forward by d and returns the new now.
// Negative durations are treated as zero: simulated time never flows
// backwards.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t if t is later than the current simulated time.
// It returns the resulting now. Set is used by event loops that pop a
// timestamped event queue.
func (c *VirtualClock) Set(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}

var (
	_ Clock    = RealClock{}
	_ Clock    = (*VirtualClock)(nil)
	_ Advancer = (*VirtualClock)(nil)
)

// Stopwatch measures elapsed time on an arbitrary Clock. It mirrors the
// start/stop QueryPerformanceCounter pattern used in the paper.
type Stopwatch struct {
	clock   Clock
	start   time.Time
	elapsed time.Duration
	running bool
}

// NewStopwatch returns a stopped stopwatch bound to c.
func NewStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{clock: c}
}

// Start begins (or resumes) timing. Starting a running stopwatch is a
// no-op.
func (s *Stopwatch) Start() {
	if s.running {
		return
	}
	s.start = s.clock.Now()
	s.running = true
}

// Stop halts timing and accumulates the elapsed interval.
func (s *Stopwatch) Stop() {
	if !s.running {
		return
	}
	s.elapsed += s.clock.Now().Sub(s.start)
	s.running = false
}

// Reset zeroes the accumulated time and stops the stopwatch.
func (s *Stopwatch) Reset() {
	s.elapsed = 0
	s.running = false
}

// Elapsed reports the accumulated time, including the in-flight interval
// if the stopwatch is running.
func (s *Stopwatch) Elapsed() time.Duration {
	if s.running {
		return s.elapsed + s.clock.Now().Sub(s.start)
	}
	return s.elapsed
}

// Running reports whether the stopwatch is currently timing.
func (s *Stopwatch) Running() bool { return s.running }

// PerfCounter emulates the QueryPerformanceCounter API the paper uses to
// time web-server I/O: Query captures a stamp; Milliseconds converts a
// stamp pair to the floating-point millisecond latency the paper's tables
// report.
type PerfCounter struct {
	clock Clock
}

// NewPerfCounter returns a counter reading from c.
func NewPerfCounter(c Clock) *PerfCounter { return &PerfCounter{clock: c} }

// Query returns a high-resolution counter stamp in nanoseconds.
func (p *PerfCounter) Query() int64 { return p.clock.Now().UnixNano() }

// Milliseconds converts a stamp pair to elapsed milliseconds.
func (p *PerfCounter) Milliseconds(start, end int64) float64 {
	return float64(end-start) / 1e6
}

// FormatMS renders a millisecond latency the way the paper's tables print
// them: scientific notation for sub-microsecond values, fixed point
// otherwise.
func FormatMS(ms float64) string {
	if ms != 0 && ms < 1e-3 {
		return fmt.Sprintf("%.2E", ms)
	}
	return fmt.Sprintf("%.4g", ms)
}
