package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	t0 := c.Now()
	t1 := c.Advance(5 * time.Millisecond)
	if got := t1.Sub(t0); got != 5*time.Millisecond {
		t.Fatalf("Advance moved clock by %v, want 5ms", got)
	}
	if !c.Now().Equal(t1) {
		t.Fatalf("Now %v != advanced time %v", c.Now(), t1)
	}
}

func TestVirtualClockNegativeAdvance(t *testing.T) {
	c := NewVirtualClock(time.Unix(100, 0))
	before := c.Now()
	c.Advance(-time.Second)
	if !c.Now().Equal(before) {
		t.Fatalf("negative advance moved the clock: %v -> %v", before, c.Now())
	}
}

func TestVirtualClockSleepAdvances(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	c.Sleep(3 * time.Second)
	if got := c.Now().Sub(time.Unix(0, 0)); got != 3*time.Second {
		t.Fatalf("Sleep advanced by %v, want 3s", got)
	}
}

func TestVirtualClockSetOnlyForward(t *testing.T) {
	c := NewVirtualClock(time.Unix(50, 0))
	c.Set(time.Unix(40, 0))
	if got := c.Now(); !got.Equal(time.Unix(50, 0)) {
		t.Fatalf("Set moved clock backwards to %v", got)
	}
	c.Set(time.Unix(60, 0))
	if got := c.Now(); !got.Equal(time.Unix(60, 0)) {
		t.Fatalf("Set failed to move clock forward, now %v", got)
	}
}

func TestVirtualClockMonotonicProperty(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	f := func(deltas []int32) bool {
		prev := c.Now()
		for _, d := range deltas {
			now := c.Advance(time.Duration(d)) // may be negative
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatchAccumulates(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	sw := NewStopwatch(c)
	sw.Start()
	c.Advance(10 * time.Millisecond)
	sw.Stop()
	c.Advance(100 * time.Millisecond) // not timed
	sw.Start()
	c.Advance(5 * time.Millisecond)
	sw.Stop()
	if got := sw.Elapsed(); got != 15*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 15ms", got)
	}
}

func TestStopwatchRunningElapsed(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	sw := NewStopwatch(c)
	sw.Start()
	c.Advance(7 * time.Millisecond)
	if got := sw.Elapsed(); got != 7*time.Millisecond {
		t.Fatalf("running Elapsed = %v, want 7ms", got)
	}
	if !sw.Running() {
		t.Fatal("stopwatch should be running")
	}
}

func TestStopwatchDoubleStartIsNoop(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	sw := NewStopwatch(c)
	sw.Start()
	c.Advance(time.Millisecond)
	sw.Start() // must not reset the start stamp
	c.Advance(time.Millisecond)
	sw.Stop()
	if got := sw.Elapsed(); got != 2*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 2ms", got)
	}
}

func TestStopwatchReset(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	sw := NewStopwatch(c)
	sw.Start()
	c.Advance(time.Second)
	sw.Reset()
	if sw.Elapsed() != 0 || sw.Running() {
		t.Fatalf("Reset left elapsed=%v running=%v", sw.Elapsed(), sw.Running())
	}
}

func TestStopwatchStopWithoutStart(t *testing.T) {
	sw := NewStopwatch(NewVirtualClock(time.Unix(0, 0)))
	sw.Stop() // must not panic or accumulate
	if sw.Elapsed() != 0 {
		t.Fatalf("Elapsed = %v, want 0", sw.Elapsed())
	}
}

func TestPerfCounterMilliseconds(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	pc := NewPerfCounter(c)
	start := pc.Query()
	c.Advance(2500 * time.Microsecond)
	end := pc.Query()
	if got := pc.Milliseconds(start, end); got != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", got)
	}
}

func TestRealClockProgresses(t *testing.T) {
	rc := RealClock{}
	a := rc.Now()
	rc.Sleep(time.Millisecond)
	b := rc.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not progress: %v then %v", a, b)
	}
}

func TestFormatMS(t *testing.T) {
	cases := []struct {
		ms   float64
		want string
	}{
		{7.88e-05, "7.88E-05"},
		{0.0025, "0.0025"},
		{2.1175, "2.118"},
		{0, "0"},
	}
	for _, tc := range cases {
		if got := FormatMS(tc.ms); got != tc.want {
			t.Errorf("FormatMS(%v) = %q, want %q", tc.ms, got, tc.want)
		}
	}
}
