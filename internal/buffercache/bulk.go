// Bulk, run-granular cache operations: the hot data path.
//
// The page-granular path (touchHit / isResident / installPage, retained
// for the equivalence tests behind SetPageGranular) pays a full mutex
// round-trip, map lookup, LRU splice, and floating-point copy-cost
// division per 4 KB page — a warm 64 KB read is 16 lock acquisitions,
// and a miss run looks every page up twice. The bulk path partitions
// the page range into per-shard runs and processes each run under a
// single lock acquisition: one stripe hash per run, one batched hit
// count and LRU refresh, and the residency frontier returned from the
// lookup so miss runs are never probed twice. The warm loop charges the
// per-page copy cost precomputed at New, so it does integer adds only.
//
// Behavioral contract: the bulk path performs the same residency, LRU,
// eviction, and statistics transitions in the same order as the
// page-granular path, so simulated timing is bit-identical —
// TestBulkMatchesPageGranular (and tracesim's equivalence test) pin it.
package buffercache

import (
	"runtime"
	"time"

	"repro/internal/simdisk"
)

// shardRunEnd returns the last page of the maximal run [page..last]
// whose pages all hash to shard si. With a single stripe that is the
// whole range; with more, fibonacci hashing scatters consecutive pages,
// so runs shrink toward single pages (locking then is the scalability
// mechanism, not batching).
func (c *Cache) shardRunEnd(si int, page, last int64) int64 {
	if c.shardShift == 0 {
		return last
	}
	end := page
	for end < last && c.shardIndex(end+1) == si {
		end++
	}
	return end
}

// lookupRun consumes the leading resident pages of [from..to] (all in
// shard s) as hits — batched statistics, per-page LRU refresh in
// ascending order, exactly the transitions touchHit performs — then
// scans the non-resident extent that follows, all under one lock
// acquisition. It returns the number of leading hits, the last page of
// the following miss extent (missEnd < from+nHits when there is none),
// and whether the extent ran off the end of the run still missing (the
// caller then extends it into the next shard run).
func (s *shard) lookupRun(from, to int64) (nHits, missEnd int64, open bool) {
	s.mu.Lock()
	p := s.consumeHitsLocked(from, to)
	nHits = p - from
	if p > to {
		s.mu.Unlock()
		return nHits, p - 1, false
	}
	p = s.scanMissLocked(p, to)
	s.mu.Unlock()
	return nHits, p - 1, p > to
}

// scanMissLocked advances from the first page of [from..to] over the
// consecutive non-resident pages and returns the first resident one
// (to+1 when the whole span misses): the one residency-probe loop every
// miss-extent scan shares. The caller holds s.mu.
func (s *shard) scanMissLocked(from, to int64) int64 {
	p := from
	for p <= to {
		if s.table.get(p) != nil {
			break
		}
		p++
	}
	return p
}

// consumeHitsLocked touches the leading resident pages of [from..to] as
// hits and returns the first non-resident page (to+1 when the whole
// span is warm). The caller holds s.mu.
func (s *shard) consumeHitsLocked(from, to int64) int64 {
	p := from
	var pfHits int64
	for p <= to {
		f := s.table.get(p)
		if f == nil {
			break
		}
		if f.prefetched {
			pfHits++
			f.prefetched = false
		}
		s.lru.moveToFront(f)
		p++
	}
	if n := p - from; n > 0 {
		s.stats.Hits += n
		s.stats.PrefetchHits += pfHits
	}
	return p
}

// scanMissRun extends a miss run into [from..to] (all in shard s): it
// returns the last consecutive non-resident page (from-1 when the first
// page is resident) and whether the scan ran off the end of the run
// still missing. One lock acquisition replaces a per-page isResident
// probe.
func (s *shard) scanMissRun(from, to int64) (missEnd int64, open bool) {
	s.mu.Lock()
	p := s.scanMissLocked(from, to)
	s.mu.Unlock()
	return p - 1, p > to
}

// installRun makes [from..to] (all in shard s, ascending) resident with
// the same per-page transitions as installPage; see installRunLocked.
// It returns the count of freshly installed pages, the stripe's dirty
// count after the run, whether any page transitioned clean->dirty, and
// the final eviction/write-back horizon. preMiss folds a demand fetch's
// miss accounting (preMiss misses and their disk bytes, booked to this
// stripe) into the install's critical section, so the cold path does not
// pay a separate lock round-trip just to count.
func (s *shard) installRun(c *Cache, io *IO, now time.Time, from, to int64, dirty, prefetched, count, advance bool, preMiss int64) (fresh int64, dirtyCount int, dirtied bool, horizon time.Time) {
	s.mu.Lock()
	if preMiss > 0 {
		s.stats.Misses += preMiss
		s.stats.BytesFromDisk += preMiss * c.cfg.PageSize
	}
	fresh, dirtied, horizon = s.installRunLocked(c, io, now, from, to, dirty, prefetched, count, advance)
	dirtyCount = s.dirty
	s.mu.Unlock()
	return fresh, dirtyCount, dirtied, horizon
}

// installRunLocked makes [from..to] (all in shard s, ascending)
// resident: already-resident pages are touched (and dirtied when
// asked); each streak of missing pages is installed chunk-at-a-time —
// frames are gathered in one pass (the stripe's free list first, with
// the same per-frame pool-refill decisions the page-granular loop
// makes, then the stripe's own LRU victims, retired together), the
// retired victims' write-backs are billed as contiguous disk runs
// (billVictimsLocked), and the pages are installed. Only when the
// budget is exhausted and the stripe holds nothing to evict does it
// drop the lock to reclaim from a sibling, exactly as installPage does.
// When advance is set evictions are charged at the running write-back
// horizon (the write path's accounting); otherwise at now (the read
// path's). The victim choices, their billing order and times, and every
// statistic are identical to the page-at-a-time loop — the batching
// removes lock and disk-model round-trips, not one transition.
//
// The caller holds s.mu; the starved reclaim path may drop and retake
// it, so table state is re-probed afterwards (the rescan from p).
func (s *shard) installRunLocked(c *Cache, io *IO, now time.Time, from, to int64, dirty, prefetched, count, advance bool) (fresh int64, dirtied bool, horizon time.Time) {
	horizon = now
	p := from
	for p <= to {
		if f := s.table.get(p); f != nil {
			if count {
				s.stats.Hits++
			}
			if dirty && !f.dirty {
				f.dirty = true
				s.dirty++
				s.noteDirtyLocked(c, p, f)
				dirtied = true
			}
			s.lru.moveToFront(f)
			p++
			continue
		}
		// Miss streak: extend over the consecutive non-resident pages of
		// the run, then fill it chunk by chunk — each chunk as many
		// frames as the free list and this stripe's LRU can supply
		// without dropping the lock.
		mEnd := s.scanMissLocked(p, to) - 1
		for p <= mEnd {
			s.gathered = s.gathered[:0]
			need := mEnd - p + 1
			for int64(len(s.gathered)) < need {
				// used == NumPages means every frame in the budget is
				// resident: the pool and every stripe's free list are
				// provably empty, so the steady eviction state skips the
				// pool lock and the sibling TryLock sweep entirely.
				var f *frame
				if c.used.Load() < int64(c.cfg.NumPages) {
					if f = c.popFreeLocked(s); f == nil {
						f = c.harvestFreeLocked(s)
					}
				}
				if f != nil {
					// A frame from the pool becomes resident: account it
					// now, where the page-granular loop accounts it right
					// after acquiring the frame. A retired victim needs no
					// accounting — its -1/+1 would cancel within this
					// critical section (see retireLocked).
					s.size.Add(1)
					c.used.Add(1)
				} else {
					victim := s.lru.back()
					if victim == nil {
						break // stripe empty: reclaim below
					}
					s.retireLocked(c, victim)
					f = victim
				}
				s.gathered = append(s.gathered, f)
			}
			if len(s.gathered) == 0 {
				// Budget exhausted and nothing local to evict: the sibling
				// harvest/reclaim takes other stripes' locks, so drop ours
				// and re-probe, as installPage does.
				s.mu.Unlock()
				at := now
				if advance {
					at = horizon
				}
				done, ok := c.reclaimFrame(io, at)
				if done.After(horizon) {
					horizon = done
				}
				if !ok {
					runtime.Gosched() // frames are in flight; let holders finish
				}
				s.mu.Lock()
				break // residency may have changed: rescan from p
			}
			horizon = s.billVictimsLocked(c, io, now, horizon, advance)
			for _, f := range s.gathered {
				if count {
					s.stats.Misses++
				}
				f.page = p
				f.dirty = dirty
				f.prefetched = prefetched
				s.table.put(f)
				s.lru.pushFront(f)
				if dirty {
					s.dirty++
					s.noteDirtyLocked(c, p, f)
					dirtied = true
				}
				fresh++
				p++
			}
		}
	}
	return fresh, dirtied, horizon
}

// installRange installs [first..last] by per-shard runs, returning the
// number of freshly installed pages and the furthest eviction horizon.
// The install order, and so every eviction decision, matches the
// page-granular loop page for page. preMiss is booked to the first run's
// stripe (the stripe of page `first` — where the separate accounting
// step used to book it) under that run's install lock.
func (c *Cache) installRange(io *IO, now time.Time, first, last int64, dirty, prefetched, count, advance bool, preMiss int64) (fresh int64, horizon time.Time) {
	horizon = now
	page := first
	for page <= last {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		at := now
		if advance {
			at = horizon
		}
		n, dc, dirtied, h := c.shards[si].installRun(c, io, at, page, runEnd, dirty, prefetched, count, advance, preMiss)
		preMiss = 0
		fresh += n
		if h.After(horizon) {
			horizon = h
		}
		if dirtied {
			c.maybeSignalWriteback(si, dc, at)
		}
		page = runEnd + 1
	}
	return fresh, horizon
}

// ReadIO simulates reading [offset, offset+length) on io's backend view
// and stream state. Resident pages cost memory copies; missing pages are
// fetched from the backend in contiguous runs, optionally extended by
// the read-ahead window when the access pattern is sequential. This is
// the bulk hot path: warm spans cost one lock acquisition per shard run
// and integer time arithmetic only.
func (c *Cache) ReadIO(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	if c.pageGranular {
		return c.readIOPages(io, now, offset, length)
	}
	if length < 0 {
		length = 0
	}
	first, last := c.pageRange(offset, length)
	if last < first { // zero-length read: lookup cost only
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}

	sequential := io.noteRead(first, last)

	if c.shardShift == 0 && io.async == nil {
		// Single-stripe configuration (the paper default): the whole
		// range lives in shard 0, so the merged path below does lookup,
		// miss accounting, fill, install, and read-ahead under one lock
		// acquisition instead of one per phase. Shared-queue backends
		// opt out: their demand Access blocks on the event merge, and
		// blocking while holding the stripe lock would stall every other
		// lane's cache work behind this lane's turn in the queue.
		return c.readIOOneShard(io, now, first, last, sequential)
	}

	done := now
	page := first
	for page <= last {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		nHits, missEnd, open := c.shards[si].lookupRun(page, runEnd)
		if nHits > 0 {
			done = done.Add(time.Duration(nHits) * c.hitPageCost)
			page += nHits
			if page > runEnd {
				continue // run fully warm; next shard run
			}
		}
		// Miss run starting at page; extend across shard runs while the
		// frontier keeps missing, one locked scan per run.
		missStart := page
		for open && missEnd < last {
			nsi := c.shardIndex(missEnd + 1)
			nEnd := c.shardRunEnd(nsi, missEnd+1, last)
			var e int64
			e, open = c.shards[nsi].scanMissRun(missEnd+1, nEnd)
			if e < missEnd+1 {
				break
			}
			missEnd = e
		}
		// The demand fetch's miss accounting rides into the first install
		// run's critical section (installRange's preMiss), booked to the
		// stripe of missStart exactly as the separate locked step used to
		// book it — a miss run is two lock acquisitions (lookup, install),
		// not three.
		nDemand := missEnd - missStart + 1
		rs := c.shardOf(missStart)
		diskDone, _ := io.backend.Access(done, simdisk.Request{
			Offset: missStart * c.cfg.PageSize,
			Length: nDemand * c.cfg.PageSize,
		})
		done = diskDone
		c.installRange(io, done, missStart, missEnd, false, false, false, false, nDemand)
		// Asynchronous read-ahead: queue the next window behind the
		// demand fetch. It occupies the disk but is not charged to this
		// read — later sequential reads find the pages resident.
		if sequential && c.cfg.PrefetchPages > 0 {
			pfStart := missEnd + 1
			pfEnd := missEnd + int64(c.cfg.PrefetchPages)
			io.evictAccess(diskDone, simdisk.Request{
				Offset: pfStart * c.cfg.PageSize,
				Length: (pfEnd - pfStart + 1) * c.cfg.PageSize,
			})
			brought, _ := c.installRange(io, diskDone, pfStart, pfEnd, false, true, false, false, 0)
			if brought > 0 {
				rs.mu.Lock()
				rs.stats.PrefetchedIn += brought
				rs.stats.BytesFromDisk += brought * c.cfg.PageSize
				rs.mu.Unlock()
			}
		}
		// Copy the demanded part of the run to the caller.
		done = done.Add(c.copyCost(nDemand * c.cfg.PageSize))
		page = missEnd + 1
	}
	return done, done.Sub(now)
}

// readIOOneShard is ReadIO for the single-stripe cache: every page of
// the range hashes to shard 0, so hit consumption, the miss-extent
// scan, miss accounting, the demand fill, the install, and the
// read-ahead window all run under one lock acquisition — the cold path
// costs one shard mutex round-trip per read instead of three. Holding
// the stripe lock across the simulated disk accesses is deadlock-free
// (the disk model takes only its own mutex, never a shard's) and
// deliberate: the fill and the eviction/read-ahead billing that must
// interleave with it stay one critical section, which is what makes
// the paper-default miss path cheap. The cost is that concurrent
// sessions' private disk views no longer overlap in wall time while a
// cold miss is in flight on the shared stripe — single-stripe mode is
// the deterministic single-threaded configuration; concurrent
// workloads run striped (ShardedConfig / -shards 0), which never
// enters this path. Transitions and timing are those of the
// multi-stripe loop exactly.
func (c *Cache) readIOOneShard(io *IO, now time.Time, first, last int64, sequential bool) (time.Time, time.Duration) {
	s := c.shards[0]
	done := now
	s.mu.Lock()
	page := first
	for page <= last {
		p := s.consumeHitsLocked(page, last)
		if n := p - page; n > 0 {
			done = done.Add(time.Duration(n) * c.hitPageCost)
			page = p
			if page > last {
				break
			}
		}
		// Miss extent [page..missEnd].
		missStart := page
		missEnd := s.scanMissLocked(page+1, last) - 1
		nDemand := missEnd - missStart + 1
		s.stats.Misses += nDemand
		s.stats.BytesFromDisk += nDemand * c.cfg.PageSize
		diskDone, _ := io.backend.Access(done, simdisk.Request{
			Offset: missStart * c.cfg.PageSize,
			Length: nDemand * c.cfg.PageSize,
		})
		done = diskDone
		s.installRunLocked(c, io, done, missStart, missEnd, false, false, false, false)
		// Asynchronous read-ahead: queue the next window behind the
		// demand fetch (and behind the demand installs' eviction
		// write-backs, which the disk must service first). It occupies
		// the disk but is not charged to this read — later sequential
		// reads find the pages resident.
		if sequential && c.cfg.PrefetchPages > 0 {
			pfStart := missEnd + 1
			pfEnd := missEnd + int64(c.cfg.PrefetchPages)
			io.backend.Access(diskDone, simdisk.Request{
				Offset: pfStart * c.cfg.PageSize,
				Length: (pfEnd - pfStart + 1) * c.cfg.PageSize,
			})
			brought, _, _ := s.installRunLocked(c, io, diskDone, pfStart, pfEnd, false, true, false, false)
			if brought > 0 {
				s.stats.PrefetchedIn += brought
				s.stats.BytesFromDisk += brought * c.cfg.PageSize
			}
		}
		// Copy the demanded part of the run to the caller.
		done = done.Add(c.copyCost(nDemand * c.cfg.PageSize))
		page = missEnd + 1
	}
	s.mu.Unlock()
	return done, done.Sub(now)
}

// WriteIO simulates writing [offset, offset+length) on io's backend
// view. With write-behind the pages are dirtied in memory at copy cost;
// otherwise the data also goes straight to the backend. Bulk path: one
// lock acquisition per shard run, with eviction write-backs threaded
// through the running horizon exactly as the page-granular loop charges
// them.
func (c *Cache) WriteIO(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	if c.pageGranular {
		return c.writeIOPages(io, now, offset, length)
	}
	if length < 0 {
		length = 0
	}
	done := now
	first, last := c.pageRange(offset, length)
	if last < first {
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}
	page := first
	for page <= last {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		_, dc, dirtied, horizon := c.shards[si].installRun(c, io, done, page, runEnd, c.cfg.WriteBehind, false, true, true, 0)
		if horizon.After(done) {
			done = horizon // eviction write-back stalled us
		}
		if dirtied {
			c.maybeSignalWriteback(si, dc, done)
			if c.cfg.WritebackHighwater > 0 && dc >= c.cfg.WritebackHighwater {
				done = c.stallHighwater(si, done)
			}
		}
		page = runEnd + 1
	}
	done = done.Add(c.copyCost(length))
	if !c.cfg.WriteBehind {
		diskDone, _ := io.backend.Access(done, simdisk.Request{Offset: offset, Length: length, Write: true})
		s := c.shardOf(first)
		s.mu.Lock()
		s.stats.BytesToDisk += length
		s.mu.Unlock()
		done = diskDone
	}
	return done, done.Sub(now)
}
