// Bulk, run-granular cache operations: the hot data path.
//
// The page-granular path (touchHit / isResident / installPage, retained
// for the equivalence tests behind SetPageGranular) pays a full mutex
// round-trip, map lookup, LRU splice, and floating-point copy-cost
// division per 4 KB page — a warm 64 KB read is 16 lock acquisitions,
// and a miss run looks every page up twice. The bulk path partitions
// the page range into per-shard runs and processes each run under a
// single lock acquisition: one stripe hash per run, one batched hit
// count and LRU refresh, and the residency frontier returned from the
// lookup so miss runs are never probed twice. The warm loop charges the
// per-page copy cost precomputed at New, so it does integer adds only.
//
// Behavioral contract: the bulk path performs the same residency, LRU,
// eviction, and statistics transitions in the same order as the
// page-granular path, so simulated timing is bit-identical —
// TestBulkMatchesPageGranular (and tracesim's equivalence test) pin it.
package buffercache

import (
	"runtime"
	"time"

	"repro/internal/simdisk"
)

// shardRunEnd returns the last page of the maximal run [page..last]
// whose pages all hash to shard si. With a single stripe that is the
// whole range; with more, fibonacci hashing scatters consecutive pages,
// so runs shrink toward single pages (locking then is the scalability
// mechanism, not batching).
func (c *Cache) shardRunEnd(si int, page, last int64) int64 {
	if c.shardShift == 0 {
		return last
	}
	end := page
	for end < last && c.shardIndex(end+1) == si {
		end++
	}
	return end
}

// lookupRun consumes the leading resident pages of [from..to] (all in
// shard s) as hits — batched statistics, per-page LRU refresh in
// ascending order, exactly the transitions touchHit performs — then
// scans the non-resident extent that follows, all under one lock
// acquisition. It returns the number of leading hits, the last page of
// the following miss extent (missEnd < from+nHits when there is none),
// and whether the extent ran off the end of the run still missing (the
// caller then extends it into the next shard run).
func (s *shard) lookupRun(from, to int64) (nHits, missEnd int64, open bool) {
	s.mu.Lock()
	p := from
	var pfHits int64
	for p <= to {
		f, ok := s.resident[p]
		if !ok {
			break
		}
		if f.prefetched {
			pfHits++
			f.prefetched = false
		}
		s.lru.moveToFront(f)
		p++
	}
	nHits = p - from
	if nHits > 0 {
		s.stats.Hits += nHits
		s.stats.PrefetchHits += pfHits
	}
	if p > to {
		s.mu.Unlock()
		return nHits, p - 1, false
	}
	for p <= to {
		if _, ok := s.resident[p]; ok {
			break
		}
		p++
	}
	s.mu.Unlock()
	return nHits, p - 1, p > to
}

// scanMissRun extends a miss run into [from..to] (all in shard s): it
// returns the last consecutive non-resident page (from-1 when the first
// page is resident) and whether the scan ran off the end of the run
// still missing. One lock acquisition replaces a per-page isResident
// probe.
func (s *shard) scanMissRun(from, to int64) (missEnd int64, open bool) {
	s.mu.Lock()
	p := from
	for p <= to {
		if _, ok := s.resident[p]; ok {
			break
		}
		p++
	}
	s.mu.Unlock()
	return p - 1, p > to
}

// installRun makes [from..to] (all in shard s, ascending) resident
// under one lock acquisition, with the same per-page transitions as
// installPage: already-resident pages are touched (and dirtied when
// asked), missing pages take a frame from the stripe's free list, then
// evict the stripe's own LRU, and as a last resort drop the lock to
// harvest or reclaim from a sibling. When advance is set each eviction
// is charged at the running write-back horizon (the write path's
// accounting); otherwise every eviction is charged at now (the read
// path's). It returns the count of freshly installed pages, the
// stripe's dirty count after the run, whether any page transitioned
// clean->dirty, and the final horizon.
func (s *shard) installRun(c *Cache, io *IO, now time.Time, from, to int64, dirty, prefetched, count, advance bool) (fresh int64, dirtyCount int, dirtied bool, horizon time.Time) {
	horizon = now
	s.mu.Lock()
	for p := from; p <= to; p++ {
		for {
			if f, ok := s.resident[p]; ok {
				if count {
					s.stats.Hits++
				}
				if dirty && !f.dirty {
					f.dirty = true
					s.dirty++
					s.noteDirtyLocked(c, p, f)
					dirtied = true
				}
				s.lru.moveToFront(f)
				break
			}
			// used == NumPages means every frame in the budget is resident:
			// the pool and every stripe's free list are provably empty, so
			// the steady eviction state skips the pool lock and the sibling
			// TryLock sweep entirely.
			var f *frame
			if c.used.Load() < int64(c.cfg.NumPages) {
				if f = c.popFreeLocked(s); f == nil {
					f = c.harvestFreeLocked(s)
				}
			}
			if f == nil {
				if victim := s.lru.back(); victim != nil {
					at := now
					if advance {
						at = horizon
					}
					done := s.evictLocked(c, io, at, victim)
					if done.After(horizon) {
						horizon = done
					}
					f = victim
				}
			}
			if f == nil {
				// Budget exhausted and nothing local to evict: the sibling
				// harvest/reclaim takes other stripes' locks, so drop ours
				// and retry this page, as installPage does.
				s.mu.Unlock()
				at := now
				if advance {
					at = horizon
				}
				done, ok := c.reclaimFrame(io, at)
				if done.After(horizon) {
					horizon = done
				}
				if !ok {
					runtime.Gosched() // frames are in flight; let holders finish
				}
				s.mu.Lock()
				continue
			}
			if count {
				s.stats.Misses++
			}
			f.page = p
			f.dirty = dirty
			f.prefetched = prefetched
			s.resident[p] = f
			s.lru.pushFront(f)
			s.size.Add(1)
			c.used.Add(1)
			if dirty {
				s.dirty++
				s.noteDirtyLocked(c, p, f)
				dirtied = true
			}
			fresh++
			break
		}
	}
	dirtyCount = s.dirty
	s.mu.Unlock()
	return fresh, dirtyCount, dirtied, horizon
}

// installRange installs [first..last] by per-shard runs, returning the
// number of freshly installed pages and the furthest eviction horizon.
// The install order, and so every eviction decision, matches the
// page-granular loop page for page.
func (c *Cache) installRange(io *IO, now time.Time, first, last int64, dirty, prefetched, count, advance bool) (fresh int64, horizon time.Time) {
	horizon = now
	page := first
	for page <= last {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		at := now
		if advance {
			at = horizon
		}
		n, dc, dirtied, h := c.shards[si].installRun(c, io, at, page, runEnd, dirty, prefetched, count, advance)
		fresh += n
		if h.After(horizon) {
			horizon = h
		}
		if dirtied {
			c.maybeSignalWriteback(si, dc, at)
		}
		page = runEnd + 1
	}
	return fresh, horizon
}

// ReadIO simulates reading [offset, offset+length) on io's backend view
// and stream state. Resident pages cost memory copies; missing pages are
// fetched from the backend in contiguous runs, optionally extended by
// the read-ahead window when the access pattern is sequential. This is
// the bulk hot path: warm spans cost one lock acquisition per shard run
// and integer time arithmetic only.
func (c *Cache) ReadIO(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	if c.pageGranular {
		return c.readIOPages(io, now, offset, length)
	}
	if length < 0 {
		length = 0
	}
	first, last := c.pageRange(offset, length)
	if last < first { // zero-length read: lookup cost only
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}

	sequential := io.noteRead(first, last)

	done := now
	page := first
	for page <= last {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		nHits, missEnd, open := c.shards[si].lookupRun(page, runEnd)
		if nHits > 0 {
			done = done.Add(time.Duration(nHits) * c.hitPageCost)
			page += nHits
			if page > runEnd {
				continue // run fully warm; next shard run
			}
		}
		// Miss run starting at page; extend across shard runs while the
		// frontier keeps missing, one locked scan per run.
		missStart := page
		for open && missEnd < last {
			nsi := c.shardIndex(missEnd + 1)
			nEnd := c.shardRunEnd(nsi, missEnd+1, last)
			var e int64
			e, open = c.shards[nsi].scanMissRun(missEnd+1, nEnd)
			if e < missEnd+1 {
				break
			}
			missEnd = e
		}
		nDemand := missEnd - missStart + 1
		rs := c.shardOf(missStart)
		rs.mu.Lock()
		rs.stats.Misses += nDemand
		rs.stats.BytesFromDisk += nDemand * c.cfg.PageSize
		rs.mu.Unlock()
		diskDone, _ := io.backend.Access(done, simdisk.Request{
			Offset: missStart * c.cfg.PageSize,
			Length: nDemand * c.cfg.PageSize,
		})
		done = diskDone
		c.installRange(io, done, missStart, missEnd, false, false, false, false)
		// Asynchronous read-ahead: queue the next window behind the
		// demand fetch. It occupies the disk but is not charged to this
		// read — later sequential reads find the pages resident.
		if sequential && c.cfg.PrefetchPages > 0 {
			pfStart := missEnd + 1
			pfEnd := missEnd + int64(c.cfg.PrefetchPages)
			io.backend.Access(diskDone, simdisk.Request{
				Offset: pfStart * c.cfg.PageSize,
				Length: (pfEnd - pfStart + 1) * c.cfg.PageSize,
			})
			brought, _ := c.installRange(io, diskDone, pfStart, pfEnd, false, true, false, false)
			if brought > 0 {
				rs.mu.Lock()
				rs.stats.PrefetchedIn += brought
				rs.stats.BytesFromDisk += brought * c.cfg.PageSize
				rs.mu.Unlock()
			}
		}
		// Copy the demanded part of the run to the caller.
		done = done.Add(c.copyCost(nDemand * c.cfg.PageSize))
		page = missEnd + 1
	}
	return done, done.Sub(now)
}

// WriteIO simulates writing [offset, offset+length) on io's backend
// view. With write-behind the pages are dirtied in memory at copy cost;
// otherwise the data also goes straight to the backend. Bulk path: one
// lock acquisition per shard run, with eviction write-backs threaded
// through the running horizon exactly as the page-granular loop charges
// them.
func (c *Cache) WriteIO(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	if c.pageGranular {
		return c.writeIOPages(io, now, offset, length)
	}
	if length < 0 {
		length = 0
	}
	done := now
	first, last := c.pageRange(offset, length)
	if last < first {
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}
	page := first
	for page <= last {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		_, dc, dirtied, horizon := c.shards[si].installRun(c, io, done, page, runEnd, c.cfg.WriteBehind, false, true, true)
		if horizon.After(done) {
			done = horizon // eviction write-back stalled us
		}
		if dirtied {
			c.maybeSignalWriteback(si, dc, done)
			if c.cfg.WritebackHighwater > 0 && dc >= c.cfg.WritebackHighwater {
				done = c.stallHighwater(si, done)
			}
		}
		page = runEnd + 1
	}
	done = done.Add(c.copyCost(length))
	if !c.cfg.WriteBehind {
		diskDone, _ := io.backend.Access(done, simdisk.Request{Offset: offset, Length: length, Write: true})
		s := c.shardOf(first)
		s.mu.Lock()
		s.stats.BytesToDisk += length
		s.mu.Unlock()
		done = diskDone
	}
	return done, done.Sub(now)
}
