// Background write-back: one flusher per cache stripe draining that
// stripe's dirty set through the backend's command queue.
//
// The model follows the OS page-cache writer threads: dirty pages
// accumulate until a stripe crosses Config.WritebackThreshold, at which
// point the stripe's flusher goroutine collects the dirty set, marks the
// pages clean (the writes are now owned by the disk queue), and submits
// them as one scheduled batch — simdisk.ServeBatch with the configured
// SSTF/SCAN/FCFS policy when the backend supports it, sequential
// accesses otherwise. Batches are fed to the scheduler in raw arrival
// (dirtying) order, the stripe's dirtyOrder queue: the policy does the
// ordering, so FCFS genuinely services first-dirtied-first while
// SSTF/SCAN reorder by seek distance — the ablation separates instead of
// every policy receiving a pre-sorted sweep. The simulated time of each
// drain is charged to the stripe's own virtual-clock lane, never to the
// writer that tripped the threshold: write-back overlaps foreground
// work, which is exactly what distinguishes it from the flush-on-close
// paths (Flush, FlushRange) that bill the caller. The one exception is
// the optional dirty-page high-water mark (Config.WritebackHighwater):
// a writer that saturates a stripe's dirty set is stalled until the
// stripe drains, modelling pdflush throttling.
package buffercache

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/simdisk"
)

// BatchBackend is the optional backend capability write-back drains
// prefer: scheduling a whole pending queue in one policy-ordered batch.
// Both *simdisk.Disk and *simdisk.Array implement it.
type BatchBackend interface {
	Backend
	ServeBatch(now time.Time, reqs []simdisk.Request, policy simdisk.SchedPolicy) ([]simdisk.BatchResult, time.Time)
}

// writeback is the per-cache background flush subsystem.
type writeback struct {
	c *Cache

	// lanes holds one virtual clock per stripe: the simulated timeline
	// background flushing occupies. Drains advance these lanes, so
	// write-back time merges into an aggregate via max (overlap), not by
	// stalling foreground clocks.
	lanes []*clock.VirtualClock
	// mus serializes drains of the same stripe (flusher vs Quiesce).
	mus []sync.Mutex
	// sig wakes stripe i's flusher; the buffered slot coalesces bursts.
	sig []chan time.Time

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newWriteback builds the subsystem and starts one flusher goroutine per
// stripe. Callers stop them with Cache.Close.
func newWriteback(c *Cache) *writeback {
	wb := &writeback{
		c:     c,
		lanes: make([]*clock.VirtualClock, len(c.shards)),
		mus:   make([]sync.Mutex, len(c.shards)),
		sig:   make([]chan time.Time, len(c.shards)),
		stop:  make(chan struct{}),
	}
	for i := range wb.lanes {
		wb.lanes[i] = clock.NewVirtualClock(time.Time{})
		wb.sig[i] = make(chan time.Time, 1)
	}
	wb.wg.Add(len(c.shards))
	for i := range c.shards {
		go wb.flusherLoop(i)
	}
	return wb
}

// stopAll terminates the flusher goroutines and waits for them.
func (wb *writeback) stopAll() {
	wb.stopOnce.Do(func() { close(wb.stop) })
	wb.wg.Wait()
}

// flusherLoop is stripe si's background flusher: wait for a signal,
// drain the stripe, repeat.
func (wb *writeback) flusherLoop(si int) {
	defer wb.wg.Done()
	for {
		select {
		case at := <-wb.sig[si]:
			wb.drainShard(si, at)
		case <-wb.stop:
			return
		}
	}
}

// maybeSignalWriteback wakes shard si's flusher when its dirty set has
// reached the threshold. The send never blocks: a full signal slot means
// a drain is already pending, which will pick this page up too.
func (c *Cache) maybeSignalWriteback(si, dirtyCount int, now time.Time) {
	if c.wb == nil || dirtyCount < c.cfg.WritebackThreshold {
		return
	}
	select {
	case c.wb.sig[si] <- now:
	default:
	}
}

// SignalWriteback nudges every stripe's flusher to drain whatever is
// dirty, regardless of thresholds — the async half of a close: the
// caller hands its dirty pages to the background queue and moves on.
// No-op without write-back.
func (c *Cache) SignalWriteback(now time.Time) {
	if c.wb == nil {
		return
	}
	for si := range c.shards {
		select {
		case c.wb.sig[si] <- now:
		default:
		}
	}
}

// drainShard collects stripe si's dirty pages in arrival (dirtying)
// order, marks them clean, and submits them to the disk queue as
// policy-ordered batches on the stripe's write-back lane, starting no
// earlier than at. It returns the number of pages retired and the
// lane's completion horizon.
func (wb *writeback) drainShard(si int, at time.Time) (int, time.Time) {
	wb.mus[si].Lock()
	defer wb.mus[si].Unlock()
	c := wb.c
	s := c.shards[si]
	lane := wb.lanes[si]
	total := 0
	for {
		s.mu.Lock()
		want := s.dirty
		if c.cfg.WritebackBatch > 0 && want > c.cfg.WritebackBatch {
			want = c.cfg.WritebackBatch
		}
		pages := make([]int64, 0, want)
		// Consume the arrival queue front to back, dropping stale entries
		// (pages cleaned or evicted since they were queued). Stale entries
		// are consumed even once the batch is full — and in particular when
		// want is 0 — so a drain always trims the queue up to its first
		// live entry; a stripe whose dirty pages all got cleaned by
		// eviction or flush cannot pin an ever-growing queue.
		consumed := 0
		for consumed < len(s.dirtyOrder) {
			e := s.dirtyOrder[consumed]
			f := s.table.get(e.page)
			if f == nil || !f.inWBQueue || f.wbSeq != e.seq {
				consumed++
				continue
			}
			if !f.dirty {
				f.inWBQueue = false
				consumed++
				continue
			}
			if len(pages) >= want {
				break
			}
			f.inWBQueue = false
			f.dirty = false
			s.dirty--
			pages = append(pages, e.page)
			consumed++
		}
		kept := copy(s.dirtyOrder, s.dirtyOrder[consumed:])
		s.dirtyOrder = s.dirtyOrder[:kept]
		if n := len(pages); n > 0 {
			s.stats.DirtyFlushes += int64(n)
			s.stats.WritebackPages += int64(n)
			s.stats.WritebackBatches++
			s.stats.BytesToDisk += int64(n) * c.cfg.PageSize
		}
		s.mu.Unlock()
		if len(pages) == 0 {
			return total, lane.Now()
		}
		total += len(pages)

		reqs := make([]simdisk.Request, len(pages))
		for i, page := range pages {
			reqs[i] = simdisk.Request{
				Offset: page * c.cfg.PageSize,
				Length: c.cfg.PageSize,
				Write:  true,
			}
		}
		start := clock.MaxTime(lane.Now(), at)
		var end time.Time
		if bb, ok := c.wbBackend.(BatchBackend); ok {
			_, end = bb.ServeBatch(start, reqs, c.cfg.WritebackPolicy)
		} else {
			// No batch scheduler: submit the queue in arrival order,
			// contiguous spans as single chained runs — the same writes
			// at the same completion-chained times as the per-request
			// loop this replaces.
			end = start
			for i := 0; i < len(reqs); {
				j := i + 1
				for j < len(reqs) && reqs[j].Length == reqs[i].Length &&
					reqs[j].Offset == reqs[j-1].Offset+reqs[j-1].Length {
					j++
				}
				end = backendRun(c.wbBackend, end, simdisk.Run{
					Offset: reqs[i].Offset,
					Length: reqs[i].Length,
					Count:  int64(j - i),
					Write:  true,
					Chain:  true,
				})
				i = j
			}
		}
		lane.Set(end)
	}
}

// stallHighwater models pdflush throttling: the foreground writer that
// pushed stripe si's dirty set to the high-water mark synchronously
// waits for the stripe to drain through the background write-back
// queue, and its clock advances to the drain's completion horizon. The
// drain itself still runs on the stripe's write-back lane (a racing
// flusher simply gets there first and the writer inherits its horizon).
func (c *Cache) stallHighwater(si int, now time.Time) time.Time {
	_, end := c.wb.drainShard(si, now)
	s := c.shards[si]
	s.mu.Lock()
	s.stats.WritebackThrottles++
	s.mu.Unlock()
	if end.After(now) {
		return end
	}
	return now
}

// Quiesce drains every stripe's dirty set through the write-back lanes,
// looping until the cache holds no dirty page, and returns the furthest
// write-back horizon. Callers use it at the end of a run (fsim's Settle)
// so all buffered writes reach the modeled disk; foreground lanes are
// not charged. Without write-back it is a no-op returning now.
func (c *Cache) Quiesce(now time.Time) time.Time {
	if c.wb == nil {
		return now
	}
	for {
		drained := 0
		for si := range c.shards {
			n, _ := c.wb.drainShard(si, now)
			drained += n
		}
		if drained == 0 && c.DirtyPages() == 0 {
			break
		}
	}
	horizon := now
	for _, lane := range c.wb.lanes {
		horizon = clock.MaxTime(horizon, lane.Now())
	}
	return horizon
}

// WritebackHorizon returns the furthest simulated time any stripe's
// background flushing has reached (zero time when write-back is off or
// idle): the end-to-end completion horizon of the buffered writes.
func (c *Cache) WritebackHorizon() time.Time {
	var horizon time.Time
	if c.wb == nil {
		return horizon
	}
	for i := range c.wb.lanes {
		c.wb.mus[i].Lock()
		horizon = clock.MaxTime(horizon, c.wb.lanes[i].Now())
		c.wb.mus[i].Unlock()
	}
	return horizon
}
