// Open-addressing page table: the per-shard residency index.
//
// Each shard used to map page numbers to frames through a Go map, which
// meant every cold-page install paid a runtime map assign (hashing,
// bucket walk, possible bucket allocation) and every eviction a map
// delete — the dominant non-disk cost of the miss/evict path once the
// warm path went run-granular. This table replaces it with the classic
// allocation-free design real kernels use for buffer lookup structures:
//
//   - power-of-two slot array sized from the shard's share of the frame
//     budget, probed linearly from a fibonacci-hashed home slot;
//   - deletion by backshift (Knuth's algorithm R): the probe chain is
//     compacted in place, so there are no tombstones and lookups never
//     degrade under install/evict churn;
//   - every frame stores its current slot index, making removal O(1) to
//     locate — no lookup before delete;
//   - slots hold only the *frame (the key lives in frame.page), so the
//     table is one pointer per slot and growth is a rare rehash, never a
//     per-operation allocation. Steady-state install/evict traffic — the
//     cache at full budget recycling frames — allocates nothing.
//
// Equivalence with the map it replaces is pinned by a property test that
// replays random insert/delete/lookup interleavings (including clustered
// keys that force long probe chains and backshift cascades) against a
// map[int64]*frame reference model, and by a fuzz target over op strings.
package buffercache

// pageTable maps page numbers to resident frames by open addressing.
// The zero value is unusable; call init first. Not safe for concurrent
// use — it lives under its shard's mutex.
type pageTable struct {
	slots []*frame
	shift uint // home slot = hash >> shift; len(slots) == 1<<(64-shift)
	used  int
}

// pageTableFor sizes a table for a shard expected to hold about budget
// frames: the smallest power of two keeping the load factor at or below
// one half at that occupancy (minimum 16 slots). Capacity migrates
// between shards under pressure, so the table grows by rehash if this
// shard outruns its share.
func (t *pageTable) init(budget int) {
	size := 16
	for size < 2*budget {
		size <<= 1
	}
	t.grow(size)
}

// hashSlot returns the home slot for page: fibonacci hashing (the same
// multiplier the cache stripes with), taking the top bits so clustered
// page numbers scatter.
func (t *pageTable) hashSlot(page int64) int {
	return int((uint64(page) * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the frame holding page, or nil.
func (t *pageTable) get(page int64) *frame {
	mask := len(t.slots) - 1
	for i := t.hashSlot(page); ; i = (i + 1) & mask {
		f := t.slots[i]
		if f == nil {
			return nil
		}
		if f.page == page {
			return f
		}
	}
}

// put inserts f under its current f.page, which must not be resident.
// The frame learns its slot; a table past half load doubles first, so
// probe chains stay short under any shard imbalance.
func (t *pageTable) put(f *frame) {
	if 2*(t.used+1) > len(t.slots) {
		t.grow(2 * len(t.slots))
	}
	mask := len(t.slots) - 1
	i := t.hashSlot(f.page)
	for t.slots[i] != nil {
		i = (i + 1) & mask
	}
	t.slots[i] = f
	f.slot = int32(i)
	t.used++
}

// del removes f, located in O(1) through its stored slot, and compacts
// the probe chain behind it by backshift so no tombstone is left: each
// following entry whose home slot does not lie cyclically inside the
// gap..entry interval is moved into the gap (updating its stored slot)
// and the scan continues from its old position.
func (t *pageTable) del(f *frame) {
	mask := len(t.slots) - 1
	i := int(f.slot)
	t.slots[i] = nil
	t.used--
	for j := (i + 1) & mask; ; j = (j + 1) & mask {
		g := t.slots[j]
		if g == nil {
			return
		}
		home := t.hashSlot(g.page)
		// g can fill the gap at i iff its home slot is not cyclically
		// within (i, j] — otherwise moving it would break its own chain.
		if (j-home)&mask >= (j-i)&mask {
			t.slots[i] = g
			g.slot = int32(i)
			t.slots[j] = nil
			i = j
		}
	}
}

// len returns the number of resident entries.
func (t *pageTable) len() int { return t.used }

// reset empties the table, keeping the slot array. The stale slot fields
// of the dropped frames are harmless: slot is only meaningful while a
// frame is resident, and put refreshes it.
func (t *pageTable) reset() {
	clear(t.slots)
	t.used = 0
}

// grow rehashes into a slot array of the given power-of-two size.
// Rehashing preserves every frame and refreshes its stored slot.
func (t *pageTable) grow(size int) {
	old := t.slots
	t.slots = make([]*frame, size)
	shift := uint(64)
	for 1<<(64-shift) < size {
		shift--
	}
	t.shift = shift
	t.used = 0
	for _, f := range old {
		if f != nil {
			t.put(f)
		}
	}
}

// each calls fn for every resident frame. The iteration order is the
// slot order — callers that need a deterministic order (Flush's elevator
// sweep) sort what they collect, exactly as they did over the Go map.
func (t *pageTable) each(fn func(f *frame)) {
	for _, f := range t.slots {
		if f != nil {
			fn(f)
		}
	}
}
