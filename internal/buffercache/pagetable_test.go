package buffercache

import (
	"testing"
)

// ptModel drives a pageTable and a map[int64]*frame reference side by
// side and fails the moment they disagree. Frames are owned by the
// model, mirroring how shards own them for the table.
type ptModel struct {
	t     *testing.T
	table pageTable
	ref   map[int64]*frame
	free  []*frame
}

func newPTModel(t *testing.T, budget int) *ptModel {
	m := &ptModel{t: t, ref: make(map[int64]*frame)}
	m.table.init(budget)
	return m
}

func (m *ptModel) frame() *frame {
	if n := len(m.free); n > 0 {
		f := m.free[n-1]
		m.free = m.free[:n-1]
		return f
	}
	return &frame{page: -1}
}

func (m *ptModel) insert(page int64) {
	if _, ok := m.ref[page]; ok {
		return // residency is unique by construction in the shard
	}
	f := m.frame()
	f.page = page
	m.table.put(f)
	m.ref[page] = f
}

func (m *ptModel) remove(page int64) {
	f, ok := m.ref[page]
	if !ok {
		return
	}
	got := m.table.get(page)
	if got != f {
		m.t.Fatalf("pre-delete lookup(%d) = %v, want frame %p", page, got, f)
	}
	m.table.del(f)
	delete(m.ref, page)
	f.page = -1
	m.free = append(m.free, f)
}

func (m *ptModel) check(probes ...int64) {
	if m.table.len() != len(m.ref) {
		m.t.Fatalf("table len %d, reference %d", m.table.len(), len(m.ref))
	}
	for _, page := range probes {
		got := m.table.get(page)
		want := m.ref[page]
		if got != want {
			m.t.Fatalf("lookup(%d) = %p, reference %p", page, got, want)
		}
		if got != nil && m.table.slots[got.slot] != got {
			m.t.Fatalf("frame for page %d stores slot %d, but that slot holds %p",
				page, got.slot, m.table.slots[got.slot])
		}
	}
}

// checkAll verifies every reference entry and every stored slot index.
func (m *ptModel) checkAll() {
	m.check()
	for page, f := range m.ref {
		if got := m.table.get(page); got != f {
			m.t.Fatalf("lookup(%d) = %p, reference %p", page, got, f)
		}
		if m.table.slots[f.slot] != f {
			m.t.Fatalf("page %d stores slot %d, but that slot holds %p", page, f.slot, m.table.slots[f.slot])
		}
	}
}

// TestPageTableMatchesMapReference replays deterministic pseudo-random
// insert/delete/lookup interleavings against the map reference model,
// over table sizes small enough to stay near the load-factor limit and
// key distributions that collide (multiples of the table size hash near
// each other, forcing long probe chains and backshift cascades).
func TestPageTableMatchesMapReference(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int
		keyOf  func(r int64) int64
	}{
		{"uniform", 64, func(r int64) int64 { return r & 0x3FF }},
		// Dense sequential pages: the cache's common case.
		{"sequential", 32, func(r int64) int64 { return r & 0x7F }},
		// Clustered: strided keys that collapse onto few home slots, so
		// deletions backshift across long runs.
		{"clustered", 16, func(r int64) int64 { return (r & 0x1F) << 32 }},
		// Tiny table under churn: grow and wraparound paths.
		{"tiny", 1, func(r int64) int64 { return r & 0xFF }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := newPTModel(t, tc.budget)
			seed := int64(0x9E3779B9)
			next := func() int64 { // xorshift: deterministic, no math/rand dep
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				if seed < 0 {
					return -seed
				}
				return seed
			}
			for i := 0; i < 20000; i++ {
				r := next()
				page := tc.keyOf(next())
				switch r % 3 {
				case 0, 1:
					m.insert(page)
				case 2:
					m.remove(page)
				}
				m.check(page, tc.keyOf(next()))
				if i%997 == 0 {
					m.checkAll()
				}
			}
			m.checkAll()
		})
	}
}

// TestPageTableBackshiftClusters exercises Knuth's deletion directly: a
// block of keys that all hash to neighboring home slots, deleted from
// the front, middle, and back, must leave every survivor reachable with
// a fresh slot index.
func TestPageTableBackshiftClusters(t *testing.T) {
	m := newPTModel(t, 8) // 16 slots
	// 10 keys in one cluster region: probe chains overlap heavily.
	keys := make([]int64, 10)
	for i := range keys {
		keys[i] = int64(i) << 32 // clustered under the fibonacci hash's top bits
		m.insert(keys[i])
	}
	m.checkAll()
	for _, i := range []int{0, 5, 9, 3, 7, 1} {
		m.remove(keys[i])
		m.checkAll()
	}
	// Reinsert into the compacted chains.
	for _, k := range keys {
		m.insert(k)
	}
	m.checkAll()
}

// TestPageTableSteadyStateZeroAllocs pins the install/evict cycle at
// zero allocations once the table has reached its working size.
func TestPageTableSteadyStateZeroAllocs(t *testing.T) {
	m := newPTModel(t, 64)
	for i := int64(0); i < 64; i++ {
		m.insert(i)
	}
	page := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		m.remove(page)
		m.insert(page + 64)
		page++
	})
	if allocs != 0 {
		t.Fatalf("steady-state insert/delete allocates %.1f objects/op, want 0", allocs)
	}
}

// FuzzPageTable interprets the fuzz input as an op stream (two bytes per
// op: action and key) against the reference model. The property test
// above covers structured interleavings; the fuzzer hunts for sequences
// neither of us thought of.
func FuzzPageTable(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 2, 0, 1})
	f.Add([]byte{0, 0x10, 0, 0x20, 0, 0x30, 1, 0x20, 0, 0x40, 1, 0x10})
	seed := make([]byte, 0, 64)
	for i := 0; i < 32; i++ {
		seed = append(seed, byte(i%3), byte(i*37))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := newPTModel(t, 4)
		for i := 0; i+1 < len(data); i += 2 {
			// Spread the one-byte key over a clustered 64-bit space so
			// collisions are common but keys stay distinct.
			page := int64(data[i+1]&0x3F) << 32
			switch data[i] % 3 {
			case 0:
				m.insert(page)
			case 1:
				m.remove(page)
			case 2:
				m.check(page)
			}
		}
		m.checkAll()
	})
}

// TestPageTableGrowth floods one table far past its initial sizing (a
// hash-hot shard absorbing the whole budget) and then drains it: growth
// rehashes must preserve every entry and slot index.
func TestPageTableGrowth(t *testing.T) {
	m := newPTModel(t, 4) // starts at 16 slots
	for i := int64(0); i < 3000; i++ {
		m.insert(i * 7)
	}
	m.checkAll()
	if got := m.table.len(); got != 3000 {
		t.Fatalf("table len %d after 3000 inserts", got)
	}
	for i := int64(0); i < 3000; i += 2 {
		m.remove(i * 7)
	}
	m.checkAll()
}

// TestPageTableSizing pins the budget-derived capacity rule: the table
// holds its expected occupancy at a load factor of one half.
func TestPageTableSizing(t *testing.T) {
	var pt pageTable
	pt.init(4096)
	if got := len(pt.slots); got != 8192 {
		t.Fatalf("init(4096) sized %d slots, want 8192", got)
	}
	pt.init(1)
	if got := len(pt.slots); got != 16 {
		t.Fatalf("init(1) sized %d slots, want the 16-slot floor", got)
	}
}
