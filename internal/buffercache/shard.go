package buffercache

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simdisk"
)

// shard is one lock stripe of the cache: a mutex, the open-addressing
// page table for the pages that hash here, an LRU list, a dirty-page
// count (the shard's dirty set), and this stripe's slice of the
// statistics. Shards never take each other's locks; cross-shard work
// (frame rebalancing, aggregation) goes through the cache's global frame
// pool and the per-shard atomic gauges.
type shard struct {
	mu    sync.Mutex
	table pageTable
	lru   lruList
	dirty int   // dirty-set size; guarded by mu
	stats Stats // this stripe's counters; guarded by mu
	// free is this stripe's slice of the frame pool, refilled in batches
	// from the cache-global pool so installs on different stripes stop
	// serializing on the pool mutex. Guarded by mu.
	free []*frame
	// dirtyOrder is the arrival (dirtying) order of this stripe's dirty
	// pages — the raw queue background write-back feeds to the disk
	// scheduler, so FCFS means "first dirtied, first written" rather than
	// a sorted sweep. Entries go stale when a page is cleaned or evicted
	// outside a drain; drains and compaction drop them, matching frame to
	// entry by wbSeq generation. Guarded by mu.
	dirtyOrder []wbEntry
	// wbSeq numbers this stripe's dirtying events; each queue entry and
	// its frame carry the generation, so an entry abandoned by clean or
	// eviction never matches the page's next dirtying. Guarded by mu.
	wbSeq uint64
	// victims is the per-run eviction scratch: the dirty pages
	// installRunLocked retires in one pass, recorded in eviction order so
	// the write-backs can be billed afterwards as contiguous disk runs.
	// Reused run to run, so the steady-state evict path allocates
	// nothing. Guarded by mu.
	victims []int64
	// gathered is the per-run frame scratch for batched installs,
	// likewise reused. Guarded by mu.
	gathered []*frame
	// size mirrors table.len() so the reclaim path can pick the fullest
	// shard without taking every lock.
	size atomic.Int32
}

// poolRefillBatch is how many frames one exhausted stripe pulls from the
// global pool at a time: large enough to amortize the pool mutex out of
// miss storms, small enough that the frames a stripe strands in its
// local list stay a sliver of the budget (reclaimFrame harvests them
// back under pressure).
const poolRefillBatch = 32

// wbEntry is one dirtying event in a stripe's arrival queue: the page
// and the generation its frame was stamped with at enqueue time.
type wbEntry struct {
	page int64
	seq  uint64
}

// noteDirtyLocked records page p (frame f) in the stripe's dirty-arrival
// queue for background write-back. The caller holds s.mu and has just
// transitioned f clean->dirty. Without write-back the queue is dead
// weight, so it is not maintained.
func (s *shard) noteDirtyLocked(c *Cache, p int64, f *frame) {
	if c.wb == nil || f.inWBQueue {
		return
	}
	f.inWBQueue = true
	s.wbSeq++
	f.wbSeq = s.wbSeq
	s.dirtyOrder = append(s.dirtyOrder, wbEntry{page: p, seq: s.wbSeq})
	// Drains only trim the queue up to its first live entry, so entries
	// gone stale behind a page that sits dirty below the drain threshold
	// would otherwise accumulate for as long as traffic dirties and
	// evicts pages. Live entries == s.dirty, so once the queue outgrows
	// the dirty set by 4x (+slack for tiny sets), compact; the growth
	// needed between compactions keeps the scan amortized O(1) per note.
	if len(s.dirtyOrder) > 4*s.dirty+16 {
		s.compactWBQueueLocked()
	}
}

// compactWBQueueLocked drops the stale entries of the dirty-arrival
// queue in place, preserving the order of live ones — exactly the
// transitions a drain performs when it reaches them, with no timing
// charge. The caller holds s.mu.
func (s *shard) compactWBQueueLocked() {
	kept := s.dirtyOrder[:0]
	for _, e := range s.dirtyOrder {
		f := s.table.get(e.page)
		if f == nil || !f.inWBQueue || f.wbSeq != e.seq {
			continue
		}
		if !f.dirty {
			f.inWBQueue = false
			continue
		}
		kept = append(kept, e)
	}
	s.dirtyOrder = kept
}

// evictLocked evicts victim (which must be linked in s) writing it back
// on io's backend if dirty, and returns the write-back completion time
// (== now when clean). The caller holds s.mu and owns the
// returned-to-free-state frame.
func (s *shard) evictLocked(c *Cache, io *IO, now time.Time, victim *frame) time.Time {
	s.lru.remove(victim)
	s.table.del(victim)
	s.size.Add(-1)
	c.used.Add(-1)
	s.stats.Evictions++
	done := now
	if victim.dirty {
		done = io.evictAccess(now, simdisk.Request{
			Offset: victim.page * c.cfg.PageSize,
			Length: c.cfg.PageSize,
			Write:  true,
		})
		s.dirty--
		s.stats.DirtyFlushes++
		s.stats.BytesToDisk += c.cfg.PageSize
	}
	victim.page = -1
	victim.dirty = false
	victim.prefetched = false
	victim.inWBQueue = false
	return done
}

// retireLocked is the gather-pass half of a batched eviction: it unlinks
// victim from the LRU and the page table, keeps the dirty bookkeeping
// exact, and — when the victim was dirty — records its page in the
// shard's victim scratch for billVictimsLocked to bill afterwards.
// Clean victims need no record: they produce no disk traffic, and
// grouping dirty victims across a removed clean one changes nothing
// (the completion time of request i+1 at the group boundary equals its
// within-group value in both chaining modes). The residency gauges are
// untouched because the caller immediately reuses the frame for an
// install in the same critical section: the -1/+1 pairs the
// page-granular loop performs cancel exactly, and every gauge read in
// between sees the same value either way. The caller holds s.mu and
// owns the returned-to-free-state frame.
func (s *shard) retireLocked(c *Cache, victim *frame) {
	s.lru.remove(victim)
	s.table.del(victim)
	s.stats.Evictions++
	if victim.dirty {
		s.dirty--
		s.stats.DirtyFlushes++
		s.stats.BytesToDisk += c.cfg.PageSize
		s.victims = append(s.victims, victim.page)
	}
	victim.page = -1
	victim.dirty = false
	victim.prefetched = false
	victim.inWBQueue = false
}

// billVictimsLocked submits the write-backs of the dirty victims
// collected by retireLocked, in eviction order, each maximal contiguous
// span as one AccessRun. When advance is set each span starts at the
// running horizon (the write path's accounting, chained request to
// request); otherwise every request is issued at now (the read path's).
// The completion times and disk statistics are bit-identical to the
// per-victim Access calls evictLocked would have made. Clears the
// scratch; returns the furthest write-back horizon. The caller holds
// s.mu.
func (s *shard) billVictimsLocked(c *Cache, io *IO, now, horizon time.Time, advance bool) time.Time {
	for i := 0; i < len(s.victims); {
		j := i + 1
		for j < len(s.victims) && s.victims[j] == s.victims[j-1]+1 {
			j++
		}
		at := now
		if advance {
			at = horizon
		}
		done := io.evictRun(at, simdisk.Run{
			Offset: s.victims[i] * c.cfg.PageSize,
			Length: c.cfg.PageSize,
			Count:  int64(j - i),
			Write:  true,
			Chain:  advance,
		})
		if done.After(horizon) {
			horizon = done
		}
		i = j
	}
	s.victims = s.victims[:0]
	return horizon
}

// popFreeLocked takes a frame for shard s: from its local free list, or
// by pulling a batch from the global pool when the list is dry. Returns
// nil when both are empty (the budget is exhausted, or the remaining
// free frames are stranded on sibling stripes — reclaimFrame handles
// that). The caller holds s.mu.
func (c *Cache) popFreeLocked(s *shard) *frame {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		return f
	}
	c.poolMu.Lock()
	n := len(c.pool)
	if n == 0 {
		c.poolMu.Unlock()
		return nil
	}
	take := poolRefillBatch
	if take > n {
		take = n
	}
	moved := c.pool[n-take:]
	s.free = append(s.free, moved[:take-1]...)
	f := moved[take-1]
	c.pool = c.pool[:n-take]
	c.poolMu.Unlock()
	return f
}

// pushFree returns a frame to the global pool.
func (c *Cache) pushFree(f *frame) {
	c.poolMu.Lock()
	c.pool = append(c.pool, f)
	c.poolMu.Unlock()
}

// harvestFreeLocked pulls a free frame stranded on a sibling stripe's
// local list, preserving the global-pool invariant that a stripe only
// evicts once every frame in the budget is resident. Called with s.mu
// held; sibling locks are TryLock'd so two stripes harvesting each
// other cannot deadlock — a contended sibling is skipped (its frames
// are in active use, and the caller falls back to eviction). In a
// single-threaded run the TryLock always succeeds, so eviction
// decisions are exactly those of the pre-striping global pool.
func (c *Cache) harvestFreeLocked(s *shard) *frame {
	for _, t := range c.shards {
		if t == s || !t.mu.TryLock() {
			continue
		}
		if n := len(t.free); n > 0 {
			f := t.free[n-1]
			t.free = t.free[:n-1]
			t.mu.Unlock()
			return f
		}
		t.mu.Unlock()
	}
	return nil
}

// reclaimFrame frees a frame when the caller's stripe and the global
// pool are both exhausted: first harvest a frame stranded on a sibling
// stripe's local free list (so a frame is always found while any frame
// in the budget is free, exactly like the pre-striping global pool),
// then fall back to evicting from the most loaded stripe. Called with no
// shard lock held; the freed frame lands in the global pool for the
// caller to re-pop.
func (c *Cache) reclaimFrame(io *IO, now time.Time) (time.Time, bool) {
	if c.used.Load() < int64(c.cfg.NumPages) { // else every list is provably empty
		for _, t := range c.shards {
			t.mu.Lock()
			if n := len(t.free); n > 0 {
				f := t.free[n-1]
				t.free = t.free[:n-1]
				t.mu.Unlock()
				c.pushFree(f)
				return now, true
			}
			t.mu.Unlock()
		}
	}
	return c.reclaimRemote(io, now)
}

// reclaimRemote evicts the LRU page of the most loaded shard and returns
// the freed frame to the global pool. This is the rebalancing path: a
// hash-hot shard that outgrew its proportional share of the budget gives a
// frame back to whichever stripe is under pressure. It reports the
// write-back completion horizon and whether a frame was actually freed
// (false only when a racing Invalidate emptied the cache, or every frame
// is momentarily in flight between pool and shard).
func (c *Cache) reclaimRemote(io *IO, now time.Time) (time.Time, bool) {
	var victim *shard
	var max int32
	for _, t := range c.shards {
		if n := t.size.Load(); n > max {
			max, victim = n, t
		}
	}
	if victim == nil {
		return now, false
	}
	victim.mu.Lock()
	v := victim.lru.back()
	if v == nil { // raced with eviction/invalidate; caller rescans
		victim.mu.Unlock()
		return now, false
	}
	done := victim.evictLocked(c, io, now, v)
	victim.mu.Unlock()
	c.pushFree(v)
	return done, true
}

// touchHit reports whether page is resident; if so it records the hit and
// freshens the page's LRU position. Part of the retained page-granular
// reference path (see SetPageGranular); the bulk path uses lookupRun.
func (c *Cache) touchHit(page int64) bool {
	s := c.shardOf(page)
	s.mu.Lock()
	f := s.table.get(page)
	if f == nil {
		s.mu.Unlock()
		return false
	}
	s.stats.Hits++
	if f.prefetched {
		s.stats.PrefetchHits++
		f.prefetched = false
	}
	s.lru.moveToFront(f)
	s.mu.Unlock()
	return true
}

// isResident reports residency without touching LRU state or statistics;
// the page-granular read path uses it to extend miss runs across stripes.
func (c *Cache) isResident(page int64) bool {
	s := c.shardOf(page)
	s.mu.Lock()
	ok := s.table.get(page) != nil
	s.mu.Unlock()
	return ok
}

// installPage makes page resident in its shard, evicting under memory
// pressure: first the stripe's free frames, then this shard's own LRU,
// and as a last resort a harvest or reclaim from a sibling. Evictions
// performed on behalf of this install charge io's backend view. It
// reports whether the page was newly installed (false when it was
// already resident), whether it transitioned clean->dirty, and the
// completion horizon of any dirty write-back performed (== now when
// nothing had to be written back). When count is set the lookup is
// charged to the shard's hit/miss counters, as the write path requires.
// Dirtying a page past the write-back threshold signals the shard's
// background flusher. Part of the retained page-granular reference
// path; the bulk path uses installRun.
func (c *Cache) installPage(io *IO, now time.Time, page int64, dirty, prefetched, count bool) (fresh, dirtied bool, horizon time.Time) {
	si := c.shardIndex(page)
	s := c.shards[si]
	horizon = now
	for {
		s.mu.Lock()
		if f := s.table.get(page); f != nil {
			if count {
				s.stats.Hits++
			}
			if dirty && !f.dirty {
				f.dirty = true
				s.dirty++
				s.noteDirtyLocked(c, page, f)
				dirtied = true
			}
			dirtyCount := s.dirty
			s.lru.moveToFront(f)
			s.mu.Unlock()
			if dirtied {
				c.maybeSignalWriteback(si, dirtyCount, now)
			}
			return false, dirtied, horizon
		}
		// used == NumPages: every frame is resident, so skip the pool lock
		// and sibling sweep (they are provably empty) and evict directly.
		var f *frame
		if c.used.Load() < int64(c.cfg.NumPages) {
			if f = c.popFreeLocked(s); f == nil {
				f = c.harvestFreeLocked(s)
			}
		}
		if f == nil {
			if victim := s.lru.back(); victim != nil {
				done := s.evictLocked(c, io, now, victim)
				if done.After(horizon) {
					horizon = done
				}
				f = victim
			}
		}
		if f != nil {
			if count {
				s.stats.Misses++
			}
			f.page = page
			f.dirty = dirty
			f.prefetched = prefetched
			s.table.put(f)
			s.lru.pushFront(f)
			s.size.Add(1)
			c.used.Add(1)
			if dirty {
				s.dirty++
				s.noteDirtyLocked(c, page, f)
				dirtied = true
			}
			dirtyCount := s.dirty
			s.mu.Unlock()
			if dirty {
				c.maybeSignalWriteback(si, dirtyCount, now)
			}
			return true, dirtied, horizon
		}
		// Budget exhausted and this stripe holds nothing to evict: pull a
		// frame back from a sibling, then retry the install.
		s.mu.Unlock()
		done, ok := c.reclaimFrame(io, now)
		if done.After(horizon) {
			horizon = done
		}
		if !ok {
			runtime.Gosched() // frames are in flight; let holders finish
		}
	}
}
