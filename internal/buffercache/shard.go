package buffercache

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simdisk"
)

// shard is one lock stripe of the cache: a mutex, the resident map for the
// pages that hash here, an LRU list, a dirty-page count (the shard's dirty
// set), and this stripe's slice of the statistics. Shards never take each
// other's locks; cross-shard work (frame rebalancing, aggregation) goes
// through the cache's global frame pool and the per-shard atomic gauges.
type shard struct {
	mu       sync.Mutex
	resident map[int64]*frame
	lru      lruList
	dirty    int   // dirty-set size; guarded by mu
	stats    Stats // this stripe's counters; guarded by mu
	// size mirrors len(resident) so the reclaim path can pick the fullest
	// shard without taking every lock.
	size atomic.Int32
}

// evictLocked evicts victim (which must be linked in s) writing it back
// on io's backend if dirty, and returns the write-back completion time
// (== now when clean). The caller holds s.mu and owns the
// returned-to-free-state frame.
func (s *shard) evictLocked(c *Cache, io *IO, now time.Time, victim *frame) time.Time {
	s.lru.remove(victim)
	delete(s.resident, victim.page)
	s.size.Add(-1)
	c.used.Add(-1)
	s.stats.Evictions++
	done := now
	if victim.dirty {
		done, _ = io.backend.Access(now, simdisk.Request{
			Offset: victim.page * c.cfg.PageSize,
			Length: c.cfg.PageSize,
			Write:  true,
		})
		s.dirty--
		s.stats.DirtyFlushes++
		s.stats.BytesToDisk += c.cfg.PageSize
	}
	victim.page = -1
	victim.dirty = false
	victim.prefetched = false
	return done
}

// popFree takes a frame from the global pool, or nil when the memory
// budget is exhausted (every frame is resident somewhere).
func (c *Cache) popFree() *frame {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if len(c.pool) == 0 {
		return nil
	}
	f := c.pool[len(c.pool)-1]
	c.pool = c.pool[:len(c.pool)-1]
	return f
}

// pushFree returns a frame to the global pool.
func (c *Cache) pushFree(f *frame) {
	c.poolMu.Lock()
	c.pool = append(c.pool, f)
	c.poolMu.Unlock()
}

// reclaimRemote evicts the LRU page of the most loaded shard and returns
// the freed frame to the global pool. This is the rebalancing path: a
// hash-hot shard that outgrew its proportional share of the budget gives a
// frame back to whichever stripe is under pressure. It reports the
// write-back completion horizon and whether a frame was actually freed
// (false only when a racing Invalidate emptied the cache, or every frame
// is momentarily in flight between pool and shard).
func (c *Cache) reclaimRemote(io *IO, now time.Time) (time.Time, bool) {
	var victim *shard
	var max int32
	for _, t := range c.shards {
		if n := t.size.Load(); n > max {
			max, victim = n, t
		}
	}
	if victim == nil {
		return now, false
	}
	victim.mu.Lock()
	v := victim.lru.back()
	if v == nil { // raced with eviction/invalidate; caller rescans
		victim.mu.Unlock()
		return now, false
	}
	done := victim.evictLocked(c, io, now, v)
	victim.mu.Unlock()
	c.pushFree(v)
	return done, true
}

// touchHit reports whether page is resident; if so it records the hit and
// freshens the page's LRU position.
func (c *Cache) touchHit(page int64) bool {
	s := c.shardOf(page)
	s.mu.Lock()
	f, ok := s.resident[page]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.stats.Hits++
	if f.prefetched {
		s.stats.PrefetchHits++
		f.prefetched = false
	}
	s.lru.moveToFront(f)
	s.mu.Unlock()
	return true
}

// isResident reports residency without touching LRU state or statistics;
// the read path uses it to extend miss runs across stripes.
func (c *Cache) isResident(page int64) bool {
	s := c.shardOf(page)
	s.mu.Lock()
	_, ok := s.resident[page]
	s.mu.Unlock()
	return ok
}

// installPage makes page resident in its shard, evicting under memory
// pressure: first the global free pool, then this shard's own LRU, and as
// a last resort a reclaim from the fullest sibling. Evictions performed
// on behalf of this install charge io's backend view. It reports whether
// the page was newly installed (false when it was already resident) and
// the completion horizon of any dirty write-back performed (== now when
// nothing had to be written back). When count is set the lookup is
// charged to the shard's hit/miss counters, as the write path requires.
// Dirtying a page past the write-back threshold signals the shard's
// background flusher.
func (c *Cache) installPage(io *IO, now time.Time, page int64, dirty, prefetched, count bool) (fresh bool, horizon time.Time) {
	si := c.shardIndex(page)
	s := c.shards[si]
	horizon = now
	for {
		s.mu.Lock()
		if f, ok := s.resident[page]; ok {
			if count {
				s.stats.Hits++
			}
			dirtied := false
			if dirty && !f.dirty {
				f.dirty = true
				s.dirty++
				dirtied = true
			}
			dirtyCount := s.dirty
			s.lru.moveToFront(f)
			s.mu.Unlock()
			if dirtied {
				c.maybeSignalWriteback(si, dirtyCount, now)
			}
			return false, horizon
		}
		f := c.popFree()
		if f == nil {
			if victim := s.lru.back(); victim != nil {
				done := s.evictLocked(c, io, now, victim)
				if done.After(horizon) {
					horizon = done
				}
				f = victim
			}
		}
		if f != nil {
			if count {
				s.stats.Misses++
			}
			f.page = page
			f.dirty = dirty
			f.prefetched = prefetched
			s.resident[page] = f
			s.lru.pushFront(f)
			s.size.Add(1)
			c.used.Add(1)
			if dirty {
				s.dirty++
			}
			dirtyCount := s.dirty
			s.mu.Unlock()
			if dirty {
				c.maybeSignalWriteback(si, dirtyCount, now)
			}
			return true, horizon
		}
		// Budget exhausted and this stripe holds nothing to evict: pull a
		// frame back from the fullest sibling, then retry the install.
		s.mu.Unlock()
		done, ok := c.reclaimRemote(io, now)
		if done.After(horizon) {
			horizon = done
		}
		if !ok {
			runtime.Gosched() // frames are in flight; let holders finish
		}
	}
}
