package buffercache

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simdisk"
)

func testCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	p := simdisk.DefaultParams()
	p.Capacity = 1 << 30
	disk := simdisk.MustNew(p)
	return MustNew(cfg, disk)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPages = 8
	cfg.PrefetchPages = 0
	return cfg
}

var t0 = time.Unix(0, 0)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero page", func(c *Config) { c.PageSize = 0 }},
		{"zero pages", func(c *Config) { c.NumPages = 0 }},
		{"negative prefetch", func(c *Config) { c.PrefetchPages = -1 }},
		{"zero rate", func(c *Config) { c.MemCopyRate = 0 }},
		{"negative hit", func(c *Config) { c.HitOverhead = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNewNilBackend(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("New accepted nil backend")
	}
}

func TestColdReadSlowerThanWarmRead(t *testing.T) {
	c := testCache(t, smallConfig())
	_, cold := c.Read(t0, 0, 4096)
	_, warm := c.Read(t0, 0, 4096)
	if warm >= cold {
		t.Fatalf("warm read %v not faster than cold %v", warm, cold)
	}
	// The gap must be orders of magnitude, as in the paper's Table 6.
	if cold < 10*warm {
		t.Fatalf("cold/warm ratio too small: cold=%v warm=%v", cold, warm)
	}
}

func TestReadMakesPagesResident(t *testing.T) {
	c := testCache(t, smallConfig())
	c.Read(t0, 0, 3*4096)
	for off := int64(0); off < 3*4096; off += 4096 {
		if !c.Resident(off) {
			t.Fatalf("page at %d not resident after read", off)
		}
	}
	if c.Resident(100 * 4096) {
		t.Fatal("untouched page reported resident")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	cfg := smallConfig()
	c := testCache(t, cfg)
	for i := int64(0); i < 100; i++ {
		c.Read(t0, i*4096, 4096)
		if got := c.ResidentPages(); got > cfg.NumPages {
			t.Fatalf("resident pages %d exceed capacity %d", got, cfg.NumPages)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions after overflowing the cache")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	cfg := smallConfig() // 8 pages
	c := testCache(t, cfg)
	for i := int64(0); i < 8; i++ {
		c.Read(t0, i*4096, 4096)
	}
	// Touch page 0 so page 1 becomes LRU.
	c.Read(t0, 0, 4096)
	// Insert one more page; page 1 must be the victim.
	c.Read(t0, 100*4096, 4096)
	if !c.Resident(0) {
		t.Fatal("recently-touched page 0 was evicted")
	}
	if c.Resident(1 * 4096) {
		t.Fatal("LRU page 1 survived eviction")
	}
}

func TestPrefetchMakesSequentialReadsHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPages = 64
	cfg.PrefetchPages = 8
	c := testCache(t, cfg)
	// Three sequential reads: the first misses cold, the second misses but
	// triggers read-ahead (sequentiality now detected), and the third must
	// be entirely satisfied by the prefetched pages.
	c.Read(t0, 0, 4096)
	c.Read(t0, 4096, 4096)
	before := c.Stats()
	_, warm := c.Read(t0, 2*4096, 4096)
	after := c.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("sequential read missed despite prefetch: %+v -> %+v", before, after)
	}
	if after.PrefetchHits == before.PrefetchHits {
		t.Fatal("prefetch hit not accounted")
	}
	if warm > time.Millisecond {
		t.Fatalf("prefetched read took %v, want sub-millisecond", warm)
	}
}

func TestNoPrefetchOnRandomAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPages = 64
	cfg.PrefetchPages = 8
	c := testCache(t, cfg)
	c.Read(t0, 0, 4096)        // pages 0 (+ prefetch on first access? not sequential: lastPage=-2)
	c.Read(t0, 500*4096, 4096) // random jump
	c.Read(t0, 200*4096, 4096) // another random jump
	if got := c.Stats().PrefetchedIn; got != 0 {
		t.Fatalf("random access triggered %d prefetched pages, want 0", got)
	}
}

func TestWriteBehindDirtiesPages(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteBehind = true
	c := testCache(t, cfg)
	_, w := c.Write(t0, 0, 4096)
	if c.DirtyPages() != 1 {
		t.Fatalf("DirtyPages = %d, want 1", c.DirtyPages())
	}
	if w > time.Millisecond {
		t.Fatalf("write-behind write cost disk time: %v", w)
	}
	if c.Stats().BytesToDisk != 0 {
		t.Fatal("write-behind wrote to disk eagerly")
	}
}

func TestWriteThroughGoesToDisk(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteBehind = false
	c := testCache(t, cfg)
	_, w := c.Write(t0, 0, 4096)
	if c.Stats().BytesToDisk != 4096 {
		t.Fatalf("BytesToDisk = %d, want 4096", c.Stats().BytesToDisk)
	}
	if w < 100*time.Microsecond {
		t.Fatalf("write-through write did not pay disk time: %v", w)
	}
	if c.DirtyPages() != 0 {
		t.Fatal("write-through left dirty pages")
	}
}

func TestFlushWritesDirtyPagesOnce(t *testing.T) {
	cfg := smallConfig()
	c := testCache(t, cfg)
	c.Write(t0, 0, 2*4096)
	_, d1 := c.Flush(t0)
	if c.DirtyPages() != 0 {
		t.Fatal("flush left dirty pages")
	}
	if c.Stats().DirtyFlushes != 2 {
		t.Fatalf("DirtyFlushes = %d, want 2", c.Stats().DirtyFlushes)
	}
	if d1 <= 0 {
		t.Fatal("flush with dirty pages must take time")
	}
	// Second flush is a no-op.
	_, d2 := c.Flush(t0)
	if d2 != 0 {
		t.Fatalf("idle flush took %v, want 0", d2)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := smallConfig() // 8 pages
	c := testCache(t, cfg)
	// Dirty all 8 pages, then read 8 new ones to force dirty evictions.
	for i := int64(0); i < 8; i++ {
		c.Write(t0, i*4096, 4096)
	}
	for i := int64(100); i < 108; i++ {
		c.Read(t0, i*4096, 4096)
	}
	s := c.Stats()
	if s.DirtyFlushes == 0 {
		t.Fatal("dirty evictions did not write back")
	}
	if s.BytesToDisk == 0 {
		t.Fatal("no bytes written back")
	}
}

func TestZeroLengthOps(t *testing.T) {
	c := testCache(t, smallConfig())
	_, r := c.Read(t0, 0, 0)
	_, w := c.Write(t0, 0, 0)
	if r != c.Config().HitOverhead || w != c.Config().HitOverhead {
		t.Fatalf("zero-length ops cost r=%v w=%v, want %v", r, w, c.Config().HitOverhead)
	}
	if c.ResidentPages() != 0 {
		t.Fatal("zero-length op cached pages")
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache(t, smallConfig())
	c.Read(t0, 0, 4*4096)
	c.Invalidate()
	if c.ResidentPages() != 0 {
		t.Fatalf("Invalidate left %d pages", c.ResidentPages())
	}
	_, cold := c.Read(t0, 0, 4096)
	if cold < time.Millisecond {
		t.Fatalf("post-invalidate read not cold: %v", cold)
	}
}

func TestHitRate(t *testing.T) {
	c := testCache(t, smallConfig())
	c.Read(t0, 0, 4096)
	c.Read(t0, 0, 4096)
	c.Read(t0, 0, 4096)
	got := c.Stats().HitRate()
	want := 2.0 / 3.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
}

// Property: after any sequence of reads and writes, (a) resident pages
// never exceed capacity, (b) a page just accessed is resident, and (c)
// elapsed time is never negative.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	cfg := smallConfig()
	cfg.PrefetchPages = 4
	f := func(ops []struct {
		Off   int64
		Len   uint16
		Write bool
	}) bool {
		c := testCache(t, cfg)
		for _, op := range ops {
			off := op.Off % (1 << 28)
			if off < 0 {
				off = -off
			}
			// Keep spans + read-ahead within capacity so the just-accessed
			// page cannot itself be evicted by the tail of the same access.
			length := int64(op.Len) % 8192
			var el time.Duration
			if op.Write {
				_, el = c.Write(t0, off, length)
			} else {
				_, el = c.Read(t0, off, length)
			}
			if el < 0 {
				return false
			}
			if c.ResidentPages() > cfg.NumPages {
				return false
			}
			if length > 0 && !c.Resident(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSpansManyPagesCoalesced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPages = 1024
	cfg.PrefetchPages = 0
	c := testCache(t, cfg)
	// A 1 MB read over a cold cache should issue few large disk requests,
	// not 256 individual page faults.
	c.Read(t0, 0, 1<<20)
	p := simdisk.DefaultParams()
	p.Capacity = 1 << 30
	// 256 pages missed but coalesced into one run.
	s := c.Stats()
	if s.Misses != 256 {
		t.Fatalf("Misses = %d, want 256", s.Misses)
	}
	if s.BytesFromDisk != 1<<20 {
		t.Fatalf("BytesFromDisk = %d, want %d", s.BytesFromDisk, 1<<20)
	}
}
