package buffercache

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/simdisk"
)

// TestShardsValidate checks the shard-count configuration surface.
func TestShardsValidate(t *testing.T) {
	for _, n := range []int{-1, 3, 6, 12, 100} {
		cfg := DefaultConfig()
		cfg.Shards = n
		if err := cfg.Validate(); err == nil {
			t.Errorf("shards=%d accepted, want power-of-two error", n)
		}
	}
	for _, n := range []int{0, 1, 2, 4, 64} {
		cfg := DefaultConfig()
		cfg.Shards = n
		if err := cfg.Validate(); err != nil {
			t.Errorf("shards=%d rejected: %v", n, err)
		}
	}
}

func TestAutoShardsIsStripedPowerOfTwo(t *testing.T) {
	n := AutoShards()
	if n < 4 || n&(n-1) != 0 {
		t.Fatalf("AutoShards() = %d, want power of two >= 4", n)
	}
	c := testCache(t, ShardedConfig())
	if c.NumShards() != n {
		t.Fatalf("ShardedConfig cache has %d shards, want %d", c.NumShards(), n)
	}
}

func TestSetDefaultShards(t *testing.T) {
	if err := SetDefaultShards(3); err == nil {
		t.Fatal("SetDefaultShards(3) accepted")
	}
	if err := SetDefaultShards(8); err != nil {
		t.Fatal(err)
	}
	defer SetDefaultShards(0)
	if got := DefaultConfig().Shards; got != 8 {
		t.Fatalf("DefaultConfig().Shards = %d after SetDefaultShards(8)", got)
	}
	if err := SetDefaultShards(0); err != nil {
		t.Fatal(err)
	}
	if got := DefaultConfig().Shards; got != 1 {
		t.Fatalf("DefaultConfig().Shards = %d after reset, want 1", got)
	}
}

// TestShardedMatchesSingleShard replays one deterministic single-threaded
// workload against a 1-shard and an 8-shard cache. Without eviction
// pressure the striping must be invisible: identical durations, identical
// stats, identical residency.
func TestShardedMatchesSingleShard(t *testing.T) {
	build := func(shards int) *Cache {
		cfg := DefaultConfig() // 4096 pages: the workload below never evicts
		cfg.Shards = shards
		p := simdisk.DefaultParams()
		p.Capacity = 1 << 30
		return MustNew(cfg, simdisk.MustNew(p))
	}
	c1, c8 := build(1), build(8)

	rng := rand.New(rand.NewSource(42))
	var off int64
	for i := 0; i < 400; i++ {
		length := int64(rng.Intn(32 << 10))
		switch rng.Intn(4) {
		case 0: // sequential scan step
			off += length
		default: // bounded random jump
			off = int64(rng.Intn(1 << 24))
		}
		write := rng.Intn(4) == 0
		var d1, d8 time.Duration
		if write {
			_, d1 = c1.Write(t0, off, length)
			_, d8 = c8.Write(t0, off, length)
		} else {
			_, d1 = c1.Read(t0, off, length)
			_, d8 = c8.Read(t0, off, length)
		}
		if d1 != d8 {
			t.Fatalf("op %d (write=%v off=%d len=%d): 1-shard %v != 8-shard %v",
				i, write, off, length, d1, d8)
		}
	}
	if s1, s8 := c1.Stats(), c8.Stats(); s1 != s8 {
		t.Fatalf("stats diverged:\n1 shard: %+v\n8 shards: %+v", s1, s8)
	}
	if c1.ResidentPages() != c8.ResidentPages() {
		t.Fatalf("residency diverged: %d vs %d", c1.ResidentPages(), c8.ResidentPages())
	}
	if c1.DirtyPages() != c8.DirtyPages() {
		t.Fatalf("dirty pages diverged: %d vs %d", c1.DirtyPages(), c8.DirtyPages())
	}
	_, f1 := c1.Flush(t0)
	_, f8 := c8.Flush(t0)
	if f1 != f8 {
		t.Fatalf("flush durations diverged: %v vs %v", f1, f8)
	}
}

// TestRemoteReclaimRebalancing drives the cross-shard reclaim path
// deterministically: fill the whole budget through one stripe, then miss
// in an empty stripe. The install must steal the fullest sibling's LRU
// frame rather than exceed the global budget.
func TestRemoteReclaimRebalancing(t *testing.T) {
	cfg := smallConfig() // 8 pages
	cfg.Shards = 4
	c := testCache(t, cfg)

	// Collect 8 pages that hash to stripe 0 and one that does not.
	var hot []int64
	other := int64(-1)
	for p := int64(0); p < 4096 && (len(hot) < cfg.NumPages || other < 0); p++ {
		if c.shardIndex(p) == 0 {
			if len(hot) < cfg.NumPages {
				hot = append(hot, p)
			}
		} else if other < 0 {
			other = p
		}
	}
	if len(hot) < cfg.NumPages || other < 0 {
		t.Fatalf("hash probe failed: %d hot pages, other=%d", len(hot), other)
	}
	for _, p := range hot {
		c.Write(t0, p*cfg.PageSize, cfg.PageSize) // dirty, so reclaim must write back
	}
	if got := c.ResidentPages(); got != cfg.NumPages {
		t.Fatalf("ResidentPages = %d, want full budget %d", got, cfg.NumPages)
	}

	done, _ := c.Write(t0, other*cfg.PageSize, cfg.PageSize)
	if got := c.ResidentPages(); got != cfg.NumPages {
		t.Fatalf("budget violated after cross-stripe miss: %d pages", got)
	}
	if !c.Resident(other * cfg.PageSize) {
		t.Fatal("missed page not resident after remote reclaim")
	}
	if c.Resident(hot[0] * cfg.PageSize) {
		t.Fatal("fullest stripe's LRU page survived the reclaim")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if s.DirtyFlushes != 1 || s.BytesToDisk != cfg.PageSize {
		t.Fatalf("dirty reclaim not written back: %+v", s)
	}
	if !done.After(t0) {
		t.Fatal("write that triggered a dirty reclaim reported no stall")
	}
}

// TestConcurrentShardedAccess hammers one sharded cache from many
// goroutines — reads, writes, range flushes, and an invalidation — and
// then checks the global accounting: every page access classified exactly
// once as hit or miss, residency inside the budget and equal to the
// atomic gauge, and the per-shard dirty sets in agreement with the dirty
// flags. Run with -race this is the lock-striping correctness test.
func TestConcurrentShardedAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	cfg.NumPages = 256 // small budget: constant eviction + reclaim pressure
	cfg.PrefetchPages = 4
	c := testCache(t, cfg)

	const workers = 16
	const opsPerWorker = 400
	pagesTouched := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				off := int64(rng.Intn(1 << 26))
				length := int64(rng.Intn(16 << 10))
				first, last := c.pageRange(off, length)
				switch rng.Intn(8) {
				case 0, 1:
					c.Write(t0, off, length)
				case 2:
					c.FlushRange(t0, off, length)
					continue // flushes do not touch hit/miss counters
				case 3:
					if w == 0 && i == opsPerWorker/2 {
						c.Invalidate()
						continue
					}
					c.Read(t0, off, length)
				default:
					c.Read(t0, off, length)
				}
				if last >= first {
					pagesTouched[w] += last - first + 1
				} else {
					// Zero-length ops never reach the counters.
					continue
				}
			}
		}(w)
	}
	wg.Wait()

	var want int64
	for _, n := range pagesTouched {
		want += n
	}
	s := c.Stats()
	if got := s.Hits + s.Misses; got != want {
		t.Fatalf("hits+misses = %d, want %d touched pages", got, want)
	}
	if got := c.ResidentPages(); got > cfg.NumPages {
		t.Fatalf("ResidentPages = %d exceeds budget %d", got, cfg.NumPages)
	}
	// The atomic gauge, per-shard size mirrors, and the page tables
	// themselves must agree exactly once quiescent.
	mapped, sized := 0, 0
	dirtyFlags, dirtySets := 0, 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		mapped += sh.table.len()
		sized += int(sh.size.Load())
		dirtySets += sh.dirty
		sh.table.each(func(f *frame) {
			if f.dirty {
				dirtyFlags++
			}
		})
		if sh.lru.len() != sh.table.len() {
			t.Errorf("shard LRU has %d frames, table has %d", sh.lru.len(), sh.table.len())
		}
		sh.mu.Unlock()
	}
	if mapped != c.ResidentPages() || sized != mapped {
		t.Fatalf("residency accounting skewed: tables=%d sizes=%d gauge=%d",
			mapped, sized, c.ResidentPages())
	}
	if dirtyFlags != dirtySets || dirtySets != c.DirtyPages() {
		t.Fatalf("dirty accounting skewed: flags=%d sets=%d DirtyPages=%d",
			dirtyFlags, dirtySets, c.DirtyPages())
	}

	// Flushing everything must retire exactly the dirty set, once.
	dirtyBefore := c.DirtyPages()
	flushesBefore := s.DirtyFlushes
	c.Flush(t0)
	if got := c.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages = %d after Flush", got)
	}
	if got := c.Stats().DirtyFlushes - flushesBefore; got != int64(dirtyBefore) {
		t.Fatalf("Flush wrote back %d pages, dirty set had %d", got, dirtyBefore)
	}
}

// TestCapacityNeverExceededSharded is the sharded twin of
// TestCapacityNeverExceeded: a miss stream across all stripes stays
// inside the global budget even though no stripe has a private capacity.
func TestCapacityNeverExceededSharded(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 4
	c := testCache(t, cfg)
	for i := int64(0); i < 200; i++ {
		c.Read(t0, i*4096, 4096)
		if got := c.ResidentPages(); got > cfg.NumPages {
			t.Fatalf("resident pages %d exceed budget %d", got, cfg.NumPages)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions after overflowing the cache")
	}
}
