package buffercache

// lruList is an intrusive doubly-linked LRU list over page frames. We keep
// our own rather than container/list to make the hot path allocation-free:
// frames are preallocated at cache construction and recycled forever.
type lruList struct {
	head, tail *frame // head = most recently used
	size       int
}

// frame is one cached page slot.
type frame struct {
	page       int64 // absolute page number, -1 when free
	dirty      bool
	prefetched bool // brought in by read-ahead, not yet referenced
	// inWBQueue records that the shard's dirty-arrival queue holds a
	// live entry for this page, so re-dirtying a still-queued dirty page
	// never enqueues it twice. Cleaning the page — drain, flush, or
	// eviction — clears the flag so a later re-dirty enqueues at the
	// tail: write-back order is the order of the *current* dirtying, as
	// pdflush's. The abandoned queue entry is dropped when a drain or
	// compaction reaches it; wbSeq (the dirtying generation stamped on
	// frame and entry alike) keeps such a ghost from matching a page
	// re-installed and re-dirtied after eviction.
	inWBQueue bool
	wbSeq     uint64
	// slot is the frame's current position in its shard's open-addressing
	// page table, kept fresh by put/del/grow so removal never probes.
	// Meaningful only while the frame is resident.
	slot       int32
	prev, next *frame
}

// pushFront inserts f at the MRU end.
func (l *lruList) pushFront(f *frame) {
	f.prev = nil
	f.next = l.head
	if l.head != nil {
		l.head.prev = f
	}
	l.head = f
	if l.tail == nil {
		l.tail = f
	}
	l.size++
}

// remove unlinks f from the list.
func (l *lruList) remove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		l.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		l.tail = f.prev
	}
	f.prev, f.next = nil, nil
	l.size--
}

// moveToFront marks f as most recently used.
func (l *lruList) moveToFront(f *frame) {
	if l.head == f {
		return
	}
	l.remove(f)
	l.pushFront(f)
}

// back returns the LRU frame, or nil when empty.
func (l *lruList) back() *frame { return l.tail }

// len returns the number of linked frames.
func (l *lruList) len() int { return l.size }
