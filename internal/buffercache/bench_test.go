package buffercache

import (
	"testing"
	"time"

	"repro/internal/simdisk"
)

func benchCache(b *testing.B, cfg Config) *Cache {
	b.Helper()
	p := simdisk.DefaultParams()
	disk := simdisk.MustNew(p)
	return MustNew(cfg, disk)
}

func BenchmarkCacheHit(b *testing.B) {
	c := benchCache(b, DefaultConfig())
	now := time.Unix(0, 0)
	c.Read(now, 0, 4096) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(now, 0, 4096)
	}
}

func BenchmarkCacheMissEvict(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumPages = 64
	cfg.PrefetchPages = 0
	c := benchCache(b, cfg)
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(now, int64(i)*4096%(1<<30), 4096)
	}
}

func BenchmarkCacheSequentialScanPrefetch(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PrefetchPages = 64
	c := benchCache(b, cfg)
	now := time.Unix(0, 0)
	var off int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(now, off, 64<<10)
		off = (off + 64<<10) % (1 << 30)
	}
}

func BenchmarkCacheWriteBehind(b *testing.B) {
	c := benchCache(b, DefaultConfig())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(now, int64(i)*4096%(1<<26), 4096)
	}
}
