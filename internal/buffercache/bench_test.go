package buffercache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simdisk"
)

func benchCache(b *testing.B, cfg Config) *Cache {
	b.Helper()
	p := simdisk.DefaultParams()
	disk := simdisk.MustNew(p)
	return MustNew(cfg, disk)
}

func BenchmarkCacheHit(b *testing.B) {
	c := benchCache(b, DefaultConfig())
	now := time.Unix(0, 0)
	c.Read(now, 0, 4096) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(now, 0, 4096)
	}
}

func BenchmarkCacheMissEvict(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumPages = 64
	cfg.PrefetchPages = 0
	c := benchCache(b, cfg)
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(now, int64(i)*4096%(1<<30), 4096)
	}
}

func BenchmarkCacheSequentialScanPrefetch(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PrefetchPages = 64
	c := benchCache(b, cfg)
	now := time.Unix(0, 0)
	var off int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(now, off, 64<<10)
		off = (off + 64<<10) % (1 << 30)
	}
}

func BenchmarkCacheWriteBehind(b *testing.B) {
	c := benchCache(b, DefaultConfig())
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(now, int64(i)*4096%(1<<26), 4096)
	}
}

// benchParallelCache drives the cache from `workers` goroutines at once,
// each walking its own warm stripe of pages, with one write mixed in per
// writeEvery reads (0 = reads only). b.N is the aggregate operation
// count, so ns/op is directly comparable across shard counts: the
// single-mutex baseline is shards=1.
func benchParallelCache(b *testing.B, shards, workers, writeEvery int) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Shards = shards
	c := benchCache(b, cfg)
	now := time.Unix(0, 0)
	// Leave the read-ahead window's worth of headroom: warming the full
	// budget would let the final prefetch evict warm pages and seed
	// permanent misses into the measured loop.
	usable := cfg.NumPages - cfg.PrefetchPages
	for p := int64(0); p < int64(usable); p++ {
		c.Read(now, p*cfg.PageSize, cfg.PageSize)
	}
	stride := usable / workers
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * stride)
			for i := 0; i < b.N/workers; i++ {
				off := (base + int64(i%stride)) * cfg.PageSize
				if writeEvery > 0 && i%writeEvery == 0 {
					c.Write(now, off, cfg.PageSize)
				} else {
					c.Read(now, off, cfg.PageSize)
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkCacheShardScalingReadHit is the lock-striping headline: warm
// read hits from 8 concurrent workers as the shard count sweeps 1→16.
func BenchmarkCacheShardScalingReadHit(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d/workers=8", shards), func(b *testing.B) {
			benchParallelCache(b, shards, 8, 0)
		})
	}
}

// BenchmarkCacheShardScalingMixed is the same sweep with one write-behind
// write per four operations, exercising the dirty-set accounting under
// contention.
func BenchmarkCacheShardScalingMixed(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d/workers=8", shards), func(b *testing.B) {
			benchParallelCache(b, shards, 8, 4)
		})
	}
}
