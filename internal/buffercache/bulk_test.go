package buffercache

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simdisk"
)

// opTrace is a deterministic mixed workload: sequential scans (prefetch
// + warm hits), random jumps (miss runs), rewrites (dirty transitions),
// and enough distinct pages to force evictions on a small cache.
type cacheOp struct {
	write       bool
	off, length int64
}

func mixedOps(n int) []cacheOp {
	ops := make([]cacheOp, 0, n)
	seed := int64(12345)
	next := func() int64 { // xorshift: deterministic, no math/rand dep
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for i := 0; i < n; i++ {
		r := next()
		off := (r>>8)&0xFFFF - 1<<14 // spans negative->clamped and wide offsets
		if off < 0 {
			off = -off
		}
		op := cacheOp{off: off * 4096 / 3, length: (r&7 + 1) * 4096}
		switch i % 5 {
		case 0, 1: // sequential scan burst
			op.off = int64(i%97) * 4096
			op.length = 16 << 10
		case 2:
			op.write = true
		}
		ops = append(ops, op)
	}
	return ops
}

// runOps replays ops on a fresh cache and returns the final clock and
// stats. pageGranular selects the retained reference path.
func runOps(t *testing.T, cfg Config, ops []cacheOp, pageGranular bool) (time.Time, Stats, int, int) {
	t.Helper()
	p := simdisk.DefaultParams()
	p.Capacity = 1 << 30
	c := MustNew(cfg, simdisk.MustNew(p))
	defer c.Close()
	c.SetPageGranular(pageGranular)
	now := time.Unix(0, 0)
	for i, op := range ops {
		var done time.Time
		if op.write {
			done, _ = c.Write(now, op.off, op.length)
		} else {
			done, _ = c.Read(now, op.off, op.length)
		}
		if done.Before(now) {
			t.Fatalf("op %d moved time backwards", i)
		}
		now = done
		if i%41 == 0 {
			now, _ = c.FlushRange(now, op.off, op.length)
		}
	}
	now, _ = c.Flush(now)
	return now, c.Stats(), c.ResidentPages(), c.DirtyPages()
}

// TestBulkMatchesPageGranular is the bulk path's behavioral contract:
// the run-granular ReadIO/WriteIO perform the same residency, LRU,
// eviction, and statistics transitions in the same order as the
// retained per-page path, so the simulated clock lands on the identical
// nanosecond. Swept over shard counts (1 = the paper's deterministic
// configuration) and a capacity small enough that eviction pressure,
// prefetch, and dirty write-back all engage.
func TestBulkMatchesPageGranular(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, variant := range []struct {
			name      string
			prefetch  int
			highwater int
		}{
			{"prefetch=0", 0, 0},
			{"prefetch=8", 8, 0},
			{"highwater=8", 0, 8},
		} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, variant.name), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.NumPages = 64
				cfg.PrefetchPages = variant.prefetch
				cfg.Shards = shards
				if variant.highwater > 0 {
					// An unreachable threshold keeps the flusher goroutines
					// idle, so the only drains are the deterministic
					// synchronous high-water stalls — both paths must charge
					// them at the same shard-run boundaries.
					cfg.WritebackThreshold = 1 << 30
					cfg.WritebackHighwater = variant.highwater
				}
				ops := mixedOps(400)
				bulkEnd, bulkStats, bulkRes, bulkDirty := runOps(t, cfg, ops, false)
				pageEnd, pageStats, pageRes, pageDirty := runOps(t, cfg, ops, true)
				if !bulkEnd.Equal(pageEnd) {
					t.Fatalf("simulated clocks diverge: bulk %v vs per-page %v (delta %v)",
						bulkEnd, pageEnd, bulkEnd.Sub(pageEnd))
				}
				if bulkStats != pageStats {
					t.Fatalf("stats diverge:\nbulk:     %+v\nper-page: %+v", bulkStats, pageStats)
				}
				if bulkRes != pageRes || bulkDirty != pageDirty {
					t.Fatalf("page state diverges: resident %d vs %d, dirty %d vs %d",
						bulkRes, pageRes, bulkDirty, pageDirty)
				}
				if variant.highwater > 0 && bulkStats.WritebackThrottles == 0 {
					t.Fatal("high-water variant stalled no writers; equivalence test is vacuous")
				}
			})
		}
	}
}

// TestWarmReadZeroAllocs pins the bulk read hot path at zero
// allocations: growing the warm loop a heap object per op is a
// regression the ns/op numbers would only show indirectly.
func TestWarmReadZeroAllocs(t *testing.T) {
	c := benchCacheT(t, DefaultConfig())
	now := time.Unix(0, 0)
	c.Read(now, 0, 64<<10) // warm
	allocs := testing.AllocsPerRun(100, func() {
		c.Read(now, 0, 64<<10)
	})
	if allocs != 0 {
		t.Fatalf("warm 64 KB ReadIO allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWarmWriteZeroAllocs pins the warm write-behind path (pages
// resident and already dirty) at zero allocations.
func TestWarmWriteZeroAllocs(t *testing.T) {
	c := benchCacheT(t, DefaultConfig())
	now := time.Unix(0, 0)
	c.Write(now, 0, 64<<10) // install + dirty
	allocs := testing.AllocsPerRun(100, func() {
		c.Write(now, 0, 64<<10)
	})
	if allocs != 0 {
		t.Fatalf("warm 64 KB WriteIO allocates %.1f objects/op, want 0", allocs)
	}
}

func benchCacheT(t *testing.T, cfg Config) *Cache {
	t.Helper()
	p := simdisk.DefaultParams()
	p.Capacity = 1 << 30
	return MustNew(cfg, simdisk.MustNew(p))
}

// TestBulkSpansShards exercises a read whose page run crosses every
// stripe boundary: per-shard runs must cover the range exactly once.
func TestBulkSpansShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	cfg.NumPages = 1024
	cfg.PrefetchPages = 0
	c := benchCacheT(t, cfg)
	now := time.Unix(0, 0)
	c.Read(now, 0, 1<<20) // 256 pages scattered over 8 stripes
	s := c.Stats()
	if s.Misses != 256 {
		t.Fatalf("Misses = %d, want 256", s.Misses)
	}
	if got := c.ResidentPages(); got != 256 {
		t.Fatalf("ResidentPages = %d, want 256", got)
	}
	// All warm now: one more pass must be pure hits.
	c.Read(now, 0, 1<<20)
	s2 := c.Stats()
	if s2.Misses != 256 || s2.Hits != s.Hits+256 {
		t.Fatalf("warm pass not pure hits: %+v -> %+v", s, s2)
	}
}

// TestPoolStripingCapacity floods every stripe from a small budget:
// striped free lists must never let residency exceed the global frame
// budget, and stranded frames must be harvested rather than evicting
// early (hits+misses conserve, evictions equal overflow).
func TestPoolStripingCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	cfg.NumPages = 48 // less than shards*poolRefillBatch: stranding certain
	cfg.PrefetchPages = 0
	c := benchCacheT(t, cfg)
	now := time.Unix(0, 0)
	for i := int64(0); i < 400; i++ {
		c.Read(now, i*4096, 4096)
		if got := c.ResidentPages(); got > cfg.NumPages {
			t.Fatalf("resident pages %d exceed budget %d", got, cfg.NumPages)
		}
	}
	s := c.Stats()
	if s.Evictions != 400-int64(cfg.NumPages) {
		t.Fatalf("Evictions = %d, want %d (evict only once the whole budget is resident)",
			s.Evictions, 400-int64(cfg.NumPages))
	}
}
