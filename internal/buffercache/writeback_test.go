package buffercache

import (
	"testing"
	"time"

	"repro/internal/simdisk"
)

// wbConfig is a small write-back-enabled cache configuration.
func wbConfig(threshold int, policy simdisk.SchedPolicy) Config {
	cfg := DefaultConfig()
	cfg.NumPages = 256
	cfg.Shards = 4
	cfg.WritebackThreshold = threshold
	cfg.WritebackPolicy = policy
	return cfg
}

func TestWritebackDisabledByDefault(t *testing.T) {
	c := MustNew(DefaultConfig(), simdisk.MustNew(simdisk.MemoryBackedParams()))
	if c.WritebackEnabled() {
		t.Fatal("default config enabled write-back")
	}
	// Close and Quiesce are safe no-ops without write-back.
	now := time.Unix(0, 0)
	if got := c.Quiesce(now); !got.Equal(now) {
		t.Fatalf("Quiesce without write-back = %v, want now", got)
	}
	c.Close()
	c.Close()
}

func TestWritebackDrainsDirtySetInBackground(t *testing.T) {
	disk := simdisk.MustNew(simdisk.MemoryBackedParams())
	cfg := wbConfig(8, simdisk.SSTF)
	cfg.WritebackBatch = 4 // several scheduled batches per drain
	c := MustNew(cfg, disk)
	defer c.Close()

	now := time.Unix(0, 0)
	// Dirty well past the per-stripe threshold.
	for i := int64(0); i < 128; i++ {
		now, _ = c.Write(now, i*c.cfg.PageSize, c.cfg.PageSize)
	}
	// The flushers run on their own goroutines; wait for the signal-driven
	// drains to retire the bulk of the dirty set.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().WritebackPages == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flushers retired no pages")
		}
		time.Sleep(time.Millisecond)
	}
	// Quiesce retires everything that remains, deterministically.
	c.Quiesce(now)
	if got := c.DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived Quiesce", got)
	}
	s := c.Stats()
	if s.WritebackPages == 0 || s.WritebackBatches == 0 {
		t.Fatalf("write-back counters empty: %+v", s)
	}
	if s.WritebackBatches < s.WritebackPages/4 {
		t.Fatalf("batch cap 4 not honored: %d pages in %d batches", s.WritebackPages, s.WritebackBatches)
	}
	if s.DirtyFlushes < s.WritebackPages {
		t.Fatalf("DirtyFlushes %d < WritebackPages %d", s.DirtyFlushes, s.WritebackPages)
	}
	if want := s.DirtyFlushes * c.cfg.PageSize; s.BytesToDisk != want {
		t.Fatalf("BytesToDisk = %d, want %d", s.BytesToDisk, want)
	}
	if c.WritebackHorizon().IsZero() {
		t.Fatal("write-back consumed no simulated time")
	}
}

// TestWritebackChargesBackgroundLanesNotCaller pins the core contract:
// with write-back on, dirtying pages costs the writer only memory-copy
// time; the disk time lands on the flushers' lanes.
func TestWritebackChargesBackgroundLanesNotCaller(t *testing.T) {
	disk := simdisk.MustNew(simdisk.MemoryBackedParams())
	c := MustNew(wbConfig(4, simdisk.SCAN), disk)
	defer c.Close()

	// An identical cache without write-back, flushed in the foreground.
	ref := MustNew(wbConfig(0, simdisk.FCFS), simdisk.MustNew(simdisk.MemoryBackedParams()))

	now := time.Unix(0, 0)
	var wbDone, refDone time.Time
	wbDone = now
	refDone = now
	for i := int64(0); i < 32; i++ {
		wbDone, _ = c.Write(wbDone, i*c.cfg.PageSize, c.cfg.PageSize)
		refDone, _ = ref.Write(refDone, i*ref.cfg.PageSize, ref.cfg.PageSize)
	}
	if !wbDone.Equal(refDone) {
		t.Fatalf("write path cost changed under write-back: %v vs %v", wbDone, refDone)
	}
	refFlush, _ := ref.Flush(refDone)
	if !refFlush.After(refDone) {
		t.Fatal("foreground flush charged no time")
	}
	horizon := c.Quiesce(wbDone)
	if !horizon.After(wbDone) {
		t.Fatal("background flush consumed no lane time")
	}
}

// recordingBackend wraps a BatchBackend and records the request order
// each scheduled batch was submitted in, before any policy reordering.
type recordingBackend struct {
	BatchBackend
	batches [][]int64 // offsets per submitted batch, in submission order
}

func (r *recordingBackend) ServeBatch(now time.Time, reqs []simdisk.Request, policy simdisk.SchedPolicy) ([]simdisk.BatchResult, time.Time) {
	offs := make([]int64, len(reqs))
	for i, req := range reqs {
		offs[i] = req.Offset
	}
	r.batches = append(r.batches, offs)
	return r.BatchBackend.ServeBatch(now, reqs, policy)
}

// TestWritebackFeedsArrivalOrder pins the FCFS fix: drains submit dirty
// pages to the disk scheduler in raw arrival (dirtying) order, so FCFS
// genuinely services first-dirtied-first instead of receiving a
// pre-sorted ascending sweep. The dirtying order here is deliberately
// non-monotonic; a sorted drain would erase it.
func TestWritebackFeedsArrivalOrder(t *testing.T) {
	cfg := wbConfig(1<<30, simdisk.FCFS) // threshold unreachable: we drain
	cfg.Shards = 1                       // one stripe so one queue holds the whole order
	c := MustNew(cfg, simdisk.MustNew(simdisk.MemoryBackedParams()))
	defer c.Close()
	rec := &recordingBackend{BatchBackend: simdisk.MustNew(simdisk.MemoryBackedParams())}
	c.SetWritebackBackend(rec)

	order := []int64{5, 2, 9, 1, 7}
	now := time.Unix(0, 0)
	for _, page := range order {
		now, _ = c.Write(now, page*cfg.PageSize, cfg.PageSize)
	}
	c.Quiesce(now)
	if len(rec.batches) != 1 {
		t.Fatalf("expected one drain batch, got %d", len(rec.batches))
	}
	for i, off := range rec.batches[0] {
		if want := order[i] * cfg.PageSize; off != want {
			t.Fatalf("batch position %d: offset %d, want %d (arrival order %v, got %v)",
				i, off, want, order, rec.batches[0])
		}
	}
	// Re-dirtying pages must preserve first-dirtied positions without
	// duplicating entries.
	now, _ = c.Write(now, 9*cfg.PageSize, cfg.PageSize)
	now, _ = c.Write(now, 3*cfg.PageSize, cfg.PageSize)
	now, _ = c.Write(now, 9*cfg.PageSize, cfg.PageSize) // already queued
	c.Quiesce(now)
	if len(rec.batches) != 2 {
		t.Fatalf("expected a second drain batch, got %d", len(rec.batches))
	}
	if got, want := rec.batches[1], []int64{9 * cfg.PageSize, 3 * cfg.PageSize}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("second batch %v, want %v", got, want)
	}
}

// TestWritebackHighwaterStallsWriter pins pdflush-style throttling: a
// write that saturates a stripe's dirty set is charged the drain's
// completion horizon, and the dirty set is empty afterwards. Below the
// mark, writers are never stalled.
func TestWritebackHighwaterStallsWriter(t *testing.T) {
	cfg := wbConfig(1<<30, simdisk.SSTF) // flushers never self-trigger
	cfg.Shards = 1
	cfg.WritebackHighwater = 8
	c := MustNew(cfg, simdisk.MustNew(simdisk.MemoryBackedParams()))
	defer c.Close()

	now := time.Unix(0, 0)
	var fast time.Duration
	for i := int64(0); i < 7; i++ {
		var d time.Duration
		now, d = c.Write(now, i*cfg.PageSize, cfg.PageSize)
		if d > fast {
			fast = d
		}
	}
	if got := c.Stats().WritebackThrottles; got != 0 {
		t.Fatalf("%d throttles before the high-water mark", got)
	}
	done, stalled := c.Write(now, 7*cfg.PageSize, cfg.PageSize)
	if stalled <= 10*fast {
		t.Fatalf("high-water write took %v, not meaningfully above the %v unthrottled cost", stalled, fast)
	}
	if got := c.DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived the throttle drain", got)
	}
	if got := c.Stats().WritebackThrottles; got != 1 {
		t.Fatalf("WritebackThrottles = %d, want 1", got)
	}
	if got := c.Stats().WritebackPages; got != 8 {
		t.Fatalf("WritebackPages = %d, want 8", got)
	}
	_ = done
}

// TestWritebackHighwaterValidation: the mark needs background
// write-back to drain to.
func TestWritebackHighwaterValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WritebackHighwater = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("high-water mark without write-back validated")
	}
	cfg.WritebackThreshold = 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid high-water config rejected: %v", err)
	}
	cfg.WritebackHighwater = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative high-water mark validated")
	}
	if err := SetDefaultWriteback(0, 0, 4, simdisk.FCFS); err == nil {
		t.Fatal("SetDefaultWriteback accepted a high-water mark without write-back")
	}
	if err := SetDefaultWriteback(8, 0, 4, simdisk.SSTF); err != nil {
		t.Fatalf("SetDefaultWriteback rejected a valid high-water config: %v", err)
	}
	if got := DefaultConfig().WritebackHighwater; got != 4 {
		t.Fatalf("DefaultConfig high-water = %d, want 4", got)
	}
	if err := SetDefaultWriteback(0, 0, 0, simdisk.FCFS); err != nil {
		t.Fatalf("restoring defaults failed: %v", err)
	}
}

// TestWritebackQuiesceDeterministic replays the same write sequence
// twice through fresh caches and quiesces: the final horizon, stats, and
// page state must match exactly.
func TestWritebackQuiesceDeterministic(t *testing.T) {
	run := func() (time.Time, Stats) {
		c := MustNew(wbConfig(1<<30, simdisk.SSTF), simdisk.MustNew(simdisk.MemoryBackedParams()))
		defer c.Close()
		now := time.Unix(0, 0)
		for i := int64(0); i < 64; i++ {
			off := (i * 7 % 64) * c.cfg.PageSize
			now, _ = c.Write(now, off, c.cfg.PageSize)
		}
		// Threshold is unreachable, so no background drain raced: Quiesce
		// does all the work on the write-back lanes.
		return c.Quiesce(now), c.Stats()
	}
	h1, s1 := run()
	h2, s2 := run()
	if !h1.Equal(h2) {
		t.Fatalf("quiesce horizons differ: %v vs %v", h1, h2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
}

// TestWritebackQueueDoesNotLeakStaleEntries pins the dirty-arrival
// queue's memory bound: pages that are dirtied, then cleaned outside a
// drain (here via Flush), leave stale entries behind, and a stripe
// sitting below the drain threshold never trims them through drains.
// The opportunistic compaction in noteDirtyLocked and the
// stale-trimming in drainShard must keep the queue proportional to the
// dirty set, not to total write traffic.
func TestWritebackQueueDoesNotLeakStaleEntries(t *testing.T) {
	cfg := wbConfig(1<<30, simdisk.FCFS) // threshold unreachably high: no drain ever fires
	cfg.Shards = 1
	c := MustNew(cfg, simdisk.MustNew(simdisk.MemoryBackedParams()))
	defer c.Close()
	cfg.WriteBehind = true
	c.cfg.WriteBehind = true

	now := time.Unix(0, 0)
	for i := 0; i < 10000; i++ {
		page := int64(i % 64)
		now, _ = c.Write(now, page*cfg.PageSize, cfg.PageSize)
		now, _ = c.Flush(now) // cleans the page outside any drain: entry goes stale
	}
	s := c.shards[0]
	s.mu.Lock()
	qlen, dirty := len(s.dirtyOrder), s.dirty
	s.mu.Unlock()
	// The compaction threshold in noteDirtyLocked fires at len >
	// 4*dirty+16 with at least one page dirty, so the queue can idle at
	// up to ~20 stale entries after the final clean; anything well past
	// that means entries survived compaction and the queue tracks total
	// write traffic (here 10000 writes) instead of the dirty set.
	if qlen > 64 {
		t.Fatalf("dirty-arrival queue leaked: %d entries for %d dirty pages", qlen, dirty)
	}

	// A drain on an all-stale queue (want == 0) must trim it completely.
	c.wb.drainShard(0, now)
	s.mu.Lock()
	qlen = len(s.dirtyOrder)
	s.mu.Unlock()
	if qlen != 0 {
		t.Fatalf("drain left %d stale entries in an all-clean stripe", qlen)
	}
}

// TestWritebackCleanThenRedirtyEnqueuesAtTail pins the other half of
// the arrival-order contract: a page cleaned outside a drain (flush or
// eviction) abandons its queue position, so re-dirtying it is a fresh
// arrival at the tail — not a revival of the stale entry. The wbSeq
// generation stamp keeps the abandoned entry from masquerading as the
// new dirtying.
func TestWritebackCleanThenRedirtyEnqueuesAtTail(t *testing.T) {
	cfg := wbConfig(1<<30, simdisk.FCFS)
	cfg.Shards = 1
	cfg.WriteBehind = true
	c := MustNew(cfg, simdisk.MustNew(simdisk.MemoryBackedParams()))
	defer c.Close()
	rec := &recordingBackend{BatchBackend: simdisk.MustNew(simdisk.MemoryBackedParams())}
	c.SetWritebackBackend(rec)

	now := time.Unix(0, 0)
	now, _ = c.Write(now, 1*cfg.PageSize, cfg.PageSize)
	now, _ = c.Write(now, 2*cfg.PageSize, cfg.PageSize)
	// Clean page 1 outside any drain: its queue entry is abandoned.
	now, _ = c.FlushRange(now, 1*cfg.PageSize, cfg.PageSize)
	now, _ = c.Write(now, 3*cfg.PageSize, cfg.PageSize)
	now, _ = c.Write(now, 1*cfg.PageSize, cfg.PageSize) // re-dirty: new arrival
	c.Quiesce(now)
	if len(rec.batches) != 1 {
		t.Fatalf("expected one drain batch, got %d", len(rec.batches))
	}
	want := []int64{2 * cfg.PageSize, 3 * cfg.PageSize, 1 * cfg.PageSize}
	got := rec.batches[0]
	if len(got) != len(want) {
		t.Fatalf("batch %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch %v, want %v (re-dirtied page kept its stale position)", got, want)
		}
	}
}
