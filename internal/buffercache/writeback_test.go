package buffercache

import (
	"testing"
	"time"

	"repro/internal/simdisk"
)

// wbConfig is a small write-back-enabled cache configuration.
func wbConfig(threshold int, policy simdisk.SchedPolicy) Config {
	cfg := DefaultConfig()
	cfg.NumPages = 256
	cfg.Shards = 4
	cfg.WritebackThreshold = threshold
	cfg.WritebackPolicy = policy
	return cfg
}

func TestWritebackDisabledByDefault(t *testing.T) {
	c := MustNew(DefaultConfig(), simdisk.MustNew(simdisk.MemoryBackedParams()))
	if c.WritebackEnabled() {
		t.Fatal("default config enabled write-back")
	}
	// Close and Quiesce are safe no-ops without write-back.
	now := time.Unix(0, 0)
	if got := c.Quiesce(now); !got.Equal(now) {
		t.Fatalf("Quiesce without write-back = %v, want now", got)
	}
	c.Close()
	c.Close()
}

func TestWritebackDrainsDirtySetInBackground(t *testing.T) {
	disk := simdisk.MustNew(simdisk.MemoryBackedParams())
	cfg := wbConfig(8, simdisk.SSTF)
	cfg.WritebackBatch = 4 // several scheduled batches per drain
	c := MustNew(cfg, disk)
	defer c.Close()

	now := time.Unix(0, 0)
	// Dirty well past the per-stripe threshold.
	for i := int64(0); i < 128; i++ {
		now, _ = c.Write(now, i*c.cfg.PageSize, c.cfg.PageSize)
	}
	// The flushers run on their own goroutines; wait for the signal-driven
	// drains to retire the bulk of the dirty set.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().WritebackPages == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flushers retired no pages")
		}
		time.Sleep(time.Millisecond)
	}
	// Quiesce retires everything that remains, deterministically.
	c.Quiesce(now)
	if got := c.DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived Quiesce", got)
	}
	s := c.Stats()
	if s.WritebackPages == 0 || s.WritebackBatches == 0 {
		t.Fatalf("write-back counters empty: %+v", s)
	}
	if s.WritebackBatches < s.WritebackPages/4 {
		t.Fatalf("batch cap 4 not honored: %d pages in %d batches", s.WritebackPages, s.WritebackBatches)
	}
	if s.DirtyFlushes < s.WritebackPages {
		t.Fatalf("DirtyFlushes %d < WritebackPages %d", s.DirtyFlushes, s.WritebackPages)
	}
	if want := s.DirtyFlushes * c.cfg.PageSize; s.BytesToDisk != want {
		t.Fatalf("BytesToDisk = %d, want %d", s.BytesToDisk, want)
	}
	if c.WritebackHorizon().IsZero() {
		t.Fatal("write-back consumed no simulated time")
	}
}

// TestWritebackChargesBackgroundLanesNotCaller pins the core contract:
// with write-back on, dirtying pages costs the writer only memory-copy
// time; the disk time lands on the flushers' lanes.
func TestWritebackChargesBackgroundLanesNotCaller(t *testing.T) {
	disk := simdisk.MustNew(simdisk.MemoryBackedParams())
	c := MustNew(wbConfig(4, simdisk.SCAN), disk)
	defer c.Close()

	// An identical cache without write-back, flushed in the foreground.
	ref := MustNew(wbConfig(0, simdisk.FCFS), simdisk.MustNew(simdisk.MemoryBackedParams()))

	now := time.Unix(0, 0)
	var wbDone, refDone time.Time
	wbDone = now
	refDone = now
	for i := int64(0); i < 32; i++ {
		wbDone, _ = c.Write(wbDone, i*c.cfg.PageSize, c.cfg.PageSize)
		refDone, _ = ref.Write(refDone, i*ref.cfg.PageSize, ref.cfg.PageSize)
	}
	if !wbDone.Equal(refDone) {
		t.Fatalf("write path cost changed under write-back: %v vs %v", wbDone, refDone)
	}
	refFlush, _ := ref.Flush(refDone)
	if !refFlush.After(refDone) {
		t.Fatal("foreground flush charged no time")
	}
	horizon := c.Quiesce(wbDone)
	if !horizon.After(wbDone) {
		t.Fatal("background flush consumed no lane time")
	}
}

// TestWritebackQuiesceDeterministic replays the same write sequence
// twice through fresh caches and quiesces: the final horizon, stats, and
// page state must match exactly.
func TestWritebackQuiesceDeterministic(t *testing.T) {
	run := func() (time.Time, Stats) {
		c := MustNew(wbConfig(1<<30, simdisk.SSTF), simdisk.MustNew(simdisk.MemoryBackedParams()))
		defer c.Close()
		now := time.Unix(0, 0)
		for i := int64(0); i < 64; i++ {
			off := (i * 7 % 64) * c.cfg.PageSize
			now, _ = c.Write(now, off, c.cfg.PageSize)
		}
		// Threshold is unreachable, so no background drain raced: Quiesce
		// does all the work on the write-back lanes.
		return c.Quiesce(now), c.Stats()
	}
	h1, s1 := run()
	h2, s2 := run()
	if !h1.Equal(h2) {
		t.Fatalf("quiesce horizons differ: %v vs %v", h1, h2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
}
