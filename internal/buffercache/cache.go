// Package buffercache models the operating-system page cache that sits
// between the paper's benchmarks and the disk. Every qualitative effect
// the paper reports in §3.4 and §4.2 — close slower than open (dirty
// flush), cold reads orders of magnitude slower than warm ones, prefetch
// hiding sequential misses, and occasional page-fault spikes inside
// otherwise-warm scans — falls out of this cache in front of the
// simdisk model.
//
// The cache tracks residency metadata only (which pages are in memory,
// which are dirty); file contents live in the file store above it. All
// timing is simulated and deterministic for a single-threaded caller.
//
// Concurrency: the cache is lock-striped. Pages hash onto a power-of-two
// number of shards, each with its own mutex, LRU list, dirty set, and
// slice of the frame pool, so goroutines touching different stripes
// never contend. The memory budget (Config.NumPages) stays global:
// free frames flow from a shared pool into per-stripe free lists in
// batches, an atomic gauge tracks residency, and a stripe under
// pressure first drains its free frames, then harvests a frame stranded
// on a sibling's list, then evicts its own LRU, and finally reclaims a
// frame from the fullest sibling — so capacity flows to hot stripes
// instead of being statically partitioned, and eviction begins only
// once the whole budget is resident. Shards == 1 reproduces the
// original single-mutex cache's per-operation behavior exactly,
// including its eviction order, which is what the paper-fidelity
// experiments run. The one deliberate change is Flush: it now sweeps
// dirty pages in ascending page order (the old implementation walked a
// Go map, so its simulated sweep timing varied run to run).
//
// Hot path: ReadIO and WriteIO (bulk.go) process the page range in
// per-shard runs — one lock acquisition, one batched stats update, and
// one LRU refresh pass per run, with the per-page copy cost precomputed
// at New — instead of a mutex round-trip and float division per page.
// The retained page-granular path behind SetPageGranular performs
// identical transitions; equivalence tests replay workloads through
// both and assert bit-identical timing.
package buffercache

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simdisk"
)

// Backend is the storage the cache misses to. Both *simdisk.Disk and
// *simdisk.Array satisfy it; implementations must be safe for concurrent
// use, as different shards write back independently.
type Backend interface {
	Access(now time.Time, req simdisk.Request) (done time.Time, service time.Duration)
}

// RunBackend is the optional backend capability the cold path prefers:
// servicing a contiguous run of equal-length requests in one call —
// one lock acquisition and batched statistics instead of a mutex
// round-trip and full cost arithmetic per page, with completion times
// bit-identical to the equivalent Access sequence. Both *simdisk.Disk
// and *simdisk.Array implement it; eviction write-backs, write-back
// drains, and flush sweeps route through it.
type RunBackend interface {
	Backend
	AccessRun(now time.Time, r simdisk.Run) (done time.Time, service time.Duration)
}

// AsyncBackend is the optional fire-and-forget capability shared-queue
// lanes provide. Eviction write-backs and readahead are submitted while
// the caller holds a cache shard lock; on a shared queue a blocking
// submission there could deadlock the event merge (the lane that must
// produce the earlier-timestamped request may be waiting on that very
// lock), so those requests go through the Async forms. The returned
// time is the caller's stall horizon: the true completion when the
// backend can serve inline (a sole-lane queue), otherwise the
// submission time — queued background writes no longer stall the
// foreground. Private disk views do not implement this; they keep the
// original inline billing.
type AsyncBackend interface {
	Backend
	AccessAsync(now time.Time, req simdisk.Request) time.Time
	AccessRunAsync(now time.Time, r simdisk.Run) time.Time
}

// backendRun submits a contiguous run on be: one AccessRun when the
// backend supports it, the equivalent Access sequence otherwise.
func backendRun(be Backend, now time.Time, r simdisk.Run) time.Time {
	if rb, ok := be.(RunBackend); ok {
		done, _ := rb.AccessRun(now, r)
		return done
	}
	done := now
	t := now
	off := r.Offset
	for i := int64(0); i < r.Count; i++ {
		d, _ := be.Access(t, simdisk.Request{Offset: off, Length: r.Length, Write: r.Write})
		done = d
		if r.Chain {
			t = d
		}
		off += r.Length
	}
	return done
}

// Config sizes and tunes a cache.
type Config struct {
	// PageSize is the cache page (block) size in bytes.
	PageSize int64
	// NumPages is the capacity in pages, shared across all shards.
	NumPages int
	// PrefetchPages is how many additional sequential pages a miss pulls
	// in (read-ahead window). Zero disables prefetching.
	PrefetchPages int
	// WriteBehind makes writes dirty the cache and defer the disk write to
	// eviction or flush; when false every write goes straight through.
	WriteBehind bool
	// MemCopyRate is the memory bandwidth charged for cache hits, bytes/s.
	MemCopyRate float64
	// HitOverhead is the fixed cost of a cache-hit lookup, modelling the
	// managed-runtime buffer lookup path.
	HitOverhead time.Duration
	// Shards is the number of lock stripes and must be a power of two.
	// Zero takes AutoShards(), the GOMAXPROCS-derived default. One shard
	// reproduces the original global-mutex cache bit for bit.
	Shards int
	// WritebackThreshold enables background write-back: when a stripe's
	// dirty set reaches this many pages, the stripe's flusher goroutine
	// drains it through the backend's command queue on the stripe's own
	// virtual-time lane. Zero (the default) disables write-back: dirty
	// pages wait for eviction or an explicit flush, the paper's
	// flush-on-close behavior.
	WritebackThreshold int
	// WritebackBatch caps how many pages one drain submits to the disk
	// queue; zero means the whole dirty set.
	WritebackBatch int
	// WritebackPolicy orders each write-back batch (FCFS, SSTF, SCAN)
	// when the backend supports batch scheduling.
	WritebackPolicy simdisk.SchedPolicy
	// WritebackHighwater is the dirty-page high-water mark per stripe:
	// a write that leaves a stripe's dirty set at or above it stalls the
	// foreground writer until the stripe drains through the background
	// write-back queue, modelling pdflush throttling. Zero (the default)
	// never stalls writers; a positive value requires background
	// write-back (WritebackThreshold > 0).
	WritebackHighwater int
}

// defaultShards is the process-wide shard count DefaultConfig hands out:
// 1 (the paper's deterministic single-stripe configuration) unless
// SetDefaultShards raised it.
var defaultShards atomic.Int32

// defaultWriteback / defaultWritebackPolicy are the process-wide
// write-back settings DefaultConfig hands out: off (threshold 0) unless
// SetDefaultWriteback enabled it. The core options registry sets these
// for the writeback / sched_policy config keys.
var (
	defaultWriteback          atomic.Int32
	defaultWritebackBatch     atomic.Int32
	defaultWritebackPolicy    atomic.Int32
	defaultWritebackHighwater atomic.Int32
)

// SetDefaultWriteback sets the write-back threshold, per-drain batch
// cap (0 = unbounded), dirty-page high-water mark (0 = never stall
// writers), and scheduling policy DefaultConfig bakes into the
// configurations it returns; threshold 0 restores flush-on-close-only.
// Call once at startup; it is not safe to race with running
// experiments.
func SetDefaultWriteback(threshold, batch, highwater int, policy simdisk.SchedPolicy) error {
	if threshold < 0 {
		return fmt.Errorf("buffercache: default write-back threshold %d must be non-negative", threshold)
	}
	if batch < 0 {
		return fmt.Errorf("buffercache: default write-back batch %d must be non-negative", batch)
	}
	if highwater < 0 {
		return fmt.Errorf("buffercache: default write-back high-water mark %d must be non-negative", highwater)
	}
	if highwater > 0 && threshold == 0 {
		return fmt.Errorf("buffercache: write-back high-water mark %d requires background write-back (threshold > 0)", highwater)
	}
	if !policy.Valid() {
		return fmt.Errorf("buffercache: invalid default scheduling policy %v", policy)
	}
	defaultWriteback.Store(int32(threshold))
	defaultWritebackBatch.Store(int32(batch))
	defaultWritebackHighwater.Store(int32(highwater))
	defaultWritebackPolicy.Store(int32(policy))
	return nil
}

// AutoShards returns the GOMAXPROCS-derived shard count: the smallest
// power of two covering twice the processor count, clamped to [4, 256] so
// concurrent paths stay striped even on single-core machines.
func AutoShards() int {
	n := 2 * runtime.GOMAXPROCS(0)
	s := 4
	for s < n && s < 256 {
		s <<= 1
	}
	return s
}

// SetDefaultShards sets the shard count DefaultConfig bakes into the
// configurations it returns: 0 restores the deterministic single-shard
// default, otherwise n must be a power of two. Call once at startup (the
// core options registry does this for the cache_shards key); it is not
// safe to race with running experiments.
func SetDefaultShards(n int) error {
	if n < 0 || (n > 0 && n&(n-1) != 0) {
		return fmt.Errorf("buffercache: default shards %d must be 0 or a power of two", n)
	}
	defaultShards.Store(int32(n))
	return nil
}

// DefaultConfig returns the configuration used across the reproduction:
// 4 KB pages, 16 MB of cache, 8-page read-ahead, write-behind enabled,
// 1 GB/s copy bandwidth, a 1 µs hit path, and the process default shard
// count (one stripe unless SetDefaultShards raised it).
func DefaultConfig() Config {
	shards := int(defaultShards.Load())
	if shards == 0 {
		shards = 1
	}
	return Config{
		PageSize:           4 << 10,
		NumPages:           4096,
		PrefetchPages:      8,
		WriteBehind:        true,
		MemCopyRate:        1 << 30,
		HitOverhead:        time.Microsecond,
		Shards:             shards,
		WritebackThreshold: int(defaultWriteback.Load()),
		WritebackBatch:     int(defaultWritebackBatch.Load()),
		WritebackPolicy:    simdisk.SchedPolicy(defaultWritebackPolicy.Load()),
		WritebackHighwater: int(defaultWritebackHighwater.Load()),
	}
}

// ShardedConfig is DefaultConfig striped for the machine: the shard count
// is AutoShards(). Use it for concurrent workloads; single-threaded
// paper-fidelity runs keep DefaultConfig.
func ShardedConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards = AutoShards()
	return cfg
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.PageSize <= 0:
		return fmt.Errorf("buffercache: page size %d must be positive", c.PageSize)
	case c.NumPages <= 0:
		return fmt.Errorf("buffercache: num pages %d must be positive", c.NumPages)
	case c.PrefetchPages < 0:
		return fmt.Errorf("buffercache: prefetch pages %d must be non-negative", c.PrefetchPages)
	case c.MemCopyRate <= 0:
		return fmt.Errorf("buffercache: mem copy rate %v must be positive", c.MemCopyRate)
	case c.HitOverhead < 0:
		return fmt.Errorf("buffercache: hit overhead %v must be non-negative", c.HitOverhead)
	case c.Shards < 0 || (c.Shards > 0 && c.Shards&(c.Shards-1) != 0):
		return fmt.Errorf("buffercache: shards %d must be a power of two", c.Shards)
	case c.WritebackThreshold < 0:
		return fmt.Errorf("buffercache: write-back threshold %d must be non-negative", c.WritebackThreshold)
	case c.WritebackBatch < 0:
		return fmt.Errorf("buffercache: write-back batch %d must be non-negative", c.WritebackBatch)
	case c.WritebackHighwater < 0:
		return fmt.Errorf("buffercache: write-back high-water mark %d must be non-negative", c.WritebackHighwater)
	case c.WritebackHighwater > 0 && c.WritebackThreshold == 0:
		return fmt.Errorf("buffercache: write-back high-water mark %d requires background write-back (threshold > 0)", c.WritebackHighwater)
	case !c.WritebackPolicy.Valid():
		return fmt.Errorf("buffercache: invalid scheduling policy %v", c.WritebackPolicy)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Hits               int64
	Misses             int64
	PrefetchedIn       int64 // pages brought in by read-ahead
	PrefetchHits       int64 // hits on pages that read-ahead brought in
	Evictions          int64
	DirtyFlushes       int64 // pages written back (eviction, Flush, or write-back)
	WritebackPages     int64 // pages retired by the background flushers
	WritebackBatches   int64 // scheduled drains the flushers submitted
	WritebackThrottles int64 // foreground writes stalled at the dirty high-water mark
	BytesFromDisk      int64
	BytesToDisk        int64
}

// add accumulates other into s.
func (s *Stats) add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.PrefetchedIn += other.PrefetchedIn
	s.PrefetchHits += other.PrefetchHits
	s.Evictions += other.Evictions
	s.DirtyFlushes += other.DirtyFlushes
	s.WritebackPages += other.WritebackPages
	s.WritebackBatches += other.WritebackBatches
	s.WritebackThrottles += other.WritebackThrottles
	s.BytesFromDisk += other.BytesFromDisk
	s.BytesToDisk += other.BytesToDisk
}

// HitRate returns hits / (hits+misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// streamTails is how many concurrent sequential streams read-ahead
// detection tracks, mirroring the multi-stream readahead of real
// operating systems.
const streamTails = 4

// IO is a per-stream I/O context: the backend view misses and
// write-backs are charged against, plus this stream's read-ahead
// detection state. The cache's default context uses the cache's own
// backend and is what the plain Read/Write/Flush methods run on —
// bit-identical to the pre-context cache. Independent virtual-time
// sessions (fsim.Session) carry their own IO so their disk timing and
// sequential-stream detection never leak across lanes.
type IO struct {
	backend Backend
	// run is the backend's contiguous-run capability, asserted once at
	// NewIO so the per-run hot path never re-checks; nil when the
	// backend only supports single requests.
	run RunBackend
	// async is the backend's fire-and-forget capability (shared-queue
	// lanes); nil for private disk views, which bill evictions inline.
	async AsyncBackend
	// batch is the backend's batch-scheduling capability, used by the
	// flush sweep; nil when the backend cannot order a batch itself.
	batch BatchBackend

	// tails holds the last page of several recent read streams, so that
	// interleaved sequential scans (one per file or region, as the
	// Cholesky and multi-pass Dmine traces produce) each keep their
	// read-ahead detection. The slots are atomics rather than a mutex so
	// stream detection never serializes the striped hit path; under
	// concurrency a race can only mis-detect sequentiality, never corrupt
	// state.
	tails    [streamTails]atomic.Int64
	nextTail atomic.Uint32
}

// DefaultIO returns the cache's own I/O context, the one the plain
// Read/Write/Flush methods run on.
func (c *Cache) DefaultIO() *IO { return c.defIO }

// NewIO returns a fresh I/O context over backend (nil means the cache's
// own backend): untracked streams, independent miss accounting target.
func (c *Cache) NewIO(backend Backend) *IO {
	if backend == nil {
		backend = c.backend
	}
	io := &IO{backend: backend}
	io.run, _ = backend.(RunBackend)
	io.async, _ = backend.(AsyncBackend)
	io.batch, _ = backend.(BatchBackend)
	io.reset()
	return io
}

// accessRun submits a contiguous page run on the context's backend view.
func (io *IO) accessRun(now time.Time, r simdisk.Run) time.Time {
	if io.run != nil {
		done, _ := io.run.AccessRun(now, r)
		return done
	}
	return backendRun(io.backend, now, r)
}

// evictAccess submits a background request — an eviction write-back or
// readahead issued under a shard lock — and returns the caller's stall
// horizon. Private views bill inline (unchanged behavior); shared-queue
// lanes take the non-blocking async path.
func (io *IO) evictAccess(now time.Time, req simdisk.Request) time.Time {
	if io.async != nil {
		return io.async.AccessAsync(now, req)
	}
	done, _ := io.backend.Access(now, req)
	return done
}

// evictRun is evictAccess for contiguous runs.
func (io *IO) evictRun(now time.Time, r simdisk.Run) time.Time {
	if io.async != nil {
		return io.async.AccessRunAsync(now, r)
	}
	return io.accessRun(now, r)
}

// reset clears the stream-tail slots to the never-adjacent sentinel.
func (io *IO) reset() {
	for i := range io.tails {
		io.tails[i].Store(-2) // never adjacent to a real first access
	}
}

// noteRead records a read ending at page last and reports whether the
// read starting at page first continued one of the tracked streams.
func (io *IO) noteRead(first, last int64) bool {
	for i := range io.tails {
		t := io.tails[i].Load()
		if first == t+1 || first == t {
			io.tails[i].Store(last)
			return true
		}
	}
	// New stream: replace the oldest slot.
	i := (io.nextTail.Add(1) - 1) % streamTails
	io.tails[i].Store(last)
	return false
}

// Cache is the page cache. It is safe for concurrent use.
type Cache struct {
	cfg     Config
	backend Backend

	shards     []*shard
	shardShift uint // stripe index = fibonacci hash >> (64 - shardShift)

	// pool holds the frames not resident anywhere: the global memory
	// budget. used is the atomic residency gauge (== NumPages - free
	// frames at rest), making ResidentPages O(1).
	poolMu sync.Mutex
	pool   []*frame
	used   atomic.Int64

	// defIO is the context the plain (non-IO) methods run on.
	defIO *IO

	// hitPageCost is copyCost(PageSize) precomputed at New, so the warm
	// read loop charges hits with integer arithmetic only.
	hitPageCost time.Duration

	// pageGranular routes ReadIO/WriteIO through the original per-page
	// path instead of the bulk run path. Test-only (SetPageGranular):
	// the equivalence suites replay workloads through both and assert
	// identical timing and statistics.
	pageGranular bool

	// wb is the background write-back subsystem; nil when disabled.
	// wbBackend is the disk view its drains are timed against — the
	// cache's own backend unless SetWritebackBackend installed a private
	// view (fsim does, so background flushing never perturbs foreground
	// disk timing: the lanes are independent by construction).
	wb        *writeback
	wbBackend Backend
}

// New builds a cache over backend. It returns an error for an invalid
// configuration or nil backend.
func New(cfg Config, backend Backend) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("buffercache: nil backend")
	}
	nShards := cfg.Shards
	if nShards == 0 {
		nShards = AutoShards()
	}
	var shift uint
	for 1<<shift < nShards {
		shift++
	}
	c := &Cache{
		cfg:        cfg,
		backend:    backend,
		shards:     make([]*shard, nShards),
		shardShift: shift,
		pool:       make([]*frame, 0, cfg.NumPages),
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			free: make([]*frame, 0, poolRefillBatch),
		}
		c.shards[i].table.init(cfg.NumPages/nShards + 1)
	}
	c.defIO = c.NewIO(backend)
	c.wbBackend = backend
	c.hitPageCost = c.copyCost(cfg.PageSize)
	for i := 0; i < cfg.NumPages; i++ {
		c.pool = append(c.pool, &frame{page: -1})
	}
	if cfg.WritebackThreshold > 0 {
		c.wb = newWriteback(c)
	}
	return c, nil
}

// SetWritebackBackend installs the disk view background write-back is
// timed against. Call it once right after New, before any traffic:
// giving the flushers their own view keeps foreground disk timing
// deterministic — background drains overlap the foreground instead of
// queueing on its busy horizon.
func (c *Cache) SetWritebackBackend(be Backend) {
	if be != nil {
		c.wbBackend = be
	}
}

// Close stops the background flusher goroutines, if any. A cache built
// without write-back has nothing to stop; Close is then a no-op, so it
// is always safe (and idempotent) to call.
func (c *Cache) Close() {
	if c.wb != nil {
		c.wb.stopAll()
	}
}

// WritebackEnabled reports whether background write-back is on.
func (c *Cache) WritebackEnabled() bool { return c.wb != nil }

// MustNew is New that panics on error, for literal wiring in tools/tests.
func MustNew(cfg Config, backend Backend) *Cache {
	c, err := New(cfg, backend)
	if err != nil {
		panic(err)
	}
	return c
}

// shardOf maps a page number to its lock stripe by fibonacci hashing, so
// contiguous page runs spread across stripes instead of convoying on one.
func (c *Cache) shardOf(page int64) *shard {
	return c.shards[c.shardIndex(page)]
}

// shardIndex returns the stripe index for page. With one shard the shift
// is 64, which Go defines to yield 0.
func (c *Cache) shardIndex(page int64) int {
	h := uint64(page) * 0x9E3779B97F4A7C15
	return int(h >> (64 - c.shardShift))
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumShards returns the number of lock stripes.
func (c *Cache) NumShards() int { return len(c.shards) }

// Stats aggregates the per-shard counters into one snapshot. Each stripe
// is summed under its own lock in index order, so the totals are exact
// whenever the cache is quiescent and internally consistent (every page
// access counted exactly once) even while other goroutines run.
func (c *Cache) Stats() Stats {
	var total Stats
	for _, s := range c.shards {
		s.mu.Lock()
		total.add(s.stats)
		s.mu.Unlock()
	}
	return total
}

// Resident reports whether the page containing offset is cached.
func (c *Cache) Resident(offset int64) bool {
	return c.isResident(offset / c.cfg.PageSize)
}

// ResidentPages returns the number of cached pages, read from the atomic
// budget gauge.
func (c *Cache) ResidentPages() int {
	return int(c.used.Load())
}

// DirtyPages returns the number of dirty resident pages by summing the
// per-shard dirty sets.
func (c *Cache) DirtyPages() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.dirty
		s.mu.Unlock()
	}
	return n
}

// pageRange returns the first and last page numbers covering
// [offset, offset+length).
func (c *Cache) pageRange(offset, length int64) (first, last int64) {
	if length <= 0 {
		p := offset / c.cfg.PageSize
		return p, p - 1 // empty range
	}
	return offset / c.cfg.PageSize, (offset + length - 1) / c.cfg.PageSize
}

// copyCost charges memory-bandwidth time for n bytes plus the hit path.
func (c *Cache) copyCost(n int64) time.Duration {
	return c.cfg.HitOverhead + time.Duration(float64(n)/c.cfg.MemCopyRate*float64(time.Second))
}

// Read simulates reading [offset, offset+length) on the cache's default
// I/O context. It returns the completion time and the elapsed duration.
func (c *Cache) Read(now time.Time, offset, length int64) (time.Time, time.Duration) {
	return c.ReadIO(c.defIO, now, offset, length)
}

// SetPageGranular routes the data path through the original per-page
// lookup/install loop instead of the bulk run path. The two paths
// perform identical transitions — this switch exists so equivalence
// tests can prove it. Call before any traffic; not safe to race with
// running operations.
func (c *Cache) SetPageGranular(on bool) { c.pageGranular = on }

// readIOPages is the retained page-granular read path: one lock
// acquisition, map lookup, and LRU splice per page. ReadIO (bulk.go)
// performs the same transitions run-at-a-time; the equivalence tests
// replay workloads through both.
func (c *Cache) readIOPages(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	if length < 0 {
		length = 0
	}
	done := now
	first, last := c.pageRange(offset, length)
	if last < first { // zero-length read: lookup cost only
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}

	sequential := io.noteRead(first, last)

	// Walk the page range, coalescing misses into contiguous disk runs.
	page := first
	for page <= last {
		if c.touchHit(page) {
			done = done.Add(c.copyCost(c.cfg.PageSize))
			page++
			continue
		}
		// Miss: extend the run over consecutive missing pages, which may
		// span stripes.
		runStart := page
		page++
		for page <= last && !c.isResident(page) {
			page++
		}
		runEnd := page - 1 // inclusive
		nDemand := runEnd - runStart + 1
		rs := c.shardOf(runStart)
		rs.mu.Lock()
		rs.stats.Misses += nDemand
		rs.stats.BytesFromDisk += nDemand * c.cfg.PageSize
		rs.mu.Unlock()
		diskDone, _ := io.backend.Access(done, simdisk.Request{
			Offset: runStart * c.cfg.PageSize,
			Length: nDemand * c.cfg.PageSize,
		})
		done = diskDone
		for p := runStart; p <= runEnd; p++ {
			c.installPage(io, done, p, false, false, false)
		}
		// Asynchronous read-ahead: queue the next window behind the
		// demand fetch. It occupies the disk but is not charged to this
		// read — later sequential reads find the pages resident.
		if sequential && c.cfg.PrefetchPages > 0 {
			pfStart := runEnd + 1
			pfEnd := runEnd + int64(c.cfg.PrefetchPages)
			io.evictAccess(diskDone, simdisk.Request{
				Offset: pfStart * c.cfg.PageSize,
				Length: (pfEnd - pfStart + 1) * c.cfg.PageSize,
			})
			var brought int64
			for p := pfStart; p <= pfEnd; p++ {
				if fresh, _, _ := c.installPage(io, diskDone, p, false, true, false); fresh {
					brought++
				}
			}
			if brought > 0 {
				rs.mu.Lock()
				rs.stats.PrefetchedIn += brought
				rs.stats.BytesFromDisk += brought * c.cfg.PageSize
				rs.mu.Unlock()
			}
		}
		// Copy the demanded part of the run to the caller.
		done = done.Add(c.copyCost(nDemand * c.cfg.PageSize))
	}
	return done, done.Sub(now)
}

// Write simulates writing [offset, offset+length) on the cache's
// default I/O context.
func (c *Cache) Write(now time.Time, offset, length int64) (time.Time, time.Duration) {
	return c.WriteIO(c.defIO, now, offset, length)
}

// writeIOPages is the retained page-granular write path; WriteIO
// (bulk.go) performs the same transitions run-at-a-time. The dirty
// high-water stall is checked at the same shard-run boundaries as the
// bulk path, so the two paths stay bit-identical with throttling on.
func (c *Cache) writeIOPages(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	if length < 0 {
		length = 0
	}
	done := now
	first, last := c.pageRange(offset, length)
	if last < first {
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}
	for page := first; page <= last; {
		si := c.shardIndex(page)
		runEnd := c.shardRunEnd(si, page, last)
		runDirtied := false
		for ; page <= runEnd; page++ {
			_, dirtied, horizon := c.installPage(io, done, page, c.cfg.WriteBehind, false, true)
			runDirtied = runDirtied || dirtied
			if horizon.After(done) {
				done = horizon // eviction write-back stalled us
			}
		}
		if runDirtied && c.cfg.WritebackHighwater > 0 {
			s := c.shards[si]
			s.mu.Lock()
			dc := s.dirty
			s.mu.Unlock()
			if dc >= c.cfg.WritebackHighwater {
				done = c.stallHighwater(si, done)
			}
		}
	}
	done = done.Add(c.copyCost(length))
	if !c.cfg.WriteBehind {
		diskDone, _ := io.backend.Access(done, simdisk.Request{Offset: offset, Length: length, Write: true})
		s := c.shardOf(first)
		s.mu.Lock()
		s.stats.BytesToDisk += length
		s.mu.Unlock()
		done = diskDone
	}
	return done, done.Sub(now)
}

// Flush writes back every dirty page and returns the completion time.
// This is what makes close slower than open in the paper's traces.
// The pass is two-phase: collect the dirty set from every stripe, then
// write back in ascending page order — one global elevator sweep whose
// simulated timing is deterministic and independent of the shard count.
// Pages dirtied concurrently with the sweep are left for the next flush;
// pages cleaned concurrently are skipped.
func (c *Cache) Flush(now time.Time) (time.Time, time.Duration) {
	var pages []int64
	for _, s := range c.shards {
		s.mu.Lock()
		s.table.each(func(f *frame) {
			if f.dirty {
				pages = append(pages, f.page)
			}
		})
		s.mu.Unlock()
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	done := c.flushPagesIO(c.defIO, now, pages)
	return done, done.Sub(now)
}

// cleanForFlush transitions page dirty->clean and accounts the flush,
// reporting whether there was a dirty resident page to write. The
// write-back itself is billed by the caller, which batches contiguous
// cleaned pages into single disk runs.
func (c *Cache) cleanForFlush(page int64) bool {
	s := c.shardOf(page)
	s.mu.Lock()
	f := s.table.get(page)
	if f == nil || !f.dirty {
		s.mu.Unlock()
		return false
	}
	f.dirty = false
	// Cleaning abandons the page's arrival-queue entry: a later re-dirty
	// enqueues at the tail, as arrival order demands.
	f.inWBQueue = false
	s.dirty--
	s.stats.DirtyFlushes++
	s.stats.BytesToDisk += c.cfg.PageSize
	s.mu.Unlock()
	return true
}

// flushRun accumulates an ascending stream of candidate pages into
// maximal contiguous still-dirty spans and submits each as one chained
// AccessRun — the same writes at the same completion-chained times as a
// page-at-a-time loop, in fewer disk submissions. Flush, FlushRangeIO,
// and flushPagesIO all feed it, so the grouping logic exists once.
type flushRun struct {
	c           *Cache
	io          *IO
	done        time.Time
	start, last int64
	count       int64
}

// add offers the next candidate page (callers feed pages in ascending
// order). A page that is not resident-and-dirty is skipped; a dirty one
// extends the open span or flushes it and starts a new one.
func (fr *flushRun) add(page int64) {
	if !fr.c.cleanForFlush(page) {
		return
	}
	fr.addClean(page)
}

// addClean extends spans over a page the caller already cleaned
// (flushPagesIO cleans before billing, so the batched and chained
// billing paths share one collection pass).
func (fr *flushRun) addClean(page int64) {
	if fr.count > 0 && page == fr.last+1 {
		fr.last = page
		fr.count++
		return
	}
	fr.flush()
	fr.start, fr.last, fr.count = page, page, 1
}

// flush submits the open span, if any.
func (fr *flushRun) flush() {
	if fr.count == 0 {
		return
	}
	fr.done = fr.io.accessRun(fr.done, simdisk.Run{
		Offset: fr.start * fr.c.cfg.PageSize,
		Length: fr.c.cfg.PageSize,
		Count:  fr.count,
		Write:  true,
		Chain:  true,
	})
	fr.count = 0
}

// flushPagesIO writes back the still-dirty pages of the ascending
// candidate list on io's backend view and returns the final completion
// horizon. The sweep is scheduled rather than hand-chained: when the
// backend can batch-schedule (both simdisk devices and shared-queue
// lanes can), the cleaned pages go to ServeBatch as one sweep ordered
// by the configured write-back policy — under a shared queue the whole
// sweep takes its place in the contended disk queue. For an FCFS policy
// over the ascending page list the per-request completions chain on the
// device's busy horizon exactly as the old caller-chained elevator did,
// so the default configuration's timing is unchanged; plain backends
// without batch scheduling keep the chained spans as the fallback.
func (c *Cache) flushPagesIO(io *IO, done time.Time, pages []int64) time.Time {
	live := make([]int64, 0, len(pages))
	for _, page := range pages {
		if c.cleanForFlush(page) {
			live = append(live, page)
		}
	}
	if len(live) == 0 {
		return done
	}
	if io.batch != nil {
		reqs := make([]simdisk.Request, len(live))
		for i, page := range live {
			reqs[i] = simdisk.Request{Offset: page * c.cfg.PageSize, Length: c.cfg.PageSize, Write: true}
		}
		_, end := io.batch.ServeBatch(done, reqs, c.cfg.WritebackPolicy)
		return end
	}
	fr := flushRun{c: c, io: io, done: done}
	for _, page := range live {
		fr.addClean(page)
	}
	fr.flush()
	return fr.done
}

// FlushRange writes back dirty pages intersecting [offset,
// offset+length) on the cache's default I/O context.
func (c *Cache) FlushRange(now time.Time, offset, length int64) (time.Time, time.Duration) {
	return c.FlushRangeIO(c.defIO, now, offset, length)
}

// FlushRangeIO writes back dirty pages intersecting [offset,
// offset+length) on io's backend view. File stores use it to flush one
// file's pages on close without disturbing the rest of the cache.
// Narrow ranges walk the pages directly; wide ranges (a whole-file
// close over a large sparse file) collect the dirty pages from the
// stripes' resident sets instead, so the flush costs the size of the
// dirty set, not of the range. Either way the pages written back, their
// ascending order, and so the simulated timing are identical.
func (c *Cache) FlushRangeIO(io *IO, now time.Time, offset, length int64) (time.Time, time.Duration) {
	done := now
	if length <= 0 {
		return done, 0
	}
	first, last := c.pageRange(offset, length)
	if span := last - first + 1; span <= int64(c.cfg.NumPages) {
		fr := flushRun{c: c, io: io, done: done}
		for page := first; page <= last; page++ {
			fr.add(page)
		}
		fr.flush()
		return fr.done, fr.done.Sub(now)
	}
	var pages []int64
	for _, s := range c.shards {
		s.mu.Lock()
		s.table.each(func(f *frame) {
			if f.dirty && f.page >= first && f.page <= last {
				pages = append(pages, f.page)
			}
		})
		s.mu.Unlock()
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	done = c.flushPagesIO(io, done, pages)
	return done, done.Sub(now)
}

// Invalidate drops every resident page without writing anything back.
// Tests use it to recreate a cold cache.
func (c *Cache) Invalidate() {
	for _, s := range c.shards {
		s.mu.Lock()
		freed := make([]*frame, 0, s.table.len())
		s.table.each(func(f *frame) {
			s.lru.remove(f)
			f.page = -1
			f.dirty = false
			f.prefetched = false
			f.inWBQueue = false
			freed = append(freed, f)
		})
		s.table.reset()
		s.dirty = 0
		s.dirtyOrder = s.dirtyOrder[:0]
		s.size.Store(0)
		c.used.Add(-int64(len(freed)))
		s.mu.Unlock()
		for _, f := range freed {
			c.pushFree(f)
		}
	}
	c.defIO.reset()
}
