// Package buffercache models the operating-system page cache that sits
// between the paper's benchmarks and the disk. Every qualitative effect
// the paper reports in §3.4 and §4.2 — close slower than open (dirty
// flush), cold reads orders of magnitude slower than warm ones, prefetch
// hiding sequential misses, and occasional page-fault spikes inside
// otherwise-warm scans — falls out of this cache in front of the
// simdisk model.
//
// The cache tracks residency metadata only (which pages are in memory,
// which are dirty); file contents live in the file store above it. All
// timing is simulated and deterministic.
package buffercache

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simdisk"
)

// Backend is the storage the cache misses to. Both *simdisk.Disk and
// *simdisk.Array satisfy it.
type Backend interface {
	Access(now time.Time, req simdisk.Request) (done time.Time, service time.Duration)
}

// Config sizes and tunes a cache.
type Config struct {
	// PageSize is the cache page (block) size in bytes.
	PageSize int64
	// NumPages is the capacity in pages.
	NumPages int
	// PrefetchPages is how many additional sequential pages a miss pulls
	// in (read-ahead window). Zero disables prefetching.
	PrefetchPages int
	// WriteBehind makes writes dirty the cache and defer the disk write to
	// eviction or flush; when false every write goes straight through.
	WriteBehind bool
	// MemCopyRate is the memory bandwidth charged for cache hits, bytes/s.
	MemCopyRate float64
	// HitOverhead is the fixed cost of a cache-hit lookup, modelling the
	// managed-runtime buffer lookup path.
	HitOverhead time.Duration
}

// DefaultConfig returns the configuration used across the reproduction:
// 4 KB pages, 16 MB of cache, 8-page read-ahead, write-behind enabled,
// 1 GB/s copy bandwidth and a 1 µs hit path.
func DefaultConfig() Config {
	return Config{
		PageSize:      4 << 10,
		NumPages:      4096,
		PrefetchPages: 8,
		WriteBehind:   true,
		MemCopyRate:   1 << 30,
		HitOverhead:   time.Microsecond,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.PageSize <= 0:
		return fmt.Errorf("buffercache: page size %d must be positive", c.PageSize)
	case c.NumPages <= 0:
		return fmt.Errorf("buffercache: num pages %d must be positive", c.NumPages)
	case c.PrefetchPages < 0:
		return fmt.Errorf("buffercache: prefetch pages %d must be non-negative", c.PrefetchPages)
	case c.MemCopyRate <= 0:
		return fmt.Errorf("buffercache: mem copy rate %v must be positive", c.MemCopyRate)
	case c.HitOverhead < 0:
		return fmt.Errorf("buffercache: hit overhead %v must be non-negative", c.HitOverhead)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	PrefetchedIn  int64 // pages brought in by read-ahead
	PrefetchHits  int64 // hits on pages that read-ahead brought in
	Evictions     int64
	DirtyFlushes  int64 // pages written back (eviction or Flush)
	BytesFromDisk int64
	BytesToDisk   int64
}

// HitRate returns hits / (hits+misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is the page cache. It is safe for concurrent use.
type Cache struct {
	cfg     Config
	backend Backend

	mu       sync.Mutex
	resident map[int64]*frame
	lru      lruList
	free     []*frame
	// tails holds the last page of several recent read streams, so that
	// interleaved sequential scans (one per file or region, as the
	// Cholesky and multi-pass Dmine traces produce) each keep their
	// read-ahead detection — mirroring the multi-stream readahead of real
	// operating systems.
	tails    [4]int64
	nextTail int
	stats    Stats
}

// New builds a cache over backend. It returns an error for an invalid
// configuration or nil backend.
func New(cfg Config, backend Backend) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("buffercache: nil backend")
	}
	c := &Cache{
		cfg:      cfg,
		backend:  backend,
		resident: make(map[int64]*frame, cfg.NumPages),
	}
	for i := range c.tails {
		c.tails[i] = -2 // never adjacent to a real first access
	}
	for i := 0; i < cfg.NumPages; i++ {
		c.free = append(c.free, &frame{page: -1})
	}
	return c, nil
}

// noteRead records a read ending at page last and reports whether the
// read starting at page first continued one of the tracked streams.
// Caller holds mu.
func (c *Cache) noteRead(first, last int64) bool {
	for i, t := range c.tails {
		if first == t+1 || first == t {
			c.tails[i] = last
			return true
		}
	}
	// New stream: replace the oldest slot.
	c.tails[c.nextTail] = last
	c.nextTail = (c.nextTail + 1) % len(c.tails)
	return false
}

// MustNew is New that panics on error, for literal wiring in tools/tests.
func MustNew(cfg Config, backend Backend) *Cache {
	c, err := New(cfg, backend)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Resident reports whether the page containing offset is cached.
func (c *Cache) Resident(offset int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.resident[offset/c.cfg.PageSize]
	return ok
}

// ResidentPages returns the number of cached pages.
func (c *Cache) ResidentPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.resident)
}

// pageRange returns the first and last page numbers covering
// [offset, offset+length).
func (c *Cache) pageRange(offset, length int64) (first, last int64) {
	if length <= 0 {
		p := offset / c.cfg.PageSize
		return p, p - 1 // empty range
	}
	return offset / c.cfg.PageSize, (offset + length - 1) / c.cfg.PageSize
}

// copyCost charges memory-bandwidth time for n bytes plus the hit path.
func (c *Cache) copyCost(n int64) time.Duration {
	return c.cfg.HitOverhead + time.Duration(float64(n)/c.cfg.MemCopyRate*float64(time.Second))
}

// evictOne frees the LRU frame, writing it back if dirty. Caller holds mu.
// It returns the time writeback completed (== now when clean).
func (c *Cache) evictOne(now time.Time) time.Time {
	victim := c.lru.back()
	if victim == nil {
		return now
	}
	c.lru.remove(victim)
	delete(c.resident, victim.page)
	c.stats.Evictions++
	done := now
	if victim.dirty {
		done, _ = c.backend.Access(now, simdisk.Request{
			Offset: victim.page * c.cfg.PageSize,
			Length: c.cfg.PageSize,
			Write:  true,
		})
		c.stats.DirtyFlushes++
		c.stats.BytesToDisk += c.cfg.PageSize
	}
	victim.page = -1
	victim.dirty = false
	victim.prefetched = false
	c.free = append(c.free, victim)
	return done
}

// install makes page resident, evicting as needed. Caller holds mu.
// Returns the eviction writeback completion horizon.
func (c *Cache) install(now time.Time, page int64, dirty, prefetched bool) time.Time {
	if f, ok := c.resident[page]; ok {
		if dirty {
			f.dirty = true
		}
		c.lru.moveToFront(f)
		return now
	}
	horizon := now
	if len(c.free) == 0 {
		horizon = c.evictOne(now)
	}
	f := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	f.page = page
	f.dirty = dirty
	f.prefetched = prefetched
	c.resident[page] = f
	c.lru.pushFront(f)
	return horizon
}

// Read simulates reading [offset, offset+length). It returns the
// completion time and the elapsed duration. Resident pages cost memory
// copies; missing pages are fetched from the backend in contiguous runs,
// optionally extended by the read-ahead window when the access pattern is
// sequential.
func (c *Cache) Read(now time.Time, offset, length int64) (time.Time, time.Duration) {
	if length < 0 {
		length = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	done := now
	first, last := c.pageRange(offset, length)
	if last < first { // zero-length read: lookup cost only
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}

	sequential := c.noteRead(first, last)

	// Walk the page range, coalescing misses into contiguous disk runs.
	page := first
	for page <= last {
		if f, ok := c.resident[page]; ok {
			c.stats.Hits++
			if f.prefetched {
				c.stats.PrefetchHits++
				f.prefetched = false
			}
			c.lru.moveToFront(f)
			done = done.Add(c.copyCost(c.cfg.PageSize))
			page++
			continue
		}
		// Miss: extend the run over consecutive missing pages.
		runStart := page
		for page <= last {
			if _, ok := c.resident[page]; ok {
				break
			}
			page++
		}
		runEnd := page - 1 // inclusive
		nDemand := runEnd - runStart + 1
		c.stats.Misses += nDemand
		c.stats.BytesFromDisk += nDemand * c.cfg.PageSize
		diskDone, _ := c.backend.Access(done, simdisk.Request{
			Offset: runStart * c.cfg.PageSize,
			Length: nDemand * c.cfg.PageSize,
		})
		done = diskDone
		for p := runStart; p <= runEnd; p++ {
			c.install(done, p, false, false)
		}
		// Asynchronous read-ahead: queue the next window behind the
		// demand fetch. It occupies the disk but is not charged to this
		// read — later sequential reads find the pages resident.
		if sequential && c.cfg.PrefetchPages > 0 {
			pfStart := runEnd + 1
			pfEnd := runEnd + int64(c.cfg.PrefetchPages)
			c.backend.Access(diskDone, simdisk.Request{
				Offset: pfStart * c.cfg.PageSize,
				Length: (pfEnd - pfStart + 1) * c.cfg.PageSize,
			})
			for p := pfStart; p <= pfEnd; p++ {
				if _, ok := c.resident[p]; ok {
					continue
				}
				c.stats.PrefetchedIn++
				c.stats.BytesFromDisk += c.cfg.PageSize
				c.install(diskDone, p, false, true)
			}
		}
		// Copy the demanded part of the run to the caller.
		done = done.Add(c.copyCost(nDemand * c.cfg.PageSize))
	}
	return done, done.Sub(now)
}

// Write simulates writing [offset, offset+length). With write-behind the
// pages are dirtied in memory at copy cost; otherwise the data also goes
// straight to the backend.
func (c *Cache) Write(now time.Time, offset, length int64) (time.Time, time.Duration) {
	if length < 0 {
		length = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	done := now
	first, last := c.pageRange(offset, length)
	if last < first {
		d := now.Add(c.cfg.HitOverhead)
		return d, d.Sub(now)
	}
	for page := first; page <= last; page++ {
		if _, ok := c.resident[page]; ok {
			c.stats.Hits++
		} else {
			c.stats.Misses++
		}
		horizon := c.install(done, page, c.cfg.WriteBehind, false)
		if horizon.After(done) {
			done = horizon // eviction write-back stalled us
		}
	}
	done = done.Add(c.copyCost(length))
	if !c.cfg.WriteBehind {
		diskDone, _ := c.backend.Access(done, simdisk.Request{Offset: offset, Length: length, Write: true})
		c.stats.BytesToDisk += length
		done = diskDone
	}
	return done, done.Sub(now)
}

// Flush writes back every dirty page and returns the completion time.
// This is what makes close slower than open in the paper's traces.
func (c *Cache) Flush(now time.Time) (time.Time, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := now
	for _, f := range c.resident {
		if !f.dirty {
			continue
		}
		var d time.Time
		d, _ = c.backend.Access(done, simdisk.Request{
			Offset: f.page * c.cfg.PageSize,
			Length: c.cfg.PageSize,
			Write:  true,
		})
		f.dirty = false
		c.stats.DirtyFlushes++
		c.stats.BytesToDisk += c.cfg.PageSize
		done = d
	}
	return done, done.Sub(now)
}

// FlushRange writes back dirty pages intersecting [offset, offset+length).
// File stores use it to flush one file's pages on close without disturbing
// the rest of the cache.
func (c *Cache) FlushRange(now time.Time, offset, length int64) (time.Time, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := now
	if length <= 0 {
		return done, 0
	}
	first, last := c.pageRange(offset, length)
	for page := first; page <= last; page++ {
		f, ok := c.resident[page]
		if !ok || !f.dirty {
			continue
		}
		var d time.Time
		d, _ = c.backend.Access(done, simdisk.Request{
			Offset: page * c.cfg.PageSize,
			Length: c.cfg.PageSize,
			Write:  true,
		})
		f.dirty = false
		c.stats.DirtyFlushes++
		c.stats.BytesToDisk += c.cfg.PageSize
		done = d
	}
	return done, done.Sub(now)
}

// DirtyPages returns the number of dirty resident pages.
func (c *Cache) DirtyPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, f := range c.resident {
		if f.dirty {
			n++
		}
	}
	return n
}

// Invalidate drops every resident page without writing anything back.
// Tests use it to recreate a cold cache.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for page, f := range c.resident {
		c.lru.remove(f)
		delete(c.resident, page)
		f.page = -1
		f.dirty = false
		f.prefetched = false
		c.free = append(c.free, f)
	}
	for i := range c.tails {
		c.tails[i] = -2
	}
}
