package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "errorcheck",
		"table1", "table2", "table3", "table4", "table5", "table6", "fig6",
		"vmcompare", "sensitivity", "catalog", "distload",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig4")
	if !ok || e.ID != "fig4" || e.Kind != KindFigure {
		t.Fatalf("ByID(fig4) = %+v, %v", e, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestKindString(t *testing.T) {
	if KindTable.String() != "table" || KindFigure.String() != "figure" || KindCheck.String() != "check" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"errorcheck"}, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "errorcheck") || !strings.Contains(out, "PASS") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run(&bytes.Buffer{}, []string{"bogus"}, "text"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunDeduplicates(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"errorcheck", "errorcheck"}, "text"); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "=== errorcheck"); n != 1 {
		t.Fatalf("duplicate id ran %d times", n)
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"fig3"}, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "component,CPU,IO") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestSortIDs(t *testing.T) {
	ids := []string{"table6", "fig2", "zzz", "table1", "aaa"}
	SortIDs(ids)
	want := []string{"fig2", "table1", "table6", "aaa", "zzz"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortIDs = %v, want %v", ids, want)
		}
	}
}

// TestRunWebExperiments exercises the experiments that stand up real TCP
// servers; the appmodel full-scale runs are covered by TestRunAll below.
func TestRunWebExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"table5", "table6"}, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 5", "Table 6", "7501", "14063"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run in -short mode")
	}
	var buf bytes.Buffer
	if err := Run(&buf, []string{"all"}, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "=== "+id) {
			t.Errorf("suite output missing experiment %s", id)
		}
	}
}

func TestRunToDir(t *testing.T) {
	dir := t.TempDir()
	if err := RunToDir(dir, []string{"errorcheck", "fig1"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"errorcheck.txt", "fig1.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing artifact %s: %v", want, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "errorcheck.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "PASS") {
		t.Fatalf("artifact contents:\n%s", data)
	}
}

func TestRunToDirUnknownExperiment(t *testing.T) {
	if err := RunToDir(t.TempDir(), []string{"bogus"}); err == nil {
		t.Fatal("unknown id accepted")
	}
}
