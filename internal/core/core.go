// Package core is the benchmark suite's public surface: a registry of
// every experiment in the paper — each table and figure of the evaluation
// plus the §2.3 model-error check — with a uniform way to run them and
// render their artifacts.
//
// The three benchmarks underneath are:
//
//	appmodel  — benchmark 1, the application behavioral model (Figs. 2-5)
//	tracesim  — benchmark 2, the trace-driven simulator (Tables 1-4)
//	webserver — benchmark 3, the multithreaded web server (Tables 5-6, Fig. 6)
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/appmodel"
	"repro/internal/distbench"
	"repro/internal/metrics"
	"repro/internal/tracesim"
	"repro/internal/vmcompare"
	"repro/internal/webserver"
)

// Kind classifies an experiment's artifact.
type Kind int

// Artifact kinds.
const (
	KindTable Kind = iota
	KindFigure
	KindCheck
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindFigure:
		return "figure"
	case KindCheck:
		return "check"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Result is a finished experiment's renderable artifact.
type Result struct {
	ID    string
	Title string
	Kind  Kind
	// Text is the rendered table or figure.
	Text string
	// CSV is the machine-readable form, when the artifact has one.
	CSV string
	// Values are the artifact's headline numbers (speedup points, trial
	// latencies, error rates) for programmatic consumers.
	Values []float64
	// Notes carries reproduction commentary (paper-vs-measured caveats).
	Notes []string
}

// Experiment is one regenerable table, figure, or check.
type Experiment struct {
	ID    string
	Title string
	Kind  Kind
	Run   func() (Result, error)
}

// Experiments returns the full registry in paper order, configured with
// the process-wide options (the reproduction defaults unless SetOptions
// was called).
func Experiments() []Experiment { return ExperimentsWith(current) }

// ExperimentsWith returns the registry configured by opts; zero fields
// take the defaults.
func ExperimentsWith(opts Options) []Experiment {
	opts = opts.fillDefaults()
	machine := opts.Machine
	base := opts.Base
	traceParams := opts.TraceParams

	return []Experiment{
		{
			ID:    "fig1",
			Title: "Figure 1: example program behaviour (working sets and phases)",
			Kind:  KindFigure,
			Run: func() (Result, error) {
				out, err := appmodel.RenderTimeline(appmodel.FigureExample(), 100*time.Second, 64)
				if err != nil {
					return Result{}, err
				}
				return Result{
					Text: out,
					Notes: []string{
						"~Γ = [(0.52,0.29,0.287,1), (0,0.85,0.185,2), (0,0.57,0.194,1), (0.81,0,0.148,1)]",
					},
				}, nil
			},
		},
		{
			ID:    "fig2",
			Title: "Figure 2: QCRD execution time of computation and disk I/O",
			Kind:  KindFigure,
			Run: func() (Result, error) {
				fig, res, err := appmodel.Figure2(machine, base)
				if err != nil {
					return Result{}, err
				}
				return Result{
					Text: fig.RenderBars(40),
					CSV:  fig.CSV(),
					Values: []float64{
						res.App.CPU.Seconds(), res.App.IO.Seconds(),
					},
					Notes: []string{
						fmt.Sprintf("application wall time %.1f s (paper scale ≈170 s)", res.Wall.Seconds()),
					},
				}, nil
			},
		},
		{
			ID:    "fig3",
			Title: "Figure 3: QCRD percentage of execution time",
			Kind:  KindFigure,
			Run: func() (Result, error) {
				fig, res, err := appmodel.Figure3(machine, base)
				if err != nil {
					return Result{}, err
				}
				return Result{
					Text:   fig.RenderBars(40),
					CSV:    fig.CSV(),
					Values: []float64{res.App.CPUPercent(), res.App.IOPercent()},
				}, nil
			},
		},
		{
			ID:    "fig4",
			Title: "Figure 4: QCRD speedup vs number of disks",
			Kind:  KindFigure,
			Run: func() (Result, error) {
				fig, speedups, err := appmodel.Figure4(machine, base)
				if err != nil {
					return Result{}, err
				}
				return Result{
					Text:   fig.RenderLines(44, 10),
					CSV:    fig.CSV(),
					Values: speedups,
					Notes:  []string{"paper: nearly flat, ≈1.0-1.3 across 2-32 disks"},
				}, nil
			},
		},
		{
			ID:    "fig5",
			Title: "Figure 5: QCRD speedup vs number of CPUs",
			Kind:  KindFigure,
			Run: func() (Result, error) {
				fig, speedups, err := appmodel.Figure5(machine, base)
				if err != nil {
					return Result{}, err
				}
				return Result{
					Text:   fig.RenderLines(44, 10),
					CSV:    fig.CSV(),
					Values: speedups,
					Notes:  []string{"paper: rises to ≈2.1-2.4 at 32 CPUs"},
				}, nil
			},
		},
		{
			ID:    "errorcheck",
			Title: "§2.3 check: simulator vs analytic model error < 10%",
			Kind:  KindCheck,
			Run: func() (Result, error) {
				errRate, err := appmodel.SimulatorError(appmodel.QCRD(), machine, base)
				if err != nil {
					return Result{}, err
				}
				status := "PASS"
				if errRate > 0.10 {
					status = "FAIL"
				}
				return Result{
					Text:   fmt.Sprintf("simulator vs analytic error: %.2f%% (< 10%% required) — %s\n", errRate*100, status),
					Values: []float64{errRate},
				}, nil
			},
		},
		tableExperiment("table1", "Table 1: data mining (Dmine) operation times",
			func() (*metrics.Table, error) { t, _, err := tracesim.Table1(traceParams); return t, err }),
		tableExperiment("table2", "Table 2: Titan operation times",
			func() (*metrics.Table, error) { t, _, err := tracesim.Table2(traceParams); return t, err }),
		tableExperiment("table3", "Table 3: LU per-request seek times",
			func() (*metrics.Table, error) { t, _, err := tracesim.Table3(traceParams); return t, err }),
		tableExperiment("table4", "Table 4: Cholesky per-request seek/read times",
			func() (*metrics.Table, error) { t, _, err := tracesim.Table4(traceParams); return t, err }),
		{
			ID:    "table5",
			Title: "Table 5: web server first read/write response times",
			Kind:  KindTable,
			Run: func() (Result, error) {
				tb, _, err := webserver.Table5()
				if err != nil {
					return Result{}, err
				}
				return Result{Text: tb.Render(), CSV: tb.CSV()}, nil
			},
		},
		{
			ID:    "table6",
			Title: "Table 6: repeated reads of the same file",
			Kind:  KindTable,
			Run: func() (Result, error) {
				tb, times, err := webserver.Table6()
				if err != nil {
					return Result{}, err
				}
				return Result{Text: tb.Render(), CSV: tb.CSV(), Values: times,
					Notes: []string{"paper: 9.0 ms declining to 3.2 ms over six trials"}}, nil
			},
		},
		{
			ID:    "fig6",
			Title: "Figure 6: read response time vs trial number",
			Kind:  KindFigure,
			Run: func() (Result, error) {
				fig, times, err := webserver.Figure6()
				if err != nil {
					return Result{}, err
				}
				return Result{Text: fig.RenderLines(44, 10), CSV: fig.CSV(), Values: times}, nil
			},
		},
		{
			ID:    "vmcompare",
			Title: "Extension (§5 future work): Table 6 workload across virtual machines",
			Kind:  KindTable,
			Run: func() (Result, error) {
				results, err := vmcompare.Compare(nil)
				if err != nil {
					return Result{}, err
				}
				tb := vmcompare.Table(results)
				var values []float64
				for _, r := range results {
					values = append(values, r.WarmupFactor())
				}
				return Result{
					Text:   tb.Render() + "\n" + vmcompare.Figure(results).RenderLines(44, 10),
					CSV:    tb.CSV(),
					Values: values,
					Notes:  []string{"warm-up factors per runtime (SSCLI, CLR, JVM, Native)"},
				}, nil
			},
		},
		{
			ID:    "sensitivity",
			Title: "Calibration sensitivity: which parameters the Figure 4/5 shapes depend on",
			Kind:  KindTable,
			Run: func() (Result, error) {
				tb := metrics.NewTable(
					"Sensitivity of QCRD speedups to machine calibration (paper bands: disks ≤1.3, CPUs 2.1-2.4)",
					"Parameter", "Value", "32-disk speedup", "32-CPU speedup")
				app := appmodel.QCRD()
				sweep := func(label string, mutate func(appmodel.Machine, float64) appmodel.Machine, vals []float64) error {
					for _, v := range vals {
						m := mutate(machine, v)
						diskUp, err := appmodel.Speedups(app, m.WithDisks(1), base, []int{32},
							func(mm appmodel.Machine, n int) appmodel.Machine { return mm.WithDisks(n) })
						if err != nil {
							return err
						}
						cpuUp, err := appmodel.Speedups(app, m.WithCPUs(1), base, []int{32},
							func(mm appmodel.Machine, n int) appmodel.Machine { return mm.WithCPUs(n) })
						if err != nil {
							return err
						}
						tb.AddRow(label, v, diskUp[0], cpuUp[0])
					}
					return nil
				}
				if err := sweep("cpu_parallel_fraction",
					func(m appmodel.Machine, v float64) appmodel.Machine { m.CPUParFrac = v; return m },
					[]float64{0.5, 0.6, 0.75, 0.9}); err != nil {
					return Result{}, err
				}
				if err := sweep("io_queue_depth",
					func(m appmodel.Machine, v float64) appmodel.Machine { m.IOQueueDepth = int(v); return m },
					[]float64{2, 4, 6, 12}); err != nil {
					return Result{}, err
				}
				return Result{Text: tb.Render(), CSV: tb.CSV(),
					Notes: []string{"defaults: cpu_parallel_fraction=0.75, io_queue_depth=6 land inside the paper's bands"}}, nil
			},
		},
		{
			ID:    "catalog",
			Title: "Extension (§2.3 future work): behavioral models for the §3.1 application classes",
			Kind:  KindTable,
			Run: func() (Result, error) {
				tb := metrics.NewTable(
					"Application catalog: requirements (relative units) and baseline execution",
					"Application", "R_CPU", "R_Disk", "R_COM", "IO share (%)",
					"Wall (s, base 60s)", "8-disk speedup")
				sim := appmodel.MustNewSimulator(machine, 60*time.Second)
				for _, app := range appmodel.Catalog() {
					r := app.Requirements()
					res, err := sim.Run(app)
					if err != nil {
						return Result{}, err
					}
					ups, err := appmodel.Speedups(app, machine.WithDisks(1), 60*time.Second,
						[]int{8}, func(m appmodel.Machine, n int) appmodel.Machine { return m.WithDisks(n) })
					if err != nil {
						return Result{}, err
					}
					tb.AddRow(app.Name, r.CPU, r.Disk, r.Comm,
						100*r.Disk/r.Total(), res.Wall.Seconds(), ups[0])
				}
				return Result{Text: tb.Render(), CSV: tb.CSV()}, nil
			},
		},
		{
			ID:    "distload",
			Title: "Extension (§5 future work): distributed load scaling",
			Kind:  KindTable,
			Run: func() (Result, error) {
				cfg := distbench.DefaultConfig()
				// The fault-tolerance options ride into the distributed
				// sweep: with a deadline the clients route by consistent
				// hash and fail over; with a net-fault plan the fabric
				// loses nodes mid-run.
				cfg.Deadline = current.RPCDeadline
				if cfg.Deadline > 0 {
					cfg.Retry = current.Retry
					cfg.NetFaults = current.NetFaults
				}
				results, err := distbench.Sweep(cfg, distbench.NodeSweep)
				if err != nil {
					return Result{}, err
				}
				tb := distbench.Table(results)
				var values []float64
				for _, r := range results {
					values = append(values, r.Throughput)
				}
				notes := []string{"throughput saturates as the server NIC/disk path fills"}
				if cfg.NetFaults != nil {
					notes = append(notes, "net faults: "+cfg.NetFaults.String())
				}
				return Result{
					Text:   tb.Render() + "\n" + distbench.Figure(results).RenderLines(44, 10),
					CSV:    tb.CSV(),
					Values: values,
					Notes:  notes,
				}, nil
			},
		},
	}
}

// tableExperiment adapts a metrics.Table producer to an Experiment.
func tableExperiment(id, title string, run func() (*metrics.Table, error)) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Kind:  KindTable,
		Run: func() (Result, error) {
			tb, err := run()
			if err != nil {
				return Result{}, err
			}
			return Result{Text: tb.Render(), CSV: tb.CSV()}, nil
		},
	}
}

// IDs returns every registered experiment id, in paper order.
func IDs() []string {
	exps := Experiments()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the named experiments ("all" or empty = every one) and
// writes their rendered artifacts to w. CSV output is selected by
// format == "csv".
func Run(w io.Writer, ids []string, format string) error {
	var selected []Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		selected = Experiments()
	} else {
		seen := map[string]bool{}
		for _, id := range ids {
			if seen[id] {
				continue
			}
			seen[id] = true
			e, ok := ByID(id)
			if !ok {
				return fmt.Errorf("core: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		res, err := e.Run()
		if err != nil {
			return fmt.Errorf("core: running %s: %w", e.ID, err)
		}
		res.ID, res.Title, res.Kind = e.ID, e.Title, e.Kind
		fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
		if format == "csv" && res.CSV != "" {
			fmt.Fprint(w, res.CSV)
		} else {
			fmt.Fprint(w, res.Text)
		}
		for _, n := range res.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunToDir executes the named experiments and writes each artifact to
// dir as <id>.txt (and <id>.csv when the experiment has a CSV form),
// creating dir if needed.
func RunToDir(dir string, ids []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating %s: %w", dir, err)
	}
	var selected []Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		selected = Experiments()
	} else {
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				return fmt.Errorf("core: unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		res, err := e.Run()
		if err != nil {
			return fmt.Errorf("core: running %s: %w", e.ID, err)
		}
		text := res.Text
		for _, n := range res.Notes {
			text += "note: " + n + "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, e.ID+".txt"), []byte(text), 0o644); err != nil {
			return err
		}
		if res.CSV != "" {
			if err := os.WriteFile(filepath.Join(dir, e.ID+".csv"), []byte(res.CSV), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// SortIDs sorts experiment ids into paper order; unknown ids go last,
// alphabetically.
func SortIDs(ids []string) {
	order := map[string]int{}
	for i, id := range IDs() {
		order[id] = i
	}
	sort.SliceStable(ids, func(i, j int) bool {
		oi, iok := order[ids[i]]
		oj, jok := order[ids[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return ids[i] < ids[j]
		}
	})
}
