package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/appmodel"
	"repro/internal/buffercache"
	"repro/internal/fsim"
	"repro/internal/netsim"
	"repro/internal/simdisk"
	"repro/internal/tracegen"
	"repro/internal/webserver"
)

// Options parameterizes the experiment registry. Zero fields take the
// reproduction defaults, so Options{} == the paper's configuration.
type Options struct {
	// Machine is benchmark 1's baseline machine.
	Machine appmodel.Machine
	// Base is benchmark 1's model-unit duration.
	Base time.Duration
	// TraceParams configures benchmark 2's generation and replay.
	TraceParams tracegen.Params
	// CacheShards is the page-cache lock-stripe count every simulated
	// store in the registry is built with. Zero keeps the paper's
	// deterministic single stripe; otherwise it must be a power of two.
	CacheShards int
	// Writeback is the page-cache background write-back threshold (dirty
	// pages per stripe) every simulated store is built with. Zero keeps
	// the paper's flush-on-close behavior.
	Writeback int
	// WritebackBatch caps how many pages one background drain submits to
	// the disk queue; zero means the whole dirty set.
	WritebackBatch int
	// WritebackHighwater is the per-stripe dirty-page high-water mark:
	// a write that saturates a stripe's dirty set stalls the foreground
	// writer until the stripe drains (pdflush throttling). Zero (the
	// default) never stalls writers; requires Writeback > 0.
	WritebackHighwater int
	// SchedPolicy orders write-back batches at the disk queue: FCFS,
	// SSTF, or SCAN. In shared disk-queue mode it also orders the
	// contended queue itself. Ignored while Writeback is zero and
	// DiskQueue is private.
	SchedPolicy simdisk.SchedPolicy
	// DiskQueue selects private per-session disk-timing views (the
	// default) or one shared contended queue across all sessions.
	DiskQueue fsim.DiskQueueMode
	// Faults is the per-disk device fault plan (slowdowns, latent sector
	// errors, whole-device failures on simulated time) every simulated
	// store in the registry is built with. Nil keeps a healthy array.
	Faults *simdisk.FaultPlan
	// Inject is the seeded op-level fault schedule store sessions roll;
	// the zero spec injects nothing.
	Inject fsim.InjectSpec
	// Retry is the sessions' recovery policy: bounded retries with
	// simulated-time exponential backoff. The zero policy never retries.
	// The distributed benchmark reuses it as the failover retry budget.
	Retry fsim.RetryPolicy
	// Shed is the web tier's graceful-degradation policy (admission
	// control + per-request I/O deadline). The zero policy never sheds.
	Shed webserver.ShedPolicy
	// Spares provisions a hot-spare pool on every simulated store, for
	// member rebuilds after device faults. Zero keeps ad-hoc spares.
	Spares int
	// RPCDeadline is the distributed benchmark's client RPC deadline;
	// zero keeps the fault-free fast path.
	RPCDeadline time.Duration
	// NetFaults schedules node kills and link-drop windows on the
	// distributed benchmark's fabric. Requires RPCDeadline > 0.
	NetFaults *netsim.FaultPlan
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Machine:     appmodel.DefaultMachine(),
		Base:        appmodel.QCRDBaseTime,
		TraceParams: tracegen.DefaultParams(),
	}
}

// current is the process-wide configuration Experiments() uses; tools
// override it once at startup via SetOptions.
var current = DefaultOptions()

// SetOptions replaces the registry's process-wide configuration. Zero
// fields take the defaults. Call before Experiments()/Run; not safe to
// race with running experiments.
func SetOptions(opts Options) {
	current = opts.fillDefaults()
	// The stores the experiments build pick the stripe count up from the
	// buffercache default. LoadOptions validates CacheShards; a caller
	// setting an invalid count directly falls back to the single stripe,
	// and the registry's recorded options are corrected to match so the
	// configuration never claims stripes the stores don't have.
	if err := buffercache.SetDefaultShards(current.CacheShards); err != nil {
		current.CacheShards = 0
		buffercache.SetDefaultShards(0)
	}
	if err := buffercache.SetDefaultWriteback(current.Writeback, current.WritebackBatch, current.WritebackHighwater, current.SchedPolicy); err != nil {
		current.Writeback = 0
		current.WritebackBatch = 0
		current.WritebackHighwater = 0
		current.SchedPolicy = simdisk.FCFS
		buffercache.SetDefaultWriteback(0, 0, 0, simdisk.FCFS)
	}
	if err := fsim.SetDefaultDiskQueue(current.DiskQueue); err != nil {
		current.DiskQueue = fsim.DiskQueuePrivate
		fsim.SetDefaultDiskQueue(fsim.DiskQueuePrivate)
	}
	// The fault plan's geometry (disk indices, RAID level) is validated
	// against each store when it is built; only the spec-level invariants
	// are checked here, with the invalid value dropped like the above.
	fsim.SetDefaultFaults(current.Faults)
	if err := current.Inject.Validate(); err != nil {
		current.Inject = fsim.InjectSpec{}
	}
	fsim.SetDefaultInject(current.Inject)
	if err := current.Retry.Validate(); err != nil {
		current.Retry = fsim.RetryPolicy{}
	}
	fsim.SetDefaultRetry(current.Retry)
	if err := current.Shed.Validate(); err != nil {
		current.Shed = webserver.ShedPolicy{}
	}
	webserver.SetDefaultShed(current.Shed)
	if current.Spares < 0 {
		current.Spares = 0
	}
	fsim.SetDefaultSpares(current.Spares)
	if current.RPCDeadline < 0 {
		current.RPCDeadline = 0
	}
	// A fault plan nobody can detect is dropped, matching the invalid
	// values above: the distributed benchmark rejects the combination.
	if current.NetFaults != nil && current.RPCDeadline <= 0 {
		current.NetFaults = nil
	}
}

// Current returns the registry's active configuration (after
// SetOptions' invalid-value corrections).
func Current() Options { return current }

// fillDefaults replaces zero fields with defaults.
func (o Options) fillDefaults() Options {
	def := DefaultOptions()
	if o.Machine == (appmodel.Machine{}) {
		o.Machine = def.Machine
	}
	if o.Base == 0 {
		o.Base = def.Base
	}
	if o.TraceParams == (tracegen.Params{}) {
		o.TraceParams = def.TraceParams
	}
	return o
}

// configJSON is the on-disk form read by LoadOptions — flat, in
// human-friendly units, with every field optional.
type configJSON struct {
	CPUs               *int     `json:"cpus"`
	Disks              *int     `json:"disks"`
	CPUParFrac         *float64 `json:"cpu_parallel_fraction"`
	IOQueueDepth       *int     `json:"io_queue_depth"`
	BaseSeconds        *float64 `json:"base_seconds"`
	TraceFileSizeMB    *int64   `json:"trace_file_size_mb"`
	TraceRequests      *int     `json:"trace_requests"`
	CacheShards        *int     `json:"cache_shards"`
	Writeback          *int     `json:"writeback"`
	WritebackBatch     *int     `json:"writeback_batch"`
	WritebackHighwater *int     `json:"writeback_highwater"`
	SchedPolicy        *string  `json:"sched_policy"`
	DiskQueue          *string  `json:"disk_queue"`
	Faults             *string  `json:"faults"`
	Inject             *string  `json:"inject"`
	Retry              *string  `json:"retry"`
	Shed               *string  `json:"shed"`
	Spares             *int     `json:"spares"`
	RPCDeadline        *string  `json:"rpc_deadline"`
	NetFaults          *string  `json:"net_faults"`
}

// LoadOptions reads a JSON configuration, overlaying it on the defaults.
// Unknown keys are rejected so typos fail loudly.
func LoadOptions(r io.Reader) (Options, error) {
	opts := DefaultOptions()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg configJSON
	if err := dec.Decode(&cfg); err != nil {
		return Options{}, fmt.Errorf("core: parsing config: %w", err)
	}
	if cfg.CPUs != nil {
		opts.Machine.NumCPUs = *cfg.CPUs
	}
	if cfg.Disks != nil {
		opts.Machine.NumDisks = *cfg.Disks
	}
	if cfg.CPUParFrac != nil {
		opts.Machine.CPUParFrac = *cfg.CPUParFrac
	}
	if cfg.IOQueueDepth != nil {
		opts.Machine.IOQueueDepth = *cfg.IOQueueDepth
	}
	if cfg.BaseSeconds != nil {
		opts.Base = time.Duration(*cfg.BaseSeconds * float64(time.Second))
	}
	if cfg.TraceFileSizeMB != nil {
		opts.TraceParams.FileSize = *cfg.TraceFileSizeMB << 20
	}
	if cfg.TraceRequests != nil {
		opts.TraceParams.Requests = *cfg.TraceRequests
	}
	if cfg.CacheShards != nil {
		// 0 in the file is an explicit ask for the machine-derived stripe
		// count; absent keeps the deterministic single stripe.
		if *cfg.CacheShards == 0 {
			opts.CacheShards = buffercache.AutoShards()
		} else {
			opts.CacheShards = *cfg.CacheShards
		}
		if n := opts.CacheShards; n < 0 || n&(n-1) != 0 {
			return Options{}, fmt.Errorf("core: cache_shards %d must be a power of two", n)
		}
	}
	if cfg.Writeback != nil {
		if *cfg.Writeback < 0 {
			return Options{}, fmt.Errorf("core: writeback %d must be non-negative", *cfg.Writeback)
		}
		opts.Writeback = *cfg.Writeback
	}
	if cfg.WritebackBatch != nil {
		if *cfg.WritebackBatch < 0 {
			return Options{}, fmt.Errorf("core: writeback_batch %d must be non-negative", *cfg.WritebackBatch)
		}
		opts.WritebackBatch = *cfg.WritebackBatch
	}
	if cfg.WritebackHighwater != nil {
		if *cfg.WritebackHighwater < 0 {
			return Options{}, fmt.Errorf("core: writeback_highwater %d must be non-negative", *cfg.WritebackHighwater)
		}
		if *cfg.WritebackHighwater > 0 && opts.Writeback == 0 {
			return Options{}, fmt.Errorf("core: writeback_highwater requires writeback > 0")
		}
		opts.WritebackHighwater = *cfg.WritebackHighwater
	}
	if cfg.SchedPolicy != nil {
		policy, err := simdisk.ParsePolicy(*cfg.SchedPolicy)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		opts.SchedPolicy = policy
	}
	if cfg.DiskQueue != nil {
		mode, err := fsim.ParseDiskQueue(*cfg.DiskQueue)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		opts.DiskQueue = mode
	}
	if cfg.Faults != nil {
		plan, err := simdisk.ParseFaultPlan(*cfg.Faults)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		opts.Faults = plan
	}
	if cfg.Inject != nil {
		spec, err := fsim.ParseInjectSpec(*cfg.Inject)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		opts.Inject = spec
	}
	if cfg.Retry != nil {
		pol, err := fsim.ParseRetrySpec(*cfg.Retry)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		opts.Retry = pol
	}
	if cfg.Shed != nil {
		shed, err := webserver.ParseShedPolicy(*cfg.Shed)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		opts.Shed = shed
	}
	if cfg.Spares != nil {
		if *cfg.Spares < 0 {
			return Options{}, fmt.Errorf("core: spares %d must be non-negative", *cfg.Spares)
		}
		opts.Spares = *cfg.Spares
	}
	if cfg.RPCDeadline != nil {
		d, err := time.ParseDuration(*cfg.RPCDeadline)
		if err != nil {
			return Options{}, fmt.Errorf("core: rpc_deadline: %w", err)
		}
		if d < 0 {
			return Options{}, fmt.Errorf("core: rpc_deadline %v must be non-negative", d)
		}
		opts.RPCDeadline = d
	}
	if cfg.NetFaults != nil {
		plan, err := netsim.ParseFaultPlan(*cfg.NetFaults)
		if err != nil {
			return Options{}, fmt.Errorf("core: %w", err)
		}
		if plan != nil && opts.RPCDeadline <= 0 {
			return Options{}, fmt.Errorf("core: net_faults requires a positive rpc_deadline to detect losses")
		}
		opts.NetFaults = plan
	}
	if err := opts.Machine.Validate(); err != nil {
		return Options{}, err
	}
	if opts.Base <= 0 {
		return Options{}, fmt.Errorf("core: base_seconds must be positive")
	}
	if err := opts.TraceParams.Validate(); err != nil {
		return Options{}, err
	}
	return opts, nil
}
