package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/buffercache"
	"repro/internal/fsim"
	"repro/internal/netsim"
	"repro/internal/simdisk"
)

func TestDefaultOptionsValid(t *testing.T) {
	opts := DefaultOptions()
	if err := opts.Machine.Validate(); err != nil {
		t.Fatal(err)
	}
	if opts.Base <= 0 {
		t.Fatal("zero base")
	}
	if err := opts.TraceParams.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFillDefaults(t *testing.T) {
	var zero Options
	filled := zero.fillDefaults()
	if filled.Machine.NumCPUs == 0 || filled.Base == 0 || filled.TraceParams.FileSize == 0 {
		t.Fatalf("fillDefaults left zeros: %+v", filled)
	}
}

func TestLoadOptionsOverlays(t *testing.T) {
	cfg := `{"cpus": 8, "disks": 4, "base_seconds": 10, "trace_file_size_mb": 64, "trace_requests": 50}`
	opts, err := LoadOptions(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if opts.Machine.NumCPUs != 8 || opts.Machine.NumDisks != 4 {
		t.Fatalf("machine = %+v", opts.Machine)
	}
	if opts.Base != 10*time.Second {
		t.Fatalf("base = %v", opts.Base)
	}
	if opts.TraceParams.FileSize != 64<<20 || opts.TraceParams.Requests != 50 {
		t.Fatalf("trace params = %+v", opts.TraceParams)
	}
	// Untouched fields keep defaults.
	if opts.Machine.CPUParFrac != DefaultOptions().Machine.CPUParFrac {
		t.Fatal("unset field changed")
	}
}

func TestLoadOptionsRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  string
	}{
		{"unknown key", `{"cpuz": 8}`},
		{"invalid machine", `{"cpus": 0}`},
		{"negative base", `{"base_seconds": -1}`},
		{"bad json", `{`},
		{"bad trace", `{"trace_requests": -5}`},
		{"non-power-of-two shards", `{"cache_shards": 6}`},
		{"negative shards", `{"cache_shards": -2}`},
	}
	for _, tc := range cases {
		if _, err := LoadOptions(strings.NewReader(tc.cfg)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLoadOptionsCacheShards(t *testing.T) {
	opts, err := LoadOptions(strings.NewReader(`{"cache_shards": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	if opts.CacheShards != 8 {
		t.Fatalf("CacheShards = %d, want 8", opts.CacheShards)
	}
	// Explicit 0 asks for the machine-derived stripe count.
	opts, err = LoadOptions(strings.NewReader(`{"cache_shards": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	if opts.CacheShards != buffercache.AutoShards() {
		t.Fatalf("CacheShards = %d, want AutoShards %d", opts.CacheShards, buffercache.AutoShards())
	}
}

func TestSetOptionsCacheShardsReachStores(t *testing.T) {
	defer SetOptions(DefaultOptions())
	opts := DefaultOptions()
	opts.CacheShards = 8
	SetOptions(opts)
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Cache().NumShards(); got != 8 {
		t.Fatalf("store built under CacheShards=8 has %d shards", got)
	}
	SetOptions(DefaultOptions())
	store, err = fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Cache().NumShards(); got != 1 {
		t.Fatalf("store after reset has %d shards, want 1", got)
	}
}

func TestLoadOptionsWriteback(t *testing.T) {
	opts, err := LoadOptions(strings.NewReader(`{"writeback": 32, "sched_policy": "sstf"}`))
	if err != nil {
		t.Fatal(err)
	}
	if opts.Writeback != 32 || opts.SchedPolicy != simdisk.SSTF {
		t.Fatalf("writeback options = %d/%v", opts.Writeback, opts.SchedPolicy)
	}
	if _, err := LoadOptions(strings.NewReader(`{"writeback": -1}`)); err == nil {
		t.Fatal("negative writeback accepted")
	}
	if _, err := LoadOptions(strings.NewReader(`{"sched_policy": "elevator-of-doom"}`)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestLoadOptionsWritebackHighwater(t *testing.T) {
	opts, err := LoadOptions(strings.NewReader(`{"writeback": 8, "writeback_highwater": 64}`))
	if err != nil {
		t.Fatal(err)
	}
	if opts.WritebackHighwater != 64 {
		t.Fatalf("writeback_highwater = %d, want 64", opts.WritebackHighwater)
	}
	if _, err := LoadOptions(strings.NewReader(`{"writeback_highwater": 64}`)); err == nil {
		t.Fatal("high-water mark without writeback accepted")
	}
	if _, err := LoadOptions(strings.NewReader(`{"writeback": 8, "writeback_highwater": -1}`)); err == nil {
		t.Fatal("negative high-water mark accepted")
	}

	defer SetOptions(DefaultOptions())
	SetOptions(opts)
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := store.Cache().Config().WritebackHighwater; got != 64 {
		t.Fatalf("store built under highwater=64 got %d", got)
	}
}

func TestSetOptionsWritebackReachesStores(t *testing.T) {
	defer SetOptions(DefaultOptions())
	opts := DefaultOptions()
	opts.Writeback = 16
	opts.SchedPolicy = simdisk.SCAN
	SetOptions(opts)
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if !store.Cache().WritebackEnabled() {
		t.Fatal("store built under Writeback=16 has write-back disabled")
	}
	if got := store.Cache().Config().WritebackPolicy; got != simdisk.SCAN {
		t.Fatalf("write-back policy = %v, want SCAN", got)
	}
	SetOptions(DefaultOptions())
	store, err = fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if store.Cache().WritebackEnabled() {
		t.Fatal("store after reset still has write-back enabled")
	}
}

func TestSetOptionsAffectsRegistry(t *testing.T) {
	defer SetOptions(DefaultOptions())
	opts := DefaultOptions()
	opts.Base = 1 * time.Second
	SetOptions(opts)
	e, ok := ByID("errorcheck")
	if !ok {
		t.Fatal("errorcheck missing")
	}
	// Experiments still run correctly under the override.
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "PASS") {
		t.Fatalf("errorcheck under override:\n%s", res.Text)
	}
}

func TestLoadOptionsFaultTolerance(t *testing.T) {
	cfg := `{"spares": 2, "rpc_deadline": "5ms", "net_faults": "kill:server0@20ms,drop:link1@10ms+5ms"}`
	opts, err := LoadOptions(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if opts.Spares != 2 {
		t.Fatalf("spares = %d", opts.Spares)
	}
	if opts.RPCDeadline != 5*time.Millisecond {
		t.Fatalf("rpc_deadline = %v", opts.RPCDeadline)
	}
	if opts.NetFaults == nil || len(opts.NetFaults.Faults) != 2 {
		t.Fatalf("net_faults = %+v", opts.NetFaults)
	}

	for _, tc := range []struct {
		name string
		cfg  string
	}{
		{"negative spares", `{"spares": -1}`},
		{"bad deadline", `{"rpc_deadline": "soon"}`},
		{"negative deadline", `{"rpc_deadline": "-1ms"}`},
		{"bad plan", `{"rpc_deadline": "5ms", "net_faults": "explode:server0@1ms"}`},
		{"plan without deadline", `{"net_faults": "kill:server0@20ms"}`},
	} {
		if _, err := LoadOptions(strings.NewReader(tc.cfg)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSetOptionsSparesReachStores(t *testing.T) {
	opts := DefaultOptions()
	opts.Spares = 3
	SetOptions(opts)
	defer SetOptions(DefaultOptions())
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	defer store.Close()
	if store.SparePool() == nil || store.SparePool().Available() != 3 {
		t.Fatalf("store did not pick up the configured spare pool: %+v", store.SparePool())
	}
	// Dropped combination: a net-fault plan without a detectable deadline.
	opts = DefaultOptions()
	opts.NetFaults = &netsim.FaultPlan{Faults: []netsim.Fault{{Target: "server0", Kind: netsim.FaultKill}}}
	SetOptions(opts)
	defer SetOptions(DefaultOptions())
	if Current().NetFaults != nil {
		t.Fatal("undetectable net-fault plan kept")
	}
}
