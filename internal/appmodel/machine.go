package appmodel

import (
	"fmt"
	"time"

	"repro/internal/simdisk"
)

// Machine describes the simulated node an application executes on: a CPU
// pool, a striped disk array, and an interconnect. The Figure 4 and 5
// experiments sweep NumDisks and NumCPUs respectively.
type Machine struct {
	// NumCPUs is the processor count (Figure 5 sweeps 2-32).
	NumCPUs int
	// CPUParFrac is the Amdahl parallelizable fraction of every CPU burst.
	// The paper's QCRD speedup topping out near 2.4 at 32 CPUs implies a
	// fraction around 0.6-0.75; the default is 0.75.
	CPUParFrac float64
	// NumDisks is the disk-array width (Figure 4 sweeps 2-32).
	NumDisks int
	// StripeUnit is the array stripe unit in bytes.
	StripeUnit int64
	// Disk parameterizes each member disk.
	Disk simdisk.Params
	// IOQueueDepth is how many concurrent I/O streams a program sustains
	// during an I/O burst. Disk-array speedup saturates at this depth —
	// the reason Figure 4 is nearly flat.
	IOQueueDepth int
	// IORequestSize is the size of each disk request in an I/O burst.
	IORequestSize int64
	// NetLatency is the per-burst message latency of the interconnect.
	NetLatency time.Duration
}

// DefaultMachine returns the baseline configuration: one CPU, one
// realistic 2003-era disk, queue depth 6, 64 KB requests.
func DefaultMachine() Machine {
	return Machine{
		NumCPUs:       1,
		CPUParFrac:    0.75,
		NumDisks:      1,
		StripeUnit:    64 << 10,
		Disk:          simdisk.DefaultParams(),
		IOQueueDepth:  6,
		IORequestSize: 64 << 10,
		NetLatency:    100 * time.Microsecond,
	}
}

// Validate reports the first problem with the machine, or nil.
func (m Machine) Validate() error {
	switch {
	case m.NumCPUs < 1:
		return fmt.Errorf("appmodel: machine needs at least 1 CPU, got %d", m.NumCPUs)
	case m.CPUParFrac < 0 || m.CPUParFrac > 1:
		return fmt.Errorf("appmodel: CPU parallel fraction %v outside [0,1]", m.CPUParFrac)
	case m.NumDisks < 1:
		return fmt.Errorf("appmodel: machine needs at least 1 disk, got %d", m.NumDisks)
	case m.StripeUnit <= 0:
		return fmt.Errorf("appmodel: stripe unit %d must be positive", m.StripeUnit)
	case m.IOQueueDepth < 1:
		return fmt.Errorf("appmodel: I/O queue depth %d must be at least 1", m.IOQueueDepth)
	case m.IORequestSize <= 0:
		return fmt.Errorf("appmodel: I/O request size %d must be positive", m.IORequestSize)
	case m.NetLatency < 0:
		return fmt.Errorf("appmodel: negative network latency %v", m.NetLatency)
	}
	return m.Disk.Validate()
}

// WithCPUs returns a copy with NumCPUs set to n.
func (m Machine) WithCPUs(n int) Machine { m.NumCPUs = n; return m }

// WithDisks returns a copy with NumDisks set to n.
func (m Machine) WithDisks(n int) Machine { m.NumDisks = n; return m }

// singleStreamRate returns the sustained byte rate of one sequential I/O
// stream on one member disk: request size over per-request service time
// (controller overhead + media transfer; sequential access pays neither
// seek nor rotational delay in the model). The simulator uses it to
// convert an I/O burst's nominal duration into a byte volume.
func (m Machine) singleStreamRate() float64 {
	xfer := float64(m.IORequestSize) / m.Disk.TransferRate // seconds
	service := m.Disk.ControllerOverhead.Seconds() + xfer
	return float64(m.IORequestSize) / service
}

// cpuBurst returns the duration of a CPU burst of nominal length t on
// this machine, applying Amdahl's law over NumCPUs.
func (m Machine) cpuBurst(t time.Duration) time.Duration {
	p := float64(m.NumCPUs)
	factor := (1 - m.CPUParFrac) + m.CPUParFrac/p
	return time.Duration(float64(t) * factor)
}

// commBurst returns the duration of a communication burst of nominal
// length t: interconnect latency plus the bandwidth-bound payload time,
// which does not scale with CPUs or disks.
func (m Machine) commBurst(t time.Duration) time.Duration {
	if t <= 0 {
		return 0
	}
	return m.NetLatency + t
}
