package appmodel

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// DiskSweep and CPUSweep are the resource counts of Figures 4 and 5.
var (
	DiskSweep = []int{2, 4, 8, 16, 32}
	CPUSweep  = []int{2, 4, 8, 16, 32}
)

// Figure2 runs QCRD on the machine and renders the paper's Figure 2:
// absolute CPU and disk-I/O execution time for the application and its
// two programs.
func Figure2(machine Machine, base time.Duration) (*metrics.Figure, Result, error) {
	sim, err := NewSimulator(machine, base)
	if err != nil {
		return nil, Result{}, err
	}
	res, err := sim.Run(QCRD())
	if err != nil {
		return nil, Result{}, err
	}
	labels := []string{"Application"}
	cpu := []float64{res.App.CPU.Seconds()}
	io := []float64{res.App.IO.Seconds()}
	for _, pr := range res.Programs {
		labels = append(labels, pr.Name)
		cpu = append(cpu, pr.CPU.Seconds())
		io = append(io, pr.IO.Seconds())
	}
	fig := metrics.NewFigure(
		"Figure 2. Execution time of computation and disk I/O for the QCRD application and two programs",
		"component", "Execution Time (Sec.)")
	fig.Add(metrics.NewSeries("CPU", labels, cpu))
	fig.Add(metrics.NewSeries("IO", labels, io))
	return fig, res, nil
}

// Figure3 renders the paper's Figure 3: the same split as percentages.
func Figure3(machine Machine, base time.Duration) (*metrics.Figure, Result, error) {
	sim, err := NewSimulator(machine, base)
	if err != nil {
		return nil, Result{}, err
	}
	res, err := sim.Run(QCRD())
	if err != nil {
		return nil, Result{}, err
	}
	labels := []string{"Application"}
	cpu := []float64{res.App.CPUPercent()}
	io := []float64{res.App.IOPercent()}
	for _, pr := range res.Programs {
		labels = append(labels, pr.Name)
		cpu = append(cpu, pr.CPUPercent())
		io = append(io, pr.IOPercent())
	}
	fig := metrics.NewFigure(
		"Figure 3. Percentage of execution time for computation and disk I/O",
		"component", "Percentage (%)")
	fig.Add(metrics.NewSeries("CPU", labels, cpu))
	fig.Add(metrics.NewSeries("IO", labels, io))
	return fig, res, nil
}

// Speedups runs the application on variants of machine produced by
// configure(count) for each count, and returns wall-time speedups
// relative to the baseline machine.
func Speedups(app Application, baseline Machine, base time.Duration, counts []int, configure func(Machine, int) Machine) ([]float64, error) {
	baseSim, err := NewSimulator(baseline, base)
	if err != nil {
		return nil, err
	}
	baseRes, err := baseSim.Run(app)
	if err != nil {
		return nil, err
	}
	if baseRes.Wall <= 0 {
		return nil, fmt.Errorf("appmodel: baseline wall time is zero")
	}
	out := make([]float64, 0, len(counts))
	for _, n := range counts {
		sim, err := NewSimulator(configure(baseline, n), base)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(app)
		if err != nil {
			return nil, err
		}
		out = append(out, float64(baseRes.Wall)/float64(res.Wall))
	}
	return out, nil
}

// Figure4 renders the paper's Figure 4: QCRD speedup as a function of the
// number of disks (baseline: the given machine with one disk).
func Figure4(machine Machine, base time.Duration) (*metrics.Figure, []float64, error) {
	baseline := machine.WithDisks(1)
	speedups, err := Speedups(QCRD(), baseline, base, DiskSweep,
		func(m Machine, n int) Machine { return m.WithDisks(n) })
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, len(DiskSweep))
	for i, n := range DiskSweep {
		labels[i] = fmt.Sprintf("%d", n)
	}
	fig := metrics.NewFigure(
		"Figure 4. Speedup of the application as a function of the number of disks",
		"Number of Disks", "Speedup")
	fig.Add(metrics.NewSeries("speedup", labels, speedups))
	return fig, speedups, nil
}

// Figure5 renders the paper's Figure 5: QCRD speedup as a function of the
// number of CPUs (baseline: the given machine with one CPU).
func Figure5(machine Machine, base time.Duration) (*metrics.Figure, []float64, error) {
	baseline := machine.WithCPUs(1)
	speedups, err := Speedups(QCRD(), baseline, base, CPUSweep,
		func(m Machine, n int) Machine { return m.WithCPUs(n) })
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, len(CPUSweep))
	for i, n := range CPUSweep {
		labels[i] = fmt.Sprintf("%d", n)
	}
	fig := metrics.NewFigure(
		"Figure 5. Speedup of the application as a function of the number of CPUs",
		"Number of Processors", "Speedup")
	fig.Add(metrics.NewSeries("speedup", labels, speedups))
	return fig, speedups, nil
}

// SimulatorError returns the relative difference between the simulator's
// and the closed-form analytic wall times for the application — the
// reproduction's analog of the paper's <10% model-vs-implementation error
// check (§2.3).
func SimulatorError(app Application, machine Machine, base time.Duration) (float64, error) {
	sim, err := NewSimulator(machine, base)
	if err != nil {
		return 0, err
	}
	simRes, err := sim.Run(app)
	if err != nil {
		return 0, err
	}
	anaRes, err := Analytic(app, machine, base)
	if err != nil {
		return 0, err
	}
	if anaRes.Wall == 0 {
		return 0, fmt.Errorf("appmodel: analytic wall time is zero")
	}
	diff := float64(simRes.Wall-anaRes.Wall) / float64(anaRes.Wall)
	if diff < 0 {
		diff = -diff
	}
	return diff, nil
}
