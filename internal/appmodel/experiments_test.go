package appmodel

import (
	"strings"
	"testing"
)

func TestFigure2Shape(t *testing.T) {
	fig, res, err := Figure2(DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	out := fig.RenderBars(30)
	for _, want := range []string{"Figure 2", "Application", "Program1", "Program2", "CPU", "IO"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q", want)
		}
	}
	// §2.3: the application spends a noticeably large amount of time on
	// I/O — at least a quarter of its execution.
	if res.App.IOPercent() < 25 {
		t.Fatalf("application I/O share %.1f%% too small", res.App.IOPercent())
	}
}

func TestFigure3PercentagesSum(t *testing.T) {
	fig, res, err := Figure3(DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want CPU and IO series, got %d", len(fig.Series))
	}
	cpu, io := fig.Series[0].Values, fig.Series[1].Values
	for i := range cpu {
		sum := cpu[i] + io[i]
		// QCRD has no communication, so CPU% + IO% ≈ 100%.
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("label %d: CPU%%+IO%% = %v, want 100", i, sum)
		}
	}
	_ = res
}

func TestFigure4DiskSpeedupShape(t *testing.T) {
	_, speedups, err := Figure4(DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(speedups) != len(DiskSweep) {
		t.Fatalf("got %d speedups", len(speedups))
	}
	// Paper Figure 4: speedup changes only slightly with disk count —
	// all values within [0.9, 1.5], and non-decreasing.
	for i, s := range speedups {
		if s < 0.9 || s > 1.5 {
			t.Errorf("disk speedup[%d] = %.3f outside the paper's flat band", i, s)
		}
		if i > 0 && s+1e-9 < speedups[i-1] {
			t.Errorf("disk speedup decreased: %.3f -> %.3f", speedups[i-1], s)
		}
	}
}

func TestFigure5CPUSpeedupShape(t *testing.T) {
	_, speedups, err := Figure5(DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 5: speedup rises clearly with CPUs, reaching ~2.1-2.4
	// at 32; it must dominate the disk curve.
	last := speedups[len(speedups)-1]
	if last < 1.8 || last > 2.6 {
		t.Fatalf("32-CPU speedup %.3f outside the paper's 2.1-2.4 band (±tolerance)", last)
	}
	for i := 1; i < len(speedups); i++ {
		if speedups[i] < speedups[i-1] {
			t.Fatalf("CPU speedup not monotone: %v", speedups)
		}
	}
	if speedups[0] < 1.2 {
		t.Fatalf("2-CPU speedup %.3f shows no benefit", speedups[0])
	}
}

func TestCPUSpeedupExceedsDiskSpeedup(t *testing.T) {
	// §2.3's argument: program 1 is CPU-bound, so CPUs help QCRD more
	// than disks do.
	_, disks, err := Figure4(DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	_, cpus, err := Figure5(DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	if cpus[len(cpus)-1] <= disks[len(disks)-1] {
		t.Fatalf("CPU speedup %.3f not above disk speedup %.3f",
			cpus[len(cpus)-1], disks[len(disks)-1])
	}
}

func TestSpeedupsRejectsBadBaseline(t *testing.T) {
	bad := DefaultMachine()
	bad.NumCPUs = 0
	if _, err := Speedups(QCRD(), bad, testBase, []int{2},
		func(m Machine, n int) Machine { return m }); err == nil {
		t.Fatal("invalid baseline accepted")
	}
}
