package appmodel

import (
	"strings"
	"testing"
	"time"
)

func TestTimelineFigureExample(t *testing.T) {
	prog := FigureExample()
	segs, err := Timeline(prog, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	// Segments are contiguous and non-overlapping.
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("gap between segment %d and %d: %v vs %v",
				i-1, i, segs[i-1].End, segs[i].Start)
		}
	}
	// Total equals the program's relative time × base.
	total := segs[len(segs)-1].End
	want := time.Duration(prog.TotalRelTime() * float64(100*time.Second))
	if diff := total - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("total %v, want %v", total, want)
	}
	// Phase numbering covers 1..5 (Figure 1 has N=5).
	maxPhase := 0
	for _, s := range segs {
		if s.Phase > maxPhase {
			maxPhase = s.Phase
		}
	}
	if maxPhase != 5 {
		t.Fatalf("max phase %d, want 5", maxPhase)
	}
}

func TestTimelineBurstOrderWithinPhase(t *testing.T) {
	// A phase is an I/O burst followed by computation, then communication.
	prog := Program{Name: "p", Sets: []WorkingSet{
		{IOFrac: 0.3, CommFrac: 0.2, RelTime: 1, Phases: 1},
	}}
	segs, err := Timeline(prog, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if segs[0].Kind != SegIO || segs[1].Kind != SegCPU || segs[2].Kind != SegComm {
		t.Fatalf("burst order wrong: %v %v %v", segs[0].Kind, segs[1].Kind, segs[2].Kind)
	}
}

func TestTimelineSkipsZeroBursts(t *testing.T) {
	prog := Program{Name: "pureio", Sets: []WorkingSet{
		{IOFrac: 1.0, CommFrac: 0, RelTime: 0.5, Phases: 2},
	}}
	segs, err := Timeline(prog, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Kind != SegIO {
			t.Fatalf("zero-length burst emitted: %+v", s)
		}
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
}

func TestTimelineInvalidProgram(t *testing.T) {
	if _, err := Timeline(Program{Name: "empty"}, time.Second); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestRenderTimeline(t *testing.T) {
	out, err := RenderTimeline(FigureExample(), 100*time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IO", "CPU", "COM", "phase", "#", "Figure 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimelineQCRD(t *testing.T) {
	// QCRD program 1 has 24 phases; the ruler uses '+' beyond 9.
	out, err := RenderTimeline(QCRD().Programs[0], 10*time.Second, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+") {
		t.Fatalf("two-digit phases not marked:\n%s", out)
	}
}

func TestSegmentKindString(t *testing.T) {
	if SegIO.String() != "IO" || SegCPU.String() != "CPU" || SegComm.String() != "COM" {
		t.Fatal("kind names wrong")
	}
	if SegmentKind(7).String() != "seg(7)" {
		t.Fatal("unknown kind name wrong")
	}
}
