// Package appmodel implements the paper's primary contribution: the
// application behavioral model of §2 (extended from Rosti et al.) and the
// benchmark built on it.
//
// A parallel application is a set of programs executing in a coordinated
// manner; each program is a sequence of working sets; each working set
// Γᵢ = (φᵢ, γᵢ, ρᵢ, τᵢ) describes τᵢ statistically identical phases with
// I/O fraction φᵢ, communication fraction γᵢ and relative execution time
// ρᵢ. A phase is an I/O burst followed by a computation burst and possibly
// a communication burst (Eq. 1):
//
//	Tⁱ = Tⁱ_CPU + Tⁱ_COM + Tⁱ_Disk
//
// The package provides the model types with validation, the closed-form
// resource-requirement equations (Eq. 2-5), the QCRD instantiation
// (qcrd.go), a discrete-event simulator that executes a modelled
// application against simulated CPUs/disks/network (sim.go), and the
// experiment drivers that regenerate the paper's Figures 2-5
// (experiments.go).
package appmodel

import (
	"fmt"
	"time"
)

// WorkingSet is one Γᵢ = (φᵢ, γᵢ, ρᵢ, τᵢ) tuple: a run of Phases
// statistically identical phases.
type WorkingSet struct {
	// IOFrac (φ) is the fraction of each phase spent in the I/O burst.
	IOFrac float64
	// CommFrac (γ) is the fraction spent in the communication burst.
	CommFrac float64
	// RelTime (ρ) is the ratio of one phase's execution time to the
	// program's total execution time.
	RelTime float64
	// Phases (τ) is the number of consecutive identical phases.
	Phases int
}

// Validate reports the first problem with the working set, or nil.
func (w WorkingSet) Validate() error {
	switch {
	case w.IOFrac < 0 || w.IOFrac > 1:
		return fmt.Errorf("appmodel: I/O fraction %v outside [0,1]", w.IOFrac)
	case w.CommFrac < 0 || w.CommFrac > 1:
		return fmt.Errorf("appmodel: communication fraction %v outside [0,1]", w.CommFrac)
	case w.IOFrac+w.CommFrac > 1:
		return fmt.Errorf("appmodel: φ+γ = %v exceeds 1", w.IOFrac+w.CommFrac)
	case w.RelTime < 0:
		return fmt.Errorf("appmodel: relative time %v negative", w.RelTime)
	case w.Phases < 1:
		return fmt.Errorf("appmodel: phase count %d must be at least 1", w.Phases)
	}
	return nil
}

// CPUFrac returns the computation fraction 1-φ-γ of each phase.
func (w WorkingSet) CPUFrac() float64 { return 1 - w.IOFrac - w.CommFrac }

// Program is one ~Γ vector: a named sequence of working sets executed on
// one node of the application.
type Program struct {
	Name string
	Sets []WorkingSet
}

// Validate reports the first problem with the program, or nil.
func (p Program) Validate() error {
	if len(p.Sets) == 0 {
		return fmt.Errorf("appmodel: program %q has no working sets", p.Name)
	}
	for i, w := range p.Sets {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("appmodel: program %q set %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// NumPhases returns N, the total phase count Σ τᵢ.
func (p Program) NumPhases() int {
	n := 0
	for _, w := range p.Sets {
		n += w.Phases
	}
	return n
}

// TotalRelTime returns Σ ρᵢ·τᵢ, the program's execution time in relative
// units. Eq. 2 in absolute terms is TotalRelTime × the base time.
func (p Program) TotalRelTime() float64 {
	total := 0.0
	for _, w := range p.Sets {
		total += w.RelTime * float64(w.Phases)
	}
	return total
}

// Requirements holds the resource requirements of Eq. 3-5 in relative
// units (multiply by the base time for absolute durations).
type Requirements struct {
	CPU  float64 // R_CPU  (Eq. 3)
	Disk float64 // R_Disk (Eq. 4)
	Comm float64 // R_COM  (Eq. 5)
}

// Total returns R_CPU + R_Disk + R_COM, which equals TotalRelTime.
func (r Requirements) Total() float64 { return r.CPU + r.Disk + r.Comm }

// Requirements evaluates Eq. 3-5 for the program.
func (p Program) Requirements() Requirements {
	var r Requirements
	for _, w := range p.Sets {
		phase := w.RelTime * float64(w.Phases)
		r.Disk += phase * w.IOFrac
		r.Comm += phase * w.CommFrac
		r.CPU += phase * w.CPUFrac()
	}
	return r
}

// Normalized returns a copy of the program with ρ values scaled so that
// TotalRelTime is exactly 1, making ρ the true "fraction of program time"
// the model text describes. A zero-time program is returned unchanged.
func (p Program) Normalized() Program {
	total := p.TotalRelTime()
	if total == 0 {
		return p
	}
	out := Program{Name: p.Name, Sets: make([]WorkingSet, len(p.Sets))}
	copy(out.Sets, p.Sets)
	for i := range out.Sets {
		out.Sets[i].RelTime /= total
	}
	return out
}

// Application is a set of interdependent programs that execute in a
// coordinated manner, one per node.
type Application struct {
	Name     string
	Programs []Program
}

// Validate reports the first problem with the application, or nil.
func (a Application) Validate() error {
	if len(a.Programs) == 0 {
		return fmt.Errorf("appmodel: application %q has no programs", a.Name)
	}
	for _, p := range a.Programs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("appmodel: application %q: %w", a.Name, err)
		}
	}
	return nil
}

// Requirements sums Eq. 3-5 across programs.
func (a Application) Requirements() Requirements {
	var total Requirements
	for _, p := range a.Programs {
		r := p.Requirements()
		total.CPU += r.CPU
		total.Disk += r.Disk
		total.Comm += r.Comm
	}
	return total
}

// MaxRelTime returns the largest program TotalRelTime — the application's
// makespan in relative units when programs run concurrently.
func (a Application) MaxRelTime() float64 {
	max := 0.0
	for _, p := range a.Programs {
		if t := p.TotalRelTime(); t > max {
			max = t
		}
	}
	return max
}

// Breakdown is the absolute CPU/IO/Comm split for one program or an
// application, as plotted in Figures 2 and 3.
type Breakdown struct {
	Name string
	CPU  time.Duration
	IO   time.Duration
	Comm time.Duration
}

// Total returns the summed execution time.
func (b Breakdown) Total() time.Duration { return b.CPU + b.IO + b.Comm }

// CPUPercent returns CPU time as a percentage of the total.
func (b Breakdown) CPUPercent() float64 {
	if b.Total() == 0 {
		return 0
	}
	return 100 * float64(b.CPU) / float64(b.Total())
}

// IOPercent returns disk time as a percentage of the total.
func (b Breakdown) IOPercent() float64 {
	if b.Total() == 0 {
		return 0
	}
	return 100 * float64(b.IO) / float64(b.Total())
}

// CommPercent returns communication time as a percentage of the total.
func (b Breakdown) CommPercent() float64 {
	if b.Total() == 0 {
		return 0
	}
	return 100 * float64(b.Comm) / float64(b.Total())
}

// AnalyticBreakdown converts the program's requirements to absolute times
// for a given base time (the absolute duration corresponding to one
// relative unit), with no resource contention — the closed-form
// single-CPU single-disk evaluation.
func (p Program) AnalyticBreakdown(base time.Duration) Breakdown {
	r := p.Requirements()
	return Breakdown{
		Name: p.Name,
		CPU:  time.Duration(r.CPU * float64(base)),
		IO:   time.Duration(r.Disk * float64(base)),
		Comm: time.Duration(r.Comm * float64(base)),
	}
}
