package appmodel

import "sort"

// Catalog returns behavioral models for the I/O-intensive application
// classes the paper names beyond QCRD — §2.3 leaves "the development of
// other simulated applications" as future work, and §3.1 lists the
// classes: data mining, parallel text search, out-of-core linear algebra,
// a remote-sensing database, and sparse factorization. Each model's
// working-set vector encodes the class's published phase behaviour at the
// level of the Rosti et al. characterization: fractions of time in I/O,
// communication and computation per phase run.
//
// These are models, not traces: use them with Simulator/Analytic to
// predict resource scaling (as the paper recommends) and the tracegen
// package when byte-accurate replay is wanted.
func Catalog() []Application {
	apps := []Application{
		QCRD(),
		{
			// Association-rule mining: repeated full-data scans with a
			// CPU-heavy candidate-counting phase after each scan.
			Name: "Dmine",
			Programs: []Program{{
				Name: "miner",
				Sets: []WorkingSet{
					{IOFrac: 0.70, CommFrac: 0, RelTime: 0.15, Phases: 4}, // scan pass
					{IOFrac: 0.05, CommFrac: 0, RelTime: 0.10, Phases: 4}, // count/candidate gen
				},
			}},
		},
		{
			// Parallel text search: embarrassingly parallel scans with a
			// tiny merge at the end.
			Name: "Pgrep",
			Programs: []Program{
				{Name: "scanner", Sets: []WorkingSet{
					{IOFrac: 0.85, CommFrac: 0.02, RelTime: 0.9, Phases: 1},
					{IOFrac: 0, CommFrac: 0.60, RelTime: 0.1, Phases: 1}, // result merge
				}},
			},
		},
		{
			// Out-of-core LU: panel factor (CPU) alternating with panel
			// write-back (I/O), trailing update communication.
			Name: "LU",
			Programs: []Program{{
				Name: "factor",
				Sets: []WorkingSet{
					{IOFrac: 0.10, CommFrac: 0.15, RelTime: 0.10, Phases: 6}, // factor panel
					{IOFrac: 0.90, CommFrac: 0, RelTime: 0.05, Phases: 6},    // write panel
				},
			}},
		},
		{
			// Titan remote-sensing database: query parsing (CPU-light),
			// large tile reads, modest shipping of results.
			Name: "Titan",
			Programs: []Program{{
				Name: "query",
				Sets: []WorkingSet{
					{IOFrac: 0.80, CommFrac: 0.10, RelTime: 0.20, Phases: 4},
					{IOFrac: 0.20, CommFrac: 0.05, RelTime: 0.05, Phases: 4},
				},
			}},
		},
		{
			// Sparse Cholesky: supernode reads followed by dense update
			// kernels; communication grows with the elimination tree.
			Name: "Cholesky",
			Programs: []Program{{
				Name: "supernode",
				Sets: []WorkingSet{
					{IOFrac: 0.60, CommFrac: 0.05, RelTime: 0.08, Phases: 8},
					{IOFrac: 0.05, CommFrac: 0.15, RelTime: 0.05, Phases: 8},
				},
			}},
		},
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	return apps
}

// CatalogByName finds a catalog application.
func CatalogByName(name string) (Application, bool) {
	for _, app := range Catalog() {
		if app.Name == name {
			return app, true
		}
	}
	return Application{}, false
}
