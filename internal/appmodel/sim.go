package appmodel

import (
	"fmt"
	"time"

	"repro/internal/simdisk"
)

// ProgramResult is the measured execution of one program on the machine.
type ProgramResult struct {
	Breakdown
	// Wall is the program's end-to-end time (== Breakdown.Total(): bursts
	// within a program are strictly sequential).
	Wall time.Duration
	// Requests is the number of disk requests the program issued.
	Requests int64
}

// Result is the measured execution of an application.
type Result struct {
	// App aggregates the per-program breakdowns (the resource
	// requirements view plotted as the "Application" bars of Figs. 2-3).
	App Breakdown
	// Wall is the application makespan: programs run concurrently on
	// separate nodes, so it is the slowest program's wall time.
	Wall time.Duration
	// Programs holds per-program results in application order.
	Programs []ProgramResult
}

// Simulator executes behavioral-model applications on a simulated
// machine. Each program gets its own disk array (programs run on separate
// nodes); CPU and communication bursts use the machine's closed-form
// burst models while I/O bursts are executed request by request against
// the simdisk array.
type Simulator struct {
	machine Machine
	base    time.Duration
}

// NewSimulator builds a simulator for the given machine and base time
// (the absolute duration of one relative model unit).
func NewSimulator(machine Machine, base time.Duration) (*Simulator, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	if base <= 0 {
		return nil, fmt.Errorf("appmodel: base time %v must be positive", base)
	}
	return &Simulator{machine: machine, base: base}, nil
}

// MustNewSimulator panics on configuration error.
func MustNewSimulator(machine Machine, base time.Duration) *Simulator {
	s, err := NewSimulator(machine, base)
	if err != nil {
		panic(err)
	}
	return s
}

// Machine returns the simulated machine.
func (s *Simulator) Machine() Machine { return s.machine }

// Run executes the application and returns its measured result.
func (s *Simulator) Run(app Application) (Result, error) {
	if err := app.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	for _, prog := range app.Programs {
		pr := s.runProgram(prog)
		res.Programs = append(res.Programs, pr)
		res.App.CPU += pr.CPU
		res.App.IO += pr.IO
		res.App.Comm += pr.Comm
		if pr.Wall > res.Wall {
			res.Wall = pr.Wall
		}
	}
	res.App.Name = app.Name
	return res, nil
}

// runProgram executes one program on a fresh node.
func (s *Simulator) runProgram(prog Program) ProgramResult {
	array := simdisk.MustNewArray(s.machine.NumDisks, s.machine.StripeUnit, s.machine.Disk)
	res := ProgramResult{Breakdown: Breakdown{Name: prog.Name}}
	now := time.Unix(0, 0)
	// The program sustains at most IOQueueDepth concurrent streams, and no
	// more than one per member disk — a second stream on a disk would only
	// thrash the head between regions. Each stream owns one member disk
	// (coarse, file-per-disk placement) and scans it sequentially, the
	// layout parallel out-of-core codes use.
	nStreams := s.machine.IOQueueDepth
	if s.machine.NumDisks < nStreams {
		nStreams = s.machine.NumDisks
	}
	streams := make([]ioStream, nStreams)
	for k := range streams {
		streams[k].disk = array.Disk(k)
	}

	for _, set := range prog.Sets {
		for phase := 0; phase < set.Phases; phase++ {
			phaseTime := time.Duration(set.RelTime * float64(s.base))
			ioNominal := time.Duration(float64(phaseTime) * set.IOFrac)
			commNominal := time.Duration(float64(phaseTime) * set.CommFrac)
			cpuNominal := phaseTime - ioNominal - commNominal

			// I/O burst first (a phase is "an I/O burst followed by a
			// computation burst and possibly a communication burst").
			ioDone, nreq := s.ioBurst(now, ioNominal, streams)
			res.IO += ioDone.Sub(now)
			res.Requests += nreq
			now = ioDone

			cpu := s.machine.cpuBurst(cpuNominal)
			res.CPU += cpu
			now = now.Add(cpu)

			comm := s.machine.commBurst(commNominal)
			res.Comm += comm
			now = now.Add(comm)
		}
	}
	res.Wall = now.Sub(time.Unix(0, 0))
	return res
}

// ioStream is one sequential I/O stream bound to a member disk.
type ioStream struct {
	disk *simdisk.Disk
	pos  int64
}

// ioBurst converts a nominal I/O burst duration into a byte volume at the
// single-stream reference rate and executes it as len(streams) concurrent
// sequential scans, one per member disk. It returns the burst completion
// time and the number of requests issued.
func (s *Simulator) ioBurst(start time.Time, nominal time.Duration, streams []ioStream) (time.Time, int64) {
	if nominal <= 0 {
		return start, 0
	}
	volume := int64(nominal.Seconds() * s.machine.singleStreamRate())
	if volume <= 0 {
		return start, 0
	}
	reqSize := s.machine.IORequestSize
	nRequests := volume / reqSize // the trailing partial request is folded into the last full one
	if nRequests == 0 {
		nRequests = 1
	}
	done := start
	var issued int64
	// Round-robin the requests across the streams; each stream is a
	// dependent chain (a new request is issued when the previous one
	// completes), so the burst keeps at most len(streams) requests in
	// flight.
	streamTime := make([]time.Time, len(streams))
	for k := range streamTime {
		streamTime[k] = start
	}
	for i := int64(0); i < nRequests; i++ {
		k := i % int64(len(streams))
		sz := reqSize
		if i == nRequests-1 {
			sz = volume - (nRequests-1)*reqSize // absorb the remainder
		}
		st := &streams[k]
		if st.pos+sz >= st.disk.Params().Capacity {
			st.pos = 0 // wrap: the scan restarts at the outer tracks
		}
		reqDone, _ := st.disk.Access(streamTime[k], simdisk.Request{
			Offset: st.pos,
			Length: sz,
		})
		st.pos += sz
		streamTime[k] = reqDone
		if reqDone.After(done) {
			done = reqDone
		}
		issued++
	}
	return done, issued
}

// Analytic evaluates the application on the machine in closed form: CPU
// bursts via Amdahl, I/O bursts via min(disks, queue depth) effective
// streams, communication unchanged. The paper's §2.3 validates its
// simulator against a real implementation at <10% error; our analog
// validates the discrete-event simulator against this closed form.
func Analytic(app Application, machine Machine, base time.Duration) (Result, error) {
	if err := app.Validate(); err != nil {
		return Result{}, err
	}
	if err := machine.Validate(); err != nil {
		return Result{}, err
	}
	effStreams := machine.IOQueueDepth
	if machine.NumDisks < effStreams {
		effStreams = machine.NumDisks
	}
	var res Result
	for _, prog := range app.Programs {
		var pr ProgramResult
		pr.Name = prog.Name
		for _, set := range prog.Sets {
			phaseTime := time.Duration(set.RelTime * float64(base))
			io := time.Duration(float64(phaseTime) * set.IOFrac)
			comm := time.Duration(float64(phaseTime) * set.CommFrac)
			cpu := phaseTime - io - comm
			n := time.Duration(set.Phases)
			pr.IO += n * (io / time.Duration(effStreams))
			pr.CPU += n * machine.cpuBurst(cpu)
			pr.Comm += n * machine.commBurst(comm)
		}
		pr.Wall = pr.Total()
		res.Programs = append(res.Programs, pr)
		res.App.CPU += pr.CPU
		res.App.IO += pr.IO
		res.App.Comm += pr.Comm
		if pr.Wall > res.Wall {
			res.Wall = pr.Wall
		}
	}
	res.App.Name = app.Name
	return res, nil
}
