package appmodel

import (
	"testing"
	"time"
)

// testBase keeps unit-test simulations fast; experiment-scale runs use
// QCRDBaseTime.
const testBase = 5 * time.Second

func TestMachineValidate(t *testing.T) {
	if err := DefaultMachine().Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"zero cpus", func(m *Machine) { m.NumCPUs = 0 }},
		{"bad par frac", func(m *Machine) { m.CPUParFrac = 1.5 }},
		{"zero disks", func(m *Machine) { m.NumDisks = 0 }},
		{"zero stripe", func(m *Machine) { m.StripeUnit = 0 }},
		{"zero depth", func(m *Machine) { m.IOQueueDepth = 0 }},
		{"zero reqsize", func(m *Machine) { m.IORequestSize = 0 }},
		{"neg latency", func(m *Machine) { m.NetLatency = -1 }},
		{"bad disk", func(m *Machine) { m.Disk.RPM = 0 }},
	}
	for _, tc := range cases {
		m := DefaultMachine()
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestSimulatorRejectsBadInput(t *testing.T) {
	if _, err := NewSimulator(DefaultMachine(), 0); err == nil {
		t.Error("zero base time accepted")
	}
	bad := DefaultMachine()
	bad.NumCPUs = 0
	if _, err := NewSimulator(bad, testBase); err == nil {
		t.Error("invalid machine accepted")
	}
	sim := MustNewSimulator(DefaultMachine(), testBase)
	if _, err := sim.Run(Application{Name: "empty"}); err == nil {
		t.Error("invalid application accepted")
	}
}

func TestRunQCRDBreakdownShape(t *testing.T) {
	sim := MustNewSimulator(DefaultMachine(), testBase)
	res, err := sim.Run(QCRD())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Programs) != 2 {
		t.Fatalf("got %d program results", len(res.Programs))
	}
	p1, p2 := res.Programs[0], res.Programs[1]
	// Program 1 is CPU-dominated; program 2 is I/O-dominated.
	if p1.CPU <= p1.IO {
		t.Fatalf("program 1 should be CPU-heavy: CPU=%v IO=%v", p1.CPU, p1.IO)
	}
	if p2.IO <= p2.CPU {
		t.Fatalf("program 2 should be I/O-heavy: CPU=%v IO=%v", p2.CPU, p2.IO)
	}
	// Program 1 runs longer; the application makespan equals its wall.
	if p1.Wall <= p2.Wall {
		t.Fatalf("program 1 wall %v not longer than program 2 %v", p1.Wall, p2.Wall)
	}
	if res.Wall != p1.Wall {
		t.Fatalf("app wall %v != dominant program wall %v", res.Wall, p1.Wall)
	}
	// QCRD has no communication.
	if res.App.Comm != 0 {
		t.Fatalf("QCRD comm time = %v, want 0", res.App.Comm)
	}
	if p1.Requests == 0 || p2.Requests == 0 {
		t.Fatal("programs issued no disk requests")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		sim := MustNewSimulator(DefaultMachine(), testBase)
		res, err := sim.Run(QCRD())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Wall != b.Wall || a.App != b.App {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

func TestIOTimeTracksNominal(t *testing.T) {
	// On the baseline machine (1 disk, 1 effective stream) the simulated
	// I/O time must be close to the model's nominal I/O requirement:
	// that is what calibrates the volume conversion.
	machine := DefaultMachine()
	sim := MustNewSimulator(machine, testBase)
	app := QCRD()
	res, err := sim.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	nominal := time.Duration(app.Requirements().Disk * float64(testBase))
	got := res.App.IO
	ratio := float64(got) / float64(nominal)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("simulated I/O %v vs nominal %v (ratio %.3f), want within 10%%", got, nominal, ratio)
	}
}

func TestMoreCPUsShrinkCPUTime(t *testing.T) {
	app := QCRD()
	res1, _ := MustNewSimulator(DefaultMachine().WithCPUs(1), testBase).Run(app)
	res8, _ := MustNewSimulator(DefaultMachine().WithCPUs(8), testBase).Run(app)
	if res8.App.CPU >= res1.App.CPU {
		t.Fatalf("8 CPUs did not shrink CPU time: %v vs %v", res8.App.CPU, res1.App.CPU)
	}
	// I/O must be unaffected by CPU count.
	if res8.App.IO != res1.App.IO {
		t.Fatalf("CPU count changed I/O time: %v vs %v", res8.App.IO, res1.App.IO)
	}
}

func TestMoreDisksShrinkIOTime(t *testing.T) {
	app := QCRD()
	res1, _ := MustNewSimulator(DefaultMachine().WithDisks(1), testBase).Run(app)
	res4, _ := MustNewSimulator(DefaultMachine().WithDisks(4), testBase).Run(app)
	if res4.App.IO >= res1.App.IO {
		t.Fatalf("4 disks did not shrink I/O time: %v vs %v", res4.App.IO, res1.App.IO)
	}
	if res4.App.CPU != res1.App.CPU {
		t.Fatalf("disk count changed CPU time: %v vs %v", res4.App.CPU, res1.App.CPU)
	}
}

func TestCommBurstCharged(t *testing.T) {
	app := Application{Name: "comm", Programs: []Program{{
		Name: "p",
		Sets: []WorkingSet{{IOFrac: 0, CommFrac: 0.8, RelTime: 0.5, Phases: 2}},
	}}}
	sim := MustNewSimulator(DefaultMachine(), testBase)
	res, err := sim.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if res.App.Comm <= 0 {
		t.Fatal("communication burst not charged")
	}
	// Comm includes per-phase latency on top of the nominal payload time.
	nominal := time.Duration(0.8 * 0.5 * float64(testBase) * 2)
	if res.App.Comm < nominal {
		t.Fatalf("comm %v below nominal %v", res.App.Comm, nominal)
	}
}

func TestSimulatorVsAnalyticError(t *testing.T) {
	// The reproduction analog of the paper's <10% error claim (§2.3).
	configs := []Machine{
		DefaultMachine(),
		DefaultMachine().WithDisks(4),
		DefaultMachine().WithCPUs(8),
		DefaultMachine().WithDisks(8).WithCPUs(4),
	}
	for i, m := range configs {
		errRate, err := SimulatorError(QCRD(), m, testBase)
		if err != nil {
			t.Fatal(err)
		}
		if errRate > 0.10 {
			t.Errorf("config %d: simulator vs analytic error %.1f%% exceeds 10%%", i, errRate*100)
		}
	}
}

func TestAnalyticMatchesRequirementsAtBaseline(t *testing.T) {
	// With 1 CPU and 1 disk the analytic result must equal the raw
	// requirements (no resource scaling), modulo network latency (QCRD
	// has no comm, so exactly).
	app := QCRD()
	res, err := Analytic(app, DefaultMachine(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	want := app.Requirements()
	if got := res.App.CPU; got != time.Duration(want.CPU*float64(testBase)) {
		t.Fatalf("analytic CPU %v != requirements %v", got, time.Duration(want.CPU*float64(testBase)))
	}
	if got := res.App.IO; got != time.Duration(want.Disk*float64(testBase)) {
		t.Fatalf("analytic IO %v != requirements %v", got, time.Duration(want.Disk*float64(testBase)))
	}
}
