package appmodel

import (
	"testing"
	"time"
)

func TestCatalogAllValid(t *testing.T) {
	apps := Catalog()
	if len(apps) != 6 {
		t.Fatalf("catalog has %d applications, want 6", len(apps))
	}
	names := map[string]bool{}
	for _, app := range apps {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if names[app.Name] {
			t.Errorf("duplicate name %s", app.Name)
		}
		names[app.Name] = true
	}
	for _, want := range []string{"QCRD", "Dmine", "Pgrep", "LU", "Titan", "Cholesky"} {
		if !names[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
}

func TestCatalogByName(t *testing.T) {
	app, ok := CatalogByName("Titan")
	if !ok || app.Name != "Titan" {
		t.Fatalf("CatalogByName(Titan) = %+v, %v", app.Name, ok)
	}
	if _, ok := CatalogByName("NotAnApp"); ok {
		t.Fatal("unknown app found")
	}
}

func TestCatalogAppsAreIOIntensive(t *testing.T) {
	// Every catalog entry models an I/O-intensive application: disk
	// requirements must be a substantial share (≥ 20%) of execution.
	for _, app := range Catalog() {
		r := app.Requirements()
		frac := r.Disk / r.Total()
		if frac < 0.20 {
			t.Errorf("%s: I/O share %.1f%% too low for an I/O-intensive model",
				app.Name, frac*100)
		}
	}
}

func TestCatalogAppsSimulate(t *testing.T) {
	sim := MustNewSimulator(DefaultMachine(), 2*time.Second)
	for _, app := range Catalog() {
		res, err := sim.Run(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if res.Wall <= 0 {
			t.Errorf("%s: zero wall time", app.Name)
		}
	}
}

func TestPgrepScalesWithDisksBetterThanQCRD(t *testing.T) {
	// Pgrep is nearly pure parallel I/O; its disk speedup must beat
	// QCRD's — the kind of cross-application conclusion the model is
	// built to support.
	base := 2 * time.Second
	machine := DefaultMachine()
	pgrep, _ := CatalogByName("Pgrep")
	qcrdUp, err := Speedups(QCRD(), machine.WithDisks(1), base, []int{8},
		func(m Machine, n int) Machine { return m.WithDisks(n) })
	if err != nil {
		t.Fatal(err)
	}
	pgrepUp, err := Speedups(pgrep, machine.WithDisks(1), base, []int{8},
		func(m Machine, n int) Machine { return m.WithDisks(n) })
	if err != nil {
		t.Fatal(err)
	}
	if pgrepUp[0] <= qcrdUp[0] {
		t.Fatalf("Pgrep 8-disk speedup %.2f not above QCRD's %.2f", pgrepUp[0], qcrdUp[0])
	}
}
