package appmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWorkingSetValidate(t *testing.T) {
	good := WorkingSet{IOFrac: 0.5, CommFrac: 0.3, RelTime: 0.1, Phases: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	cases := []WorkingSet{
		{IOFrac: -0.1, RelTime: 0.1, Phases: 1},
		{IOFrac: 1.1, RelTime: 0.1, Phases: 1},
		{CommFrac: -0.1, RelTime: 0.1, Phases: 1},
		{IOFrac: 0.6, CommFrac: 0.6, RelTime: 0.1, Phases: 1}, // φ+γ > 1
		{IOFrac: 0.5, RelTime: -0.1, Phases: 1},
		{IOFrac: 0.5, RelTime: 0.1, Phases: 0},
	}
	for i, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid set %+v accepted", i, w)
		}
	}
}

func TestCPUFracIdentity(t *testing.T) {
	// Eq. 1: the three fractions of a phase must sum to 1.
	f := func(io, comm uint8) bool {
		w := WorkingSet{
			IOFrac:   float64(io) / 512, // ≤ ~0.5
			CommFrac: float64(comm) / 512,
			RelTime:  0.1,
			Phases:   1,
		}
		return almostEqual(w.IOFrac+w.CommFrac+w.CPUFrac(), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramRequirementsIdentity(t *testing.T) {
	// Eq. 2-5: R_CPU + R_Disk + R_COM must equal total relative time.
	p := FigureExample()
	r := p.Requirements()
	if !almostEqual(r.Total(), p.TotalRelTime(), 1e-12) {
		t.Fatalf("requirements total %v != program total %v", r.Total(), p.TotalRelTime())
	}
}

func TestFigureExampleNumbers(t *testing.T) {
	p := FigureExample()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumPhases(); got != 5 {
		t.Fatalf("NumPhases = %d, want 5 (Figure 1 has N=5)", got)
	}
	// Σ ρᵢ·τᵢ = 0.287 + 2(0.185) + 0.194 + 0.148 = 0.999.
	if got := p.TotalRelTime(); !almostEqual(got, 0.999, 1e-9) {
		t.Fatalf("TotalRelTime = %v, want 0.999", got)
	}
}

func TestNormalized(t *testing.T) {
	p := FigureExample().Normalized()
	if got := p.TotalRelTime(); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("normalized total = %v, want 1", got)
	}
	// Normalizing must not change the CPU/IO/Comm proportions.
	orig, norm := FigureExample().Requirements(), p.Requirements()
	if !almostEqual(orig.Disk/orig.Total(), norm.Disk/norm.Total(), 1e-12) {
		t.Fatal("normalization changed I/O proportion")
	}
}

func TestNormalizedZeroProgram(t *testing.T) {
	p := Program{Name: "z", Sets: []WorkingSet{{RelTime: 0, Phases: 1}}}
	if got := p.Normalized().TotalRelTime(); got != 0 {
		t.Fatalf("zero program normalized to %v", got)
	}
}

func TestNormalizationInvariantProperty(t *testing.T) {
	f := func(rels []uint16) bool {
		if len(rels) == 0 {
			return true
		}
		p := Program{Name: "q"}
		for _, r := range rels {
			p.Sets = append(p.Sets, WorkingSet{
				IOFrac:  0.3,
				RelTime: float64(r) / 1000,
				Phases:  1 + int(r%4),
			})
		}
		if p.TotalRelTime() == 0 {
			return true
		}
		n := p.Normalized()
		return almostEqual(n.TotalRelTime(), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQCRDStructure(t *testing.T) {
	app := QCRD()
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(app.Programs) != 2 {
		t.Fatalf("QCRD has %d programs, want 2 (Eq. 8)", len(app.Programs))
	}
	p1, p2 := app.Programs[0], app.Programs[1]
	if got := p1.NumPhases(); got != 24 {
		t.Fatalf("program 1 has %d phases, want 24 (Eq. 9)", got)
	}
	if got := p2.NumPhases(); got != 13 {
		t.Fatalf("program 2 has %d phases, want 13 (Eq. 10)", got)
	}
	// Eq. 9: odd phases (0.14, 0, 0.066, 1), even phases (0.97, 0, 0.0082, 1).
	for i, w := range p1.Sets {
		if i%2 == 0 {
			if w.IOFrac != 0.14 || w.RelTime != 0.066 {
				t.Fatalf("set %d = %+v, want (0.14, 0, 0.066, 1)", i, w)
			}
		} else {
			if w.IOFrac != 0.97 || w.RelTime != 0.0082 {
				t.Fatalf("set %d = %+v, want (0.97, 0, 0.0082, 1)", i, w)
			}
		}
	}
	if w := p2.Sets[0]; w.IOFrac != 0.92 || w.RelTime != 0.03 || w.Phases != 13 {
		t.Fatalf("program 2 set = %+v, want (0.92, 0, 0.03, 13)", w)
	}
}

func TestQCRDProgram2MoreIOIntensive(t *testing.T) {
	// §2.3: "the I/O activities in the second program is more intensive
	// compared with that in the first program".
	app := QCRD()
	r1 := app.Programs[0].Requirements()
	r2 := app.Programs[1].Requirements()
	frac1 := r1.Disk / r1.Total()
	frac2 := r2.Disk / r2.Total()
	if frac2 <= frac1 {
		t.Fatalf("program 2 I/O fraction %v not above program 1's %v", frac2, frac1)
	}
}

func TestQCRDProgram1RunsLonger(t *testing.T) {
	// §2.3: "the first program runs longer than the second program".
	app := QCRD()
	if app.Programs[0].TotalRelTime() <= app.Programs[1].TotalRelTime() {
		t.Fatal("program 1 does not dominate")
	}
}

func TestApplicationValidate(t *testing.T) {
	if err := (Application{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty application accepted")
	}
	bad := Application{Name: "bad", Programs: []Program{{Name: "p"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("application with empty program accepted")
	}
}

func TestBreakdownPercentages(t *testing.T) {
	b := Breakdown{CPU: 60 * time.Second, IO: 30 * time.Second, Comm: 10 * time.Second}
	if !almostEqual(b.CPUPercent(), 60, 1e-9) || !almostEqual(b.IOPercent(), 30, 1e-9) || !almostEqual(b.CommPercent(), 10, 1e-9) {
		t.Fatalf("percentages = %v/%v/%v", b.CPUPercent(), b.IOPercent(), b.CommPercent())
	}
	var zero Breakdown
	if zero.CPUPercent() != 0 || zero.IOPercent() != 0 || zero.CommPercent() != 0 {
		t.Fatal("zero breakdown percentages must be 0")
	}
}

func TestAnalyticBreakdownScalesWithBase(t *testing.T) {
	p := FigureExample()
	b1 := p.AnalyticBreakdown(100 * time.Second)
	b2 := p.AnalyticBreakdown(200 * time.Second)
	// Allow nanosecond slop from float→Duration truncation.
	within := func(a, b time.Duration) bool {
		d := a - b
		return d >= -2 && d <= 2
	}
	if !within(b2.CPU, 2*b1.CPU) || !within(b2.IO, 2*b1.IO) || !within(b2.Comm, 2*b1.Comm) {
		t.Fatalf("breakdown not linear in base: %+v vs %+v", b1, b2)
	}
}

func TestApplicationRequirementsSum(t *testing.T) {
	app := QCRD()
	total := app.Requirements()
	var sum Requirements
	for _, p := range app.Programs {
		r := p.Requirements()
		sum.CPU += r.CPU
		sum.Disk += r.Disk
		sum.Comm += r.Comm
	}
	if total != sum {
		t.Fatalf("application requirements %+v != program sum %+v", total, sum)
	}
}

func TestMaxRelTime(t *testing.T) {
	app := QCRD()
	want := app.Programs[0].TotalRelTime() // program 1 dominates
	if got := app.MaxRelTime(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("MaxRelTime = %v, want %v", got, want)
	}
}
