package appmodel

import (
	"fmt"
	"strings"
	"time"
)

// Segment is one burst within a program's execution timeline.
type Segment struct {
	Phase      int // 1-based phase number
	WorkingSet int // 1-based working-set number
	Kind       SegmentKind
	Start, End time.Duration // offsets from program start
}

// SegmentKind labels a burst.
type SegmentKind int

// Burst kinds in phase order (a phase is an I/O burst, then computation,
// then possibly communication).
const (
	SegIO SegmentKind = iota
	SegCPU
	SegComm
)

// String names the kind.
func (k SegmentKind) String() string {
	switch k {
	case SegIO:
		return "IO"
	case SegCPU:
		return "CPU"
	case SegComm:
		return "COM"
	default:
		return fmt.Sprintf("seg(%d)", int(k))
	}
}

// Timeline expands a program into its burst sequence at the given base
// time — the paper's Figure 1(a) view (phase behaviour in absolute time).
// No resource contention is applied; it is the model's nominal timeline.
func Timeline(prog Program, base time.Duration) ([]Segment, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	var segs []Segment
	var now time.Duration
	phase := 0
	for wsIdx, set := range prog.Sets {
		for p := 0; p < set.Phases; p++ {
			phase++
			phaseTime := time.Duration(set.RelTime * float64(base))
			io := time.Duration(float64(phaseTime) * set.IOFrac)
			comm := time.Duration(float64(phaseTime) * set.CommFrac)
			cpu := phaseTime - io - comm
			for _, part := range []struct {
				kind SegmentKind
				dur  time.Duration
			}{{SegIO, io}, {SegCPU, cpu}, {SegComm, comm}} {
				if part.dur <= 0 {
					continue
				}
				segs = append(segs, Segment{
					Phase:      phase,
					WorkingSet: wsIdx + 1,
					Kind:       part.kind,
					Start:      now,
					End:        now + part.dur,
				})
				now += part.dur
			}
		}
	}
	return segs, nil
}

// RenderTimeline draws the timeline as an ASCII Gantt chart — the
// reproduction of Figure 1: one lane per burst kind, # marking busy
// intervals, with the phase ruler underneath.
func RenderTimeline(prog Program, base time.Duration, width int) (string, error) {
	if width < 20 {
		width = 20
	}
	segs, err := Timeline(prog, base)
	if err != nil {
		return "", err
	}
	if len(segs) == 0 {
		return "(empty program)\n", nil
	}
	total := segs[len(segs)-1].End
	col := func(t time.Duration) int {
		c := int(float64(t) / float64(total) * float64(width))
		if c >= width {
			c = width - 1
		}
		return c
	}
	lanes := map[SegmentKind][]byte{
		SegIO:   []byte(strings.Repeat(" ", width)),
		SegCPU:  []byte(strings.Repeat(" ", width)),
		SegComm: []byte(strings.Repeat(" ", width)),
	}
	ruler := []byte(strings.Repeat(" ", width))
	for _, s := range segs {
		lane := lanes[s.Kind]
		for c := col(s.Start); c <= col(s.End-1); c++ {
			lane[c] = '#'
		}
		// Mark phase starts on the ruler.
		if s.Kind == SegIO || ruler[col(s.Start)] == ' ' {
			ruler[col(s.Start)] = phaseMark(s.Phase)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Program %q, %d phases, total %v (Figure 1 view)\n",
		prog.Name, prog.NumPhases(), total.Round(time.Millisecond))
	fmt.Fprintf(&b, "  IO  |%s|\n", lanes[SegIO])
	fmt.Fprintf(&b, "  CPU |%s|\n", lanes[SegCPU])
	fmt.Fprintf(&b, "  COM |%s|\n", lanes[SegComm])
	fmt.Fprintf(&b, "phase |%s|\n", ruler)
	return b.String(), nil
}

// phaseMark renders a phase number as a single ruler character.
func phaseMark(phase int) byte {
	if phase < 10 {
		return byte('0' + phase)
	}
	return '+'
}
