package appmodel

import "time"

// QCRD returns the paper's instantiation of the behavioral model for the
// QCRD quantum chemical reaction dynamics application (§2.2), which
// solves the Schrödinger equation for atom–diatomic-molecule scattering
// cross sections.
//
// The application consists of two independent programs (Eq. 8):
//
//   - Program 1 (Eq. 9): a sequence of CPU- and I/O-intensive phases
//     repeated 12 times — 24 phases alternating
//     Γ = (0.14, 0, 0.066, 1) for odd phases and
//     Γ = (0.97, 0, 0.0082, 1) for even phases.
//   - Program 2 (Eq. 10): 13 identical, more I/O-intensive phases
//     Γ = (0.92, 0, 0.03, 13).
func QCRD() Application {
	var sets1 []WorkingSet
	for i := 0; i < 12; i++ {
		sets1 = append(sets1,
			WorkingSet{IOFrac: 0.14, CommFrac: 0, RelTime: 0.066, Phases: 1},
			WorkingSet{IOFrac: 0.97, CommFrac: 0, RelTime: 0.0082, Phases: 1},
		)
	}
	return Application{
		Name: "QCRD",
		Programs: []Program{
			{Name: "Program1", Sets: sets1},
			{Name: "Program2", Sets: []WorkingSet{
				{IOFrac: 0.92, CommFrac: 0, RelTime: 0.03, Phases: 13},
			}},
		},
	}
}

// QCRDBaseTime is the absolute duration of one relative model unit used
// by the Figure 2-5 experiments. It is calibrated so the simulated
// application's wall time lands near the paper's ~170 s scale
// (program 1 ≈ 0.89 relative units, program 2 ≈ 0.39).
const QCRDBaseTime = 190 * time.Second

// FigureExample returns the five-working-set example program of Figure 1,
// used by tests and the custommodel example:
// ~Γ = [(0.52, 0.29, 0.287, 1), (0, 0.85, 0.185, 2), (0, 0.57, 0.194, 1),
// (0.81, 0, 0.148, 1)].
func FigureExample() Program {
	return Program{
		Name: "Figure1Example",
		Sets: []WorkingSet{
			{IOFrac: 0.52, CommFrac: 0.29, RelTime: 0.287, Phases: 1},
			{IOFrac: 0, CommFrac: 0.85, RelTime: 0.185, Phases: 2},
			{IOFrac: 0, CommFrac: 0.57, RelTime: 0.194, Phases: 1},
			{IOFrac: 0.81, CommFrac: 0, RelTime: 0.148, Phases: 1},
		},
	}
}
