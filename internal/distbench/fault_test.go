package distbench

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fsim"
	"repro/internal/netsim"
	"repro/internal/simdisk"
)

// faultConfig is the calibrated node-kill scenario: enough clients and
// requests that the run is still in flight at 20 ms, a deadline short
// enough to notice the loss quickly, and a retry budget that always
// reaches a live replica (3 servers, so attempt 2 is a survivor even if
// the first failover lands on another suspect).
func faultConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.RequestsPerNode = 32
	cfg.Servers = 3
	cfg.Deadline = 5 * time.Millisecond
	cfg.Retry = fsim.RetryPolicy{Max: 3, Base: 200 * time.Microsecond}
	return cfg
}

func mustParseNetPlan(t *testing.T, s string) *netsim.FaultPlan {
	t.Helper()
	plan, err := netsim.ParseFaultPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRingCoversAllServers(t *testing.T) {
	rg := newRing(5)
	buf := make([]int, 0, 5)
	prefs := rg.prefs("index.html", buf)
	if len(prefs) != 5 {
		t.Fatalf("preference list %v does not cover 5 servers", prefs)
	}
	seen := make(map[int]bool)
	for _, s := range prefs {
		if s < 0 || s >= 5 || seen[s] {
			t.Fatalf("preference list %v has an out-of-range or duplicate entry", prefs)
		}
		seen[s] = true
	}
	again := rg.prefs("index.html", make([]int, 0, 5))
	if !reflect.DeepEqual(prefs, again) {
		t.Fatalf("preference list unstable: %v vs %v", prefs, again)
	}
}

func TestRingAffinityStableUnderMembership(t *testing.T) {
	// Consistent hashing's point: going from 3 to 4 servers must keep
	// most keys' primaries, unlike modulo assignment.
	small, large := newRing(3), newRing(4)
	keys := []string{"index.html", "logo.png", "app.js", "style.css",
		"a.txt", "b.txt", "c.txt", "d.txt", "e.txt", "f.txt"}
	moved := 0
	for _, k := range keys {
		a := small.prefs(k, make([]int, 0, 3))
		b := large.prefs(k, make([]int, 0, 4))
		if a[0] != b[0] {
			moved++
		}
	}
	if moved > len(keys)/2 {
		t.Fatalf("%d/%d primaries moved when adding one server", moved, len(keys))
	}
}

func TestNodeLayoutResolution(t *testing.T) {
	layout := nodeLayout(8, 3)
	for _, tc := range []struct {
		target string
		want   int
	}{
		{"client0", 0}, {"client7", 7}, {"server0", 8}, {"server2", 10},
		{"node10", 10}, {"link3", 3},
	} {
		got, err := layout(tc.target)
		if err != nil || got != tc.want {
			t.Errorf("layout(%q) = %d, %v; want %d", tc.target, got, err, tc.want)
		}
	}
	for _, bad := range []string{"client8", "server3", "node11", "disk0", "serverx"} {
		if _, err := layout(bad); err == nil {
			t.Errorf("layout(%q) accepted", bad)
		}
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := faultConfig()
	cfg.Deadline = 0
	cfg.NetFaults = mustParseNetPlan(t, "kill:server0@20ms")
	if err := cfg.Validate(); err == nil {
		t.Fatal("fault plan without a deadline accepted")
	}
	cfg = faultConfig()
	cfg.Deadline = -time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative deadline accepted")
	}
	cfg = faultConfig()
	cfg.CurveBuckets = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative curve bucket count accepted")
	}
	cfg = faultConfig()
	cfg.Retry.Max = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative retry budget accepted")
	}
}

func TestDeadlinePathFaultFreeCompletesAll(t *testing.T) {
	cfg := faultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Nodes * cfg.RequestsPerNode)
	if res.Requests != want {
		t.Fatalf("completed %d requests, want %d", res.Requests, want)
	}
	if res.TimedOut != 0 || res.Retried != 0 || res.Recovered != 0 || res.Lost != 0 || res.Dropped != 0 {
		t.Fatalf("fault-free deadline run produced fault tallies: %+v", res)
	}
	if len(res.Curve) != defaultCurveBuckets {
		t.Fatalf("curve has %d buckets, want %d", len(res.Curve), defaultCurveBuckets)
	}
	var curveTotal float64
	width := res.Makespan.Seconds() / float64(len(res.Curve))
	for _, p := range res.Curve {
		curveTotal += p.Throughput * width
	}
	if got := int64(curveTotal + 0.5); got != want {
		t.Fatalf("curve integrates to %d requests, want %d", got, want)
	}
}

func TestFailoverRecoversFromNodeKill(t *testing.T) {
	healthy := faultConfig()
	base, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	killed := faultConfig()
	killed.NetFaults = mustParseNetPlan(t, "kill:server0@20ms")
	res, err := Run(killed)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(killed.Nodes * killed.RequestsPerNode)
	if res.Requests != want {
		t.Fatalf("completed %d requests, want %d (lost %d)", res.Requests, want, res.Lost)
	}
	if res.TimedOut == 0 || res.Retried == 0 || res.Recovered == 0 {
		t.Fatalf("kill produced no failover activity: %+v", res)
	}
	if res.Lost != 0 {
		t.Fatalf("retry budget should absorb the kill, lost %d", res.Lost)
	}
	if res.Dropped == 0 {
		t.Fatalf("fabric dropped nothing despite the kill")
	}
	if res.TimeToSteadyMS <= 0 {
		t.Fatalf("no time-to-steady-state measured: %+v", res)
	}
	if res.Makespan <= base.Makespan {
		t.Fatalf("kill did not stretch the makespan: %v vs healthy %v", res.Makespan, base.Makespan)
	}
	if res.Throughput >= base.Throughput {
		t.Fatalf("kill did not dip throughput: %.0f vs healthy %.0f", res.Throughput, base.Throughput)
	}
	out := FormatCurve(res)
	for _, wantStr := range []string{"availability curve", "timed out", "time to steady state"} {
		if !strings.Contains(out, wantStr) {
			t.Fatalf("FormatCurve missing %q:\n%s", wantStr, out)
		}
	}
}

func TestDropWindowRecoversWithoutSuspicionLingering(t *testing.T) {
	// A transient link drop loses messages inside the window only; the
	// run must still complete every request.
	cfg := faultConfig()
	cfg.NetFaults = mustParseNetPlan(t, "drop:server0@10ms+5ms")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Nodes * cfg.RequestsPerNode)
	if res.Requests != want {
		t.Fatalf("completed %d requests, want %d (lost %d)", res.Requests, want, res.Lost)
	}
	if res.TimedOut == 0 || res.Recovered == 0 {
		t.Fatalf("drop window produced no failover activity: %+v", res)
	}
}

// TestNodeKillSweepDeterministic is the availability ablation's
// determinism contract: the node-kill sweep — consistent-hash routing,
// deadline expiries, backoff, the curve — is bit-identical across runs.
// CI replays it under -race with -count=10.
func TestNodeKillSweepDeterministic(t *testing.T) {
	run := func() []Result {
		cfg := faultConfig()
		cfg.NetFaults = mustParseNetPlan(t, "kill:server0@20ms")
		results, err := Sweep(cfg, []int{2, 4, 8})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	first := run()
	for i := 0; i < 2; i++ {
		again := run()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("node-kill sweep diverged on run %d:\nfirst: %+v\nagain: %+v", i+2, first, again)
		}
	}
}

func TestKillWithConcurrentRebuild(t *testing.T) {
	// The combined scenario: a server node dies mid-run while every
	// server's store rebuilds two dead mirror members onto pool spares.
	cfg := faultConfig()
	cfg.NetFaults = mustParseNetPlan(t, "kill:server0@20ms")
	cfg.Store.Disks = 3
	cfg.Store.RAIDLevel = simdisk.RAID1
	cfg.Store.Spares = 2
	cfg.Store.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{
		{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
		{Disk: 2, Kind: simdisk.FaultDevice, At: 0},
	}}
	cfg.RebuildMembers = []int{1, 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Nodes * cfg.RequestsPerNode)
	if res.Requests != want {
		t.Fatalf("completed %d requests, want %d (lost %d)", res.Requests, want, res.Lost)
	}
	if res.Recovered == 0 {
		t.Fatalf("kill produced no recoveries: %+v", res)
	}
	if res.RebuildRows <= 0 || res.RebuildMS <= 0 {
		t.Fatalf("rebuild did not run: rows=%d ms=%.2f", res.RebuildRows, res.RebuildMS)
	}
	if len(res.RebuildMembers) != 2 {
		t.Fatalf("per-member rebuild results %+v, want 2 entries", res.RebuildMembers)
	}
	for _, m := range res.RebuildMembers {
		if m.Rows <= 0 || m.Writes != m.Rows {
			t.Fatalf("member %d rebuild incomplete: writes %d, rows %d", m.Member, m.Writes, m.Rows)
		}
	}
}
