// Package distbench implements the paper's second future-work direction
// (§5): "develop benchmarks for I/O-intensive computing in a widely
// distributed environment." It places the web-server workload in a
// multi-node setting: client nodes issue file requests across a simulated
// interconnect (netsim) to a server node whose file I/O runs on the
// simulated store (fsim) through the managed runtime (vm).
//
// The benchmark sweeps the client-node count and reports throughput and
// latency, exposing the saturation point where the server's NIC and disk
// path stop scaling — the question a distributed deployment of the
// paper's web server would ask first.
package distbench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Config wires one distributed run.
type Config struct {
	// Nodes is the number of client nodes.
	Nodes int
	// RequestsPerNode is how many sequential requests each client issues.
	RequestsPerNode int
	// Servers is the number of replicated server nodes; clients are
	// assigned round-robin. Zero means one.
	Servers int
	// ServerWorkers is each server's worker-thread count.
	ServerWorkers int
	// RequestBytes is the size of a request message on the wire.
	RequestBytes int64
	// Net parameterizes the interconnect.
	Net netsim.Params
	// VM parameterizes the server's managed runtime.
	VM vm.Config
	// Store parameterizes the server's file store.
	Store fsim.Config
	// Corpus is the served file set.
	Corpus []workload.FileSpec

	// Deadline is each client's RPC deadline: a request whose response
	// was lost is declared failed Deadline after the attempt was issued,
	// and the client fails over to the next replica on the consistent-
	// hash ring. Zero keeps the fault-free fast path (static round-robin
	// assignment), byte-identical to the pre-fault benchmark.
	Deadline time.Duration
	// Retry bounds failover: up to Max retries per request, with
	// simulated-time exponential backoff Base<<attempt between the
	// deadline expiry and the next attempt — the same semantics as
	// fsim's session recovery. Used only when Deadline > 0.
	Retry fsim.RetryPolicy
	// NetFaults schedules node kills and link-drop windows on the
	// fabric. Symbolic targets resolve against the run's node layout:
	// "client<i>" is node i, "server<i>" is node Nodes+i, and
	// "node<i>"/"link<i>" are raw node indices. Requires Deadline > 0 —
	// without a deadline nobody would notice the loss.
	NetFaults *netsim.FaultPlan
	// RebuildMembers lists store members every server rebuilds
	// concurrently with serving (hot-spare pools: pair with
	// Store.Spares and a Store.Faults plan that kills the members).
	RebuildMembers []int
	// CurveBuckets is the availability curve's resolution (default 20
	// buckets over the makespan) on the fault-aware path.
	CurveBuckets int
}

// DefaultConfig returns a LAN cluster serving the web corpus: 4 workers,
// 64 requests per node.
func DefaultConfig() Config {
	return Config{
		Nodes:           4,
		RequestsPerNode: 64,
		ServerWorkers:   4,
		RequestBytes:    256,
		Net:             netsim.LANParams(),
		VM:              vm.DefaultConfig(),
		Store:           fsim.DefaultConfig(),
		Corpus:          workload.WebCorpus(),
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("distbench: need at least 1 node, got %d", c.Nodes)
	case c.Servers < 0:
		return fmt.Errorf("distbench: negative server count %d", c.Servers)
	case c.RequestsPerNode < 1:
		return fmt.Errorf("distbench: need at least 1 request per node, got %d", c.RequestsPerNode)
	case c.ServerWorkers < 1:
		return fmt.Errorf("distbench: need at least 1 server worker, got %d", c.ServerWorkers)
	case c.RequestBytes < 0:
		return fmt.Errorf("distbench: negative request size %d", c.RequestBytes)
	case len(c.Corpus) == 0:
		return fmt.Errorf("distbench: empty corpus")
	}
	if c.Deadline < 0 {
		return fmt.Errorf("distbench: negative deadline %v", c.Deadline)
	}
	if c.NetFaults != nil && c.Deadline <= 0 {
		return fmt.Errorf("distbench: a network fault plan needs a positive Deadline to detect losses")
	}
	if c.CurveBuckets < 0 {
		return fmt.Errorf("distbench: negative curve bucket count %d", c.CurveBuckets)
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if err := c.VM.Validate(); err != nil {
		return err
	}
	return c.Store.Validate()
}

// Result is one run's measurements. All times are simulated.
type Result struct {
	Nodes    int
	Requests int64
	Makespan time.Duration
	// Throughput is completed requests per simulated second.
	Throughput float64
	// MeanLatencyMS / P99LatencyMS summarize end-to-end request latency.
	MeanLatencyMS float64
	P99LatencyMS  float64
	// ServerIOMS is the mean server-side file I/O time per request.
	ServerIOMS float64
	// NetBusy is the fabric's total NIC busy time.
	NetBusy time.Duration

	// The fault-aware path (Deadline > 0) fills the availability story;
	// all zero on the fault-free fast path.
	//
	// TimedOut counts deadline expiries (one per lost attempt), Retried
	// counts the failover attempts issued after them, Recovered counts
	// requests that completed after at least one timeout, and Lost
	// counts requests abandoned after exhausting the retry budget.
	// Dropped is the fabric's lost-message count.
	TimedOut  int64
	Retried   int64
	Recovered int64
	Lost      int64
	Dropped   int64
	// Curve is the availability curve: completed-request throughput per
	// fixed-width time bucket over the makespan.
	Curve []CurvePoint
	// TimeToSteadyMS is how long after the first node kill the system
	// took to drain the disruption: the last recovered request's
	// completion, measured from the kill (zero without kills).
	TimeToSteadyMS float64
	// RebuildRows/RebuildMS/RebuildMembers record the servers' member
	// rebuilds when Config.RebuildMembers is set: total blocks copied
	// across servers, the slowest copy's duration, and one server's
	// per-member outcome (servers are identical replicas).
	RebuildRows    int64
	RebuildMS      float64
	RebuildMembers []fsim.RebuildMemberResult
}

// CurvePoint is one availability-curve bucket.
type CurvePoint struct {
	// EndMS is the bucket's end, in simulated milliseconds from the run
	// start.
	EndMS float64
	// Throughput is the bucket's completed requests per simulated
	// second.
	Throughput float64
}

// serverState is one replicated server: its store, managed runtime,
// worker pool, and fabric node index. Node layout: clients 0..Nodes-1,
// servers Nodes..Nodes+nServers-1.
type serverState struct {
	store      *fsim.FileStore
	rt         *vm.Runtime
	workerFree []time.Time
	node       int
}

// buildCluster provisions the replicated servers and the fabric.
func buildCluster(cfg Config) ([]*serverState, *netsim.Network, error) {
	nServers := cfg.Servers
	if nServers == 0 {
		nServers = 1
	}
	servers := make([]*serverState, nServers)
	for i := range servers {
		store, err := fsim.NewFileStore(cfg.Store)
		if err != nil {
			return nil, nil, err
		}
		if err := workload.Install(store, cfg.Corpus); err != nil {
			return nil, nil, err
		}
		rt, err := vm.New(cfg.VM, nil)
		if err != nil {
			return nil, nil, err
		}
		rt.RegisterBCL()
		servers[i] = &serverState{
			store:      store,
			rt:         rt,
			workerFree: make([]time.Time, cfg.ServerWorkers),
			node:       cfg.Nodes + i,
		}
	}
	net, err := netsim.New(cfg.Nodes+nServers, cfg.Net)
	if err != nil {
		return nil, nil, err
	}
	return servers, net, nil
}

// Run executes one distributed load and returns its result. With a
// Deadline configured it runs the fault-aware path (consistent-hash
// routing, failover, availability curve); otherwise the fault-free fast
// path below, byte-identical to the pre-fault benchmark.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Deadline > 0 {
		return runFaultAware(cfg)
	}
	servers, net, err := buildCluster(cfg)
	if err != nil {
		return Result{}, err
	}
	nServers := len(servers)

	t0 := time.Unix(0, 0)
	// Per-client next-issue times and remaining request counts.
	nextIssue := make([]time.Time, cfg.Nodes)
	remaining := make([]int, cfg.Nodes)
	issued := make([]int, cfg.Nodes)
	for i := range nextIssue {
		nextIssue[i] = t0
		remaining[i] = cfg.RequestsPerNode
	}

	var latencies metrics.Sample
	var serverIO metrics.Sample
	var completed int64
	end := t0

	for {
		// Pick the client with the earliest next-issue time.
		client := -1
		for i := range nextIssue {
			if remaining[i] == 0 {
				continue
			}
			if client == -1 || nextIssue[i].Before(nextIssue[client]) {
				client = i
			}
		}
		if client == -1 {
			break
		}
		issueTime := nextIssue[client]
		spec := cfg.Corpus[(client+issued[client])%len(cfg.Corpus)]
		srv := servers[client%nServers]

		// Request message crosses the fabric.
		reqArrive, err := net.Send(issueTime, client, srv.node, cfg.RequestBytes)
		if err != nil {
			return Result{}, err
		}
		// Earliest-free worker on the client's server picks it up.
		w := 0
		for i := range srv.workerFree {
			if srv.workerFree[i].Before(srv.workerFree[w]) {
				w = i
			}
		}
		start := reqArrive
		if srv.workerFree[w].After(start) {
			start = srv.workerFree[w]
		}
		// Server-side file I/O through the managed runtime.
		ioTime, err := serveFile(srv.rt, srv.store, spec.Name)
		if err != nil {
			return Result{}, err
		}
		ioDone := start.Add(ioTime)
		srv.workerFree[w] = ioDone
		serverIO.AddDuration(ioTime)

		// Response crosses back; the server NIC serializes responses.
		respArrive, err := net.Send(ioDone, srv.node, client, spec.Size)
		if err != nil {
			return Result{}, err
		}
		latencies.AddDuration(respArrive.Sub(issueTime))
		completed++
		if respArrive.After(end) {
			end = respArrive
		}
		nextIssue[client] = respArrive
		remaining[client]--
		issued[client]++
	}

	makespan := end.Sub(t0)
	res := Result{
		Nodes:         cfg.Nodes,
		Requests:      completed,
		Makespan:      makespan,
		MeanLatencyMS: latencies.Mean(),
		P99LatencyMS:  latencies.Quantile(0.99),
		ServerIOMS:    serverIO.Mean(),
		NetBusy:       net.Stats().BusyTime,
	}
	if makespan > 0 {
		res.Throughput = float64(completed) / makespan.Seconds()
	}
	return res, nil
}

// serveFile performs the server's doGet path: open the managed stream,
// read everything, close — returning the charged duration.
func serveFile(rt *vm.Runtime, store fsim.Store, name string) (time.Duration, error) {
	stream, openDur, err := vm.OpenFileStream(rt, store, name)
	if err != nil {
		return 0, err
	}
	_, readDur, err := stream.ReadAll()
	closeDur, _ := stream.Close()
	if err != nil {
		return 0, err
	}
	return openDur + readDur + closeDur, nil
}

// NodeSweep is the default client-count sweep.
var NodeSweep = []int{1, 2, 4, 8, 16, 32}

// Sweep runs the benchmark across node counts (sorted, deduplicated) and
// returns per-count results.
func Sweep(cfg Config, nodes []int) ([]Result, error) {
	counts := append([]int(nil), nodes...)
	sort.Ints(counts)
	var out []Result
	for i, n := range counts {
		if i > 0 && counts[i-1] == n {
			continue
		}
		c := cfg
		c.Nodes = n
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("distbench: %d nodes: %w", n, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Table renders sweep results as a text table.
func Table(results []Result) *metrics.Table {
	tb := metrics.NewTable(
		"Distributed load: throughput and latency vs client nodes",
		"Nodes", "Requests", "Throughput (req/s)", "Mean latency (ms)",
		"P99 latency (ms)", "Server IO (ms)")
	for _, r := range results {
		tb.AddRow(r.Nodes, r.Requests, r.Throughput, r.MeanLatencyMS, r.P99LatencyMS, r.ServerIOMS)
	}
	return tb
}

// Figure renders the throughput curve.
func Figure(results []Result) *metrics.Figure {
	labels := make([]string, len(results))
	values := make([]float64, len(results))
	for i, r := range results {
		labels[i] = fmt.Sprintf("%d", r.Nodes)
		values[i] = r.Throughput
	}
	fig := metrics.NewFigure("Distributed throughput vs client nodes",
		"client nodes", "requests/second")
	fig.Add(metrics.NewSeries("throughput", labels, values))
	return fig
}
