// Fault-aware distributed serving: consistent-hash routing, RPC
// deadlines, failover with bounded retry + simulated-time backoff, and
// the availability curve. This is the node-level counterpart of PR 9's
// device faults — the fabric loses whole servers (netsim.FaultPlan) and
// the client tier routes around them, reporting how deep the throughput
// dipped and how long the disruption took to drain.
package distbench

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// ringVnodes is the virtual-point count per server on the consistent-
// hash ring: enough to spread keys evenly at small server counts
// without making ring construction measurable.
const ringVnodes = 64

// defaultCurveBuckets is the availability curve's resolution.
const defaultCurveBuckets = 20

// ring is a consistent-hash ring over server indices. Requests route by
// file name, so a file's requests land on the same replica (cache
// affinity) and a dead server's keys redistribute across the survivors
// instead of sliding wholesale onto one neighbour.
type ring struct {
	hashes  []uint64
	servers []int
}

func newRing(nServers int) *ring {
	r := &ring{
		hashes:  make([]uint64, 0, nServers*ringVnodes),
		servers: make([]int, 0, nServers*ringVnodes),
	}
	type point struct {
		h uint64
		s int
	}
	points := make([]point, 0, nServers*ringVnodes)
	for s := 0; s < nServers; s++ {
		for v := 0; v < ringVnodes; v++ {
			points = append(points, point{h: hashKey(fmt.Sprintf("server%d#%d", s, v)), s: s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].s < points[j].s
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.servers = append(r.servers, p.s)
	}
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// prefs returns the key's failover order: every distinct server, walked
// clockwise from the key's ring position. The first entry is the
// primary; each retry moves one step down the list.
func (r *ring) prefs(key string, buf []int) []int {
	buf = buf[:0]
	if len(r.hashes) == 0 {
		return buf
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := 0
	for i := 0; i < len(r.hashes) && seen < cap(buf); i++ {
		s := r.servers[(start+i)%len(r.hashes)]
		dup := false
		for _, have := range buf {
			if have == s {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, s)
			seen++
		}
	}
	return buf
}

// nodeLayout resolves the symbolic fault targets against the run's node
// numbering: clients 0..Nodes-1, servers Nodes..Nodes+nServers-1.
func nodeLayout(nodes, nServers int) func(target string) (int, error) {
	return func(target string) (int, error) {
		for _, p := range []struct {
			prefix string
			base   int
			limit  int
		}{
			{"client", 0, nodes},
			{"server", nodes, nServers},
			{"node", 0, nodes + nServers},
			{"link", 0, nodes + nServers},
		} {
			idxStr, ok := strings.CutPrefix(target, p.prefix)
			if !ok {
				continue
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil {
				return 0, fmt.Errorf("bad %s index %q", p.prefix, idxStr)
			}
			if idx < 0 || idx >= p.limit {
				return 0, fmt.Errorf("%s%d outside 0..%d", p.prefix, idx, p.limit-1)
			}
			return p.base + idx, nil
		}
		return 0, fmt.Errorf("unknown target (want client<i>, server<i>, node<i>, link<i>, or a node index)")
	}
}

// runFaultAware is Run's deadline/failover path. The event loop keeps
// the fault-free path's shape — one goroutine, the earliest next-issue
// client steps — so the run is deterministic by construction: every
// timing is a pure function of the configuration.
func runFaultAware(cfg Config) (Result, error) {
	servers, net, err := buildCluster(cfg)
	if err != nil {
		return Result{}, err
	}
	nServers := len(servers)
	t0 := time.Unix(0, 0)

	// Resolve and apply the fault plan against this run's layout. The
	// plan is cloned first: Resolve binds node indices, and the same
	// plan value sweeps across runs with different node counts.
	var firstKill time.Time
	if cfg.NetFaults != nil {
		plan := &netsim.FaultPlan{Faults: append([]netsim.Fault(nil), cfg.NetFaults.Faults...)}
		if err := plan.Resolve(nodeLayout(cfg.Nodes, nServers)); err != nil {
			return Result{}, err
		}
		if err := net.ApplyFaultPlan(t0, plan); err != nil {
			return Result{}, err
		}
		for _, f := range plan.Faults {
			if f.Kind != netsim.FaultKill {
				continue
			}
			if at := t0.Add(f.At); firstKill.IsZero() || at.Before(firstKill) {
				firstKill = at
			}
		}
	}

	res := Result{Nodes: cfg.Nodes}

	// Server-side member rebuilds begin before any request is served:
	// every copy starts at the virtual epoch on its own lane, and the
	// foreground requests then contend with the rebuild streams for the
	// survivors' busy horizons — concurrency in simulated time, driven
	// in a fixed order on the wall clock.
	var rebuilds []*fsim.RebuildSet
	if len(cfg.RebuildMembers) > 0 {
		for _, srv := range servers {
			rs, err := srv.store.BeginRebuilds(cfg.RebuildMembers)
			if err != nil {
				return Result{}, err
			}
			rs.Run()
			rebuilds = append(rebuilds, rs)
		}
	}

	rg := newRing(nServers)
	nextIssue := make([]time.Time, cfg.Nodes)
	remaining := make([]int, cfg.Nodes)
	issued := make([]int, cfg.Nodes)
	suspected := make([]map[int]bool, cfg.Nodes)
	for i := range nextIssue {
		nextIssue[i] = t0
		remaining[i] = cfg.RequestsPerNode
		suspected[i] = make(map[int]bool)
	}

	var latencies, serverIO metrics.Sample
	var completions []time.Time
	var lastRecovered time.Time
	prefBuf := make([]int, 0, nServers)
	tried := make(map[int]bool, nServers)
	end := t0

	for {
		client := -1
		for i := range nextIssue {
			if remaining[i] == 0 {
				continue
			}
			if client == -1 || nextIssue[i].Before(nextIssue[client]) {
				client = i
			}
		}
		if client == -1 {
			break
		}
		issue0 := nextIssue[client]
		spec := cfg.Corpus[(client+issued[client])%len(cfg.Corpus)]
		prefBuf = rg.prefs(spec.Name, prefBuf[:cap(prefBuf)])
		for k := range tried {
			delete(tried, k)
		}

		t := issue0
		attempt := 0
		timedOut := false
		var completion time.Time
		for {
			srv := servers[pickServer(prefBuf, suspected[client], tried, attempt)]
			tried[srv.node-cfg.Nodes] = true

			respArrive, ok, err := attemptRequest(cfg, net, srv, client, spec.Name, spec.Size, t, &serverIO)
			if err != nil {
				return Result{}, err
			}
			if ok {
				latencies.AddDuration(respArrive.Sub(issue0))
				completions = append(completions, respArrive)
				completion = respArrive
				res.Requests++
				if timedOut {
					res.Recovered++
					if respArrive.After(lastRecovered) {
						lastRecovered = respArrive
					}
				}
				break
			}
			// The attempt's response never arrived: the deadline fires,
			// the replica joins the client's suspect set, and the client
			// backs off before the next ring successor.
			res.TimedOut++
			timedOut = true
			suspected[client][srv.node-cfg.Nodes] = true
			expiry := t.Add(cfg.Deadline)
			if attempt >= cfg.Retry.Max {
				res.Lost++
				completion = expiry
				break
			}
			res.Retried++
			t = expiry.Add(cfg.Retry.Base << attempt)
			attempt++
		}

		if completion.After(end) {
			end = completion
		}
		nextIssue[client] = completion
		remaining[client]--
		issued[client]++
	}

	if len(rebuilds) > 0 {
		for i, rs := range rebuilds {
			if err := rs.Finish(); err != nil {
				return Result{}, err
			}
			res.RebuildRows += rs.Rows()
			if ms := float64(rs.Elapsed()) / float64(time.Millisecond); ms > res.RebuildMS {
				res.RebuildMS = ms
			}
			if i == 0 {
				res.RebuildMembers = rs.Members()
			}
		}
	}

	makespan := end.Sub(t0)
	res.Makespan = makespan
	res.MeanLatencyMS = latencies.Mean()
	res.P99LatencyMS = latencies.Quantile(0.99)
	res.ServerIOMS = serverIO.Mean()
	res.NetBusy = net.Stats().BusyTime
	res.Dropped = net.Stats().Dropped
	if makespan > 0 {
		res.Throughput = float64(res.Requests) / makespan.Seconds()
	}
	res.Curve = availabilityCurve(t0, end, completions, cfg.CurveBuckets)
	if !firstKill.IsZero() && !lastRecovered.IsZero() && lastRecovered.After(firstKill) {
		res.TimeToSteadyMS = float64(lastRecovered.Sub(firstKill)) / float64(time.Millisecond)
	}
	return res, nil
}

// attemptRequest runs one request attempt end to end and reports
// whether the response arrived. A lost request or response leaves the
// client waiting for its deadline; a server that is dead when the
// request would start service never serves it.
func attemptRequest(cfg Config, net *netsim.Network, srv *serverState, client int, name string, size int64, t time.Time, serverIO *metrics.Sample) (time.Time, bool, error) {
	reqArrive, lost, err := net.SendLossy(t, client, srv.node, cfg.RequestBytes)
	if err != nil {
		return time.Time{}, false, err
	}
	if lost {
		return time.Time{}, false, nil
	}
	w := 0
	for i := range srv.workerFree {
		if srv.workerFree[i].Before(srv.workerFree[w]) {
			w = i
		}
	}
	start := reqArrive
	if srv.workerFree[w].After(start) {
		start = srv.workerFree[w]
	}
	if net.NodeDead(start, srv.node) {
		// The process died before a worker picked the request up.
		return time.Time{}, false, nil
	}
	ioTime, err := serveFile(srv.rt, srv.store, name)
	if err != nil {
		return time.Time{}, false, err
	}
	ioDone := start.Add(ioTime)
	srv.workerFree[w] = ioDone
	serverIO.AddDuration(ioTime)
	respArrive, lost, err := net.SendLossy(ioDone, srv.node, client, size)
	if err != nil {
		return time.Time{}, false, err
	}
	if lost {
		return time.Time{}, false, nil
	}
	return respArrive, true, nil
}

// pickServer chooses the attempt's replica: the first preference
// neither tried this request nor suspected by the client, else the
// first untried one (suspicion is a hint, not a ban), else cycle the
// preference list.
func pickServer(prefs []int, suspected, tried map[int]bool, attempt int) int {
	for _, s := range prefs {
		if !tried[s] && !suspected[s] {
			return s
		}
	}
	for _, s := range prefs {
		if !tried[s] {
			return s
		}
	}
	return prefs[attempt%len(prefs)]
}

// availabilityCurve buckets completion times into a fixed-resolution
// throughput curve over [t0, end].
func availabilityCurve(t0, end time.Time, completions []time.Time, buckets int) []CurvePoint {
	if buckets == 0 {
		buckets = defaultCurveBuckets
	}
	makespan := end.Sub(t0)
	if makespan <= 0 || len(completions) == 0 {
		return nil
	}
	counts := make([]int64, buckets)
	for _, c := range completions {
		i := int(int64(c.Sub(t0)) * int64(buckets) / int64(makespan))
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	width := makespan / time.Duration(buckets)
	curve := make([]CurvePoint, buckets)
	for i, n := range counts {
		curve[i] = CurvePoint{
			EndMS:      float64(makespan) * float64(i+1) / float64(buckets) / float64(time.Millisecond),
			Throughput: float64(n) / width.Seconds(),
		}
	}
	return curve
}

// FormatCurve renders the availability curve as fixed-width text rows —
// one line per bucket with a proportional bar — shared by the example
// and the distbench command.
func FormatCurve(r Result) string {
	if len(r.Curve) == 0 {
		return "(no availability curve: fault-free fast path)\n"
	}
	peak := 0.0
	for _, p := range r.Curve {
		if p.Throughput > peak {
			peak = p.Throughput
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "availability curve (%d buckets over %.2f ms):\n",
		len(r.Curve), float64(r.Makespan)/float64(time.Millisecond))
	for _, p := range r.Curve {
		bar := 0
		if peak > 0 {
			bar = int(p.Throughput / peak * 40)
		}
		fmt.Fprintf(&b, "  t<=%9.2fms %9.0f req/s |%s\n", p.EndMS, p.Throughput, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&b, "  timed out %d, retried %d, recovered %d, lost %d, dropped %d",
		r.TimedOut, r.Retried, r.Recovered, r.Lost, r.Dropped)
	if r.TimeToSteadyMS > 0 {
		fmt.Fprintf(&b, ", time to steady state %.2f ms", r.TimeToSteadyMS)
	}
	b.WriteByte('\n')
	return b.String()
}
