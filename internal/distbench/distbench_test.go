package distbench

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/simdisk"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RequestsPerNode = 16
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero requests", func(c *Config) { c.RequestsPerNode = 0 }},
		{"zero workers", func(c *Config) { c.ServerWorkers = 0 }},
		{"negative request bytes", func(c *Config) { c.RequestBytes = -1 }},
		{"empty corpus", func(c *Config) { c.Corpus = nil }},
		{"bad net", func(c *Config) { c.Net.Bandwidth = 0 }},
		{"bad store", func(c *Config) { c.Store.Disks = 0 }},
		{"bad vm", func(c *Config) { c.VM.JITBaseCost = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunCompletesAllRequests(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Nodes * cfg.RequestsPerNode)
	if res.Requests != want {
		t.Fatalf("completed %d requests, want %d", res.Requests, want)
	}
	if res.Makespan <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MeanLatencyMS <= 0 || res.P99LatencyMS < res.MeanLatencyMS {
		t.Fatalf("latency stats wrong: mean %v p99 %v", res.MeanLatencyMS, res.P99LatencyMS)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestThroughputScalesThenSaturates(t *testing.T) {
	cfg := testConfig()
	results, err := Sweep(cfg, []int{1, 2, 4, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	// More clients must never reduce total completed requests, and
	// early scaling must be visible.
	if results[1].Throughput <= results[0].Throughput {
		t.Fatalf("2 nodes (%f req/s) not faster than 1 (%f req/s)",
			results[1].Throughput, results[0].Throughput)
	}
	// Saturation: the last doubling gains far less than the first.
	gainEarly := results[1].Throughput / results[0].Throughput
	gainLate := results[4].Throughput / results[3].Throughput
	if gainLate >= gainEarly {
		t.Fatalf("no saturation: early gain %.2fx, late gain %.2fx", gainEarly, gainLate)
	}
	// Latency must grow under contention.
	if results[4].MeanLatencyMS <= results[0].MeanLatencyMS {
		t.Fatalf("latency did not grow with load: %v vs %v",
			results[4].MeanLatencyMS, results[0].MeanLatencyMS)
	}
}

func TestWANSlowerThanLAN(t *testing.T) {
	lan := testConfig()
	wan := testConfig()
	wan.Net = netsim.WANParams()
	lanRes, err := Run(lan)
	if err != nil {
		t.Fatal(err)
	}
	wanRes, err := Run(wan)
	if err != nil {
		t.Fatal(err)
	}
	if wanRes.MeanLatencyMS <= lanRes.MeanLatencyMS {
		t.Fatalf("WAN latency %v not above LAN %v", wanRes.MeanLatencyMS, lanRes.MeanLatencyMS)
	}
	if wanRes.Throughput >= lanRes.Throughput {
		t.Fatalf("WAN throughput %v not below LAN %v", wanRes.Throughput, lanRes.Throughput)
	}
}

func TestMoreWorkersHelpUnderLoad(t *testing.T) {
	// On the default LAN the server NIC is the bottleneck and the worker
	// count is irrelevant; make the run I/O-bound (mechanical disk, tiny
	// cache) so worker parallelism matters.
	ioBound := func() Config {
		cfg := testConfig()
		cfg.Nodes = 16
		cfg.Store.Disk = simdisk.DefaultParams()
		cfg.Store.Cache.NumPages = 16
		return cfg
	}
	few := ioBound()
	few.ServerWorkers = 1
	many := ioBound()
	many.ServerWorkers = 8
	fewRes, err := Run(few)
	if err != nil {
		t.Fatal(err)
	}
	manyRes, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if manyRes.Throughput <= fewRes.Throughput {
		t.Fatalf("8 workers (%f req/s) not faster than 1 (%f req/s)",
			manyRes.Throughput, fewRes.Throughput)
	}
}

func TestReplicatedServersScalePastSaturation(t *testing.T) {
	// One server saturates around its NIC; two replicated servers must
	// push total throughput well beyond it at high client counts.
	single := testConfig()
	single.Nodes = 32
	single.Servers = 1
	double := testConfig()
	double.Nodes = 32
	double.Servers = 2
	sRes, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	dRes, err := Run(double)
	if err != nil {
		t.Fatal(err)
	}
	if dRes.Throughput < 1.5*sRes.Throughput {
		t.Fatalf("2 servers (%f req/s) not ≥1.5x of 1 server (%f req/s)",
			dRes.Throughput, sRes.Throughput)
	}
}

func TestNegativeServersRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Servers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative server count accepted")
	}
}

func TestSweepDeduplicatesAndSorts(t *testing.T) {
	results, err := Sweep(testConfig(), []int{4, 1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 deduplicated", len(results))
	}
	if results[0].Nodes != 1 || results[1].Nodes != 2 || results[2].Nodes != 4 {
		t.Fatalf("not sorted: %v", results)
	}
}

func TestTableAndFigureRender(t *testing.T) {
	results, err := Sweep(testConfig(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := Table(results).Render()
	if !strings.Contains(tb, "Throughput") || !strings.Contains(tb, "Nodes") {
		t.Fatalf("table render:\n%s", tb)
	}
	fig := Figure(results).RenderLines(40, 8)
	if !strings.Contains(fig, "throughput") {
		t.Fatalf("figure render:\n%s", fig)
	}
}
