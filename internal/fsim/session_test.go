package fsim

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/simdisk"
)

// writebackConfig enables background write-back on the default store.
func writebackConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache.Shards = 8
	cfg.Cache.WritebackThreshold = 8
	cfg.Cache.WritebackPolicy = simdisk.SCAN
	return cfg
}

func TestSessionLanesAdvanceIndependently(t *testing.T) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.CreateSized("big", 64<<20); err != nil {
		t.Fatal(err)
	}
	afterCreate := s.Clock().Now()

	a := s.NewSession()
	b := s.NewSession()
	fa, _, err := a.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	fb, _, err := b.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	for i := 0; i < 8; i++ {
		if _, _, err := fa.Read(buf); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	if _, _, err := fb.Read(buf[:4096]); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	fa.Close()
	fb.Close()

	ea := a.Clock().Now().Sub(afterCreate)
	eb := b.Clock().Now().Sub(afterCreate)
	if ea <= eb {
		t.Fatalf("8 MB lane (%v) not slower than 4 KB lane (%v)", ea, eb)
	}
	// The default lane did not move: sessions never charge the store clock.
	if got := s.Clock().Now(); !got.Equal(afterCreate) {
		t.Fatalf("default lane moved from %v to %v", afterCreate, got)
	}
	// The merged timeline is the furthest lane, not the sum.
	if got := s.Timeline().MaxNow(); !got.Equal(a.Clock().Now()) {
		t.Fatalf("timeline MaxNow %v != longest lane %v", got, a.Clock().Now())
	}
}

// TestSessionsConcurrentUnderRace drives many sessions in parallel over
// one store: the shared namespace, cache, and frame pool under -race.
func TestSessionsConcurrentUnderRace(t *testing.T) {
	s := MustNewFileStore(writebackConfig())
	defer s.Close()
	if _, err := s.CreateSized("shared", 32<<20); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			f, _, err := sess.Open("shared")
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 64<<10)
			base := int64(w) * (4 << 20)
			for i := 0; i < 32; i++ {
				if _, _, err := f.SeekTo(base+int64(i)*(64<<10), io.SeekStart); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := f.Read(buf); err != nil && err != io.EOF {
					t.Error(err)
					return
				}
				if i%4 == 3 {
					if _, _, err := f.SeekTo(base, io.SeekStart); err != nil {
						t.Error(err)
						return
					}
					if _, _, err := f.Write(buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if _, err := f.Close(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	done, _ := s.Settle()
	if got := s.Cache().DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived Settle", got)
	}
	if done.Before(s.Timeline().Start()) {
		t.Fatal("settle time precedes the timeline start")
	}
	if s.TotalDiskStats().Ops() == 0 {
		t.Fatal("no disk traffic recorded across session views")
	}
}

// TestAsyncCloseUnderWriteback pins the close semantics split: without
// write-back a dirty close pays for its flush; with write-back it pays
// only CloseCost and the flush lands on the background lanes.
func TestAsyncCloseUnderWriteback(t *testing.T) {
	dirtyClose := func(cfg Config) (time.Duration, *FileStore) {
		s := MustNewFileStore(cfg)
		if _, err := s.CreateSized("f", 8<<20); err != nil {
			t.Fatal(err)
		}
		f, _, err := s.Open("f")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Write(make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		d, err := f.Close()
		if err != nil {
			t.Fatal(err)
		}
		return d, s
	}

	syncDur, _ := dirtyClose(DefaultConfig())
	asyncDur, s := dirtyClose(writebackConfig())
	defer s.Close()
	if asyncDur != s.cfg.CloseCost {
		t.Fatalf("async close cost %v, want bare CloseCost %v", asyncDur, s.cfg.CloseCost)
	}
	if syncDur <= asyncDur {
		t.Fatalf("sync close (%v) not slower than async close (%v)", syncDur, asyncDur)
	}
	// The flush still happens — on the background lanes.
	deadline := time.Now().Add(5 * time.Second)
	for s.Cache().Stats().WritebackPages == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flushers never picked up the closed file's pages")
		}
		time.Sleep(time.Millisecond)
	}
	s.Settle()
	if got := s.Cache().DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived", got)
	}
	if s.Cache().WritebackHorizon().IsZero() {
		t.Fatal("write-back consumed no simulated time")
	}
}

// TestSettleWithoutWritebackFlushes: the settle path on a plain store is
// the deterministic elevator flush, charged to foreground time.
func TestSettleWithoutWritebackFlushes(t *testing.T) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.CreateSized("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Write(make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// Leave the handle open so close-flush has not run.
	if s.Cache().DirtyPages() == 0 {
		t.Fatal("setup produced no dirty pages")
	}
	_, d := s.Settle()
	if d <= 0 {
		t.Fatal("settle flush charged no time")
	}
	if got := s.Cache().DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived Settle", got)
	}
}

// TestNamespaceConcurrentDirectoryOps hammers Create/Open/Remove/Names
// from many goroutines — the sharded-namespace satellite, under -race.
func TestNamespaceConcurrentDirectoryOps(t *testing.T) {
	s := MustNewFileStore(DefaultConfig())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			for i := 0; i < 50; i++ {
				name := string(rune('a'+w)) + "-file"
				if _, err := sess.Create(name, []byte("contents")); err != nil {
					t.Error(err)
					return
				}
				if !sess.Exists(name) {
					t.Errorf("created %s does not exist", name)
					return
				}
				f, _, err := sess.Open(name)
				if err != nil {
					t.Error(err)
					return
				}
				f.Close()
				_ = sess.Names()
				if i%10 == 9 {
					if _, err := sess.Remove(name); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every worker left either zero or one file behind (last iteration
	// removed it); the namespace is consistent and sorted.
	names := s.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}
