package fsim

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// DiskQueueMode selects how concurrent sessions' disk requests are
// timed against the simulated device.
type DiskQueueMode int

const (
	// DiskQueuePrivate gives every session its own disk-timing view: lanes
	// never queue behind each other and the max-over-lanes merge is the
	// only coupling. This is the original model and the default; its
	// timing is bit-identical to the pre-shared-queue trees.
	DiskQueuePrivate DiskQueueMode = iota
	// DiskQueueShared routes every session's requests through one
	// sharedq.Queue over a common array: lanes contend for the head, the
	// scheduling policy (Config.Cache.WritebackPolicy) orders the queue,
	// and queueing delay appears in foreground latencies.
	DiskQueueShared
)

// String names the mode as the config files spell it.
func (m DiskQueueMode) String() string {
	switch m {
	case DiskQueuePrivate:
		return "private"
	case DiskQueueShared:
		return "shared"
	default:
		return fmt.Sprintf("disk-queue(%d)", int(m))
	}
}

// Valid reports whether m is a known mode.
func (m DiskQueueMode) Valid() bool {
	return m == DiskQueuePrivate || m == DiskQueueShared
}

// ParseDiskQueue maps a case-insensitive mode name to its DiskQueueMode,
// for flags and config files. The empty string is the default (private).
func ParseDiskQueue(s string) (DiskQueueMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "private":
		return DiskQueuePrivate, nil
	case "shared":
		return DiskQueueShared, nil
	default:
		return DiskQueuePrivate, fmt.Errorf("fsim: unknown disk-queue mode %q (want private or shared)", s)
	}
}

// defaultDiskQueue is the process-wide mode DefaultConfig bakes into new
// configurations; the core options registry sets it once at startup,
// before any store is built, mirroring buffercache's defaults.
var defaultDiskQueue atomic.Int32

// SetDefaultDiskQueue sets the disk-queue mode DefaultConfig returns.
func SetDefaultDiskQueue(m DiskQueueMode) error {
	if !m.Valid() {
		return fmt.Errorf("fsim: invalid disk-queue mode %d", int(m))
	}
	defaultDiskQueue.Store(int32(m))
	return nil
}

// DefaultDiskQueue returns the process-wide disk-queue mode.
func DefaultDiskQueue() DiskQueueMode {
	return DiskQueueMode(defaultDiskQueue.Load())
}
