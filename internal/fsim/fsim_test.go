package fsim

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func newStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := NewFileStore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCreate(t *testing.T, s Store, name string, data []byte) {
	t.Helper()
	if _, err := s.Create(name, data); err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative open", func(c *Config) { c.OpenCost = -1 }},
		{"negative warm", func(c *Config) { c.WarmPagesOnOpen = -1 }},
		{"zero disks", func(c *Config) { c.Disks = 0 }},
		{"zero stripe", func(c *Config) { c.StripeUnit = 0 }},
		{"bad cache", func(c *Config) { c.Cache.PageSize = 0 }},
		{"bad disk", func(c *Config) { c.Disk.RPM = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestCreateOpenReadRoundTrip(t *testing.T) {
	s := newStore(t)
	want := []byte("the quick brown fox jumps over the lazy dog")
	mustCreate(t, s, "a.txt", want)
	f, openDur, err := s.Open("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if openDur <= 0 {
		t.Fatal("open must take simulated time")
	}
	got := make([]byte, len(want))
	n, readDur, err := f.Read(got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("read %d bytes %q, want %q", n, got, want)
	}
	if readDur <= 0 {
		t.Fatal("read must take simulated time")
	}
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	s := newStore(t)
	if _, _, err := s.Open("ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestReadAtEOF(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "tiny", []byte("ab"))
	f, _, _ := s.Open("tiny")
	buf := make([]byte, 10)
	n, _, err := f.Read(buf)
	if n != 2 || err != io.EOF {
		t.Fatalf("short read n=%d err=%v, want 2, EOF", n, err)
	}
	n, _, err = f.Read(buf)
	if n != 0 || err != io.EOF {
		t.Fatalf("read past end n=%d err=%v, want 0, EOF", n, err)
	}
}

func TestWriteExtendsFile(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "f", []byte("hello"))
	f, _, _ := s.Open("f")
	if _, _, err := f.SeekTo(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 11 {
		t.Fatalf("Size = %d, want 11", f.Size())
	}
	f.SeekTo(0, io.SeekStart)
	got := make([]byte, 11)
	f.Read(got)
	if string(got) != "hello world" {
		t.Fatalf("contents = %q", got)
	}
	f.Close()
}

func TestWriteGrowthRelocatesExtent(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "grow", make([]byte, 100))
	f, _, _ := s.Open("grow")
	f.SeekTo(0, io.SeekEnd)
	big := make([]byte, 1<<20) // far beyond the initial extent
	for i := range big {
		big[i] = byte(i)
	}
	if _, _, err := f.Write(big); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100+1<<20 {
		t.Fatalf("Size = %d", f.Size())
	}
	// Contents must survive relocation.
	f.SeekTo(100, io.SeekStart)
	got := make([]byte, 4)
	f.Read(got)
	if !bytes.Equal(got, big[:4]) {
		t.Fatalf("relocated contents wrong: %v", got)
	}
	f.Close()
}

func TestSeekWhence(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "s", make([]byte, 100))
	f, _, _ := s.Open("s")
	defer f.Close()
	if pos, _, _ := f.SeekTo(10, io.SeekStart); pos != 10 {
		t.Fatalf("SeekStart pos = %d", pos)
	}
	if pos, _, _ := f.SeekTo(5, io.SeekCurrent); pos != 15 {
		t.Fatalf("SeekCurrent pos = %d", pos)
	}
	if pos, _, _ := f.SeekTo(-10, io.SeekEnd); pos != 90 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	if _, _, err := f.SeekTo(-1000, io.SeekCurrent); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, _, err := f.SeekTo(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestColdReadSlowerThanWarm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmPagesOnOpen = 0 // isolate the effect
	s := MustNewFileStore(cfg)
	mustCreate(t, s, "data", make([]byte, 1<<20))
	s.Cache().Invalidate()
	f, _, _ := s.Open("data")
	defer f.Close()
	buf := make([]byte, 64<<10)
	_, cold, _ := f.Read(buf)
	f.SeekTo(0, io.SeekStart)
	_, warm, _ := f.Read(buf)
	if warm >= cold {
		t.Fatalf("warm %v not faster than cold %v", warm, cold)
	}
}

func TestCloseSlowerThanOpenAfterWrites(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "w", make([]byte, 4096))
	f, openDur, _ := s.Open("w")
	f.Write(make([]byte, 64<<10))
	closeDur, err := f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if closeDur <= openDur {
		t.Fatalf("close %v not slower than open %v after writes", closeDur, openDur)
	}
}

func TestCloseSlowerThanOpenReadOnly(t *testing.T) {
	// §3.4: close is slower than open even for read-only traces.
	s := newStore(t)
	mustCreate(t, s, "r", make([]byte, 4096))
	f, openDur, _ := s.Open("r")
	buf := make([]byte, 4096)
	f.Read(buf)
	closeDur, _ := f.Close()
	if closeDur <= openDur {
		t.Fatalf("read-only close %v not slower than open %v", closeDur, openDur)
	}
}

func TestDoubleCloseFails(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "c", []byte("x"))
	f, _, _ := s.Open("c")
	f.Close()
	if _, err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close err = %v, want ErrClosed", err)
	}
	if _, _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
	if _, _, err := f.Write([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	if _, _, err := f.SeekTo(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatalf("seek after close err = %v", err)
	}
}

func TestOpenWarmsLeadingPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmPagesOnOpen = 2
	s := MustNewFileStore(cfg)
	mustCreate(t, s, "warm", make([]byte, 1<<20))
	s.Cache().Invalidate()
	f, _, _ := s.Open("warm")
	defer f.Close()
	// First-page read should be a hit thanks to the open-time warm-up.
	buf := make([]byte, 4096)
	_, dur, _ := f.Read(buf)
	if dur > 100*time.Microsecond {
		t.Fatalf("read of warmed page took %v, expected warm hit", dur)
	}
}

func TestSeekToColdPageCostsMore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmPagesOnOpen = 0
	s := MustNewFileStore(cfg)
	mustCreate(t, s, "seeks", make([]byte, 8<<20))
	s.Cache().Invalidate()
	f, _, _ := s.Open("seeks")
	defer f.Close()
	_, coldSeek, _ := f.SeekTo(4<<20, io.SeekStart)
	// The background warm-up makes the page resident; a re-seek is cheap.
	_, warmSeek, _ := f.SeekTo(4<<20, io.SeekStart)
	if coldSeek <= warmSeek {
		t.Fatalf("cold seek %v not slower than warm seek %v", coldSeek, warmSeek)
	}
}

func TestNamesSorted(t *testing.T) {
	s := newStore(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		mustCreate(t, s, n, nil)
	}
	names := s.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestExists(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "yes", nil)
	if !s.Exists("yes") || s.Exists("no") {
		t.Fatal("Exists wrong")
	}
}

func TestCreateTruncatesInPlace(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "t", []byte("long contents here"))
	mustCreate(t, s, "t", []byte("hi"))
	f, _, _ := s.Open("t")
	defer f.Close()
	if f.Size() != 2 {
		t.Fatalf("Size after truncate = %d, want 2", f.Size())
	}
}

// Property: write-then-read at random offsets returns exactly the written
// bytes, for any operation interleaving on one file.
func TestWriteReadConsistencyProperty(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "p", make([]byte, 1<<16))
	shadow := make([]byte, 1<<16)
	f, _, _ := s.Open("p")
	defer f.Close()
	op := func(off uint16, val byte, length uint8) bool {
		data := bytes.Repeat([]byte{val}, int(length))
		end := int(off) + len(data)
		if end > len(shadow) {
			end = len(shadow)
			data = data[:end-int(off)]
		}
		if _, _, err := f.SeekTo(int64(off), io.SeekStart); err != nil {
			return false
		}
		if _, _, err := f.Write(data); err != nil {
			return false
		}
		copy(shadow[off:end], data)
		if _, _, err := f.SeekTo(int64(off), io.SeekStart); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if len(got) > 0 {
			if _, _, err := f.Read(got); err != nil && err != io.EOF {
				return false
			}
		}
		return bytes.Equal(got, shadow[off:end])
	}
	if err := quick.Check(op, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockAdvancesWithOps(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, "clk", make([]byte, 1<<20))
	before := s.Clock().Now()
	f, _, _ := s.Open("clk")
	buf := make([]byte, 1<<20)
	f.Read(buf)
	f.Close()
	if !s.Clock().Now().After(before) {
		t.Fatal("virtual clock did not advance")
	}
}
