// Package fsim provides the file-store substrate the benchmarks issue
// their I/O against. Two implementations share one interface:
//
//   - FileStore: a simulated filesystem over buffercache + simdisk. File
//     contents are real bytes held in memory (so benchmarks that round-trip
//     data, like the web server, behave correctly) while every operation's
//     latency is simulated deterministically.
//   - OSStore (os.go): a passthrough to the host filesystem timed with the
//     real clock, for runs that want genuine OS I/O.
//
// The operation set matches the paper's trace format exactly: Open, Close,
// Read, Write, Seek (§3.2).
package fsim

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/buffercache"
	"repro/internal/clock"
	"repro/internal/simdisk"
)

// Store is a file system that reports a simulated-or-real duration for
// every operation, mirroring how the paper times each I/O call.
type Store interface {
	// Create makes (or truncates) a file filled with len(data) bytes.
	Create(name string, data []byte) (time.Duration, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, time.Duration, error)
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) (time.Duration, error)
	// Exists reports whether the file exists.
	Exists(name string) bool
	// Names returns the sorted names of all files.
	Names() []string
}

// File is an open file handle. Operations report their duration alongside
// the usual results. Implementations are safe for concurrent use of
// distinct files; a single File must not be shared across goroutines.
type File interface {
	// Read fills p from the current position, advancing it.
	Read(p []byte) (int, time.Duration, error)
	// Write stores p at the current position, advancing it and growing
	// the file as needed.
	Write(p []byte) (int, time.Duration, error)
	// Seek repositions like io.Seeker.
	SeekTo(offset int64, whence int) (int64, time.Duration, error)
	// Close releases the handle, flushing buffered state.
	Close() (time.Duration, error)
	// Size returns the current file length in bytes.
	Size() int64
	// Name returns the file's name.
	Name() string
}

// Common errors.
var (
	ErrNotExist = errors.New("fsim: file does not exist")
	ErrClosed   = errors.New("fsim: file already closed")
)

// Config tunes the simulated store's software-path costs. The defaults
// are calibrated so that warm-cache replay latencies land in the
// microsecond range the paper's Tables 1-4 report.
type Config struct {
	// OpenCost is the metadata cost of opening a file.
	OpenCost time.Duration
	// CloseCost is the bookkeeping cost of closing, before any flush.
	// The paper observes close > open on every trace; this constant plus
	// dirty-page flushing is why.
	CloseCost time.Duration
	// CreateCost is the directory-entry cost of creating a file.
	CreateCost time.Duration
	// SeekCost is the in-memory cost of repositioning a handle.
	SeekCost time.Duration
	// SeekPrefetchInit is the extra cost charged when a seek lands on a
	// non-resident page and kicks off asynchronous read-ahead — the
	// occasional slow seeks of Table 3.
	SeekPrefetchInit time.Duration
	// WarmPagesOnOpen is how many leading pages Open pulls into the cache
	// in the background ("when the file is opened, a page or two is
	// placed in I/O buffers", §3.4). The pull is asynchronous: it occupies
	// the disk but is not charged to Open's latency.
	WarmPagesOnOpen int
	// Cache configures the page cache.
	Cache buffercache.Config
	// Disk configures the backing store; see simdisk.MemoryBackedParams.
	Disk simdisk.Params
	// Disks is the number of striped disks (≥1).
	Disks int
	// StripeUnit is the array stripe unit in bytes.
	StripeUnit int64
	// RAIDLevel selects the array redundancy scheme (default RAID0).
	RAIDLevel simdisk.Level
}

// ShardedConfig is DefaultConfig with the page cache lock-striped for the
// machine (buffercache.AutoShards stripes): the configuration for
// concurrent replay and serving. Single-threaded paper-fidelity runs keep
// DefaultConfig, whose single stripe reproduces the original global-mutex
// cache exactly.
func ShardedConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache.Shards = buffercache.AutoShards()
	return cfg
}

// DefaultConfig returns the trace-replay calibration: memory-backed
// storage, 4 KB pages, 64 MB cache, light software-path costs.
func DefaultConfig() Config {
	cacheCfg := buffercache.DefaultConfig()
	cacheCfg.NumPages = 16384 // 64 MB
	cacheCfg.MemCopyRate = 4 << 30
	cacheCfg.HitOverhead = 500 * time.Nanosecond
	// 256 KB of read-ahead: sequential scans stay warm (the cheap rows of
	// Tables 1-4) while random jumps fault in cold pages (the spikes).
	cacheCfg.PrefetchPages = 64
	return Config{
		OpenCost:         600 * time.Nanosecond,
		CloseCost:        5 * time.Microsecond,
		CreateCost:       2 * time.Microsecond,
		SeekCost:         35 * time.Nanosecond,
		SeekPrefetchInit: 120 * time.Nanosecond,
		WarmPagesOnOpen:  2,
		Cache:            cacheCfg,
		Disk:             simdisk.MemoryBackedParams(),
		Disks:            1,
		StripeUnit:       64 << 10,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.OpenCost < 0 || c.CloseCost < 0 || c.CreateCost < 0 || c.SeekCost < 0 || c.SeekPrefetchInit < 0:
		return fmt.Errorf("fsim: operation costs must be non-negative")
	case c.WarmPagesOnOpen < 0:
		return fmt.Errorf("fsim: warm pages %d must be non-negative", c.WarmPagesOnOpen)
	case c.Disks < 1:
		return fmt.Errorf("fsim: need at least one disk, got %d", c.Disks)
	case c.StripeUnit <= 0:
		return fmt.Errorf("fsim: stripe unit %d must be positive", c.StripeUnit)
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	return c.Disk.Validate()
}

// fileMeta is the on-"disk" identity of a file: a contiguous extent in the
// simulated address space plus its in-memory contents. Sparse files track
// only a logical size — reads return zeros and writes update metadata —
// so the trace benchmarks can replay against a 1 GB sample file without
// materializing a gigabyte of bytes.
type fileMeta struct {
	name   string
	base   int64 // extent start in the simulated address space
	data   []byte
	sparse bool
	size   int64 // logical size; == len(data) for dense files
}

func (m *fileMeta) length() int64 {
	if m.sparse {
		return m.size
	}
	return int64(len(m.data))
}

// FileStore is the simulated Store. Metadata lives under a read-write
// lock: operations that only read file contents and metadata (Read, Seek,
// Size, Close) take the shared side, so concurrent readers — the
// goroutine-per-process trace replays and the web server's connection
// handlers — reach the lock-striped page cache in parallel instead of
// serializing on the store. Mutating operations (Create, Open's handle
// bookkeeping, Write, Remove) take the exclusive side. The cache, disk
// array, and virtual clock are internally synchronized.
type FileStore struct {
	cfg   Config
	clk   *clock.VirtualClock
	cache *buffercache.Cache
	array *simdisk.Array

	mu        sync.RWMutex
	files     map[string]*fileMeta
	nextBase  int64
	extentGap int64
}

// NewFileStore builds a simulated store. It returns an error for invalid
// configuration.
func NewFileStore(cfg Config) (*FileStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	array, err := simdisk.NewArrayLevel(cfg.Disks, cfg.StripeUnit, cfg.RAIDLevel, cfg.Disk)
	if err != nil {
		return nil, err
	}
	cache, err := buffercache.New(cfg.Cache, array)
	if err != nil {
		return nil, err
	}
	return &FileStore{
		cfg:       cfg,
		clk:       clock.NewVirtualClock(time.Unix(0, 0)),
		cache:     cache,
		array:     array,
		files:     make(map[string]*fileMeta),
		extentGap: cfg.Cache.PageSize, // extents are page-aligned and disjoint
	}, nil
}

// MustNewFileStore panics on configuration error; for literal wiring.
func MustNewFileStore(cfg Config) *FileStore {
	s, err := NewFileStore(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the store configuration.
func (s *FileStore) Config() Config { return s.cfg }

// Cache exposes the page cache for stats inspection and ablations.
func (s *FileStore) Cache() *buffercache.Cache { return s.cache }

// Array exposes the disk array for stats inspection.
func (s *FileStore) Array() *simdisk.Array { return s.array }

// Clock exposes the store's virtual clock.
func (s *FileStore) Clock() *clock.VirtualClock { return s.clk }

// alignUp rounds n up to the next multiple of align.
func alignUp(n, align int64) int64 {
	if n%align == 0 {
		return n
	}
	return n + align - n%align
}

// Create makes (or truncates) a file holding data. Existing extents are
// reused when the new contents fit; otherwise a fresh extent is allocated.
func (s *FileStore) Create(name string, data []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	buf := make([]byte, len(data))
	copy(buf, data)
	meta, ok := s.files[name]
	if !ok || int64(len(data)) > s.extentCap(meta) {
		meta = &fileMeta{name: name, base: s.nextBase}
		s.nextBase += alignUp(int64(len(data))+s.extentGap, s.cfg.Cache.PageSize)
		s.files[name] = meta
	}
	meta.data = buf
	meta.sparse = false
	meta.size = int64(len(buf))
	done := now.Add(s.cfg.CreateCost)
	// Writing the initial contents dirties the cache like any write.
	if len(data) > 0 {
		done, _ = s.cache.Write(done, meta.base, int64(len(data)))
	}
	s.clk.Set(done)
	return done.Sub(now), nil
}

// CreateSized makes (or replaces) a sparse file of the given logical size.
// Reads return zeros; writes update only metadata and timing. This is how
// the trace benchmarks provision the paper's 1 GB sample file.
func (s *FileStore) CreateSized(name string, size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("fsim: negative size %d", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	meta := &fileMeta{name: name, base: s.nextBase, sparse: true, size: size}
	s.nextBase += alignUp(size+s.extentGap, s.cfg.Cache.PageSize)
	s.files[name] = meta
	done := now.Add(s.cfg.CreateCost)
	s.clk.Set(done)
	return done.Sub(now), nil
}

// extentCap returns the capacity of meta's extent (distance to next base,
// conservatively its own aligned size).
func (s *FileStore) extentCap(meta *fileMeta) int64 {
	return alignUp(meta.length()+s.extentGap, s.cfg.Cache.PageSize)
}

// Open opens an existing file.
func (s *FileStore) Open(name string) (File, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.files[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	now := s.clk.Now()
	done := now.Add(s.cfg.OpenCost)
	s.clk.Set(done)
	// Background warm-up of the first pages (§3.4): occupies the cache and
	// disk but is not charged to the caller.
	if s.cfg.WarmPagesOnOpen > 0 && meta.length() > 0 {
		warm := int64(s.cfg.WarmPagesOnOpen) * s.cfg.Cache.PageSize
		if warm > meta.length() {
			warm = meta.length()
		}
		s.cache.Read(done, meta.base, warm)
	}
	return &simFile{store: s, meta: meta}, done.Sub(now), nil
}

// Remove deletes name, dropping its cached pages.
func (s *FileStore) Remove(name string) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(s.files, name)
	now := s.clk.Now()
	// Dropping the directory entry costs like a create; the extent's
	// cached pages become dead weight the LRU will reclaim naturally.
	done := now.Add(s.cfg.CreateCost)
	_ = meta
	s.clk.Set(done)
	return done.Sub(now), nil
}

// Exists reports whether name exists.
func (s *FileStore) Exists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[name]
	return ok
}

// Names returns the sorted file names.
func (s *FileStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// simFile is an open handle on a FileStore file.
type simFile struct {
	store  *FileStore
	meta   *fileMeta
	pos    int64
	closed bool
	wrote  bool
}

var _ File = (*simFile)(nil)

// Name returns the file name.
func (f *simFile) Name() string { return f.meta.name }

// Size returns the file length.
func (f *simFile) Size() int64 {
	f.store.mu.RLock()
	defer f.store.mu.RUnlock()
	return f.meta.length()
}

// Read fills p from the current position.
func (f *simFile) Read(p []byte) (int, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	f.store.mu.RLock()
	defer f.store.mu.RUnlock()
	size := f.meta.length()
	if f.pos >= size {
		return 0, 0, io.EOF
	}
	n := int64(len(p))
	if f.pos+n > size {
		n = size - f.pos
	}
	if f.meta.sparse {
		for i := int64(0); i < n; i++ {
			p[i] = 0
		}
	} else {
		copy(p, f.meta.data[f.pos:f.pos+n])
	}
	now := f.store.clk.Now()
	done, _ := f.store.cache.Read(now, f.meta.base+f.pos, n)
	f.store.clk.Set(done)
	f.pos += n
	var err error
	if n < int64(len(p)) {
		err = io.EOF
	}
	return int(n), done.Sub(now), err
}

// Write stores p at the current position, growing the file as needed.
func (f *simFile) Write(p []byte) (int, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	end := f.pos + int64(len(p))
	if end > f.store.extentCap(f.meta) {
		// Contents outgrew the extent: relocate. Rare in the benchmarks
		// (POST files are written once); charged as a create.
		newMeta := &fileMeta{
			name: f.meta.name, base: f.store.nextBase,
			data: f.meta.data, sparse: f.meta.sparse, size: f.meta.size,
		}
		f.store.nextBase += alignUp(end+f.store.extentGap, f.store.cfg.Cache.PageSize)
		f.store.files[f.meta.name] = newMeta
		f.meta = newMeta
	}
	if f.meta.sparse {
		if end > f.meta.size {
			f.meta.size = end
		}
	} else {
		if end > int64(len(f.meta.data)) {
			grown := make([]byte, end)
			copy(grown, f.meta.data)
			f.meta.data = grown
		}
		copy(f.meta.data[f.pos:end], p)
		f.meta.size = int64(len(f.meta.data))
	}
	now := f.store.clk.Now()
	done, _ := f.store.cache.Write(now, f.meta.base+f.pos, int64(len(p)))
	f.store.clk.Set(done)
	f.pos = end
	f.wrote = true
	return len(p), done.Sub(now), nil
}

// Seek repositions the handle. Seeking to a non-resident page charges the
// read-ahead initiation cost and warms the target page in the background.
func (f *simFile) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	f.store.mu.RLock()
	defer f.store.mu.RUnlock()
	var target int64
	switch whence {
	case io.SeekStart:
		target = offset
	case io.SeekCurrent:
		target = f.pos + offset
	case io.SeekEnd:
		target = f.meta.length() + offset
	default:
		return f.pos, 0, fmt.Errorf("fsim: invalid whence %d", whence)
	}
	if target < 0 {
		return f.pos, 0, fmt.Errorf("fsim: negative seek position %d", target)
	}
	cost := f.store.cfg.SeekCost
	if target < f.meta.length() && !f.store.cache.Resident(f.meta.base+target) {
		cost += f.store.cfg.SeekPrefetchInit
		// Kick off background read-ahead at the target; not charged.
		now := f.store.clk.Now()
		f.store.cache.Read(now, f.meta.base+target, f.store.cfg.Cache.PageSize)
	}
	now := f.store.clk.Now()
	done := now.Add(cost)
	f.store.clk.Set(done)
	f.pos = target
	return target, done.Sub(now), nil
}

// Close flushes the file's dirty pages and releases the handle. Closing
// is always at least CloseCost, and more when writes must be written back
// — the close-slower-than-open effect of §3.4.
func (f *simFile) Close() (time.Duration, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.store.mu.RLock()
	defer f.store.mu.RUnlock()
	f.closed = true
	now := f.store.clk.Now()
	done := now.Add(f.store.cfg.CloseCost)
	if f.wrote {
		done, _ = f.store.cache.FlushRange(done, f.meta.base, f.meta.length())
	}
	f.store.clk.Set(done)
	return done.Sub(now), nil
}
