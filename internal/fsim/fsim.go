// Package fsim provides the file-store substrate the benchmarks issue
// their I/O against. Two implementations share one interface:
//
//   - FileStore: a simulated filesystem over buffercache + simdisk. File
//     contents are real bytes held in memory (so benchmarks that round-trip
//     data, like the web server, behave correctly) while every operation's
//     latency is simulated deterministically.
//   - OSStore (os.go): a passthrough to the host filesystem timed with the
//     real clock, for runs that want genuine OS I/O.
//
// The operation set matches the paper's trace format exactly: Open, Close,
// Read, Write, Seek (§3.2).
//
// Time model: a FileStore owns a clock.Timeline. Plain store calls run on
// the default lane — single-threaded callers see exactly the original
// one-clock behavior. NewSession (session.go) opens an independent lane
// with a private disk-timing view, so concurrent workers advance
// simulated time in parallel and the aggregate elapsed time is the
// longest lane, not the sum.
//
// Disk billing is run-granular: every disk view here is a
// *simdisk.Array, which implements buffercache.RunBackend, so the
// cache's cold paths — eviction write-backs, the flush-on-close sweep
// (FlushRange), and Settle's final Flush — submit contiguous page spans
// as single AccessRun calls rather than one Access per page. The
// simulated completion times are bit-identical either way; only the
// engine's wall cost differs.
package fsim

import (
	"fmt"
	"io/fs"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffercache"
	"repro/internal/clock"
	"repro/internal/simdisk"
	"repro/internal/simdisk/sharedq"
)

// Store is a file system that reports a simulated-or-real duration for
// every operation, mirroring how the paper times each I/O call.
type Store interface {
	// Create makes (or truncates) a file filled with len(data) bytes.
	Create(name string, data []byte) (time.Duration, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, time.Duration, error)
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) (time.Duration, error)
	// Stat reports the file's logical size without opening a handle,
	// billed as a metadata lookup (the stdfs facade's fs.StatFS and
	// fs.DirEntry.Info run on it).
	Stat(name string) (int64, time.Duration, error)
	// Exists reports whether the file exists.
	Exists(name string) bool
	// Names returns the sorted names of all files.
	Names() []string
}

// File is an open file handle. Operations report their duration alongside
// the usual results. Implementations are safe for concurrent use of
// distinct files; a single File must not be shared across goroutines.
type File interface {
	// Read fills p from the current position, advancing it.
	Read(p []byte) (int, time.Duration, error)
	// Write stores p at the current position, advancing it and growing
	// the file as needed.
	Write(p []byte) (int, time.Duration, error)
	// Seek repositions like io.Seeker.
	SeekTo(offset int64, whence int) (int64, time.Duration, error)
	// Close releases the handle, flushing buffered state.
	Close() (time.Duration, error)
	// Size returns the current file length in bytes.
	Size() int64
	// Name returns the file's name.
	Name() string
}

// Common errors. Both wrap the standard library's filesystem sentinels,
// so errors.Is(err, fs.ErrNotExist) / errors.Is(err, fs.ErrClosed) hold
// for every error a store returns — stdlib-facing consumers (the stdfs
// facade, http.FileServer, fs.WalkDir) classify fsim failures without
// knowing about this package.
var (
	ErrNotExist = fmt.Errorf("fsim: %w", fs.ErrNotExist)
	ErrClosed   = fmt.Errorf("fsim: %w", fs.ErrClosed)
)

// Config tunes the simulated store's software-path costs. The defaults
// are calibrated so that warm-cache replay latencies land in the
// microsecond range the paper's Tables 1-4 report.
type Config struct {
	// OpenCost is the metadata cost of opening a file.
	OpenCost time.Duration
	// CloseCost is the bookkeeping cost of closing, before any flush.
	// The paper observes close > open on every trace; this constant plus
	// dirty-page flushing is why.
	CloseCost time.Duration
	// CreateCost is the directory-entry cost of creating a file.
	CreateCost time.Duration
	// SeekCost is the in-memory cost of repositioning a handle.
	SeekCost time.Duration
	// SeekPrefetchInit is the extra cost charged when a seek lands on a
	// non-resident page and kicks off asynchronous read-ahead — the
	// occasional slow seeks of Table 3.
	SeekPrefetchInit time.Duration
	// WarmPagesOnOpen is how many leading pages Open pulls into the cache
	// in the background ("when the file is opened, a page or two is
	// placed in I/O buffers", §3.4). The pull is asynchronous: it occupies
	// the disk but is not charged to Open's latency.
	WarmPagesOnOpen int
	// Cache configures the page cache, including the background
	// write-back knobs (WritebackThreshold / WritebackPolicy).
	Cache buffercache.Config
	// Disk configures the backing store; see simdisk.MemoryBackedParams.
	Disk simdisk.Params
	// Disks is the number of striped disks (≥1).
	Disks int
	// StripeUnit is the array stripe unit in bytes.
	StripeUnit int64
	// RAIDLevel selects the array redundancy scheme (default RAID0).
	RAIDLevel simdisk.Level
	// DiskQueue selects private per-session disk-timing views (the
	// default, bit-identical to the original model) or one shared
	// contended queue across every session's lane; see DiskQueueMode.
	DiskQueue DiskQueueMode
	// Faults schedules device faults on every disk view the store builds
	// (the shared array, the contended queue's array, the write-back
	// view, and each session's private view), activating on virtual time
	// so faulted replays are bit-identical. Nil injects nothing.
	Faults *simdisk.FaultPlan
	// Inject schedules deterministic op-level fault injection on session
	// operations; see InjectSpec. The zero spec injects nothing.
	Inject InjectSpec
	// Retry bounds session recovery from transient injected faults with
	// simulated-time exponential backoff; see RetryPolicy.
	Retry RetryPolicy
	// Spares provisions a hot-spare pool that rebuilds draw from, so
	// multiple members can rebuild concurrently and a plan that kills
	// more members than it provisioned spares for fails loudly. Zero
	// keeps the ad-hoc per-rebuild spare.
	Spares int
}

// ShardedConfig is DefaultConfig with the page cache lock-striped for the
// machine (buffercache.AutoShards stripes): the configuration for
// concurrent replay and serving. Single-threaded paper-fidelity runs keep
// DefaultConfig, whose single stripe reproduces the original global-mutex
// cache exactly.
func ShardedConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache.Shards = buffercache.AutoShards()
	return cfg
}

// DefaultConfig returns the trace-replay calibration: memory-backed
// storage, 4 KB pages, 64 MB cache, light software-path costs.
func DefaultConfig() Config {
	cacheCfg := buffercache.DefaultConfig()
	cacheCfg.NumPages = 16384 // 64 MB
	cacheCfg.MemCopyRate = 4 << 30
	cacheCfg.HitOverhead = 500 * time.Nanosecond
	// 256 KB of read-ahead: sequential scans stay warm (the cheap rows of
	// Tables 1-4) while random jumps fault in cold pages (the spikes).
	cacheCfg.PrefetchPages = 64
	return Config{
		OpenCost:         600 * time.Nanosecond,
		CloseCost:        5 * time.Microsecond,
		CreateCost:       2 * time.Microsecond,
		SeekCost:         35 * time.Nanosecond,
		SeekPrefetchInit: 120 * time.Nanosecond,
		WarmPagesOnOpen:  2,
		Cache:            cacheCfg,
		Disk:             simdisk.MemoryBackedParams(),
		Disks:            1,
		StripeUnit:       64 << 10,
		DiskQueue:        DefaultDiskQueue(),
		Faults:           DefaultFaults(),
		Inject:           DefaultInject(),
		Retry:            DefaultRetry(),
		Spares:           DefaultSpares(),
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.OpenCost < 0 || c.CloseCost < 0 || c.CreateCost < 0 || c.SeekCost < 0 || c.SeekPrefetchInit < 0:
		return fmt.Errorf("fsim: operation costs must be non-negative")
	case c.WarmPagesOnOpen < 0:
		return fmt.Errorf("fsim: warm pages %d must be non-negative", c.WarmPagesOnOpen)
	case c.Disks < 1:
		return fmt.Errorf("fsim: need at least one disk, got %d", c.Disks)
	case c.StripeUnit <= 0:
		return fmt.Errorf("fsim: stripe unit %d must be positive", c.StripeUnit)
	case !c.DiskQueue.Valid():
		return fmt.Errorf("fsim: invalid disk-queue mode %d", int(c.DiskQueue))
	case c.Spares < 0:
		return fmt.Errorf("fsim: negative spare count %d", c.Spares)
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.Disks, c.RAIDLevel); err != nil {
		return err
	}
	if err := c.Inject.Validate(); err != nil {
		return err
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	return c.Disk.Validate()
}

// fileMeta is the on-"disk" identity of a file: a contiguous extent in the
// simulated address space plus its in-memory contents. Sparse files track
// only a logical size — reads return zeros and writes update metadata —
// so the trace benchmarks can replay against a 1 GB sample file without
// materializing a gigabyte of bytes.
//
// Each file carries its own lock: the store-level namespace (a sync.Map)
// never serializes data access, so metadata-heavy workloads touching
// different files proceed in parallel.
type fileMeta struct {
	name string
	base int64 // extent start in the simulated address space; immutable

	mu     sync.RWMutex
	data   []byte
	sparse bool
	size   int64 // logical size; == len(data) for dense files
}

// lengthLocked returns the logical size; the caller holds mu.
func (m *fileMeta) lengthLocked() int64 {
	if m.sparse {
		return m.size
	}
	return int64(len(m.data))
}

// length returns the logical size under the meta lock.
func (m *fileMeta) length() int64 {
	m.mu.RLock()
	n := m.lengthLocked()
	m.mu.RUnlock()
	return n
}

// FileStore is the simulated Store. The namespace is a sync.Map keyed by
// file name, extent allocation is an atomic bump pointer, and each file
// guards its own contents with a read-write lock — there is no
// store-level mutex left, so directory operations (Create, Open, Remove,
// Names) from different goroutines never serialize on the store. The
// cache, disk array, and virtual clocks are internally synchronized.
type FileStore struct {
	cfg   Config
	tl    *clock.Timeline
	clk   *clock.VirtualClock // the default lane
	cache *buffercache.Cache
	array *simdisk.Array
	def   *Session
	// queue and qArray exist only in shared disk-queue mode: one
	// contended command queue over one array, which every session's lane
	// submits into instead of owning a private timing view.
	queue  *sharedq.Queue
	qArray *simdisk.Array
	// spares is the hot-spare pool rebuilds draw from; nil when
	// Config.Spares is zero (each rebuild then provisions ad hoc).
	spares *simdisk.SparePool

	files     sync.Map // name -> *fileMeta
	nextBase  atomic.Int64
	extentGap int64

	sessMu   sync.Mutex
	sessions []*Session
	// retired accumulates the disk statistics of released sessions.
	retired simdisk.Stats
	// retiredRec accumulates released sessions' recovery counters.
	retiredRec RecoveryStats
	// sessSeq numbers sessions (the injection schedule's session key).
	sessSeq atomic.Int64
	// injEnabled caches Inject.Enabled(): the per-op gate's one branch.
	injEnabled bool
}

// NewFileStore builds a simulated store. It returns an error for invalid
// configuration.
func NewFileStore(cfg Config) (*FileStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	array, err := simdisk.NewArrayLevel(cfg.Disks, cfg.StripeUnit, cfg.RAIDLevel, cfg.Disk)
	if err != nil {
		return nil, err
	}
	cache, err := buffercache.New(cfg.Cache, array)
	if err != nil {
		return nil, err
	}
	tl := clock.NewTimeline(time.Unix(0, 0))
	s := &FileStore{
		cfg:        cfg,
		tl:         tl,
		clk:        tl.NewLane(),
		cache:      cache,
		array:      array,
		extentGap:  cfg.Cache.PageSize, // extents are page-aligned and disjoint
		injEnabled: cfg.Inject.Enabled(),
	}
	// Device faults activate on virtual offsets from the timeline start,
	// so every disk view the store builds degrades identically.
	if err := array.ApplyFaultPlan(tl.Start(), cfg.Faults); err != nil {
		return nil, err
	}
	if cfg.Spares > 0 {
		pool, err := simdisk.NewSparePool(cfg.Spares, cfg.Disk)
		if err != nil {
			return nil, err
		}
		s.spares = pool
	}
	// The default session runs on the default lane, the shared array, and
	// the cache's default I/O context: plain store calls behave exactly
	// like the pre-session store. It never injects op-level faults —
	// provisioning and setup traffic stays clean; see NewSession.
	s.def = &Session{store: s, clk: s.clk, io: cache.DefaultIO(), array: array}
	// Shared disk-queue mode: sessions' requests meet in one contended
	// queue over one array, ordered by the configured scheduling policy.
	// The default session (setup traffic, single-threaded callers) stays
	// on its unregistered view, so it never gates the event merge.
	if cfg.DiskQueue == DiskQueueShared {
		qArray, err := simdisk.NewArrayLevel(cfg.Disks, cfg.StripeUnit, cfg.RAIDLevel, cfg.Disk)
		if err != nil {
			return nil, err
		}
		if err := qArray.ApplyFaultPlan(tl.Start(), cfg.Faults); err != nil {
			return nil, err
		}
		s.qArray = qArray
		s.queue = sharedq.MustNew(qArray, cfg.Cache.WritebackPolicy)
	}
	// Background write-back gets its own disk view, like a session: its
	// drains overlap foreground I/O on independent lanes instead of
	// racing wall-clock-nondeterministically for the shared busy horizon.
	if cfg.Cache.WritebackThreshold > 0 {
		wbArray, err := simdisk.NewArrayLevel(cfg.Disks, cfg.StripeUnit, cfg.RAIDLevel, cfg.Disk)
		if err != nil {
			return nil, err
		}
		if err := wbArray.ApplyFaultPlan(tl.Start(), cfg.Faults); err != nil {
			return nil, err
		}
		cache.SetWritebackBackend(wbArray)
	}
	return s, nil
}

// MustNewFileStore panics on configuration error; for literal wiring.
func MustNewFileStore(cfg Config) *FileStore {
	s, err := NewFileStore(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the store configuration.
func (s *FileStore) Config() Config { return s.cfg }

// Cache exposes the page cache for stats inspection and ablations.
func (s *FileStore) Cache() *buffercache.Cache { return s.cache }

// Array exposes the shared disk array for stats inspection. Sessions
// time their I/O against private views; TotalDiskStats aggregates both.
func (s *FileStore) Array() *simdisk.Array { return s.array }

// SharedQueue exposes the shared disk queue, or nil when the store runs
// private per-session views (the default). Benchmarks read its Stats for
// the contention rows.
func (s *FileStore) SharedQueue() *sharedq.Queue { return s.queue }

// Clock exposes the store's default virtual-clock lane.
func (s *FileStore) Clock() *clock.VirtualClock { return s.clk }

// Timeline exposes the store's lane set; its MaxNow is the aggregate
// simulated time across the default lane and every session.
func (s *FileStore) Timeline() *clock.Timeline { return s.tl }

// Close stops the cache's background flusher goroutines, if write-back
// is enabled. It is safe to call multiple times and never required for
// stores built without write-back.
func (s *FileStore) Close() { s.cache.Close() }

// Settle ends a (possibly parallel) run: it merges every lane, then
// retires whatever dirty pages remain. With background write-back the
// residue drains through the flushers' own lanes — the disk work happens
// off the critical path, so no foreground time is charged and the settle
// duration is zero; the horizon is visible via Cache().WritebackHorizon.
// Without write-back the residue is flushed as one deterministic
// elevator sweep billed from the merged time, as a final sync would be.
// It returns the merged completion time and the foreground duration
// charged.
func (s *FileStore) Settle() (time.Time, time.Duration) {
	now := s.tl.MaxNow()
	if s.cache.WritebackEnabled() {
		s.cache.Quiesce(now)
		return now, 0
	}
	done, d := s.cache.Flush(now)
	s.clk.Set(done)
	return done, d
}

// TotalDiskStats sums the shared array's statistics with every live
// session's private view and the retired totals of released sessions,
// so no simulated disk traffic is invisible.
func (s *FileStore) TotalDiskStats() simdisk.Stats {
	total := s.array.TotalStats()
	if s.qArray != nil {
		// Shared-queue sessions all bill the one contended array.
		total.Add(s.qArray.TotalStats())
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	total.Add(s.retired)
	for _, sess := range s.sessions {
		if sess.array == nil || sess.array == s.array {
			continue
		}
		total.Add(sess.array.TotalStats())
	}
	return total
}

// alignUp rounds n up to the next multiple of align.
func alignUp(n, align int64) int64 {
	if n%align == 0 {
		return n
	}
	return n + align - n%align
}

// allocExtent reserves a page-aligned extent for length bytes and
// returns its base. The bump pointer is atomic, so concurrent creates
// never serialize on the store.
func (s *FileStore) allocExtent(length int64) int64 {
	span := alignUp(length+s.extentGap, s.cfg.Cache.PageSize)
	return s.nextBase.Add(span) - span
}

// lookup fetches a file's metadata.
func (s *FileStore) lookup(name string) (*fileMeta, bool) {
	v, ok := s.files.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*fileMeta), true
}

// extentCap returns the capacity of meta's extent (distance to next base,
// conservatively its own aligned size). The caller holds meta.mu.
func (s *FileStore) extentCap(meta *fileMeta) int64 {
	return alignUp(meta.lengthLocked()+s.extentGap, s.cfg.Cache.PageSize)
}

// Create makes (or truncates) a file holding data on the default lane.
func (s *FileStore) Create(name string, data []byte) (time.Duration, error) {
	return s.def.Create(name, data)
}

// CreateSized makes (or replaces) a sparse file of the given logical size.
// Reads return zeros; writes update only metadata and timing. This is how
// the trace benchmarks provision the paper's 1 GB sample file.
func (s *FileStore) CreateSized(name string, size int64) (time.Duration, error) {
	return s.def.CreateSized(name, size)
}

// Open opens an existing file on the default lane.
func (s *FileStore) Open(name string) (File, time.Duration, error) {
	return s.def.Open(name)
}

// Remove deletes name on the default lane, dropping its directory entry.
func (s *FileStore) Remove(name string) (time.Duration, error) {
	return s.def.Remove(name)
}

// Stat reports name's logical size on the default lane.
func (s *FileStore) Stat(name string) (int64, time.Duration, error) {
	return s.def.Stat(name)
}

// Exists reports whether name exists.
func (s *FileStore) Exists(name string) bool {
	_, ok := s.files.Load(name)
	return ok
}

// Names returns the sorted file names.
func (s *FileStore) Names() []string {
	var out []string
	s.files.Range(func(key, _ any) bool {
		out = append(out, key.(string))
		return true
	})
	sort.Strings(out)
	return out
}
