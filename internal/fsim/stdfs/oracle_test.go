package stdfs

import (
	"archive/tar"
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"testing/fstest"

	"repro/internal/fsim"
)

// oracleTree is the file set the oracle builds in every backend.
var oracleTree = map[string][]byte{
	"index.html":          []byte("<html>fsim</html>\n"),
	"empty.dat":           {},
	"assets/css/site.css": []byte("body { margin: 0 }\n"),
	"assets/logo.svg":     []byte("<svg/>"),
	"papers/ipps/qin.txt": []byte("A performance study of software managed I/O\n"),
	"papers/notes.md":     []byte("## notes\nreplay, cache, disk\n"),
}

// observe runs the shared fs-consuming program: WalkDir the whole tree
// recording every path, type, and (for files) Stat size and contents via
// fs.ReadFile, then streams the files into a deterministic tar archive
// (fixed mode and zero time, so only names, sizes, and bytes differ).
// The returned transcript is the filesystem's observable behavior; two
// backends behave identically iff their transcripts are byte-equal.
func observe(fsys fs.FS) (string, []byte, error) {
	var log bytes.Buffer
	var archive bytes.Buffer
	tw := tar.NewWriter(&archive)
	err := fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			fmt.Fprintf(&log, "dir  %s\n", p)
			return nil
		}
		info, err := fs.Stat(fsys, p)
		if err != nil {
			return err
		}
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return err
		}
		if int64(len(data)) != info.Size() {
			return fmt.Errorf("%s: ReadFile %d bytes, Stat says %d", p, len(data), info.Size())
		}
		fmt.Fprintf(&log, "file %s size=%d\n", p, info.Size())
		if err := tw.WriteHeader(&tar.Header{Name: p, Size: info.Size(), Mode: 0o644}); err != nil {
			return err
		}
		if _, err := tw.Write(data); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	if err := tw.Close(); err != nil {
		return "", nil, err
	}
	// Partial-read behavior: open the largest file, read three bytes,
	// seek to the middle, read the rest — identical across backends.
	f, err := fsys.Open("papers/ipps/qin.txt")
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	head := make([]byte, 3)
	if _, err := io.ReadFull(f, head); err != nil {
		return "", nil, err
	}
	fmt.Fprintf(&log, "head %q\n", head)
	if s, ok := f.(io.Seeker); ok {
		if _, err := s.Seek(20, io.SeekStart); err != nil {
			return "", nil, err
		}
		rest, err := io.ReadAll(f)
		if err != nil {
			return "", nil, err
		}
		fmt.Fprintf(&log, "rest %q\n", rest)
	}
	return log.String(), archive.Bytes(), nil
}

// TestOracle diffs the facade against the two stdlib reference
// filesystems: whatever a real fs.FS-consuming program observes over
// os.DirFS and fstest.MapFS, it must observe over the simulator too.
func TestOracle(t *testing.T) {
	// Backend 1: the host filesystem.
	dir := t.TempDir()
	for name, data := range oracleTree {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Backend 2: the in-memory reference implementation.
	mapFS := fstest.MapFS{}
	for name, data := range oracleTree {
		mapFS[name] = &fstest.MapFile{Data: data}
	}
	// Backend 3: the simulated store behind the facade.
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for name, data := range oracleTree {
		if _, err := store.Create(name, data); err != nil {
			t.Fatal(err)
		}
	}
	fsimFS := New(store)

	wantLog, wantTar, err := observe(os.DirFS(dir))
	if err != nil {
		t.Fatalf("os.DirFS oracle: %v", err)
	}
	for _, bk := range []struct {
		name string
		fsys fs.FS
	}{{"fstest.MapFS", mapFS}, {"fsim/stdfs", fsimFS}} {
		log, archive, err := observe(bk.fsys)
		if err != nil {
			t.Fatalf("%s: %v", bk.name, err)
		}
		if log != wantLog {
			t.Errorf("%s transcript diverges from os.DirFS:\n--- os.DirFS\n%s--- %s\n%s", bk.name, wantLog, bk.name, log)
		}
		if !bytes.Equal(archive, wantTar) {
			t.Errorf("%s tar archive diverges from os.DirFS (%d vs %d bytes)", bk.name, len(archive), len(wantTar))
		}
	}
	if fsimFS.Cost() <= 0 {
		t.Error("facade ledger empty after the oracle run: simulated costs were lost")
	}
}
