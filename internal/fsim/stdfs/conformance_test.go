package stdfs

import (
	"fmt"
	"sync"
	"testing"
	"testing/fstest"

	"repro/internal/fsim"
)

// buildCatalog provisions the conformance catalog on a fresh store:
// nested prefixes several levels deep, empty files, dense payload files,
// and sparse CreateSized files (reads return zeros). It returns the
// store and the expected file list for fstest.TestFS.
func buildCatalog(t *testing.T, cfg fsim.Config) (*fsim.FileStore, []string) {
	t.Helper()
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	var names []string
	create := func(name string, data []byte) {
		if _, err := store.Create(name, data); err != nil {
			t.Fatalf("Create(%q): %v", name, err)
		}
		names = append(names, name)
	}
	create("top.txt", []byte("top-level file\n"))
	create("empty", nil)
	create("docs/readme.md", []byte("# readme\n"))
	create("docs/guide/intro.md", []byte("intro"))
	create("docs/guide/deep/leaf.txt", []byte("leaf contents"))
	create("docs.archive", []byte("sorts between docs and docs/ entries"))
	create("logs/2005/ipps.log", []byte("QinXNT05"))
	for i := 0; i < 4; i++ {
		create(fmt.Sprintf("bulk/file-%d.bin", i), []byte(fmt.Sprintf("payload %d", i)))
	}
	// Sparse files: metadata-only contents, reads are zero-filled.
	if _, err := store.CreateSized("sparse/sample.dat", 256<<10); err != nil {
		t.Fatal(err)
	}
	names = append(names, "sparse/sample.dat")
	if _, err := store.CreateSized("sparse/zero.dat", 0); err != nil {
		t.Fatal(err)
	}
	names = append(names, "sparse/zero.dat")
	return store, names
}

// TestConformance runs the standard library's filesystem conformance
// suite against the facade over the generated catalog — the same suite
// os.DirFS and fstest.MapFS pass.
func TestConformance(t *testing.T) {
	store, names := buildCatalog(t, fsim.DefaultConfig())
	if err := fstest.TestFS(New(store), names...); err != nil {
		t.Fatal(err)
	}
}

// TestConformanceConcurrentSessions runs the conformance suite from
// several goroutines at once, each over its own session lane of one
// shared sharded store — the race-exercised configuration CI's -race
// run covers. Costs land on each worker's own ledger and lane.
func TestConformanceConcurrentSessions(t *testing.T) {
	store, names := buildCatalog(t, fsim.ShardedConfig())
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	costs := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := store.NewSession()
			defer sess.Release()
			fsys := New(sess)
			errs[w] = fstest.TestFS(fsys, names...)
			costs[w] = int64(fsys.Cost())
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
		if costs[w] <= 0 {
			t.Errorf("worker %d: facade ledger %d, want > 0", w, costs[w])
		}
	}
}
