package stdfs

import (
	"fmt"
	"io/fs"
	"testing"

	"repro/internal/fsim"
)

// benchCatalog builds the facade-overhead catalog: 32 files of 4 KB
// across nested directories, pre-warmed so the walks measure the
// engine's warm path plus facade overhead, not cold misses.
func benchCatalog(b *testing.B) *fsim.FileStore {
	b.Helper()
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(store.Close)
	payload := make([]byte, 4<<10)
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("d%d/f%d.bin", i%4, i)
		if _, err := store.Create(name, payload); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

// BenchmarkStdFSWalkDir is the facade-overhead row: fs.WalkDir over the
// facade, opening and fully reading every file through the standard
// interfaces. Compare with BenchmarkNativeOpenRead below — the delta is
// what the io/fs layer costs on top of the native session path.
func BenchmarkStdFSWalkDir(b *testing.B) {
	store := benchCatalog(b)
	fsys := New(store)
	buf := make([]byte, 4<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			f, err := fsys.Open(p)
			if err != nil {
				return err
			}
			if _, err := f.Read(buf); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeOpenRead reads the same catalog through the native
// Session.Open+Read path: the baseline the facade row is compared to.
func BenchmarkNativeOpenRead(b *testing.B) {
	store := benchCatalog(b)
	names := store.Names()
	buf := make([]byte, 4<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			f, _, err := store.Open(name)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := f.Read(buf); err != nil {
				b.Fatal(err)
			}
			if _, err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
