package stdfs

import (
	"io"
	"io/fs"
	"path"
	"time"

	"repro/internal/fsim"
)

// File is an open facade handle over a fsim.File. Beyond fs.File it
// implements io.Reader, io.Writer, io.Seeker, and io.ReaderAt, wrapping
// the store's timed operations; every simulated duration is billed to
// the facade ledger and to this handle's own (see Cost). Like the
// underlying fsim.File, a File must not be shared across goroutines —
// which is also why ReadAt may legally reposition and restore the
// handle's offset.
type File struct {
	fsys  *FS
	inner fsim.File
	name  string // full facade path; inner.Name() may differ for wrappers
	cost  time.Duration
}

var (
	_ fs.File     = (*File)(nil)
	_ io.Writer   = (*File)(nil)
	_ io.Seeker   = (*File)(nil)
	_ io.ReaderAt = (*File)(nil)
)

// Cost returns the simulated time billed to this handle so far: the
// open, every read/write/seek, and the close once it happens.
func (f *File) Cost() time.Duration { return f.cost }

// bill charges a simulated duration to both ledgers.
func (f *File) bill(d time.Duration) {
	f.cost += d
	f.fsys.bill(d)
}

// Stat reports the file's current metadata.
func (f *File) Stat() (fs.FileInfo, error) {
	return fileInfo{name: path.Base(f.name), size: f.inner.Size(), mode: fileMode}, nil
}

// Read fills p from the current position.
func (f *File) Read(p []byte) (int, error) {
	n, d, err := f.inner.Read(p)
	f.bill(d)
	if err != nil && err != io.EOF {
		err = pathError("read", f.name, err)
	}
	return n, err
}

// Write stores p at the current position, growing the file as needed.
func (f *File) Write(p []byte) (int, error) {
	n, d, err := f.inner.Write(p)
	f.bill(d)
	if err != nil {
		err = pathError("write", f.name, err)
	}
	return n, err
}

// Seek repositions the handle like os.File.Seek.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	pos, d, err := f.inner.SeekTo(offset, whence)
	f.bill(d)
	if err != nil {
		err = pathError("seek", f.name, err)
	}
	return pos, err
}

// ReadAt reads len(p) bytes at offset off without (observably) moving
// the handle position: it seeks to off, reads, and seeks back, billing
// all three like the explicit sequence it is. Fewer than len(p) bytes
// returns io.EOF, per the io.ReaderAt contract.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, &fs.PathError{Op: "readat", Path: f.name, Err: fs.ErrInvalid}
	}
	cur, d, err := f.inner.SeekTo(0, io.SeekCurrent)
	f.bill(d)
	if err != nil {
		return 0, pathError("readat", f.name, err)
	}
	if _, d, err := f.inner.SeekTo(off, io.SeekStart); err != nil {
		f.bill(d)
		return 0, pathError("readat", f.name, err)
	} else {
		f.bill(d)
	}
	n := 0
	var readErr error
	for n < len(p) {
		m, d, err := f.inner.Read(p[n:])
		f.bill(d)
		n += m
		if err != nil {
			if err != io.EOF {
				err = pathError("readat", f.name, err)
			}
			readErr = err
			break
		}
	}
	if _, d, err := f.inner.SeekTo(cur, io.SeekStart); err != nil {
		f.bill(d)
		if readErr == nil || readErr == io.EOF {
			readErr = pathError("readat", f.name, err)
		}
	} else {
		f.bill(d)
	}
	if n == len(p) && readErr == io.EOF {
		readErr = nil
	}
	return n, readErr
}

// Close releases the handle, flushing like the store's native close.
func (f *File) Close() error {
	d, err := f.inner.Close()
	f.bill(d)
	if err != nil {
		return pathError("close", f.name, err)
	}
	return nil
}
