package stdfs

import (
	"errors"
	"io"
	"io/fs"
	"testing"

	"repro/internal/fsim"
)

func newStore(t *testing.T) *fsim.FileStore {
	t.Helper()
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	return store
}

func TestCostLedgers(t *testing.T) {
	store := newStore(t)
	if _, err := store.Create("dir/a.txt", []byte("hello ledger")); err != nil {
		t.Fatal(err)
	}
	fsys := New(store)
	f, err := fsys.Open("dir/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	openCost := fsys.Cost()
	if openCost <= 0 {
		t.Fatalf("facade cost after open = %v, want > 0", openCost)
	}
	if hc, ok := Cost(f); !ok || hc != openCost {
		t.Fatalf("handle cost after open = %v ok=%v, want %v", hc, ok, openCost)
	}
	buf := make([]byte, 5)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	afterRead := fsys.Cost()
	if afterRead <= openCost {
		t.Fatalf("facade cost after read = %v, want > %v", afterRead, openCost)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if hc, _ := Cost(f); hc != fsys.Cost() {
		t.Fatalf("handle cost %v != facade cost %v (single handle)", hc, fsys.Cost())
	}
	// The same simulated time must have advanced the store's lane: the
	// facade bills, it does not invent a clock.
	if el := store.Timeline().Elapsed(); el < fsys.Cost() {
		t.Fatalf("timeline elapsed %v < facade cost %v", el, fsys.Cost())
	}
}

func TestSessionLaneBilling(t *testing.T) {
	store := newStore(t)
	if _, err := store.Create("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	defer sess.Release()
	before := sess.Elapsed()
	fsys := New(sess)
	data, err := fsys.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Fatalf("ReadFile = %q", data)
	}
	if got := sess.Elapsed() - before; got != fsys.Cost() {
		t.Fatalf("session lane advanced %v, facade ledger %v — costs must bill to the opening session's lane", got, fsys.Cost())
	}
}

func TestWriteThroughFacade(t *testing.T) {
	store := newStore(t)
	if _, err := store.Create("w.txt", []byte("xxxxxx")); err != nil {
		t.Fatal(err)
	}
	fsys := New(store)
	f, err := fsys.Open("w.txt")
	if err != nil {
		t.Fatal(err)
	}
	h := f.(*File)
	if _, err := h.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if n, err := h.Write([]byte("YZ")); n != 2 || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("w.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "xxYZxx" {
		t.Fatalf("after write-through: %q, want %q", data, "xxYZxx")
	}
}

func TestReadAtPreservesPosition(t *testing.T) {
	store := newStore(t)
	if _, err := store.Create("r.bin", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	fsys := New(store)
	f, err := fsys.Open("r.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := f.(*File)
	first := make([]byte, 3)
	if _, err := io.ReadFull(h, first); err != nil {
		t.Fatal(err)
	}
	at := make([]byte, 4)
	if n, err := h.ReadAt(at, 5); n != 4 || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if string(at) != "5678" {
		t.Fatalf("ReadAt data = %q", at)
	}
	rest := make([]byte, 7)
	if n, err := h.Read(rest); n != 7 || (err != nil && err != io.EOF) {
		t.Fatalf("Read after ReadAt = %d, %v", n, err)
	}
	if string(rest) != "3456789" {
		t.Fatalf("position disturbed by ReadAt: next read %q, want %q", rest, "3456789")
	}
	// Short ReadAt at the tail reports io.EOF per the contract.
	if n, err := h.ReadAt(at, 8); n != 2 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d, %v, want 2, io.EOF", n, err)
	}
}

func TestStandardErrors(t *testing.T) {
	store := newStore(t)
	if _, err := store.Create("real/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fsys := New(store)

	var pe *fs.PathError
	if _, err := fsys.Open("missing"); !errors.Is(err, fs.ErrNotExist) || !errors.As(err, &pe) || pe.Path != "missing" {
		t.Fatalf("Open(missing) = %v, want *fs.PathError wrapping fs.ErrNotExist", err)
	}
	if _, err := fsys.Open("../escape"); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("Open(../escape) = %v, want fs.ErrInvalid", err)
	}
	if _, err := fsys.ReadDir("real/file"); err == nil {
		t.Fatal("ReadDir on a plain file succeeded")
	}
	if _, err := fsys.ReadFile("real"); !errors.As(err, &pe) || !errors.Is(pe.Err, errIsDir) {
		t.Fatalf("ReadFile(dir) = %v, want is-a-directory PathError", err)
	}
	// Native store errors also satisfy the stdlib sentinels now.
	if _, _, err := store.Open("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("store.Open(missing) = %v, want errors.Is fs.ErrNotExist", err)
	}
	if _, err := store.Remove("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("store.Remove(missing) = %v, want errors.Is fs.ErrNotExist", err)
	}
	f, _, err := store.Open("real/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Close(); !errors.Is(err, fs.ErrClosed) {
		t.Fatalf("double close = %v, want errors.Is fs.ErrClosed", err)
	}
}

func TestDirHandlePagination(t *testing.T) {
	store := newStore(t)
	for _, name := range []string{"d/a", "d/b", "d/c"} {
		if _, err := store.Create(name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	fsys := New(store)
	f, err := fsys.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	dir := f.(*Dir)
	got := []string{}
	for {
		ents, err := dir.ReadDir(2)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			got = append(got, e.Name())
		}
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("paginated entries = %v", got)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.ReadDir(-1); !errors.Is(err, fs.ErrClosed) {
		t.Fatalf("ReadDir after close = %v, want fs.ErrClosed", err)
	}
}
