package stdfs

import (
	"errors"
	"io/fs"
	"testing"
	"testing/fstest"

	"repro/internal/fsim"
)

// TestWriteFSMutationSuite drives the facade's mutation extension the
// way a testing/fstest-style suite would: build a fixture tree entirely
// through WriteFS.Create, prove the result passes the stdlib
// conformance suite, then tear it down through Remove and prove every
// trace of it — files and the directories they implied — is gone.
func TestWriteFSMutationSuite(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	defer store.Close()
	var fsys WriteFS = New(store)

	fixture := map[string][]byte{
		"alpha.txt":          []byte("alpha"),
		"pkg/mod/go.sum":     []byte("h1:checksum"),
		"pkg/mod/go.mod":     []byte("module fixture"),
		"pkg/doc/readme.md":  []byte("# fixture"),
		"deep/a/b/c/leaf.go": []byte("package leaf"),
		"empty.bin":          nil,
	}
	names := make([]string, 0, len(fixture))
	for name, data := range fixture {
		if err := fsys.Create(name, data); err != nil {
			t.Fatalf("Create(%q): %v", name, err)
		}
		names = append(names, name)
	}

	// The tree built through the facade is a conforming filesystem.
	if err := fstest.TestFS(fsys, names...); err != nil {
		t.Fatal(err)
	}

	// Contents round-trip, and create-over-existing truncates.
	if got, err := fs.ReadFile(fsys, "alpha.txt"); err != nil || string(got) != "alpha" {
		t.Fatalf("ReadFile(alpha.txt) = %q, %v", got, err)
	}
	if err := fsys.Create("alpha.txt", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(fsys, "alpha.txt"); string(got) != "rewritten" {
		t.Fatalf("after truncating Create, ReadFile = %q", got)
	}

	// Tear down. Each removal must take its file with it; the last file
	// under a prefix takes the synthesized directory too.
	for _, name := range names {
		if err := fsys.Remove(name); err != nil {
			t.Fatalf("Remove(%q): %v", name, err)
		}
		if _, err := fsys.Open(name); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Open(%q) after Remove: %v, want fs.ErrNotExist", name, err)
		}
	}
	for _, dir := range []string{"pkg", "pkg/mod", "deep/a/b/c"} {
		if _, err := fs.ReadDir(fsys, dir); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("ReadDir(%q) after teardown: %v, want fs.ErrNotExist", dir, err)
		}
	}
	if entries, err := fs.ReadDir(fsys, "."); err != nil || len(entries) != 0 {
		t.Fatalf("root after teardown: %d entries, %v", len(entries), err)
	}
}

// TestWriteFSErrors pins the mutation extension's error discipline:
// invalid paths and the root are fs.ErrInvalid before touching the
// store, removing a missing file is fs.ErrNotExist, and every error is
// a *fs.PathError carrying the right Op and Path.
func TestWriteFSErrors(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	defer store.Close()
	fsys := New(store)

	for _, name := range []string{".", "../escape", "/abs", "a//b", ""} {
		if err := fsys.Create(name, nil); !errors.Is(err, fs.ErrInvalid) {
			t.Errorf("Create(%q) = %v, want fs.ErrInvalid", name, err)
		}
		if err := fsys.Remove(name); !errors.Is(err, fs.ErrInvalid) {
			t.Errorf("Remove(%q) = %v, want fs.ErrInvalid", name, err)
		}
	}

	err := fsys.Remove("never-created")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove(missing) = %v, want fs.ErrNotExist", err)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) || pe.Path != "never-created" {
		t.Fatalf("Remove(missing) = %#v, want *fs.PathError for the path", err)
	}

	// Mutations bill the facade ledger like the read side does.
	before := fsys.Cost()
	if err := fsys.Create("billed.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("billed.txt"); err != nil {
		t.Fatal(err)
	}
	if fsys.Cost() <= before {
		t.Fatalf("mutations did not bill the ledger: %v -> %v", before, fsys.Cost())
	}
}
