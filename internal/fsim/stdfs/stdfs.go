// Package stdfs adapts a fsim store to Go's standard filesystem
// interfaces: FS implements fs.FS, fs.ReadDirFS, fs.StatFS, and
// fs.ReadFileFS — plus this package's WriteFS mutation extension —
// over any fsim.Store (a *fsim.FileStore, a per-worker
// *fsim.Session, an OSStore, or any wrapper), and the handles it opens
// satisfy fs.File plus io.Reader, io.Writer, io.Seeker, and io.ReaderAt.
// Real Go code — http.FileServer, fs.WalkDir, archive/tar,
// testing/fstest — then runs against the simulator unmodified, which
// multiplies scenario diversity and gives an independent correctness
// oracle (the same program over os.DirFS or fstest.MapFS must observe
// the same behavior).
//
// Timing is not lost behind the standard signatures: every operation is
// still billed to the wrapped store — and so to the opening session's
// clock.Timeline lane — and the simulated durations accumulate in two
// out-of-band ledgers. FS.Cost sums everything billed through the
// facade; Cost(f) reports one handle's share (its open plus every
// read/write/seek/close so far). Wrap a *fsim.Session per worker and the
// facade inherits the session contract: max-over-lanes aggregate time,
// release-folds-into-the-floor, private disk-timing views.
//
// Directory semantics follow the prefix-listing approach over fsim's
// flat extent namespace: file names are /-separated fs.ValidPath paths,
// a directory exists exactly when some file lives under its prefix, and
// ReadDir synthesizes fs.DirEntry values in deterministic sorted order
// from the store's sorted Names(). Store names that are not valid fs
// paths are invisible through the facade (still reachable through the
// native API).
//
// Like fsim.Session and fsim.File, an FS over a session and the handles
// it opens must not be shared across goroutines; FS values over
// different sessions of one store may run fully in parallel.
package stdfs

import (
	"errors"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fsim"
)

// errIsDir marks directory misuse (reading a directory as a file).
var errIsDir = errors.New("is a directory")

// errNotDir marks ReadDir on a plain file.
var errNotDir = errors.New("not a directory")

// FS is the standard-library facade over a fsim store. The zero value is
// not usable; construct with New.
type FS struct {
	store fsim.Store
	// cost accumulates every simulated duration billed through this
	// facade, in nanoseconds. Atomic so a store shared by goroutines
	// (each via its own FS, or an OSStore) keeps an exact total.
	cost atomic.Int64
}

// WriteFS is the facade's mutation extension: the io/fs package defines
// no standard write-side interface, so suites that build and tear down
// fixtures through the facade (testing/fstest-style mutation suites,
// corpus installers) depend on this one. *FS implements it over any
// store; paths follow the same fs.ValidPath discipline as the read side,
// and both operations bill the facade ledger.
type WriteFS interface {
	fs.FS
	// Create makes (or truncates) the named file holding data.
	Create(name string, data []byte) error
	// Remove deletes the named file; removing a missing file reports
	// fs.ErrNotExist.
	Remove(name string) error
}

// Compile-time checks: the facade speaks the extended stdlib interfaces.
var (
	_ fs.FS         = (*FS)(nil)
	_ fs.ReadDirFS  = (*FS)(nil)
	_ fs.StatFS     = (*FS)(nil)
	_ fs.ReadFileFS = (*FS)(nil)
	_ WriteFS       = (*FS)(nil)
)

// New wraps store. For per-lane billing hand it a *fsim.Session; for the
// store's default lane hand it the *fsim.FileStore itself.
func New(store fsim.Store) *FS {
	return &FS{store: store}
}

// Cost returns the total simulated time billed through this facade so
// far: opens, reads, writes, seeks, closes, stats — everything the
// standard signatures cannot return inline.
func (fsys *FS) Cost() time.Duration { return time.Duration(fsys.cost.Load()) }

// bill adds a simulated duration to the facade ledger.
func (fsys *FS) bill(d time.Duration) {
	if d != 0 {
		fsys.cost.Add(int64(d))
	}
}

// Cost reports the simulated time billed to a handle this package
// opened — the open itself plus every operation since, including close.
// It returns false for handles from other filesystems.
func Cost(f fs.File) (time.Duration, bool) {
	switch h := f.(type) {
	case *File:
		return h.Cost(), true
	case *Dir:
		return h.cost, true
	}
	return 0, false
}

// Open opens the named file or synthesized directory.
func (fsys *FS) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	if name != "." {
		inner, d, err := fsys.store.Open(name)
		fsys.bill(d)
		if err == nil {
			return &File{fsys: fsys, inner: inner, name: name, cost: d}, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, pathError("open", name, err)
		}
	}
	entries, ok := fsys.listDir(name)
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &Dir{fsys: fsys, name: name, entries: entries}, nil
}

// ReadDir lists the named directory in sorted order.
func (fsys *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrInvalid}
	}
	entries, ok := fsys.listDir(name)
	if !ok {
		err := fs.ErrNotExist
		if fsys.store.Exists(name) {
			err = errNotDir
		}
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	return entries, nil
}

// Stat reports on the named file or directory. File stats go through the
// store (billed as a metadata lookup); directory stats are synthesized.
func (fsys *FS) Stat(name string) (fs.FileInfo, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrInvalid}
	}
	if name != "." {
		size, d, err := fsys.store.Stat(name)
		fsys.bill(d)
		if err == nil {
			return fileInfo{name: path.Base(name), size: size, mode: fileMode}, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, pathError("stat", name, err)
		}
		if !fsys.dirExists(name) {
			return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
		}
	}
	return fileInfo{name: path.Base(name), mode: dirMode}, nil
}

// ReadFile returns the named file's full contents, sized up front from
// the store's metadata so the common case is one allocation.
func (fsys *FS) ReadFile(name string) ([]byte, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	inner, d, err := fsys.store.Open(name)
	fsys.bill(d)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) && (name == "." || fsys.dirExists(name)) {
			return nil, &fs.PathError{Op: "read", Path: name, Err: errIsDir}
		}
		return nil, pathError("open", name, err)
	}
	buf := make([]byte, 0, inner.Size()+1)
	for {
		if len(buf) == cap(buf) {
			// The file grew past the provisioned size mid-read: extend.
			buf = append(buf, 0)[:len(buf)]
		}
		n, d, err := inner.Read(buf[len(buf):cap(buf)])
		fsys.bill(d)
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			cd, _ := inner.Close()
			fsys.bill(cd)
			return nil, pathError("read", name, err)
		}
	}
	cd, err := inner.Close()
	fsys.bill(cd)
	if err != nil {
		return nil, pathError("close", name, err)
	}
	return buf, nil
}

// Create makes (or truncates) the named file holding data, billed to
// the facade ledger like any read-side operation. Directories need no
// creating: they exist exactly while a file lives under their prefix.
func (fsys *FS) Create(name string, data []byte) error {
	if !fs.ValidPath(name) || name == "." {
		return &fs.PathError{Op: "create", Path: name, Err: fs.ErrInvalid}
	}
	d, err := fsys.store.Create(name, data)
	fsys.bill(d)
	if err != nil {
		return pathError("create", name, err)
	}
	return nil
}

// Remove deletes the named file. A directory vanishes with its last
// file; removing one directly (or a missing file) is fs.ErrNotExist.
func (fsys *FS) Remove(name string) error {
	if !fs.ValidPath(name) || name == "." {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrInvalid}
	}
	d, err := fsys.store.Remove(name)
	fsys.bill(d)
	if err != nil {
		return pathError("remove", name, err)
	}
	return nil
}

// dirExists reports whether any valid-path file lives under name/.
func (fsys *FS) dirExists(name string) bool {
	prefix := name + "/"
	for _, n := range fsys.store.Names() {
		if strings.HasPrefix(n, prefix) && fs.ValidPath(n) {
			return true
		}
	}
	return false
}

// listDir synthesizes the sorted entries of directory name from the
// store's flat namespace: immediate file children, plus one directory
// entry per distinct next path component. ok is false when the directory
// does not exist (no file under its prefix, and not the root).
func (fsys *FS) listDir(name string) ([]fs.DirEntry, bool) {
	prefix := ""
	if name != "." {
		prefix = name + "/"
	}
	var files []string
	dirs := make(map[string]bool)
	for _, n := range fsys.store.Names() {
		if !strings.HasPrefix(n, prefix) || !fs.ValidPath(n) {
			continue
		}
		rest := n[len(prefix):]
		if rest == "" {
			continue // a file named exactly like the directory; Open sees the file
		}
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			dirs[rest[:i]] = true
		} else {
			files = append(files, rest)
		}
	}
	if name != "." && len(files) == 0 && len(dirs) == 0 {
		return nil, false
	}
	entries := make([]fs.DirEntry, 0, len(files)+len(dirs))
	for _, f := range files {
		entries = append(entries, dirEntry{fsys: fsys, parent: name, base: f, mode: fileMode})
	}
	for d := range dirs {
		entries = append(entries, dirEntry{fsys: fsys, parent: name, base: d, mode: dirMode})
	}
	// Names() is sorted, but lexicographic order over full paths is not
	// entry order ("x.y" < "x/z" while entry "x" < "x.y"): sort by base.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	return entries, true
}

// pathError wraps err with op and path unless it already is a
// *fs.PathError for that path (the fsim stores return those natively).
func pathError(op, name string, err error) error {
	var pe *fs.PathError
	if errors.As(err, &pe) && pe.Path == name {
		return err
	}
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// Synthesized modes: regular files read-write, directories listable.
const (
	fileMode = fs.FileMode(0o644)
	dirMode  = fs.ModeDir | 0o755
)

// fileInfo is the synthesized fs.FileInfo for facade files and
// directories. The simulated store has no modification times; ModTime is
// the zero time, deterministically.
type fileInfo struct {
	name string
	size int64
	mode fs.FileMode
}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) Mode() fs.FileMode  { return fi.mode }
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.mode.IsDir() }
func (fi fileInfo) Sys() any           { return nil }

// dirEntry is a synthesized directory listing entry. File sizes are
// looked up lazily on Info, billed like any stat.
type dirEntry struct {
	fsys   *FS
	parent string
	base   string
	mode   fs.FileMode
}

var _ fs.DirEntry = dirEntry{}

func (e dirEntry) Name() string      { return e.base }
func (e dirEntry) IsDir() bool       { return e.mode.IsDir() }
func (e dirEntry) Type() fs.FileMode { return e.mode.Type() }

func (e dirEntry) Info() (fs.FileInfo, error) {
	if e.IsDir() {
		return fileInfo{name: e.base, mode: dirMode}, nil
	}
	return e.fsys.Stat(path.Join(e.parent, e.base))
}
