package stdfs

import (
	"io"
	"io/fs"
	"path"
	"time"
)

// Dir is an open handle on a synthesized directory: a snapshot of the
// prefix listing taken at open, served through the fs.ReadDirFile
// pagination contract. Directory operations run on the namespace only
// (fsim's untimed metadata views), so they bill nothing.
type Dir struct {
	fsys    *FS
	name    string
	entries []fs.DirEntry
	off     int
	cost    time.Duration
	closed  bool
}

var _ fs.ReadDirFile = (*Dir)(nil)

// Stat reports the directory's synthesized metadata.
func (d *Dir) Stat() (fs.FileInfo, error) {
	return fileInfo{name: path.Base(d.name), mode: dirMode}, nil
}

// Read fails: directories hold entries, not bytes.
func (d *Dir) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.name, Err: errIsDir}
}

// Close releases the handle.
func (d *Dir) Close() error {
	if d.closed {
		return &fs.PathError{Op: "close", Path: d.name, Err: fs.ErrClosed}
	}
	d.closed = true
	return nil
}

// ReadDir returns the next n entries of the open-time snapshot (all
// remaining when n <= 0), with io.EOF at the end per fs.ReadDirFile.
func (d *Dir) ReadDir(n int) ([]fs.DirEntry, error) {
	if d.closed {
		return nil, &fs.PathError{Op: "readdir", Path: d.name, Err: fs.ErrClosed}
	}
	rest := d.entries[d.off:]
	if n <= 0 {
		d.off = len(d.entries)
		return append([]fs.DirEntry(nil), rest...), nil
	}
	if len(rest) == 0 {
		return nil, io.EOF
	}
	if n > len(rest) {
		n = len(rest)
	}
	d.off += n
	return append([]fs.DirEntry(nil), rest[:n]...), nil
}
