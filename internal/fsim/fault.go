package fsim

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the error FaultStore returns when a scheduled fault
// fires.
var ErrInjected = errors.New("fsim: injected fault")

// FaultStore wraps a Store and fails operations on a schedule — the
// failure-injection substrate the benchmark and replay tests use to
// verify error paths. The zero schedule injects nothing.
//
// Two schedules are available. NewFaultStore's every-Nth counter fails
// the FailEvery'th operation across all operations (Create, Open,
// Remove, and every File operation on handles the store opened), then
// the counter continues. NewSeededFaultStore rolls an InjectSpec's
// deterministic xorshift64 hash per operation instead: targeted op
// classes fault with 1-in-Rate incidence up to the spec's budget, so a
// long replay sprinkles a bounded, seed-reproducible fault set instead
// of a fixed cadence.
type FaultStore struct {
	inner Store

	mu        sync.Mutex
	ops       int64
	failEvery int64
	spec      InjectSpec
	budget    int64 // remaining seeded-mode faults; -1 unlimited
	injected  int64
}

// NewFaultStore wraps inner, failing every failEvery'th operation
// (0 disables injection).
func NewFaultStore(inner Store, failEvery int64) *FaultStore {
	if failEvery < 0 {
		failEvery = 0
	}
	return &FaultStore{inner: inner, failEvery: failEvery}
}

// NewSeededFaultStore wraps inner with spec's deterministic seeded
// schedule: each operation whose class spec.Ops targets rolls the
// xorshift64 hash keyed on (seed, op index) and fails on a 1-in-Rate
// hit, up to spec.Budget total injections (0 = unlimited).
func NewSeededFaultStore(inner Store, spec InjectSpec) *FaultStore {
	budget := int64(-1)
	if spec.Budget > 0 {
		budget = spec.Budget
	}
	return &FaultStore{inner: inner, spec: spec, budget: budget}
}

var _ Store = (*FaultStore)(nil)

// Injected returns how many faults have fired.
func (s *FaultStore) Injected() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// shouldFail advances the operation counter and reports whether this
// operation is scheduled to fail. The every-Nth path is checked first
// and behaves exactly as it always has; the seeded path rolls the
// spec's hash on the global op index.
func (s *FaultStore) shouldFail(op OpKind) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failEvery != 0 {
		s.ops++
		if s.ops%s.failEvery == 0 {
			s.injected++
			return true
		}
		return false
	}
	if s.spec.Rate == 0 {
		return false
	}
	s.ops++
	if !s.spec.Ops.Has(op) || s.budget == 0 {
		return false
	}
	if fire, _ := s.spec.roll(0, uint64(s.ops), 0); fire {
		s.injected++
		if s.budget > 0 {
			s.budget--
		}
		return true
	}
	return false
}

// Create passes through unless a fault fires.
func (s *FaultStore) Create(name string, data []byte) (time.Duration, error) {
	if s.shouldFail(OpCreate) {
		return 0, ErrInjected
	}
	return s.inner.Create(name, data)
}

// Open passes through unless a fault fires.
func (s *FaultStore) Open(name string) (File, time.Duration, error) {
	if s.shouldFail(OpOpen) {
		return nil, 0, ErrInjected
	}
	f, dur, err := s.inner.Open(name)
	if err != nil {
		return nil, dur, err
	}
	return &faultFile{inner: f, store: s}, dur, nil
}

// Remove passes through unless a fault fires.
func (s *FaultStore) Remove(name string) (time.Duration, error) {
	if s.shouldFail(OpRemove) {
		return 0, ErrInjected
	}
	return s.inner.Remove(name)
}

// Stat passes through unless a fault fires.
func (s *FaultStore) Stat(name string) (int64, time.Duration, error) {
	if s.shouldFail(OpStat) {
		return 0, 0, ErrInjected
	}
	return s.inner.Stat(name)
}

// Exists passes through (metadata probes do not consume fault budget).
func (s *FaultStore) Exists(name string) bool { return s.inner.Exists(name) }

// Names passes through.
func (s *FaultStore) Names() []string { return s.inner.Names() }

// faultFile interposes on handle operations.
type faultFile struct {
	inner File
	store *FaultStore
}

var _ File = (*faultFile)(nil)

func (f *faultFile) Read(p []byte) (int, time.Duration, error) {
	if f.store.shouldFail(OpRead) {
		return 0, 0, ErrInjected
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, time.Duration, error) {
	if f.store.shouldFail(OpWrite) {
		return 0, 0, ErrInjected
	}
	return f.inner.Write(p)
}

func (f *faultFile) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	if f.store.shouldFail(OpSeek) {
		return 0, 0, ErrInjected
	}
	return f.inner.SeekTo(offset, whence)
}

func (f *faultFile) Close() (time.Duration, error) {
	// Close never injects: resources must stay releasable.
	return f.inner.Close()
}

func (f *faultFile) Size() int64  { return f.inner.Size() }
func (f *faultFile) Name() string { return f.inner.Name() }
