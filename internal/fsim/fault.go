package fsim

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the error FaultStore returns when a scheduled fault
// fires.
var ErrInjected = errors.New("fsim: injected fault")

// FaultStore wraps a Store and fails operations on a schedule — the
// failure-injection substrate the benchmark and replay tests use to
// verify error paths. The zero schedule injects nothing.
//
// Faults are counted across all operations (Create, Open, Remove, and
// every File operation on handles the store opened): the FailEvery'th
// operation fails, then the counter continues.
type FaultStore struct {
	inner Store

	mu        sync.Mutex
	ops       int64
	failEvery int64
	injected  int64
}

// NewFaultStore wraps inner, failing every failEvery'th operation
// (0 disables injection).
func NewFaultStore(inner Store, failEvery int64) *FaultStore {
	if failEvery < 0 {
		failEvery = 0
	}
	return &FaultStore{inner: inner, failEvery: failEvery}
}

var _ Store = (*FaultStore)(nil)

// Injected returns how many faults have fired.
func (s *FaultStore) Injected() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// shouldFail advances the operation counter and reports whether this
// operation is scheduled to fail.
func (s *FaultStore) shouldFail() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failEvery == 0 {
		return false
	}
	s.ops++
	if s.ops%s.failEvery == 0 {
		s.injected++
		return true
	}
	return false
}

// Create passes through unless a fault fires.
func (s *FaultStore) Create(name string, data []byte) (time.Duration, error) {
	if s.shouldFail() {
		return 0, ErrInjected
	}
	return s.inner.Create(name, data)
}

// Open passes through unless a fault fires.
func (s *FaultStore) Open(name string) (File, time.Duration, error) {
	if s.shouldFail() {
		return nil, 0, ErrInjected
	}
	f, dur, err := s.inner.Open(name)
	if err != nil {
		return nil, dur, err
	}
	return &faultFile{inner: f, store: s}, dur, nil
}

// Remove passes through unless a fault fires.
func (s *FaultStore) Remove(name string) (time.Duration, error) {
	if s.shouldFail() {
		return 0, ErrInjected
	}
	return s.inner.Remove(name)
}

// Stat passes through unless a fault fires.
func (s *FaultStore) Stat(name string) (int64, time.Duration, error) {
	if s.shouldFail() {
		return 0, 0, ErrInjected
	}
	return s.inner.Stat(name)
}

// Exists passes through (metadata probes do not consume fault budget).
func (s *FaultStore) Exists(name string) bool { return s.inner.Exists(name) }

// Names passes through.
func (s *FaultStore) Names() []string { return s.inner.Names() }

// faultFile interposes on handle operations.
type faultFile struct {
	inner File
	store *FaultStore
}

var _ File = (*faultFile)(nil)

func (f *faultFile) Read(p []byte) (int, time.Duration, error) {
	if f.store.shouldFail() {
		return 0, 0, ErrInjected
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, time.Duration, error) {
	if f.store.shouldFail() {
		return 0, 0, ErrInjected
	}
	return f.inner.Write(p)
}

func (f *faultFile) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	if f.store.shouldFail() {
		return 0, 0, ErrInjected
	}
	return f.inner.SeekTo(offset, whence)
}

func (f *faultFile) Close() (time.Duration, error) {
	// Close never injects: resources must stay releasable.
	return f.inner.Close()
}

func (f *faultFile) Size() int64  { return f.inner.Size() }
func (f *faultFile) Name() string { return f.inner.Name() }
