// Device-fault injection and the session recovery policy.
//
// Two fault layers compose here. Config.Faults is a simdisk.FaultPlan:
// scheduled device faults (slowdowns, latent sectors, whole-device
// failure) applied to every disk view the store builds, which surface
// as degraded-mode timing inside the array — the RAID layer absorbs
// them. Config.Inject is op-level injection: a deterministic seeded
// roll per session operation that models the residue redundancy cannot
// hide (transport errors, controller resets), which sessions recover
// from with bounded retries and simulated-time exponential backoff
// (Config.Retry). Both layers are pure functions of configuration and
// virtual time, so faulted replays are bit-identical run to run.
package fsim

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simdisk"
)

// OpKind names a session operation class for fault targeting.
type OpKind int

// Operation classes. Close is deliberately absent: resources must stay
// releasable, so close never injects.
const (
	OpOpen OpKind = iota
	OpCreate
	OpRemove
	OpStat
	OpRead
	OpWrite
	OpSeek
	numOpKinds
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpRemove:
		return "remove"
	case OpStat:
		return "stat"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSeek:
		return "seek"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// OpMask selects operation classes. The zero mask selects every class,
// so a spec that only sets a rate targets all operations.
type OpMask uint32

// Has reports whether the mask selects k.
func (m OpMask) Has(k OpKind) bool { return m == 0 || m&(1<<uint(k)) != 0 }

// MaskOf builds a mask selecting exactly the given kinds.
func MaskOf(kinds ...OpKind) OpMask {
	var m OpMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// ParseOpMask parses "read|write|open"-style lists. Empty means all.
func ParseOpMask(s string) (OpMask, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return 0, nil
	}
	var m OpMask
	for _, name := range strings.Split(s, "|") {
		found := false
		for k := OpKind(0); k < numOpKinds; k++ {
			if k.String() == strings.TrimSpace(name) {
				m |= 1 << uint(k)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("fsim: unknown op kind %q", name)
		}
	}
	return m, nil
}

// InjectSpec schedules deterministic op-level fault injection: each
// targeted session operation rolls a seeded xorshift64 hash keyed on
// (seed, session, op index, attempt) and faults on a 1-in-Rate hit.
// The schedule is stateless — a pure function of the key — so replays
// are bit-identical whatever the goroutine interleaving.
type InjectSpec struct {
	// Seed keys the hash; distinct seeds draw distinct schedules.
	Seed uint64
	// Rate is the mean 1-in-N fault incidence per targeted op; 0 disables
	// injection entirely, 1 faults every roll.
	Rate uint64
	// Permanent makes 1-in-N of injected faults permanent (unretryable);
	// 0 means every injected fault is transient.
	Permanent uint64
	// Budget caps how many faults inject per session (0 = unlimited).
	// A finite budget makes hand-computed recovery timings possible.
	Budget int64
	// Ops targets operation classes; the zero mask targets all.
	Ops OpMask
}

// Enabled reports whether the spec injects anything.
func (s InjectSpec) Enabled() bool { return s.Rate > 0 }

// Validate reports the first problem with the spec, or nil.
func (s InjectSpec) Validate() error {
	if s.Budget < 0 {
		return fmt.Errorf("fsim: inject budget %d must be non-negative", s.Budget)
	}
	return nil
}

// roll decides whether the (session, op, attempt) key faults, and if so
// whether permanently. The hash follows the repository's xorshift64
// convention (the reservoir-sampling streams use the same steps).
func (s InjectSpec) roll(session int64, op uint64, attempt int) (fire, permanent bool) {
	if s.Rate == 0 {
		return false, false
	}
	x := faultMix(s.Seed, uint64(session), op, uint64(attempt))
	if x%s.Rate != 0 {
		return false, false
	}
	if s.Permanent == 0 {
		return true, false
	}
	y := faultMix(s.Seed^0xD6E8FEB86659FD93, uint64(session), op, uint64(attempt))
	return true, y%s.Permanent == 0
}

// faultMix hashes the roll key with odd-constant multiplies and the
// xorshift64 triple-shift; the +1 keeps the all-zero key away from the
// xorshift fixed point.
func faultMix(seed, session, op, attempt uint64) uint64 {
	x := seed*0x9E3779B97F4A7C15 + session*0xBF58476D1CE4E5B9 + op*0x94D049BB133111EB + attempt + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// RetryPolicy bounds a session's recovery from transient injected
// faults: up to Max retries, the k'th preceded by a simulated-time
// backoff of Base<<(k-1). The zero policy never retries — the first
// transient fault propagates.
type RetryPolicy struct {
	Max  int
	Base time.Duration
}

// Validate reports the first problem with the policy, or nil.
func (p RetryPolicy) Validate() error {
	if p.Max < 0 {
		return fmt.Errorf("fsim: retry max %d must be non-negative", p.Max)
	}
	if p.Base < 0 {
		return fmt.Errorf("fsim: retry base %v must be non-negative", p.Base)
	}
	if p.Max > 62 {
		return fmt.Errorf("fsim: retry max %d overflows the backoff shift", p.Max)
	}
	return nil
}

// RecoveryStats counts a session's (or store's) fault-recovery
// activity: faults injected, retries spent, operations that recovered
// after at least one fault, and operations that failed for good.
type RecoveryStats struct {
	Injected  int64
	Retried   int64
	Recovered int64
	Failed    int64
}

// Add accumulates other into s.
func (s *RecoveryStats) Add(other RecoveryStats) {
	s.Injected += other.Injected
	s.Retried += other.Retried
	s.Recovered += other.Recovered
	s.Failed += other.Failed
}

// Sub returns the counter deltas s - other, the windowed view over a
// cumulative tally (e.g. one replay's share of a store's running total).
func (s RecoveryStats) Sub(other RecoveryStats) RecoveryStats {
	return RecoveryStats{
		Injected:  s.Injected - other.Injected,
		Retried:   s.Retried - other.Retried,
		Recovered: s.Recovered - other.Recovered,
		Failed:    s.Failed - other.Failed,
	}
}

// Any reports whether anything was injected.
func (s RecoveryStats) Any() bool { return s.Injected != 0 }

// FaultError is the typed unrecoverable error a session op returns when
// injection defeats the retry policy: either the fault was permanent or
// the retries ran out. It unwraps to ErrInjected, so existing
// errors.Is(err, ErrInjected) checks keep working.
type FaultError struct {
	Op OpKind
	// Permanent distinguishes an unretryable fault from retry exhaustion.
	Permanent bool
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.Permanent {
		return fmt.Sprintf("fsim: permanent injected fault on %s", e.Op)
	}
	return fmt.Sprintf("fsim: injected fault on %s: retries exhausted", e.Op)
}

// Unwrap ties the typed error to the ErrInjected sentinel.
func (e *FaultError) Unwrap() error { return ErrInjected }

// recCounters is the session-side recovery tally. Fields are atomic so
// aggregate snapshots (RecoveryStats during a live run) never race the
// owning goroutine's updates.
type recCounters struct {
	injected, retried, recovered, failed atomic.Int64
}

func (c *recCounters) snapshot() RecoveryStats {
	return RecoveryStats{
		Injected:  c.injected.Load(),
		Retried:   c.retried.Load(),
		Recovered: c.recovered.Load(),
		Failed:    c.failed.Load(),
	}
}

// opStart runs the injection gate for one session operation. It returns
// the (possibly backoff-delayed) virtual start time for the operation
// body, or a *FaultError when injection defeats the retry policy —
// either way the failed attempts' backoff is already billed: the lane's
// clock sits at the returned time. With injection disabled it is a
// single branch returning now unchanged, preserving byte-identity.
func (sess *Session) opStart(now time.Time, op OpKind) (time.Time, error) {
	if !sess.injectable {
		return now, nil
	}
	pen, err := sess.injectGate(op)
	if pen > 0 {
		now = now.Add(pen)
		sess.clk.Set(now)
	}
	return now, err
}

// injectGate rolls the fault schedule for the session's next operation
// and walks the retry loop on a hit: each transient fault consumes one
// retry and bills an exponential backoff; a permanent fault or retry
// exhaustion fails the operation. The per-session budget bounds how
// many faults can fire, which both keeps long replays mostly healthy
// and makes recovery timings hand-computable in tests.
func (sess *Session) injectGate(op OpKind) (time.Duration, error) {
	spec := &sess.store.cfg.Inject
	if !spec.Ops.Has(op) {
		return 0, nil
	}
	n := sess.opSeq
	sess.opSeq++
	retry := sess.store.cfg.Retry
	var pen time.Duration
	faulted := false
	for attempt := 0; ; attempt++ {
		if sess.budget == 0 {
			break // budget spent: the schedule is exhausted for this session
		}
		fire, perm := spec.roll(sess.id, n, attempt)
		if !fire {
			break
		}
		faulted = true
		sess.rec.injected.Add(1)
		if sess.budget > 0 {
			sess.budget--
		}
		if perm || attempt >= retry.Max {
			sess.rec.failed.Add(1)
			return pen, &FaultError{Op: op, Permanent: perm}
		}
		sess.rec.retried.Add(1)
		pen += retry.Base << uint(attempt)
	}
	if faulted {
		sess.rec.recovered.Add(1)
	}
	return pen, nil
}

// Recovery snapshots this session's fault-recovery counters.
func (sess *Session) Recovery() RecoveryStats { return sess.rec.snapshot() }

// RecoveryStats sums fault-recovery counters across every live session
// and the retired totals of released ones.
func (s *FileStore) RecoveryStats() RecoveryStats {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	total := s.retiredRec
	for _, sess := range s.sessions {
		total.Add(sess.rec.snapshot())
	}
	return total
}

// ParseInjectSpec parses "seed=7,rate=40,budget=4,perm=100,ops=read|write".
// Unset keys keep their zero values; an empty string is the zero spec.
func ParseInjectSpec(s string) (InjectSpec, error) {
	var spec InjectSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("fsim: inject spec %q: want key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "rate":
			spec.Rate, err = strconv.ParseUint(val, 10, 64)
		case "perm":
			spec.Permanent, err = strconv.ParseUint(val, 10, 64)
		case "budget":
			spec.Budget, err = strconv.ParseInt(val, 10, 64)
		case "ops":
			spec.Ops, err = ParseOpMask(val)
		default:
			return spec, fmt.Errorf("fsim: inject spec: unknown key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("fsim: inject spec %q: %w", kv, err)
		}
	}
	return spec, spec.Validate()
}

// ParseRetrySpec parses "max=3,base=50us". Empty is the zero policy.
func ParseRetrySpec(s string) (RetryPolicy, error) {
	var p RetryPolicy
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("fsim: retry spec %q: want key=value", kv)
		}
		var err error
		switch key {
		case "max":
			p.Max, err = strconv.Atoi(val)
		case "base":
			p.Base, err = time.ParseDuration(val)
		default:
			return p, fmt.Errorf("fsim: retry spec: unknown key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("fsim: retry spec %q: %w", kv, err)
		}
	}
	return p, p.Validate()
}

// Process-wide fault defaults, pushed by core.SetOptions the same way
// the disk-queue mode is: DefaultConfig folds them in, so registry
// experiments and servers pick up a configured fault regime without
// threading it through every construction site.
var (
	faultDefMu     sync.Mutex
	defFaultPlan   *simdisk.FaultPlan
	defInjectSpec  InjectSpec
	defRetryPolicy RetryPolicy
	defSpares      int
)

// SetDefaultFaults installs the process-default device fault plan.
func SetDefaultFaults(plan *simdisk.FaultPlan) {
	faultDefMu.Lock()
	defFaultPlan = plan
	faultDefMu.Unlock()
}

// DefaultFaults returns the process-default device fault plan.
func DefaultFaults() *simdisk.FaultPlan {
	faultDefMu.Lock()
	defer faultDefMu.Unlock()
	return defFaultPlan
}

// SetDefaultInject installs the process-default op-injection spec.
func SetDefaultInject(spec InjectSpec) {
	faultDefMu.Lock()
	defInjectSpec = spec
	faultDefMu.Unlock()
}

// DefaultInject returns the process-default op-injection spec.
func DefaultInject() InjectSpec {
	faultDefMu.Lock()
	defer faultDefMu.Unlock()
	return defInjectSpec
}

// SetDefaultRetry installs the process-default retry policy.
func SetDefaultRetry(p RetryPolicy) {
	faultDefMu.Lock()
	defRetryPolicy = p
	faultDefMu.Unlock()
}

// DefaultRetry returns the process-default retry policy.
func DefaultRetry() RetryPolicy {
	faultDefMu.Lock()
	defer faultDefMu.Unlock()
	return defRetryPolicy
}

// SetDefaultSpares installs the process-default hot-spare pool size.
func SetDefaultSpares(n int) {
	faultDefMu.Lock()
	defSpares = n
	faultDefMu.Unlock()
}

// DefaultSpares returns the process-default hot-spare pool size.
func DefaultSpares() int {
	faultDefMu.Lock()
	defer faultDefMu.Unlock()
	return defSpares
}
