package fsim

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func newOSStore(t *testing.T) *OSStore {
	t.Helper()
	s, err := NewOSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOSStoreRoundTrip(t *testing.T) {
	s := newOSStore(t)
	want := []byte("real bytes on a real disk")
	if _, err := s.Create("f.bin", want); err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Open("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	n, dur, err := f.Read(got)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got[:n], want)
	}
	if dur < 0 {
		t.Fatal("negative duration")
	}
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOSStoreMissing(t *testing.T) {
	s := newOSStore(t)
	if _, _, err := s.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if s.Exists("nope") {
		t.Fatal("Exists(true) for missing file")
	}
}

func TestOSStoreSeekWrite(t *testing.T) {
	s := newOSStore(t)
	s.Create("sw", make([]byte, 16))
	f, _, err := s.Open("sw")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if pos, _, err := f.SeekTo(8, io.SeekStart); err != nil || pos != 8 {
		t.Fatalf("seek: pos=%d err=%v", pos, err)
	}
	if _, _, err := f.Write([]byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	f.SeekTo(8, io.SeekStart)
	b := make([]byte, 1)
	f.Read(b)
	if b[0] != 0xAA {
		t.Fatalf("read back %x", b[0])
	}
	if f.Size() != 16 {
		t.Fatalf("Size = %d, want 16", f.Size())
	}
}

func TestOSStoreDoubleClose(t *testing.T) {
	s := newOSStore(t)
	s.Create("dc", nil)
	f, _, _ := s.Open("dc")
	f.Close()
	if _, err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestOSStoreNames(t *testing.T) {
	s := newOSStore(t)
	s.Create("b", nil)
	s.Create("a", nil)
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestOSStoreNameEscapesConfined(t *testing.T) {
	s := newOSStore(t)
	// A name trying to escape the root must stay inside it.
	if _, err := s.Create("../../escape", []byte("x")); err != nil {
		t.Fatalf("create: %v", err)
	}
	if !s.Exists("../../escape") {
		t.Fatal("confined name not found via same name")
	}
}
