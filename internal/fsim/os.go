package fsim

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/clock"
)

// OSStore is the Store implementation backed by a real directory on the
// host filesystem, timed with the real clock. Benchmarks run against it
// when genuine OS I/O is wanted (the numbers are then hardware-dependent
// and non-deterministic, like the paper's own).
type OSStore struct {
	dir string
	clk clock.Clock
}

// NewOSStore returns a store rooted at dir, creating it if needed.
func NewOSStore(dir string) (*OSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fsim: creating store dir: %w", err)
	}
	return &OSStore{dir: dir, clk: clock.RealClock{}}, nil
}

// path maps a store name to a host path, rejecting escapes from the root.
func (s *OSStore) path(name string) (string, error) {
	p := filepath.Join(s.dir, filepath.Clean("/"+name))
	return p, nil
}

// Create writes data to the named file.
func (s *OSStore) Create(name string, data []byte) (time.Duration, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, err
	}
	start := s.clk.Now()
	err = os.WriteFile(p, data, 0o644)
	return s.clk.Now().Sub(start), err
}

// Open opens the named file for reading and writing.
func (s *OSStore) Open(name string) (File, time.Duration, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, 0, err
	}
	start := s.clk.Now()
	f, err := os.OpenFile(p, os.O_RDWR, 0o644)
	elapsed := s.clk.Now().Sub(start)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, elapsed, &fs.PathError{Op: "open", Path: name, Err: ErrNotExist}
		}
		return nil, elapsed, err
	}
	return &osFile{f: f, name: name, clk: s.clk}, elapsed, nil
}

// Remove deletes the named file.
func (s *OSStore) Remove(name string) (time.Duration, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, err
	}
	start := s.clk.Now()
	err = os.Remove(p)
	elapsed := s.clk.Now().Sub(start)
	if os.IsNotExist(err) {
		return elapsed, &fs.PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	return elapsed, err
}

// Stat reports the named file's size, timed with the real clock.
func (s *OSStore) Stat(name string) (int64, time.Duration, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, 0, err
	}
	start := s.clk.Now()
	info, err := os.Stat(p)
	elapsed := s.clk.Now().Sub(start)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, elapsed, &fs.PathError{Op: "stat", Path: name, Err: ErrNotExist}
		}
		return 0, elapsed, err
	}
	return info.Size(), elapsed, nil
}

// Exists reports whether the named file exists.
func (s *OSStore) Exists(name string) bool {
	p, err := s.path(name)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Names returns the sorted names of regular files in the store.
func (s *OSStore) Names() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

var _ Store = (*OSStore)(nil)

// osFile adapts *os.File to the timed File interface.
type osFile struct {
	f      *os.File
	name   string
	clk    clock.Clock
	closed bool
}

var _ File = (*osFile)(nil)

func (f *osFile) Name() string { return f.name }

func (f *osFile) Size() int64 {
	info, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

func (f *osFile) Read(p []byte) (int, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	start := f.clk.Now()
	n, err := f.f.Read(p)
	return n, f.clk.Now().Sub(start), err
}

func (f *osFile) Write(p []byte) (int, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	start := f.clk.Now()
	n, err := f.f.Write(p)
	return n, f.clk.Now().Sub(start), err
}

func (f *osFile) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	start := f.clk.Now()
	pos, err := f.f.Seek(offset, whence)
	return pos, f.clk.Now().Sub(start), err
}

func (f *osFile) Close() (time.Duration, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.closed = true
	start := f.clk.Now()
	err := f.f.Close()
	return f.clk.Now().Sub(start), err
}
