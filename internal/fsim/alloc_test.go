package fsim

import (
	"io"
	"testing"
)

// TestWarmReadZeroAllocs pins the full warm read path — seek, file
// lock, data copy, cache bulk lookup, virtual clock — at zero heap
// allocations per operation. This is the replay engine's hot loop; an
// allocation here multiplies across every record of every trace.
func TestWarmReadZeroAllocs(t *testing.T) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.Create("f", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	f.Read(buf) // warm
	allocs := testing.AllocsPerRun(100, func() {
		f.SeekTo(0, io.SeekStart)
		f.Read(buf)
	})
	if allocs != 0 {
		t.Fatalf("warm read allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWarmSparseReadZeroAllocs is the same pin for the sparse sample
// file the trace benchmarks actually replay against (reads zero-fill
// instead of copying).
func TestWarmSparseReadZeroAllocs(t *testing.T) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.CreateSized("big", 1<<30); err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	f.Read(buf) // warm
	allocs := testing.AllocsPerRun(100, func() {
		f.SeekTo(0, io.SeekStart)
		f.Read(buf)
	})
	if allocs != 0 {
		t.Fatalf("warm sparse read allocates %.1f objects/op, want 0", allocs)
	}
}
