package fsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simdisk"
)

// TestRetryBackoffBilling pins the recovery arithmetic end to end with a
// hand-computed schedule: Rate=1 fires on every roll, Budget=2 allows
// exactly two faults, and Retry{Max:3, Base:1ms} absorbs them — the op
// recovers on its third attempt after backoffs of 1ms and 2ms, so its
// duration is the healthy cost plus exactly 3ms of simulated backoff.
func TestRetryBackoffBilling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = InjectSpec{Seed: 7, Rate: 1, Budget: 2}
	cfg.Retry = RetryPolicy{Max: 3, Base: time.Millisecond}
	store := MustNewFileStore(cfg)
	defer store.Close()
	if _, err := store.Create("f", nil); err != nil {
		t.Fatal(err)
	}

	sess := store.NewSession()
	defer sess.Release()
	_, dur, err := sess.Stat("f")
	if err != nil {
		t.Fatalf("recovered op returned error: %v", err)
	}
	want := cfg.OpenCost + 1*time.Millisecond + 2*time.Millisecond
	if dur != want {
		t.Fatalf("recovered Stat duration %v, want %v (OpenCost + 1ms + 2ms)", dur, want)
	}
	rec := sess.Recovery()
	if rec != (RecoveryStats{Injected: 2, Retried: 2, Recovered: 1}) {
		t.Fatalf("recovery stats %+v, want Injected=2 Retried=2 Recovered=1", rec)
	}

	// The budget is spent: the next op is healthy and bills no backoff.
	_, dur, err = sess.Stat("f")
	if err != nil || dur != cfg.OpenCost {
		t.Fatalf("post-budget Stat = (%v, %v), want (%v, nil)", dur, err, cfg.OpenCost)
	}
}

// TestRetryExhaustionFails pins the give-up path: with an unlimited
// budget and Rate=1, every retry faults again, so after Max retries the
// op fails with a typed transient FaultError — and the spent backoff is
// still billed on the lane.
func TestRetryExhaustionFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = InjectSpec{Seed: 1, Rate: 1}
	cfg.Retry = RetryPolicy{Max: 2, Base: time.Millisecond}
	store := MustNewFileStore(cfg)
	defer store.Close()
	if _, err := store.Create("f", nil); err != nil {
		t.Fatal(err)
	}

	sess := store.NewSession()
	defer sess.Release()
	before := sess.Clock().Now()
	_, dur, err := sess.Stat("f")
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Permanent {
		t.Fatalf("want transient *FaultError, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("FaultError should unwrap to ErrInjected")
	}
	want := 1*time.Millisecond + 2*time.Millisecond
	if dur != want {
		t.Fatalf("failed Stat duration %v, want %v (two backoffs, no body)", dur, want)
	}
	if got := sess.Clock().Now().Sub(before); got != want {
		t.Fatalf("lane advanced %v, want %v", got, want)
	}
	rec := sess.Recovery()
	if rec != (RecoveryStats{Injected: 3, Retried: 2, Failed: 1}) {
		t.Fatalf("recovery stats %+v, want Injected=3 Retried=2 Failed=1", rec)
	}
}

// TestPermanentFaultSkipsRetries pins that a permanent fault fails
// immediately, whatever the retry policy allows.
func TestPermanentFaultSkipsRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = InjectSpec{Seed: 3, Rate: 1, Permanent: 1, Budget: 1}
	cfg.Retry = RetryPolicy{Max: 5, Base: time.Millisecond}
	store := MustNewFileStore(cfg)
	defer store.Close()
	if _, err := store.Create("f", nil); err != nil {
		t.Fatal(err)
	}

	sess := store.NewSession()
	defer sess.Release()
	_, dur, err := sess.Stat("f")
	var fe *FaultError
	if !errors.As(err, &fe) || !fe.Permanent {
		t.Fatalf("want permanent *FaultError, got %v", err)
	}
	if dur != 0 {
		t.Fatalf("permanent fault billed %v, want 0 (no retries attempted)", dur)
	}
	if rec := sess.Recovery(); rec != (RecoveryStats{Injected: 1, Failed: 1}) {
		t.Fatalf("recovery stats %+v, want Injected=1 Failed=1", rec)
	}
}

// TestDefaultSessionNeverInjects pins that provisioning traffic through
// the store's default lane stays clean even under Rate=1 injection.
func TestDefaultSessionNeverInjects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = InjectSpec{Seed: 9, Rate: 1}
	store := MustNewFileStore(cfg)
	defer store.Close()
	for i := 0; i < 8; i++ {
		if _, err := store.Create("f", []byte("x")); err != nil {
			t.Fatalf("default-lane create %d: %v", i, err)
		}
		if _, _, err := store.Stat("f"); err != nil {
			t.Fatalf("default-lane stat %d: %v", i, err)
		}
	}
	if rec := store.RecoveryStats(); rec.Any() {
		t.Fatalf("default lane injected: %+v", rec)
	}
}

// TestReleaseFoldsRecoveryStats pins that a released session's tally
// survives in the store aggregate.
func TestReleaseFoldsRecoveryStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = InjectSpec{Seed: 7, Rate: 1, Budget: 1}
	cfg.Retry = RetryPolicy{Max: 1, Base: time.Microsecond}
	store := MustNewFileStore(cfg)
	defer store.Close()
	if _, err := store.Create("f", nil); err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	if _, _, err := sess.Stat("f"); err != nil {
		t.Fatal(err)
	}
	want := sess.Recovery()
	if !want.Any() {
		t.Fatalf("expected injection before release")
	}
	sess.Release()
	if got := store.RecoveryStats(); got != want {
		t.Fatalf("store recovery %+v after release, want %+v", got, want)
	}
}

// TestSeededFaultStore pins the FaultStore's seeded mode: the schedule
// is budget-bounded, reproducible for a seed, different across seeds,
// and the legacy every-Nth counter is untouched.
func TestSeededFaultStore(t *testing.T) {
	run := func(spec InjectSpec) []int {
		store := MustNewFileStore(DefaultConfig())
		defer store.Close()
		if _, err := store.Create("f", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		fs := NewSeededFaultStore(store, spec)
		var failedAt []int
		for i := 0; i < 200; i++ {
			if _, _, err := fs.Stat("f"); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("op %d: %v", i, err)
				}
				failedAt = append(failedAt, i)
			}
		}
		return failedAt
	}
	spec := InjectSpec{Seed: 42, Rate: 10, Budget: 5}
	a := run(spec)
	b := run(spec)
	if len(a) == 0 || len(a) > 5 {
		t.Fatalf("seeded schedule fired %d times, want 1..5 (budget)", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("seeded schedule not reproducible: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedule diverged at %d: %v vs %v", i, a, b)
		}
	}
	other := run(InjectSpec{Seed: 43, Rate: 10, Budget: 5})
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("distinct seeds drew identical schedules: %v", a)
	}

	// Per-op-type targeting: a write-only mask never fails stats.
	store := MustNewFileStore(DefaultConfig())
	defer store.Close()
	if _, err := store.Create("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	masked := NewSeededFaultStore(store, InjectSpec{Seed: 42, Rate: 1, Ops: MaskOf(OpWrite)})
	for i := 0; i < 50; i++ {
		if _, _, err := masked.Stat("f"); err != nil {
			t.Fatalf("write-masked store failed a stat: %v", err)
		}
	}
}

// TestStoreRebuild pins the store-level rebuild driver in private-view
// mode: a dead RAID5 member is reconstructed from the store's used
// extent and promoted, after which the member serves again.
func TestStoreRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disks = 3
	cfg.RAIDLevel = simdisk.RAID5
	cfg.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{{Disk: 1, Kind: simdisk.FaultDevice, At: 0}}}
	store := MustNewFileStore(cfg)
	defer store.Close()
	if _, err := store.CreateSized("big", 1<<20); err != nil {
		t.Fatal(err)
	}

	rb, err := store.BeginRebuild(1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Rows() <= 0 {
		t.Fatalf("rebuild covers %d rows, want > 0", rb.Rows())
	}
	end := rb.Run()
	if spare := rb.Spare().Stats(); spare.RebuildWrites != rb.Rows() {
		t.Fatalf("spare RebuildWrites %d, want %d", spare.RebuildWrites, rb.Rows())
	}
	if err := rb.Finish(); err != nil {
		t.Fatal(err)
	}
	if store.Array().Disk(1).Failed(end) {
		t.Fatalf("member still failed after Finish")
	}
	if got := store.TotalDiskStats().RebuildWrites; got != rb.Rows() {
		t.Fatalf("TotalDiskStats RebuildWrites %d, want %d", got, rb.Rows())
	}
}

// TestParseSpecs pins the flag grammars.
func TestParseSpecs(t *testing.T) {
	spec, err := ParseInjectSpec("seed=7,rate=40,budget=4,perm=100,ops=read|write")
	if err != nil {
		t.Fatal(err)
	}
	want := InjectSpec{Seed: 7, Rate: 40, Permanent: 100, Budget: 4, Ops: MaskOf(OpRead, OpWrite)}
	if spec != want {
		t.Fatalf("ParseInjectSpec = %+v, want %+v", spec, want)
	}
	if !spec.Ops.Has(OpRead) || spec.Ops.Has(OpStat) {
		t.Fatalf("mask targeting wrong: %b", spec.Ops)
	}
	if _, err := ParseInjectSpec("rate=x"); err == nil {
		t.Fatalf("bad rate should error")
	}
	if _, err := ParseInjectSpec("ops=nope"); err == nil {
		t.Fatalf("bad op name should error")
	}

	rp, err := ParseRetrySpec("max=3,base=50us")
	if err != nil {
		t.Fatal(err)
	}
	if rp != (RetryPolicy{Max: 3, Base: 50 * time.Microsecond}) {
		t.Fatalf("ParseRetrySpec = %+v", rp)
	}
	if zero, err := ParseRetrySpec(""); err != nil || zero != (RetryPolicy{}) {
		t.Fatalf("empty retry spec = %+v, %v", zero, err)
	}
}
