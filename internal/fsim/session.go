package fsim

import (
	"fmt"
	"io"
	"io/fs"
	"time"

	"repro/internal/buffercache"
	"repro/internal/clock"
	"repro/internal/simdisk"
	"repro/internal/simdisk/sharedq"
)

// Session is an independent virtual timeline over a shared FileStore:
// its own clock lane, its own disk-timing view, and its own sequential
// read-ahead detection, over the store's shared namespace, page cache,
// and file contents. One session per concurrent worker is what makes a
// wall-parallel replay simulated-parallel — each worker's operations
// are timed as its own I/O stream against its own view of the device,
// and the aggregate elapsed time is the longest lane (Timeline.MaxNow),
// not the sum of every worker's latencies.
//
// A Session implements Store, so anything that serves files from a
// store (the web server, the VM stream wrappers) can run per-worker
// lanes by handing each worker a session. Like a File, a single Session
// must not be shared across goroutines; sessions of the same store may
// run fully in parallel.
type Session struct {
	store *FileStore
	clk   *clock.VirtualClock
	io    *buffercache.IO
	array *simdisk.Array // private timing view (the shared array for the default session; nil in shared-queue mode)
	lane  *sharedq.Lane  // shared-queue port (nil in private mode)

	// Fault-injection state (recovery.go): the session's schedule key,
	// its operation counter, the remaining fault budget (-1 unlimited),
	// and its recovery tally. injectable is false for the default session
	// — setup traffic never injects — and when injection is disabled.
	id         int64
	opSeq      uint64
	budget     int64
	injectable bool
	rec        recCounters
}

var (
	_ Store = (*FileStore)(nil)
	_ Store = (*Session)(nil)
)

// NewSession opens a new lane on the store: a fresh virtual clock
// starting at the timeline's current merged time and a private disk
// view with the store's geometry. The view is private for timing only —
// every byte still moves through the shared cache and namespace.
func (s *FileStore) NewSession() *Session {
	clk := s.tl.NewLane()
	var sess *Session
	if s.queue != nil {
		// Shared-queue mode: the session's disk port is a lane into the
		// one contended queue instead of a private array. The lane
		// satisfies the cache's Backend capabilities directly.
		lane := s.queue.NewLane(clk.Now())
		sess = &Session{store: s, clk: clk, io: s.cache.NewIO(lane), lane: lane}
	} else {
		// The configuration was validated when the store was built, so the
		// private view cannot fail to construct.
		array, err := simdisk.NewArrayLevel(s.cfg.Disks, s.cfg.StripeUnit, s.cfg.RAIDLevel, s.cfg.Disk)
		if err != nil {
			panic(fmt.Sprintf("fsim: session array from validated config: %v", err))
		}
		// The private view degrades under the same device-fault plan as
		// every other view; the configuration was validated, so applying
		// the plan cannot fail either.
		if err := array.ApplyFaultPlan(s.tl.Start(), s.cfg.Faults); err != nil {
			panic(fmt.Sprintf("fsim: session fault plan from validated config: %v", err))
		}
		sess = &Session{store: s, clk: clk, io: s.cache.NewIO(array), array: array}
	}
	sess.id = s.sessSeq.Add(1)
	sess.injectable = s.injEnabled
	sess.budget = -1 // unlimited
	if s.cfg.Inject.Budget > 0 {
		sess.budget = s.cfg.Inject.Budget
	}
	s.sessMu.Lock()
	s.sessions = append(s.sessions, sess)
	s.sessMu.Unlock()
	return sess
}

// Release retires the session: its lane's final time folds into the
// timeline floor (aggregate elapsed time is preserved) and its disk
// view's statistics fold into the store's retired totals, so servers
// that open a session per connection do not accumulate dead lanes and
// arrays. The session must not be used afterwards. Releasing the
// store's default session is a no-op.
func (sess *Session) Release() {
	s := sess.store
	if sess == s.def {
		return
	}
	s.sessMu.Lock()
	for i, other := range s.sessions {
		if other == sess {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			if sess.array != nil {
				s.retired.Add(sess.array.TotalStats())
			}
			s.retiredRec.Add(sess.rec.snapshot())
			break
		}
	}
	s.sessMu.Unlock()
	if sess.lane != nil {
		// Shared-queue mode: unregister from the event merge. The lane's
		// billed traffic already lives on the store's contended array.
		sess.lane.Release()
	}
	s.tl.ReleaseLane(sess.clk)
}

// advance tells the shared disk queue this session will submit nothing
// timestamped before now — the lookahead promise the event merge's
// conservative dispatch needs. Sessions call it at the start of every
// operation; in private mode it is a no-op.
func (sess *Session) advance(now time.Time) {
	if sess.lane != nil {
		sess.lane.Advance(now)
	}
}

// Idle parks the session's shared-queue lane: the session promises not
// to touch the store again until its next operation (which unparks it).
// Callers that block outside simulated time — a replay worker out of
// records, a server connection waiting for the next request — must call
// it, or the contended queue conservatively waits for them. A no-op in
// private mode.
func (sess *Session) Idle() {
	if sess.lane != nil {
		sess.lane.Park()
	}
}

// Clock exposes the session's lane.
func (sess *Session) Clock() *clock.VirtualClock { return sess.clk }

// Elapsed is the simulated time this lane has consumed since it opened.
func (sess *Session) Elapsed() time.Duration { return sess.clk.Now().Sub(sess.store.tl.Start()) }

// Create makes (or truncates) a file holding data, timed on this lane.
// Existing extents are reused when the new contents fit; otherwise a
// fresh extent is allocated.
func (sess *Session) Create(name string, data []byte) (time.Duration, error) {
	s := sess.store
	start := sess.clk.Now()
	sess.advance(start)
	now, ferr := sess.opStart(start, OpCreate)
	if ferr != nil {
		return now.Sub(start), ferr
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	meta, ok := s.lookup(name)
	if ok {
		meta.mu.Lock()
		// Re-check under the file lock: a concurrent Remove may have
		// unlinked this meta after the lookup, in which case mutating it
		// would be lost — fall through and insert a fresh entry instead
		// (Create linearizes after the Remove).
		cur, live := s.lookup(name)
		if live && cur == meta && int64(len(data)) <= s.extentCap(meta) {
			meta.data = buf
			meta.sparse = false
			meta.size = int64(len(buf))
			meta.mu.Unlock()
		} else {
			meta.mu.Unlock()
			ok = false
		}
	}
	if !ok {
		meta = &fileMeta{name: name, base: s.allocExtent(int64(len(data)))}
		meta.data = buf
		meta.size = int64(len(buf))
		s.files.Store(name, meta)
	}
	done := now.Add(s.cfg.CreateCost)
	// Writing the initial contents dirties the cache like any write.
	if len(data) > 0 {
		done, _ = s.cache.WriteIO(sess.io, done, meta.base, int64(len(data)))
	}
	sess.clk.Set(done)
	return done.Sub(start), nil
}

// CreateSized makes (or replaces) a sparse file of the given logical
// size, timed on this lane.
func (sess *Session) CreateSized(name string, size int64) (time.Duration, error) {
	if size < 0 {
		return 0, &fs.PathError{Op: "create", Path: name, Err: fmt.Errorf("fsim: negative size %d", size)}
	}
	s := sess.store
	start := sess.clk.Now()
	sess.advance(start)
	now, ferr := sess.opStart(start, OpCreate)
	if ferr != nil {
		return now.Sub(start), ferr
	}
	meta := &fileMeta{name: name, base: s.allocExtent(size), sparse: true, size: size}
	s.files.Store(name, meta)
	done := now.Add(s.cfg.CreateCost)
	sess.clk.Set(done)
	return done.Sub(start), nil
}

// Open opens an existing file on this lane.
func (sess *Session) Open(name string) (File, time.Duration, error) {
	s := sess.store
	meta, ok := s.lookup(name)
	if !ok {
		return nil, 0, &fs.PathError{Op: "open", Path: name, Err: ErrNotExist}
	}
	start := sess.clk.Now()
	sess.advance(start)
	now, ferr := sess.opStart(start, OpOpen)
	if ferr != nil {
		return nil, now.Sub(start), ferr
	}
	done := now.Add(s.cfg.OpenCost)
	sess.clk.Set(done)
	// Background warm-up of the first pages (§3.4): occupies the cache and
	// disk but is not charged to the caller.
	if s.cfg.WarmPagesOnOpen > 0 {
		if length := meta.length(); length > 0 {
			warm := int64(s.cfg.WarmPagesOnOpen) * s.cfg.Cache.PageSize
			if warm > length {
				warm = length
			}
			s.cache.ReadIO(sess.io, done, meta.base, warm)
		}
	}
	return &simFile{store: s, sess: sess, meta: meta}, done.Sub(start), nil
}

// Remove deletes name on this lane, dropping its directory entry.
func (sess *Session) Remove(name string) (time.Duration, error) {
	s := sess.store
	if !s.Exists(name) {
		return 0, &fs.PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	start := sess.clk.Now()
	sess.advance(start)
	// The fault gate runs before the namespace mutates: a failed remove
	// leaves the file in place, as a failed directory update would.
	now, ferr := sess.opStart(start, OpRemove)
	if ferr != nil {
		return now.Sub(start), ferr
	}
	if _, ok := s.files.LoadAndDelete(name); !ok {
		return 0, &fs.PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	// Dropping the directory entry costs like a create; the extent's
	// cached pages become dead weight the LRU will reclaim naturally.
	done := now.Add(s.cfg.CreateCost)
	sess.clk.Set(done)
	return done.Sub(start), nil
}

// Stat reports name's logical size, billed on this lane like an Open —
// the same directory probe, without the handle or the background
// warm-up.
func (sess *Session) Stat(name string) (int64, time.Duration, error) {
	s := sess.store
	meta, ok := s.lookup(name)
	if !ok {
		return 0, 0, &fs.PathError{Op: "stat", Path: name, Err: ErrNotExist}
	}
	start := sess.clk.Now()
	sess.advance(start)
	now, ferr := sess.opStart(start, OpStat)
	if ferr != nil {
		return 0, now.Sub(start), ferr
	}
	done := now.Add(s.cfg.OpenCost)
	sess.clk.Set(done)
	return meta.length(), done.Sub(start), nil
}

// Exists reports whether name exists (untimed, like a stat cache hit).
func (sess *Session) Exists(name string) bool { return sess.store.Exists(name) }

// Names returns the sorted file names (untimed).
func (sess *Session) Names() []string { return sess.store.Names() }

// simFile is an open handle on a FileStore file, bound to the session
// (lane) that opened it.
type simFile struct {
	store  *FileStore
	sess   *Session
	meta   *fileMeta
	pos    int64
	closed bool
	wrote  bool
}

var _ File = (*simFile)(nil)

// Name returns the file name.
func (f *simFile) Name() string { return f.meta.name }

// Size returns the file length.
func (f *simFile) Size() int64 { return f.meta.length() }

// Read fills p from the current position. The lock section is kept
// minimal and defer-free: this is the replay hot path, and the cache and
// clock below are internally synchronized.
func (f *simFile) Read(p []byte) (int, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	m := f.meta
	m.mu.RLock()
	size := m.lengthLocked()
	if f.pos >= size {
		m.mu.RUnlock()
		return 0, 0, io.EOF
	}
	n := int64(len(p))
	if f.pos+n > size {
		n = size - f.pos
	}
	sparse := m.sparse
	if !sparse {
		copy(p, m.data[f.pos:f.pos+n])
	}
	m.mu.RUnlock()
	if sparse {
		// clear compiles to a memclr; the replay benchmarks read the 1 GB
		// sample file sparse, so this zero-fill IS the wall-clock data path.
		clear(p[:n])
	}
	start := f.sess.clk.Now()
	f.sess.advance(start)
	now, ferr := f.sess.opStart(start, OpRead)
	if ferr != nil {
		return 0, now.Sub(start), ferr
	}
	done, _ := f.store.cache.ReadIO(f.sess.io, now, m.base+f.pos, n)
	f.sess.clk.Set(done)
	f.pos += n
	var err error
	if n < int64(len(p)) {
		err = io.EOF
	}
	return int(n), done.Sub(start), err
}

// Write stores p at the current position, growing the file as needed.
func (f *simFile) Write(p []byte) (int, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	s := f.store
	m := f.meta
	start := f.sess.clk.Now()
	f.sess.advance(start)
	// The fault gate runs before the contents mutate: a failed write
	// leaves the file untouched.
	now, ferr := f.sess.opStart(start, OpWrite)
	if ferr != nil {
		return 0, now.Sub(start), ferr
	}
	end := f.pos + int64(len(p))
	m.mu.Lock()
	if end > s.extentCap(m) {
		// Contents outgrew the extent: relocate. Rare in the benchmarks
		// (POST files are written once); charged as a create. The bytes
		// are copied, not aliased: stale handles on the old meta keep
		// writing their own backing array under their own lock.
		newMeta := &fileMeta{name: m.name, base: s.allocExtent(end)}
		newMeta.data = append([]byte(nil), m.data...)
		newMeta.sparse = m.sparse
		newMeta.size = m.size
		m.mu.Unlock()
		s.files.Store(m.name, newMeta)
		m = newMeta
		f.meta = newMeta
		m.mu.Lock()
	}
	if m.sparse {
		if end > m.size {
			m.size = end
		}
	} else {
		if end > int64(len(m.data)) {
			grown := make([]byte, end)
			copy(grown, m.data)
			m.data = grown
		}
		copy(m.data[f.pos:end], p)
		m.size = int64(len(m.data))
	}
	m.mu.Unlock()
	done, _ := s.cache.WriteIO(f.sess.io, now, m.base+f.pos, int64(len(p)))
	f.sess.clk.Set(done)
	f.pos = end
	f.wrote = true
	return len(p), done.Sub(start), nil
}

// SeekTo repositions the handle. Seeking to a non-resident page charges
// the read-ahead initiation cost and warms the target page in the
// background. Defer-free like Read: seeks dominate several traces.
func (f *simFile) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	if f.closed {
		return 0, 0, ErrClosed
	}
	start := f.sess.clk.Now()
	f.sess.advance(start)
	length := f.meta.length()
	var target int64
	switch whence {
	case io.SeekStart:
		target = offset
	case io.SeekCurrent:
		target = f.pos + offset
	case io.SeekEnd:
		target = length + offset
	default:
		return f.pos, 0, &fs.PathError{Op: "seek", Path: f.meta.name, Err: fmt.Errorf("fsim: invalid whence %d", whence)}
	}
	if target < 0 {
		return f.pos, 0, &fs.PathError{Op: "seek", Path: f.meta.name, Err: fmt.Errorf("fsim: negative seek position %d", target)}
	}
	now, ferr := f.sess.opStart(start, OpSeek)
	if ferr != nil {
		return f.pos, now.Sub(start), ferr
	}
	cost := f.store.cfg.SeekCost
	if target < length && !f.store.cache.Resident(f.meta.base+target) {
		cost += f.store.cfg.SeekPrefetchInit
		// Kick off background read-ahead at the target; not charged.
		f.store.cache.ReadIO(f.sess.io, now, f.meta.base+target, f.store.cfg.Cache.PageSize)
	}
	done := now.Add(cost)
	f.sess.clk.Set(done)
	f.pos = target
	return target, done.Sub(start), nil
}

// Close releases the handle. Without background write-back it flushes
// the file's dirty pages on the caller's lane — closing is then always
// at least CloseCost, and more when writes must be written back, the
// close-slower-than-open effect of §3.4. With write-back enabled the
// dirty pages are handed to the background flushers instead (an async
// close): the caller pays only CloseCost and the flush time lands on
// the write-back lanes.
func (f *simFile) Close() (time.Duration, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.closed = true
	now := f.sess.clk.Now()
	f.sess.advance(now)
	done := now.Add(f.store.cfg.CloseCost)
	if f.wrote {
		if f.store.cache.WritebackEnabled() {
			f.store.cache.SignalWriteback(done)
		} else {
			done, _ = f.store.cache.FlushRangeIO(f.sess.io, done, f.meta.base, f.meta.length())
		}
	}
	f.sess.clk.Set(done)
	return done.Sub(now), nil
}
