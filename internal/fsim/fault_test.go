package fsim

import (
	"errors"
	"io"
	"testing"
)

func TestFaultStoreDisabled(t *testing.T) {
	s := NewFaultStore(MustNewFileStore(DefaultConfig()), 0)
	if _, err := s.Create("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f, _, err := s.Open("f")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if s.Injected() != 0 {
		t.Fatalf("disabled injector fired %d times", s.Injected())
	}
}

func TestFaultStoreFailsOnSchedule(t *testing.T) {
	inner := MustNewFileStore(DefaultConfig())
	inner.Create("f", make([]byte, 1024))
	s := NewFaultStore(inner, 3)
	var failures int
	for i := 0; i < 9; i++ {
		_, _, err := s.Open("f") // each Open is one op
		if errors.Is(err, ErrInjected) {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("9 ops with failEvery=3 produced %d failures, want 3", failures)
	}
	if s.Injected() != 3 {
		t.Fatalf("Injected = %d", s.Injected())
	}
}

func TestFaultFileOperationsFail(t *testing.T) {
	inner := MustNewFileStore(DefaultConfig())
	inner.Create("f", make([]byte, 4096))
	s := NewFaultStore(inner, 2) // ops 2, 4, 6... fail
	f, _, err := s.Open("f")     // op 1: ok
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Read(make([]byte, 10)); !errors.Is(err, ErrInjected) { // op 2
		t.Fatalf("read err = %v, want injected", err)
	}
	if _, _, err := f.SeekTo(0, io.SeekStart); err != nil { // op 3: ok
		t.Fatal(err)
	}
	if _, _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) { // op 4
		t.Fatalf("write err = %v, want injected", err)
	}
	// Close never injects.
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultStorePassthroughMetadata(t *testing.T) {
	inner := MustNewFileStore(DefaultConfig())
	inner.Create("f", nil)
	s := NewFaultStore(inner, 1) // every op fails
	// Exists/Names are not operations and never fail.
	if !s.Exists("f") {
		t.Fatal("Exists interposed")
	}
	if len(s.Names()) != 1 {
		t.Fatal("Names interposed")
	}
}

func TestRemoveFileStore(t *testing.T) {
	s := MustNewFileStore(DefaultConfig())
	s.Create("victim", []byte("data"))
	dur, err := s.Remove("victim")
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("remove cost nothing")
	}
	if s.Exists("victim") {
		t.Fatal("file survived Remove")
	}
	if _, err := s.Remove("victim"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("second remove err = %v", err)
	}
}

func TestRemoveOSStore(t *testing.T) {
	s := newOSStore(t)
	s.Create("victim", []byte("data"))
	if _, err := s.Remove("victim"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("victim") {
		t.Fatal("file survived Remove")
	}
	if _, err := s.Remove("victim"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("second remove err = %v", err)
	}
}
