package fsim

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/simdisk"
	"repro/internal/simdisk/sharedq"
)

// ArrayRebuild drives a failed member's reconstruction onto a spare
// through the store's disk path. In shared disk-queue mode the
// reconstruction reads are submitted on a dedicated queue lane, so
// rebuild traffic contends with every foreground session in the merged
// dispatch — the rebuild-vs-foreground interference the ablation
// measures. In private-view mode the reads run against the store's
// shared array (the default lane's view).
//
// Lifecycle: BeginRebuild before foreground workers start (the lane
// must join the merge at a deterministic point), Run concurrently with
// them (it blocks until the copy completes on simulated time), and
// Finish only after foreground lanes quiesce — promotion heals the
// member in place, and doing it mid-run would make subsequent timings
// depend on wall-clock interleaving.
type ArrayRebuild struct {
	store *FileStore
	rb    *simdisk.Rebuild
	port  simdisk.AccessPort
	lane  *sharedq.Lane
	clk   *clock.VirtualClock
	start time.Time
	end   time.Time
}

// BeginRebuild prepares the reconstruction of member failed, covering
// every extent allocated so far. The member is typically dead under the
// configured fault plan, but rebuilding a live (e.g. merely slowed)
// member is allowed — the copy then reads it directly.
func (s *FileStore) BeginRebuild(failed int) (*ArrayRebuild, error) {
	used := s.nextBase.Load()
	r := &ArrayRebuild{store: s, clk: s.tl.NewLane()}
	r.start = r.clk.Now()
	if s.queue != nil {
		rb, err := s.qArray.NewRebuild(failed, used)
		if err != nil {
			s.tl.ReleaseLane(r.clk)
			return nil, err
		}
		r.rb = rb
		r.lane = s.queue.NewLane(r.clk.Now())
		r.port = r.lane
		return r, nil
	}
	rb, err := s.array.NewRebuild(failed, used)
	if err != nil {
		s.tl.ReleaseLane(r.clk)
		return nil, err
	}
	r.rb = rb
	r.port = s.array
	return r, nil
}

// Run drives the whole copy on the rebuild's own lane: each block's
// reconstruction read flows through the store's disk path (contending
// in the shared queue when one is configured) and its spare write
// chains after. It returns the simulated completion time and parks the
// lane, so a finished rebuild never gates the event merge.
func (r *ArrayRebuild) Run() time.Time {
	end := r.rb.Run(r.clk.Now(), r.port)
	r.clk.Set(end)
	r.end = end
	if r.lane != nil {
		r.lane.Park()
	}
	return end
}

// End returns the copy's completion time (zero before Run finishes).
func (r *ArrayRebuild) End() time.Time { return r.end }

// Elapsed returns the copy's simulated duration (zero before Run
// finishes).
func (r *ArrayRebuild) Elapsed() time.Duration {
	if r.end.IsZero() {
		return 0
	}
	return r.end.Sub(r.start)
}

// Rows returns how many blocks the rebuild covers.
func (r *ArrayRebuild) Rows() int64 { return r.rb.Rows() }

// Spare exposes the spare disk for stats inspection before Finish.
func (r *ArrayRebuild) Spare() *simdisk.Disk { return r.rb.Spare() }

// Finish promotes the spare into the member (clearing its fault state
// and folding the rebuild statistics into the array) and retires the
// rebuild's lane into the timeline floor, preserving aggregate elapsed
// time. Call it only after Run returned and foreground lanes quiesced.
func (r *ArrayRebuild) Finish() error {
	if !r.rb.Done() {
		return fmt.Errorf("fsim: rebuild incomplete")
	}
	if err := r.rb.Finish(); err != nil {
		return err
	}
	if r.lane != nil {
		r.lane.Release()
		r.lane = nil
	}
	if r.clk != nil {
		r.store.tl.ReleaseLane(r.clk)
		r.clk = nil
	}
	return nil
}
