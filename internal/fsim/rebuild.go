package fsim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/simdisk"
	"repro/internal/simdisk/sharedq"
)

// ArrayRebuild drives a failed member's reconstruction onto a spare
// through the store's disk path. In shared disk-queue mode the
// reconstruction reads are submitted on a dedicated queue lane, so
// rebuild traffic contends with every foreground session in the merged
// dispatch — the rebuild-vs-foreground interference the ablation
// measures. In private-view mode the reads run against the store's
// shared array (the default lane's view).
//
// Lifecycle: BeginRebuild before foreground workers start (the lane
// must join the merge at a deterministic point), Run concurrently with
// them (it blocks until the copy completes on simulated time), and
// Finish only after foreground lanes quiesce — promotion heals the
// member in place, and doing it mid-run would make subsequent timings
// depend on wall-clock interleaving.
type ArrayRebuild struct {
	store  *FileStore
	rb     *simdisk.Rebuild
	port   simdisk.AccessPort
	lane   *sharedq.Lane
	clk    *clock.VirtualClock
	member int
	start  time.Time
	end    time.Time
}

// BeginRebuild prepares the reconstruction of member failed, covering
// every extent allocated so far. The member is typically dead under the
// configured fault plan, but rebuilding a live (e.g. merely slowed)
// member is allowed — the copy then reads it directly. When the store
// provisions a hot-spare pool (Config.Spares), the spare is claimed from
// it and exhaustion is an error; otherwise the rebuild provisions an
// ad-hoc spare.
func (s *FileStore) BeginRebuild(failed int) (*ArrayRebuild, error) {
	used := s.nextBase.Load()
	var spare *simdisk.Disk
	if s.spares != nil {
		d, err := s.spares.Take()
		if err != nil {
			return nil, fmt.Errorf("fsim: rebuilding member %d: %w", failed, err)
		}
		spare = d
	}
	array := s.array
	if s.queue != nil {
		array = s.qArray
	}
	var rb *simdisk.Rebuild
	var err error
	if spare != nil {
		rb, err = array.NewRebuildOnto(failed, used, spare)
	} else {
		rb, err = array.NewRebuild(failed, used)
	}
	if err != nil {
		if spare != nil {
			s.spares.Put(spare)
		}
		return nil, err
	}
	r := &ArrayRebuild{store: s, rb: rb, member: failed, clk: s.tl.NewLane()}
	r.start = r.clk.Now()
	if s.queue != nil {
		r.lane = s.queue.NewLane(r.clk.Now())
		r.port = r.lane
	} else {
		r.port = s.array
	}
	return r, nil
}

// SparePool exposes the hot-spare pool (nil when Config.Spares is zero).
func (s *FileStore) SparePool() *simdisk.SparePool { return s.spares }

// Run drives the whole copy on the rebuild's own lane: each block's
// reconstruction read flows through the store's disk path (contending
// in the shared queue when one is configured) and its spare write
// chains after. It returns the simulated completion time and parks the
// lane, so a finished rebuild never gates the event merge.
func (r *ArrayRebuild) Run() time.Time {
	end := r.rb.Run(r.clk.Now(), r.port)
	r.clk.Set(end)
	r.end = end
	if r.lane != nil {
		r.lane.Park()
	}
	return end
}

// End returns the copy's completion time (zero before Run finishes).
func (r *ArrayRebuild) End() time.Time { return r.end }

// Elapsed returns the copy's simulated duration (zero before Run
// finishes).
func (r *ArrayRebuild) Elapsed() time.Duration {
	if r.end.IsZero() {
		return 0
	}
	return r.end.Sub(r.start)
}

// Rows returns how many blocks the rebuild covers.
func (r *ArrayRebuild) Rows() int64 { return r.rb.Rows() }

// Spare exposes the spare disk for stats inspection before Finish.
func (r *ArrayRebuild) Spare() *simdisk.Disk { return r.rb.Spare() }

// Finish promotes the spare into the member (clearing its fault state
// and folding the rebuild statistics into the array) and retires the
// rebuild's lane into the timeline floor, preserving aggregate elapsed
// time. Call it only after Run returned and foreground lanes quiesced.
func (r *ArrayRebuild) Finish() error {
	if !r.rb.Done() {
		return fmt.Errorf("fsim: rebuild incomplete")
	}
	if err := r.rb.Finish(); err != nil {
		return err
	}
	if r.lane != nil {
		r.lane.Release()
		r.lane = nil
	}
	if r.clk != nil {
		r.store.tl.ReleaseLane(r.clk)
		r.clk = nil
	}
	return nil
}

// abort releases a begun-but-never-run rebuild's resources: its lane
// retires from the merge and a pooled spare (still untouched) returns to
// the pool. Only the RebuildSet construction error path uses it.
func (r *ArrayRebuild) abort() {
	if r.lane != nil {
		r.lane.Release()
		r.lane = nil
	}
	if r.clk != nil {
		r.store.tl.ReleaseLane(r.clk)
		r.clk = nil
	}
	if r.store.spares != nil {
		r.store.spares.Put(r.rb.Spare())
	}
}

// RebuildMemberResult is one member's rebuild outcome.
type RebuildMemberResult struct {
	// Member is the rebuilt member index.
	Member int
	// Rows is how many stripe-unit blocks the rebuild covered.
	Rows int64
	// Writes is the spare's RebuildWrites when the copy completed; a
	// finished rebuild has Writes == Rows.
	Writes int64
}

// RebuildSet drives several members' rebuilds as one unit — the
// hot-spare-pool story, where a double failure rebuilds both members
// concurrently. Lifecycle mirrors ArrayRebuild's: BeginRebuilds before
// foreground workers start, Run concurrently with them, Finish after
// they quiesce.
type RebuildSet struct {
	store    *FileStore
	rebuilds []*ArrayRebuild
	results  []RebuildMemberResult
}

// BeginRebuilds prepares one rebuild per listed member. Duplicate
// members are rejected, and with a hot-spare pool configured the whole
// set is refused up front when it would overcommit the pool — no
// half-begun state to unwind at the call site.
func (s *FileStore) BeginRebuilds(members []int) (*RebuildSet, error) {
	seen := make(map[int]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("fsim: duplicate rebuild member %d", m)
		}
		seen[m] = true
	}
	if s.spares != nil && len(members) > s.spares.Available() {
		return nil, fmt.Errorf("fsim: %d rebuilds requested but only %d spares available",
			len(members), s.spares.Available())
	}
	rs := &RebuildSet{store: s}
	for _, m := range members {
		r, err := s.BeginRebuild(m)
		if err != nil {
			for _, begun := range rs.rebuilds {
				begun.abort()
			}
			return nil, err
		}
		rs.rebuilds = append(rs.rebuilds, r)
	}
	return rs, nil
}

// Run drives every member's copy and returns the latest completion
// time. In shared disk-queue mode the rebuilds run on concurrent
// goroutines — each lane must keep advancing or the conservative event
// merge would wait on the idle ones — and the event-merged dispatch
// keeps the result deterministic. In private-view mode they run
// back to back on the wall clock instead: all start at the same virtual
// instant on their own lanes and contend for the survivors' busy
// horizons in a fixed order, so the merged timings stay a pure function
// of the configuration.
func (rs *RebuildSet) Run() time.Time {
	var end time.Time
	if rs.store.queue != nil {
		var wg sync.WaitGroup
		for _, r := range rs.rebuilds {
			wg.Add(1)
			go func(r *ArrayRebuild) {
				defer wg.Done()
				r.Run()
			}(r)
		}
		wg.Wait()
		for _, r := range rs.rebuilds {
			if r.end.After(end) {
				end = r.end
			}
		}
		return end
	}
	for _, r := range rs.rebuilds {
		if done := r.Run(); done.After(end) {
			end = done
		}
	}
	return end
}

// Rows returns the total block count across the set.
func (rs *RebuildSet) Rows() int64 {
	var rows int64
	for _, r := range rs.rebuilds {
		rows += r.Rows()
	}
	return rows
}

// Elapsed returns the slowest member's copy duration (zero before Run).
func (rs *RebuildSet) Elapsed() time.Duration {
	var d time.Duration
	for _, r := range rs.rebuilds {
		if e := r.Elapsed(); e > d {
			d = e
		}
	}
	return d
}

// Finish promotes every spare into its member and records the
// per-member results. Call only after Run returned and foreground lanes
// quiesced.
func (rs *RebuildSet) Finish() error {
	if rs.results != nil {
		return nil
	}
	results := make([]RebuildMemberResult, 0, len(rs.rebuilds))
	for _, r := range rs.rebuilds {
		res := RebuildMemberResult{
			Member: r.member,
			Rows:   r.Rows(),
			Writes: r.Spare().Stats().RebuildWrites,
		}
		if err := r.Finish(); err != nil {
			return fmt.Errorf("fsim: finishing member %d rebuild: %w", r.member, err)
		}
		results = append(results, res)
	}
	rs.results = results
	return nil
}

// Members returns the per-member results (nil before Finish).
func (rs *RebuildSet) Members() []RebuildMemberResult { return rs.results }
