package fsim

import (
	"io"
	"testing"
)

func BenchmarkSimReadWarm(b *testing.B) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.Create("f", make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	f, _, err := s.Open("f")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	f.Read(buf) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SeekTo(0, io.SeekStart)
		f.Read(buf)
	}
}

func BenchmarkSimWrite(b *testing.B) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.Create("w", make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	f, _, err := s.Open("w")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SeekTo(int64(i)%(1<<19), io.SeekStart)
		f.Write(buf)
	}
}

func BenchmarkSparseFileRead(b *testing.B) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.CreateSized("big", 1<<30); err != nil {
		b.Fatal(err)
	}
	f, _, err := s.Open("big")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SeekTo(int64(i)*(64<<10)%(1<<29), io.SeekStart)
		f.Read(buf)
	}
}

func BenchmarkOpenClose(b *testing.B) {
	s := MustNewFileStore(DefaultConfig())
	if _, err := s.Create("oc", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, err := s.Open("oc")
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
