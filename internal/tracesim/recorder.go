package tracesim

import (
	"sync"
	"time"

	"repro/internal/fsim"
	"repro/internal/trace"
)

// RecordingStore wraps a fsim.Store and captures every operation as a
// trace record — the inverse of Replay, and the mechanism the original
// University of Maryland traces were produced with (instrumented
// applications). Record a live workload once, then replay it anywhere:
//
//	rec := tracesim.NewRecordingStore(store)
//	... run any workload against rec ...
//	tr := rec.Trace()       // a valid, replayable UMDT trace
type RecordingStore struct {
	inner fsim.Store

	mu      sync.Mutex
	records []trace.Record
	sample  string
	files   map[string]bool
	nextPID uint32
	start   time.Time
	started bool
}

// NewRecordingStore wraps inner.
func NewRecordingStore(inner fsim.Store) *RecordingStore {
	return &RecordingStore{inner: inner, files: make(map[string]bool)}
}

var _ fsim.Store = (*RecordingStore)(nil)

// stamp returns the wall-clock offset for a new record.
func (s *RecordingStore) stamp() int64 {
	now := time.Now()
	if !s.started {
		s.start = now
		s.started = true
	}
	return now.Sub(s.start).Nanoseconds()
}

// add appends a record. Caller must not hold mu.
func (s *RecordingStore) add(rec trace.Record) {
	s.mu.Lock()
	rec.WallClock = s.stamp()
	rec.ProcClock = rec.WallClock
	s.records = append(s.records, rec)
	s.mu.Unlock()
}

// Create passes through and notes the file.
func (s *RecordingStore) Create(name string, data []byte) (time.Duration, error) {
	dur, err := s.inner.Create(name, data)
	if err == nil {
		s.mu.Lock()
		s.files[name] = true
		s.mu.Unlock()
	}
	return dur, err
}

// Open passes through and records an open. The first opened file becomes
// the trace's sample file.
func (s *RecordingStore) Open(name string) (fsim.File, time.Duration, error) {
	f, dur, err := s.inner.Open(name)
	if err != nil {
		return nil, dur, err
	}
	s.mu.Lock()
	if s.sample == "" {
		s.sample = name
	}
	s.files[name] = true
	pid := s.nextPID
	s.mu.Unlock()
	s.add(trace.Record{Op: trace.OpOpen, Count: 1, PID: pid})
	return &recordingFile{inner: f, store: s, pid: pid}, dur, nil
}

// Remove passes through and forgets the file.
func (s *RecordingStore) Remove(name string) (time.Duration, error) {
	dur, err := s.inner.Remove(name)
	if err == nil {
		s.mu.Lock()
		delete(s.files, name)
		s.mu.Unlock()
	}
	return dur, err
}

// Stat passes through unrecorded: the UMDT trace format has no stat
// operation (§3.2), so metadata probes stay invisible to replay.
func (s *RecordingStore) Stat(name string) (int64, time.Duration, error) {
	return s.inner.Stat(name)
}

// Exists passes through.
func (s *RecordingStore) Exists(name string) bool { return s.inner.Exists(name) }

// Names passes through.
func (s *RecordingStore) Names() []string { return s.inner.Names() }

// Trace snapshots the captured operations as a valid trace.
func (s *RecordingStore) Trace() *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]trace.Record, len(s.records))
	copy(recs, s.records)
	sample := s.sample
	if sample == "" {
		sample = "unknown"
	}
	nproc := s.nextPID
	if nproc == 0 {
		nproc = 1
	}
	return &trace.Trace{
		Header: trace.Header{
			NumProcesses: nproc,
			NumFiles:     uint32(len(s.files)),
			NumRecords:   uint32(len(recs)),
			SampleFile:   sample,
		},
		Records: recs,
	}
}

// SetNextPID labels subsequently opened handles with pid — callers that
// model multiple processes bump it per worker.
func (s *RecordingStore) SetNextPID(pid uint32) {
	s.mu.Lock()
	s.nextPID = pid
	s.mu.Unlock()
}

// recordingFile wraps a handle, tracking the position so reads and
// writes record their offsets.
type recordingFile struct {
	inner fsim.File
	store *RecordingStore
	pid   uint32
	pos   int64
}

var _ fsim.File = (*recordingFile)(nil)

func (f *recordingFile) Read(p []byte) (int, time.Duration, error) {
	n, dur, err := f.inner.Read(p)
	if n > 0 {
		f.store.add(trace.Record{
			Op: trace.OpRead, Count: 1, PID: f.pid,
			Offset: f.pos, Length: int64(n),
		})
		f.pos += int64(n)
	}
	return n, dur, err
}

func (f *recordingFile) Write(p []byte) (int, time.Duration, error) {
	n, dur, err := f.inner.Write(p)
	if n > 0 {
		f.store.add(trace.Record{
			Op: trace.OpWrite, Count: 1, PID: f.pid,
			Offset: f.pos, Length: int64(n),
		})
		f.pos += int64(n)
	}
	return n, dur, err
}

func (f *recordingFile) SeekTo(offset int64, whence int) (int64, time.Duration, error) {
	pos, dur, err := f.inner.SeekTo(offset, whence)
	if err == nil {
		f.store.add(trace.Record{
			Op: trace.OpSeek, Count: 1, PID: f.pid, Offset: pos,
		})
		f.pos = pos
	}
	return pos, dur, err
}

func (f *recordingFile) Close() (time.Duration, error) {
	dur, err := f.inner.Close()
	if err == nil {
		f.store.add(trace.Record{Op: trace.OpClose, Count: 1, PID: f.pid})
	}
	return dur, err
}

func (f *recordingFile) Size() int64  { return f.inner.Size() }
func (f *recordingFile) Name() string { return f.inner.Name() }
