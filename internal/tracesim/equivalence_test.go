package tracesim

import (
	"reflect"
	"testing"

	"repro/internal/buffercache"
	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// equivalenceStore builds a store with real cache pressure (an 8 MB
// cache under a 64 MB file) so the replay exercises hits, miss runs,
// prefetch, dirty write-back on eviction, and flush-on-close.
// pageGranular routes the cache's data path through the retained
// per-page reference implementation.
func equivalenceStore(t *testing.T, shards int, pageGranular bool) *fsim.FileStore {
	t.Helper()
	cfg := fsim.DefaultConfig()
	cfg.Cache.Shards = shards
	cfg.Cache.NumPages = 2048 // 8 MB: evictions engage
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store.Cache().SetPageGranular(pageGranular)
	return store
}

// mixedTrace is the consolidated multi-application workload: all five
// paper applications interleaved, with reads, writes, and seeks.
func mixedTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := tracegen.DefaultParams()
	p.FileSize = 64 << 20
	p.Requests = 96
	tr, err := tracegen.Mixed(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestReplayBulkMatchesPageGranular replays the mixed trace through the
// bulk cache path and the retained per-page path: the reports — every
// latency summary and per-request row — and the cache statistics must
// be identical. This is the end-to-end form of the buffercache
// equivalence contract: the bulk rewrite changed the wall-clock cost of
// the replay engine, not one nanosecond of what it simulates.
func TestReplayBulkMatchesPageGranular(t *testing.T) {
	tr := mixedTrace(t)
	run := func(pageGranular bool) (*Report, buffercache.Stats, int, int) {
		store := equivalenceStore(t, 1, pageGranular)
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = 64 << 20
		rep, err := rp.Replay("Mixed", tr)
		if err != nil {
			t.Fatal(err)
		}
		stats := store.Cache().Stats()
		return rep, stats, store.Cache().ResidentPages(), store.Cache().DirtyPages()
	}
	bulkRep, bulkStats, bulkRes, bulkDirty := run(false)
	pageRep, pageStats, pageRes, pageDirty := run(true)
	if !reflect.DeepEqual(bulkRep, pageRep) {
		t.Fatalf("reports diverge:\nbulk elapsed %v, per-page elapsed %v\nbulk read mean %v, per-page %v",
			bulkRep.Elapsed, pageRep.Elapsed, bulkRep.Read.Mean(), pageRep.Read.Mean())
	}
	if bulkStats != pageStats {
		t.Fatalf("cache stats diverge:\nbulk:     %+v\nper-page: %+v", bulkStats, pageStats)
	}
	if bulkRes != pageRes || bulkDirty != pageDirty {
		t.Fatalf("cache state diverges: resident %d vs %d, dirty %d vs %d",
			bulkRes, pageRes, bulkDirty, pageDirty)
	}
	if bulkStats.HitRate() == 0 || bulkStats.Evictions == 0 {
		t.Fatalf("workload exercised no pressure (hit rate %v, evictions %d); equivalence test is vacuous",
			bulkStats.HitRate(), bulkStats.Evictions)
	}
	if bulkRep.Read.N() == 0 || bulkRep.Write.N() == 0 || bulkRep.Seek.N() == 0 {
		t.Fatal("mixed trace missing an operation kind; equivalence test is vacuous")
	}
}

// TestConcurrentReplayBulkMatchesPageGranular is the same contract for
// the simulated-parallel path: 8 workers on 8 stripes, write-back on.
func TestConcurrentReplayBulkMatchesPageGranular(t *testing.T) {
	tr := determinismTrace(t)
	run := func(pageGranular bool) *Report {
		store := fsim.MustNewFileStore(determinismConfig())
		defer store.Close()
		store.Cache().SetPageGranular(pageGranular)
		rp := NewReplayer(store)
		rp.SampleFileSize = 32 << 20
		rep, err := rp.ReplayConcurrent("Parallel", tr)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	bulk, page := run(false), run(true)
	if !reflect.DeepEqual(bulk, page) {
		t.Fatalf("concurrent reports diverge: bulk elapsed %v vs per-page %v", bulk.Elapsed, page.Elapsed)
	}
}
