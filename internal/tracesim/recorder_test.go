package tracesim

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestRecorderCapturesWorkload(t *testing.T) {
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	rec := NewRecordingStore(inner)
	if _, err := rec.Create("data", make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	f, _, err := rec.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	f.Read(buf)
	f.SeekTo(32768, io.SeekStart)
	f.Read(buf)
	f.Write([]byte("tail"))
	f.Close()

	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("captured trace invalid: %v", err)
	}
	stats := trace.ComputeStats(tr)
	if stats.Ops[trace.OpOpen] != 1 || stats.Ops[trace.OpClose] != 1 {
		t.Fatalf("open/close = %d/%d", stats.Ops[trace.OpOpen], stats.Ops[trace.OpClose])
	}
	if stats.Ops[trace.OpRead] != 2 || stats.Ops[trace.OpWrite] != 1 || stats.Ops[trace.OpSeek] != 1 {
		t.Fatalf("op mix wrong: %+v", stats.Ops)
	}
	if tr.Header.SampleFile != "data" {
		t.Fatalf("sample file %q", tr.Header.SampleFile)
	}
	// Offsets must reflect the handle position at each operation.
	var reads []trace.Record
	for _, r := range tr.Records {
		if r.Op == trace.OpRead {
			reads = append(reads, r)
		}
	}
	if reads[0].Offset != 0 || reads[1].Offset != 32768 {
		t.Fatalf("read offsets %d, %d", reads[0].Offset, reads[1].Offset)
	}
}

func TestRecordedTraceIsReplayable(t *testing.T) {
	// Record a workload, serialize the trace, read it back, replay it —
	// the full capture-to-replay pipeline.
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	rec := NewRecordingStore(inner)
	rec.Create("w", make([]byte, 1<<20))
	f, _, _ := rec.Open("w")
	buf := make([]byte, 64<<10)
	for i := 0; i < 8; i++ {
		f.Read(buf)
	}
	f.Close()

	var encoded bytes.Buffer
	if err := trace.Write(&encoded, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Read(&encoded)
	if err != nil {
		t.Fatal(err)
	}

	replayStore := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(replayStore)
	rp.SampleFileSize = 1 << 20
	rep, err := rp.Replay("captured", decoded)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.N() != 8 {
		t.Fatalf("replayed %d reads, want 8", rep.Read.N())
	}
}

func TestRecorderPassesThroughErrors(t *testing.T) {
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	rec := NewRecordingStore(inner)
	if _, _, err := rec.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if len(rec.Trace().Records) != 0 {
		t.Fatal("failed open was recorded")
	}
}

func TestRecorderMultiProcess(t *testing.T) {
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	rec := NewRecordingStore(inner)
	rec.Create("shared", make([]byte, 1<<16))
	for pid := uint32(0); pid < 3; pid++ {
		rec.SetNextPID(pid)
		f, _, err := rec.Open("shared")
		if err != nil {
			t.Fatal(err)
		}
		f.Read(make([]byte, 128))
		f.Close()
	}
	tr := rec.Trace()
	pids := map[uint32]bool{}
	for _, r := range tr.Records {
		pids[r.PID] = true
	}
	if len(pids) != 3 {
		t.Fatalf("captured %d pids, want 3", len(pids))
	}
}

func TestReplayConcurrentPgrep(t *testing.T) {
	p := testParams()
	tr, err := tracegen.Pgrep(p)
	if err != nil {
		t.Fatal(err)
	}
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(store)
	rp.SampleFileSize = p.FileSize
	rep, err := rp.ReplayConcurrent("Pgrep", tr)
	if err != nil {
		t.Fatal(err)
	}
	// Same op counts as a sequential replay of the same trace.
	seqStore := fsim.MustNewFileStore(fsim.DefaultConfig())
	seqRp := NewReplayer(seqStore)
	seqRp.SampleFileSize = p.FileSize
	seqRep, err := seqRp.Replay("Pgrep", tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.N() != seqRep.Read.N() {
		t.Fatalf("concurrent read count %d != sequential %d", rep.Read.N(), seqRep.Read.N())
	}
	// PID 1-3's records precede their own opens (the trace has one open
	// record, attributed to PID 0), so the concurrent replay issues
	// implicit opens: one per worker.
	if rep.Open.N() != 4 {
		t.Fatalf("concurrent opens = %d, want 4 (one per process)", rep.Open.N())
	}
}

func TestReplayConcurrentRejectsInvalid(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(store)
	bad := &trace.Trace{Header: trace.Header{SampleFile: ""}}
	if _, err := rp.ReplayConcurrent("bad", bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}
