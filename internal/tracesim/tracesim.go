// Package tracesim is the paper's second benchmark: a trace-driven I/O
// simulator (§3). It replays trace files — open/close/read/write/seek
// records against a large sample file — timing every operation, and
// produces the per-application reports of Tables 1-4.
package tracesim

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// sizedCreator is the optional store capability for provisioning large
// sparse files; *fsim.FileStore implements it.
type sizedCreator interface {
	CreateSized(name string, size int64) (time.Duration, error)
}

// recoveryStore is the optional store capability for fault-recovery
// accounting; *fsim.FileStore implements it. Replays snapshot the tally
// before and after so the report carries only its own window.
type recoveryStore interface {
	RecoveryStats() fsim.RecoveryStats
}

// rebuildStore is the optional store capability for driving degraded
// members' reconstruction alongside a replay; *fsim.FileStore
// implements it.
type rebuildStore interface {
	BeginRebuilds(members []int) (*fsim.RebuildSet, error)
}

// RequestTiming is one timed data request, a row of Tables 3-4. For seek
// records the paper's "data size" column is the seek target offset; for
// reads and writes it is the transfer length.
type RequestTiming struct {
	Index   int
	Op      trace.Op
	Size    int64
	SeekMS  float64
	ReadMS  float64
	WriteMS float64
}

// Report is a replay's measured result.
type Report struct {
	App string
	// Per-operation latency summaries in milliseconds.
	Open, Close, Read, Write, Seek metrics.Summary
	// Requests lists each data request in trace order. In streaming-
	// aggregation mode (ReplayStream with StreamAggregate) it holds a
	// bounded reservoir sample instead; SampledRequests marks that.
	Requests []RequestTiming
	// TotalRequests counts every data request routed into the report,
	// including rows a streaming-aggregation reservoir dropped. It always
	// matches len(Requests) on the non-aggregated paths.
	TotalRequests int64
	// SampledRequests reports that Requests is a reservoir sample
	// (streaming aggregation) rather than the complete row list.
	SampledRequests bool
	// ReadHist, WriteHist and SeekHist are per-operation latency
	// histograms, populated only in streaming-aggregation mode — the
	// bounded stand-in for the exact latencies the full Requests rows
	// carry otherwise.
	ReadHist, WriteHist, SeekHist *metrics.Histogram
	// Elapsed is the replay's simulated duration. Serial replay charges
	// every operation to one clock, so this is the sum of all operation
	// times (plus think time when paced). Concurrent replay on a
	// session-capable store overlaps workers: Elapsed is then the longest
	// worker lane plus any final settle flush — the parallel machine's
	// wall-style elapsed time.
	Elapsed time.Duration
	// WorkerTime is the total simulated time summed across workers (the
	// serialized-time view): Elapsed and WorkerTime coincide for serial
	// replay, and WorkerTime/Elapsed is the simulated-parallel speedup
	// for concurrent replay.
	WorkerTime time.Duration
	// ThinkTime is the total inter-record wall-clock gap charged by a
	// paced replay (zero otherwise).
	ThinkTime time.Duration
	// Recovery aggregates the store's fault-recovery counters (op-level
	// injections, retries, recoveries, hard failures) over the replay,
	// when the store exposes them; zero on fault-free runs.
	Recovery fsim.RecoveryStats
	// RebuildTime is the simulated duration of the slowest concurrent
	// member rebuild run alongside the replay (Replayer.RebuildMember /
	// RebuildMembers; zero when none was requested); RebuildRows is how
	// many blocks the rebuilds reconstructed in total, and
	// RebuildMembers carries the per-member outcome.
	RebuildTime    time.Duration
	RebuildRows    int64
	RebuildMembers []fsim.RebuildMemberResult

	// agg, when non-nil, bounds the report's memory: addRequest feeds the
	// per-op histograms and a reservoir instead of growing Requests.
	agg *streamAgg
}

// addRequest routes one data-request row into the report: appended in
// trace order normally, folded into the histograms and reservoir in
// streaming-aggregation mode.
func (r *Report) addRequest(rt RequestTiming) {
	r.TotalRequests++
	if r.agg == nil {
		rt.Index = len(r.Requests) + 1
		r.Requests = append(r.Requests, rt)
		return
	}
	switch rt.Op {
	case trace.OpRead:
		r.ReadHist.Add(rt.ReadMS)
	case trace.OpWrite:
		r.WriteHist.Add(rt.WriteMS)
	case trace.OpSeek:
		r.SeekHist.Add(rt.SeekMS)
	}
	rt.Index = int(r.TotalRequests)
	r.agg.offer(&r.Requests, rt)
}

// Table renders the report in the generic layout (a row per operation
// kind with average latencies). The TableN functions in experiments.go
// render the paper's exact per-table layouts.
func (r *Report) Table() *metrics.Table {
	tb := metrics.NewTable(
		fmt.Sprintf("Results for the %s application", r.App),
		"Operation", "Count", "Avg time (ms)", "Min (ms)", "Max (ms)")
	add := func(name string, s *metrics.Summary) {
		if s.N() == 0 {
			return
		}
		tb.AddRow(name, s.N(), s.Mean(), s.Min(), s.Max())
	}
	add("open", &r.Open)
	add("close", &r.Close)
	add("read", &r.Read)
	add("write", &r.Write)
	add("seek", &r.Seek)
	return tb
}

// Replayer executes traces against a Store.
type Replayer struct {
	store fsim.Store
	// SampleFileSize is used to provision the sample file when the trace
	// names one that does not exist yet. Defaults to 1 GB.
	SampleFileSize int64
	// Paced honours the trace's wall-clock stamps: the gap between
	// consecutive records is charged as think time (recorded in the
	// report's ThinkTime and included in Elapsed). Unpaced replay (the
	// default, and the paper's method) issues records back to back.
	Paced bool
	// StreamQueueDepth bounds each ReplayStream worker's record queue
	// (backpressure on the trace reader). Defaults to 1024 records.
	StreamQueueDepth int
	// StreamAggregate switches ReplayStream's report to bounded-memory
	// aggregation: per-op latency histograms plus a reservoir sample of
	// StreamReservoir request rows instead of the full Requests slice.
	StreamAggregate bool
	// StreamReservoir is the per-worker reservoir capacity when
	// StreamAggregate is on. Defaults to 4096 rows.
	StreamReservoir int
	// RebuildMember, when >= 0 on a rebuild-capable store, runs that
	// member's reconstruction concurrently with ReplayConcurrent's
	// workers: the rebuild reads contend with foreground traffic (through
	// the shared disk queue when one is configured) and the spare is
	// promoted once the replay quiesces. The report's RebuildTime and
	// RebuildRows record the copy. -1 (the NewReplayer default) disables.
	RebuildMember int
	// RebuildMembers lists additional members to rebuild concurrently
	// (joined with RebuildMember when both are set) — the hot-spare-pool
	// story, typically paired with fsim.Config.Spares.
	RebuildMembers []int
}

// NewReplayer builds a replayer over store.
func NewReplayer(store fsim.Store) *Replayer {
	return &Replayer{store: store, SampleFileSize: 1 << 30, RebuildMember: -1}
}

// errNotOpen is returned when a trace issues data operations before open.
var errNotOpen = errors.New("tracesim: operation before open")

// dataOpRows returns how many per-request rows rec will produce
// (repeat counts expanded): one per expansion for the data operations
// (seek/read/write), none for open/close.
func dataOpRows(rec *trace.Record) int {
	switch rec.Op {
	case trace.OpSeek, trace.OpRead, trace.OpWrite:
		return int(rec.Count)
	}
	return 0
}

// dataOps counts the per-request rows a record sequence will produce,
// so replays can size Report.Requests once instead of growing it on
// the hot path.
func dataOps(recs []*trace.Record) int {
	n := 0
	for _, rec := range recs {
		n += dataOpRows(rec)
	}
	return n
}

// Prepare provisions the trace's sample file if missing: sparse on stores
// that support it, zero-filled otherwise.
func (rp *Replayer) Prepare(tr *trace.Trace) error {
	return rp.prepareSample(tr.Header.SampleFile)
}

func (rp *Replayer) prepareSample(name string) error {
	if rp.store.Exists(name) {
		return nil
	}
	if sc, ok := rp.store.(sizedCreator); ok {
		_, err := sc.CreateSized(name, rp.SampleFileSize)
		return err
	}
	_, err := rp.store.Create(name, make([]byte, rp.SampleFileSize))
	return err
}

// Replay validates and executes the trace, returning the timing report.
// appName labels the report (e.g. "Data Mining").
func (rp *Replayer) Replay(appName string, tr *trace.Trace) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := rp.Prepare(tr); err != nil {
		return nil, fmt.Errorf("tracesim: preparing sample file: %w", err)
	}
	rep := &Report{App: appName}
	var recBefore fsim.RecoveryStats
	rs, hasRecovery := rp.store.(recoveryStore)
	if hasRecovery {
		recBefore = rs.RecoveryStats()
	}
	n := 0
	for i := range tr.Records {
		n += dataOpRows(&tr.Records[i])
	}
	rep.Requests = make([]RequestTiming, 0, n)
	var f fsim.File
	var buf []byte
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var elapsed time.Duration
	var prevWall int64
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rp.Paced && i > 0 && rec.WallClock > prevWall {
			think := time.Duration(rec.WallClock - prevWall)
			rep.ThinkTime += think
			elapsed += think
		}
		prevWall = rec.WallClock
		for c := uint32(0); c < rec.Count; c++ {
			d, err := rp.step(rp.store, rep, &f, &buf, rec, tr.Header.SampleFile)
			if err != nil {
				return nil, fmt.Errorf("tracesim: record %d (%s): %w", i, rec.Op, err)
			}
			elapsed += d
		}
	}
	rep.Elapsed = elapsed
	rep.WorkerTime = elapsed
	if hasRecovery {
		rep.Recovery = rs.RecoveryStats().Sub(recBefore)
	}
	return rep, nil
}

// step executes one expanded trace record against st (the replayer's
// store, or one worker's session of it).
func (rp *Replayer) step(st fsim.Store, rep *Report, f *fsim.File, buf *[]byte, rec *trace.Record, sample string) (time.Duration, error) {
	switch rec.Op {
	case trace.OpOpen:
		if *f != nil {
			(*f).Close()
		}
		file, dur, err := st.Open(sample)
		if err != nil {
			return 0, err
		}
		*f = file
		rep.Open.AddDuration(dur)
		return dur, nil

	case trace.OpClose:
		if *f == nil {
			return 0, errNotOpen
		}
		dur, err := (*f).Close()
		*f = nil
		if err != nil {
			return 0, err
		}
		rep.Close.AddDuration(dur)
		return dur, nil

	case trace.OpSeek:
		if *f == nil {
			return 0, errNotOpen
		}
		// §3.3: "Seek operations are performed from the beginning of the
		// file to the offset as mentioned in the trace files."
		_, d0, err := (*f).SeekTo(0, io.SeekStart)
		if err != nil {
			return 0, err
		}
		_, d1, err := (*f).SeekTo(rec.Offset, io.SeekStart)
		if err != nil {
			return 0, err
		}
		dur := d0 + d1
		rep.Seek.AddDuration(dur)
		rep.addRequest(RequestTiming{
			Op: trace.OpSeek, Size: rec.Offset, SeekMS: ms(dur),
		})
		return dur, nil

	case trace.OpRead:
		if *f == nil {
			return 0, errNotOpen
		}
		_, seekDur, err := (*f).SeekTo(rec.Offset, io.SeekStart)
		if err != nil {
			return 0, err
		}
		*buf = grow(*buf, int(rec.Length))
		_, readDur, err := (*f).Read((*buf)[:rec.Length])
		if err != nil && err != io.EOF {
			return 0, err
		}
		rep.Read.AddDuration(readDur)
		rep.addRequest(RequestTiming{
			Op: trace.OpRead, Size: rec.Length, SeekMS: ms(seekDur), ReadMS: ms(readDur),
		})
		return seekDur + readDur, nil

	case trace.OpWrite:
		if *f == nil {
			return 0, errNotOpen
		}
		_, seekDur, err := (*f).SeekTo(rec.Offset, io.SeekStart)
		if err != nil {
			return 0, err
		}
		*buf = grow(*buf, int(rec.Length))
		_, writeDur, err := (*f).Write((*buf)[:rec.Length])
		if err != nil {
			return 0, err
		}
		rep.Write.AddDuration(writeDur)
		rep.addRequest(RequestTiming{
			Op: trace.OpWrite, Size: rec.Length, SeekMS: ms(seekDur), WriteMS: ms(writeDur),
		})
		return seekDur + writeDur, nil
	}
	return 0, fmt.Errorf("unhandled op %d", rec.Op)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// grow returns a buffer of at least n bytes, reusing b when possible.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}
