package tracesim

import (
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/simdisk"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// sharedQueueConfig is determinismConfig routed through the shared disk
// queue under the given scheduling policy: the contended-queue
// counterpart of the simulated-parallel determinism contract.
func sharedQueueConfig(policy simdisk.SchedPolicy) fsim.Config {
	cfg := determinismConfig()
	cfg.Cache.WritebackPolicy = policy
	cfg.DiskQueue = fsim.DiskQueueShared
	return cfg
}

func replaySharedOnce(t *testing.T, tr *trace.Trace, policy simdisk.SchedPolicy) *Report {
	t.Helper()
	store := fsim.MustNewFileStore(sharedQueueConfig(policy))
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	rep, err := rp.ReplayConcurrent("Parallel", tr)
	if err != nil {
		t.Fatal(err)
	}
	if store.SharedQueue() == nil {
		t.Fatal("shared-queue store reports no queue")
	}
	if st := store.SharedQueue().Stats(); st.Dispatches == 0 {
		t.Fatal("no requests moved through the shared queue")
	}
	return rep
}

// TestSharedQueueReplayDeterministic is the contended-queue determinism
// contract: 8 workers racing wall-clock for one simulated disk queue
// (write-back on, every policy) produce bit-identical merged reports
// across repeated runs — the dispatch order is a pure function of lane
// timestamps, never of goroutine scheduling. CI runs this under -race.
func TestSharedQueueReplayDeterministic(t *testing.T) {
	tr := determinismTrace(t)
	for _, policy := range []simdisk.SchedPolicy{simdisk.FCFS, simdisk.SSTF, simdisk.SCAN} {
		t.Run(policy.String(), func(t *testing.T) {
			first := replaySharedOnce(t, tr, policy)
			for run := 0; run < 2; run++ {
				again := replaySharedOnce(t, tr, policy)
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("shared-queue replay diverged on run %d:\nfirst: %+v\nagain: %+v",
						run+2, summary(first), summary(again))
				}
			}
		})
	}
}

// TestSharedQueuePoliciesSeparate is the ablation the shared queue
// exists for: with 8 lanes contending, FCFS, SSTF, and SCAN order the
// queue differently, so foreground latencies must actually move — under
// private views the policies were indistinguishable outside write-back.
func TestSharedQueuePoliciesSeparate(t *testing.T) {
	tr := determinismTrace(t)
	reads := make(map[simdisk.SchedPolicy]float64)
	for _, policy := range []simdisk.SchedPolicy{simdisk.FCFS, simdisk.SSTF, simdisk.SCAN} {
		rep := replaySharedOnce(t, tr, policy)
		reads[policy] = rep.Read.Mean()
	}
	if reads[simdisk.FCFS] == reads[simdisk.SSTF] && reads[simdisk.FCFS] == reads[simdisk.SCAN] {
		t.Fatalf("policies do not separate on foreground reads: FCFS=%v SSTF=%v SCAN=%v",
			reads[simdisk.FCFS], reads[simdisk.SSTF], reads[simdisk.SCAN])
	}
}

// singleLaneTrace is a one-worker workload: the shared queue then always
// has exactly one registered lane, which must serve inline.
func singleLaneTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := tracegen.DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 256
	p.Workers = 1
	tr, err := tracegen.Parallel(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSharedQueueSingleLaneMatchesPrivate is the equivalence contract:
// a shared queue with one lane serves every submission inline on the
// device, so the replay report is bit-identical to the private-view
// path — the contention model nests the original model exactly.
func TestSharedQueueSingleLaneMatchesPrivate(t *testing.T) {
	tr := singleLaneTrace(t)
	variants := []struct {
		name string
		mut  func(*fsim.Config)
	}{
		{"striped", func(cfg *fsim.Config) {}},
		// One stripe: private mode takes the merged one-shard read path,
		// shared mode cannot (it would block under the stripe lock), so
		// this pins the two read paths' bit-equality across the mode.
		{"one-stripe", func(cfg *fsim.Config) { cfg.Cache.Shards = 1 }},
		// A cache far smaller than the file: the eviction and read-ahead
		// paths (async under contention) dominate, and must still match.
		// Background write-back is off — a flusher racing foreground
		// evictions for dirty pages is wall-clock-nondeterministic in
		// both modes — so dirty victims bill synchronously and the close
		// flush runs the batched ServeBatch sweep through the lane.
		{"evicting", func(cfg *fsim.Config) {
			cfg.Cache.NumPages = 512
			cfg.Cache.WritebackThreshold = 0
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			runOnce := func(mode fsim.DiskQueueMode) *Report {
				cfg := determinismConfig()
				v.mut(&cfg)
				cfg.DiskQueue = mode
				store := fsim.MustNewFileStore(cfg)
				defer store.Close()
				rp := NewReplayer(store)
				rp.SampleFileSize = 32 << 20
				rep, err := rp.ReplayConcurrent("Parallel", tr)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			private := runOnce(fsim.DiskQueuePrivate)
			shared := runOnce(fsim.DiskQueueShared)
			if !reflect.DeepEqual(private, shared) {
				t.Fatalf("single-lane shared queue diverged from private views:\nprivate: %+v\nshared:  %+v",
					summary(private), summary(shared))
			}
		})
	}
}
