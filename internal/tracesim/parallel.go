package tracesim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fsim"
	"repro/internal/trace"
)

// laneStore is the store capability concurrent replay uses to give each
// worker its own virtual timeline; *fsim.FileStore implements it. Stores
// without it (the OS passthrough) fall back to shared-clock replay.
type laneStore interface {
	NewSession() *fsim.Session
	Settle() (time.Time, time.Duration)
}

// ReplayConcurrent replays a multi-process trace with one goroutine per
// process id, each with its own file handle — the execution structure of
// the traced parallel applications (Pgrep's four workers, §3.1). Records
// keep their per-PID order; cross-PID interleaving is whatever the
// scheduler produces, as it was on the original machine.
//
// On a session-capable store each worker replays on its own
// virtual-time lane with a private disk view, so the workers are
// simulated-parallel, not just wall-parallel: the merged report's
// Elapsed is the longest lane plus the final settle (max-over-workers,
// the overlap rule), while WorkerTime keeps the summed view. The
// aggregate report merges all processes.
func (rp *Replayer) ReplayConcurrent(appName string, tr *trace.Trace) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := rp.Prepare(tr); err != nil {
		return nil, fmt.Errorf("tracesim: preparing sample file: %w", err)
	}

	// Partition records by PID, preserving order.
	byPID := make(map[uint32][]*trace.Record)
	for i := range tr.Records {
		rec := &tr.Records[i]
		byPID[rec.PID] = append(byPID[rec.PID], rec)
	}
	pids := make([]uint32, 0, len(byPID))
	for pid := range byPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	ls, hasLanes := rp.store.(laneStore)
	var recBefore fsim.RecoveryStats
	recStore, hasRecovery := rp.store.(recoveryStore)
	if hasRecovery {
		recBefore = recStore.RecoveryStats()
	}

	// Each worker replays its own records into a private report; reports
	// merge afterwards, so no lock sits on the replay hot path.
	reports := make([]*Report, len(pids))
	errs := make([]error, len(pids))
	sessions := make([]*fsim.Session, 0, len(pids))
	if hasLanes {
		// Register every worker's lane before any worker runs. Creating
		// sessions inside the spawn loop races against the workers it has
		// already started: a shared disk queue dispatches a sole
		// registered lane inline and advances its queue edge, so under
		// heavy host load an early worker could run ahead before later
		// lanes joined — and a late lane floors at the advanced edge,
		// shifting its timings. Pre-registering the full lane set makes
		// the merge a pure function of the trace again.
		for range pids {
			sessions = append(sessions, ls.NewSession())
		}
	}
	releaseAll := func() {
		for _, sess := range sessions {
			sess.Release()
		}
	}

	// Requested member rebuilds join before the workers too, for the
	// same reason: their lanes must be part of the merge from the start.
	members := append([]int(nil), rp.RebuildMembers...)
	if rp.RebuildMember >= 0 {
		members = append(members, rp.RebuildMember)
	}
	var rb *fsim.RebuildSet
	if len(members) > 0 {
		rs, ok := rp.store.(rebuildStore)
		if !ok {
			releaseAll()
			return nil, fmt.Errorf("tracesim: store %T cannot rebuild a member", rp.store)
		}
		var err error
		if rb, err = rs.BeginRebuilds(members); err != nil {
			releaseAll()
			return nil, fmt.Errorf("tracesim: starting rebuild: %w", err)
		}
	}

	var wg sync.WaitGroup
	if rb != nil {
		// The copies stream through the store's disk path alongside the
		// foreground workers, so rebuild-vs-foreground contention lands in
		// the merged timings.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rb.Run()
		}()
	}
	for i, pid := range pids {
		st := rp.store
		if hasLanes {
			st = sessions[i]
		}
		wg.Add(1)
		go func(i int, st fsim.Store, recs []*trace.Record) {
			defer wg.Done()
			reports[i], errs[i] = rp.replayRecords(st, appName, tr.Header.SampleFile, recs)
			if sess, ok := st.(*fsim.Session); ok {
				// Out of records forever: park the lane so a shared disk
				// queue stops waiting for this worker (no-op otherwise).
				sess.Idle()
			}
		}(i, st, byPID[pid])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if rb != nil {
				rb.Finish()
			}
			releaseAll()
			return nil, err
		}
	}

	merged := &Report{App: appName}
	total := 0
	for _, r := range reports {
		total += len(r.Requests)
	}
	merged.Requests = make([]RequestTiming, 0, total)
	var longest time.Duration
	for _, r := range reports {
		merged.Open.Merge(&r.Open)
		merged.Close.Merge(&r.Close)
		merged.Read.Merge(&r.Read)
		merged.Write.Merge(&r.Write)
		merged.Seek.Merge(&r.Seek)
		merged.Requests = append(merged.Requests, r.Requests...)
		merged.TotalRequests += r.TotalRequests
		merged.WorkerTime += r.Elapsed
		if r.Elapsed > longest {
			longest = r.Elapsed
		}
	}
	if rb != nil {
		// The copies finished with the workers (Run was waited on above);
		// promote the spares now that the foreground has quiesced —
		// swapping a member mid-replay would make dispatch order depend
		// on wall-clock interleaving.
		merged.RebuildRows = rb.Rows()
		merged.RebuildTime = rb.Elapsed()
		if err := rb.Finish(); err != nil {
			releaseAll()
			return nil, fmt.Errorf("tracesim: finishing rebuild: %w", err)
		}
		merged.RebuildMembers = rb.Members()
	}
	if hasLanes {
		// Overlap rule: the parallel machine finishes with its slowest
		// worker, then settles buffered writes (a deterministic elevator
		// sweep, or the background flushers when write-back is on).
		_, settle := ls.Settle()
		merged.Elapsed = longest + settle
		// The lanes' final times are folded into the timeline by Release,
		// so repeated replays on one store do not accumulate dead lanes.
		releaseAll()
	} else {
		merged.Elapsed = merged.WorkerTime
	}
	if hasRecovery {
		merged.Recovery = recStore.RecoveryStats().Sub(recBefore)
	}
	// Re-index the merged request rows.
	for i := range merged.Requests {
		merged.Requests[i].Index = i + 1
	}
	return merged, nil
}

// replayRecords executes one process's record sequence against st (the
// worker's session, or the shared store). A worker whose first data
// operation precedes its own open record inherits an implicit open, as
// the shared-handle traces of the paper do.
func (rp *Replayer) replayRecords(st fsim.Store, appName, sample string, recs []*trace.Record) (*Report, error) {
	rep := &Report{App: appName, Requests: make([]RequestTiming, 0, dataOps(recs))}
	var f fsim.File
	var buf []byte
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for i, rec := range recs {
		if f == nil && rec.Op != trace.OpOpen {
			// Implicit open: multi-process traces often record one open
			// for the group.
			file, dur, err := st.Open(sample)
			if err != nil {
				return nil, err
			}
			f = file
			rep.Open.AddDuration(dur)
			rep.Elapsed += dur
		}
		for c := uint32(0); c < rec.Count; c++ {
			d, err := rp.step(st, rep, &f, &buf, rec, sample)
			if err != nil {
				return nil, fmt.Errorf("tracesim: pid %d record %d (%s): %w", rec.PID, i, rec.Op, err)
			}
			rep.Elapsed += d
		}
	}
	return rep, nil
}
