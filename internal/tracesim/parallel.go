package tracesim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fsim"
	"repro/internal/trace"
)

// ReplayConcurrent replays a multi-process trace with one goroutine per
// process id, each with its own file handle — the execution structure of
// the traced parallel applications (Pgrep's four workers, §3.1). Records
// keep their per-PID order; cross-PID interleaving is whatever the
// scheduler produces, as it was on the original machine. The aggregate
// report merges all processes.
func (rp *Replayer) ReplayConcurrent(appName string, tr *trace.Trace) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := rp.Prepare(tr); err != nil {
		return nil, fmt.Errorf("tracesim: preparing sample file: %w", err)
	}

	// Partition records by PID, preserving order.
	byPID := make(map[uint32][]*trace.Record)
	for i := range tr.Records {
		rec := &tr.Records[i]
		byPID[rec.PID] = append(byPID[rec.PID], rec)
	}
	pids := make([]uint32, 0, len(byPID))
	for pid := range byPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	// Each worker replays its own records into a private report; reports
	// merge afterwards, so no lock sits on the replay hot path.
	reports := make([]*Report, len(pids))
	errs := make([]error, len(pids))
	var wg sync.WaitGroup
	for i, pid := range pids {
		wg.Add(1)
		go func(i int, recs []*trace.Record) {
			defer wg.Done()
			reports[i], errs[i] = rp.replayRecords(appName, tr.Header.SampleFile, recs)
		}(i, byPID[pid])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &Report{App: appName}
	for _, r := range reports {
		merged.Open.Merge(&r.Open)
		merged.Close.Merge(&r.Close)
		merged.Read.Merge(&r.Read)
		merged.Write.Merge(&r.Write)
		merged.Seek.Merge(&r.Seek)
		merged.Requests = append(merged.Requests, r.Requests...)
		merged.Elapsed += r.Elapsed
	}
	// Re-index the merged request rows.
	for i := range merged.Requests {
		merged.Requests[i].Index = i + 1
	}
	return merged, nil
}

// replayRecords executes one process's record sequence. A worker whose
// first data operation precedes its own open record inherits an implicit
// open, as the shared-handle traces of the paper do.
func (rp *Replayer) replayRecords(appName, sample string, recs []*trace.Record) (*Report, error) {
	rep := &Report{App: appName}
	var f fsim.File
	var buf []byte
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for i, rec := range recs {
		if f == nil && rec.Op != trace.OpOpen {
			// Implicit open: multi-process traces often record one open
			// for the group.
			file, dur, err := rp.store.Open(sample)
			if err != nil {
				return nil, err
			}
			f = file
			rep.Open.AddDuration(dur)
			rep.Elapsed += dur
		}
		for c := uint32(0); c < rec.Count; c++ {
			d, err := rp.step(rep, &f, &buf, rec, sample)
			if err != nil {
				return nil, fmt.Errorf("tracesim: pid %d record %d (%s): %w", rec.PID, i, rec.Op, err)
			}
			rep.Elapsed += d
		}
	}
	return rep, nil
}
