package tracesim

import (
	"errors"
	"testing"

	"repro/internal/fsim"
	"repro/internal/tracegen"
)

// TestReplaySurfacesInjectedFaults verifies the replay engine propagates
// storage errors with context instead of panicking or silently dropping
// operations.
func TestReplaySurfacesInjectedFaults(t *testing.T) {
	p := testParams()
	tr, err := tracegen.Dmine(p)
	if err != nil {
		t.Fatal(err)
	}
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	faulty := fsim.NewFaultStore(inner, 10)
	rp := NewReplayer(faulty)
	rp.SampleFileSize = p.FileSize
	_, err = rp.Replay("Dmine", tr)
	if !errors.Is(err, fsim.ErrInjected) {
		t.Fatalf("replay err = %v, want injected fault", err)
	}
	if faulty.Injected() == 0 {
		t.Fatal("no fault fired")
	}
}

// TestReplayConcurrentSurfacesInjectedFaults does the same for the
// multi-process replay path.
func TestReplayConcurrentSurfacesInjectedFaults(t *testing.T) {
	p := testParams()
	tr, err := tracegen.Pgrep(p)
	if err != nil {
		t.Fatal(err)
	}
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	faulty := fsim.NewFaultStore(inner, 25)
	rp := NewReplayer(faulty)
	rp.SampleFileSize = p.FileSize
	if _, err := rp.ReplayConcurrent("Pgrep", tr); !errors.Is(err, fsim.ErrInjected) {
		t.Fatalf("concurrent replay err = %v, want injected fault", err)
	}
}

// TestReplayCleanWithInjectorDisabled pins the zero-schedule baseline.
func TestReplayCleanWithInjectorDisabled(t *testing.T) {
	p := testParams()
	tr, err := tracegen.Titan(p)
	if err != nil {
		t.Fatal(err)
	}
	inner := fsim.MustNewFileStore(fsim.DefaultConfig())
	faulty := fsim.NewFaultStore(inner, 0)
	rp := NewReplayer(faulty)
	rp.SampleFileSize = p.FileSize
	if _, err := rp.Replay("Titan", tr); err != nil {
		t.Fatal(err)
	}
}
