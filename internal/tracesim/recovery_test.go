package tracesim

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/fsim"
	"repro/internal/simdisk"
)

// TestSharedQueueReplaySingleProcMatches is the regression test for the
// lane-registration race: sessions used to be created inside the worker
// spawn loop, so under heavy host load (modelled here by GOMAXPROCS=1,
// which runs each spawned worker until it blocks) an early worker could
// dispatch through the shared queue's sole-lane fast path and advance
// the queue edge before later lanes registered — flooring those lanes
// late and shifting the merged timings. With the full lane set
// registered before any worker runs, the single-proc replay must be
// bit-identical to the normally scheduled one.
func TestSharedQueueReplaySingleProcMatches(t *testing.T) {
	tr := determinismTrace(t)
	baseline := replaySharedOnce(t, tr, simdisk.SSTF)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for run := 0; run < 2; run++ {
		again := replaySharedOnce(t, tr, simdisk.SSTF)
		if !reflect.DeepEqual(baseline, again) {
			t.Fatalf("GOMAXPROCS=1 replay diverged on run %d:\nbaseline: %+v\nagain:    %+v",
				run+1, summary(baseline), summary(again))
		}
	}
}

// faultedConfig is the degraded-mode determinism workload: an 8-lane
// shared-queue replay over a RAID5 array with a dead member and a
// slowed one, with seeded op-level injection absorbed by retries.
// Budget <= Retry.Max guarantees every injected fault recovers (an op
// can only fail after Max+1 consecutive fires, which the per-session
// budget cannot supply), so the replay itself never errors.
func faultedConfig() fsim.Config {
	cfg := sharedQueueConfig(simdisk.SSTF)
	cfg.Disks = 4
	cfg.RAIDLevel = simdisk.RAID5
	cfg.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{
		{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
		{Disk: 2, Kind: simdisk.FaultSlowdown, At: 0, Penalty: 100 * time.Microsecond},
	}}
	cfg.Inject = fsim.InjectSpec{Seed: 7, Rate: 20, Budget: 4}
	cfg.Retry = fsim.RetryPolicy{Max: 4, Base: 50 * time.Microsecond}
	return cfg
}

// TestFaultInjectedReplayDeterministic is the fault-path determinism
// contract: the degraded 8-lane replay — reconstruct-reads on a dead
// RAID5 member, a slowed survivor, and seeded injection with
// retry/backoff on every lane — stays bit-identical across runs,
// recovery counters included. CI runs this under -race.
func TestFaultInjectedReplayDeterministic(t *testing.T) {
	tr := determinismTrace(t)
	runOnce := func() *Report {
		store := fsim.MustNewFileStore(faultedConfig())
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = 32 << 20
		rep, err := rp.ReplayConcurrent("Parallel", tr)
		if err != nil {
			t.Fatal(err)
		}
		if ds := store.TotalDiskStats(); ds.ReconstructReads == 0 {
			t.Fatal("degraded RAID5 replay did no reconstruct-reads")
		}
		return rep
	}
	first := runOnce()
	if !first.Recovery.Any() {
		t.Fatalf("seeded injection fired nothing: %+v", first.Recovery)
	}
	if first.Recovery.Failed != 0 {
		t.Fatalf("budgeted injection should always recover, got %+v", first.Recovery)
	}
	if first.Recovery.Recovered == 0 || first.Recovery.Retried == 0 {
		t.Fatalf("expected retried recoveries, got %+v", first.Recovery)
	}
	for run := 0; run < 2; run++ {
		again := runOnce()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("fault-injected replay diverged on run %d (recovery %+v vs %+v):\nfirst: %+v\nagain: %+v",
				run+2, first.Recovery, again.Recovery, summary(first), summary(again))
		}
	}
}

// TestRebuildingReplayDeterministic runs the third ablation leg: the
// dead member rebuilds onto a spare through the shared queue while the
// 8 foreground lanes replay, and the merged report — foreground
// timings, rebuild duration, recovery counters — is bit-identical
// across runs. The spare is promoted after the replay quiesces, so the
// store serves the healed member afterwards.
func TestRebuildingReplayDeterministic(t *testing.T) {
	tr := determinismTrace(t)
	runOnce := func() *Report {
		cfg := sharedQueueConfig(simdisk.SSTF)
		cfg.Disks = 4
		cfg.RAIDLevel = simdisk.RAID5
		cfg.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{
			{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
		}}
		store := fsim.MustNewFileStore(cfg)
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = 32 << 20
		rp.RebuildMember = 1
		rep, err := rp.ReplayConcurrent("Parallel", tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := store.TotalDiskStats().RebuildWrites; got != rep.RebuildRows {
			t.Fatalf("array RebuildWrites %d, want %d (promoted spare folds its stats)", got, rep.RebuildRows)
		}
		return rep
	}
	first := runOnce()
	if first.RebuildRows <= 0 || first.RebuildTime <= 0 {
		t.Fatalf("rebuild did not run: rows=%d time=%v", first.RebuildRows, first.RebuildTime)
	}
	for run := 0; run < 2; run++ {
		again := runOnce()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("rebuilding replay diverged on run %d (rebuild %v/%d vs %v/%d):\nfirst: %+v\nagain: %+v",
				run+2, first.RebuildTime, first.RebuildRows, again.RebuildTime, again.RebuildRows,
				summary(first), summary(again))
		}
	}
}

// TestMultiRebuildReplayDeterministic runs the hot-spare-pool story: a
// RAID1 3-mirror loses two members at t0 and both rebuild concurrently
// onto pool spares through the shared queue while the 8 foreground
// lanes replay off the lone survivor. The merged report must be
// bit-identical across runs, each member's rebuild must complete
// (Writes == Rows per member), and the promoted spares must fold their
// writes into the array's stats.
func TestMultiRebuildReplayDeterministic(t *testing.T) {
	tr := determinismTrace(t)
	runOnce := func() *Report {
		cfg := sharedQueueConfig(simdisk.SSTF)
		cfg.Disks = 3
		cfg.RAIDLevel = simdisk.RAID1
		cfg.Spares = 2
		cfg.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{
			{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
			{Disk: 2, Kind: simdisk.FaultDevice, At: 0},
		}}
		store := fsim.MustNewFileStore(cfg)
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = 32 << 20
		rp.RebuildMembers = []int{1, 2}
		rep, err := rp.ReplayConcurrent("Parallel", tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := store.TotalDiskStats().RebuildWrites; got != rep.RebuildRows {
			t.Fatalf("array RebuildWrites %d, want %d (promoted spares fold their stats)", got, rep.RebuildRows)
		}
		if avail := store.SparePool().Available(); avail != 0 {
			t.Fatalf("spare pool has %d spares left, want 0", avail)
		}
		return rep
	}
	first := runOnce()
	if len(first.RebuildMembers) != 2 {
		t.Fatalf("per-member results %+v, want 2 entries", first.RebuildMembers)
	}
	var total int64
	for _, m := range first.RebuildMembers {
		if m.Rows <= 0 || m.Writes != m.Rows {
			t.Fatalf("member %d rebuild incomplete: writes %d, rows %d", m.Member, m.Writes, m.Rows)
		}
		total += m.Rows
	}
	if total != first.RebuildRows || first.RebuildTime <= 0 {
		t.Fatalf("rebuild totals off: rows=%d sum=%d time=%v", first.RebuildRows, total, first.RebuildTime)
	}
	for run := 0; run < 2; run++ {
		again := runOnce()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("multi-rebuild replay diverged on run %d:\nfirst: %+v\nagain: %+v",
				run+2, summary(first), summary(again))
		}
	}
}

// TestRebuildOverSparesFailsLoudly pins the pool bound: asking for more
// concurrent rebuilds than the pool provisioned is an error before any
// rebuild begins, not an invisible extra disk.
func TestRebuildOverSparesFailsLoudly(t *testing.T) {
	cfg := sharedQueueConfig(simdisk.SSTF)
	cfg.Disks = 3
	cfg.RAIDLevel = simdisk.RAID1
	cfg.Spares = 1
	cfg.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{
		{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
		{Disk: 2, Kind: simdisk.FaultDevice, At: 0},
	}}
	store := fsim.MustNewFileStore(cfg)
	defer store.Close()
	if _, err := store.BeginRebuilds([]int{1, 2}); err == nil {
		t.Fatalf("2 rebuilds over a 1-spare pool should error")
	}
	if _, err := store.BeginRebuilds([]int{1, 1}); err == nil {
		t.Fatalf("duplicate members should error")
	}
	// The refused set left the pool untouched.
	if avail := store.SparePool().Available(); avail != 1 {
		t.Fatalf("pool has %d spares after refusal, want 1", avail)
	}
}

// TestDegradedReplayDataIntact pins that degraded-mode reads return the
// same data-request structure as the healthy array: the replay over a
// dead RAID5 member must execute every record the healthy replay does
// (reconstruction is a timing event, not a data event).
func TestDegradedReplayDataIntact(t *testing.T) {
	tr := determinismTrace(t)
	runOnce := func(plan *simdisk.FaultPlan) *Report {
		cfg := sharedQueueConfig(simdisk.SSTF)
		cfg.Disks = 4
		cfg.RAIDLevel = simdisk.RAID5
		cfg.Faults = plan
		store := fsim.MustNewFileStore(cfg)
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = 32 << 20
		rep, err := rp.ReplayConcurrent("Parallel", tr)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	healthy := runOnce(nil)
	degraded := runOnce(&simdisk.FaultPlan{Faults: []simdisk.Fault{
		{Disk: 2, Kind: simdisk.FaultDevice, At: 0},
	}})
	if healthy.TotalRequests != degraded.TotalRequests ||
		healthy.Read.N() != degraded.Read.N() ||
		healthy.Write.N() != degraded.Write.N() {
		t.Fatalf("degraded replay lost requests: healthy %d reads %d writes, degraded %d reads %d writes",
			healthy.Read.N(), healthy.Write.N(), degraded.Read.N(), degraded.Write.N())
	}
}
