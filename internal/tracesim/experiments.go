package tracesim

import (
	"fmt"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// RunApp generates the named application's synthetic trace and replays it
// on a fresh simulated store, returning the report. It is the common path
// behind the Table 1-4 drivers.
func RunApp(app string, params tracegen.Params) (*Report, error) {
	tr, err := tracegen.Generate(app, params)
	if err != nil {
		return nil, err
	}
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rp := NewReplayer(store)
	rp.SampleFileSize = params.FileSize
	return rp.Replay(app, tr)
}

// Table1 regenerates the paper's Table 1: the data-mining application's
// data size and average read/open/close/seek times.
func Table1(params tracegen.Params) (*metrics.Table, *Report, error) {
	rep, err := RunApp("Dmine", params)
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable("Table 1. Results for the data mining application",
		"Appl. name", "Data size (Bytes)", "Read time (ms)", "Open time (ms)",
		"Close time (ms)", "Seek time (ms)")
	tb.AddRow("Data Mining", 131072, rep.Read.Mean(), rep.Open.Mean(),
		rep.Close.Mean(), rep.Seek.Mean())
	return tb, rep, nil
}

// Table2 regenerates the paper's Table 2: the Titan application's data
// size and average read/open/close times.
func Table2(params tracegen.Params) (*metrics.Table, *Report, error) {
	rep, err := RunApp("Titan", params)
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable("Table 2. Results for the titan application",
		"Appl. name", "Data size (Bytes)", "Read time (ms)", "Open time (ms)",
		"Close time (ms)")
	tb.AddRow("Titan", 187681, rep.Read.Mean(), rep.Open.Mean(), rep.Close.Mean())
	return tb, rep, nil
}

// Table3 regenerates the paper's Table 3: the LU factorization's six
// seek requests ("data size" is the seek target) with per-request seek
// times, plus the open/close times reported in its caption text.
func Table3(params tracegen.Params) (*metrics.Table, *Report, error) {
	rep, err := RunApp("LU", params)
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Table 3. Results for the LU application (open %s ms, close %s ms)",
			metrics.FormatCell(rep.Open.Mean()), metrics.FormatCell(rep.Close.Mean())),
		"Request number", "Data size (Bytes)", "Seek Time (ms)")
	n := 0
	for _, req := range rep.Requests {
		if req.Op != trace.OpSeek {
			continue
		}
		n++
		tb.AddRow(n, req.Size, req.SeekMS)
	}
	return tb, rep, nil
}

// Table4 regenerates the paper's Table 4: the sparse Cholesky
// factorization's sixteen reads with per-request seek and read times,
// plus open/close in the caption.
func Table4(params tracegen.Params) (*metrics.Table, *Report, error) {
	rep, err := RunApp("Cholesky", params)
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Table 4. Results for the Cholesky application (open %s ms, close %s ms)",
			metrics.FormatCell(rep.Open.Mean()), metrics.FormatCell(rep.Close.Mean())),
		"Request number", "Data size (Bytes)", "Seek time (ms)", "Read Time (ms)")
	n := 0
	for _, req := range rep.Requests {
		if req.Op != trace.OpRead {
			continue
		}
		n++
		tb.AddRow(n, req.Size, req.SeekMS, req.ReadMS)
	}
	return tb, rep, nil
}

// AllTables runs Tables 1-4 and returns them in order.
func AllTables(params tracegen.Params) ([]*metrics.Table, []*Report, error) {
	type runner func(tracegen.Params) (*metrics.Table, *Report, error)
	var tables []*metrics.Table
	var reports []*Report
	for _, run := range []runner{Table1, Table2, Table3, Table4} {
		tb, rep, err := run(params)
		if err != nil {
			return nil, nil, err
		}
		tables = append(tables, tb)
		reports = append(reports, rep)
	}
	return tables, reports, nil
}
