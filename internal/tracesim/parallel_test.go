package tracesim

import (
	"testing"

	"repro/internal/fsim"
	"repro/internal/tracegen"
)

// parallelParams keeps the concurrent-replay tests quick while still
// spanning enough of the sample file to cross cache shards.
func parallelParams() tracegen.Params {
	p := tracegen.DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 200
	return p
}

// TestReplayConcurrentShardedCache replays the four-worker Pgrep trace
// with one goroutine per traced process against a lock-striped store —
// the end-to-end concurrent path. Run under -race this is the wiring
// test for the sharded cache behind fsim; the assertions check that the
// merged report still accounts for every traced operation and that the
// cache's global bookkeeping survives the concurrency.
func TestReplayConcurrentShardedCache(t *testing.T) {
	params := parallelParams()
	tr, err := tracegen.Pgrep(params)
	if err != nil {
		t.Fatal(err)
	}

	store := fsim.MustNewFileStore(fsim.ShardedConfig())
	if store.Cache().NumShards() < 4 {
		t.Fatalf("sharded store has %d stripes, want >= 4", store.Cache().NumShards())
	}
	rp := NewReplayer(store)
	rp.SampleFileSize = params.FileSize
	rep, err := rp.ReplayConcurrent("Pgrep", tr)
	if err != nil {
		t.Fatal(err)
	}

	// A sequential replay of the same trace on the deterministic
	// single-stripe store fixes the expected operation counts.
	seqStore := fsim.MustNewFileStore(fsim.DefaultConfig())
	seqRP := NewReplayer(seqStore)
	seqRP.SampleFileSize = params.FileSize
	seq, err := seqRP.Replay("Pgrep", tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.N() != seq.Read.N() || rep.Write.N() != seq.Write.N() || rep.Seek.N() != seq.Seek.N() {
		t.Fatalf("concurrent replay lost operations: reads %d/%d writes %d/%d seeks %d/%d",
			rep.Read.N(), seq.Read.N(), rep.Write.N(), seq.Write.N(), rep.Seek.N(), seq.Seek.N())
	}
	if rep.Elapsed <= 0 {
		t.Fatal("concurrent replay reported no elapsed time")
	}

	cache := store.Cache()
	s := cache.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatal("sharded cache saw no traffic")
	}
	if got, budget := cache.ResidentPages(), cache.Config().NumPages; got > budget {
		t.Fatalf("resident pages %d exceed budget %d", got, budget)
	}
	// Dirty accounting must settle: flushing retires every dirty page.
	cache.Flush(store.Clock().Now())
	if got := cache.DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived a full flush", got)
	}
}

// TestReplayConcurrentMixedSharded pushes the five-application mixed
// trace (many PIDs, interleaved scans) through one sharded store — the
// consolidation case that hammers every stripe at once.
func TestReplayConcurrentMixedSharded(t *testing.T) {
	params := parallelParams()
	tr, err := tracegen.Mixed(params)
	if err != nil {
		t.Fatal(err)
	}
	store := fsim.MustNewFileStore(fsim.ShardedConfig())
	rp := NewReplayer(store)
	rp.SampleFileSize = params.FileSize
	rep, err := rp.ReplayConcurrent("Mixed", tr)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Read.N() + rep.Write.N() + rep.Seek.N(); n == 0 {
		t.Fatal("mixed replay performed no data operations")
	}
	if got, budget := store.Cache().ResidentPages(), store.Cache().Config().NumPages; got > budget {
		t.Fatalf("resident pages %d exceed budget %d", got, budget)
	}
}
