package tracesim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// streamAgg is the bounded-memory row keeper for streaming aggregation:
// reservoir sampling (Algorithm R) over the request rows, driven by a
// deterministic xorshift64 stream so replays reproduce bit-identically.
type streamAgg struct {
	capN int
	seen int64
	rng  uint64
}

func newStreamAgg(capN int, pid uint32) *streamAgg {
	// Seed from the PID so every worker draws a distinct deterministic
	// stream; the odd constant keeps pid 0 away from the all-zero state.
	return &streamAgg{capN: capN, rng: uint64(pid)*0x9E3779B97F4A7C15 + 1}
}

func (a *streamAgg) next() uint64 {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	return a.rng
}

// offer applies one Algorithm R step to the reservoir in *rows.
func (a *streamAgg) offer(rows *[]RequestTiming, rt RequestTiming) {
	a.seen++
	if len(*rows) < a.capN {
		*rows = append(*rows, rt)
		return
	}
	if j := a.next() % uint64(a.seen); j < uint64(a.capN) {
		(*rows)[j] = rt
	}
}

// ReplayStream replays a trace straight off a Scanner without ever
// materializing the record slice: a reader goroutine decodes records and
// routes them to per-PID worker queues (bounded channels — backpressure,
// not buffering), and each worker drives its own store session exactly
// like a ReplayConcurrent lane. Memory is bounded by the queues and the
// per-worker reports, independent of trace length, so a billion-record
// v2 trace replays in a few megabytes.
//
// On a session-capable store each lane is a pure function of its own
// record sequence — private virtual clock, private disk view — so the
// merged report is bit-identical to ReplayConcurrent on the same trace,
// whatever the goroutine interleaving. The shared disk-queue mode is
// refused: contending lanes rendezvous through the queue, which needs
// every lane's future known up front (the reader could deadlock feeding
// a worker whose dispatch gates on another still-unfed lane), and its
// cross-lane ordering is the one thing streaming cannot reproduce.
//
// With StreamAggregate set, per-worker reports keep per-op histograms
// plus a reservoir sample instead of the full row list (see Report); the
// merged Requests are then a deterministic proportional sample.
func (rp *Replayer) ReplayStream(appName string, sc *trace.Scanner) (*Report, error) {
	if fs, ok := rp.store.(*fsim.FileStore); ok && fs.SharedQueue() != nil {
		return nil, errors.New("tracesim: ReplayStream does not support the shared disk-queue mode; use ReplayConcurrent on a materialized trace")
	}
	h := sc.Header()
	if h.SampleFile == "" {
		return nil, errors.New("trace: empty sample file name")
	}
	if err := rp.prepareSample(h.SampleFile); err != nil {
		return nil, fmt.Errorf("tracesim: preparing sample file: %w", err)
	}
	ls, hasLanes := rp.store.(laneStore)
	var recBefore fsim.RecoveryStats
	recStore, hasRecovery := rp.store.(recoveryStore)
	if hasRecovery {
		recBefore = recStore.RecoveryStats()
	}
	depth := rp.StreamQueueDepth
	if depth <= 0 {
		depth = 1024
	}

	type worker struct {
		ch   chan trace.Record
		sess *fsim.Session
		rep  *Report
		err  error
	}
	workers := make(map[uint32]*worker)
	var wg sync.WaitGroup
	spawn := func(pid uint32) *worker {
		w := &worker{ch: make(chan trace.Record, depth)}
		st := rp.store
		if hasLanes {
			w.sess = ls.NewSession()
			st = w.sess
		}
		workers[pid] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.rep, w.err = rp.replayChannel(st, appName, h.SampleFile, pid, w.ch)
			if w.sess != nil {
				// Out of records forever: park the lane (no-op in the
				// private-lane modes this path allows, but kept symmetric
				// with ReplayConcurrent).
				w.sess.Idle()
			}
		}()
		return w
	}

	for sc.Next() {
		rec := sc.Record()
		w := workers[rec.PID]
		if w == nil {
			w = spawn(rec.PID)
		}
		w.ch <- *rec
	}
	for _, w := range workers {
		close(w.ch)
	}
	wg.Wait()

	release := func() {
		for _, w := range workers {
			if w.sess != nil {
				w.sess.Release()
			}
		}
	}
	if err := sc.Err(); err != nil {
		release()
		return nil, err
	}
	pids := make([]uint32, 0, len(workers))
	for pid := range workers {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		if err := workers[pid].err; err != nil {
			release()
			return nil, err
		}
	}

	// Merge in sorted-PID order — the same order ReplayConcurrent merges
	// its partitions, so the reports agree row for row.
	merged := &Report{App: appName}
	if rp.StreamAggregate {
		merged.SampledRequests = true
		merged.ReadHist = metrics.NewLatencyHistogram()
		merged.WriteHist = metrics.NewLatencyHistogram()
		merged.SeekHist = metrics.NewLatencyHistogram()
	}
	var longest time.Duration
	for _, pid := range pids {
		r := workers[pid].rep
		merged.Open.Merge(&r.Open)
		merged.Close.Merge(&r.Close)
		merged.Read.Merge(&r.Read)
		merged.Write.Merge(&r.Write)
		merged.Seek.Merge(&r.Seek)
		merged.TotalRequests += r.TotalRequests
		merged.WorkerTime += r.Elapsed
		if r.Elapsed > longest {
			longest = r.Elapsed
		}
		if rp.StreamAggregate {
			merged.ReadHist.Merge(r.ReadHist)
			merged.WriteHist.Merge(r.WriteHist)
			merged.SeekHist.Merge(r.SeekHist)
		} else {
			merged.Requests = append(merged.Requests, r.Requests...)
		}
	}
	if rp.StreamAggregate {
		merged.Requests = mergeReservoirs(pids, func(pid uint32) []RequestTiming {
			return workers[pid].rep.Requests
		}, rp.reservoirCap())
	}
	if hasLanes {
		_, settle := ls.Settle()
		merged.Elapsed = longest + settle
		release()
	} else {
		merged.Elapsed = merged.WorkerTime
	}
	if hasRecovery {
		merged.Recovery = recStore.RecoveryStats().Sub(recBefore)
	}
	if !merged.SampledRequests {
		for i := range merged.Requests {
			merged.Requests[i].Index = i + 1
		}
	}
	return merged, nil
}

func (rp *Replayer) reservoirCap() int {
	if rp.StreamReservoir > 0 {
		return rp.StreamReservoir
	}
	return 4096
}

// mergeReservoirs thins per-worker reservoirs to one capN-row sample,
// allocating slots proportionally to each worker's row count (largest
// remainder, ties to the lower PID) and taking a uniform stride through
// each reservoir — deterministic, no RNG at merge time.
func mergeReservoirs(pids []uint32, rows func(uint32) []RequestTiming, capN int) []RequestTiming {
	total := 0
	for _, pid := range pids {
		total += len(rows(pid))
	}
	if total <= capN {
		out := make([]RequestTiming, 0, total)
		for _, pid := range pids {
			out = append(out, rows(pid)...)
		}
		return out
	}
	quota := make([]int, len(pids))
	assigned := 0
	type frac struct {
		i   int
		rem int
	}
	fracs := make([]frac, len(pids))
	for i, pid := range pids {
		n := len(rows(pid)) * capN
		quota[i] = n / total
		fracs[i] = frac{i: i, rem: n % total}
		assigned += quota[i]
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for k := 0; assigned < capN; k++ {
		quota[fracs[k%len(fracs)].i]++
		assigned++
	}
	out := make([]RequestTiming, 0, capN)
	for i, pid := range pids {
		rs := rows(pid)
		n := quota[i]
		if n > len(rs) {
			n = len(rs)
		}
		for k := 0; k < n; k++ {
			out = append(out, rs[k*len(rs)/n])
		}
	}
	return out
}

// replayChannel is replayRecords fed from a queue: one worker's record
// stream executed against st. On error the worker keeps draining the
// channel (discarding records) so the trace reader never blocks on a
// dead lane.
func (rp *Replayer) replayChannel(st fsim.Store, appName, sample string, pid uint32, ch <-chan trace.Record) (*Report, error) {
	rep := &Report{App: appName}
	if rp.StreamAggregate {
		rep.SampledRequests = true
		rep.agg = newStreamAgg(rp.reservoirCap(), pid)
		rep.ReadHist = metrics.NewLatencyHistogram()
		rep.WriteHist = metrics.NewLatencyHistogram()
		rep.SeekHist = metrics.NewLatencyHistogram()
	}
	var f fsim.File
	var buf []byte
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var firstErr error
	i := 0
	for rec := range ch {
		if firstErr != nil {
			continue
		}
		// The scanner validates v2 structurally; v1 records arrive raw, so
		// guard the fields replay depends on.
		if !rec.Op.Valid() || rec.Count == 0 {
			firstErr = fmt.Errorf("tracesim: pid %d record %d: invalid record (op %d, count %d)", pid, i, rec.Op, rec.Count)
			continue
		}
		if f == nil && rec.Op != trace.OpOpen {
			// Implicit open, as in replayRecords.
			file, dur, err := st.Open(sample)
			if err != nil {
				firstErr = fmt.Errorf("tracesim: pid %d record %d (%s): %w", pid, i, rec.Op, err)
				continue
			}
			f = file
			rep.Open.AddDuration(dur)
			rep.Elapsed += dur
		}
		for c := uint32(0); c < rec.Count; c++ {
			d, err := rp.step(st, rep, &f, &buf, &rec, sample)
			if err != nil {
				firstErr = fmt.Errorf("tracesim: pid %d record %d (%s): %w", pid, i, rec.Op, err)
				break
			}
			rep.Elapsed += d
		}
		i++
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}
