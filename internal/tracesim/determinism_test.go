package tracesim

import (
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/simdisk"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// determinismConfig is the simulated-parallel configuration the
// determinism guarantee covers: striped cache, background write-back
// through the SSTF queue, and no shared warm-on-open (the only
// foreground path whose timing would depend on which worker got to a
// shared page first).
func determinismConfig() fsim.Config {
	cfg := fsim.DefaultConfig()
	cfg.Cache.Shards = 8
	cfg.Cache.WritebackThreshold = 8
	cfg.Cache.WritebackPolicy = simdisk.SSTF
	cfg.WarmPagesOnOpen = 0
	return cfg
}

// determinismTrace is the 8-worker partitioned workload: disjoint
// regions, per-worker opens, reads with periodic in-place rewrites.
func determinismTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := tracegen.DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 256
	p.Workers = 8
	tr, err := tracegen.Parallel(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func replayConcurrentOnce(t *testing.T, tr *trace.Trace) *Report {
	t.Helper()
	store := fsim.MustNewFileStore(determinismConfig())
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	rep, err := rp.ReplayConcurrent("Parallel", tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Cache().DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived the settle", got)
	}
	return rep
}

// TestReplayDeterministicSerialVsConcurrent is the simulated-parallel
// determinism contract: the same trace replayed serially and with
// ReplayConcurrent (8 shards, write-back on, one goroutine per worker)
// yields identical merged reports across repeated runs — every latency
// row bit-equal — and the two modes agree on the operation population.
// CI runs this under -race, so the per-lane isolation it depends on is
// also exercised as a memory-safety property.
func TestReplayDeterministicSerialVsConcurrent(t *testing.T) {
	tr := determinismTrace(t)

	// Concurrent replay: repeated runs must be bit-identical even though
	// goroutine interleaving differs — each worker's lane is a pure
	// function of its own record sequence.
	first := replayConcurrentOnce(t, tr)
	for run := 0; run < 2; run++ {
		again := replayConcurrentOnce(t, tr)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("concurrent replay diverged on run %d:\nfirst: %+v\nagain: %+v",
				run+2, summary(first), summary(again))
		}
	}

	// Serial replay of the same trace is deterministic too.
	serialOnce := func() *Report {
		store := fsim.MustNewFileStore(determinismConfig())
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = 32 << 20
		rep, err := rp.Replay("Parallel", tr)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	s1, s2 := serialOnce(), serialOnce()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("serial replay diverged across runs")
	}

	// Serial and concurrent see the same operation population.
	if first.Open.N() != s1.Open.N() || first.Close.N() != s1.Close.N() ||
		first.Read.N() != s1.Read.N() || first.Write.N() != s1.Write.N() {
		t.Fatalf("op counts diverge: concurrent open/close/read/write %d/%d/%d/%d, serial %d/%d/%d/%d",
			first.Open.N(), first.Close.N(), first.Read.N(), first.Write.N(),
			s1.Open.N(), s1.Close.N(), s1.Read.N(), s1.Write.N())
	}
	if len(first.Requests) != len(s1.Requests) {
		t.Fatalf("request rows diverge: %d vs %d", len(first.Requests), len(s1.Requests))
	}
}

// TestReplayConcurrentSimulatedParallelTime checks the tentpole's time
// model: with 8 workers on independent lanes, the merged Elapsed is the
// longest lane (overlap), so the summed worker time exceeds it by the
// parallelism factor.
func TestReplayConcurrentSimulatedParallelTime(t *testing.T) {
	tr := determinismTrace(t)
	rep := replayConcurrentOnce(t, tr)
	if rep.Elapsed <= 0 || rep.WorkerTime <= 0 {
		t.Fatalf("no simulated time recorded: %+v", summary(rep))
	}
	if rep.WorkerTime < 2*rep.Elapsed {
		t.Fatalf("simulated time still serialized: worker total %v vs elapsed %v (want >= 2x overlap)",
			rep.WorkerTime, rep.Elapsed)
	}
}

// summary renders the fields that matter for a failure message.
func summary(r *Report) map[string]any {
	return map[string]any{
		"elapsed":    r.Elapsed,
		"workerTime": r.WorkerTime,
		"open":       r.Open.N(),
		"read":       r.Read.N(),
		"write":      r.Write.N(),
		"requests":   len(r.Requests),
	}
}
