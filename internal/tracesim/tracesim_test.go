package tracesim

import (
	"strings"
	"testing"

	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// testParams keeps replay fast: a 128 MB sample file, reduced request
// counts. The cache (64 MB) still holds only half the file, preserving
// the cold/warm structure.
func testParams() tracegen.Params {
	p := tracegen.DefaultParams()
	p.FileSize = 128 << 20
	p.Requests = 100
	return p
}

func TestReplayAllApps(t *testing.T) {
	for _, app := range tracegen.AppNames {
		rep, err := RunApp(app, testParams())
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if rep.Open.N() == 0 || rep.Close.N() == 0 {
			t.Errorf("%s: missing open/close timings", app)
		}
		if rep.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed %v", app, rep.Elapsed)
		}
	}
}

func TestCloseSlowerThanOpenAcrossAllTraces(t *testing.T) {
	// §3.4: "for all trace files the time spent closing a file was longer
	// than the time taken to open the file."
	for _, app := range tracegen.AppNames {
		rep, err := RunApp(app, testParams())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Close.Mean() <= rep.Open.Mean() {
			t.Errorf("%s: close %.6f ms not slower than open %.6f ms",
				app, rep.Close.Mean(), rep.Open.Mean())
		}
	}
}

func TestSeekCheaperThanRead(t *testing.T) {
	// The paper's seek times (~1e-4 ms) are far below its read times
	// (~1e-3 ms and up): seeks move a pointer, reads move data.
	rep, err := RunApp("Dmine", testParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seek.Mean() >= rep.Read.Mean() {
		t.Fatalf("seek %.6f ms not cheaper than read %.6f ms",
			rep.Seek.Mean(), rep.Read.Mean())
	}
}

func TestDmineOrderingMatchesTable1(t *testing.T) {
	// Table 1's robust orderings: seek ≪ open < close, and reads cost
	// more than seeks. (The paper's read average additionally lands below
	// its close time; a 131072-byte transfer is memcopy-bound in our
	// physical model, so reads land above close instead — recorded as a
	// deviation in EXPERIMENTS.md.)
	rep, err := RunApp("Dmine", testParams())
	if err != nil {
		t.Fatal(err)
	}
	seek, open, read, close := rep.Seek.Mean(), rep.Open.Mean(), rep.Read.Mean(), rep.Close.Mean()
	if !(seek < open && open < close && close < read) {
		t.Fatalf("ordering seek=%g open=%g close=%g read=%g, want seek<open<close<read",
			seek, open, close, read)
	}
	// Seeks are two orders of magnitude below reads, as in Table 1.
	if read < 50*seek {
		t.Fatalf("read %.6g ms not ≫ seek %.6g ms", read, seek)
	}
}

func TestCholeskyReadSpikes(t *testing.T) {
	// Table 4's signature: some mid-size reads cost 100x more than other
	// reads (page-fault spikes), and a larger read can be cheaper than a
	// smaller one.
	rep, err := RunApp("Cholesky", testParams())
	if err != nil {
		t.Fatal(err)
	}
	var reads []RequestTiming
	for _, r := range rep.Requests {
		if r.Op == trace.OpRead {
			reads = append(reads, r)
		}
	}
	if len(reads) != 16 {
		t.Fatalf("got %d reads, want 16", len(reads))
	}
	minMS, maxMS := reads[0].ReadMS, reads[0].ReadMS
	for _, r := range reads {
		if r.ReadMS < minMS {
			minMS = r.ReadMS
		}
		if r.ReadMS > maxMS {
			maxMS = r.ReadMS
		}
	}
	if maxMS < 10*minMS {
		t.Fatalf("no spike structure: min %.6f ms, max %.6f ms", minMS, maxMS)
	}
	// The paper's inversion: a smaller cold read costs more than a larger
	// warm one ("reading 28048 bytes takes more time than reading 133692
	// bytes"). Request index 2 (28048 B) jumps to cold pages; request
	// index 9 (84140 B) re-reads cached pages.
	if reads[2].ReadMS <= reads[9].ReadMS {
		t.Errorf("cold 28048-byte read %.6f ms not slower than warm 84140-byte read %.6f ms",
			reads[2].ReadMS, reads[9].ReadMS)
	}
	if reads[2].Size >= reads[9].Size {
		t.Fatal("inversion pair sizes wrong")
	}
}

func TestLUSeekTimesTiny(t *testing.T) {
	// Table 3: seeks are ~1e-4 ms, order of 100 ns — pointer updates.
	rep, err := RunApp("LU", testParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seek.N() != int64(len(tracegen.LURequestSizes)) {
		t.Fatalf("seek count %d, want %d", rep.Seek.N(), len(tracegen.LURequestSizes))
	}
	if mean := rep.Seek.Mean(); mean > 0.01 {
		t.Fatalf("LU mean seek %.6f ms, want ≲ 1e-2 ms", mean)
	}
}

func TestReplayRejectsDataOpsBeforeOpen(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(store)
	rp.SampleFileSize = 1 << 20
	tr := &trace.Trace{
		Header: trace.Header{NumProcesses: 1, NumFiles: 1, NumRecords: 1, SampleFile: "s"},
		Records: []trace.Record{
			{Op: trace.OpRead, Count: 1, Length: 10},
		},
	}
	if _, err := rp.Replay("bad", tr); err == nil {
		t.Fatal("read before open accepted")
	}
}

func TestReplayExpandsCounts(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(store)
	rp.SampleFileSize = 1 << 20
	tr := &trace.Trace{
		Header: trace.Header{NumProcesses: 1, NumFiles: 1, NumRecords: 3, SampleFile: "s"},
		Records: []trace.Record{
			{Op: trace.OpOpen, Count: 1},
			{Op: trace.OpRead, Count: 7, Offset: 0, Length: 4096},
			{Op: trace.OpClose, Count: 1},
		},
	}
	rep, err := rp.Replay("counted", tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.N() != 7 {
		t.Fatalf("read count = %d, want 7 (count expansion)", rep.Read.N())
	}
}

func TestReplayPreparesSampleOnce(t *testing.T) {
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(store)
	rp.SampleFileSize = 1 << 20
	p := testParams()
	tr, _ := tracegen.Dmine(p)
	if _, err := rp.Replay("a", tr); err != nil {
		t.Fatal(err)
	}
	if !store.Exists(p.SampleFile) {
		t.Fatal("sample file not provisioned")
	}
	// Second replay reuses the file.
	if _, err := rp.Replay("b", tr); err != nil {
		t.Fatal(err)
	}
}

func TestReportGenericTable(t *testing.T) {
	rep, err := RunApp("Dmine", testParams())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Table().Render()
	for _, want := range []string{"open", "close", "read", "seek"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTables1Through4(t *testing.T) {
	tables, reports, err := AllTables(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 || len(reports) != 4 {
		t.Fatalf("got %d tables, %d reports", len(tables), len(reports))
	}
	checks := []struct {
		wantTitle string
		wantRows  int
	}{
		{"Table 1", 1},
		{"Table 2", 1},
		{"Table 3", 6},
		{"Table 4", 16},
	}
	for i, c := range checks {
		if !strings.Contains(tables[i].Title, c.wantTitle) {
			t.Errorf("table %d title %q", i, tables[i].Title)
		}
		if tables[i].NumRows() != c.wantRows {
			t.Errorf("%s has %d rows, want %d", c.wantTitle, tables[i].NumRows(), c.wantRows)
		}
	}
	// Table 3's data-size column lists the paper's seek targets.
	if got := tables[2].Cell(0, 1); got != "66617088" {
		t.Errorf("Table 3 first data size = %q, want 66617088", got)
	}
	// Table 4's data-size column lists the paper's read sizes.
	if got := tables[3].Cell(0, 1); got != "4" {
		t.Errorf("Table 4 first data size = %q, want 4", got)
	}
}

func TestReplayDeterministic(t *testing.T) {
	run := func() string {
		tb, _, err := Table4(testParams())
		if err != nil {
			t.Fatal(err)
		}
		return tb.CSV()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestPacedReplayChargesThinkTime(t *testing.T) {
	p := testParams()
	tr, err := tracegen.Dmine(p)
	if err != nil {
		t.Fatal(err)
	}
	store := fsim.MustNewFileStore(fsim.DefaultConfig())
	rp := NewReplayer(store)
	rp.SampleFileSize = p.FileSize
	unpaced, err := rp.Replay("Dmine", tr)
	if err != nil {
		t.Fatal(err)
	}
	rp2 := NewReplayer(fsim.MustNewFileStore(fsim.DefaultConfig()))
	rp2.SampleFileSize = p.FileSize
	rp2.Paced = true
	paced, err := rp2.Replay("Dmine", tr)
	if err != nil {
		t.Fatal(err)
	}
	if unpaced.ThinkTime != 0 {
		t.Fatalf("unpaced replay charged think time %v", unpaced.ThinkTime)
	}
	if paced.ThinkTime <= 0 {
		t.Fatal("paced replay charged no think time")
	}
	if paced.Elapsed <= unpaced.Elapsed {
		t.Fatalf("paced elapsed %v not above unpaced %v", paced.Elapsed, unpaced.Elapsed)
	}
	// Per-operation latencies are pacing-independent.
	if paced.Read.N() != unpaced.Read.N() {
		t.Fatal("pacing changed the op stream")
	}
}
