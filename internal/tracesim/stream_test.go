package tracesim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// streamScanner encodes tr with encode and returns a scanner over the
// bytes — the out-of-core path, minus the disk.
func streamScanner(t testing.TB, tr *trace.Trace, encode func(*bytes.Buffer, *trace.Trace) error) *trace.Scanner {
	t.Helper()
	var buf bytes.Buffer
	if err := encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := trace.NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func encodeV1(buf *bytes.Buffer, tr *trace.Trace) error { return trace.Write(buf, tr) }
func encodeV2(buf *bytes.Buffer, tr *trace.Trace) error { return trace.WriteV2(buf, tr) }

func replayStreamOnce(t *testing.T, tr *trace.Trace, encode func(*bytes.Buffer, *trace.Trace) error) *Report {
	t.Helper()
	store := fsim.MustNewFileStore(determinismConfig())
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	rep, err := rp.ReplayStream("Parallel", streamScanner(t, tr, encode))
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Cache().DirtyPages(); got != 0 {
		t.Fatalf("%d dirty pages survived the settle", got)
	}
	return rep
}

// TestReplayStreamMatchesConcurrent is the streaming-ingestion
// equivalence contract: ReplayStream over an encoded byte stream (either
// format version) produces a merged report bit-identical to
// ReplayConcurrent over the materialized trace, and repeated streamed
// runs are bit-identical to each other. CI runs this under -race.
func TestReplayStreamMatchesConcurrent(t *testing.T) {
	tr := determinismTrace(t)
	want := replayConcurrentOnce(t, tr)
	for _, tc := range []struct {
		name   string
		encode func(*bytes.Buffer, *trace.Trace) error
	}{
		{"v1", encodeV1},
		{"v2", encodeV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := replayStreamOnce(t, tr, tc.encode)
			if !reflect.DeepEqual(want, first) {
				t.Fatalf("streamed report diverges from concurrent:\nconcurrent: %+v\nstreamed:   %+v",
					summary(want), summary(first))
			}
			again := replayStreamOnce(t, tr, tc.encode)
			if !reflect.DeepEqual(first, again) {
				t.Fatal("streamed replay diverged across runs")
			}
		})
	}
}

// TestReplayStreamMixedWorkload covers the multi-app record mix (reads,
// writes, seeks, several PIDs whose regions overlap). Overlapping PIDs
// share cache state, so exact latencies legitimately depend on goroutine
// interleaving — for this workload the contract is the
// interleaving-independent structure: operation populations and the
// merged row sequence's shape.
func TestReplayStreamMixedWorkload(t *testing.T) {
	p := tracegen.DefaultParams()
	p.FileSize = 16 << 20
	p.Requests = 128
	tr, err := tracegen.Mixed(p)
	if err != nil {
		t.Fatal(err)
	}
	want := replayConcurrentOnce(t, tr)
	got := replayStreamOnce(t, tr, encodeV2)
	if want.Open.N() != got.Open.N() || want.Close.N() != got.Close.N() ||
		want.Read.N() != got.Read.N() || want.Write.N() != got.Write.N() ||
		want.Seek.N() != got.Seek.N() {
		t.Fatalf("op populations diverge:\nconcurrent: %+v\nstreamed:   %+v", summary(want), summary(got))
	}
	if want.TotalRequests != got.TotalRequests || len(want.Requests) != len(got.Requests) {
		t.Fatalf("row counts diverge: %d/%d vs %d/%d",
			want.TotalRequests, len(want.Requests), got.TotalRequests, len(got.Requests))
	}
	for i := range want.Requests {
		w, g := want.Requests[i], got.Requests[i]
		if w.Index != g.Index || w.Op != g.Op || w.Size != g.Size {
			t.Fatalf("row %d diverges: concurrent {%d %v %d}, streamed {%d %v %d}",
				i, w.Index, w.Op, w.Size, g.Index, g.Op, g.Size)
		}
	}
}

// TestReplayStreamAggregate checks the bounded-memory report: histograms
// carry every request, the reservoir respects its capacity, and the
// aggregate populations match the exact (non-aggregated) run.
func TestReplayStreamAggregate(t *testing.T) {
	tr := determinismTrace(t)
	exact := replayConcurrentOnce(t, tr)

	store := fsim.MustNewFileStore(determinismConfig())
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	rp.StreamAggregate = true
	rp.StreamReservoir = 16
	rep, err := rp.ReplayStream("Parallel", streamScanner(t, tr, encodeV2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SampledRequests {
		t.Fatal("aggregated report not marked sampled")
	}
	if rep.TotalRequests != exact.TotalRequests {
		t.Fatalf("TotalRequests = %d, want %d", rep.TotalRequests, exact.TotalRequests)
	}
	if len(rep.Requests) > 16 {
		t.Fatalf("reservoir overflowed its capacity: %d rows", len(rep.Requests))
	}
	if got, want := rep.ReadHist.Total(), exact.Read.N(); got != want {
		t.Fatalf("read histogram holds %d observations, want %d", got, want)
	}
	if got, want := rep.WriteHist.Total(), exact.Write.N(); got != want {
		t.Fatalf("write histogram holds %d observations, want %d", got, want)
	}
	// The per-op summaries stay exact — aggregation only bounds the rows.
	if !reflect.DeepEqual(rep.Read, exact.Read) || !reflect.DeepEqual(rep.Write, exact.Write) {
		t.Fatal("aggregated summaries diverge from the exact run")
	}
	if rep.Elapsed != exact.Elapsed || rep.WorkerTime != exact.WorkerTime {
		t.Fatalf("aggregated clocks diverge: elapsed %v/%v worker %v/%v",
			rep.Elapsed, exact.Elapsed, rep.WorkerTime, exact.WorkerTime)
	}

	// Determinism: a second aggregated run reproduces bit-identically.
	store2 := fsim.MustNewFileStore(determinismConfig())
	defer store2.Close()
	rp2 := NewReplayer(store2)
	rp2.SampleFileSize = 32 << 20
	rp2.StreamAggregate = true
	rp2.StreamReservoir = 16
	rep2, err := rp2.ReplayStream("Parallel", streamScanner(t, tr, encodeV2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("aggregated streamed replay diverged across runs")
	}
}

// TestReplayStreamRejectsSharedQueue pins the documented restriction.
func TestReplayStreamRejectsSharedQueue(t *testing.T) {
	cfg := determinismConfig()
	cfg.DiskQueue = fsim.DiskQueueShared
	store := fsim.MustNewFileStore(cfg)
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	tr := determinismTrace(t)
	if _, err := rp.ReplayStream("Parallel", streamScanner(t, tr, encodeV2)); err == nil {
		t.Fatal("shared disk-queue mode accepted")
	}
}

// TestReplayStreamBadRecord checks that a worker error mid-stream drains
// the remaining records (the reader must not deadlock) and surfaces the
// failure.
func TestReplayStreamBadRecord(t *testing.T) {
	tr := determinismTrace(t)
	// v1 encoding does not validate, so an invalid op can ride the wire.
	tr.Records[len(tr.Records)/2].Op = trace.Op(7)
	store := fsim.MustNewFileStore(determinismConfig())
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	rp.StreamQueueDepth = 4 // tiny queue: the drain path must run
	if _, err := rp.ReplayStream("Parallel", streamScanner(t, tr, encodeV1)); err == nil {
		t.Fatal("invalid record replayed without error")
	}
}

func BenchmarkReplayStream(b *testing.B) {
	p := tracegen.DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 256
	p.Workers = 8
	tr, err := tracegen.Parallel(p)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteV2(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	store := fsim.MustNewFileStore(determinismConfig())
	defer store.Close()
	rp := NewReplayer(store)
	rp.SampleFileSize = 32 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := trace.NewScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rp.ReplayStream("Parallel", sc); err != nil {
			b.Fatal(err)
		}
	}
}
