package tracesim

import (
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// pidRange is one process's touched byte extent on the sample file.
type pidRange struct {
	pid      uint32
	lo, hi   int64
	touched  int64
	overlaps []uint32
}

// footprints computes each PID's touched byte range over the data
// operations of a trace, and which other PIDs' ranges intersect it.
func footprints(tr *trace.Trace) []pidRange {
	byPID := make(map[uint32]*pidRange)
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Op != trace.OpRead && rec.Op != trace.OpWrite {
			continue
		}
		lo, hi := rec.Offset, rec.Offset+int64(rec.Length)*int64(rec.Count)
		r, ok := byPID[rec.PID]
		if !ok {
			byPID[rec.PID] = &pidRange{pid: rec.PID, lo: lo, hi: hi, touched: hi - lo}
			continue
		}
		if lo < r.lo {
			r.lo = lo
		}
		if hi > r.hi {
			r.hi = hi
		}
		r.touched += hi - lo
	}
	out := make([]pidRange, 0, len(byPID))
	for _, r := range byPID {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	for i := range out {
		for j := range out {
			if i != j && out[i].lo < out[j].hi && out[j].lo < out[i].hi {
				out[i].overlaps = append(out[i].overlaps, out[j].pid)
			}
		}
	}
	return out
}

// TestMixedFootprintsOverlapParallelDoNot pins the root cause of the
// known Mixed per-request-row run-to-run variation: Mixed's processes
// read overlapping regions of the one sample file through the one
// shared page cache, so which worker pays a shared page's cold miss —
// and which gets the warm hit — depends on goroutine scheduling, a
// wall-clock order the simulator does not control. Parallel's workers
// read disjoint regions, which is why its concurrent replay IS
// bit-identical (TestReplayDeterministicSerialVsConcurrent) while
// Mixed's per-request rows are interleaving-dependent. This test makes
// the structural difference explicit so the asymmetry in the
// determinism contract is pinned, not folklore.
func TestMixedFootprintsOverlapParallelDoNot(t *testing.T) {
	p := tracegen.DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 256
	p.Workers = 8

	par, err := tracegen.Parallel(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range footprints(par) {
		if len(r.overlaps) != 0 {
			t.Fatalf("Parallel pid %d overlaps pids %v — the disjoint-region premise of the determinism contract broke", r.pid, r.overlaps)
		}
	}

	mixed, err := tracegen.Mixed(p)
	if err != nil {
		t.Fatal(err)
	}
	overlapping := 0
	for _, r := range footprints(mixed) {
		if len(r.overlaps) > 0 {
			overlapping++
		}
	}
	if overlapping < 2 {
		t.Fatalf("Mixed PIDs no longer share file regions (%d overlapping); if the workload changed, revisit the Mixed determinism caveat", overlapping)
	}
}

// TestMixedReplayReproducer is the skipped-by-default reproducer for
// the Mixed caveat: run it with TRACESIM_MIXED_REPRO=1 (ideally with
// -count > 1) to observe concurrent Mixed replays whose per-request
// rows differ run to run. Even when rows diverge, the data path must
// agree: every run executes the same operation population and byte
// volume — only the attribution of shared-page cold misses moves
// between workers. That containment is asserted; row divergence itself
// is reported, not failed, because it is scheduler-dependent and a
// quiet host may legitimately not reproduce it.
func TestMixedReplayReproducer(t *testing.T) {
	if os.Getenv("TRACESIM_MIXED_REPRO") == "" {
		t.Skip("set TRACESIM_MIXED_REPRO=1 to run the Mixed nondeterminism reproducer")
	}
	p := tracegen.DefaultParams()
	p.FileSize = 32 << 20
	p.Requests = 256
	p.Workers = 8
	tr, err := tracegen.Mixed(p)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *Report {
		// The sharded default config, warm-on-open included — the
		// configuration the caveat was observed under. (With
		// WarmPagesOnOpen disabled, determinismConfig's replay has shown
		// no divergence; the warm-on-open path is the widest window.)
		store := fsim.MustNewFileStore(fsim.ShardedConfig())
		defer store.Close()
		rp := NewReplayer(store)
		rp.SampleFileSize = p.FileSize
		rep, err := rp.ReplayConcurrent("Mixed", tr)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := runOnce()
	diverged := false
	for run := 0; run < 10 && !diverged; run++ {
		again := runOnce()
		if again.TotalRequests != first.TotalRequests ||
			again.Read.N() != first.Read.N() ||
			again.Write.N() != first.Write.N() ||
			again.Seek.N() != first.Seek.N() {
			t.Fatalf("Mixed replay changed its operation population run to run — that is a real bug, not the timing caveat: %+v vs %+v",
				summary(first), summary(again))
		}
		if !reflect.DeepEqual(first.Requests, again.Requests) {
			diverged = true
			for i := range first.Requests {
				if first.Requests[i] != again.Requests[i] {
					t.Logf("reproduced: request row %d differs (%s)", i+1,
						fmt.Sprintf("%+v vs %+v", first.Requests[i], again.Requests[i]))
					break
				}
			}
		}
	}
	if !diverged {
		t.Log("no per-request divergence in 10 runs on this host; the caveat is scheduler-dependent (try -count=10 under load)")
	}
}
