// UMDT v2: the block-framed columnar trace encoding.
//
// v1 spends 48 bytes per record on fixed-width little-endian fields. v2
// groups records into blocks (DefaultBlockRecords per block) and stores
// each field as its own contiguous column inside the block payload:
//
//	frame:   payload length (u32) | record count (u32) | CRC-32 of payload (u32)
//	payload: op[]      one raw byte per record
//	         count[]   uvarint
//	         pid[]     uvarint
//	         field[]   uvarint
//	         wall[]    zigzag varint, delta vs the same PID's previous wall clock
//	         proc[]    zigzag varint, delta vs the same PID's previous proc clock
//	         length[]  zigzag varint, delta vs the same PID's previous length
//	         offset[]  zigzag varint, delta vs the same PID's predicted next
//	                   offset (previous offset + previous length — sequential
//	                   streams collapse to a one-byte zero)
//
// The length column precedes the offset column because offset prediction
// consumes each record's predecessor length: a decoder materializes the
// whole length column, then replays the offset deltas against per-PID
// (previous offset, previous length) state.
//
// The header keeps v1's exact field layout (magic "UMDT", version,
// process/file/record counts, record offset, sample file name) with
// version = 2, so Read and NewScanner auto-detect either encoding from
// the first eight bytes. A zero header record count means "unknown"
// (streamed output); the stream ends with an all-zero frame whose CRC
// field covers an 8-byte trailer carrying the authoritative total.
//
// Per-PID predictor state persists across block boundaries: blocks are a
// framing and integrity unit (decode failures carry the block index),
// not a seek unit. On the synthesized workloads the encoding lands
// around 9-11 bytes per record against v1's 48.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	version2 = uint32(2)

	// DefaultBlockRecords is the encoder's records-per-block target.
	DefaultBlockRecords = 4096

	// maxBlockRecords and maxBlockPayload bound what a decoder will
	// buffer for one block; frames claiming more are corrupt by fiat, so
	// a hostile header cannot make the scanner allocate unboundedly.
	maxBlockRecords = 1 << 20
	maxBlockPayload = 1 << 26
)

// BlockError locates a v2 decode failure: the zero-based index of the
// block that failed and the underlying cause. Truncation inside a block
// surfaces as a BlockError wrapping io.ErrUnexpectedEOF.
type BlockError struct {
	Block int
	Err   error
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("trace: block %d: %v", e.Block, e.Err)
}

func (e *BlockError) Unwrap() error { return e.Err }

// ErrCRC reports a block whose payload does not match its checksum.
var ErrCRC = errors.New("checksum mismatch")

// predictor is the per-PID column state shared by encoder and decoder.
// wall, proc and length anchor their columns' delta chains; offset and
// offPrevLen belong to the offset pass, which predicts each record's
// offset as the PID's previous offset plus previous length. offPrevLen
// duplicates the length chain's value on purpose: the length column pass
// has already advanced `length` to the current record by the time the
// offset pass runs, so the offset pass carries its own progressive copy.
type predictor struct {
	wall       int64
	proc       int64
	length     int64
	offset     int64
	offPrevLen int64
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// writeHeader emits the shared v1/v2 header layout for version ver.
func writeHeader(bw *bufio.Writer, ver uint32, h Header, nrec uint32) error {
	name := []byte(h.SampleFile)
	if len(name) > 0xFFFF {
		return fmt.Errorf("trace: sample file name too long (%d bytes)", len(name))
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	recOff := uint32(headerFixedSize + len(name))
	for _, v := range []uint32{ver, h.NumProcesses, h.NumFiles, nrec, recOff} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
		return err
	}
	_, err := bw.Write(name)
	return err
}

// Encoder writes a v2 trace incrementally: records go in one at a time
// (Append), blocks flush as they fill, and Close seals the stream with
// the end frame and total-count trailer. Nothing is ever buffered beyond
// one block, so an Encoder can author traces of any length in constant
// memory.
type Encoder struct {
	bw *bufio.Writer

	// BlockRecords is the records-per-block target; it may be set before
	// the first Append (DefaultBlockRecords otherwise) and is fixed once
	// encoding starts.
	BlockRecords int

	declared uint32 // header record count (0 = unknown, trailer rules)
	block    []Record
	payload  []byte
	preds    map[uint32]*predictor
	total    int64
	started  bool
	closed   bool
}

// NewEncoder writes the v2 header for h to w and returns the encoder.
// h.NumRecords may be zero when the count is unknown up front (streamed
// generation); a non-zero count is enforced against the appended total
// at Close.
func NewEncoder(w io.Writer, h Header) (*Encoder, error) {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, version2, h, h.NumRecords); err != nil {
		return nil, err
	}
	return &Encoder{
		bw:           bw,
		BlockRecords: DefaultBlockRecords,
		declared:     h.NumRecords,
		preds:        make(map[uint32]*predictor),
	}, nil
}

// Append adds one record to the stream, flushing a block when full. The
// record is validated the same way Trace.Validate would, so every
// encoded stream decodes.
func (e *Encoder) Append(r *Record) error {
	if e.closed {
		return errors.New("trace: append to closed encoder")
	}
	switch {
	case !r.Op.Valid():
		return fmt.Errorf("trace: invalid op %d", r.Op)
	case r.Count == 0:
		return errors.New("trace: zero count")
	case r.Offset < 0:
		return fmt.Errorf("trace: negative offset %d", r.Offset)
	case r.Length < 0:
		return fmt.Errorf("trace: negative length %d", r.Length)
	}
	if !e.started {
		e.started = true
		if e.BlockRecords <= 0 || e.BlockRecords > maxBlockRecords {
			return fmt.Errorf("trace: block size %d out of range", e.BlockRecords)
		}
		e.block = make([]Record, 0, e.BlockRecords)
	}
	e.block = append(e.block, *r)
	e.total++
	if len(e.block) >= e.BlockRecords {
		return e.flushBlock()
	}
	return nil
}

// pred returns (creating if needed) the predictor for pid.
func (e *Encoder) pred(pid uint32) *predictor {
	p := e.preds[pid]
	if p == nil {
		p = &predictor{}
		e.preds[pid] = p
	}
	return p
}

// flushBlock encodes and frames the pending records.
func (e *Encoder) flushBlock() error {
	recs := e.block
	if len(recs) == 0 {
		return nil
	}
	buf := e.payload[:0]
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	for i := range recs {
		buf = append(buf, byte(recs[i].Op))
	}
	for i := range recs {
		putUvarint(uint64(recs[i].Count))
	}
	for i := range recs {
		putUvarint(uint64(recs[i].PID))
	}
	for i := range recs {
		putUvarint(uint64(recs[i].Field))
	}
	for i := range recs {
		p := e.pred(recs[i].PID)
		putUvarint(zigzag(recs[i].WallClock - p.wall))
		p.wall = recs[i].WallClock
	}
	for i := range recs {
		p := e.pred(recs[i].PID)
		putUvarint(zigzag(recs[i].ProcClock - p.proc))
		p.proc = recs[i].ProcClock
	}
	for i := range recs {
		p := e.pred(recs[i].PID)
		putUvarint(zigzag(recs[i].Length - p.length))
		p.length = recs[i].Length
	}
	for i := range recs {
		p := e.pred(recs[i].PID)
		putUvarint(zigzag(recs[i].Offset - (p.offset + p.offPrevLen)))
		p.offset = recs[i].Offset
		p.offPrevLen = recs[i].Length
	}
	e.payload = buf
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(buf)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(recs)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(buf))
	if _, err := e.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.bw.Write(buf); err != nil {
		return err
	}
	e.block = e.block[:0]
	return nil
}

// Records returns the number of records appended so far.
func (e *Encoder) Records() int64 { return e.total }

// Close flushes the final partial block and writes the end frame: an
// all-zero-length frame whose CRC field covers the 8-byte little-endian
// total record count that follows it. Close verifies a non-zero declared
// header count against the appended total.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.flushBlock(); err != nil {
		return err
	}
	if e.declared != 0 && int64(e.declared) != e.total {
		return fmt.Errorf("trace: header declared %d records, %d appended", e.declared, e.total)
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(e.total))
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(trailer[:]))
	if _, err := e.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.bw.Write(trailer[:]); err != nil {
		return err
	}
	return e.bw.Flush()
}

// WriteV2 encodes the trace to w in the v2 columnar format. Like Write,
// the header's NumRecords and RecordOffset are computed, not trusted.
func WriteV2(w io.Writer, t *Trace) error {
	h := t.Header
	h.NumRecords = uint32(len(t.Records))
	enc, err := NewEncoder(w, h)
	if err != nil {
		return err
	}
	for i := range t.Records {
		if err := enc.Append(&t.Records[i]); err != nil {
			return err
		}
	}
	return enc.Close()
}
