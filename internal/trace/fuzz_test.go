package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the binary decoder: arbitrary input must either parse
// into a trace that validates and round-trips, or fail cleanly — never
// panic or hang.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	tr := &Trace{
		Header: Header{NumProcesses: 2, NumFiles: 1, NumRecords: 2, SampleFile: "seed.dat"},
		Records: []Record{
			{Op: OpOpen, Count: 1},
			{Op: OpRead, Count: 3, Offset: 4096, Length: 64 << 10},
		},
	}
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("UMDT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean failure
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Read returned invalid trace: %v", err)
		}
		// Round-trip stability: re-encode, re-decode, compare.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Records) != len(got.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(got.Records), len(again.Records))
		}
	})
}

// FuzzTraceV2 hardens the columnar decoder: arbitrary bytes must either
// fail with a clean error or parse into a validating trace whose
// re-encoding is a fixed point (encode -> decode -> encode is
// byte-identical).
func FuzzTraceV2(f *testing.F) {
	tr := &Trace{
		Header: Header{NumProcesses: 2, NumFiles: 1, NumRecords: 4, SampleFile: "seed.dat"},
		Records: []Record{
			{Op: OpOpen, Count: 1},
			{Op: OpRead, Count: 3, Offset: 4096, Length: 64 << 10, WallClock: 10, ProcClock: 12},
			{Op: OpRead, Count: 1, PID: 1, Offset: 68 << 10, Length: 64 << 10, WallClock: 20, ProcClock: 21},
			{Op: OpClose, Count: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteV2(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // truncated trailer
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("UMDT\x02\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean failure
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Read returned invalid trace: %v", err)
		}
		var enc1 bytes.Buffer
		if err := WriteV2(&enc1, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Read(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteV2(&enc2, again); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode -> decode -> encode not byte-identical")
		}
	})
}

// FuzzParseDump does the same for the text decoder.
func FuzzParseDump(f *testing.F) {
	f.Add("# sample=s processes=1 files=1\nopen count=1\nread count=2 off=0 len=4096\nclose count=1\n")
	f.Add("# sample=s\n")
	f.Add("read\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		got, err := ParseDump(strings.NewReader(text))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("ParseDump returned invalid trace: %v", err)
		}
	})
}
