package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDumpParseRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Dump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.SampleFile != tr.Header.SampleFile ||
		got.Header.NumProcesses != tr.Header.NumProcesses ||
		got.Header.NumFiles != tr.Header.NumFiles {
		t.Fatalf("header = %+v", got.Header)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records = %+v, want %+v", got.Records, tr.Records)
	}
}

func TestDumpHumanReadable(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Dump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# sample=sample.dat", "open", "read", "close", "len=131072"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestParseDumpRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown op", "# sample=s processes=1 files=1\nfrobnicate count=1\n"},
		{"bad count", "# sample=s processes=1 files=1\nread count=banana\n"},
		{"malformed field", "# sample=s processes=1 files=1\nread countless\n"},
		{"unknown key", "# sample=s processes=1 files=1\nread zorp=1\n"},
		{"bad header", "# sample=s processes=many\n"},
		{"unknown header key", "# zample=s\n"},
		{"no header", "read count=1 off=0 len=4\n"}, // no sample name -> invalid
	}
	for _, tc := range cases {
		if _, err := ParseDump(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parsed successfully", tc.name)
		}
	}
}

func TestParseDumpSkipsBlankLines(t *testing.T) {
	text := "# sample=s processes=1 files=1\n\nopen count=1\n\nclose count=1\n"
	tr, err := ParseDump(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("got %d records", len(tr.Records))
	}
}

func TestParseDumpDefaultsCount(t *testing.T) {
	text := "# sample=s processes=1 files=1\nseek off=4096\n"
	tr, err := ParseDump(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Count != 1 {
		t.Fatalf("default count = %d, want 1", tr.Records[0].Count)
	}
	if tr.Records[0].Offset != 4096 {
		t.Fatalf("offset = %d", tr.Records[0].Offset)
	}
}
