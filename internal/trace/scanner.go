package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Scanner streams records out of a trace without materializing it. It
// auto-detects the encoding from the header (v1 fixed-width records or
// v2 columnar blocks) and yields records through a reused block buffer:
// after the per-PID predictor map and block buffers warm up, Next
// performs zero allocations per record, so a billion-record trace scans
// in constant memory.
//
//	sc, err := trace.NewScanner(f)
//	for sc.Next() {
//		rec := sc.Record() // valid until the next call to Next
//	}
//	if err := sc.Err(); err != nil { ... }
//
// When the underlying reader is an io.Seeker (a file), the v1 header is
// additionally checked against the stream's actual size before any
// record decodes, so a corrupt record count fails fast instead of at
// record N.
type Scanner struct {
	br  *bufio.Reader
	h   Header
	ver uint32

	// v1: records remaining per the (validated) header count.
	left int64

	// v2 state.
	block    []Record
	idx      int
	payload  []byte
	preds    map[uint32]*predictor
	blockIdx int

	cur   *Record
	rec   Record           // v1 decode target, reused
	v1buf [recordSize]byte // v1 read buffer; a field so it never escapes per call
	total int64
	done  bool
	err   error
}

// streamSize returns the bytes remaining in r when r can tell (an
// io.Seeker at its current position), else -1.
func streamSize(r io.Reader) int64 {
	s, ok := r.(io.Seeker)
	if !ok {
		return -1
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return -1
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return -1
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return -1
	}
	return end - cur
}

// NewScanner reads and validates the header and returns a scanner
// positioned at the first record.
func NewScanner(r io.Reader) (*Scanner, error) {
	size := streamSize(r)
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, errBadMagic
	}
	var ver, nproc, nfiles, nrec, recOff uint32
	for _, p := range []*uint32{&ver, &nproc, &nfiles, &nrec, &recOff} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if ver != version && ver != version2 {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading sample file name: %w", err)
	}
	// The record offset is redundant with the header layout; a mismatch
	// means the header was hand-edited or corrupted.
	if want := uint32(headerFixedSize) + uint32(nameLen); recOff != want {
		return nil, fmt.Errorf("trace: header record offset %d, want %d (actual header size)", recOff, want)
	}
	sc := &Scanner{
		br:  br,
		ver: ver,
		h: Header{
			NumProcesses: nproc,
			NumFiles:     nfiles,
			NumRecords:   nrec,
			RecordOffset: recOff,
			SampleFile:   string(name),
		},
	}
	if ver == version {
		// v1 records are fixed-size, so a sizable stream must agree with
		// the declared count exactly — reject corrupt counts (and trailing
		// garbage) before decoding a single record.
		if size >= 0 {
			got := size - int64(recOff)
			want := int64(nrec) * recordSize
			if got != want {
				return nil, fmt.Errorf("trace: v1 header declares %d records (%d bytes), stream carries %d record bytes",
					nrec, want, got)
			}
		}
		sc.left = int64(nrec)
	} else {
		sc.preds = make(map[uint32]*predictor)
	}
	return sc, nil
}

// Header returns the trace header. For a streamed v2 trace the record
// count may be zero ("unknown"); Count holds the running total.
func (s *Scanner) Header() Header { return s.h }

// Version returns the detected format version (1 or 2).
func (s *Scanner) Version() int { return int(s.ver) }

// Count returns the number of records yielded so far.
func (s *Scanner) Count() int64 { return s.total }

// Err returns the first error the scan hit, nil at a clean end of trace.
func (s *Scanner) Err() error { return s.err }

// Record returns the current record. The pointer is only valid until the
// next call to Next; callers that keep records copy them.
func (s *Scanner) Record() *Record { return s.cur }

// Next advances to the next record, returning false at end of trace or
// on error (check Err).
func (s *Scanner) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	if s.ver == version {
		return s.nextV1()
	}
	return s.nextV2()
}

func (s *Scanner) nextV1() bool {
	if s.left == 0 {
		s.done = true
		return false
	}
	buf := s.v1buf[:]
	if _, err := io.ReadFull(s.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		s.err = fmt.Errorf("trace: reading record %d: %w", s.total, err)
		return false
	}
	s.rec = Record{
		Op:        Op(buf[0]),
		Count:     binary.LittleEndian.Uint32(buf[4:]),
		PID:       binary.LittleEndian.Uint32(buf[8:]),
		Field:     binary.LittleEndian.Uint32(buf[12:]),
		WallClock: int64(binary.LittleEndian.Uint64(buf[16:])),
		ProcClock: int64(binary.LittleEndian.Uint64(buf[24:])),
		Offset:    int64(binary.LittleEndian.Uint64(buf[32:])),
		Length:    int64(binary.LittleEndian.Uint64(buf[40:])),
	}
	s.cur = &s.rec
	s.left--
	s.total++
	return true
}

func (s *Scanner) nextV2() bool {
	for s.idx >= len(s.block) {
		if !s.readBlock() {
			return false
		}
	}
	s.cur = &s.block[s.idx]
	s.idx++
	s.total++
	return true
}

// corrupt records a BlockError at the current block.
func (s *Scanner) corrupt(err error) bool {
	s.err = &BlockError{Block: s.blockIdx, Err: err}
	return false
}

// readBlock reads and decodes the next v2 frame into s.block, returning
// false at the end frame (clean) or on error.
func (s *Scanner) readBlock() bool {
	var hdr [12]byte
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		if err == io.EOF {
			// A v2 stream must end with the end frame; a bare EOF here is
			// a truncated file.
			err = io.ErrUnexpectedEOF
		}
		return s.corrupt(err)
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:])
	count := binary.LittleEndian.Uint32(hdr[4:])
	crc := binary.LittleEndian.Uint32(hdr[8:])
	if payloadLen == 0 && count == 0 {
		return s.readTrailer(crc)
	}
	if payloadLen == 0 || count == 0 {
		return s.corrupt(fmt.Errorf("frame with %d payload bytes and %d records", payloadLen, count))
	}
	if payloadLen > maxBlockPayload {
		return s.corrupt(fmt.Errorf("payload length %d exceeds limit %d", payloadLen, maxBlockPayload))
	}
	if count > maxBlockRecords {
		return s.corrupt(fmt.Errorf("record count %d exceeds limit %d", count, maxBlockRecords))
	}
	if cap(s.payload) < int(payloadLen) {
		s.payload = make([]byte, payloadLen)
	}
	s.payload = s.payload[:payloadLen]
	if _, err := io.ReadFull(s.br, s.payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return s.corrupt(err)
	}
	if got := crc32.ChecksumIEEE(s.payload); got != crc {
		return s.corrupt(fmt.Errorf("%w: payload CRC %08x, frame says %08x", ErrCRC, got, crc))
	}
	if !s.decodeBlock(int(count)) {
		return false
	}
	s.idx = 0
	s.blockIdx++
	return true
}

// readTrailer consumes the end frame's 8-byte total, whose CRC rides in
// the end frame itself, and cross-checks the declared header count.
func (s *Scanner) readTrailer(crc uint32) bool {
	var trailer [8]byte
	if _, err := io.ReadFull(s.br, trailer[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return s.corrupt(fmt.Errorf("reading trailer: %w", err))
	}
	if got := crc32.ChecksumIEEE(trailer[:]); got != crc {
		return s.corrupt(fmt.Errorf("%w: trailer CRC %08x, end frame says %08x", ErrCRC, got, crc))
	}
	declared := binary.LittleEndian.Uint64(trailer[:])
	if declared != uint64(s.total) {
		return s.corrupt(fmt.Errorf("trailer declares %d records, stream carried %d", declared, s.total))
	}
	if s.h.NumRecords != 0 && uint64(s.h.NumRecords) != declared {
		return s.corrupt(fmt.Errorf("header declares %d records, trailer %d", s.h.NumRecords, declared))
	}
	s.done = true
	return false
}

// decodeBlock reconstructs count records from s.payload into s.block.
func (s *Scanner) decodeBlock(count int) bool {
	if cap(s.block) < count {
		s.block = make([]Record, count)
	}
	s.block = s.block[:count]
	recs := s.block
	payload := s.payload
	pos := 0
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	if len(payload) < count {
		return s.corrupt(errors.New("op column truncated"))
	}
	for i := 0; i < count; i++ {
		op := Op(payload[pos])
		pos++
		if !op.Valid() {
			return s.corrupt(fmt.Errorf("record %d: invalid op %d", i, op))
		}
		recs[i] = Record{Op: op}
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok || v == 0 || v > math.MaxUint32 {
			return s.corrupt(fmt.Errorf("record %d: bad count column", i))
		}
		recs[i].Count = uint32(v)
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok || v > math.MaxUint32 {
			return s.corrupt(fmt.Errorf("record %d: bad pid column", i))
		}
		recs[i].PID = uint32(v)
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok || v > math.MaxUint32 {
			return s.corrupt(fmt.Errorf("record %d: bad field column", i))
		}
		recs[i].Field = uint32(v)
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok {
			return s.corrupt(fmt.Errorf("record %d: bad wall-clock column", i))
		}
		p := s.pred(recs[i].PID)
		p.wall += unzigzag(v)
		recs[i].WallClock = p.wall
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok {
			return s.corrupt(fmt.Errorf("record %d: bad proc-clock column", i))
		}
		p := s.pred(recs[i].PID)
		p.proc += unzigzag(v)
		recs[i].ProcClock = p.proc
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok {
			return s.corrupt(fmt.Errorf("record %d: bad length column", i))
		}
		p := s.pred(recs[i].PID)
		p.length += unzigzag(v)
		if p.length < 0 {
			return s.corrupt(fmt.Errorf("record %d: negative length %d", i, p.length))
		}
		recs[i].Length = p.length
	}
	for i := 0; i < count; i++ {
		v, ok := uvarint()
		if !ok {
			return s.corrupt(fmt.Errorf("record %d: bad offset column", i))
		}
		p := s.pred(recs[i].PID)
		off := p.offset + p.offPrevLen + unzigzag(v)
		if off < 0 {
			return s.corrupt(fmt.Errorf("record %d: negative offset %d", i, off))
		}
		p.offset = off
		p.offPrevLen = recs[i].Length
		recs[i].Offset = off
	}
	if pos != len(payload) {
		return s.corrupt(fmt.Errorf("%d trailing payload bytes after %d records", len(payload)-pos, count))
	}
	return true
}

// pred returns (creating if needed) the decode predictor for pid.
func (s *Scanner) pred(pid uint32) *predictor {
	p := s.preds[pid]
	if p == nil {
		p = &predictor{}
		s.preds[pid] = p
	}
	return p
}

// Read decodes a trace — either version — from r and validates it. The
// whole record set is materialized; use NewScanner to stream instead.
func Read(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: sc.Header()}
	// The header's record count is untrusted input: cap the preallocation
	// so a corrupt count cannot exhaust memory; append grows as records
	// actually decode.
	capHint := t.Header.NumRecords
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t.Records = make([]Record, 0, capHint)
	for sc.Next() {
		t.Records = append(t.Records, *sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// A streamed v2 header may not have known its count up front; the
	// scanner's trailer-verified total is authoritative.
	t.Header.NumRecords = uint32(sc.Count())
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
