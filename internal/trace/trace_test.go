package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Header: Header{
			NumProcesses: 4,
			NumFiles:     2,
			NumRecords:   3,
			SampleFile:   "sample.dat",
		},
		Records: []Record{
			{Op: OpOpen, Count: 1, PID: 0},
			{Op: OpRead, Count: 5, PID: 1, Field: 7, WallClock: 1000, ProcClock: 900, Offset: 4096, Length: 131072},
			{Op: OpClose, Count: 1, PID: 0},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.SampleFile != "sample.dat" || got.Header.NumProcesses != 4 || got.Header.NumFiles != 2 {
		t.Fatalf("header = %+v", got.Header)
	}
	if got.Header.RecordOffset == 0 {
		t.Fatal("record offset not computed")
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records = %+v, want %+v", got.Records, tr.Records)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(recs []struct {
		Op     uint8
		Count  uint32
		PID    uint32
		Field  uint32
		Wall   int64
		Proc   int64
		Offset int64
		Length int64
	}) bool {
		tr := &Trace{Header: Header{NumProcesses: 1, NumFiles: 1, SampleFile: "s"}}
		for _, r := range recs {
			off, l := r.Offset, r.Length
			if off < 0 {
				off = -off
			}
			if l < 0 {
				l = -l
			}
			tr.Records = append(tr.Records, Record{
				Op:    Op(r.Op % 5),
				Count: r.Count%1000 + 1,
				PID:   r.PID, Field: r.Field,
				WallClock: r.Wall, ProcClock: r.Proc,
				Offset: off, Length: l,
			})
		}
		tr.Header.NumRecords = uint32(len(tr.Records))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOPExxxxxxxxxxxxxxxxxxxx"))
	if !errors.Is(err, errBadMagic) {
		t.Fatalf("err = %v, want bad magic", err)
	}
}

func TestReadTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{2, 10, len(full) - 5} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestValidateCatches(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"empty sample", func(tr *Trace) { tr.Header.SampleFile = "" }},
		{"record count mismatch", func(tr *Trace) { tr.Header.NumRecords = 99 }},
		{"zero processes", func(tr *Trace) { tr.Header.NumProcesses = 0 }},
		{"invalid op", func(tr *Trace) { tr.Records[0].Op = 9 }},
		{"negative offset", func(tr *Trace) { tr.Records[1].Offset = -1 }},
		{"negative length", func(tr *Trace) { tr.Records[1].Length = -1 }},
		{"zero count", func(tr *Trace) { tr.Records[0].Count = 0 }},
	}
	for _, tc := range cases {
		tr := sampleTrace()
		tc.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpOpen: "open", OpClose: "close", OpRead: "read", OpWrite: "write", OpSeek: "seek", Op(9): "op(9)"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(5).Valid() {
		t.Error("Op(5) reported valid")
	}
}

func TestComputeStats(t *testing.T) {
	tr := sampleTrace()
	tr.Records = append(tr.Records, Record{Op: OpWrite, Count: 2, Length: 100})
	s := ComputeStats(tr)
	if s.Ops[OpRead] != 5 {
		t.Fatalf("reads = %d, want 5 (count expansion)", s.Ops[OpRead])
	}
	if s.BytesRead != 5*131072 {
		t.Fatalf("BytesRead = %d", s.BytesRead)
	}
	if s.BytesWrit != 200 {
		t.Fatalf("BytesWrit = %d", s.BytesWrit)
	}
}

func TestWriteLongNameRejected(t *testing.T) {
	tr := sampleTrace()
	tr.Header.SampleFile = strings.Repeat("x", 70000)
	if err := Write(&bytes.Buffer{}, tr); err == nil {
		t.Fatal("oversized name accepted")
	}
}
