package trace

import (
	"bytes"
	"testing"
)

func benchTrace(n int) *Trace {
	tr := &Trace{Header: Header{NumProcesses: 4, NumFiles: 1, SampleFile: "bench.dat"}}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, Record{
			Op: Op(i % 5), Count: 1, PID: uint32(i % 4),
			WallClock: int64(i) * 1000, Offset: int64(i) * 4096, Length: 64 << 10,
		})
	}
	tr.Header.NumRecords = uint32(n)
	return tr
}

func BenchmarkWrite1kRecords(b *testing.B) {
	tr := benchTrace(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead1kRecords(b *testing.B) {
	tr := benchTrace(1000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(encoded)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeStats(b *testing.B) {
	tr := benchTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats(tr)
	}
}
