package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Dump writes the trace in a line-oriented human-readable text form —
// useful for inspecting synthetic or captured traces with ordinary text
// tools. The format round-trips through ParseDump.
//
//	# sample=<name> processes=<n> files=<n> records=<n>
//	<op> count=<n> pid=<n> field=<n> wall=<ns> proc=<ns> off=<bytes> len=<bytes>
func Dump(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sample=%s processes=%d files=%d records=%d\n",
		t.Header.SampleFile, t.Header.NumProcesses, t.Header.NumFiles, len(t.Records))
	for _, r := range t.Records {
		fmt.Fprintf(bw, "%-5s count=%d pid=%d field=%d wall=%d proc=%d off=%d len=%d\n",
			r.Op, r.Count, r.PID, r.Field, r.WallClock, r.ProcClock, r.Offset, r.Length)
	}
	return bw.Flush()
}

// ParseDump reads the text form back into a trace and validates it.
func ParseDump(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseDumpHeader(line, &t.Header); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			continue
		}
		rec, err := parseDumpRecord(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Header.NumRecords = uint32(len(t.Records))
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseDumpHeader parses the "# key=value ..." header line.
func parseDumpHeader(line string, h *Header) error {
	for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("malformed header field %q", field)
		}
		switch key {
		case "sample":
			h.SampleFile = val
		case "processes":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return fmt.Errorf("bad processes %q", val)
			}
			h.NumProcesses = uint32(n)
		case "files":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return fmt.Errorf("bad files %q", val)
			}
			h.NumFiles = uint32(n)
		case "records":
			// Recomputed from the body; accepted for symmetry.
		default:
			return fmt.Errorf("unknown header key %q", key)
		}
	}
	return nil
}

// opFromString maps a mnemonic back to its code.
func opFromString(s string) (Op, error) {
	for op := OpOpen; op <= OpSeek; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("unknown op %q", s)
}

// parseDumpRecord parses one record line.
func parseDumpRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 1 {
		return Record{}, fmt.Errorf("empty record")
	}
	op, err := opFromString(fields[0])
	if err != nil {
		return Record{}, err
	}
	rec := Record{Op: op, Count: 1}
	for _, field := range fields[1:] {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Record{}, fmt.Errorf("malformed field %q", field)
		}
		switch key {
		case "count":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Record{}, fmt.Errorf("bad count %q", val)
			}
			rec.Count = uint32(n)
		case "pid":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Record{}, fmt.Errorf("bad pid %q", val)
			}
			rec.PID = uint32(n)
		case "field":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Record{}, fmt.Errorf("bad field %q", val)
			}
			rec.Field = uint32(n)
		case "wall":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad wall %q", val)
			}
			rec.WallClock = n
		case "proc":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad proc %q", val)
			}
			rec.ProcClock = n
		case "off":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad offset %q", val)
			}
			rec.Offset = n
		case "len":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad length %q", val)
			}
			rec.Length = n
		default:
			return Record{}, fmt.Errorf("unknown record key %q", key)
		}
	}
	return rec, nil
}
