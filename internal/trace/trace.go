// Package trace implements the I/O trace file format of the paper's
// second benchmark (§3.2). A trace file has a header carrying the number
// of processes, number of files, number of records, the offset to the
// trace records and the name of the sample file the operations are issued
// against; each fixed-size record describes one I/O operation
// (Open=0, Close=1, Read=2, Write=3, Seek=4) with a repeat count, process
// id, field, wall-clock and process-clock stamps, offset and length.
//
// The University of Maryland traces the paper used (CS-TR-3802) are not
// publicly archived, so this package defines a binary encoding of the
// documented layout and the tracegen package synthesizes trace contents
// matching the request sizes printed in the paper's Tables 1-4.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is an I/O operation code, numbered exactly as in §3.2.
type Op uint8

// Operation codes from the paper.
const (
	OpOpen  Op = 0
	OpClose Op = 1
	OpRead  Op = 2
	OpWrite Op = 3
	OpSeek  Op = 4
)

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSeek:
		return "seek"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether the code is one of the five defined operations.
func (o Op) Valid() bool { return o <= OpSeek }

// Header is the trace file header (§3.2).
type Header struct {
	// NumProcesses is the process count of the traced application.
	NumProcesses uint32
	// NumFiles is the number of files the application touched.
	NumFiles uint32
	// NumRecords is the record count that follows.
	NumRecords uint32
	// RecordOffset is the byte offset of the first record in the file.
	RecordOffset uint32
	// SampleFile names the file the replayer issues the operations on.
	SampleFile string
}

// Record is one trace record (§3.2).
type Record struct {
	// Op is the operation to perform.
	Op Op
	// Count is the number of records (repetitions) for this operation.
	Count uint32
	// PID is the issuing process id.
	PID uint32
	// Field is the application-specific field tag.
	Field uint32
	// WallClock is the original capture wall-clock stamp, nanoseconds.
	WallClock int64
	// ProcClock is the original capture process-clock stamp, nanoseconds.
	ProcClock int64
	// Offset is the file offset the operation applies to.
	Offset int64
	// Length is the byte count for reads and writes.
	Length int64
}

// Trace is a parsed trace: header plus records.
type Trace struct {
	Header  Header
	Records []Record
}

// Validate reports the first structural problem, or nil.
func (t *Trace) Validate() error {
	if t.Header.SampleFile == "" {
		return errors.New("trace: empty sample file name")
	}
	if int(t.Header.NumRecords) != len(t.Records) {
		return fmt.Errorf("trace: header says %d records, got %d", t.Header.NumRecords, len(t.Records))
	}
	if t.Header.NumProcesses == 0 {
		return errors.New("trace: zero processes")
	}
	for i, r := range t.Records {
		if !r.Op.Valid() {
			return fmt.Errorf("trace: record %d has invalid op %d", i, r.Op)
		}
		if r.Offset < 0 {
			return fmt.Errorf("trace: record %d has negative offset %d", i, r.Offset)
		}
		if r.Length < 0 {
			return fmt.Errorf("trace: record %d has negative length %d", i, r.Length)
		}
		if r.Count == 0 {
			return fmt.Errorf("trace: record %d has zero count", i)
		}
	}
	return nil
}

// Binary layout constants.
const (
	magic      = "UMDT" // University-of-Maryland-style Trace
	version    = uint32(1)
	recordSize = 1 + 3 + 4 + 4 + 4 + 8 + 8 + 8 + 8 // op + pad + count + pid + field + clocks + offset + length
	// headerFixedSize is the fixed header prefix shared by both format
	// versions: magic + version + nproc + nfiles + nrec + recoff + namelen.
	headerFixedSize = 4 + 4 + 4 + 4 + 4 + 4 + 2
)

var errBadMagic = errors.New("trace: bad magic (not a trace file)")

// Write encodes the trace to w in the v1 fixed-width format. The
// header's NumRecords and RecordOffset are computed, not trusted. See
// WriteV2 for the columnar encoding.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, version, t.Header, uint32(len(t.Records))); err != nil {
		return err
	}
	for i := range t.Records {
		if err := writeRecord(bw, &t.Records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRecord(w io.Writer, r *Record) error {
	var buf [recordSize]byte
	buf[0] = byte(r.Op)
	// buf[1:4] is padding for alignment.
	binary.LittleEndian.PutUint32(buf[4:], r.Count)
	binary.LittleEndian.PutUint32(buf[8:], r.PID)
	binary.LittleEndian.PutUint32(buf[12:], r.Field)
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.WallClock))
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.ProcClock))
	binary.LittleEndian.PutUint64(buf[32:], uint64(r.Offset))
	binary.LittleEndian.PutUint64(buf[40:], uint64(r.Length))
	_, err := w.Write(buf[:])
	return err
}

// Stats summarizes a trace's operation mix.
type Stats struct {
	Ops       map[Op]int64
	BytesRead int64
	BytesWrit int64
}

// ComputeStats tallies the trace's operations, expanding repeat counts.
func ComputeStats(t *Trace) Stats {
	s := Stats{Ops: make(map[Op]int64)}
	for _, r := range t.Records {
		n := int64(r.Count)
		s.Ops[r.Op] += n
		switch r.Op {
		case OpRead:
			s.BytesRead += n * r.Length
		case OpWrite:
			s.BytesWrit += n * r.Length
		}
	}
	return s
}
