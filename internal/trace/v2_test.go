package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// v2Trace builds a multi-PID trace with the shapes the columnar encoding
// is tuned for: near-sequential offsets, repeated lengths, monotone
// clocks — plus occasional jumps.
func v2Trace(n int) *Trace {
	tr := &Trace{Header: Header{NumProcesses: 4, NumFiles: 1, SampleFile: "v2.dat"}}
	offs := [4]int64{0, 1 << 28, 2 << 28, 3 << 28}
	for pid := 0; pid < 4; pid++ {
		tr.Records = append(tr.Records, Record{Op: OpOpen, Count: 1, PID: uint32(pid)})
	}
	for i := 0; i < n; i++ {
		pid := uint32(i % 4)
		rec := Record{
			Op: OpRead, Count: 1, PID: pid,
			WallClock: int64(i) * 700, ProcClock: int64(i)*700 + 3,
			Offset: offs[pid], Length: 64 << 10,
		}
		if i%37 == 36 { // a seek-style jump
			rec.Op = OpSeek
			rec.Length = 0
			rec.Offset = int64(i) * 12345
			offs[pid] = rec.Offset
		} else {
			offs[pid] += rec.Length
		}
		tr.Records = append(tr.Records, rec)
	}
	for pid := 0; pid < 4; pid++ {
		tr.Records = append(tr.Records, Record{Op: OpClose, Count: 1, PID: uint32(pid)})
	}
	tr.Header.NumRecords = uint32(len(tr.Records))
	return tr
}

func TestV2RoundTrip(t *testing.T) {
	tr := v2Trace(500)
	var buf bytes.Buffer
	if err := WriteV2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if v1 := len(tr.Records) * recordSize; buf.Len() >= v1 {
		t.Fatalf("v2 encoding (%d bytes) not smaller than v1 records (%d bytes)", buf.Len(), v1)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.SampleFile != "v2.dat" || got.Header.NumProcesses != 4 || got.Header.NumFiles != 1 {
		t.Fatalf("header = %+v", got.Header)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records diverge after round trip")
	}
}

// TestV2ScannerSmallBlocks exercises block boundaries and partial final
// blocks: predictor state must carry across frames.
func TestV2ScannerSmallBlocks(t *testing.T) {
	tr := v2Trace(101)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	enc.BlockRecords = 7
	for i := range tr.Records {
		if err := enc.Append(&tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Version() != 2 {
		t.Fatalf("version = %d, want 2", sc.Version())
	}
	var got []Record
	for sc.Next() {
		got = append(got, *sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Records) {
		t.Fatalf("scanned records diverge (got %d, want %d)", len(got), len(tr.Records))
	}
}

// TestV1V2Equivalence is the cross-version property: any valid trace
// decodes identically from both encodings.
func TestV1V2Equivalence(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Header: Header{NumProcesses: 3, NumFiles: 1, SampleFile: "eq.dat"}}
		for i := 0; i < int(n)+1; i++ {
			tr.Records = append(tr.Records, Record{
				Op:        Op(rng.Intn(5)),
				Count:     uint32(rng.Intn(9) + 1),
				PID:       uint32(rng.Intn(3)),
				Field:     uint32(rng.Intn(4)),
				WallClock: rng.Int63n(1 << 40),
				ProcClock: rng.Int63n(1 << 40),
				Offset:    rng.Int63n(1 << 34),
				Length:    rng.Int63n(1 << 22),
			})
		}
		tr.Header.NumRecords = uint32(len(tr.Records))
		var b1, b2 bytes.Buffer
		if err := Write(&b1, tr); err != nil {
			return false
		}
		if err := WriteV2(&b2, tr); err != nil {
			return false
		}
		d1, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			return false
		}
		d2, err := Read(bytes.NewReader(b2.Bytes()))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d1.Records, d2.Records) &&
			reflect.DeepEqual(d1.Header, d2.Header)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestV2StreamedUnknownCount pins the streaming-author path: a header
// written with a zero record count is completed by the trailer.
func TestV2StreamedUnknownCount(t *testing.T) {
	var buf bytes.Buffer
	h := Header{NumProcesses: 1, NumFiles: 1, SampleFile: "s.dat"}
	enc, err := NewEncoder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpOpen, Count: 1},
		{Op: OpRead, Count: 2, Offset: 0, Length: 4096},
		{Op: OpClose, Count: 1},
	}
	for i := range recs {
		if err := enc.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.NumRecords != 3 || len(got.Records) != 3 {
		t.Fatalf("streamed header count = %d (%d records), want 3", got.Header.NumRecords, len(got.Records))
	}
}

func TestEncoderRejectsInvalidRecords(t *testing.T) {
	bad := []Record{
		{Op: Op(9), Count: 1},
		{Op: OpRead, Count: 0},
		{Op: OpRead, Count: 1, Offset: -1},
		{Op: OpRead, Count: 1, Length: -1},
	}
	for i, rec := range bad {
		enc, err := NewEncoder(&bytes.Buffer{}, Header{SampleFile: "x"})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Append(&rec); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestEncoderDeclaredCountEnforced(t *testing.T) {
	enc, err := NewEncoder(&bytes.Buffer{}, Header{SampleFile: "x", NumRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Op: OpOpen, Count: 1}
	if err := enc.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Fatal("declared-count mismatch accepted at Close")
	}
}

// TestV2CorruptionTyped pins the typed error contract: corruption inside
// the stream surfaces as a *BlockError carrying the failing block index.
func TestV2CorruptionTyped(t *testing.T) {
	tr := v2Trace(300)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	enc.BlockRecords = 64
	for i := range tr.Records {
		if err := enc.Append(&tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	scanAll := func(data []byte) error {
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for sc.Next() {
		}
		return sc.Err()
	}

	t.Run("crc flip", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		// Flip a byte inside the second block's payload. The first frame
		// starts right after the header.
		hdrEnd := int(headerFixedSize) + len(tr.Header.SampleFile)
		firstLen := int(uint32(mut[hdrEnd]) | uint32(mut[hdrEnd+1])<<8 | uint32(mut[hdrEnd+2])<<16 | uint32(mut[hdrEnd+3])<<24)
		secondPayload := hdrEnd + 12 + firstLen + 12
		mut[secondPayload+5] ^= 0xFF
		err := scanAll(mut)
		var be *BlockError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v, want *BlockError", err)
		}
		if be.Block != 1 {
			t.Fatalf("failing block = %d, want 1", be.Block)
		}
		if !errors.Is(err, ErrCRC) {
			t.Fatalf("err = %v, want ErrCRC", err)
		}
	})

	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{len(full) - 3, len(full) - 21, len(full) / 2} {
			err := scanAll(full[:cut])
			var be *BlockError
			if !errors.As(err, &be) {
				t.Fatalf("cut %d: err = %v, want *BlockError", cut, err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	})

	t.Run("trailer count mismatch", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		// The trailer's 8 count bytes are the last 8; its CRC sits in the
		// end frame before them, so a count edit must break the CRC.
		mut[len(mut)-8]++
		if err := scanAll(mut); !errors.Is(err, ErrCRC) {
			t.Fatalf("err = %v, want ErrCRC", err)
		}
	})
}

// TestV1HeaderHardening pins the fail-fast checks: a v1 header whose
// record offset or record count disagrees with the actual bytes is
// rejected before any record decodes.
func TestV1HeaderHardening(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("record offset mismatch", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		mut[20]++ // recOff low byte
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatal("bad record offset accepted")
		}
	})

	t.Run("count vs size mismatch", func(t *testing.T) {
		// Stream is seekable, so the count/size disagreement is caught at
		// NewScanner, before record decoding.
		mut := append([]byte(nil), full...)
		mut[16]++ // nrec low byte: declares one more record than present
		_, err := NewScanner(bytes.NewReader(mut))
		if err == nil {
			t.Fatal("count/size mismatch accepted")
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), full...), 0xAB)
		if _, err := NewScanner(bytes.NewReader(mut)); err == nil {
			t.Fatal("trailing garbage accepted on a seekable v1 stream")
		}
	})
}

// TestScannerZeroAlloc pins the decode hot loop at zero allocations per
// record, steady state, for both format versions — the same contract the
// engine rows carry.
func TestScannerZeroAlloc(t *testing.T) {
	tr := v2Trace(120000)
	for _, tc := range []struct {
		name   string
		encode func(io.Writer, *Trace) error
	}{
		{"v1", Write},
		{"v2", WriteV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.encode(&buf, tr); err != nil {
				t.Fatal(err)
			}
			sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			// Warm up past several block boundaries so buffers and the
			// predictor map reach steady state.
			for i := 0; i < 20000; i++ {
				if !sc.Next() {
					t.Fatal("trace exhausted during warmup")
				}
			}
			var sink int64
			allocs := testing.AllocsPerRun(80000, func() {
				if !sc.Next() {
					t.Fatal("trace exhausted during measurement")
				}
				sink += sc.Record().Offset
			})
			if allocs != 0 {
				t.Fatalf("%v allocs/record, want 0", allocs)
			}
			_ = sink
		})
	}
}

func BenchmarkScanV1(b *testing.B) {
	benchScan(b, Write)
}

func BenchmarkScanV2(b *testing.B) {
	benchScan(b, WriteV2)
}

// benchScan measures streaming decode; ns/op is per record.
func benchScan(b *testing.B, encode func(io.Writer, *Trace) error) {
	tr := v2Trace(4096)
	var buf bytes.Buffer
	if err := encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	n := len(tr.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for sc.Next() {
			i++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		_ = n
	}
}

func BenchmarkEncodeV2(b *testing.B) {
	tr := v2Trace(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i += len(tr.Records) {
		var buf bytes.Buffer
		if err := WriteV2(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}
