// Package vmcompare implements the paper's first future-work direction
// (§5): "evaluate performance of the benchmarks for I/O-intensive
// computing on other virtual machines like java virtual machine" and
// "compare the performance of the benchmarks on different CLI-based
// virtual machines."
//
// It reruns the paper's most runtime-sensitive experiment — Table 6's
// repeated reads of the same file — under each vm.Profile (SSCLI, a
// commercial CLR, a HotSpot-style JVM, and a native-AOT baseline), all on
// identical simulated storage, isolating the managed runtime's
// contribution to I/O latency.
package vmcompare

import (
	"fmt"
	"time"

	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Trials is the repeated-read count, matching Table 6.
const Trials = 6

// ProfileResult is one runtime's warm-up curve.
type ProfileResult struct {
	Profile vm.Profile
	// TrialMS holds the per-trial read latency in milliseconds.
	TrialMS []float64
}

// FirstTrialMS returns the cold first-read latency.
func (r ProfileResult) FirstTrialMS() float64 {
	if len(r.TrialMS) == 0 {
		return 0
	}
	return r.TrialMS[0]
}

// SteadyMS returns the final-trial (steady-state) latency.
func (r ProfileResult) SteadyMS() float64 {
	if len(r.TrialMS) == 0 {
		return 0
	}
	return r.TrialMS[len(r.TrialMS)-1]
}

// WarmupFactor returns first/steady — how much the runtime's first touch
// costs relative to its steady state.
func (r ProfileResult) WarmupFactor() float64 {
	if r.SteadyMS() == 0 {
		return 0
	}
	return r.FirstTrialMS() / r.SteadyMS()
}

// runProfile executes the Table 6 pipeline on one profile over a fresh
// store.
func runProfile(p vm.Profile) (ProfileResult, error) {
	store, err := fsim.NewFileStore(fsim.DefaultConfig())
	if err != nil {
		return ProfileResult{}, err
	}
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		return ProfileResult{}, err
	}
	store.Cache().Invalidate()
	rt, err := p.NewRuntime()
	if err != nil {
		return ProfileResult{}, err
	}
	name := workload.WebCorpus()[3].Name
	res := ProfileResult{Profile: p}
	for trial := 0; trial < Trials; trial++ {
		stream, openDur, err := vm.OpenFileStream(rt, store, name)
		if err != nil {
			return ProfileResult{}, err
		}
		_, readDur, err := stream.ReadAll()
		closeDur, _ := stream.Close()
		if err != nil {
			return ProfileResult{}, err
		}
		total := openDur + readDur + closeDur
		res.TrialMS = append(res.TrialMS, float64(total)/float64(time.Millisecond))
	}
	return res, nil
}

// Compare runs the repeated-read experiment under every profile.
func Compare(profiles []vm.Profile) ([]ProfileResult, error) {
	if len(profiles) == 0 {
		profiles = vm.Profiles()
	}
	out := make([]ProfileResult, 0, len(profiles))
	for _, p := range profiles {
		res, err := runProfile(p)
		if err != nil {
			return nil, fmt.Errorf("vmcompare: profile %s: %w", p.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Table renders the comparison: one row per runtime, per-trial latencies
// plus the warm-up factor.
func Table(results []ProfileResult) *metrics.Table {
	headers := []interface{}{}
	_ = headers
	cols := []string{"Runtime"}
	for i := 1; i <= Trials; i++ {
		cols = append(cols, fmt.Sprintf("Trial %d (ms)", i))
	}
	cols = append(cols, "Warm-up factor")
	tb := metrics.NewTable(
		"Repeated 14063-byte reads across virtual machines (Table 6 workload)",
		cols...)
	for _, r := range results {
		row := []interface{}{r.Profile.Name}
		for _, t := range r.TrialMS {
			row = append(row, t)
		}
		row = append(row, r.WarmupFactor())
		tb.AddRow(row...)
	}
	return tb
}

// Figure renders each runtime's warm-up curve as one series.
func Figure(results []ProfileResult) *metrics.Figure {
	labels := make([]string, Trials)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i+1)
	}
	fig := metrics.NewFigure(
		"Warm-up curves across virtual machines",
		"trial number", "read time (ms)")
	for _, r := range results {
		fig.Add(metrics.NewSeries(r.Profile.Name, labels, r.TrialMS))
	}
	return fig
}
